// The assertion facility (paper Discussion: "complex assertions, e.g.,
// 'x[0] through x[n] are positive', often need non-trivial code" — in DUEL
// they are one-liners).

#include "src/duel/assertions.h"

#include <gtest/gtest.h>

#include "src/exec/debugger.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class AssertionsTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(AssertionsTest, PaperExampleAllPositive) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3, 4, 5});
  AssertionOutcome o = CheckAssertion(fx_.session(), "positive", "x[..5] > 0");
  EXPECT_TRUE(o.holds);
  EXPECT_EQ(o.values_checked, 5u);
}

TEST_F(AssertionsTest, FailureListsOffendingValues) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, -2, 3, 0, 5});
  AssertionOutcome o = CheckAssertion(fx_.session(), "positive", "x[..5] > 0");
  EXPECT_FALSE(o.holds);
  ASSERT_EQ(o.failures.size(), 2u);
  EXPECT_EQ(o.failures[0], "x[1]>0 = 0");
  EXPECT_EQ(o.failures[1], "x[3]>0 = 0");
}

TEST_F(AssertionsTest, EmptySequenceHoldsVacuously) {
  scenarios::BuildIntArray(fx_.image(), "x", {1});
  AssertionOutcome o = CheckAssertion(fx_.session(), "vacuous", "x[1..0] > 0");
  EXPECT_TRUE(o.holds);
  EXPECT_EQ(o.values_checked, 0u);
}

TEST_F(AssertionsTest, EvaluationErrorsFail) {
  AssertionOutcome o = CheckAssertion(fx_.session(), "bad", "nosuch > 0");
  EXPECT_FALSE(o.holds);
  ASSERT_EQ(o.failures.size(), 1u);
  EXPECT_NE(o.failures[0].find("unknown name"), std::string::npos);
}

TEST_F(AssertionsTest, StructuralInvariants) {
  scenarios::BuildList(fx_.image(), "L", {9, 7, 5, 2});
  scenarios::BuildTree(fx_.image(), "root", "(9 (3 (4) (5)) (12))");
  AssertionSet set;
  set.Add("list_decreasing", "L-->next->(if (next) value > next->value else 1)");
  set.Add("tree_keys_positive", "root-->(left,right)->key > 0");
  set.Add("list_nonempty", "#/(L-->next) != 0");
  std::vector<AssertionOutcome> outcomes = set.CheckAll(fx_.session());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].holds);
  EXPECT_TRUE(outcomes[1].holds);
  EXPECT_TRUE(outcomes[2].holds);

  fx_.Lines("L->next->value = 100 ;");  // break the ordering
  outcomes = set.CheckAll(fx_.session());
  EXPECT_FALSE(outcomes[0].holds);
  EXPECT_TRUE(outcomes[1].holds);
}

TEST_F(AssertionsTest, ReportFormat) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, -1});
  AssertionSet set;
  set.Add("pos", "x[..2] > 0");
  set.Add("count", "#/x[..2] == 2");
  std::string report = AssertionSet::Report(set.CheckAll(fx_.session()));
  EXPECT_NE(report.find("[FAIL] pos"), std::string::npos) << report;
  EXPECT_NE(report.find("[PASS] count"), std::string::npos) << report;
  std::string failures_only =
      AssertionSet::Report(set.CheckAll(fx_.session()), /*only_failures=*/true);
  EXPECT_EQ(failures_only.find("[PASS]"), std::string::npos) << failures_only;
}

TEST_F(AssertionsTest, DebuggerStopsOnViolationTransition) {
  scenarios::BuildIntArray(fx_.image(), "a", {1, 1, 1, 1});
  exec::TargetProgram program = exec::TargetProgram::Parse(
      {
          "a[0] = 5;",
          "a[2] = 0 - 1;",  // violates
          "a[3] = 7;",      // still violated: no new stop
          "a[2] = 2;",      // holds again
          "a[1] = 0 - 9;",  // violates again -> stops again
      },
      fx_.image());
  exec::Debugger dbg(fx_.image(), fx_.backend(), program);
  int idx = dbg.AddAssertion("all_positive", "a[..4] > 0");

  exec::StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, exec::StopReason::kAssertion);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("all_positive"), std::string::npos) << s.detail;

  s = dbg.Continue();
  EXPECT_EQ(s.reason, exec::StopReason::kAssertion);
  EXPECT_EQ(s.line, 4u);
  EXPECT_EQ(dbg.Continue().reason, exec::StopReason::kFinished);
  EXPECT_EQ(dbg.AssertionViolations(idx), 2u);
}

}  // namespace
}  // namespace duel
