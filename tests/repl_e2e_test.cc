// End-to-end test of the debugger_repl binary itself: drive the real
// executable through a shell pipe and golden-check its output. This is the
// closest thing to a user session the suite runs.

#include <cstdio>

#include <gtest/gtest.h>

#include <string>

namespace {

std::string RunRepl(const std::string& script, const std::string& args = "",
                    const std::string& env = "") {
  std::string command =
      "printf '" + script + "' | " + env + " " + REPL_BINARY + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  char buf[512];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, n);
  }
  int status = pclose(pipe);
  EXPECT_EQ(status, 0) << out;
  return out;
}

TEST(ReplE2ETest, DuelQueriesAgainstBuiltInDebuggee) {
  std::string out = RunRepl("duel arr[..10] >? 5\\nduel L-->next->value ==? 27\\nquit\\n");
  EXPECT_NE(out.find("arr[5] = 9"), std::string::npos) << out;
  EXPECT_NE(out.find("L->next->value = 27"), std::string::npos) << out;
}

TEST(ReplE2ETest, ScenarioFileSession) {
  std::string out = RunRepl(
      "duel bucket287-->next-> if (next) scope <? next->scope\\n"
      "duel #/(hash[..1024] !=? 0)\\n"
      "quit\\n",
      SCENARIO_FILE);
  EXPECT_NE(out.find("bucket287-->next[[8]]->scope = 5"), std::string::npos) << out;
  EXPECT_NE(out.find("1"), std::string::npos) << out;  // hash[0] = &s00
}

TEST(ReplE2ETest, BaselinePrintAndMi) {
  std::string out = RunRepl(
      "print 6*7\\n"
      "mi -duel-evaluate \"1..3\"\\n"
      "quit\\n");
  EXPECT_NE(out.find("42"), std::string::npos) << out;
  EXPECT_NE(out.find("^done,values=[{sym=\"1\",value=\"1\"}"), std::string::npos) << out;
}

TEST(ReplE2ETest, RemoteModeMatchesLocal) {
  std::string out = RunRepl(
      "duel +/arr[..10]\\n"
      "remote on\\n"
      "duel +/arr[..10]\\n"
      "quit\\n");
  // The sum appears twice, identically.
  size_t first = out.find("17");  // sum of the built-in arr
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("17", first + 1), std::string::npos) << out;
}

TEST(ReplE2ETest, HistoryRecall) {
  std::string out = RunRepl("duel 2+3\\n!!\\nhistory\\nquit\\n");
  // The re-run prints the query and its value again.
  EXPECT_NE(out.find("duel 2+3"), std::string::npos) << out;
  EXPECT_NE(out.find("0  2+3"), std::string::npos) << out;
}

TEST(ReplE2ETest, ProgramSteppingWorkflow) {
  std::string out = RunRepl(
      "program " PROGRAM_FILE "\n"
      "break 4 x[..10] >? 30\n"
      "watch x[..9]#k >? x[k+1]\n"
      "continue\n"
      "continue\n"
      "quit\n",
      SCENARIO_FILE);
  EXPECT_NE(out.find("loaded 6 lines"), std::string::npos) << out;
  EXPECT_NE(out.find("stopped after line 3"), std::string::npos) << out;  // watch fires
  EXPECT_NE(out.find("breakpoint 0 before line 4"), std::string::npos) << out;
}

TEST(ReplE2ETest, UnknownCommandIsReported) {
  std::string out = RunRepl("frobnicate\\nquit\\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos) << out;
}

TEST(ReplE2ETest, CheckCommandReportsDiagnosticsWithCaret) {
  std::string out = RunRepl(
      "check arr[..10] >? 0\\n"
      "check *nosuch\\n"
      "check arr[12]\\n"
      "quit\\n");
  EXPECT_NE(out.find("ok"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown name 'nosuch' [unknown-name]"), std::string::npos) << out;
  EXPECT_NE(out.find("index 12 is past the end"), std::string::npos) << out;
  EXPECT_NE(out.find("fix-it: valid indices are 0..9"), std::string::npos) << out;
  EXPECT_NE(out.find('^'), std::string::npos) << out;
}

TEST(ReplE2ETest, WarnModesGateEvaluation) {
  std::string out = RunRepl(
      "duel if (arr[0] = 3) 99\\n"   // warn on (default): report + evaluate
      "warn error\\n"
      "duel if (arr[0] = 3) 99\\n"   // rejected
      "warn off\\n"
      "duel if (arr[0] = 3) 99\\n"   // silent
      "quit\\n",
      // Pin enforcement on regardless of the DUEL_CHECK ablation env.
      "", "DUEL_CHECK=on");
  EXPECT_NE(out.find("[assign-in-condition]"), std::string::npos) << out;
  EXPECT_NE(out.find("did you mean '=='?"), std::string::npos) << out;
  EXPECT_NE(out.find("warnings are errors"), std::string::npos) << out;
  // The query evaluated under `warn on` and `warn off` but not `warn error`.
  size_t first = out.find("99");
  ASSERT_NE(first, std::string::npos) << out;
  EXPECT_NE(out.find("99", first + 1), std::string::npos) << out;
}

TEST(ReplE2ETest, BatchCheckLintsScenarioQueries) {
  std::string out = RunRepl("", std::string("--check ") + SCENARIO_FILE);
  EXPECT_NE(out.find("5 queries checked, 0 errors, 0 warnings"), std::string::npos) << out;
}

}  // namespace
