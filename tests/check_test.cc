// The static check stage (check.h): per-rule golden diagnostics (rule,
// severity, span, fix-it), the reject-before-BeginQuery guarantee, verdict
// caching in the plan cache, warning modes, and the soundness contract
// (never reject a query the engines would evaluate successfully).

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

using obs::NarrowCall;

// A debuggee with enough shape for every rule: scalars, an array, two
// record pointer types, a void pointer, and the standard functions.
class CheckTest : public ::testing::Test {
 protected:
  CheckTest() {
    target::ImageBuilder b(fx_.image());
    target::TypeRef t = b.Struct("T").Field("val", b.Int()).Build();
    target::TypeRef u = b.Struct("U").Field("uval", b.Int()).Build();
    b.PokeI32(b.Global("i", b.Int()), 3);
    b.PokeDouble(b.Global("d", b.Double()), 2.5);
    b.Global("p", b.Ptr(t));
    b.Global("q", b.Ptr(u));
    b.Global("p2", b.Ptr(t));
    b.Global("vp", b.Ptr(fx_.image().types().Void()));
    scenarios::BuildIntArray(fx_.image(), "arr", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
    // This suite tests the check stage and verdict caching themselves, so pin
    // both on regardless of the DUEL_CHECK / DUEL_PLAN_CACHE ablation env.
    fx_.session().options().check = true;
    fx_.session().options().plan_cache = true;
  }

  std::vector<Diag> Diags(const std::string& expr) {
    return fx_.session().Check(expr).diags;
  }

  // The single diagnostic a query is expected to produce.
  Diag One(const std::string& expr) {
    std::vector<Diag> ds = Diags(expr);
    EXPECT_EQ(ds.size(), 1u) << "query `" << expr << "`";
    return ds.empty() ? Diag{} : ds[0];
  }

  DuelFixture fx_;
};

// --- hard errors: rule, message, span --------------------------------------

TEST_F(CheckTest, DerefNonPointer) {
  Diag d = One("*i");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "deref-non-pointer");
  EXPECT_EQ(d.message, "'*' needs a pointer operand");
  EXPECT_EQ(d.span.begin, 0u);
  EXPECT_EQ(d.span.end, 2u);
}

TEST_F(CheckTest, DerefVoidPointerHasCastFixit) {
  Diag d = One("*vp");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "deref-void-pointer");
  EXPECT_NE(d.fixit.find("cast"), std::string::npos) << d.fixit;
}

TEST_F(CheckTest, IndexNonPointer) {
  Diag d = One("i[0]");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "index-non-pointer");
  EXPECT_EQ(d.span.begin, 0u);
  EXPECT_EQ(d.span.end, 4u);  // covers `i[0]` including the bracket
}

TEST_F(CheckTest, UnknownName) {
  Diag d = One("nosuch + 1");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "unknown-name");
  EXPECT_EQ(d.message, "unknown name 'nosuch'");
  EXPECT_EQ(d.span.begin, 0u);
  EXPECT_EQ(d.span.end, 6u);
}

TEST_F(CheckTest, UnknownFunctionAndArity) {
  EXPECT_EQ(One("nosuchfn(1)").rule, "unknown-function");
  Diag d = One("abs(1, 2)");
  EXPECT_EQ(d.rule, "call-arity");
  EXPECT_EQ(d.message, "wrong number of arguments to 'abs' (expected 1, got 2)");
  EXPECT_NE(d.fixit.find("signature:"), std::string::npos) << d.fixit;
}

TEST_F(CheckTest, CallNonFunction) {
  Diag d = One("(1+2)(3)");
  EXPECT_EQ(d.rule, "call-non-function");
}

TEST_F(CheckTest, IncompatiblePointerComparison) {
  Diag d = One("p == q");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "ptr-compare-incompatible");
  // Same pointee type or void* stays legal.
  EXPECT_TRUE(Diags("p == p2").empty());
  EXPECT_TRUE(Diags("p == vp").empty());
  EXPECT_TRUE(Diags("p == 0").empty());
}

TEST_F(CheckTest, InvalidArithOperands) {
  Diag d = One("d & 1");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "invalid-operands");
  EXPECT_EQ(d.message, "invalid operands to '&' (double and int)");
}

TEST_F(CheckTest, DivisionByLiteralZero) {
  Diag d = One("1/0");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.rule, "div-by-zero");
  EXPECT_EQ(d.message, "division by zero");  // identical to the runtime text
  // A zero that only a run can see stays a runtime error.
  EXPECT_TRUE(Diags("5 % (1..2)").empty());
}

TEST_F(CheckTest, AddressOfRvalueAndAssignToRvalue) {
  EXPECT_EQ(One("&(i+1)").rule, "addrof-rvalue");
  EXPECT_EQ(One("1 = 2").rule, "assign-to-rvalue");
  EXPECT_EQ(One("++1").rule, "incdec-rvalue");
}

TEST_F(CheckTest, UnderscoreOutsideWith) {
  Diag d = One("_ + 1");
  EXPECT_EQ(d.rule, "underscore-outside-with");
  // Inside a with scope `_` is the subject.
  EXPECT_TRUE(Diags("arr[0].(_ + 1)").empty());
}

TEST_F(CheckTest, LexAndParseErrorsBecomeDiags) {
  EXPECT_EQ(One("1 +").rule, "syntax");
  EXPECT_EQ(One("`").rule, "lex");
}

// --- warnings: fix-its and spans -------------------------------------------

TEST_F(CheckTest, AssignInCondition) {
  Diag d = One("if (i = 1) 2");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule, "assign-in-condition");
  EXPECT_EQ(d.fixit, "did you mean '=='?");
  EXPECT_EQ(d.span.begin, 4u);
  EXPECT_EQ(d.span.end, 9u);  // covers `i = 1`
}

TEST_F(CheckTest, ArrayBoundLiteralIndex) {
  Diag d = One("arr[10]");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule, "array-bound");
  EXPECT_NE(d.message.find("index 10 is past the end"), std::string::npos) << d.message;
  EXPECT_EQ(d.fixit, "valid indices are 0..9");
  EXPECT_TRUE(Diags("arr[9]").empty());
}

TEST_F(CheckTest, ArrayBoundPrefixRange) {
  Diag d = One("arr[..12]");
  EXPECT_EQ(d.rule, "array-bound");
  EXPECT_EQ(d.fixit, "use [..10] to cover the whole array");
  EXPECT_TRUE(Diags("arr[..10]").empty());
  EXPECT_EQ(One("arr[0..10]").rule, "array-bound");
  EXPECT_TRUE(Diags("arr[0..9]").empty());
}

TEST_F(CheckTest, SideEffectUnderReEvaluatingOperator) {
  Diag d = One("(1..3) * i++");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule, "side-effect-reeval");
  EXPECT_NE(d.fixit.find("alias"), std::string::npos) << d.fixit;
}

TEST_F(CheckTest, AliasShadowsTarget) {
  Diag d = One("i := 5");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule, "alias-shadows-target");
  EXPECT_TRUE(Diags("fresh := 5").empty());
}

TEST_F(CheckTest, UnboundedWalkWhenCycleDetectOff) {
  EXPECT_TRUE(Diags("p-->val").empty());  // cycle detection defaults on
  fx_.session().options().eval.cycle_detect = false;
  fx_.session().plan_cache().Clear();
  EXPECT_EQ(One("p-->val").rule, "unbounded-walk");
}

// --- the soundness contract ------------------------------------------------

// A definite error inside a conditionally-evaluated subtree demotes to a
// warning: the runtime may never reach it, so the query must still run.
TEST_F(CheckTest, ErrorInUnevaluatedBranchDemotesToWarning) {
  Diag d = One("1 ? 2 : *i");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.rule, "deref-non-pointer");
  QueryResult r = fx_.session().Query("1 ? 2 : *i");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lines, (std::vector<std::string>{"2"}));
}

TEST_F(CheckTest, ShortCircuitRightSideDemotes) {
  EXPECT_EQ(One("0 && *i").severity, Severity::kWarning);
  QueryResult r = fx_.session().Query("0 && *i");
  EXPECT_TRUE(r.ok) << r.error;
}

// Unknown types silence every rule: an opaque subexpression must not
// produce false positives downstream.
TEST_F(CheckTest, UnknownTypesStaySilent) {
  EXPECT_TRUE(Diags("x := i; *x != 0").empty() || true);  // alias-typed: no crash
  EXPECT_TRUE(Diags("frames() >? 0").empty());
  EXPECT_TRUE(Diags("arr[..10] >? 0").empty());
}

// --- reject before BeginQuery: no target data is ever touched --------------

TEST_F(CheckTest, RejectedQueryTouchesNoTargetData) {
  obs::BackendInstr& instr = fx_.backend().instr();
  std::array<uint64_t, 6> before = {
      instr.calls(NarrowCall::kGetBytes),   instr.calls(NarrowCall::kPutBytes),
      instr.calls(NarrowCall::kValidBytes), instr.calls(NarrowCall::kAllocSpace),
      instr.calls(NarrowCall::kCallFunc),   instr.calls(NarrowCall::kReadVector)};
  QueryResult r = fx_.session().Query("*i + arr[0]");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(instr.calls(NarrowCall::kGetBytes), before[0]);
  EXPECT_EQ(instr.calls(NarrowCall::kPutBytes), before[1]);
  EXPECT_EQ(instr.calls(NarrowCall::kValidBytes), before[2]);
  EXPECT_EQ(instr.calls(NarrowCall::kAllocSpace), before[3]);
  EXPECT_EQ(instr.calls(NarrowCall::kCallFunc), before[4]);
  EXPECT_EQ(instr.calls(NarrowCall::kReadVector), before[5]);
}

// A literal-only rejected query makes no narrow calls at all — not even
// symbol or type lookups.
TEST_F(CheckTest, LiteralOnlyRejectionMakesZeroNarrowCalls) {
  obs::BackendInstr& instr = fx_.backend().instr();
  std::array<uint64_t, obs::kNumNarrowCalls> before{};
  for (size_t k = 0; k < obs::kNumNarrowCalls; ++k) {
    before[k] = instr.calls(static_cast<NarrowCall>(k));
  }
  QueryResult r = fx_.session().Query("*1");
  EXPECT_FALSE(r.ok);
  for (size_t k = 0; k < obs::kNumNarrowCalls; ++k) {
    EXPECT_EQ(instr.calls(static_cast<NarrowCall>(k)), before[k])
        << obs::NarrowCallName(static_cast<NarrowCall>(k));
  }
}

// --- verdict caching in the plan cache -------------------------------------

TEST_F(CheckTest, WarmPlanHitSkipsRecheckButReplaysDiagnostics) {
  fx_.session().options().collect_stats = true;
  QueryResult cold = fx_.session().Query("if (i = 1) 2");
  ASSERT_TRUE(cold.stats.has_value());
  EXPECT_FALSE(cold.stats->plan_hit);
  EXPECT_GT(cold.stats->check_ns, 0u);
  EXPECT_EQ(cold.stats->diags_warnings, 1u);

  QueryResult warm = fx_.session().Query("if (i = 1) 2");
  ASSERT_TRUE(warm.stats.has_value());
  EXPECT_TRUE(warm.stats->plan_hit);
  EXPECT_EQ(warm.stats->check_ns, 0u);  // replayed, not re-walked
  EXPECT_EQ(warm.stats->diags_warnings, 1u);
  ASSERT_EQ(warm.diags.size(), 1u);
  EXPECT_EQ(warm.diags[0].rule, "assign-in-condition");
}

// Defining an alias that shadows a name a cached verdict used invalidates
// the plan: the next query re-checks against the new resolution.
TEST_F(CheckTest, AliasCreationInvalidatesCachedVerdict) {
  fx_.session().options().collect_stats = true;
  EXPECT_EQ(fx_.session().Query("i + 1").lines,
            (std::vector<std::string>{"i+1 = 4"}));
  EXPECT_TRUE(fx_.session().Query("i + 1").stats->plan_hit);

  fx_.session().Query("i := 99");  // alias now shadows the target variable
  QueryResult r = fx_.session().Query("i + 1");
  ASSERT_TRUE(r.stats.has_value());
  EXPECT_FALSE(r.stats->plan_hit);  // verdict was name-dependent: rebuilt
  EXPECT_EQ(r.lines, (std::vector<std::string>{"i+1 = 100"}));
}

// --- warning modes ----------------------------------------------------------

TEST_F(CheckTest, WarnAsErrorRejects) {
  fx_.session().options().warn = WarnMode::kError;
  QueryResult r = fx_.session().Query("if (i = 1) 2");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("warnings are errors"), std::string::npos) << r.error;
}

TEST_F(CheckTest, WarnOffSuppressesReporting) {
  fx_.session().options().warn = WarnMode::kOff;
  QueryResult r = fx_.session().Query("if (i = 1) 2");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.diags.empty());
}

TEST_F(CheckTest, CheckOffStillReportsButDoesNotReject) {
  fx_.session().options().check = false;
  QueryResult r = fx_.session().Query("*i");
  EXPECT_FALSE(r.ok);  // fails at runtime instead, with the same message
  EXPECT_NE(r.error.find("'*' needs a pointer operand"), std::string::npos) << r.error;
  ASSERT_FALSE(r.diags.empty());
  EXPECT_EQ(r.diags[0].rule, "deref-non-pointer");
}

// --- runtime spans: both engines attribute faults identically --------------

TEST_F(CheckTest, EnginesReportIdenticalErrorSpans) {
  const char* faulting[] = {
      "arr[0] / (arr[1] + 1)",  // runtime division by zero
      "i / (i - 3)",            // ditto, via a variable
  };
  for (const char* expr : faulting) {
    fx_.session().options().engine = EngineKind::kStateMachine;
    QueryResult sm = fx_.session().Query(expr);
    fx_.session().options().engine = EngineKind::kCoroutine;
    QueryResult coro = fx_.session().Query(expr);
    EXPECT_FALSE(sm.ok) << expr;
    EXPECT_FALSE(coro.ok) << expr;
    EXPECT_FALSE(sm.error_span.empty()) << expr;
    EXPECT_EQ(sm.error_span.begin, coro.error_span.begin) << expr;
    EXPECT_EQ(sm.error_span.end, coro.error_span.end) << expr;
    EXPECT_EQ(sm.error, coro.error) << expr;
  }
}

// The rendered runtime error carries a caret block pointing at the span.
TEST_F(CheckTest, RuntimeErrorRendersCaret) {
  QueryResult r = fx_.session().Query("arr[0] / (arr[1] + 1)");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("division by zero"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find('^'), std::string::npos) << r.error;
}

}  // namespace
}  // namespace duel
