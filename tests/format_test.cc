// AST-to-source formatting: spot checks plus the round-trip property
// parse(format(parse(e))) == parse(e) on a corpus and fuzzed expressions.

#include "src/duel/format.h"

#include <gtest/gtest.h>

#include "src/duel/parser.h"

namespace duel {
namespace {

std::string Reformat(const std::string& expr) {
  Parser p(expr, [](const std::string& s) { return s == "List"; });
  return FormatAst(*p.Parse().root);
}

void ExpectRoundTrip(const std::string& expr) {
  Parser p1(expr, [](const std::string& s) { return s == "List"; });
  NodePtr ast1 = p1.Parse().root;
  std::string formatted = FormatAst(*ast1);
  Parser p2(formatted, [](const std::string& s) { return s == "List"; });
  NodePtr ast2;
  try {
    ast2 = p2.Parse().root;
  } catch (const DuelError& e) {
    FAIL() << "reformatted text failed to parse\n  original:  " << expr
           << "\n  formatted: " << formatted << "\n  error: " << e.what();
  }
  EXPECT_EQ(DumpAst(*ast1), DumpAst(*ast2))
      << "original:  " << expr << "\nformatted: " << formatted;
}

TEST(FormatTest, SpotChecks) {
  EXPECT_EQ(Reformat("1+2*3"), "1 + 2 * 3");
  EXPECT_EQ(Reformat("(1+2)*3"), "(1 + 2) * 3");
  EXPECT_EQ(Reformat("x[..100]>?0"), "x[..100] >? 0");
  EXPECT_EQ(Reformat("head-->next->value"), "head-->next->value");
  EXPECT_EQ(Reformat("hash[1,9]->(scope,name)"), "hash[1,9]->(scope,name)");
  EXPECT_EQ(Reformat("i:=1..3=>{i}+4"), "i := 1..3 => {i} + 4");
  EXPECT_EQ(Reformat("#/(root-->(left,right))"), "#/root-->(left,right)");  // postfix binds tighter than #/
  EXPECT_EQ(Reformat("a=0;"), "a = 0 ;");
  EXPECT_EQ(Reformat("(struct symbol*)p"), "(struct symbol *)p");
  EXPECT_EQ(Reformat("argv[0..]@0"), "argv[0..]@0");
}

TEST(FormatTest, PaperExamplesRoundTrip) {
  const char* kQueries[] = {
      "1 + (double)3/2",
      "(1,2,5)*4+(10,200)",
      "x[1..4,8,12..50] >? 5 <? 10",
      "x[1..3] == 7",
      "(hash[..1024] !=? 0)->scope >? 5",
      "hash[0..1023]->scope = 0 ;",
      "int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) {i}*5",
      "i := 1..3; i + 4",
      "x:= hash[..1024] !=? 0 => y:= x->scope => y = 0",
      "hash[1,9]->(scope,name)",
      "hash[..1024]->(if (_ && scope > 5) name)",
      "y:= x[j := ..10] => if (y < 0 || y > 100) x[{j}]",
      "hash[0]-->next->scope",
      "L-->next->(value ==? next-->next->value)",
      "root-->(if (key > 5) left else if (key < 5) right)->key",
      "hash[..1024]-->next-> if (next) scope <? next->scope",
      "((1..9)*(1..9))[[52,74]]",
      "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value",
      "s[0..999]@(_=='\\0')",
      "argv[0..]@0",
      "printf(\"%d %d, \", (3,4), 5..7) ;",
      "#/(root-->(left,right)->key)",
      "(1..3) === (1,2,3)",
      "frames().x >? 5",
      "sizeof(struct symbol *)",
      "sizeof x",
      "a ? b : c ? d : e",
      "-x[..5] + ~y",
      "p++ + --q",
      "x[a[[b]]]",
      "x[[a[b]]]",
      "List *p; p",
      "int a[10]; a[0]",
      "root-->>(left,right)->key",
  };
  for (const char* q : kQueries) {
    ExpectRoundTrip(q);
  }
}

TEST(FormatTest, FuzzedRoundTrip) {
  static const char* kFragments[] = {
      "x",  "1",   "(",  ")",  "..9", "+",  "*",  ",",  ">?", "=>", "#/", "[[0]]",
      "@1", "#k",  "-",  "!",  "===", "?",  ":",  "&&", "||", "if (x) y else z",
      "{x}", "a.b", "p->q", "L-->next",
  };
  uint32_t state = 7;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  int round_tripped = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = 1 + next() % 12;
    for (size_t i = 0; i < len; ++i) {
      input += kFragments[next() % (sizeof(kFragments) / sizeof(kFragments[0]))];
      input += ' ';
    }
    NodePtr ast1;
    try {
      Parser p(input);
      ast1 = p.Parse().root;
    } catch (const DuelError&) {
      continue;  // not parseable: nothing to round-trip
    }
    std::string formatted = FormatAst(*ast1);
    Parser p2(formatted);
    NodePtr ast2 = p2.Parse().root;  // must not throw
    ASSERT_EQ(DumpAst(*ast1), DumpAst(*ast2))
        << "original:  " << input << "\nformatted: " << formatted;
    round_tripped++;
  }
  EXPECT_GT(round_tripped, 10);  // enough soups parse to exercise the property
}

}  // namespace
}  // namespace duel
