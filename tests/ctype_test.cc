// C type system: LP64 sizes, struct/union/bit-field layout, declarator
// printing, equality, interning.

#include "src/target/ctype.h"

#include <gtest/gtest.h>

namespace duel::target {
namespace {

TEST(CTypeTest, BasicSizesLP64) {
  TypeTable tt;
  EXPECT_EQ(tt.Char()->size(), 1u);
  EXPECT_EQ(tt.Short()->size(), 2u);
  EXPECT_EQ(tt.Int()->size(), 4u);
  EXPECT_EQ(tt.Long()->size(), 8u);
  EXPECT_EQ(tt.LongLong()->size(), 8u);
  EXPECT_EQ(tt.Float()->size(), 4u);
  EXPECT_EQ(tt.Double()->size(), 8u);
  EXPECT_EQ(tt.PointerTo(tt.Int())->size(), 8u);
}

TEST(CTypeTest, Predicates) {
  TypeTable tt;
  EXPECT_TRUE(tt.Char()->IsSignedInteger());  // char is signed here
  EXPECT_TRUE(tt.UInt()->IsUnsignedInteger());
  EXPECT_TRUE(tt.Double()->IsFloating());
  EXPECT_TRUE(tt.PointerTo(tt.Void())->IsScalar());
  EXPECT_FALSE(tt.PointerTo(tt.Void())->IsArithmetic());
}

TEST(CTypeTest, PointerAndArrayInterning) {
  TypeTable tt;
  EXPECT_EQ(tt.PointerTo(tt.Int()).get(), tt.PointerTo(tt.Int()).get());
  EXPECT_EQ(tt.ArrayOf(tt.Int(), 10).get(), tt.ArrayOf(tt.Int(), 10).get());
  EXPECT_NE(tt.ArrayOf(tt.Int(), 10).get(), tt.ArrayOf(tt.Int(), 11).get());
}

TEST(CTypeTest, StructLayoutWithPadding) {
  TypeTable tt;
  TypeRef s = tt.DeclareStruct("S");
  tt.CompleteRecord(s, {{"c", tt.Char(), 0, false, 0, 0},
                        {"i", tt.Int(), 0, false, 0, 0},
                        {"c2", tt.Char(), 0, false, 0, 0}});
  EXPECT_EQ(s->FindMember("c")->offset, 0u);
  EXPECT_EQ(s->FindMember("i")->offset, 4u);
  EXPECT_EQ(s->FindMember("c2")->offset, 8u);
  EXPECT_EQ(s->size(), 12u);  // padded to int alignment
  EXPECT_EQ(s->align(), 4u);
}

TEST(CTypeTest, RecursiveStructViaForwardDeclaration) {
  TypeTable tt;
  TypeRef s = tt.DeclareStruct("node");
  EXPECT_FALSE(s->complete());
  tt.CompleteRecord(s, {{"key", tt.Int(), 0, false, 0, 0},
                        {"next", tt.PointerTo(s), 0, false, 0, 0}});
  EXPECT_TRUE(s->complete());
  EXPECT_EQ(s->size(), 16u);
  EXPECT_EQ(s->FindMember("next")->type->target().get(), s.get());
}

TEST(CTypeTest, UnionLayout) {
  TypeTable tt;
  TypeRef u = tt.DeclareUnion("U");
  tt.CompleteRecord(u, {{"c", tt.Char(), 0, false, 0, 0},
                        {"d", tt.Double(), 0, false, 0, 0}});
  EXPECT_EQ(u->size(), 8u);
  EXPECT_EQ(u->FindMember("c")->offset, 0u);
  EXPECT_EQ(u->FindMember("d")->offset, 0u);
}

TEST(CTypeTest, BitfieldPacking) {
  TypeTable tt;
  TypeRef s = tt.DeclareStruct("B");
  tt.CompleteRecord(s, {{"a", tt.UInt(), 0, true, 0, 3},
                        {"b", tt.UInt(), 0, true, 0, 5},
                        {"c", tt.UInt(), 0, true, 0, 30},  // does not fit: new unit
                        {"plain", tt.Char(), 0, false, 0, 0}});
  const Member* a = s->FindMember("a");
  const Member* b = s->FindMember("b");
  const Member* c = s->FindMember("c");
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(a->bit_offset, 0u);
  EXPECT_EQ(b->offset, 0u);
  EXPECT_EQ(b->bit_offset, 3u);
  EXPECT_EQ(c->offset, 4u);
  EXPECT_EQ(c->bit_offset, 0u);
  EXPECT_EQ(s->FindMember("plain")->offset, 8u);
}

TEST(CTypeTest, EnumDefinition) {
  TypeTable tt;
  TypeRef e = tt.DefineEnum("color", {{"RED", 0}, {"GREEN", 1}, {"BLUE", 7}});
  EXPECT_EQ(e->size(), 4u);
  EXPECT_EQ(e->enumerators()[2].value, 7);
  EXPECT_EQ(tt.LookupEnum("color").get(), e.get());
}

TEST(CTypeTest, DeclaratorPrinting) {
  TypeTable tt;
  EXPECT_EQ(tt.Int()->ToString(), "int");
  EXPECT_EQ(tt.PointerTo(tt.Char())->ToString(), "char *");
  EXPECT_EQ(tt.ArrayOf(tt.Int(), 10)->Declare("x"), "int x[10]");
  EXPECT_EQ(tt.PointerTo(tt.ArrayOf(tt.Int(), 10))->Declare("x"), "int (*x)[10]");
  EXPECT_EQ(tt.ArrayOf(tt.PointerTo(tt.Char()), 4)->Declare("argv"), "char *argv[4]");
  TypeRef s = tt.DeclareStruct("symbol");
  EXPECT_EQ(tt.PointerTo(s)->ToString(), "struct symbol *");
  TypeRef fn = tt.Function(tt.Int(), {{"x", tt.Int()}}, true);
  EXPECT_EQ(fn->Declare("f"), "int f(int x, ...)");
  EXPECT_EQ(tt.PointerTo(fn)->Declare("pf"), "int (*pf)(int x, ...)");
}

TEST(CTypeTest, TypeEquality) {
  TypeTable tt1;
  TypeTable tt2;
  EXPECT_TRUE(TypeEquals(tt1.Int(), tt2.Int()));
  EXPECT_TRUE(TypeEquals(tt1.PointerTo(tt1.Int()), tt2.PointerTo(tt2.Int())));
  EXPECT_FALSE(TypeEquals(tt1.Int(), tt1.UInt()));
  TypeRef a = tt1.DeclareStruct("s");
  TypeRef b = tt2.DeclareStruct("s");
  EXPECT_TRUE(TypeEquals(a, b));  // tag identity
  EXPECT_FALSE(TypeEquals(a, tt2.DeclareStruct("t")));
}

TEST(CTypeTest, DoubleCompletionRejected) {
  TypeTable tt;
  TypeRef s = tt.DeclareStruct("S");
  tt.CompleteRecord(s, {{"x", tt.Int(), 0, false, 0, 0}});
  EXPECT_THROW(tt.CompleteRecord(s, {{"y", tt.Int(), 0, false, 0, 0}}), DuelError);
}

}  // namespace
}  // namespace duel::target
