// The scenario builders themselves: deterministic layout and contents.

#include "src/scenarios/scenarios.h"

#include <gtest/gtest.h>

#include "src/target/builder.h"

namespace duel::scenarios {
namespace {

TEST(ScenariosTest, IntArrayContents) {
  target::TargetImage image;
  target::Addr base = BuildIntArray(image, "x", {7, -3, 0});
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(base), 7);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(base + 4), -3);
  const target::Variable* v = image.symbols().FindVariable("x");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->type->ToString(), "int [3]");
}

TEST(ScenariosTest, RandomArrayIsDeterministic) {
  target::TargetImage a, b;
  target::Addr pa = BuildRandomIntArray(a, "x", 100, -5, 5, 99);
  target::Addr pb = BuildRandomIntArray(b, "x", 100, -5, 5, 99);
  for (size_t i = 0; i < 100; ++i) {
    int32_t va = a.memory().ReadScalar<int32_t>(pa + i * 4);
    int32_t vb = b.memory().ReadScalar<int32_t>(pb + i * 4);
    EXPECT_EQ(va, vb);
    EXPECT_GE(va, -5);
    EXPECT_LE(va, 5);
  }
}

TEST(ScenariosTest, ListLinks) {
  target::TargetImage image;
  target::Addr head = BuildList(image, "L", {10, 20});
  target::TypeRef list = image.types().LookupStruct("List");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->size(), 16u);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(head), 10);
  target::Addr second = image.memory().ReadScalar<target::Addr>(head + 8);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(second), 20);
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(second + 8), 0u);
  // The typedef the paper's C code uses exists.
  EXPECT_NE(image.types().LookupTypedef("List"), nullptr);
}

TEST(ScenariosTest, EmptyList) {
  target::TargetImage image;
  EXPECT_EQ(BuildList(image, "L", {}), 0u);
  target::Addr g = image.symbols().FindVariable("L")->addr;
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(g), 0u);
}

TEST(ScenariosTest, CyclicListPointsBack) {
  target::TargetImage image;
  target::Addr head = BuildCyclicList(image, "L", {1, 2, 3}, 0);
  target::Addr n2 = image.memory().ReadScalar<target::Addr>(head + 8);
  target::Addr n3 = image.memory().ReadScalar<target::Addr>(n2 + 8);
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(n3 + 8), head);
}

TEST(ScenariosTest, TreeSpecParsing) {
  target::TargetImage image;
  target::Addr root = BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(root), 9);
  target::Addr left = image.memory().ReadScalar<target::Addr>(root + 8);
  target::Addr right = image.memory().ReadScalar<target::Addr>(root + 16);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(left), 3);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(right), 12);
  target::Addr ll = image.memory().ReadScalar<target::Addr>(left + 8);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(ll), 4);
}

TEST(ScenariosTest, TreeSpecVariants) {
  target::TargetImage image;
  // Negative keys, empty subtrees, left-only.
  target::Addr root = BuildTree(image, "t1", "(-5 () (2 (1)))");
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(root), -5);
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(root + 8), 0u);  // left empty
  EXPECT_THROW(BuildTree(image, "bad1", "9"), DuelError);
  EXPECT_THROW(BuildTree(image, "bad2", "(9"), DuelError);
  EXPECT_THROW(BuildTree(image, "bad3", "(9) junk"), DuelError);
}

TEST(ScenariosTest, SymtabChains) {
  target::TargetImage image;
  BuildSymtab(image, {{3, {{"a", 2}, {"b", 1}}}}, 16);
  const target::Variable* hash = image.symbols().FindVariable("hash");
  ASSERT_NE(hash, nullptr);
  EXPECT_EQ(hash->type->Declare("hash"), "struct symbol *hash[16]");
  target::Addr first = image.memory().ReadScalar<target::Addr>(hash->addr + 3 * 8);
  ASSERT_NE(first, 0u);
  // name, scope, next layout: char* at 0, int at 8, ptr at 16.
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(first + 8), 2);
  std::string name;
  bool trunc;
  target::Addr name_ptr = image.memory().ReadScalar<target::Addr>(first);
  ASSERT_TRUE(image.memory().ReadCString(name_ptr, 10, &name, &trunc));
  EXPECT_EQ(name, "a");
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(hash->addr), 0u);  // bucket 0 NULL
  EXPECT_THROW(BuildSymtab(image, {{99, {}}}, 16), DuelError);
}

TEST(ScenariosTest, DenseSymtabSortedChains) {
  target::TargetImage image;
  BuildDenseSymtab(image, 32);
  const target::Variable* hash = image.symbols().FindVariable("hash");
  for (size_t b = 0; b < 32; ++b) {
    target::Addr node = image.memory().ReadScalar<target::Addr>(hash->addr + b * 8);
    ASSERT_NE(node, 0u);
    int32_t prev = image.memory().ReadScalar<int32_t>(node + 8);
    node = image.memory().ReadScalar<target::Addr>(node + 16);
    while (node != 0) {
      int32_t scope = image.memory().ReadScalar<int32_t>(node + 8);
      EXPECT_LT(scope, prev);
      prev = scope;
      node = image.memory().ReadScalar<target::Addr>(node + 16);
    }
  }
}

TEST(ScenariosTest, ArgvNullTerminated) {
  target::TargetImage image;
  BuildArgv(image, {"a", "bc"});
  const target::Variable* argv = image.symbols().FindVariable("argv");
  ASSERT_NE(argv, nullptr);
  EXPECT_EQ(argv->type->Declare("argv"), "char *argv[3]");
  EXPECT_EQ(image.memory().ReadScalar<target::Addr>(argv->addr + 16), 0u);
  const target::Variable* argc = image.symbols().FindVariable("argc");
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(argc->addr), 2);
}

TEST(ScenariosTest, FramesInnermostFirst) {
  target::TargetImage image;
  BuildFrames(image, 3);
  ASSERT_EQ(image.symbols().NumFrames(), 3u);
  EXPECT_EQ(image.symbols().GetFrame(0).function, "fn0");
  EXPECT_EQ(image.symbols().GetFrame(2).function, "fn2");
  const target::Variable& x2 = image.symbols().GetFrame(2).locals[0];
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(x2.addr), 20);
}

}  // namespace
}  // namespace duel::scenarios
