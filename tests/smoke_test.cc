#include <gtest/gtest.h>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

namespace duel {
namespace {

TEST(Smoke, BasicArithmetic) {
  target::TargetImage image;
  dbg::SimBackend backend(image);
  Session session(backend);
  QueryResult r = session.Query("1 + (double)3/2");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0], "1+(double)3/2 = 2.5");
}

TEST(Smoke, GeneratorsAbstractExample) {
  target::TargetImage image;
  dbg::SimBackend backend(image);
  Session session(backend);
  QueryResult r = session.Query("(1..3)+(5,9)");
  ASSERT_TRUE(r.ok) << r.error;
  std::vector<std::string> values;
  for (auto& l : r.lines) values.push_back(l);
  ASSERT_EQ(values.size(), 6u);
  EXPECT_EQ(values[0], "1+5 = 6");
  EXPECT_EQ(values[1], "1+9 = 10");
  EXPECT_EQ(values[5], "3+9 = 12");
}

TEST(Smoke, ArrayFilter) {
  target::TargetImage image;
  scenarios::BuildIntArray(image, "x", {0, -1, 2, 7, 0, 3, -5, 9, 0, 1});
  dbg::SimBackend backend(image);
  Session session(backend);
  QueryResult r = session.Query("x[..10] >? 2");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.lines.size(), 3u);
  EXPECT_EQ(r.lines[0], "x[3] = 7");
  EXPECT_EQ(r.lines[1], "x[5] = 3");
  EXPECT_EQ(r.lines[2], "x[7] = 9");
}

TEST(Smoke, ListTraversal) {
  target::TargetImage image;
  scenarios::BuildList(image, "L", {10, 20, 30});
  dbg::SimBackend backend(image);
  Session session(backend);
  QueryResult r = session.Query("L-->next->value");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.lines.size(), 3u);
  EXPECT_EQ(r.lines[0], "L->value = 10");
  EXPECT_EQ(r.lines[1], "L->next->value = 20");
  EXPECT_EQ(r.lines[2], "L->next->next->value = 30");
}

TEST(Smoke, CoroutineEngineMatches) {
  target::TargetImage image;
  scenarios::BuildIntArray(image, "x", {5, 1, 8, 3});
  dbg::SimBackend backend(image);
  SessionOptions opts;
  opts.engine = EngineKind::kCoroutine;
  Session session(backend, opts);
  QueryResult r = session.Query("x[..4] >? 4");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.lines[0], "x[0] = 5");
  EXPECT_EQ(r.lines[1], "x[2] = 8");
}

}  // namespace
}  // namespace duel
