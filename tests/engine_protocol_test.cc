// The engine pull protocol itself: one value per Next(), nullopt at
// exhaustion, and the paper's restart rule — "After NOVALUE is returned, the
// next call to eval re-evaluates the node."

#include <gtest/gtest.h>

#include "src/duel/parser.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class EngineProtocolTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  DuelFixture fx_;
};

TEST_P(EngineProtocolTest, RestartsAfterExhaustion) {
  scenarios::BuildIntArray(fx_.image(), "x", {7, 0, 9});
  EvalContext ctx(fx_.backend(), EvalOptions());
  Parser parser("x[..3] >? 5");
  ParseResult parsed = parser.Parse();
  std::unique_ptr<EvalEngine> engine = MakeEngine(GetParam(), ctx);
  engine->Start(*parsed.root, parsed.num_nodes);

  for (int round = 0; round < 3; ++round) {
    std::optional<Value> v1 = engine->Next();
    ASSERT_TRUE(v1.has_value()) << "round " << round;
    EXPECT_EQ(v1->sym().Text(), "x[0]");
    std::optional<Value> v2 = engine->Next();
    ASSERT_TRUE(v2.has_value());
    EXPECT_EQ(v2->sym().Text(), "x[2]");
    EXPECT_FALSE(engine->Next().has_value()) << "round " << round;
    // The paper: after NOVALUE, evaluation starts over.
  }
}

TEST_P(EngineProtocolTest, SideEffectsRepeatOnRestart) {
  EvalContext ctx(fx_.backend(), EvalOptions());
  Parser parser("int n; n = n + 1; {n}");
  ParseResult parsed = parser.Parse();
  std::unique_ptr<EvalEngine> engine = MakeEngine(GetParam(), ctx);
  engine->Start(*parsed.root, parsed.num_nodes);

  ASSERT_TRUE(engine->Next().has_value());
  EXPECT_FALSE(engine->Next().has_value());
  // Restart: the declaration re-allocates (fresh n = 0), so the incremented
  // value is 1 again — the whole expression is re-evaluated, as specified.
  std::optional<Value> v = engine->Next();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->sym().Text(), "1");
}

TEST_P(EngineProtocolTest, StartResetsState) {
  EvalContext ctx(fx_.backend(), EvalOptions());
  Parser parser("1..3");
  ParseResult parsed = parser.Parse();
  std::unique_ptr<EvalEngine> engine = MakeEngine(GetParam(), ctx);
  engine->Start(*parsed.root, parsed.num_nodes);
  ASSERT_TRUE(engine->Next().has_value());  // 1 pulled, sequence mid-flight
  engine->Start(*parsed.root, parsed.num_nodes);
  std::optional<Value> v = engine->Next();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->sym().Text(), "1");  // back to the beginning
}

TEST_P(EngineProtocolTest, ScopeStackBalancedAfterEveryPull) {
  scenarios::BuildList(fx_.image(), "L", {1, 2, 3});
  EvalContext ctx(fx_.backend(), EvalOptions());
  Parser parser("L-->next->(value ==? (1..3))");
  ParseResult parsed = parser.Parse();
  std::unique_ptr<EvalEngine> engine = MakeEngine(GetParam(), ctx);
  engine->Start(*parsed.root, parsed.num_nodes);
  int values = 0;
  while (engine->Next().has_value()) {
    EXPECT_TRUE(ctx.scopes().empty()) << "scope leaked across a suspension";
    ++values;
  }
  EXPECT_TRUE(ctx.scopes().empty());
  EXPECT_EQ(values, 3);
}

TEST_P(EngineProtocolTest, ScopeStackBalancedAfterErrors) {
  scenarios::BuildSymtab(fx_.image(), {});  // all-NULL buckets
  EvalContext ctx(fx_.backend(), EvalOptions());
  Parser parser("hash[0]->scope");
  ParseResult parsed = parser.Parse();
  std::unique_ptr<EvalEngine> engine = MakeEngine(GetParam(), ctx);
  engine->Start(*parsed.root, parsed.num_nodes);
  EXPECT_THROW(engine->Next(), DuelError);
  EXPECT_TRUE(ctx.scopes().empty()) << "scope leaked across an exception";
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineProtocolTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

// Compound assignments: every operator, via both engines implicitly (the
// corpus test covers engines; here the arithmetic itself).
TEST(CompoundAssignTest, AllOperators) {
  struct Case {
    const char* op;
    int32_t initial;
    const char* rhs;
    const char* expected;
  };
  const Case kCases[] = {
      {"+=", 10, "3", "13"},  {"-=", 10, "3", "7"},    {"*=", 10, "3", "30"},
      {"/=", 10, "3", "3"},   {"%=", 10, "3", "1"},    {"<<=", 10, "2", "40"},
      {">>=", 10, "2", "2"},  {"&=", 12, "10", "8"},   {"|=", 12, "10", "14"},
      {"^=", 12, "10", "6"},
  };
  for (const Case& c : kCases) {
    DuelFixture fx;
    target::ImageBuilder b(fx.image());
    target::Addr v = b.Global("v", b.Int());
    b.PokeI32(v, c.initial);
    fx.Lines(std::string("v ") + c.op + " " + c.rhs + " ;");
    EXPECT_EQ(fx.One("{v}"), c.expected) << c.op;
  }
}

TEST(CompoundAssignTest, OverGeneratedLvalues) {
  DuelFixture fx;
  scenarios::BuildIntArray(fx.image(), "x", {1, 2, 3, 4});
  fx.Lines("x[..4] *= 10 ;");
  EXPECT_EQ(fx.One("+/x[..4]"), "100");
  fx.Lines("x[..4] >>= 1 ;");
  EXPECT_EQ(fx.One("+/x[..4]"), "50");
}

}  // namespace
}  // namespace duel
