// Session-level behaviour: alias persistence across queries, output
// truncation, option plumbing, Drive vs Query, output formatting corners.

#include <gtest/gtest.h>

#include "src/duel/output.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(SessionTest, AliasesPersistAcrossQueries) {
  fx_.Lines("v := 41 ;");
  EXPECT_EQ(fx_.One("v + 1"), "v+1 = 42");
  fx_.session().ClearAliases();
  EXPECT_FALSE(fx_.session().Query("v + 1").ok);
}

TEST_F(SessionTest, DeclaredVariablesPersistAcrossQueries) {
  fx_.Lines("int counter ;");
  fx_.Lines("counter = 7 ;");
  EXPECT_EQ(fx_.One("{counter}"), "7");
}

TEST_F(SessionTest, OutputTruncationGuard) {
  fx_.session().options().max_output_values = 10;
  QueryResult r = fx_.session().Query("1..100");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.value_count, 10u);
  EXPECT_EQ(r.lines.back(), "...");
}

TEST_F(SessionTest, DriveSkipsFormatting) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  EXPECT_EQ(fx_.session().Drive("x[..3]"), 3u);
  // Drive throws on errors rather than returning a QueryResult.
  EXPECT_THROW(fx_.session().Drive("nosuch"), DuelError);
}

TEST_F(SessionTest, EntriesMatchLines) {
  scenarios::BuildIntArray(fx_.image(), "x", {5, 0, 7});
  QueryResult r = fx_.session().Query("x[..3] >? 1");
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_EQ(r.entries[0].sym, "x[0]");
  EXPECT_EQ(r.entries[0].value, "5");
  EXPECT_EQ(r.lines[0], "x[0] = 5");
}

TEST_F(SessionTest, ResultTextJoinsLinesAndError) {
  QueryResult ok = fx_.session().Query("(1,2)");
  EXPECT_EQ(ok.Text(), "1\n2\n");
  QueryResult bad = fx_.session().Query("nosuch");
  EXPECT_NE(bad.Text().find("unknown name"), std::string::npos);
}

TEST_F(SessionTest, OptionChangesTakeEffectNextQuery) {
  scenarios::BuildIntArray(fx_.image(), "x", {5});
  EXPECT_EQ(fx_.One("x[0] >? 1"), "x[0] = 5");
  fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOff;
  EXPECT_EQ(fx_.One("x[0] >? 1"), "5");
}

TEST_F(SessionTest, CountersAccumulate) {
  fx_.session().Drive("#/(1..100)");
  EXPECT_GT(fx_.session().context().counters().eval_steps, 100u);
  fx_.session().Query("1..5");
  EXPECT_EQ(fx_.session().context().counters().values_produced, 5u);
}

TEST_F(SessionTest, HistoryRecordsQueries) {
  fx_.session().Query("1+1");
  fx_.session().Query("2+2");
  fx_.session().Query("2+2");  // immediate repeat collapses
  ASSERT_EQ(fx_.session().history().size(), 2u);
  EXPECT_EQ(fx_.session().history()[0], "1+1");
  EXPECT_EQ(fx_.session().history()[1], "2+2");
  fx_.session().ClearHistory();
  EXPECT_TRUE(fx_.session().history().empty());
}

TEST_F(SessionTest, HistoryDepthIsBounded) {
  fx_.session().options().max_history = 3;
  for (int i = 0; i < 10; ++i) {
    fx_.session().Query(std::to_string(i));
  }
  ASSERT_EQ(fx_.session().history().size(), 3u);
  EXPECT_EQ(fx_.session().history().front(), "7");
}

class OutputFormatTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(OutputFormatTest, PlainConstantsPrintOnce) {
  // "5 = 5" would be silly; constants print bare.
  EXPECT_EQ(fx_.One("5"), "5");
  EXPECT_EQ(fx_.One("'a'"), "'a'");
}

TEST_F(OutputFormatTest, NegativeNumbersAndLongs) {
  EXPECT_EQ(fx_.One("-5"), "-5");  // sym equals the value text: printed once
  EXPECT_EQ(fx_.One("10000000000"), "10000000000");
  EXPECT_EQ(fx_.One("0x10"), "16");  // hex literals display in decimal
}

TEST_F(OutputFormatTest, PointerFormats) {
  target::ImageBuilder b(fx_.image());
  target::Addr p = b.Global("p", b.Ptr(b.Int()));
  b.PokePtr(p, 0x12345);
  EXPECT_EQ(fx_.One("p"), "p = 0x12345");
  b.PokePtr(p, 0);
  EXPECT_EQ(fx_.One("p"), "p = 0x0");
}

TEST_F(OutputFormatTest, StringTruncationCap) {
  target::ImageBuilder b(fx_.image());
  target::Addr s = b.Global("s", b.Ptr(b.Char()));
  b.PokePtr(s, b.String(std::string(200, 'x')));
  fx_.session().options().eval.max_string_display = 10;
  std::string line = fx_.One("s");
  EXPECT_EQ(line, "s = \"xxxxxxxxxx\"...");
}

TEST_F(OutputFormatTest, UnterminatedStringAtSegmentEnd) {
  // A char* into memory with no NUL before invalid space: display truncates
  // rather than faulting.
  target::ImageBuilder b(fx_.image());
  target::Addr s = b.Global("s", b.Ptr(b.Char()));
  target::Addr data = fx_.image().memory().Allocate(4, 1);
  fx_.image().memory().Write(data, "abcd", 4);
  b.PokePtr(s, data);
  // Heap beyond the 4 bytes may be allocated by other objects; at minimum
  // this must not throw.
  std::string line = fx_.One("s");
  EXPECT_NE(line.find("\"abcd"), std::string::npos) << line;
}

TEST_F(OutputFormatTest, NestedStructDisplayDepthCapped) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef core = b.Struct("core").Field("v", b.Int()).Build();
  target::TypeRef inner = b.Struct("inner").Field("c", core).Build();
  target::TypeRef mid = b.Struct("mid").Field("i", inner).Build();
  target::TypeRef outer = b.Struct("outer").Field("m", mid).Build();
  b.Global("deep", outer);
  std::string line = fx_.One("deep");
  EXPECT_NE(line.find("{...}"), std::string::npos) << line;
}

TEST_F(OutputFormatTest, ArrayElision) {
  scenarios::BuildIntArray(fx_.image(), "big", std::vector<int32_t>(50, 1));
  std::string line = fx_.One("big");
  EXPECT_NE(line.find(", ...}"), std::string::npos) << line;
}

TEST_F(OutputFormatTest, VoidAndFunctionValues) {
  EXPECT_EQ(fx_.One("(void)5"), "(void)5 = void");
  EXPECT_EQ(fx_.One("printf"), "printf = <function>");
}

class PrebindTest : public ::testing::Test {
 protected:
  PrebindTest() {
    fx_.session().options().eval.prebind = true;
    scenarios::BuildIntArray(fx_.image(), "x", {3, -1, 4});
    target::ImageBuilder b(fx_.image());
    target::Addr i = b.Global("i", b.Int());
    b.PokeI32(i, 5);
  }

  DuelFixture fx_;
};

TEST_F(PrebindTest, ResultsUnchangedWithPrebinding) {
  EXPECT_EQ(fx_.Lines("x[..3] >? 0"),
            (std::vector<std::string>{"x[0] = 3", "x[2] = 4"}));
  EXPECT_EQ(fx_.One("#/((1..100)+i)"), "100");
}

TEST_F(PrebindTest, PrebindingSkipsBackendLookups) {
  fx_.session().Drive("#/((1..100)+i)");  // warms nothing; prebind binds i once
  uint64_t before = fx_.backend().counters().symbol_lookups;
  fx_.session().Drive("#/((1..100)+i)");
  uint64_t per_query = fx_.backend().counters().symbol_lookups - before;
  // One lookup at prebind time (plus the typedef probe pattern), not 100.
  EXPECT_LT(per_query, 10u);

  fx_.session().options().eval.prebind = false;
  before = fx_.backend().counters().symbol_lookups;
  fx_.session().Drive("#/((1..100)+i)");
  EXPECT_GE(fx_.backend().counters().symbol_lookups - before, 100u);
}

TEST_F(PrebindTest, AliasedNamesAreNotPrebound) {
  fx_.Lines("i := 99 ;");  // session alias shadows the global
  EXPECT_EQ(fx_.One("{i}"), "99");
}

TEST_F(PrebindTest, NamesDefinedInTheQueryAreNotPrebound) {
  // `i` is :=-defined inside the query; prebinding must leave it dynamic.
  std::vector<std::string> lines = fx_.Lines("i := 7 => {i} + 1");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "7+1 = 8");
}

TEST_F(PrebindTest, WithScopedNamesStayDynamic) {
  scenarios::BuildList(fx_.image(), "L", {5, 6});
  // `value` must resolve as a member, even though prebinding ran.
  EXPECT_EQ(fx_.Lines("L-->next->value"),
            (std::vector<std::string>{"L->value = 5", "L->next->value = 6"}));
  // A global named like a member must not capture member references.
  target::ImageBuilder b(fx_.image());
  target::Addr g = b.Global("value", b.Int());
  b.PokeI32(g, 777);
  EXPECT_EQ(fx_.Lines("L-->next->value"),
            (std::vector<std::string>{"L->value = 5", "L->next->value = 6"}));
  EXPECT_EQ(fx_.One("{value}"), "777");  // ...but still resolves outside scopes
}

}  // namespace
}  // namespace duel
