// The frames() extension (Discussion section: "displaying the local x in all
// of the currently active stack frames ... is tedious to do with most
// debuggers").

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class FramesTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  FramesTest() : fx_(Options()) { scenarios::BuildFrames(fx_.image(), 3); }

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(FramesTest, FramesGeneratesAllActiveFrames) {
  std::vector<std::string> lines = fx_.Lines("frames()");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "frame(0) = frame #0 fn0");
  EXPECT_EQ(lines[2], "frame(2) = frame #2 fn2");
}

TEST_P(FramesTest, LocalXInEveryFrame) {
  EXPECT_EQ(fx_.Lines("frames().x"),
            (std::vector<std::string>{"frame(0).x = 0", "frame(1).x = 10",
                                      "frame(2).x = 20"}));
}

TEST_P(FramesTest, FrameLocalsComposeWithGenerators) {
  EXPECT_EQ(fx_.One("+/(frames().x)"), "30");
  EXPECT_EQ(fx_.Lines("frames().x >? 5"),
            (std::vector<std::string>{"frame(1).x = 10", "frame(2).x = 20"}));
}

TEST_P(FramesTest, BareNameUsesInnermostFrame) {
  // Conventional debugger scope rules: `x` alone is frame 0's local.
  EXPECT_EQ(fx_.One("{x}"), "0");
}

TEST_P(FramesTest, SelectingOneFrame) {
  EXPECT_EQ(fx_.Lines("frames()[[1]].x"), (std::vector<std::string>{"frame(1).x = 10"}));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, FramesTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

}  // namespace
}  // namespace duel
