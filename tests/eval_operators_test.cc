// Per-operator generator semantics, following the paper's Semantics section
// pseudo-code. Every operator is exercised on both engines via the
// parameterized suite at the bottom.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class OperatorTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  OperatorTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(OperatorTest, ToProducesInclusiveRange) {
  EXPECT_EQ(fx_.Lines("1..4"), (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST_P(OperatorTest, ToEmptyWhenLowAboveHigh) {
  EXPECT_TRUE(fx_.Lines("5..4").empty());
}

TEST_P(OperatorTest, ToWithGeneratorOperands) {
  // The paper: (to (alternate 1 5) (alternate 5 10)) produces four runs.
  std::vector<std::string> lines = fx_.Lines("(1,5)..(5,10)");
  std::vector<std::string> expected;
  for (int i = 1; i <= 5; ++i) expected.push_back(std::to_string(i));
  for (int i = 1; i <= 10; ++i) expected.push_back(std::to_string(i));
  expected.push_back("5");
  for (int i = 5; i <= 10; ++i) expected.push_back(std::to_string(i));
  EXPECT_EQ(lines, expected);
}

TEST_P(OperatorTest, PrefixToIsZeroToNMinusOne) {
  EXPECT_EQ(fx_.Lines("..3"), (std::vector<std::string>{"0", "1", "2"}));
}

TEST_P(OperatorTest, AlternateConcatenates) {
  EXPECT_EQ(fx_.Lines("(1,2),7"), (std::vector<std::string>{"1", "2", "7"}));
}

TEST_P(OperatorTest, PlusOverAllCombinations) {
  // The paper: (1..3)+(5,9) prints 6 10 7 11 8 12.
  std::vector<std::string> lines = fx_.Lines("(1..3)+(5,9)");
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], "1+5 = 6");
  EXPECT_EQ(lines[1], "1+9 = 10");
  EXPECT_EQ(lines[2], "2+5 = 7");
  EXPECT_EQ(lines[3], "2+9 = 11");
  EXPECT_EQ(lines[4], "3+5 = 8");
  EXPECT_EQ(lines[5], "3+9 = 12");
}

TEST_P(OperatorTest, PaperSyntaxSectionExamples) {
  // gdb> duel (1,2,5)*4+(10,200) and (3,11)+(5..7)
  std::vector<std::string> a = fx_.Lines("(1,2,5)*4+(10,200)");
  std::vector<std::string> values;
  for (const std::string& line : a) {
    values.push_back(line.substr(line.find(" = ") + 3));
  }
  EXPECT_EQ(values, (std::vector<std::string>{"14", "204", "18", "208", "30", "220"}));

  std::vector<std::string> b = fx_.Lines("(3,11)+(5..7)");
  values.clear();
  for (const std::string& line : b) {
    values.push_back(line.substr(line.find(" = ") + 3));
  }
  EXPECT_EQ(values, (std::vector<std::string>{"8", "9", "10", "16", "17", "18"}));
}

TEST_P(OperatorTest, FilterYieldsLeftOperand) {
  scenarios::BuildIntArray(fx_.image(), "x", {4, 9, 2, 8});
  EXPECT_EQ(fx_.Lines("x[..4] >? 5"), (std::vector<std::string>{"x[1] = 9", "x[3] = 8"}));
}

TEST_P(OperatorTest, FilterChainsComposeLikeBetween) {
  scenarios::BuildIntArray(fx_.image(), "x", {4, 9, 2, 8, 6});
  EXPECT_EQ(fx_.Lines("x[..5] >? 5 <? 8"), (std::vector<std::string>{"x[4] = 6"}));
}

TEST_P(OperatorTest, FilterAgainstGeneratorMatchesAnyCombination) {
  // x ==? (6..9): yields x once per matching right value.
  EXPECT_EQ(fx_.Lines("7 ==? (6..9)"), (std::vector<std::string>{"7"}));
  EXPECT_TRUE(fx_.Lines("5 ==? (6..9)").empty());
}

TEST_P(OperatorTest, CEqualityKeepsCSemantics) {
  scenarios::BuildIntArray(fx_.image(), "x", {0, 5, 7, 7});
  std::vector<std::string> lines = fx_.Lines("x[1..3] == 7");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "x[1]==7 = 0");
  EXPECT_EQ(lines[1], "x[2]==7 = 1");
  EXPECT_EQ(lines[2], "x[3]==7 = 1");
}

TEST_P(OperatorTest, ImplyYieldsRightPerLeftValue) {
  std::vector<std::string> lines = fx_.Lines("i := 1..3 => {i} + 4");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "1+4 = 5");
  EXPECT_EQ(lines[1], "2+4 = 6");
  EXPECT_EQ(lines[2], "3+4 = 7");
}

TEST_P(OperatorTest, SequenceDiscardsLeft) {
  // The paper: i := 1..3; i + 4 prints only i+4 = 7 (i left at 3).
  std::vector<std::string> lines = fx_.Lines("i := 1..3; i + 4");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "i+4 = 7");
}

TEST_P(OperatorTest, TrailingSemicolonSuppressesOutput) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  EXPECT_TRUE(fx_.Lines("x[..3] = 0 ;").empty());
  EXPECT_EQ(fx_.Lines("x[..3]"),
            (std::vector<std::string>{"x[0] = 0", "x[1] = 0", "x[2] = 0"}));
}

TEST_P(OperatorTest, AssignmentOverGeneratedLvalues) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3, 4});
  fx_.Lines("x[0..3] = 9 ;");
  EXPECT_EQ(fx_.One("+/x[..4]"), "36");
}

TEST_P(OperatorTest, CompoundAssignment) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  fx_.Lines("x[..3] += 10 ;");
  EXPECT_EQ(fx_.One("+/x[..3]"), "36");
}

TEST_P(OperatorTest, IfWithoutElseFiltersFalseValues) {
  std::vector<std::string> lines = fx_.Lines("i := ..9 => if (i%3 == 0) {i}*5");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0*5 = 0");
  EXPECT_EQ(lines[1], "3*5 = 15");
  EXPECT_EQ(lines[2], "6*5 = 30");
}

TEST_P(OperatorTest, IfElseSelectsBranch) {
  EXPECT_EQ(fx_.Lines("i := (0,1) => if (i) 10 else 20"),
            (std::vector<std::string>{"20", "10"}));
}

TEST_P(OperatorTest, TernaryBehavesLikeIfElse) {
  EXPECT_EQ(fx_.Lines("i := (0,1) => i ? 10 : 20"), (std::vector<std::string>{"20", "10"}));
}

TEST_P(OperatorTest, AndAndYieldsRightValuesPerTruthyLeft) {
  // e1 && e2 produces all of e2's values for each non-zero value of e1.
  EXPECT_EQ(fx_.Lines("(0,2,0,3) && (7,8)"),
            (std::vector<std::string>{"7", "8", "7", "8"}));
}

TEST_P(OperatorTest, OrOrYieldsLeftWhenTruthyElseRight) {
  EXPECT_EQ(fx_.Lines("(0,2) || (7,8)"), (std::vector<std::string>{"7", "8", "2"}));
}

TEST_P(OperatorTest, WhileLoopsOverBody) {
  std::vector<std::string> lines =
      fx_.Lines("int i; i = 0; while (i < 3) (i = i + 1; {i} * 10)");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "1*10 = 10");
  EXPECT_EQ(lines[2], "3*10 = 30");
}

TEST_P(OperatorTest, ForAsGenerator) {
  std::vector<std::string> lines = fx_.Lines("int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "4+0*5 = 4");
  EXPECT_EQ(lines[1], "4+3*5 = 19");
  EXPECT_EQ(lines[2], "4+6*5 = 34");
}

TEST_P(OperatorTest, SelectPicksZeroBasedElements) {
  // The paper: ((1..9)*(1..9))[[52,74]] -> 6*8 = 48, 9*3 = 27.
  std::vector<std::string> lines = fx_.Lines("((1..9)*(1..9))[[52,74]]");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "6*8 = 48");
  EXPECT_EQ(lines[1], "9*3 = 27");
}

TEST_P(OperatorTest, SelectOutOfRangeProducesNothing) {
  EXPECT_TRUE(fx_.Lines("(1..3)[[7]]").empty());
}

TEST_P(OperatorTest, CountReduction) {
  EXPECT_EQ(fx_.One("#/(1..10)"), "10");
  EXPECT_EQ(fx_.One("#/((1..4) >? 2)"), "2");
}

TEST_P(OperatorTest, SumReduction) {
  EXPECT_EQ(fx_.One("+/(1..10)"), "55");
  EXPECT_EQ(fx_.One("+/(1..0)"), "0");  // empty sum
}

TEST_P(OperatorTest, AllAnyReductions) {
  EXPECT_EQ(fx_.One("&&/(1..5)"), "1");
  EXPECT_EQ(fx_.One("&&/(0..5)"), "0");
  EXPECT_EQ(fx_.One("||/(0,0,3)"), "1");
  EXPECT_EQ(fx_.One("||/(0,0)"), "0");
}

TEST_P(OperatorTest, SequenceEquality) {
  EXPECT_EQ(fx_.One("(1..3) === (1,2,3)"), "1");
  EXPECT_EQ(fx_.One("(1..3) === (1,2)"), "0");
  EXPECT_EQ(fx_.One("(1..3) === (1,2,4)"), "0");
}

TEST_P(OperatorTest, UntilWithConstant) {
  scenarios::BuildIntArray(fx_.image(), "x", {5, 6, 0, 7});
  EXPECT_EQ(fx_.Lines("x[0..3]@0"), (std::vector<std::string>{"x[0] = 5", "x[1] = 6"}));
}

TEST_P(OperatorTest, UntilWithPredicate) {
  scenarios::BuildIntArray(fx_.image(), "x", {5, 6, 9, 7});
  EXPECT_EQ(fx_.Lines("x[0..3]@(_ > 8)"), (std::vector<std::string>{"x[0] = 5", "x[1] = 6"}));
}

TEST_P(OperatorTest, UntilOnStrings) {
  target::ImageBuilder b(fx_.image());
  target::Addr s = b.Global("s", b.Ptr(b.Char()));
  b.PokePtr(s, b.String("hi!"));
  std::vector<std::string> lines = fx_.Lines("s[0..999]@('\\0')");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "s[0] = 'h'");
  EXPECT_EQ(lines[2], "s[2] = '!'");
}

TEST_P(OperatorTest, IndexAliasTracksPosition) {
  scenarios::BuildIntArray(fx_.image(), "x", {7, 5, 7});
  std::vector<std::string> lines = fx_.Lines("x[..3]#k ==? 7 => {k}");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "0");
  EXPECT_EQ(lines[1], "2");
}

TEST_P(OperatorTest, DefineAliasesLvalues) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3, 4, 5, 6});
  // After (define b x[5]), changing b changes x[5].
  fx_.Lines("b := x[5] ;");
  fx_.Lines("b = 99 ;");
  EXPECT_EQ(fx_.One("{x[5]}"), "99");
}

TEST_P(OperatorTest, DefineYieldsEachValueWithAliasName) {
  std::vector<std::string> lines = fx_.Lines("y := (4,5)");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "y = 4");
  EXPECT_EQ(lines[1], "y = 5");
}

TEST_P(OperatorTest, DeclarationsCreateZeroedVariables) {
  EXPECT_EQ(fx_.One("int i; {i}"), "0");
  std::vector<std::string> two = fx_.Lines("int a, b; a = 3; b = 4; {a + b}");
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0], "7");
}

TEST_P(OperatorTest, WithOpensStructScope) {
  scenarios::BuildSymtab(fx_.image(),
                         {{1, {{"x", 3}}}, {9, {{"abc", 2}}}});
  std::vector<std::string> lines = fx_.Lines("hash[1,9]->(scope,name)");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "hash[1]->scope = 3");
  EXPECT_EQ(lines[1], "hash[1]->name = \"x\"");
  EXPECT_EQ(lines[2], "hash[9]->scope = 2");
  EXPECT_EQ(lines[3], "hash[9]->name = \"abc\"");
}

TEST_P(OperatorTest, UnderscoreDenotesWithSubject) {
  scenarios::BuildIntArray(fx_.image(), "x", {5, -9, 3, 120});
  std::vector<std::string> lines = fx_.Lines("x[..4].if (_ < 0 || _ > 100) _");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "x[1] = -9");
  EXPECT_EQ(lines[1], "x[3] = 120");
}

TEST_P(OperatorTest, ScopeDoesNotLeakAcrossOperands) {
  // While the left with is suspended, its scope must not be visible to the
  // right operand: `scope` is only defined inside hash[1]->(...).
  scenarios::BuildSymtab(fx_.image(), {{1, {{"x", 3}}}});
  QueryResult r = fx_.session().Query("hash[1]->(scope) + scope");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown name"), std::string::npos);
}

TEST_P(OperatorTest, CallsIterateAllArgumentCombinations) {
  std::vector<std::string> lines = fx_.Lines("printf(\"%d %d, \", (3,4), 5..7) ;");
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(fx_.image().TakeOutput(), "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, ");
}

TEST_P(OperatorTest, SizeofBehaves) {
  scenarios::BuildSymtab(fx_.image(), {{0, {{"a", 1}}}});
  EXPECT_EQ(fx_.One("{sizeof(int)}"), "4");
  EXPECT_EQ(fx_.One("{sizeof(struct symbol *)}"), "8");
  EXPECT_EQ(fx_.One("{sizeof(struct symbol)}"), "24");
  EXPECT_EQ(fx_.One("{sizeof 1.5}"), "8");
}

TEST_P(OperatorTest, CastsBehave) {
  EXPECT_EQ(fx_.One("1 + (double)3/2"), "1+(double)3/2 = 2.5");
  EXPECT_EQ(fx_.One("(char)65"), "(char)65 = 'A'");
  EXPECT_EQ(fx_.One("(unsigned char)(-1)"), "(unsigned char)-1 = '\\377'");
}

TEST_P(OperatorTest, IncDecOnAliases) {
  EXPECT_EQ(fx_.One("int i; i = 5; i++"), "i++ = 5");
  EXPECT_EQ(fx_.One("int j; j = 5; ++j; {j}"), "6");
}

TEST_P(OperatorTest, BraceSubstitutesValueInSymbolic) {
  std::vector<std::string> plain = fx_.Lines("int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5");
  ASSERT_EQ(plain.size(), 3u);
  EXPECT_EQ(plain[0], "4+i*5 = 4");  // "i" not substituted without braces
  EXPECT_EQ(plain[1], "4+i*5 = 19");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, OperatorTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                          : "Coroutine";
                         });

}  // namespace
}  // namespace duel
