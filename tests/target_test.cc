// Target substrate: memory segments and faults, image builder, symbol
// tables, frames, native functions (printf), type serialization.

#include <gtest/gtest.h>

#include "src/target/builder.h"
#include "src/target/ctype_io.h"
#include "src/target/datum.h"
#include "src/target/image.h"

namespace duel::target {
namespace {

TEST(MemoryTest, SegmentsAndFaults) {
  Memory m;
  m.AddSegment("data", 0x1000, 0x100, Perm::kReadWrite);
  m.WriteScalar<int32_t>(0x1000, 42);
  EXPECT_EQ(m.ReadScalar<int32_t>(0x1000), 42);
  EXPECT_TRUE(m.Valid(0x10fc, 4));
  EXPECT_FALSE(m.Valid(0x10fd, 4));  // straddles the end
  EXPECT_FALSE(m.Valid(0x0, 1));
  EXPECT_THROW(m.ReadScalar<int32_t>(0x2000), MemoryFault);
  EXPECT_THROW(m.WriteScalar<int32_t>(0x0, 1), MemoryFault);
}

TEST(MemoryTest, ReadOnlySegment) {
  Memory m;
  m.AddSegment("text", 0x400000, 0x100, Perm::kRead);
  int32_t v;
  EXPECT_TRUE(m.TryRead(0x400000, &v, 4));
  EXPECT_THROW(m.WriteScalar<int32_t>(0x400000, 1), MemoryFault);
}

TEST(MemoryTest, OverlapRejected) {
  Memory m;
  m.AddSegment("a", 0x1000, 0x100, Perm::kReadWrite);
  EXPECT_THROW(m.AddSegment("b", 0x10f0, 0x100, Perm::kReadWrite), DuelError);
}

TEST(MemoryTest, AllocateAlignsAndGrows) {
  Memory m;
  Addr a = m.Allocate(3, 1);
  Addr b = m.Allocate(8, 8);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GT(b, a);
  m.WriteScalar<uint64_t>(b, 0xdeadbeef);
  EXPECT_EQ(m.ReadScalar<uint64_t>(b), 0xdeadbeefu);
  // Unallocated heap tail is invalid.
  EXPECT_FALSE(m.Valid(b + 0x100000, 1));
}

TEST(MemoryTest, ReadCString) {
  Memory m;
  Addr a = m.Allocate(16, 1);
  m.Write(a, "hello", 6);
  std::string s;
  bool trunc = false;
  ASSERT_TRUE(m.ReadCString(a, 100, &s, &trunc));
  EXPECT_EQ(s, "hello");
  EXPECT_FALSE(trunc);
  ASSERT_TRUE(m.ReadCString(a, 3, &s, &trunc));
  EXPECT_EQ(s, "hel");
  EXPECT_TRUE(trunc);
  EXPECT_FALSE(m.ReadCString(0x9999, 10, &s, &trunc));
}

TEST(BuilderTest, GlobalsAndPokes) {
  TargetImage image;
  ImageBuilder b(image);
  Addr x = b.Global("x", b.Arr(b.Int(), 4));
  b.PokeI32(x + 8, 77);
  EXPECT_EQ(image.memory().ReadScalar<int32_t>(x + 8), 77);
  const Variable* v = image.symbols().FindVariable("x");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->addr, x);
  EXPECT_EQ(v->type->ToString(), "int [4]");
}

TEST(BuilderTest, RecordBuilderAndFieldAddr) {
  TargetImage image;
  ImageBuilder b(image);
  TypeRef s = b.Struct("pair").Field("a", b.Int()).Field("b", b.Double()).Build();
  EXPECT_EQ(s->size(), 16u);
  Addr p = b.Alloc(s);
  b.PokeDouble(b.FieldAddr(p, s, "b"), 2.5);
  EXPECT_EQ(image.memory().ReadScalar<double>(p + 8), 2.5);
  EXPECT_THROW(b.FieldAddr(p, s, "nope"), DuelError);
}

TEST(BuilderTest, FramesAreInnermostFirst) {
  TargetImage image;
  ImageBuilder b(image);
  b.PushFrame("outer");
  b.FrameLocal("x", b.Int());
  b.PushFrame("inner");
  b.FrameLocal("x", b.Int());
  ASSERT_EQ(image.symbols().NumFrames(), 2u);
  EXPECT_EQ(image.symbols().GetFrame(0).function, "inner");
  EXPECT_EQ(image.symbols().GetFrame(1).function, "outer");
  // Variable resolution prefers the innermost frame.
  const Variable* v = image.symbols().FindVariable("x");
  EXPECT_EQ(v->addr, image.symbols().GetFrame(0).locals[0].addr);
}

TEST(ImageTest, NewCString) {
  TargetImage image;
  Addr s = image.NewCString("duel");
  std::string out;
  bool trunc;
  ASSERT_TRUE(image.memory().ReadCString(s, 100, &out, &trunc));
  EXPECT_EQ(out, "duel");
}

TEST(NativeFunctionsTest, PrintfFormatsFromTargetMemory) {
  TargetImage image;
  InstallStandardFunctions(image);
  Addr fmt = image.NewCString("%s has %d chars; pi=%.2f %c %x%%");
  Addr str = image.NewCString("duel");
  TypeTable& tt = image.types();
  std::vector<RawDatum> args;
  args.push_back(MakeScalarDatum<uint64_t>(tt.PointerTo(tt.Char()), fmt));
  args.push_back(MakeScalarDatum<uint64_t>(tt.PointerTo(tt.Char()), str));
  args.push_back(MakeScalarDatum<int32_t>(tt.Int(), 4));
  args.push_back(MakeScalarDatum<double>(tt.Double(), 3.14159));
  args.push_back(MakeScalarDatum<int32_t>(tt.Int(), 'z'));
  args.push_back(MakeScalarDatum<int32_t>(tt.Int(), 255));
  RawDatum ret = image.Call("printf", args);
  EXPECT_EQ(image.output(), "duel has 4 chars; pi=3.14 z ff%");
  EXPECT_EQ(DatumToI64(ret), static_cast<int64_t>(image.output().size()));
}

TEST(NativeFunctionsTest, StrlenAndAbs) {
  TargetImage image;
  InstallStandardFunctions(image);
  TypeTable& tt = image.types();
  Addr s = image.NewCString("four");
  RawDatum len = image.Call(
      "strlen", std::vector<RawDatum>{MakeScalarDatum<uint64_t>(tt.PointerTo(tt.Char()), s)});
  EXPECT_EQ(DatumToU64(len), 4u);
  RawDatum a = image.Call("abs",
                          std::vector<RawDatum>{MakeScalarDatum<int32_t>(tt.Int(), -42)});
  EXPECT_EQ(DatumToI64(a), 42);
}

TEST(NativeFunctionsTest, UnknownFunction) {
  TargetImage image;
  EXPECT_THROW(image.Call("nope", {}), DuelError);
}

TEST(CTypeIoTest, BasicRoundTrip) {
  TypeTable server;
  TypeTable client;
  TypeRef t = server.PointerTo(server.ArrayOf(server.PointerTo(server.Char()), 10));
  std::string wire = SerializeType(t);
  TypeRef back = ParseSerializedType(wire, client);
  EXPECT_TRUE(TypeEquals(t, back));
  EXPECT_EQ(back->ToString(), t->ToString());
}

TEST(CTypeIoTest, RecursiveStructRoundTrip) {
  TypeTable server;
  TypeRef sym = server.DeclareStruct("symbol");
  server.CompleteRecord(sym, {{"name", server.PointerTo(server.Char()), 0, false, 0, 0},
                              {"scope", server.Int(), 0, false, 0, 0},
                              {"next", server.PointerTo(sym), 0, false, 0, 0}});
  std::string wire = SerializeType(server.PointerTo(sym));
  TypeTable client;
  TypeRef back = ParseSerializedType(wire, client);
  ASSERT_EQ(back->kind(), TypeKind::kPointer);
  TypeRef rec = back->target();
  EXPECT_TRUE(rec->complete());
  EXPECT_EQ(rec->size(), sym->size());
  EXPECT_EQ(rec->FindMember("scope")->offset, sym->FindMember("scope")->offset);
  EXPECT_EQ(rec->FindMember("next")->type->target().get(), rec.get());
}

TEST(CTypeIoTest, BitfieldAndEnumRoundTrip) {
  TypeTable server;
  TypeRef e = server.DefineEnum("color", {{"RED", 0}, {"BLUE", 5}});
  TypeRef s = server.DeclareStruct("flags");
  server.CompleteRecord(s, {{"a", server.UInt(), 0, true, 0, 3},
                            {"c", e, 0, false, 0, 0}});
  std::string wire = SerializeType(s);
  TypeTable client;
  TypeRef back = ParseSerializedType(wire, client);
  EXPECT_EQ(back->FindMember("a")->bit_width, 3u);
  EXPECT_TRUE(back->FindMember("a")->is_bitfield);
  EXPECT_EQ(back->FindMember("c")->type->enumerators()[1].name, "BLUE");
  EXPECT_EQ(back->size(), s->size());
}

TEST(CTypeIoTest, FunctionTypeRoundTrip) {
  TypeTable server;
  TypeRef fn = server.Function(server.Int(), {{"fmt", server.PointerTo(server.Char())}}, true);
  TypeTable client;
  TypeRef back = ParseSerializedType(SerializeType(fn), client);
  EXPECT_TRUE(TypeEquals(fn, back));
  EXPECT_TRUE(back->variadic());
}

TEST(CTypeIoTest, MalformedInputs) {
  TypeTable tt;
  EXPECT_THROW(ParseSerializedType("", tt), DuelError);
  EXPECT_THROW(ParseSerializedType("Z", tt), DuelError);
  EXPECT_THROW(ParseSerializedType("A10:", tt), DuelError);
  EXPECT_THROW(ParseSerializedType("ii", tt), DuelError);  // trailing junk
}

}  // namespace
}  // namespace duel::target
