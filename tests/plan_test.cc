// Plan-cache behaviour: hits and misses, epoch-based invalidation (frame
// switches, target calls, alias redefinition), fingerprinting of
// compilation-relevant options, and output equivalence with the cache on
// vs off on both engines.

#include <gtest/gtest.h>

#include "src/duel/plan.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() {
    // Force the cache on after construction: the CI ablation sets
    // DUEL_PLAN_CACHE=off in the environment, which flips the constructor
    // default — these tests pin the behaviour they each exercise.
    fx_.session().options().plan_cache = true;
    fx_.session().options().collect_stats = true;
  }

  const PlanCacheCounters& counters() { return fx_.session().plan_cache().counters(); }

  DuelFixture fx_;
};

TEST_F(PlanTest, RepeatQueryHitsCache) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  std::vector<std::string> cold = fx_.Lines("x[..3] >? 1");
  EXPECT_FALSE(fx_.session().last_stats()->plan_hit);
  EXPECT_GT(fx_.session().last_stats()->parse_ns, 0u);

  std::vector<std::string> warm = fx_.Lines("x[..3] >? 1");
  EXPECT_EQ(cold, warm);
  const obs::QueryStats& stats = *fx_.session().last_stats();
  EXPECT_TRUE(stats.plan_hit);
  // The build stages did not run on the hit.
  EXPECT_EQ(stats.lex_ns, 0u);
  EXPECT_EQ(stats.parse_ns, 0u);
  EXPECT_EQ(stats.sema_ns, 0u);
  EXPECT_EQ(counters().lookups, 2u);
  EXPECT_EQ(counters().hits, 1u);
  EXPECT_EQ(counters().misses, 1u);
}

TEST_F(PlanTest, DifferentTextMisses) {
  fx_.Lines("1+1");
  fx_.Lines("1+2");
  EXPECT_EQ(counters().hits, 0u);
  EXPECT_EQ(counters().misses, 2u);
  EXPECT_EQ(fx_.session().plan_cache().size(), 2u);
}

TEST_F(PlanTest, OptionFingerprintSeparatesPlans) {
  // sym_mode affects what constant folding bakes into the plan, so flipping
  // it must compile a fresh plan rather than reuse (or invalidate) the old.
  fx_.Lines("2*3+1");
  fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOff;
  fx_.Lines("2*3+1");
  EXPECT_EQ(counters().hits, 0u);
  EXPECT_EQ(counters().misses, 2u);
  EXPECT_EQ(counters().invalidations, 0u);
  EXPECT_EQ(fx_.session().plan_cache().size(), 2u);

  // And each variant hits its own entry afterwards.
  fx_.Lines("2*3+1");
  fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOn;
  fx_.Lines("2*3+1");
  EXPECT_EQ(counters().hits, 2u);
}

TEST_F(PlanTest, FrameSwitchInvalidates) {
  scenarios::BuildIntArray(fx_.image(), "x", {7});
  fx_.Lines("x[0]");
  fx_.image().symbols().PushFrame("handler");
  fx_.Lines("x[0]");
  EXPECT_EQ(counters().invalidations, 1u);
  EXPECT_EQ(counters().hits, 0u);
}

TEST_F(PlanTest, SymbolTableMutationInvalidates) {
  fx_.Lines("1+1");
  scenarios::BuildIntArray(fx_.image(), "fresh", {1});  // AddGlobal bumps the epoch
  fx_.Lines("1+1");
  EXPECT_EQ(counters().invalidations, 1u);
}

TEST_F(PlanTest, TargetCallInvalidatesOtherPlans) {
  scenarios::BuildIntArray(fx_.image(), "x", {7});
  fx_.Lines("x[0]");
  // A target call moves the mutation epoch; the printf query's own plan
  // refreshes itself after its run, but x[0]'s plan is now stale.
  fx_.Lines("printf(\"%d\", 1) ;");
  fx_.Lines("x[0]");
  EXPECT_EQ(counters().invalidations, 1u);

  // The printf plan itself survived its own call: re-running it hits.
  fx_.Lines("printf(\"%d\", 1) ;");
  EXPECT_TRUE(fx_.session().last_stats()->plan_hit);
}

TEST_F(PlanTest, AliasRedefinitionInvalidatesBoundPlan) {
  scenarios::BuildIntArray(fx_.image(), "x", {7});
  fx_.session().options().eval.prebind = true;
  EXPECT_EQ(fx_.One("x[0]"), "x[0] = 7");

  // An alias now shadows the prebound name: the cached binding is stale. A
  // stale plan replayed here would wrongly keep printing 7; the rebuilt one
  // sees the alias (a plain int, not indexable) instead.
  fx_.Lines("x := 41 ;");
  EXPECT_EQ(fx_.One("x + 1"), "x+1 = 42");
  QueryResult shadowed = fx_.session().Query("x[0]");
  EXPECT_FALSE(shadowed.ok);
  EXPECT_GE(counters().invalidations, 1u);

  // Unshadowing restores the target variable (via the dynamic lookup path).
  fx_.session().ClearAliases();
  EXPECT_EQ(fx_.One("x[0]"), "x[0] = 7");
}

TEST_F(PlanTest, AliasChurnLeavesUnboundPlansAlone) {
  // With prebind off no plan holds name bindings, so alias-heavy sessions
  // keep their whole cache warm.
  fx_.Lines("1+1");
  fx_.Lines("v := 5 ;");
  fx_.Lines("1+1");
  EXPECT_TRUE(fx_.session().last_stats()->plan_hit);
  EXPECT_EQ(counters().invalidations, 0u);
}

TEST_F(PlanTest, CacheOffNeverLooksUp) {
  fx_.session().options().plan_cache = false;
  fx_.Lines("1+1");
  fx_.Lines("1+1");
  EXPECT_EQ(counters().lookups, 0u);
  EXPECT_EQ(fx_.session().plan_cache().size(), 0u);
}

TEST_F(PlanTest, LruEvictionAtCapacity) {
  fx_.session().plan_cache().set_capacity(2);
  fx_.Lines("1");
  fx_.Lines("2");
  fx_.Lines("3");  // evicts "1"
  EXPECT_EQ(counters().evictions, 1u);
  fx_.Lines("2");  // still cached (was MRU when "3" arrived)
  EXPECT_TRUE(fx_.session().last_stats()->plan_hit);
  fx_.Lines("1");  // evicted: rebuilt
  EXPECT_FALSE(fx_.session().last_stats()->plan_hit);
}

TEST_F(PlanTest, ProfileIdenticalCachedAndUncached) {
  scenarios::BuildIntArray(fx_.image(), "x", {3, 1, 4, 1, 5});
  fx_.session().options().profile = true;
  QueryResult cold = fx_.session().Query("x[..5] >? 1");
  QueryResult warm = fx_.session().Query("x[..5] >? 1");
  ASSERT_TRUE(cold.ok);
  ASSERT_TRUE(warm.ok);
  ASSERT_TRUE(cold.stats.has_value());
  ASSERT_TRUE(warm.stats.has_value());
  EXPECT_FALSE(cold.stats->plan_hit);
  EXPECT_TRUE(warm.stats->plan_hit);
  // Stable node ids: the per-node step profile is identical whether the
  // plan was built or replayed.
  EXPECT_EQ(cold.stats->profiled_steps, warm.stats->profiled_steps);
  ASSERT_EQ(cold.stats->nodes.size(), warm.stats->nodes.size());
  for (size_t i = 0; i < cold.stats->nodes.size(); ++i) {
    EXPECT_EQ(cold.stats->nodes[i].node_id, warm.stats->nodes[i].node_id);
    EXPECT_EQ(cold.stats->nodes[i].op, warm.stats->nodes[i].op);
    EXPECT_EQ(cold.stats->nodes[i].steps, warm.stats->nodes[i].steps) << "node " << i;
  }
}

// The cache must be semantically invisible: identical output with the cache
// on vs off, on both engines, including across stateful queries (aliases,
// declared variables) and repeated runs.
class PlanEquivalenceTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(PlanEquivalenceTest, OutputIdenticalCacheOnAndOff) {
  SessionOptions on_opts;
  on_opts.engine = GetParam();
  SessionOptions off_opts = on_opts;
  DuelFixture cached(on_opts);
  DuelFixture uncached(off_opts);
  cached.session().options().plan_cache = true;
  uncached.session().options().plan_cache = false;
  for (DuelFixture* fx : {&cached, &uncached}) {
    scenarios::BuildIntArray(fx->image(), "x", {5, 0, 7, 2});
    scenarios::BuildList(fx->image(), "L", {10, 20, 30});
  }

  const char* queries[] = {
      "x[..4] >? 1",
      "int total ;",
      "total += x[..4] ;",
      "total",
      "#/(x[..4] > 2)",
      "L-->next->value",
      "x[..4] >? 1",  // repeat: warm on one side, rebuilt on the other
      "L-->next->value",
      "total",
  };
  for (const char* q : queries) {
    QueryResult a = cached.session().Query(q);
    QueryResult b = uncached.session().Query(q);
    EXPECT_EQ(a.ok, b.ok) << q;
    EXPECT_EQ(a.lines, b.lines) << q;
  }
  EXPECT_GT(cached.session().plan_cache().counters().hits, 0u);
  EXPECT_EQ(uncached.session().plan_cache().counters().lookups, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, PlanEquivalenceTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine));

}  // namespace
}  // namespace duel
