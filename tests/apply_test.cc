// The C operator engine: usual arithmetic conversions, signed/unsigned
// comparisons, pointer arithmetic and decay, bit-fields, casts — exercised
// through DUEL queries so both the apply layer and the value plumbing are
// covered.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class ApplyTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(ApplyTest, IntegerPromotionAndWrapping) {
  EXPECT_EQ(fx_.One("{(char)200 + 0}"), "-56");          // char is signed
  EXPECT_EQ(fx_.One("{(unsigned char)200 + 0}"), "200");  // zero-extends
  EXPECT_EQ(fx_.One("{2147483647 + 1}"), "-2147483648");  // int wraps
  EXPECT_EQ(fx_.One("{2147483647L + 1}"), "2147483648");  // long does not
}

TEST_F(ApplyTest, UsualArithmeticConversions) {
  EXPECT_EQ(fx_.One("{1/2}"), "0");
  EXPECT_EQ(fx_.One("{1/2.0}"), "0.5");
  EXPECT_EQ(fx_.One("{(float)1/2}"), "0.5");
  // unsigned int vs int: comparison happens in unsigned.
  EXPECT_EQ(fx_.One("{-1 > 0u}"), "1");
  // long vs unsigned int: long can hold all uint values, so signed compare.
  EXPECT_EQ(fx_.One("{-1L > 0u}"), "0");
}

TEST_F(ApplyTest, ShiftsAndBitOps) {
  EXPECT_EQ(fx_.One("{1 << 31}"), "-2147483648");
  EXPECT_EQ(fx_.One("{(-8) >> 1}"), "-4");   // arithmetic shift for signed
  EXPECT_EQ(fx_.One("{0xf0 & 0x1f}"), "16");
  EXPECT_EQ(fx_.One("{0xf0 | 0x0f}"), "255");
  EXPECT_EQ(fx_.One("{0xff ^ 0x0f}"), "240");
  EXPECT_EQ(fx_.One("{~0}"), "-1");
}

TEST_F(ApplyTest, PointerArithmeticScales) {
  scenarios::BuildIntArray(fx_.image(), "x", {10, 20, 30, 40});
  EXPECT_EQ(fx_.One("{*(x + 2)}"), "30");
  EXPECT_EQ(fx_.One("{*(&x[3] - 1)}"), "30");
  EXPECT_EQ(fx_.One("{&x[3] - &x[0]}"), "3");
  EXPECT_EQ(fx_.One("{&x[1] > &x[0]}"), "1");
  EXPECT_EQ(fx_.One("{2[x]}"), "30");  // C subscripting is commutative
}

TEST_F(ApplyTest, ArrayDecayAndAddressOf) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  EXPECT_EQ(fx_.One("{x == &x[0]}"), "1");
  EXPECT_EQ(fx_.One("{*x}"), "1");
  EXPECT_EQ(fx_.One("{sizeof x}"), "12");  // sizeof does not decay the array
}

TEST_F(ApplyTest, Bitfields) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef t = b.Struct("F")
                          .Bitfield("a", b.UInt(), 3)
                          .Bitfield("s", b.Int(), 4)
                          .Field("tail", b.Int())
                          .Build();
  target::Addr addr = b.Global("f", t);
  (void)addr;
  fx_.Lines("f.a = 5 ;");
  fx_.Lines("f.s = -3 ;");
  fx_.Lines("f.tail = 1000 ;");
  EXPECT_EQ(fx_.One("f.a"), "f.a = 5");
  EXPECT_EQ(fx_.One("f.s"), "f.s = -3");  // sign-extended from 4 bits
  EXPECT_EQ(fx_.One("f.tail"), "f.tail = 1000");
  fx_.Lines("f.a = 5 + 8 ;");  // 13 truncates to 3 bits
  EXPECT_EQ(fx_.One("f.a"), "f.a = 5");
  std::string err = fx_.Error("&f.a");
  EXPECT_NE(err.find("bit-field"), std::string::npos);
}

TEST_F(ApplyTest, PostfixIncrementOverGeneratedLvalues) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  std::vector<std::string> lines = fx_.Lines("x[..3]++");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "x[0]++ = 1");  // old values returned
  EXPECT_EQ(fx_.One("+/x[..3]"), "9");
  fx_.Lines("--x[..3] ;");
  EXPECT_EQ(fx_.One("+/x[..3]"), "6");
}

TEST_F(ApplyTest, EnumValuesDisplayByName) {
  fx_.image().types().DefineEnum("color", {{"RED", 0}, {"GREEN", 1}, {"BLUE", 7}});
  target::ImageBuilder b(fx_.image());
  target::Addr c = b.Global("c", fx_.image().types().LookupEnum("color"));
  b.PokeI32(c, 7);
  EXPECT_EQ(fx_.One("c"), "c = BLUE");
  EXPECT_EQ(fx_.One("{c + 1}"), "8");
  EXPECT_EQ(fx_.One("{(enum color)1}"), "GREEN");
}

TEST_F(ApplyTest, FloatValuesRoundTrip) {
  target::ImageBuilder b(fx_.image());
  target::Addr f = b.Global("f", b.Float());
  b.PokeFloat(f, 2.5f);
  target::Addr d = b.Global("d", b.Double());
  b.PokeDouble(d, -0.125);
  EXPECT_EQ(fx_.One("f"), "f = 2.5");
  EXPECT_EQ(fx_.One("d"), "d = -0.125");
  EXPECT_EQ(fx_.One("{f * 2}"), "5");
  fx_.Lines("f = 1.25 ;");
  EXPECT_EQ(fx_.One("f"), "f = 1.25");
}

TEST_F(ApplyTest, AssignmentConversions) {
  target::ImageBuilder b(fx_.image());
  b.Global("c", b.Char());
  b.Global("d", b.Double());
  fx_.Lines("c = 321 ;");  // truncates mod 256
  EXPECT_EQ(fx_.One("{c + 0}"), "65");
  fx_.Lines("d = 3 ;");  // int -> double
  EXPECT_EQ(fx_.One("d"), "d = 3");
}

TEST_F(ApplyTest, UnsignedDisplay) {
  target::ImageBuilder b(fx_.image());
  target::Addr u = b.Global("u", b.UInt());
  b.PokeI32(u, -1);
  EXPECT_EQ(fx_.One("u"), "u = 4294967295");
}

TEST_F(ApplyTest, CharPointerDisplaysString) {
  target::ImageBuilder b(fx_.image());
  target::Addr s = b.Global("s", b.Ptr(b.Char()));
  b.PokePtr(s, b.String("hi\tthere"));
  EXPECT_EQ(fx_.One("s"), "s = \"hi\\tthere\"");
}

TEST_F(ApplyTest, StructAndArrayDisplay) {
  scenarios::BuildList(fx_.image(), "L", {7});
  std::string line = fx_.One("*L");
  EXPECT_NE(line.find("value = 7"), std::string::npos) << line;
  EXPECT_NE(line.find("next = 0x0"), std::string::npos) << line;
  scenarios::BuildIntArray(fx_.image(), "arr", {1, 2, 3});
  EXPECT_EQ(fx_.One("arr"), "arr = {1, 2, 3}");
}

}  // namespace
}  // namespace duel
