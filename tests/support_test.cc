// Support library: string helpers, the coroutine generator, error types.

#include <gtest/gtest.h>

#include "src/support/error.h"
#include "src/support/generator.h"
#include "src/support/strings.h"

namespace duel {
namespace {

TEST(StringsTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrPrintf("%s", ""), "");
  std::string big(300, 'a');
  EXPECT_EQ(StrPrintf("%s", big.c_str()).size(), 300u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"one"}, ", "), "one");
}

TEST(StringsTest, EscapeChar) {
  EXPECT_EQ(EscapeChar('\n'), "\\n");
  EXPECT_EQ(EscapeChar('\0'), "\\0");
  EXPECT_EQ(EscapeChar('a'), "a");
  EXPECT_EQ(EscapeChar('\\'), "\\\\");
  EXPECT_EQ(EscapeChar(static_cast<char>(0x7f)), "\\177");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-0.125), "-0.125");
  EXPECT_EQ(FormatDouble(1e20), "1e+20");
  EXPECT_EQ(FormatDouble(0.1), "0.1");  // round-trips at minimal precision
  // The value must round-trip exactly.
  double tricky = 1.0 / 3.0;
  EXPECT_EQ(strtod(FormatDouble(tricky).c_str(), nullptr), tricky);
}

TEST(StringsTest, HexCodecs) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseHexU64("ff", &v));
  EXPECT_EQ(v, 0xffu);
  ASSERT_TRUE(ParseHexU64("DEADbeef", &v));
  EXPECT_EQ(v, 0xdeadbeefu);
  EXPECT_FALSE(ParseHexU64("", &v));
  EXPECT_FALSE(ParseHexU64("xyz", &v));
  EXPECT_FALSE(ParseHexU64("11112222333344445", &v));  // > 16 digits

  uint8_t data[] = {0x00, 0x7f, 0xff};
  EXPECT_EQ(HexEncode(data, 3), "007fff");
  std::vector<uint8_t> back;
  ASSERT_TRUE(HexDecode("007fff", &back));
  EXPECT_EQ(back, (std::vector<uint8_t>{0x00, 0x7f, 0xff}));
  EXPECT_FALSE(HexDecode("0", &back));
  EXPECT_FALSE(HexDecode("zz", &back));
}

TEST(StringsTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(GeneratorTest, YieldsAndEnds) {
  auto gen = []() -> Generator<int> {
    co_yield 1;
    co_yield 2;
    co_yield 3;
  }();
  EXPECT_EQ(gen.Next(), 1);
  EXPECT_EQ(gen.Next(), 2);
  EXPECT_EQ(gen.Next(), 3);
  EXPECT_EQ(gen.Next(), std::nullopt);
  EXPECT_EQ(gen.Next(), std::nullopt);  // stays exhausted
}

TEST(GeneratorTest, EmptyGenerator) {
  auto gen = []() -> Generator<int> { co_return; }();
  EXPECT_EQ(gen.Next(), std::nullopt);
}

TEST(GeneratorTest, ExceptionsPropagateFromNext) {
  auto gen = []() -> Generator<int> {
    co_yield 1;
    throw std::runtime_error("boom");
  }();
  EXPECT_EQ(gen.Next(), 1);
  EXPECT_THROW(gen.Next(), std::runtime_error);
}

TEST(GeneratorTest, AbandonmentRunsDestructors) {
  struct Tracker {
    bool* flag;
    explicit Tracker(bool* f) : flag(f) {}
    ~Tracker() { *flag = true; }
  };
  bool destroyed = false;
  {
    auto gen = [](bool* flag) -> Generator<int> {
      Tracker t(flag);
      co_yield 1;
      co_yield 2;
    }(&destroyed);
    EXPECT_EQ(gen.Next(), 1);
    // Abandon mid-sequence.
  }
  EXPECT_TRUE(destroyed);
}

TEST(GeneratorTest, MoveTransfersOwnership) {
  auto gen = []() -> Generator<int> {
    co_yield 7;
    co_yield 8;
  }();
  Generator<int> other = std::move(gen);
  EXPECT_EQ(other.Next(), 7);
  EXPECT_EQ(other.Next(), 8);
}

TEST(ErrorTest, KindsAndContext) {
  DuelError e(ErrorKind::kMemory, "bad");
  EXPECT_EQ(e.kind(), ErrorKind::kMemory);
  e.set_symbolic_context("x[3]");
  EXPECT_EQ(e.symbolic_context(), "x[3]");
  EXPECT_STREQ(ErrorKindName(ErrorKind::kLimit), "evaluation limit exceeded");

  MemoryFault mf(0x1000, 4, "cannot read");
  EXPECT_EQ(mf.addr(), 0x1000u);
  EXPECT_EQ(mf.size(), 4u);
  EXPECT_EQ(mf.kind(), ErrorKind::kMemory);
}

}  // namespace
}  // namespace duel
