#include "src/duel/lexer.h"

#include <gtest/gtest.h>

namespace duel {
namespace {

std::vector<Tok> Kinds(const std::string& s) {
  std::vector<Tok> out;
  for (const Token& t : Lexer(s).LexAll()) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, DuelOperators) {
  EXPECT_EQ(Kinds(".. >? <? >=? <=? ==? !=? === => := #/ +/ &&/ ||/ @ # --> -->>"),
            (std::vector<Tok>{Tok::kDotDot, Tok::kIfGt, Tok::kIfLt, Tok::kIfGe, Tok::kIfLe,
                              Tok::kIfEq, Tok::kIfNe, Tok::kSeqEq, Tok::kImply, Tok::kDefine,
                              Tok::kCountOf, Tok::kSumOf, Tok::kAllOf, Tok::kAnyOf, Tok::kAt,
                              Tok::kHash, Tok::kExpand, Tok::kExpandBfs, Tok::kEnd}));
}

TEST(LexerTest, MaximalMunchOfArrowFamilies) {
  EXPECT_EQ(Kinds("a->b"), (std::vector<Tok>{Tok::kIdent, Tok::kArrow, Tok::kIdent, Tok::kEnd}));
  EXPECT_EQ(Kinds("a-->b"),
            (std::vector<Tok>{Tok::kIdent, Tok::kExpand, Tok::kIdent, Tok::kEnd}));
  EXPECT_EQ(Kinds("a-->>b"),
            (std::vector<Tok>{Tok::kIdent, Tok::kExpandBfs, Tok::kIdent, Tok::kEnd}));
  EXPECT_EQ(Kinds("a--"), (std::vector<Tok>{Tok::kIdent, Tok::kDec, Tok::kEnd}));
  EXPECT_EQ(Kinds("a-b"), (std::vector<Tok>{Tok::kIdent, Tok::kMinus, Tok::kIdent, Tok::kEnd}));
}

TEST(LexerTest, RangeVersusFloat) {
  // "1..3" must be int .. int, while "1.5" is a float.
  std::vector<Token> toks = Lexer("1..3").LexAll();
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, Tok::kIntLit);
  EXPECT_EQ(toks[0].int_value, 1u);
  EXPECT_EQ(toks[1].kind, Tok::kDotDot);
  EXPECT_EQ(toks[2].int_value, 3u);

  toks = Lexer("1.5").LexAll();
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);

  toks = Lexer("1.").LexAll();
  EXPECT_EQ(toks[0].kind, Tok::kFloatLit);
}

TEST(LexerTest, NumbersBasesAndSuffixes) {
  std::vector<Token> toks = Lexer("0x1f 017 42u 7L 1e3 2.5e-2").LexAll();
  EXPECT_EQ(toks[0].int_value, 0x1fu);
  EXPECT_EQ(toks[1].int_value, 15u);  // octal
  EXPECT_TRUE(toks[2].is_unsigned);
  EXPECT_TRUE(toks[3].is_long);
  EXPECT_EQ(toks[4].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[4].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[5].float_value, 0.025);
}

TEST(LexerTest, CharAndStringEscapes) {
  std::vector<Token> toks = Lexer(R"('a' '\n' '\0' '\x41' "he\tllo\\")").LexAll();
  EXPECT_EQ(toks[0].int_value, static_cast<uint64_t>('a'));
  EXPECT_EQ(toks[1].int_value, static_cast<uint64_t>('\n'));
  EXPECT_EQ(toks[2].int_value, 0u);
  EXPECT_EQ(toks[3].int_value, 0x41u);
  EXPECT_EQ(toks[4].kind, Tok::kStringLit);
  EXPECT_EQ(toks[4].text, "he\tllo\\");
}

TEST(LexerTest, SelectBracketsAreSplittable) {
  // ']' always lexes alone so that both "x[a[[b]]]" and "x[[a[b]]]" parse.
  EXPECT_EQ(Kinds("[[ ]"), (std::vector<Tok>{Tok::kLSelect, Tok::kRBracket, Tok::kEnd}));
  EXPECT_EQ(Kinds("]]]"), (std::vector<Tok>{Tok::kRBracket, Tok::kRBracket, Tok::kRBracket,
                                            Tok::kEnd}));
}

TEST(LexerTest, UnderscoreIsItsOwnToken) {
  EXPECT_EQ(Kinds("_ _a a_"),
            (std::vector<Tok>{Tok::kUnderscore, Tok::kIdent, Tok::kIdent, Tok::kEnd}));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  EXPECT_EQ(Kinds("if else while for sizeof iff"),
            (std::vector<Tok>{Tok::kKwIf, Tok::kKwElse, Tok::kKwWhile, Tok::kKwFor,
                              Tok::kKwSizeof, Tok::kIdent, Tok::kEnd}));
}

TEST(LexerTest, DoubleHashStartsComment) {
  EXPECT_EQ(Kinds("1 + 2 ## the rest is commentary ->"),
            (std::vector<Tok>{Tok::kIntLit, Tok::kPlus, Tok::kIntLit, Tok::kEnd}));
}

TEST(LexerTest, ErrorsOnBadInput) {
  EXPECT_THROW(Lexer("'a").LexAll(), DuelError);
  EXPECT_THROW(Lexer("\"abc").LexAll(), DuelError);
  EXPECT_THROW(Lexer("`").LexAll(), DuelError);
}

TEST(LexerTest, SourceRangesCoverTokens) {
  std::vector<Token> toks = Lexer("ab + 12").LexAll();
  EXPECT_EQ(toks[0].range.begin, 0u);
  EXPECT_EQ(toks[0].range.end, 2u);
  EXPECT_EQ(toks[2].range.begin, 5u);
  EXPECT_EQ(toks[2].range.end, 7u);
}

}  // namespace
}  // namespace duel
