// The heap-arena scenario and the heap-doctor query patterns.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class HeapTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  HeapTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(HeapTest, CleanHeapWalksToTheEnd) {
  scenarios::HeapSpec spec;
  spec.chunk_count = 10;
  scenarios::BuildHeap(fx_.image(), spec);
  std::string count = fx_.One(
      "struct chunk *p; int n; p = (struct chunk *)arena; n = 0;"
      " while ((char *)p < arena_end)"
      "  (n = n + 1; p = (struct chunk *)((char *)p + p->size)) ; {n}");
  EXPECT_EQ(count, "10");
}

TEST_P(HeapTest, FreeListsAreConsistent) {
  scenarios::HeapSpec spec;
  spec.chunk_count = 20;
  scenarios::BuildHeap(fx_.image(), spec);
  // Every chunk on bin b's list has bin == b and used == 0.
  EXPECT_EQ(fx_.One("#/(b := ..4 => bins[b]-->fd->(bin !=? b))"), "0");
  EXPECT_EQ(fx_.One("#/(bins[..4]-->fd->used ==? 1)"), "0");
  // Free counts per bin sum to the total free count.
  std::string total = fx_.One("#/(bins[..4]-->fd)");
  EXPECT_GT(std::stoi(total), 0);
}

TEST_P(HeapTest, CorruptionIsLocalizable) {
  scenarios::HeapSpec spec;
  spec.chunk_count = 12;
  spec.corrupt_index = 7;
  spec.corrupt_size = 13;
  scenarios::BuildHeap(fx_.image(), spec);
  fx_.Lines(
      "struct chunk *q; int k; q = (struct chunk *)arena; k = 0;"
      " while ((char *)q < arena_end)"
      "  (if (q->size < 24 || q->size % 8 != 0)"
      "     printf(\"bad %d\\n\", k);"
      "   if (q->size < 24) q = (struct chunk *)arena_end"
      "   else (q = (struct chunk *)((char *)q + q->size); k = k + 1)) ;");
  EXPECT_EQ(fx_.image().TakeOutput(), "bad 7\n");
}

TEST_P(HeapTest, DeterministicAcrossBuilds) {
  target::TargetImage other;
  scenarios::HeapSpec spec;
  spec.chunk_count = 8;
  size_t n1 = scenarios::BuildHeap(fx_.image(), spec);
  size_t n2 = scenarios::BuildHeap(other, spec);
  EXPECT_EQ(n1, n2);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, HeapTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

}  // namespace
}  // namespace duel
