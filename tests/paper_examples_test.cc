// E1: every inline `gdb> duel` example from the paper, run verbatim against
// scenario images that reconstruct the program states the paper assumes.
// Where this reproduction's display differs from the paper's (documented in
// EXPERIMENTS.md), the expectation below is our format and the difference is
// noted in a comment.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class PaperExamplesTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  PaperExamplesTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

// --- Abstract ---------------------------------------------------------------

TEST_P(PaperExamplesTest, AbstractExamples) {
  // "x[..100] >? 0 displays the positive elements of x and their indices"
  std::vector<int32_t> x(100, 0);
  x[12] = 3;
  x[57] = 41;
  scenarios::BuildIntArray(fx_.image(), "x", x);
  EXPECT_EQ(fx_.Lines("x[..100] >? 0"),
            (std::vector<std::string>{"x[12] = 3", "x[57] = 41"}));

  // "(x,y).a yields the a field of x and of y"
  target::ImageBuilder b(fx_.image());
  target::TypeRef rec = b.Struct("ab").Field("a", b.Int()).Field("z", b.Int()).Build();
  target::Addr xs = b.Global("xs", rec);
  target::Addr ys = b.Global("ys", rec);
  b.PokeI32(xs, 10);
  b.PokeI32(ys, 20);
  EXPECT_EQ(fx_.Lines("(xs,ys).a"),
            (std::vector<std::string>{"xs.a = 10", "ys.a = 20"}));
}

// --- Syntax section -----------------------------------------------------

TEST_P(PaperExamplesTest, PrintEquivalence) {
  // gdb> duel 1 + (double)3/2   (gdb prints "2.500"; we print "2.5")
  EXPECT_EQ(fx_.One("1 + (double)3/2"), "1+(double)3/2 = 2.5");
}

TEST_P(PaperExamplesTest, ClearScopeFieldsOfFirstSymbols) {
  // gdb> duel hash[0..1023]->scope = 0 ;
  scenarios::BuildDenseSymtab(fx_.image(), 1024);
  EXPECT_TRUE(fx_.Lines("hash[0..1023]->scope = 0 ;").empty());
  EXPECT_EQ(fx_.One("#/(hash[..1024]->scope ==? 0)"), "1024");
}

TEST_P(PaperExamplesTest, RangeAlternationSearch) {
  // gdb> duel x[1..4,8,12..50] >? 5 <? 10
  std::vector<int32_t> x(51, 0);
  x[3] = 7;
  x[18] = 9;
  x[47] = 6;
  x[2] = 12;  // decoys outside (5,10)
  x[8] = 5;
  x[20] = 3;
  scenarios::BuildIntArray(fx_.image(), "x", x);
  EXPECT_EQ(fx_.Lines("x[1..4,8,12..50] >? 5 <? 10"),
            (std::vector<std::string>{"x[3] = 7", "x[18] = 9", "x[47] = 6"}));
  // The same search, reformulated: x[1..4,8,12..50] ==? (6..9)
  EXPECT_EQ(fx_.Lines("x[1..4,8,12..50] ==? (6..9)"),
            (std::vector<std::string>{"x[3] = 7", "x[18] = 9", "x[47] = 6"}));
}

TEST_P(PaperExamplesTest, CStyleEqualityPrintsAllIndices) {
  // gdb> duel x[1..3] == 7
  std::vector<int32_t> x(4, 0);
  x[3] = 7;
  scenarios::BuildIntArray(fx_.image(), "x", x);
  EXPECT_EQ(fx_.Lines("x[1..3] == 7"),
            (std::vector<std::string>{"x[1]==7 = 0", "x[2]==7 = 0", "x[3]==7 = 1"}));
}

void BuildScope42And529(target::TargetImage& image) {
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[42] = {{"deep", 7}};
  chains[529] = {{"deeper", 8}};
  chains[7] = {{"shallow", 2}};  // present but filtered out by >? 5
  chains[100] = {{"other", 5}};
  scenarios::BuildSymtab(image, chains, 1024);
}

TEST_P(PaperExamplesTest, HashScopeScan) {
  // gdb> duel (hash[..1024] !=? 0)->scope >? 5
  BuildScope42And529(fx_.image());
  EXPECT_EQ(fx_.Lines("(hash[..1024] !=? 0)->scope >? 5"),
            (std::vector<std::string>{"hash[42]->scope = 7", "hash[529]->scope = 8"}));
}

TEST_P(PaperExamplesTest, HashScopeScanAsCLoops) {
  // The three C-and-DUEL mixed reformulations from the paper print the same
  // scope fields.
  BuildScope42And529(fx_.image());
  const char* kVariants[] = {
      "int i; for (i = 0; i < 1024; i++)\n"
      "  if (hash[i] && hash[i]->scope > 5)\n"
      "    hash[i]->scope",
      "int i; for (i = 0; i < 1024; i++)\n"
      "  if (hash[i]) hash[i]->scope >? 5",
      "int i; for (i = 0; i < 1024; i++)\n"
      "  (hash[i] !=? 0)->scope >? 5",
  };
  for (const char* q : kVariants) {
    std::vector<std::string> lines = fx_.Lines(q);
    ASSERT_EQ(lines.size(), 2u) << q;
    EXPECT_EQ(lines[0].substr(lines[0].find(" = ")), " = 7") << q;
    EXPECT_EQ(lines[1].substr(lines[1].find(" = ")), " = 8") << q;
  }
  // The full C program (printf included) also runs as a DUEL expression.
  fx_.Lines(
      "int i;\n"
      "for (i = 0; i < 1024; i++)\n"
      "  if (hash[i] != 0)\n"
      "    if (hash[i]->scope > 5)\n"
      "      printf(\"hash[%d]->scope = %d\\n\", i, hash[i]->scope) ;");
  EXPECT_EQ(fx_.image().TakeOutput(),
            "hash[42]->scope = 7\nhash[529]->scope = 8\n");
}

TEST_P(PaperExamplesTest, PrefixRangeWithPointerFilter) {
  // gdb> duel (hash[..1024] !=? 0)->scope >? 5   (shown with hash[..1024])
  BuildScope42And529(fx_.image());
  EXPECT_EQ(fx_.Lines("(hash[..1024] !=? 0)->scope >? 5"),
            (std::vector<std::string>{"hash[42]->scope = 7", "hash[529]->scope = 8"}));
}

TEST_P(PaperExamplesTest, ForWithIfExpression) {
  // gdb> duel for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5
  std::vector<std::string> lines =
      fx_.Lines("int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5");
  EXPECT_EQ(lines, (std::vector<std::string>{"4+i*5 = 4", "4+i*5 = 19", "4+i*5 = 34"}));
}

TEST_P(PaperExamplesTest, ForWithBraceOverride) {
  // gdb> duel for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5
  std::vector<std::string> lines =
      fx_.Lines("int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5");
  EXPECT_EQ(lines, (std::vector<std::string>{"4+0*5 = 4", "4+3*5 = 19", "4+6*5 = 34"}));
}

TEST_P(PaperExamplesTest, SequenceAndImply) {
  EXPECT_EQ(fx_.Lines("i := 1..3; i + 4"), (std::vector<std::string>{"i+4 = 7"}));
  EXPECT_EQ(fx_.Lines("i := 1..3 => {i} + 4"),
            (std::vector<std::string>{"1+4 = 5", "2+4 = 6", "3+4 = 7"}));
}

TEST_P(PaperExamplesTest, AliasChainClearsScopes) {
  // duel x:= hash[..1024] !=? 0 => y:= x->scope => y = 0
  scenarios::BuildDenseSymtab(fx_.image(), 64);
  fx_.Lines("x:= hash[..64] !=? 0 => y:= x->scope => y = 0 ;");
  EXPECT_EQ(fx_.One("#/(hash[..64]->scope ==? 0)"), "64");
}

TEST_P(PaperExamplesTest, FieldAlternation) {
  // gdb> duel hash[1,9]->(scope,name)
  scenarios::BuildSymtab(fx_.image(), {{1, {{"x", 3}}}, {9, {{"abc", 2}}}});
  EXPECT_EQ(fx_.Lines("hash[1,9]->(scope,name)"),
            (std::vector<std::string>{"hash[1]->scope = 3", "hash[1]->name = \"x\"",
                                      "hash[9]->scope = 2", "hash[9]->name = \"abc\""}));
}

TEST_P(PaperExamplesTest, WithConditionalFieldSelection) {
  // x:= hash[..1024] !=? 0 => x->(if (scope > 5) name)
  BuildScope42And529(fx_.image());
  std::vector<std::string> lines =
      fx_.Lines("x:= hash[..1024] !=? 0 => x->(if (scope > 5) name)");
  EXPECT_EQ(lines, (std::vector<std::string>{"x->name = \"deep\"", "x->name = \"deeper\""}));
}

TEST_P(PaperExamplesTest, UnderscoreAvoidsTemporaries) {
  // hash[..1024]->(if (_ && scope > 5) name)
  BuildScope42And529(fx_.image());
  std::vector<std::string> lines = fx_.Lines("hash[..1024]->(if (_ && scope > 5) name)");
  EXPECT_EQ(lines, (std::vector<std::string>{"hash[42]->name = \"deep\"",
                                             "hash[529]->name = \"deeper\""}));
}

TEST_P(PaperExamplesTest, AliasVersusUnderscoreDisplay) {
  // gdb> duel y:= x[..10] => if (y < 0 || y > 100) y
  std::vector<int32_t> x(10, 1);
  x[3] = -9;
  x[8] = 120;
  scenarios::BuildIntArray(fx_.image(), "x", x);
  EXPECT_EQ(fx_.Lines("y:= x[..10] => if (y < 0 || y > 100) y"),
            (std::vector<std::string>{"y = -9", "y = 120"}));
  // gdb> duel x[..10].if (_ < 0 || _ > 100) _
  EXPECT_EQ(fx_.Lines("x[..10].if (_ < 0 || _ > 100) _"),
            (std::vector<std::string>{"x[3] = -9", "x[8] = 120"}));
  // Same effect with aliases and another temporary:
  EXPECT_EQ(fx_.Lines("y:= x[j := ..10] => if (y < 0 || y > 100) x[{j}]"),
            (std::vector<std::string>{"x[3] = -9", "x[8] = 120"}));
}

// --- expansion (-->) -----------------------------------------------------

TEST_P(PaperExamplesTest, ListExpansionScopes) {
  // gdb> duel hash[0]-->next->scope
  scenarios::BuildSymtab(fx_.image(),
                         {{0, {{"a", 4}, {"b", 3}, {"c", 2}, {"d", 1}}}});
  EXPECT_EQ(fx_.Lines("hash[0]-->next->scope"),
            (std::vector<std::string>{
                "hash[0]->scope = 4", "hash[0]->next->scope = 3",
                "hash[0]->next->next->scope = 2", "hash[0]->next->next->next->scope = 1"}));
}

TEST_P(PaperExamplesTest, ListDuplicateSearchOneLiner) {
  // L-->next->(value ==? next-->next->value)
  // 0-based nodes 4 and 9 both hold 27.
  scenarios::BuildList(fx_.image(), "L", {11, 22, 33, 44, 27, 55, 66, 77, 88, 27});
  std::vector<std::string> lines = fx_.Lines("L-->next->(value ==? next-->next->value)");
  ASSERT_EQ(lines.size(), 1u);
  // 4 repeated ->next steps reach the compression threshold.
  EXPECT_EQ(lines[0], "L-->next[[4]]->value = 27");
}

TEST_P(PaperExamplesTest, TreeKeysPreorder) {
  // gdb> duel root-->(left,right)->key  on the tree (9, (3 (4) (5)), (12)).
  //
  // NOTE: the paper's printed output lists root->left->right before
  // root->left->left, contradicting its own remark that children are stacked
  // "in reverse order so that the nodes are visited in the expected order".
  // We follow the remark (true preorder); see EXPERIMENTS.md.
  scenarios::BuildTree(fx_.image(), "root", "(9 (3 (4) (5)) (12))");
  EXPECT_EQ(fx_.Lines("root-->(left,right)->key"),
            (std::vector<std::string>{"root->key = 9", "root->left->key = 3",
                                      "root->left->left->key = 4",
                                      "root->left->right->key = 5", "root->right->key = 12"}));
}

TEST_P(PaperExamplesTest, TreePathToKey) {
  // gdb> duel root-->(if (key < 5) left else if (key > 5) right)->key
  //
  // NOTE: as printed in the paper, that expression walks RIGHT from the root
  // (9 > 5), yet the paper's output shows the left path 9, 3, 5. The BST
  // descent comparisons are evidently swapped (a typo); we run the corrected
  // expression and reproduce the paper's output. See EXPERIMENTS.md.
  scenarios::BuildTree(fx_.image(), "root", "(9 (3 (4) (5)) (12))");
  EXPECT_EQ(fx_.Lines("root-->(if (key > 5) left else if (key < 5) right)->key"),
            (std::vector<std::string>{"root->key = 9", "root->left->key = 3",
                                      "root->left->right->key = 5"}));
  // The expression exactly as printed in the paper walks the right spine.
  EXPECT_EQ(fx_.Lines("root-->(if (key < 5) left else if (key > 5) right)->key"),
            (std::vector<std::string>{"root->key = 9", "root->right->key = 12"}));
}

TEST_P(PaperExamplesTest, TreeKeyCount) {
  // gdb> duel #/(root-->(left,right)->key)
  scenarios::BuildTree(fx_.image(), "root", "(9 (3 (4) (5)) (12))");
  EXPECT_EQ(fx_.One("#/(root-->(left,right)->key)"), "5");
}

TEST_P(PaperExamplesTest, SortednessViolation) {
  // gdb> duel hash[..1024]-->next-> if (next) scope <? next->scope
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  // Sorted chains everywhere...
  chains[3] = {{"s0", 9}, {"s1", 5}, {"s2", 2}};
  chains[700] = {{"t0", 4}, {"t1", 1}};
  // ...except bucket 287, where the 9th element (depth 8) violates order.
  std::vector<scenarios::SymEntry> bad;
  int32_t scopes[] = {13, 12, 11, 10, 9, 8, 7, 6, 5, 6};
  for (size_t i = 0; i < 10; ++i) {
    bad.push_back({"u" + std::to_string(i), scopes[i]});
  }
  chains[287] = bad;
  scenarios::BuildSymtab(fx_.image(), chains, 1024);
  EXPECT_EQ(fx_.Lines("hash[..1024]-->next-> if (next) scope <? next->scope"),
            (std::vector<std::string>{"hash[287]-->next[[8]]->scope = 5"}));
}

TEST_P(PaperExamplesTest, SelectOnComputedSequence) {
  // gdb> duel ((1..9)*(1..9))[[52,74]]
  EXPECT_EQ(fx_.Lines("((1..9)*(1..9))[[52,74]]"),
            (std::vector<std::string>{"6*8 = 48", "9*3 = 27"}));
}

TEST_P(PaperExamplesTest, SelectOnListValues) {
  // gdb> duel head-->next->value[[3,5]]
  scenarios::BuildList(fx_.image(), "head", {1, 2, 3, 33, 4, 29});
  EXPECT_EQ(fx_.Lines("head-->next->value[[3,5]]"),
            (std::vector<std::string>{"head-->next[[3]]->value = 33",
                                      "head-->next[[5]]->value = 29"}));
}

TEST_P(PaperExamplesTest, DuplicateSearchWithIndexAliases) {
  // gdb> duel L-->next#i->value ==? L-->next#j->value =>
  //        if (i < j) L-->next[[i,j]]->value
  scenarios::BuildList(fx_.image(), "L", {11, 22, 33, 44, 27, 55, 66, 77, 88, 27});
  EXPECT_EQ(fx_.Lines("L-->next#i->value ==? L-->next#j->value => "
                      "if (i < j) L-->next[[i,j]]->value"),
            (std::vector<std::string>{"L-->next[[4]]->value = 27",
                                      "L-->next[[9]]->value = 27"}));
}

TEST_P(PaperExamplesTest, UntilStopsAtTerminator) {
  // s[0..999]@(_=='\0') produces s[0], s[1], ... up to the NUL.
  target::ImageBuilder b(fx_.image());
  target::Addr s = b.Global("s", b.Ptr(b.Char()));
  b.PokePtr(s, b.String("ab"));
  EXPECT_EQ(fx_.Lines("s[0..999]@(_=='\\0')"),
            (std::vector<std::string>{"s[0] = 'a'", "s[1] = 'b'"}));
}

TEST_P(PaperExamplesTest, ArgvStrings) {
  // "argv[0..]@0 generates the strings in argv"
  scenarios::BuildArgv(fx_.image(), {"prog", "-v", "input.c"});
  EXPECT_EQ(fx_.Lines("argv[0..]@0"),
            (std::vector<std::string>{"argv[0] = \"prog\"", "argv[1] = \"-v\"",
                                      "argv[2] = \"input.c\""}));
}

// --- Implementation section -----------------------------------------------

TEST_P(PaperExamplesTest, IllegalMemoryReferenceReport) {
  // ptr[..99]->val style fault: the report names the offending operand
  // symbolically (paper: "Illegal memory reference in x of x->y:
  // ptr[48] = lvalue 0x16820.").
  target::ImageBuilder b(fx_.image());
  b.Struct("T").Field("val", b.Int()).Build();
  target::TypeRef t = fx_.image().types().LookupStruct("T");
  target::Addr ptr = b.Global("ptr", b.Arr(b.Ptr(t), 100));
  for (size_t i = 0; i < 100; ++i) {
    target::Addr node = b.Alloc(t);
    b.PokeI32(node, static_cast<int32_t>(i));
    b.PokePtr(ptr + i * 8, node);
  }
  b.PokePtr(ptr + 48 * 8, 0x16820);  // dangling, non-null
  std::string err = fx_.Error("ptr[..99]->val");
  EXPECT_NE(err.find("Illegal memory reference"), std::string::npos) << err;
  EXPECT_NE(err.find("0x16820"), std::string::npos) << err;
}

TEST_P(PaperExamplesTest, HeadlineQueryTenThousand) {
  // "x[..10000] >? 0 compiles and executes in about 5 seconds on a
  // DECStation 5000" — here we only check it runs and finds the positives.
  std::vector<int32_t> x(10000, -1);
  x[1234] = 5;
  x[9876] = 17;
  scenarios::BuildIntArray(fx_.image(), "x", x);
  EXPECT_EQ(fx_.Lines("x[..10000] >? 0"),
            (std::vector<std::string>{"x[1234] = 5", "x[9876] = 17"}));
}

TEST_P(PaperExamplesTest, LookupHeavyRange) {
  // "most of the time in evaluating 1..100+i goes to the 100 lookups of i"
  fx_.Lines("i := 5 ;");
  EXPECT_EQ(fx_.One("#/(1..100+i)"), "105");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PaperExamplesTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                          : "Coroutine";
                         });

}  // namespace
}  // namespace duel
