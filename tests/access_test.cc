// The target data path: dbg::MemoryAccess (the read-combining cache between
// the evaluators and any backend), its write-through/invalidation semantics,
// and the vectored qDuelReadV wire extension on both sides of the RSP link.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/dbg/access.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/transport.h"
#include "src/support/strings.h"
#include "src/target/builder.h"
#include "src/target/ctype_io.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

using target::Addr;

// A SimBackend that meters how the access layer actually reaches it:
// scalar GetTargetBytes calls (the per-value path the cache is meant to
// eliminate) vs bulk ReadTargetRanges rounds (block fetches).
class CountingBackend final : public dbg::SimBackend {
 public:
  explicit CountingBackend(target::TargetImage& image) : SimBackend(image) {}

  void GetTargetBytes(Addr addr, void* out, size_t size) override {
    if (!in_bulk_) {
      scalar_reads_++;
    }
    SimBackend::GetTargetBytes(addr, out, size);
  }

  std::vector<std::vector<uint8_t>> ReadTargetRanges(
      std::span<const dbg::ReadRange> ranges) override {
    bulk_rounds_++;
    blocks_requested_ += ranges.size();
    in_bulk_ = true;
    std::vector<std::vector<uint8_t>> r = DebuggerBackend::ReadTargetRanges(ranges);
    in_bulk_ = false;
    return r;
  }

  uint64_t scalar_reads() const { return scalar_reads_; }
  uint64_t bulk_rounds() const { return bulk_rounds_; }
  uint64_t blocks_requested() const { return blocks_requested_; }

 private:
  bool in_bulk_ = false;
  uint64_t scalar_reads_ = 0;
  uint64_t bulk_rounds_ = 0;
  uint64_t blocks_requested_ = 0;
};

dbg::MemoryAccess::Config SmallConfig(size_t block_size, size_t readahead) {
  dbg::MemoryAccess::Config cfg;
  cfg.block_size = block_size;
  cfg.max_blocks = 64;
  cfg.max_readahead = readahead;
  return cfg;
}

class MemoryAccessTest : public ::testing::Test {
 protected:
  MemoryAccessTest() : backend_(image_) { target::InstallStandardFunctions(image_); }

  Addr IntArray(const std::string& name, const std::vector<int32_t>& values) {
    return scenarios::BuildIntArray(image_, name, values);
  }

  // An isolated 8-byte segment with known contents and unreadable memory on
  // both sides, for prefix/fault-edge tests.
  Addr Island() {
    image_.memory().AddSegment("island", kIsland, 8, target::Perm::kReadWrite);
    image_.memory().Write(kIsland, "abcdefgh", 8);
    return kIsland;
  }

  static constexpr Addr kIsland = 0x500000;

  target::TargetImage image_;
  CountingBackend backend_;
};

TEST_F(MemoryAccessTest, RepeatedReadsCostOneBlockFetch) {
  Addr x = IntArray("x", {0, 1, 2, 3, 4, 5, 6, 7});
  dbg::MemoryAccess access(backend_, SmallConfig(32, 4));
  for (int i = 0; i < 8; ++i) {
    int32_t v = -1;
    access.GetBytes(x + i * 4, &v, 4);
    EXPECT_EQ(v, i);
  }
  // Every read was served from cached blocks; the backend never saw a
  // per-value read.
  EXPECT_EQ(backend_.scalar_reads(), 0u);
  EXPECT_LE(backend_.bulk_rounds(), 2u);
  EXPECT_EQ(access.counters().hits, 8u);
  EXPECT_LE(access.counters().misses, 2u);
  EXPECT_EQ(access.counters().bytes_from_cache, 32u);
}

TEST_F(MemoryAccessTest, SequentialScanGrowsItsReadahead) {
  std::vector<int32_t> values(256);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(i * 3);
  }
  Addr x = IntArray("x", values);
  dbg::MemoryAccess access(backend_, SmallConfig(32, 8));
  for (size_t i = 0; i < values.size(); ++i) {
    int32_t v = -1;
    access.GetBytes(x + i * 4, &v, 4);
    ASSERT_EQ(v, values[i]) << i;
  }
  // 1024 bytes over 32-byte blocks is 32+ blocks; the doubling readahead
  // window must compress that into a handful of fetch rounds.
  EXPECT_EQ(backend_.scalar_reads(), 0u);
  EXPECT_LE(backend_.bulk_rounds(), 10u);
  EXPECT_LE(access.counters().misses, 10u);
}

TEST_F(MemoryAccessTest, PassthroughPreservesFaultIdentity) {
  Addr island = Island();
  dbg::MemoryAccess access(backend_, SmallConfig(16, 4));

  char buf[8];
  access.GetBytes(island, buf, 8);  // fully readable
  EXPECT_EQ(std::memcmp(buf, "abcdefgh", 8), 0);

  // Straddles the end of the segment: the cache cannot serve it, so the
  // request reaches the backend verbatim and faults exactly as uncached.
  std::string cached_fault, uncached_fault;
  uint64_t cached_addr = 0, uncached_addr = 0;
  try {
    access.GetBytes(island + 4, buf, 8);
    FAIL() << "expected MemoryFault";
  } catch (const MemoryFault& f) {
    cached_fault = f.what();
    cached_addr = f.addr();
  }
  try {
    dbg::SimBackend fresh(image_);
    fresh.GetTargetBytes(island + 4, buf, 8);
    FAIL() << "expected MemoryFault";
  } catch (const MemoryFault& f) {
    uncached_fault = f.what();
    uncached_addr = f.addr();
  }
  EXPECT_EQ(cached_fault, uncached_fault);
  EXPECT_EQ(cached_addr, uncached_addr);
  EXPECT_GE(access.counters().passthroughs, 1u);
}

TEST_F(MemoryAccessTest, PrefixReadsStopAtTheSegmentEnd) {
  Addr island = Island();
  dbg::MemoryAccess access(backend_, SmallConfig(16, 4));
  char buf[16] = {0};
  EXPECT_EQ(access.GetBytesPrefix(island, buf, 16), 8u);
  EXPECT_EQ(std::memcmp(buf, "abcdefgh", 8), 0);
  EXPECT_EQ(access.GetBytesPrefix(island + 6, buf, 16), 2u);
  EXPECT_EQ(access.GetBytesPrefix(0xdead0000, buf, 16), 0u);
  EXPECT_TRUE(access.ValidBytes(island, 8));
  EXPECT_FALSE(access.ValidBytes(island, 9));
}

TEST_F(MemoryAccessTest, WriteThroughPatchesCachedBytes) {
  Addr x = IntArray("x", {10, 20, 30});
  dbg::MemoryAccess access(backend_, SmallConfig(32, 4));
  int32_t v = 0;
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 10);
  uint64_t rounds_before = backend_.bulk_rounds();

  int32_t neu = 42;
  access.PutBytes(x, &neu, 4);
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 42);
  // Served from the patched block: no refetch, no scalar read.
  EXPECT_EQ(backend_.bulk_rounds(), rounds_before);
  EXPECT_EQ(backend_.scalar_reads(), 0u);
  // And the write really went through to the target.
  EXPECT_EQ(image_.memory().ReadScalar<int32_t>(x), 42);
}

TEST_F(MemoryAccessTest, WriteBeyondFetchedPrefixEvictsTheBlock) {
  Addr island = Island();
  dbg::MemoryAccess access(backend_, SmallConfig(16, 0));
  char buf[8];
  access.GetBytes(island, buf, 8);  // caches the block with valid_len == 8

  // The memory map grows behind the cache's back; a write into the newly
  // mapped bytes lands past the cached valid prefix.
  image_.memory().AddSegment("annex", island + 8, 8, target::Perm::kReadWrite);
  int32_t neu = 7;
  access.PutBytes(island + 8, &neu, 4);

  int32_t v = 0;
  access.GetBytes(island + 8, &v, 4);
  EXPECT_EQ(v, 7);
  access.GetBytes(island, buf, 8);
  EXPECT_EQ(std::memcmp(buf, "abcdefgh", 8), 0);
}

TEST_F(MemoryAccessTest, BeginQueryDropsStaleBytes) {
  Addr x = IntArray("x", {10});
  dbg::MemoryAccess access(backend_, SmallConfig(32, 4));
  int32_t v = 0;
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 10);

  // Mutate the target behind the cache's back: inside the epoch the cache
  // (by design) still serves the old bytes...
  image_.memory().WriteScalar<int32_t>(x, 99);
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 10);

  // ...and a new epoch re-observes the target.
  access.BeginQuery();
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 99);
}

TEST_F(MemoryAccessTest, TargetCallsAndAllocationsInvalidate) {
  Addr x = IntArray("x", {10});
  dbg::MemoryAccess access(backend_, SmallConfig(32, 4));
  int32_t v = 0;
  access.GetBytes(x, &v, 4);
  image_.memory().WriteScalar<int32_t>(x, 11);

  // A target call may have written anywhere: the next read refetches.
  target::RawDatum arg = target::MakeScalarDatum<int32_t>(image_.types().Int(), -5);
  target::RawDatum ret = access.CallFunc("abs", std::span<const target::RawDatum>(&arg, 1));
  EXPECT_EQ(ret.bytes.size(), 4u);
  EXPECT_GE(access.counters().invalidations, 1u);
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 11);

  image_.memory().WriteScalar<int32_t>(x, 12);
  access.Alloc(16, 8);  // the memory map changed
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 12);
}

TEST_F(MemoryAccessTest, DisablingBypassesAndDropsBlocks) {
  Addr x = IntArray("x", {10});
  dbg::MemoryAccess access(backend_, SmallConfig(32, 4));
  int32_t v = 0;
  access.GetBytes(x, &v, 4);
  uint64_t misses_before = access.counters().misses;

  access.set_enabled(false);
  access.GetBytes(x, &v, 4);
  EXPECT_EQ(v, 10);
  EXPECT_GE(backend_.scalar_reads(), 1u);  // went straight to the backend

  // Re-enabling starts cold: the earlier blocks were dropped.
  access.set_enabled(true);
  access.GetBytes(x, &v, 4);
  EXPECT_GT(access.counters().misses, misses_before);
}

// --- the cache under real queries (both engines) ----------------------------

class DataCacheTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static SessionOptions Opts(bool cache_on) {
    SessionOptions o;
    o.engine = GetParam();
    o.eval.data_cache = cache_on;
    return o;
  }
};

TEST_P(DataCacheTest, AssignmentIsVisibleToReread) {
  DuelFixture fx(Opts(true));
  scenarios::BuildIntArray(fx.image(), "x", {1, 2, 3});
  // Write-through: the reread inside the same query sees the new value.
  EXPECT_EQ(fx.One("x[0] = 42 ; x[0]"), "x[0] = 42");
  Addr x = fx.image().symbols().FindVariable("x")->addr;
  EXPECT_EQ(fx.image().memory().ReadScalar<int32_t>(x), 42);
}

TEST_P(DataCacheTest, TargetCallSideEffectsInvalidateMidQuery) {
  DuelFixture fx(Opts(true));
  target::ImageBuilder b(fx.image());
  Addr g = b.Global("g", b.Int());
  b.PokeI32(g, 5);
  target::TypeTable& tt = fx.image().types();
  fx.image().RegisterFunction(
      "bump", tt.Function(tt.Int(), {}, false),
      [g](target::TargetImage& img, std::span<const target::RawDatum>) {
        int32_t v = img.memory().ReadScalar<int32_t>(g);
        img.memory().WriteScalar<int32_t>(g, v + 1);
        return target::MakeScalarDatum<int32_t>(img.types().Int(), v);
      });
  // The first `g` pulls g=5 into the cache; bump() mutates it in the target;
  // the final `g` must observe the side effect, not the cached 5.
  EXPECT_EQ(fx.One("g ; bump() ; g"), "g = 6");
}

TEST_P(DataCacheTest, BitfieldLvaluesWriteThrough) {
  for (bool cache_on : {true, false}) {
    DuelFixture fx(Opts(cache_on));
    target::ImageBuilder b(fx.image());
    target::TypeRef rec =
        b.Struct("Bits").Field("pad", b.Int()).Bitfield("f", b.Int(), 3).Bitfield(
            "g", b.Int(), 5).Build();
    b.Global("bf", rec);
    EXPECT_EQ(fx.Lines("bf.g = 9 ;"), std::vector<std::string>{}) << cache_on;
    EXPECT_EQ(fx.One("bf.f = 3 ; bf.f"), "bf.f = 3") << cache_on;
    EXPECT_EQ(fx.One("bf.g"), "bf.g = 9") << cache_on;
    EXPECT_EQ(fx.One("bf.pad"), "bf.pad = 0") << cache_on;
  }
}

void BuildParityScenario(target::TargetImage& image) {
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9});
  scenarios::BuildList(image, "L", {5, 3, 8, 3});
  scenarios::BuildSymtab(image, {{1, {{"add", 7}, {"mul", 2}}}});
  scenarios::BuildArgv(image, {"prog", "-v", "input.c"});
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
  scenarios::BuildFrames(image, 3);
}

TEST_P(DataCacheTest, CacheOnAndOffRenderIdentically) {
  DuelFixture cached(Opts(true));
  DuelFixture uncached(Opts(false));
  BuildParityScenario(cached.image());
  BuildParityScenario(uncached.image());

  const char* kQueries[] = {
      "x[..6] >? 0",
      "x[..6] = x[..6] + 1 ; x[..6]",
      "+/(L-->next->value)",
      "#/(L-->next)",
      "hash[1]-->next->(scope,name)",
      "argv[0..2]",
      "root-->(left,right)->key",
      "frames().x",
      "(char *)argv[0]",
      "*(int *)0xdead0000",
      "if (x[0] > 0) x[0] else x[1]",
  };
  for (const char* q : kQueries) {
    QueryResult on = cached.session().Query(q);
    QueryResult off = uncached.session().Query(q);
    EXPECT_EQ(on.ok, off.ok) << q;
    EXPECT_EQ(on.lines, off.lines) << q;
    EXPECT_EQ(on.error, off.error) << q;
  }
}

TEST_P(DataCacheTest, ExternalWritesAreVisibleInTheNextQuery) {
  DuelFixture fx(Opts(true));
  scenarios::BuildIntArray(fx.image(), "x", {1});
  EXPECT_EQ(fx.One("x[0]"), "x[0] = 1");
  Addr x = fx.image().symbols().FindVariable("x")->addr;
  fx.image().memory().WriteScalar<int32_t>(x, 99);  // e.g. the target ran
  EXPECT_EQ(fx.One("x[0]"), "x[0] = 99");  // fresh epoch, fresh bytes
}

TEST_P(DataCacheTest, CharStringsTruncateIdenticallyThroughTheCache) {
  for (bool cache_on : {true, false}) {
    SessionOptions opts = Opts(cache_on);
    opts.eval.max_string_display = 8;
    DuelFixture fx(opts);
    target::ImageBuilder b(fx.image());

    Addr exact = b.Global("exact", b.Ptr(b.Char()));
    b.PokePtr(exact, fx.image().NewCString("12345678"));  // exactly the cap
    Addr longer = b.Global("longer", b.Ptr(b.Char()));
    b.PokePtr(longer, fx.image().NewCString("123456789abc"));

    // A string whose readable bytes end (segment edge) before any NUL.
    fx.image().memory().AddSegment("island", 0x500000, 8, target::Perm::kReadWrite);
    fx.image().memory().Write(0x500000, "abcdefgh", 8);
    Addr edge = b.Global("edge", b.Ptr(b.Char()));
    b.PokePtr(edge, 0x500000);

    EXPECT_EQ(fx.One("exact"), "exact = \"12345678\"") << cache_on;
    EXPECT_EQ(fx.One("longer"), "longer = \"12345678\"...") << cache_on;
    EXPECT_EQ(fx.One("edge"), "edge = \"abcdefgh\"...") << cache_on;
  }
}

TEST_P(DataCacheTest, StatsCarryCacheCounters) {
  SessionOptions opts = Opts(true);
  opts.collect_stats = true;
  DuelFixture fx(opts);
  scenarios::BuildIntArray(fx.image(), "x", {1, 2, 3, 4, 5, 6});
  fx.Lines("x[..6]");
  ASSERT_TRUE(fx.session().last_stats().has_value());
  const obs::QueryStats& stats = *fx.session().last_stats();
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_GT(stats.cache.bytes_from_cache, 0u);
  EXPECT_NE(stats.ToJson().find("\"cache\""), std::string::npos);
  bool rendered_cache_line = false;
  for (const std::string& line : stats.Render()) {
    rendered_cache_line |= line.find("cache:") != std::string::npos;
  }
  EXPECT_TRUE(rendered_cache_line);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, DataCacheTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

// --- the qDuelReadV wire extension -----------------------------------------

class VectoredServerTest : public ::testing::Test {
 protected:
  VectoredServerTest() : backend_(image_), server_(backend_) {
    target::InstallStandardFunctions(image_);
    x_ = scenarios::BuildIntArray(image_, "x", {10, 20, 30});
  }

  std::string A(Addr a) { return HexU64(a); }

  target::TargetImage image_;
  dbg::SimBackend backend_;
  rsp::RspServer server_;
  Addr x_ = 0;
};

TEST_F(VectoredServerTest, AnswersMultiRangeReads) {
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_) + ",4"), "V0a000000");
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_) + ",4;" + A(x_ + 4) + ",4;" + A(x_ + 8) + ",4"),
            "V0a000000;14000000;1e000000");
}

TEST_F(VectoredServerTest, ReportsUnreadableRangesAsEmptyPrefixes) {
  EXPECT_EQ(server_.Handle("qDuelReadV:dead0000,4"), "V");
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_) + ",4;dead0000,4;" + A(x_ + 4) + ",4"),
            "V0a000000;;14000000");
}

TEST_F(VectoredServerTest, ClampsRangesAtTheEndOfMappedMemory) {
  // x is the last heap allocation: a range running past it returns only the
  // valid prefix (short reply), not an error.
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_ + 8) + ",8"), "V1e000000");
}

TEST_F(VectoredServerTest, RejectsMalformedRequests) {
  EXPECT_EQ(server_.Handle("qDuelReadV:"), "E03");
  EXPECT_EQ(server_.Handle("qDuelReadV:zz,4"), "E03");
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_)), "E03");  // missing length
  EXPECT_EQ(server_.Handle("qDuelReadV:" + A(x_) + ",200000"), "E03");  // 2 MiB > cap
  std::string too_many = "qDuelReadV:";
  for (int i = 0; i < 513; ++i) {
    if (i != 0) {
      too_many += ";";
    }
    too_many += A(x_) + ",4";
  }
  EXPECT_EQ(server_.Handle(too_many), "E03");
}

// A transport that sabotages qDuelReadV replies, emulating servers that
// don't speak the extension or answer it malformed.
class TamperTransport final : public rsp::Transport {
 public:
  enum class Mode {
    kUnknown,     // empty reply: the RSP convention for an unknown packet
    kGarbage,     // non-hex junk
    kWrongCount,  // a V reply with the wrong number of entries
    kOverlong,    // more bytes than the range asked for
  };

  TamperTransport(rsp::RspServer& server, Mode mode) : server_(&server), mode_(mode) {}

  std::string RoundTrip(const std::string& request) override {
    round_trips_++;
    bytes_on_wire_ += request.size();
    if (StartsWith(request, "qDuelReadV:")) {
      tampered_++;
      switch (mode_) {
        case Mode::kUnknown:
          return "";
        case Mode::kGarbage:
          return "Vzz;!!";
        case Mode::kWrongCount:
          return "V" + std::string(98, ';');  // 99 entries, never the batch size here
        case Mode::kOverlong: {
          // Reply to the first range with one byte too many.
          size_t comma = request.find(',');
          uint64_t len = 0;
          ParseHexU64(std::string_view(request).substr(comma + 1,
                                                       request.find(';') == std::string::npos
                                                           ? std::string::npos
                                                           : request.find(';') - comma - 1),
                      &len);
          return "V" + std::string(2 * (len + 1), '0');
        }
      }
    }
    std::string response = server_->Handle(request);
    bytes_on_wire_ += response.size();
    return response;
  }

  uint64_t tampered() const { return tampered_; }

 private:
  rsp::RspServer* server_;
  Mode mode_;
  uint64_t tampered_ = 0;
};

class VectoredClientTest : public ::testing::TestWithParam<TamperTransport::Mode> {};

TEST_P(VectoredClientTest, FallsBackAndStaysCorrect) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9});
  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);
  TamperTransport transport(server, GetParam());
  rsp::RemoteBackend remote(transport);

  Session session(remote);
  EXPECT_EQ(session.Query("x[..6] >? 0").lines,
            (std::vector<std::string>{"x[0] = 3", "x[2] = 4", "x[3] = 1", "x[5] = 9"}));
  // The first bad reply latched the fallback; results came over the plain
  // per-range path.
  EXPECT_FALSE(remote.vectored_supported());
  EXPECT_GE(transport.tampered(), 1u);

  // Still correct (and still not retrying the vectored packet) afterwards.
  uint64_t tampered_before = transport.tampered();
  EXPECT_EQ(session.Query("+/x[..6]").lines, (std::vector<std::string>{"11"}));
  EXPECT_EQ(transport.tampered(), tampered_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, VectoredClientTest,
    ::testing::Values(TamperTransport::Mode::kUnknown, TamperTransport::Mode::kGarbage,
                      TamperTransport::Mode::kWrongCount, TamperTransport::Mode::kOverlong),
    [](const ::testing::TestParamInfo<TamperTransport::Mode>& pi) {
      switch (pi.param) {
        case TamperTransport::Mode::kUnknown: return std::string("Unknown");
        case TamperTransport::Mode::kGarbage: return std::string("Garbage");
        case TamperTransport::Mode::kWrongCount: return std::string("WrongCount");
        case TamperTransport::Mode::kOverlong: return std::string("Overlong");
      }
      return std::string("?");
    });

TEST(VectoredReadTest, ShortPrefixRepliesMatchTheLocalBackend) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  Addr x = scenarios::BuildIntArray(image, "x", {10, 20, 30});
  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);
  rsp::FramedTransport transport(server);
  rsp::RemoteBackend remote(transport);

  const dbg::ReadRange ranges[] = {
      {x, 8},            // fully valid
      {x + 8, 16},       // valid prefix of 4 (runs off the heap)
      {0xdead0000, 8},   // entirely unreadable
  };
  std::vector<std::vector<uint8_t>> got = remote.ReadTargetRanges(ranges);
  ASSERT_EQ(got.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> expect(ranges[i].size);
    expect.resize(sim.ReadTargetPrefix(ranges[i].addr, expect.data(), ranges[i].size));
    EXPECT_EQ(got[i], expect) << i;
  }
  EXPECT_TRUE(remote.vectored_supported());
  EXPECT_GE(remote.counters().vectored_reads, 1u);
}

// A pass-through transport that keeps every request payload, for asserting
// what actually crossed the wire.
class RecordingTransport final : public rsp::Transport {
 public:
  explicit RecordingTransport(rsp::RspServer& server) : server_(&server) {}

  std::string RoundTrip(const std::string& request) override {
    round_trips_++;
    log_.push_back(request);
    return server_->Handle(request);
  }

  size_t CountWithPrefix(const std::string& prefix) const {
    size_t n = 0;
    for (const std::string& r : log_) {
      n += StartsWith(r, prefix) ? 1 : 0;
    }
    return n;
  }

 private:
  rsp::RspServer* server_;
  std::vector<std::string> log_;
};

TEST(VectoredReadTest, SymbolLookupsAreMemoizedPerQueryEpoch) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", {1, 2, 3});
  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);
  RecordingTransport transport(server);
  rsp::RemoteBackend remote(transport);
  Session session(remote);

  const std::string kVarX = "qVar:" + HexEncode("x", 1);
  EXPECT_EQ(session.Query("x[0] + x[1] + x[0]").lines,
            (std::vector<std::string>{"x[0]+x[1]+x[0] = 4"}));
  EXPECT_EQ(transport.CountWithPrefix(kVarX), 1u);

  // A new query is a new epoch: the lookup goes to the wire exactly once more.
  EXPECT_EQ(session.Query("x[2]").lines, (std::vector<std::string>{"x[2] = 3"}));
  EXPECT_EQ(transport.CountWithPrefix(kVarX), 2u);
}

// The acceptance bar for the refactor: a 10,000-element remote scan must
// issue at most 5% of the packets the per-value path needs.
TEST(VectoredReadTest, CachedRemoteScanUsesUnder5PercentOfThePackets) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildRandomIntArray(image, "x", 10000, -100, 100, 7);
  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);

  rsp::FramedTransport uncached_wire(server);
  rsp::RemoteBackend uncached_remote(uncached_wire);
  SessionOptions uncached_opts;
  uncached_opts.eval.data_cache = false;
  Session uncached(uncached_remote, uncached_opts);

  rsp::FramedTransport cached_wire(server);
  rsp::RemoteBackend cached_remote(cached_wire);
  Session cached(cached_remote);

  QueryResult off = uncached.Query("x[..10000] >? 0");
  QueryResult on = cached.Query("x[..10000] >? 0");
  ASSERT_TRUE(off.ok && on.ok);
  EXPECT_EQ(off.lines, on.lines);

  // Uncached: one m-packet per element. Cached: O(blocks/readahead) vectored
  // packets plus a few lookups.
  EXPECT_GE(uncached_wire.round_trips(), 10000u);
  EXPECT_LE(cached_wire.round_trips() * 20, uncached_wire.round_trips())
      << "cached=" << cached_wire.round_trips() << " uncached=" << uncached_wire.round_trips();
  EXPECT_GE(cached_remote.counters().vectored_reads, 1u);
}

}  // namespace
}  // namespace duel
