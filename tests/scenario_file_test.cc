// The scenario description language: records, arrays, pointers, &name
// forward references, frames, enums — and the loaded images queried by DUEL.

#include "src/scenarios/scenario_file.h"

#include <gtest/gtest.h>

#include <fstream>

#include "tests/duel_test_util.h"

namespace duel::scenarios {
namespace {

class ScenarioFileTest : public ::testing::Test {
 protected:
  void Load(const std::string& src) { LoadScenario(fx_.image(), src); }

  DuelFixture fx_;
};

TEST_F(ScenarioFileTest, ScalarsAndArrays) {
  Load(R"(
    ## basic globals
    int x[6] = { 3, -1, 4, 1, -5, 9 }
    double pi = 3.14159
    char c = 'q'
    unsigned long big = 5000000000
  )");
  EXPECT_EQ(fx_.One("+/x[..6]"), "11");
  EXPECT_EQ(fx_.One("pi"), "pi = 3.14159");
  EXPECT_EQ(fx_.One("c"), "c = 'q'");
  EXPECT_EQ(fx_.One("big"), "big = 5000000000");
}

TEST_F(ScenarioFileTest, TrailingElementsAreZero) {
  Load("int x[5] = { 7 }");
  EXPECT_EQ(fx_.Lines("x[..5] ==? 0").size(), 4u);
}

TEST_F(ScenarioFileTest, StringsAndCharArrays) {
  Load(R"(
    char *greeting = "hello"
    char buffer[10] = "abc"
  )");
  EXPECT_EQ(fx_.One("greeting"), "greeting = \"hello\"");
  EXPECT_EQ(fx_.One("buffer"), "buffer = \"abc\"");
  EXPECT_EQ(fx_.One("{strlen(greeting)}"), "5");
}

TEST_F(ScenarioFileTest, RecordsAndForwardReferences) {
  Load(R"(
    struct symbol { char *name; int scope; struct symbol *next; }

    ## s0 references s1 before s1 is declared: two-pass resolution
    struct symbol s0 = { "main", 4, &s1 }
    struct symbol s1 = { "argc", 3, 0 }
    struct symbol *hash[4] = { &s0, 0, 0, &s1 }
  )");
  EXPECT_EQ(fx_.Lines("hash[0]-->next->(name,scope)"),
            (std::vector<std::string>{"hash[0]->name = \"main\"", "hash[0]->scope = 4",
                                      "hash[0]->next->name = \"argc\"",
                                      "hash[0]->next->scope = 3"}));
  EXPECT_EQ(fx_.One("#/(hash[..4] !=? 0)"), "2");
}

TEST_F(ScenarioFileTest, NestedRecordsAndArraysOfRecords) {
  Load(R"(
    struct point { int px; int py; }
    struct seg { struct point a; struct point b; }
    struct seg s = { { 1, 2 }, { 3, 4 } }
    struct point pts[3] = { { 9, 9 }, { 5, 5 } }
  )");
  EXPECT_EQ(fx_.One("{s.b.py}"), "4");
  EXPECT_EQ(fx_.One("{pts[1].px}"), "5");
  EXPECT_EQ(fx_.One("{pts[2].px}"), "0");
}

TEST_F(ScenarioFileTest, EnumsAndBitfields) {
  Load(R"(
    enum color { RED, GREEN = 5, BLUE }
    struct flags { int a : 3; int rest; }
    enum color c = 6
    struct flags f = { }
  )");
  EXPECT_EQ(fx_.One("c"), "c = BLUE");
  EXPECT_EQ(fx_.One("c == BLUE"), "c==BLUE = 1");
  fx_.Lines("f.a = 2 ;");
  EXPECT_EQ(fx_.One("f.a"), "f.a = 2");
}

TEST_F(ScenarioFileTest, Frames) {
  Load(R"(
    int g = 1
    frame outer { int x = 20 }
    frame inner { int x = 10, y = 3 }
  )");
  EXPECT_EQ(fx_.Lines("frames().x"),
            (std::vector<std::string>{"frame(0).x = 10", "frame(1).x = 20"}));
  EXPECT_EQ(fx_.One("{x + y + g}"), "14");  // innermost frame + global
}

TEST_F(ScenarioFileTest, CommentsRunToEndOfLine) {
  Load("int a = 1   ## first\nint b = 2 ## second");
  EXPECT_EQ(fx_.One("{a + b}"), "3");
}

TEST_F(ScenarioFileTest, ErrorsNameTheLine) {
  auto expect_error = [&](const std::string& src, const std::string& needle) {
    target::TargetImage image;
    try {
      LoadScenario(image, src);
      FAIL() << "expected error for: " << src;
    } catch (const DuelError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("int x = \n@", "line 2");
  expect_error("int x = {1}\nint x = 2", "duplicate variable");
  expect_error("struct s { int a; }\nstruct s { int b; }", "defined twice");
  expect_error("int *p = &nosuch", "unknown variable");
  expect_error("struct nodef v = {}", "incomplete type");
  expect_error("char buf[2] = \"toolong\"", "does not fit");
  expect_error("int x[2] = {1,2,3}", "too many initializers");
}

TEST_F(ScenarioFileTest, DumpRoundTripsScalarsArraysRecords) {
  const char* kSource = R"(
    enum color { RED = 0, GREEN = 5 }
    struct symbol { char *name; int scope; struct symbol *next; }
    struct symbol s0 = { "main", 4, &s1 }
    struct symbol s1 = { "argc", 3, 0 }
    struct symbol *hash[4] = { &s0, 0, 0, &s1 }
    int x[5] = { 3, -1, 4, 0, 9 }
    double pi = 3.25
    char *greeting = "hello"
    char buf[8] = "abc"
    enum color c = 5
    frame main { int depth = 2 }
  )";
  Load(kSource);
  std::string dumped = DumpScenario(fx_.image());

  // Reload the dump into a fresh image; every query must agree.
  DuelFixture fx2;
  LoadScenario(fx2.image(), dumped);
  const char* kQueries[] = {
      "hash[0]-->next->(name,scope)",
      "+/x[..5]",
      "pi",
      "greeting",
      "buf",
      "c == GREEN",
      "frames().depth",
      "#/(hash[..4] !=? 0)",
  };
  for (const char* q : kQueries) {
    EXPECT_EQ(fx_.Lines(q), fx2.Lines(q)) << q << "\n--- dump ---\n" << dumped;
  }
}

TEST_F(ScenarioFileTest, DumpOfProgramModifiedState) {
  // Snapshot AFTER mutation: the dump captures current memory, not initials.
  Load("int x[3] = { 1, 2, 3 }");
  fx_.Lines("x[1] = 99 ;");
  DuelFixture fx2;
  LoadScenario(fx2.image(), DumpScenario(fx_.image()));
  EXPECT_EQ(fx2.One("{x[1]}"), "99");
}

TEST_F(ScenarioFileTest, FileLoading) {
  std::string path = testing::TempDir() + "/scenario_test.dsc";
  {
    std::ofstream out(path);
    out << "int answer = 42\n";
  }
  LoadScenarioFile(fx_.image(), path);
  EXPECT_EQ(fx_.One("answer"), "answer = 42");
  target::TargetImage other;
  EXPECT_THROW(LoadScenarioFile(other, "/nonexistent/file.dsc"), DuelError);
}

}  // namespace
}  // namespace duel::scenarios
