// Records in DUEL queries: unions, arrays of structs, nested structs,
// struct-typed with-chains — the data shapes real debugging sessions hit.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class RecordsTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RecordsTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(RecordsTest, ArrayOfStructs) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef point =
      b.Struct("point").Field("px", b.Int()).Field("py", b.Int()).Build();
  target::Addr pts = b.Global("pts", b.Arr(point, 5));
  for (int i = 0; i < 5; ++i) {
    b.PokeI32(pts + i * 8, i);          // px = i
    b.PokeI32(pts + i * 8 + 4, i * i);  // py = i*i
  }
  EXPECT_EQ(fx_.Lines("pts[..5].py >? 5"),
            (std::vector<std::string>{"pts[3].py = 9", "pts[4].py = 16"}));
  EXPECT_EQ(fx_.One("+/(pts[..5].px)"), "10");
  // `_` inside a struct scope.
  EXPECT_EQ(fx_.Lines("pts[..5].(if (px == py) _)").size(), 2u);  // 0 and 1
}

TEST_P(RecordsTest, UnionMembersShareStorage) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef u =
      b.Union("word").Field("i", b.Int()).Field("bytes", b.Arr(b.Char(), 4)).Build();
  target::Addr w = b.Global("w", u);
  b.PokeI32(w, 0x41424344);  // 'DCBA' little-endian
  EXPECT_EQ(fx_.One("w.i"), "w.i = 1094861636");
  EXPECT_EQ(fx_.Lines("w.bytes[..4]"),
            (std::vector<std::string>{"w.bytes[0] = 'D'", "w.bytes[1] = 'C'",
                                      "w.bytes[2] = 'B'", "w.bytes[3] = 'A'"}));
  fx_.Lines("w.bytes[0] = 'Z' ;");
  EXPECT_EQ(fx_.One("{w.i}"), "1094861658");  // low byte changed through the union
}

TEST_P(RecordsTest, NestedStructAccess) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef inner = b.Struct("inner2").Field("v", b.Int()).Build();
  target::TypeRef outer =
      b.Struct("outer2").Field("a", inner).Field("b", inner).Build();
  target::Addr o = b.Global("o", outer);
  b.PokeI32(o, 1);
  b.PokeI32(o + 4, 2);
  EXPECT_EQ(fx_.One("o.a.v"), "o.a.v = 1");
  EXPECT_EQ(fx_.Lines("o.(a,b).v"),
            (std::vector<std::string>{"o.a.v = 1", "o.b.v = 2"}));
  fx_.Lines("o.b.v = 9 ;");
  EXPECT_EQ(fx_.One("{o.b.v}"), "9");
}

TEST_P(RecordsTest, PointerToStructArrayElement) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef point =
      b.Struct("pt3").Field("px", b.Int()).Field("py", b.Int()).Build();
  target::Addr pts = b.Global("qts", b.Arr(point, 3));
  b.PokeI32(pts + 16, 77);  // qts[2].px
  EXPECT_EQ(fx_.One("(&qts[2])->px"), "(&qts[2])->px = 77");
  EXPECT_EQ(fx_.One("(qts + 2)->px"), "(qts+2)->px = 77");
}

TEST_P(RecordsTest, StructAssignmentCopiesBytes) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef point =
      b.Struct("pt4").Field("px", b.Int()).Field("py", b.Int()).Build();
  target::Addr s = b.Global("src", point);
  b.Global("dst", point);
  b.PokeI32(s, 5);
  b.PokeI32(s + 4, 6);
  fx_.Lines("dst = src ;");
  EXPECT_EQ(fx_.One("{dst.py}"), "6");
  // Mismatched record types are rejected.
  target::TypeRef other = b.Struct("pt5").Field("px", b.Int()).Build();
  b.Global("odd", other);
  EXPECT_NE(fx_.Error("dst = odd").find("cannot assign"), std::string::npos);
}

TEST_P(RecordsTest, ExpandingArrayOfStructsByPointerField) {
  // A small intrusive graph inside an array of structs.
  target::ImageBuilder b(fx_.image());
  target::TypeRef node = b.Struct("anode")
                             .Field("id", b.Int())
                             .Field("peer", b.Ptr(b.StructRef("anode")))
                             .Build();
  target::Addr arr = b.Global("nodes", b.Arr(node, 3));
  for (int i = 0; i < 3; ++i) {
    b.PokeI32(arr + static_cast<size_t>(i) * 16, i + 1);
  }
  b.PokePtr(arr + 8, arr + 16);       // nodes[0].peer = &nodes[1]
  b.PokePtr(arr + 16 + 8, arr + 32);  // nodes[1].peer = &nodes[2]
  EXPECT_EQ(fx_.Lines("(&nodes[0])-->peer->id"),
            (std::vector<std::string>{"(&nodes[0])->id = 1", "(&nodes[0])->peer->id = 2",
                                      "(&nodes[0])->peer->peer->id = 3"}));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, RecordsTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

}  // namespace
}  // namespace duel
