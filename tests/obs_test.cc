// Unit tests for the observability layer (src/support/obs/): span tracing,
// histograms, backend instrumentation, the per-node profiler — plus
// integration through Session stats and the RSP wire packet log.

#include <gtest/gtest.h>

#include <sstream>

#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/transport.h"
#include "src/support/obs/metrics.h"
#include "src/support/obs/profile.h"
#include "src/support/obs/trace.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

// --- tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  uint64_t token = t.BeginSpan("parse");
  EXPECT_EQ(token, 0u);
  t.EndSpan(token);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, SpansNestWithDepthAndParent) {
  obs::Tracer t;
  t.set_enabled(true);
  {
    obs::Span query(&t, "query", "x[..4]");
    { obs::Span parse(&t, "parse"); }
    {
      obs::Span eval(&t, "eval");
      { obs::Span call(&t, "backend.get_target_bytes"); }
    }
  }
  std::vector<obs::TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  // Spans complete innermost-first.
  EXPECT_EQ(events[0].name, "parse");
  EXPECT_EQ(events[1].name, "backend.get_target_bytes");
  EXPECT_EQ(events[2].name, "eval");
  EXPECT_EQ(events[3].name, "query");
  EXPECT_EQ(events[3].detail, "x[..4]");
  EXPECT_EQ(events[3].depth, 0);
  EXPECT_EQ(events[3].parent, 0u);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].parent, events[3].id);
  EXPECT_EQ(events[1].depth, 2);
  EXPECT_EQ(events[1].parent, events[2].id);
  EXPECT_EQ(events[2].parent, events[3].id);
}

TEST(TracerTest, RingBufferDropsOldestAndCounts) {
  obs::Tracer t(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    obs::Span s(&t, "span", std::to_string(i));
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  std::vector<obs::TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, so the survivors are spans 6..9.
  EXPECT_EQ(events.front().detail, "6");
  EXPECT_EQ(events.back().detail, "9");
}

TEST(TracerTest, ClearResetsStateAndEpoch) {
  obs::Tracer t;
  t.set_enabled(true);
  { obs::Span s(&t, "a"); }
  ASSERT_EQ(t.size(), 1u);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  { obs::Span s(&t, "b"); }
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Events()[0].name, "b");
}

TEST(TracerTest, ExportJsonlShape) {
  obs::Tracer t;
  t.set_enabled(true);
  {
    obs::Span outer(&t, "outer", "de\"tail");
    obs::Span inner(&t, "inner");
  }
  std::ostringstream os;
  t.ExportJsonl(os);
  std::string text = os.str();
  // One object per line, closing newline included.
  ASSERT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"detail\":\"de\\\"tail\""), std::string::npos);
  EXPECT_NE(text.find("\"dur_ns\":"), std::string::npos);
  for (const char* key : {"\"id\":", "\"parent\":", "\"depth\":", "\"start_ns\":"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

// --- histogram ----------------------------------------------------------------

TEST(HistogramTest, RecordsSumMinMaxMean) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  for (uint64_t v : {4u, 8u, 12u}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 24u);
  EXPECT_EQ(h.min(), 4u);
  EXPECT_EQ(h.max(), 12u);
  EXPECT_EQ(h.mean(), 8u);
}

TEST(HistogramTest, PercentileIsBucketUpperBoundClippedToMax) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(10);  // bucket [8,16)
  }
  h.Record(1000);
  EXPECT_EQ(h.Percentile(0.5), 16u);
  EXPECT_EQ(h.Percentile(1.0), 1000u);  // clipped to observed max
}

TEST(HistogramTest, ResetAndMerge) {
  obs::Histogram a, b;
  a.Record(5);
  b.Record(100);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 100u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.sum(), 0u);
  EXPECT_EQ(a.Summary(), "count=0");
}

// --- backend instrumentation -------------------------------------------------

TEST(BackendInstrTest, DisabledCallTimerCountsButDoesNotTime) {
  obs::BackendInstr instr;
  { obs::CallTimer t(instr, obs::NarrowCall::kGetBytes); }
  EXPECT_EQ(instr.calls(obs::NarrowCall::kGetBytes), 1u);
  EXPECT_EQ(instr.latency_ns(obs::NarrowCall::kGetBytes).count(), 0u);
}

TEST(BackendInstrTest, EnabledCallTimerTimesAndEmitsSpan) {
  obs::BackendInstr instr;
  obs::Tracer tracer;
  tracer.set_enabled(true);
  instr.set_enabled(true);
  instr.set_tracer(&tracer);
  { obs::CallTimer t(instr, obs::NarrowCall::kCallFunc); }
  EXPECT_EQ(instr.calls(obs::NarrowCall::kCallFunc), 1u);
  EXPECT_EQ(instr.latency_ns(obs::NarrowCall::kCallFunc).count(), 1u);
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.Events()[0].name, "backend.call_target_func");
}

TEST(BackendInstrTest, ResetHistogramsKeepsCounts) {
  obs::BackendInstr instr;
  instr.set_enabled(true);
  { obs::CallTimer t(instr, obs::NarrowCall::kPutBytes); }
  instr.RecordWriteBytes(64);
  instr.ResetHistograms();
  EXPECT_EQ(instr.calls(obs::NarrowCall::kPutBytes), 1u);  // counts survive
  EXPECT_EQ(instr.latency_ns(obs::NarrowCall::kPutBytes).count(), 0u);
  EXPECT_EQ(instr.write_bytes().count(), 0u);
}

// --- per-node profiler --------------------------------------------------------

TEST(NodeProfilerTest, AttributesStepsAndAbsorbsUnknownIds) {
  obs::NodeProfiler p;
  p.Begin(3);
  p.OnStep(0);
  p.OnStep(1);
  p.OnStep(1);
  p.OnStep(-1);  // unattributed -> overflow slot
  p.OnStep(99);  // out of range -> overflow slot
  p.End();
  ASSERT_EQ(p.slots().size(), 4u);
  EXPECT_EQ(p.slots()[0].steps, 1u);
  EXPECT_EQ(p.slots()[1].steps, 2u);
  EXPECT_EQ(p.slots()[2].steps, 0u);
  EXPECT_EQ(p.slots()[3].steps, 2u);
  EXPECT_EQ(p.total_steps(), 5u);
  EXPECT_FALSE(p.active());
}

TEST(NodeProfilerTest, InactiveProfilerIgnoresSteps) {
  obs::NodeProfiler p;
  p.OnStep(0);
  EXPECT_EQ(p.total_steps(), 0u);
}

// --- session integration ------------------------------------------------------

SessionOptions StatsOptions(EngineKind kind) {
  SessionOptions o;
  o.engine = kind;
  o.collect_stats = true;
  o.profile = true;
  return o;
}

class SessionStatsTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SessionStatsTest, ProfileStepTotalMatchesEvalSteps) {
  DuelFixture fx(StatsOptions(GetParam()));
  scenarios::BuildIntArray(fx.image(), "x", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  QueryResult r = fx.session().Query("x[..10] >? 0");
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.stats.has_value());
  const obs::QueryStats& st = *r.stats;
  EXPECT_GT(st.eval.eval_steps, 0u);
  uint64_t node_total = 0;
  for (const obs::QueryStats::NodeProfile& n : st.nodes) {
    node_total += n.steps;
  }
  // The acceptance invariant: per-node steps account for every eval step.
  EXPECT_EQ(node_total, st.eval.eval_steps);
  EXPECT_EQ(st.profiled_steps, st.eval.eval_steps);
}

TEST_P(SessionStatsTest, StatsReportNarrowCallsAndBytes) {
  // This test meters raw narrow-interface traffic; the read-combining cache
  // would collapse the per-element reads into one block fetch.
  SessionOptions opts = StatsOptions(GetParam());
  opts.eval.data_cache = false;
  DuelFixture fx(opts);
  scenarios::BuildIntArray(fx.image(), "x", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  QueryResult r = fx.session().Query("x[..10] >? 0");
  ASSERT_TRUE(r.ok && r.stats.has_value());
  const obs::QueryStats& st = *r.stats;
  // Reading x's type + address is a symbol lookup; each element a byte read.
  EXPECT_EQ(st.call_counts[static_cast<size_t>(obs::NarrowCall::kGetBytes)],
            st.backend.read_calls);
  EXPECT_GE(st.backend.read_calls, 10u);
  EXPECT_EQ(st.backend.bytes_read, st.read_bytes.sum());
  EXPECT_EQ(st.call_ns[static_cast<size_t>(obs::NarrowCall::kGetBytes)].count(),
            st.backend.read_calls);
  EXPECT_GT(st.total_ns, 0u);
  EXPECT_GE(st.total_ns, st.eval_ns);
  // Render and ToJson must mention the narrow call by its wire name.
  std::string json = st.ToJson();
  EXPECT_NE(json.find("\"get_target_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\":["), std::string::npos);
}

TEST_P(SessionStatsTest, StatsOffByDefault) {
  SessionOptions o;
  o.engine = GetParam();
  DuelFixture fx(o);
  scenarios::BuildIntArray(fx.image(), "x", {1, 2, 3});
  QueryResult r = fx.session().Query("x[..3]");
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.stats.has_value());
  EXPECT_FALSE(fx.session().last_stats().has_value());
}

TEST_P(SessionStatsTest, TraceCapturesQueryPhases) {
  DuelFixture fx(StatsOptions(GetParam()));
  scenarios::BuildIntArray(fx.image(), "x", {1, 2, 3});
  fx.session().tracer().set_enabled(true);
  QueryResult r = fx.session().Query("x[..3]");
  ASSERT_TRUE(r.ok);
  std::vector<std::string> names;
  for (const obs::TraceEvent& e : fx.session().tracer().Events()) {
    names.push_back(e.name);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "query"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "parse"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "eval"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "backend.get_target_bytes"), names.end());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SessionStatsTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

// --- RSP wire packet log ------------------------------------------------------

TEST(PacketLogTest, LogsRequestResponsePairsBounded) {
  target::TargetImage image;
  scenarios::BuildIntArray(image, "x", {1, 2, 3, 4});
  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);
  rsp::FramedTransport transport(server);
  rsp::RemoteBackend remote(transport);

  EXPECT_TRUE(server.packet_log().empty());
  server.set_packet_logging(true);
  Session session(remote);
  QueryResult r = session.Query("x[..4]");
  ASSERT_TRUE(r.ok);
  const std::deque<rsp::WirePacket>& log = server.packet_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.size() % 2, 0u);  // strict request/response pairing
  bool saw_read = false;
  for (size_t i = 0; i < log.size(); i += 2) {
    EXPECT_TRUE(log[i].is_request);
    EXPECT_FALSE(log[i + 1].is_request);
    // With the data cache on, reads travel as vectored qDuelReadV packets;
    // plain m-reads appear when the cache is off or on passthrough.
    if (log[i].payload[0] == 'm' || log[i].payload.rfind("qDuelReadV:", 0) == 0) {
      saw_read = true;
    }
  }
  EXPECT_TRUE(saw_read);
  server.ClearPacketLog();
  EXPECT_TRUE(server.packet_log().empty());

  // The deque is bounded at kMaxLoggedPackets.
  for (size_t i = 0; i < rsp::RspServer::kMaxLoggedPackets; ++i) {
    server.Handle("qFrames");
  }
  EXPECT_EQ(server.packet_log().size(), rsp::RspServer::kMaxLoggedPackets);
}

}  // namespace
}  // namespace duel
