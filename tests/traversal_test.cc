// Graph expansion (--> and the -->> extension): orders, termination on NULL
// and invalid pointers, cycle detection, symbolic chain compression.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class TraversalTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  TraversalTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(TraversalTest, EmptyListProducesNothing) {
  scenarios::BuildList(fx_.image(), "L", {});
  EXPECT_TRUE(fx_.Lines("L-->next->value").empty());
}

TEST_P(TraversalTest, SingleNode) {
  scenarios::BuildList(fx_.image(), "L", {5});
  EXPECT_EQ(fx_.Lines("L-->next->value"), (std::vector<std::string>{"L->value = 5"}));
}

TEST_P(TraversalTest, ChainCompressionThreshold) {
  scenarios::BuildList(fx_.image(), "L", {0, 1, 2, 3, 4, 5});
  std::vector<std::string> lines = fx_.Lines("L-->next->value");
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], "L->value = 0");
  EXPECT_EQ(lines[3], "L->next->next->next->value = 3");       // 3 reps: expanded
  EXPECT_EQ(lines[4], "L-->next[[4]]->value = 4");             // 4 reps: compressed
  EXPECT_EQ(lines[5], "L-->next[[5]]->value = 5");
}

TEST_P(TraversalTest, DanglingPointerTerminatesSilently) {
  scenarios::BuildDanglingList(fx_.image(), "L", {1, 2, 3}, 0xdead0000);
  EXPECT_EQ(fx_.Lines("#/(L-->next)"), (std::vector<std::string>{"3"}));
}

TEST_P(TraversalTest, CycleDetectionStopsRevisits) {
  scenarios::BuildCyclicList(fx_.image(), "L", {1, 2, 3, 4}, 1);
  // With the cycle-detection extension (default on), each node visits once.
  EXPECT_EQ(fx_.One("#/(L-->next)"), "4");
}

TEST_P(TraversalTest, CycleDetectionOffHitsTheFuelLimit) {
  scenarios::BuildCyclicList(fx_.image(), "L", {1, 2, 3, 4}, 1);
  fx_.session().options().eval.cycle_detect = false;
  fx_.session().options().eval.max_steps = 100'000;
  std::string err = fx_.Error("#/(L-->next)");
  EXPECT_NE(err.find("limit"), std::string::npos) << err;
}

TEST_P(TraversalTest, BfsVersusDfsOrder) {
  //        1
  //      2   3
  //     4 5 6 7
  scenarios::BuildTree(fx_.image(), "root", "(1 (2 (4) (5)) (3 (6) (7)))");
  std::vector<std::string> dfs = fx_.Lines("root-->(left,right)->key");
  std::vector<std::string> dfs_keys;
  for (const std::string& l : dfs) dfs_keys.push_back(l.substr(l.rfind(' ') + 1));
  EXPECT_EQ(dfs_keys, (std::vector<std::string>{"1", "2", "4", "5", "3", "6", "7"}));

  std::vector<std::string> bfs = fx_.Lines("root-->>(left,right)->key");
  std::vector<std::string> bfs_keys;
  for (const std::string& l : bfs) bfs_keys.push_back(l.substr(l.rfind(' ') + 1));
  EXPECT_EQ(bfs_keys, (std::vector<std::string>{"1", "2", "3", "4", "5", "6", "7"}));
}

TEST_P(TraversalTest, SharedSubtreeVisitedOnceWithCycleDetection) {
  // Build a diamond: two roots pointing at one shared list tail.
  target::TargetImage& image = fx_.image();
  scenarios::BuildList(image, "tail", {7, 8});
  target::ImageBuilder b(image);
  target::TypeRef list = image.types().LookupStruct("List");
  ASSERT_NE(list, nullptr);
  target::Addr tail_head = image.memory().ReadScalar<target::Addr>(
      image.symbols().FindVariable("tail")->addr);
  target::Addr n1 = b.Alloc(list);
  b.PokeI32(b.FieldAddr(n1, list, "value"), 1);
  b.PokePtr(b.FieldAddr(n1, list, "next"), tail_head);
  target::Addr g = b.Global("L", b.Ptr(list));
  b.PokePtr(g, n1);
  EXPECT_EQ(fx_.One("#/(L-->next)"), "3");  // 1, 7, 8
}

TEST_P(TraversalTest, ExpansionOverAlternationOfSources) {
  scenarios::BuildSymtab(fx_.image(), {{0, {{"a", 1}, {"b", 2}}}, {5, {{"c", 3}}}});
  EXPECT_EQ(fx_.One("#/(hash[0,5]-->next)"), "3");
}

TEST_P(TraversalTest, NonPointerSubjectsAreStillYielded) {
  // Expanding over struct values directly (no pointer): yields the value,
  // expands nothing.
  scenarios::BuildList(fx_.image(), "L", {42});
  EXPECT_EQ(fx_.Lines("(*L)-->(if (0) _)->value"),
            (std::vector<std::string>{"(*L)->value = 42"}));
}

TEST_P(TraversalTest, ExpansionLimitGuards) {
  fx_.session().options().eval.max_expand_nodes = 100;
  fx_.session().options().eval.cycle_detect = false;
  scenarios::BuildCyclicList(fx_.image(), "L", {1, 2}, 0);
  std::string err = fx_.Error("#/(L-->next)");
  EXPECT_NE(err.find("limit"), std::string::npos) << err;
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TraversalTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                          : "Coroutine";
                         });

}  // namespace
}  // namespace duel
