// The concurrent query service: scheduling, classification, governor,
// admission control, endpoint wire protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/classify.h"
#include "src/serve/endpoint.h"
#include "src/serve/latency_backend.h"
#include "src/serve/service.h"
#include "tests/duel_test_util.h"

namespace duel::serve {
namespace {

void BuildSharedDebuggee(target::TargetImage& image) {
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "arr", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  scenarios::BuildList(image, "L", {11, 27, 33, 27, 8});
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
}

QueryService::BackendFactory FactoryFor(target::TargetImage& image) {
  return [&image] { return std::make_unique<dbg::SimBackend>(image); };
}

// Pins the governor on for one service session, overriding a possible
// DUEL_GOVERNOR=off ablation environment (the pattern check_test.cc uses for
// DUEL_CHECK): tests of the governor must behave identically in both CI
// configurations.
void PinGovernorOn(QueryService& service, uint64_t client) {
  service.session(client)->options().governor = true;
}

// --- classification ----------------------------------------------------------

TEST(ServeClassifyTest, ReadOnlyVsMutating) {
  DuelFixture fx;
  scenarios::BuildIntArray(fx.image(), "arr", {1, 2, 3});
  scenarios::BuildList(fx.image(), "L", {4, 5});

  auto classify = [&](const std::string& expr) {
    const CompiledQuery* plan = fx.session().Prepare(expr);
    EXPECT_NE(plan, nullptr) << expr;
    return Classify(*plan);
  };

  // Pure reads run in parallel.
  EXPECT_EQ(classify("arr[..3] >? 1"), QueryClass::kReadOnly);
  EXPECT_EQ(classify("L-->next->value"), QueryClass::kReadOnly);
  EXPECT_EQ(classify("#/(arr[..3])"), QueryClass::kReadOnly);
  EXPECT_EQ(classify("sizeof(int)"), QueryClass::kReadOnly);

  // Anything that can touch shared target state serialises.
  EXPECT_EQ(classify("arr[0] = 9"), QueryClass::kMutating);
  EXPECT_EQ(classify("arr[0] += 1"), QueryClass::kMutating);
  EXPECT_EQ(classify("arr[0]++"), QueryClass::kMutating);
  EXPECT_EQ(classify("--arr[1]"), QueryClass::kMutating);
  EXPECT_EQ(classify("int t;"), QueryClass::kMutating);  // allocates target space
  // Mutation buried in a conditionally-evaluated arm still counts.
  EXPECT_EQ(classify("arr[0] > 0 ? arr[1] = 7 : 0"), QueryClass::kMutating);
}

// --- parity under concurrency ------------------------------------------------

TEST(ServeTest, EightClientParityWithSerial) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  const std::vector<std::string> queries = {
      "arr[..10] >? 0",
      "L-->next->value",
      "#/(L-->next)",
      "root-->(left,right)->key",
      "arr[..10] >? 3",
      "+/(arr[..10])",
  };

  // Ground truth: one serial session over the same image.
  std::vector<std::string> expected;
  {
    dbg::SimBackend serial_backend(image);
    Session serial(serial_backend);
    for (const std::string& q : queries) {
      QueryResult r = serial.Query(q);
      ASSERT_TRUE(r.ok) << q << ": " << r.error;
      expected.push_back(r.Text());
    }
  }

  ServeOptions opts;
  opts.workers = 8;
  QueryService service(FactoryFor(image), opts);

  constexpr int kClients = 8;
  constexpr int kRounds = 12;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kClients; ++i) {
    ids.push_back(service.OpenSession());
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, id = ids[static_cast<size_t>(i)]] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          QueryService::Outcome out = service.Eval(id, queries[q]);
          if (out.status != SubmitStatus::kAccepted || !out.result.ok ||
              out.result.Text() != expected[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent read-only results must be byte-identical to serial";

  ServeStats s = service.stats();
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kClients * kRounds * queries.size()));
  EXPECT_EQ(s.completed, s.ok);
  EXPECT_EQ(s.mutating, 0u);
  EXPECT_EQ(s.rejected_busy, 0u);
}

// --- governor ---------------------------------------------------------------

TEST(ServeGovernorTest, StepBudgetCancelIsDeterministic) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildCyclicList(image, "C", {1, 2, 3, 4}, 1);

  ServeOptions opts;
  opts.session.eval.cycle_detect = false;  // make C-->next a true runaway
  opts.governor_limits = GovernorLimits{/*deadline_ms=*/0, /*max_steps=*/50'000,
                                        /*max_read_bytes=*/0};
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();
  PinGovernorOn(service, id);

  std::string first_error;
  for (int run = 0; run < 3; ++run) {
    QueryService::Outcome out = service.Eval(id, "C-->next->value");
    ASSERT_EQ(out.status, SubmitStatus::kAccepted);
    EXPECT_FALSE(out.result.ok);
    ASSERT_TRUE(out.result.error_kind.has_value());
    EXPECT_EQ(*out.result.error_kind, ErrorKind::kCancel);
    EXPECT_NE(out.result.error.find("step budget"), std::string::npos) << out.result.error;
    EXPECT_NE(out.result.error.find("50000"), std::string::npos)
        << "diagnostic quotes the configured limit: " << out.result.error;
    // Partial results: values produced before the trip are kept.
    EXPECT_FALSE(out.result.lines.empty());
    // Span-carrying: the diagnostic points back into the query text.
    EXPECT_FALSE(out.result.error_span.empty());
    if (run == 0) {
      first_error = out.result.error;
    } else {
      EXPECT_EQ(out.result.error, first_error) << "same budget, same diagnostic, every run";
    }
  }
  EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(ServeGovernorTest, ReadByteBudgetTrips) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  ServeOptions opts;
  opts.governor_limits = GovernorLimits{0, 0, /*max_read_bytes=*/8};
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();
  PinGovernorOn(service, id);

  QueryService::Outcome out = service.Eval(id, "arr[..10]");
  ASSERT_EQ(out.status, SubmitStatus::kAccepted);
  EXPECT_FALSE(out.result.ok);
  EXPECT_EQ(out.result.error_kind, ErrorKind::kCancel);
  EXPECT_NE(out.result.error.find("target-read budget"), std::string::npos) << out.result.error;
}

TEST(ServeGovernorTest, DeadlineCancelsRunawayWhileOthersComplete) {
  target::TargetImage image;
  BuildSharedDebuggee(image);
  scenarios::BuildCyclicList(image, "C", {1, 2, 3, 4}, 1);

  ServeOptions opts;
  opts.workers = 4;
  opts.session.eval.cycle_detect = false;
  opts.governor_limits = GovernorLimits{/*deadline_ms=*/150, /*max_steps=*/0,
                                        /*max_read_bytes=*/0};
  QueryService service(FactoryFor(image), opts);

  uint64_t runaway = service.OpenSession();
  PinGovernorOn(service, runaway);
  uint64_t id_a = service.OpenSession();
  uint64_t id_b = service.OpenSession();

  std::promise<QueryResult> runaway_done;
  std::future<QueryResult> runaway_future = runaway_done.get_future();
  ASSERT_EQ(service.Submit(runaway, "C-->next->value",
                           [&](QueryResult r) { runaway_done.set_value(std::move(r)); }),
            SubmitStatus::kAccepted);

  // While the runaway burns its deadline, other sessions keep being served.
  for (int i = 0; i < 10; ++i) {
    QueryService::Outcome a = service.Eval(id_a, "arr[..10] >? 0");
    QueryService::Outcome b = service.Eval(id_b, "#/(L-->next)");
    ASSERT_EQ(a.status, SubmitStatus::kAccepted);
    ASSERT_EQ(b.status, SubmitStatus::kAccepted);
    EXPECT_TRUE(a.result.ok) << a.result.error;
    EXPECT_TRUE(b.result.ok) << b.result.error;
  }

  QueryResult r = runaway_future.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kCancel);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_FALSE(r.error_span.empty());
}

TEST(ServeGovernorTest, ExplicitCancelFromAnotherThread) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildCyclicList(image, "C", {1, 2, 3, 4}, 1);

  ServeOptions opts;
  opts.session.eval.cycle_detect = false;
  // Armed (so Cancel can land) but roomy enough that only the explicit
  // cancel can be what stops the query.
  opts.governor_limits = GovernorLimits{0, /*max_steps=*/40'000'000, 0};
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();
  PinGovernorOn(service, id);

  std::promise<QueryResult> done;
  std::future<QueryResult> future = done.get_future();
  ASSERT_EQ(service.Submit(id, "C-->next->value",
                           [&](QueryResult r) { done.set_value(std::move(r)); }),
            SubmitStatus::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(service.Cancel(id, "operator stop"));

  QueryResult r = future.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_kind, ErrorKind::kCancel);
  EXPECT_NE(r.error.find("operator stop"), std::string::npos) << r.error;
}

// --- admission control -------------------------------------------------------

TEST(ServeTest, AdmissionControlRejectsBusyNeverDrops) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildCyclicList(image, "C", {1, 2, 3, 4}, 1);

  ServeOptions opts;
  opts.workers = 1;
  opts.queue_limit = 2;
  opts.session.eval.cycle_detect = false;
  opts.governor_limits = GovernorLimits{0, /*max_steps=*/200'000, 0};
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();
  PinGovernorOn(service, id);

  constexpr int kSubmissions = 12;
  std::atomic<int> callbacks{0};
  int accepted = 0, busy = 0;
  for (int i = 0; i < kSubmissions; ++i) {
    SubmitStatus s = service.Submit(
        id, "C-->next->value",
        [&](QueryResult) { callbacks.fetch_add(1, std::memory_order_relaxed); });
    if (s == SubmitStatus::kAccepted) {
      accepted++;
    } else {
      ASSERT_EQ(s, SubmitStatus::kBusy) << "rejection must be the typed busy status";
      busy++;
    }
  }
  EXPECT_GT(busy, 0) << "queue_limit=2 with a slow worker must reject something";
  EXPECT_GE(accepted, 1);

  // Drain: every accepted request completes, none vanish.
  while (callbacks.load(std::memory_order_relaxed) < accepted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ServeStats s = service.stats();
  EXPECT_EQ(s.submitted, static_cast<uint64_t>(accepted));
  EXPECT_EQ(s.completed, static_cast<uint64_t>(accepted));
  EXPECT_EQ(s.rejected_busy, static_cast<uint64_t>(busy));
  EXPECT_EQ(callbacks.load(), accepted);
}

// --- cross-session consistency ----------------------------------------------

TEST(ServeTest, MutationInOneSessionVisibleToOthers) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  QueryService service(FactoryFor(image));
  uint64_t reader = service.OpenSession();
  uint64_t writer = service.OpenSession();

  QueryService::Outcome before = service.Eval(reader, "arr[0]");
  ASSERT_EQ(before.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(before.result.ok) << before.result.error;
  EXPECT_EQ(before.result.lines, (std::vector<std::string>{"arr[0] = 3"}));

  QueryService::Outcome write = service.Eval(writer, "arr[0] = 99");
  ASSERT_EQ(write.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(write.result.ok) << write.result.error;

  // The reader's block cache and cached plan were epoch-invalidated: the
  // next read observes the other session's write.
  QueryService::Outcome after = service.Eval(reader, "arr[0]");
  ASSERT_EQ(after.status, SubmitStatus::kAccepted);
  ASSERT_TRUE(after.result.ok) << after.result.error;
  EXPECT_EQ(after.result.lines, (std::vector<std::string>{"arr[0] = 99"}));

  ServeStats s = service.stats();
  EXPECT_EQ(s.mutating, 1u);
  EXPECT_EQ(s.read_only, 2u);
  EXPECT_EQ(s.mutation_epoch, 1u);
}

TEST(ServeTest, SessionsKeepPrivateAliases) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  QueryService service(FactoryFor(image));
  uint64_t a = service.OpenSession();
  uint64_t b = service.OpenSession();

  ASSERT_TRUE(service.Eval(a, "v := 41").result.ok);
  EXPECT_TRUE(service.Eval(a, "v + 1").result.ok);
  // The alias is session-local: client b never sees it.
  EXPECT_FALSE(service.Eval(b, "v + 1").result.ok);
}

TEST(ServeTest, CloseSessionDrainsAndSubmitAfterCloseFails) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  QueryService service(FactoryFor(image));
  uint64_t id = service.OpenSession();
  ASSERT_TRUE(service.Eval(id, "arr[0]").result.ok);
  EXPECT_TRUE(service.CloseSession(id));
  EXPECT_FALSE(service.CloseSession(id));
  EXPECT_EQ(service.Submit(id, "arr[0]", [](QueryResult) {}), SubmitStatus::kNoSuchClient);
}

TEST(ServeTest, ConcurrentDuplicateCloseIsSafe) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  ServeOptions opts;
  opts.workers = 2;
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();

  // Keep the session draining while the closers race: every waiter must
  // survive another closer erasing the client out from under it.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(service.Submit(id, "#/(L-->next)", [](QueryResult) {}),
              SubmitStatus::kAccepted);
  }

  constexpr int kClosers = 4;
  std::atomic<int> closed{0};
  std::vector<std::thread> threads;
  threads.reserve(kClosers);
  for (int i = 0; i < kClosers; ++i) {
    threads.emplace_back([&] {
      if (service.CloseSession(id)) {
        closed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Exactly one closer wins; the rest report the session already gone.
  EXPECT_EQ(closed.load(), 1);
  EXPECT_EQ(service.stats().clients, 0u);
}

TEST(ServeTest, ShutdownFailsQueuedRequestsTyped) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildCyclicList(image, "C", {1, 2, 3}, 0);

  ServeOptions opts;
  opts.workers = 1;
  opts.session.eval.cycle_detect = false;
  opts.governor_limits = GovernorLimits{/*deadline_ms=*/2000, 0, 0};
  QueryService service(FactoryFor(image), opts);
  uint64_t id = service.OpenSession();
  PinGovernorOn(service, id);

  // One slow query occupies the worker; the second sits in the queue.
  std::promise<QueryResult> p1, p2;
  std::future<QueryResult> f1 = p1.get_future(), f2 = p2.get_future();
  ASSERT_EQ(service.Submit(id, "C-->next->value",
                           [&](QueryResult r) { p1.set_value(std::move(r)); }),
            SubmitStatus::kAccepted);
  ASSERT_EQ(service.Submit(id, "arr[..10]",
                           [&](QueryResult r) { p2.set_value(std::move(r)); }),
            SubmitStatus::kAccepted);

  service.Shutdown();
  QueryResult r1 = f1.get();  // in-flight: cancelled by shutdown (or deadline)
  QueryResult r2 = f2.get();  // queued: failed typed, never silently dropped
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.error_kind, ErrorKind::kCancel);
  EXPECT_NE(r2.error.find("shutting down"), std::string::npos) << r2.error;
  EXPECT_EQ(service.Submit(id, "arr[0]", [](QueryResult) {}), SubmitStatus::kShutdown);
  // Orphaned requests count as completed+cancelled, so the accounting
  // invariant survives shutdown.
  ServeStats s = service.stats();
  EXPECT_EQ(s.submitted, s.completed + s.queue_depth + s.in_flight);
  EXPECT_GE(s.cancelled, 1u);
}

// --- the wire endpoint -------------------------------------------------------

TEST(ServeEndpointTest, OpenEvalCloseOverSocket) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  QueryService service(FactoryFor(image));
  SocketEndpoint endpoint(service);
  EndpointClient client(endpoint.Connect());

  uint64_t id = client.Open();
  ASSERT_NE(id, 0u);

  EndpointClient::EvalReply reply = client.Eval(id, "arr[..10] >? 0");
  EXPECT_EQ(reply.status, SubmitStatus::kAccepted);
  EXPECT_TRUE(reply.ok);
  EXPECT_NE(reply.text.find("arr[2] = 4"), std::string::npos) << reply.text;

  // A failing query still arrives as a typed, rendered result.
  reply = client.Eval(id, "no_such_symbol");
  EXPECT_EQ(reply.status, SubmitStatus::kAccepted);
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.text.empty());

  // Unknown session ids are the typed E00, not a query error.
  reply = client.Eval(9999, "arr[0]");
  EXPECT_EQ(reply.status, SubmitStatus::kNoSuchClient);

  std::string json = client.StatsJson();
  EXPECT_NE(json.find("\"clients\":1"), std::string::npos) << json;

  EXPECT_TRUE(client.Close(id));
  EXPECT_FALSE(client.Close(id));
}

TEST(ServeEndpointTest, ConcurrentConnectionsShareTheService) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  ServeOptions opts;
  opts.workers = 4;
  QueryService service(FactoryFor(image), opts);
  SocketEndpoint endpoint(service);

  constexpr int kConnections = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kConnections; ++i) {
    threads.emplace_back([&] {
      EndpointClient client(endpoint.Connect());
      uint64_t id = client.Open();
      if (id == 0) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < 8; ++q) {
        EndpointClient::EvalReply reply = client.Eval(id, "#/(L-->next)");
        if (reply.status != SubmitStatus::kAccepted || !reply.ok ||
            reply.text != "5\n") {
          failures.fetch_add(1);
        }
      }
      client.Close(id);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// --- the latency decorator (bench utility) -----------------------------------

TEST(ServeTest, LatencyBackendPreservesSemantics) {
  target::TargetImage image;
  BuildSharedDebuggee(image);

  dbg::SimBackend inner(image);
  LatencyBackend slow(inner, /*per_call_us=*/1);
  Session session(slow);
  QueryResult r = session.Query("arr[..10] >? 0");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lines,
            (std::vector<std::string>{"arr[0] = 3", "arr[2] = 4", "arr[3] = 1", "arr[5] = 9",
                                      "arr[6] = 2", "arr[7] = 6", "arr[9] = 3"}));
}

}  // namespace
}  // namespace duel::serve
