// Additional language-surface coverage: enumeration constants in
// expressions, multi-dimensional arrays, and parser robustness under
// fuzzed inputs (errors, never crashes).

#include <gtest/gtest.h>

#include "src/duel/parser.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/transport.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class EnumConstTest : public ::testing::Test {
 protected:
  EnumConstTest() {
    fx_.image().types().DefineEnum("color", {{"RED", 0}, {"GREEN", 1}, {"BLUE", 7}});
    target::ImageBuilder b(fx_.image());
    target::Addr c = b.Global("c", fx_.image().types().LookupEnum("color"));
    b.PokeI32(c, 7);
  }

  DuelFixture fx_;
};

TEST_F(EnumConstTest, EnumeratorsResolveByName) {
  EXPECT_EQ(fx_.One("BLUE"), "BLUE");  // sym "BLUE", value "BLUE": collapses
  EXPECT_EQ(fx_.One("{BLUE + 0}"), "7");
  EXPECT_EQ(fx_.One("c == BLUE"), "c==BLUE = 1");
  EXPECT_EQ(fx_.One("c == GREEN"), "c==GREEN = 0");
}

TEST_F(EnumConstTest, EnumeratorsComposeWithGenerators) {
  scenarios::BuildIntArray(fx_.image(), "x", {0, 7, 1, 7});
  EXPECT_EQ(fx_.One("#/(x[..4] ==? BLUE)"), "2");
}

TEST_F(EnumConstTest, VariablesShadowEnumerators) {
  target::ImageBuilder b(fx_.image());
  target::Addr v = b.Global("GREEN", b.Int());
  b.PokeI32(v, 42);
  EXPECT_EQ(fx_.One("{GREEN}"), "42");  // the variable wins
}

TEST_F(EnumConstTest, EnumeratorsWorkOverTheRemoteProtocol) {
  dbg::SimBackend& sim = fx_.backend();
  rsp::RspServer server(sim);
  rsp::FramedTransport transport(server);
  rsp::RemoteBackend remote(transport);
  Session remote_session(remote);
  QueryResult r = remote_session.Query("c == BLUE");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.lines[0], "c==BLUE = 1");
}

class MultiDimTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(MultiDimTest, TwoDimensionalDeclarationAndIndexing) {
  std::vector<std::string> lines = fx_.Lines(
      "int m[3][4]; int i, j;"
      "for (i = 0; i < 3; i++) for (j = 0; j < 4; j++) m[i][j] = 10*i + j;"
      "{m[2][3]}");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "23");
}

TEST_F(MultiDimTest, RowGeneratorsOverMatrix) {
  fx_.Lines("int m[2][3]; m[0][0] = 5; m[1][2] = 9 ;");
  // All elements of row 1:
  EXPECT_EQ(fx_.Lines("m[1][..3]"),
            (std::vector<std::string>{"m[1][0] = 0", "m[1][1] = 0", "m[1][2] = 9"}));
  // The positive elements of the whole matrix:
  EXPECT_EQ(fx_.Lines("m[..2][..3] >? 0"),
            (std::vector<std::string>{"m[0][0] = 5", "m[1][2] = 9"}));
  EXPECT_EQ(fx_.One("+/(m[..2][..3])"), "14");
}

TEST_F(MultiDimTest, SizeofMatrix) {
  fx_.Lines("int m[3][4] ;");
  EXPECT_EQ(fx_.One("{sizeof m}"), "48");
  EXPECT_EQ(fx_.One("{sizeof m[0]}"), "16");
}

class UntilFieldTest : public ::testing::Test {
 protected:
  DuelFixture fx_;
};

TEST_F(UntilFieldTest, PredicateCanUseFieldsOfTheValue) {
  // e@(pred) opens the value's scope: fields are visible, per the paper's
  // "produces the values of e until e.n is non-zero".
  scenarios::BuildList(fx_.image(), "L", {1, 2, 3, 4});
  // Walk until the node whose next is NULL (i.e. stop *at* the last node).
  EXPECT_EQ(fx_.One("#/(L-->next@(next == 0))"), "3");
  // Stop at the first node whose value exceeds 2.
  EXPECT_EQ(fx_.Lines("L-->next@(value > 2)->value"),
            (std::vector<std::string>{"L->value = 1", "L->next->value = 2"}));
}

TEST_F(UntilFieldTest, NegativeLiteralIsMatchMode) {
  scenarios::BuildIntArray(fx_.image(), "x", {4, -7, 9});
  EXPECT_EQ(fx_.Lines("x[..3]@(-7)"), (std::vector<std::string>{"x[0] = 4"}));
}

// --- parser robustness -------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "x",   "1",  "..",  "(",  ")",   "[",  "]",   "[[",  "]]", ",",  ";",  "=>",
      ">?",  "+",  "-",   "*",  "/",   "->", "-->", ".",   ":=", "=",  "#",  "@",
      "#/",  "{",  "}",   "if", "else", "for", "while",    "int", "&&", "||",
      "===", "_",  "\"s\"", "'c'", "5..9", "struct", "sizeof", "1.5", "?", ":",
  };
  uint32_t state = GetParam() * 2654435761u + 1;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string input;
    size_t len = 1 + next() % 20;
    for (size_t i = 0; i < len; ++i) {
      input += kFragments[next() % (sizeof(kFragments) / sizeof(kFragments[0]))];
      input += ' ';
    }
    try {
      Parser parser(input);
      ParseResult r = parser.Parse();
      EXPECT_NE(r.root, nullptr) << input;
    } catch (const DuelError&) {
      // Expected for most soups: a *reported* error, never a crash.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(1u, 7u));

TEST(ParserFuzzTest2, RandomBytesNeverCrashLexerOrParser) {
  uint32_t state = 12345;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = next() % 40;
    for (size_t i = 0; i < len; ++i) {
      input += static_cast<char>(32 + next() % 95);  // printable ASCII
    }
    try {
      Parser parser(input);
      (void)parser.Parse();
    } catch (const DuelError&) {
    }
  }
}

}  // namespace
}  // namespace duel
