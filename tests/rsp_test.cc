// Remote protocol: packet codec properties, server request handling, and a
// full DUEL session running over the RemoteBackend — output must be
// byte-identical to the in-process SimBackend.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "src/rsp/packet.h"
#include "src/target/ctype_io.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/socket_transport.h"
#include "src/rsp/transport.h"
#include "src/support/strings.h"
#include "tests/duel_test_util.h"

namespace duel::rsp {
namespace {

TEST(PacketTest, EncodeBasics) {
  EXPECT_EQ(EncodePacket(""), "$#00");
  EXPECT_EQ(EncodePacket("OK"), "$OK#9a");
}

TEST(PacketTest, RoundTripWithEscapes) {
  const std::string payloads[] = {
      "", "OK", "m1000,4", "a$b#c}d*e", std::string("\x00\x7d\x24", 3),
  };
  for (const std::string& p : payloads) {
    std::string wire = EncodePacket(p);
    PacketDecoder dec;
    dec.Feed(wire.data(), wire.size());
    auto got = dec.NextPacket();
    ASSERT_TRUE(got.has_value()) << HexEncode(p.data(), p.size());
    EXPECT_EQ(*got, p);
  }
}

TEST(PacketTest, ByteAtATimeFeeding) {
  std::string wire = EncodePacket("qVar:78");
  PacketDecoder dec;
  for (char c : wire) {
    dec.Feed(&c, 1);
  }
  auto got = dec.NextPacket();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "qVar:78");
}

TEST(PacketTest, ChecksumMismatchDropsPacket) {
  std::string wire = EncodePacket("hello");
  wire[wire.size() - 1] ^= 1;  // corrupt the checksum
  PacketDecoder dec;
  dec.Feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.NextPacket().has_value());
  EXPECT_EQ(dec.bad_checksums(), 1u);
  EXPECT_EQ(dec.TakeNaks(), 1);
}

TEST(PacketTest, AcksAndGarbageBetweenPackets) {
  PacketDecoder dec;
  std::string stream = "+" + EncodePacket("a") + "junk-" + EncodePacket("b");
  dec.Feed(stream.data(), stream.size());
  EXPECT_EQ(dec.TakeAcks(), 1);
  EXPECT_EQ(*dec.NextPacket(), "a");
  EXPECT_EQ(*dec.NextPacket(), "b");
  EXPECT_EQ(dec.TakeNaks(), 1);  // the stray '-'
}

TEST(PacketTest, MultiplePacketsInOneFeed) {
  PacketDecoder dec;
  std::string stream = EncodePacket("one") + EncodePacket("two");
  dec.Feed(stream.data(), stream.size());
  EXPECT_EQ(*dec.NextPacket(), "one");
  EXPECT_EQ(*dec.NextPacket(), "two");
  EXPECT_FALSE(dec.NextPacket().has_value());
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : backend_(image_), server_(backend_) {
    target::InstallStandardFunctions(image_);
    scenarios::BuildIntArray(image_, "x", {10, 20, 30});
  }

  target::TargetImage image_;
  dbg::SimBackend backend_;
  RspServer server_;
};

TEST_F(ServerTest, MemoryReadWrite) {
  target::Addr x = image_.symbols().FindVariable("x")->addr;
  std::string r = server_.Handle("m" + HexU64(x) + ",4");
  EXPECT_EQ(r, "0a000000");
  EXPECT_EQ(server_.Handle("M" + HexU64(x) + ",4:2a000000"), "OK");
  EXPECT_EQ(image_.memory().ReadScalar<int32_t>(x), 42);
  EXPECT_EQ(server_.Handle("mdead0000,4"), "E01");
  EXPECT_EQ(server_.Handle("qValid:" + HexU64(x) + ",4"), "OK");
  EXPECT_EQ(server_.Handle("qValid:dead0000,4"), "E01");
}

TEST_F(ServerTest, VariableAndTypeQueries) {
  std::string name_hex = HexEncode("x", 1);
  std::string r = server_.Handle("qVar:" + name_hex);
  EXPECT_TRUE(StartsWith(r, "V")) << r;
  EXPECT_NE(r.find(";A3:i"), std::string::npos) << r;  // int[3]
  EXPECT_EQ(server_.Handle("qVar:" + HexEncode("zz", 2)), "E00");
  EXPECT_TRUE(StartsWith(server_.Handle("qFunc:" + HexEncode("printf", 6)), "F"));
}

TEST_F(ServerTest, MalformedRequests) {
  EXPECT_EQ(server_.Handle("m123"), "E03");
  EXPECT_EQ(server_.Handle("Mzz,4:00"), "E03");
  EXPECT_EQ(server_.Handle("qAlloc:xx,1"), "E03");
  EXPECT_EQ(server_.Handle("zzz"), "");  // unknown: empty per RSP convention
}

TEST_F(ServerTest, CallThroughProtocol) {
  target::TypeTable& tt = image_.types();
  std::string arg_type = target::SerializeType(tt.Int());
  std::string req = "vCall:" + HexEncode("abs", 3) + ":" + arg_type + ",";
  int32_t v = -7;
  req += HexEncode(&v, 4) + ";";
  std::string r = server_.Handle(req);
  ASSERT_TRUE(StartsWith(r, "R")) << r;
  EXPECT_NE(r.find("07000000"), std::string::npos) << r;
}

// --- end-to-end: a DUEL session over the remote backend ------------------------

class RemoteEndToEndTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(RemoteEndToEndTest, RemoteMatchesLocal) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9});
  scenarios::BuildList(image, "L", {5, 3, 8, 3});
  scenarios::BuildSymtab(image, {{1, {{"a", 7}, {"b", 2}}}});
  scenarios::BuildFrames(image, 3);

  dbg::SimBackend sim(image);
  RspServer server(sim);
  FramedTransport transport(server);
  RemoteBackend remote(transport);

  SessionOptions opts;
  opts.engine = GetParam();
  Session local_session(sim, opts);
  Session remote_session(remote, opts);

  const char* kQueries[] = {
      "x[..6] >? 0",
      "L-->next->value",
      "hash[1]-->next->(scope,name)",
      "#/(L-->next)",
      "int i; for (i = 0; i < 6; i++) x[i] >? 1",
      "(struct symbol *)0 == 0",
      "printf(\"%d \", x[..3]) ;",
      "frames()",
      "frames().x",
  };
  for (const char* q : kQueries) {
    QueryResult a = local_session.Query(q);
    QueryResult b = remote_session.Query(q);
    EXPECT_EQ(a.ok, b.ok) << q << "\nlocal: " << a.error << "\nremote: " << b.error;
    EXPECT_EQ(a.lines, b.lines) << q;
  }
  EXPECT_GT(transport.round_trips(), 0u);
  EXPECT_GT(transport.bytes_on_wire(), 0u);
}

TEST_P(RemoteEndToEndTest, RemoteFaultsMatchLocal) {
  target::TargetImage image;
  target::ImageBuilder b(image);
  target::TypeRef t = b.Struct("T").Field("val", b.Int()).Build();
  target::Addr p = b.Global("p", b.Ptr(t));
  b.PokePtr(p, 0xbad00);

  dbg::SimBackend sim(image);
  RspServer server(sim);
  FramedTransport transport(server);
  RemoteBackend remote(transport);

  SessionOptions opts;
  opts.engine = GetParam();
  Session remote_session(remote, opts);
  QueryResult r = remote_session.Query("p->val");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("Illegal memory reference"), std::string::npos) << r.error;
}

TEST(SocketTransportTest, FullSessionOverARealByteStream) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9});
  scenarios::BuildList(image, "L", {5, 3, 8, 3});

  dbg::SimBackend sim(image);
  RspServer server(sim);
  SocketTransport transport(server);
  RemoteBackend remote(transport);
  Session session(remote);

  EXPECT_EQ(session.Query("x[..6] >? 0").lines,
            (std::vector<std::string>{"x[0] = 3", "x[2] = 4", "x[3] = 1", "x[5] = 9"}));
  EXPECT_EQ(session.Query("+/(L-->next->value)").lines, (std::vector<std::string>{"19"}));
  QueryResult fault = session.Query("*(int *)0xdead0000");
  EXPECT_FALSE(fault.ok);
  EXPECT_NE(fault.error.find("Illegal memory reference"), std::string::npos) << fault.error;
  // Three queries still need a handful of round trips even with the block
  // cache combining the reads (symbol lookups + block fetches + the fault).
  EXPECT_GT(transport.round_trips(), 5u);
  EXPECT_GT(transport.bytes_on_wire(), 200u);
}

TEST(SocketTransportTest, LargePayloadsCrossIntact) {
  // Memory reads larger than the 512-byte socket buffers force partial reads
  // on both sides of the stream.
  target::TargetImage image;
  scenarios::BuildRandomIntArray(image, "big", 4096, -1000, 1000, 5);
  dbg::SimBackend sim(image);
  RspServer server(sim);
  SocketTransport transport(server);
  RemoteBackend remote(transport);
  Session local(sim);
  Session rem(remote);
  EXPECT_EQ(local.Query("+/big[..4096]").lines, rem.Query("+/big[..4096]").lines);

  // A single bulk read of the whole array (16 KiB of hex on the wire).
  target::Addr base = image.symbols().FindVariable("big")->addr;
  std::vector<uint8_t> local_bytes(4096 * 4);
  std::vector<uint8_t> remote_bytes(4096 * 4);
  sim.GetTargetBytes(base, local_bytes.data(), local_bytes.size());
  remote.GetTargetBytes(base, remote_bytes.data(), remote_bytes.size());
  EXPECT_EQ(local_bytes, remote_bytes);
}

// A server whose Handle never answers until released — the shape of a
// remote side that wedged mid-round-trip. The receive timeout must turn the
// indefinite block into a clean protocol error.
class HungServer : public RspServer {
 public:
  explicit HungServer(dbg::DebuggerBackend& backend) : RspServer(backend) {}

  std::string Handle(const std::string& request) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
    return RspServer::Handle(request);
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(SocketTransportTest, ReceiveTimeoutFailsCleanlyWhenServerHangs) {
  target::TargetImage image;
  scenarios::BuildIntArray(image, "x", {1, 2, 3});
  dbg::SimBackend sim(image);
  HungServer server(sim);
  SocketTransport transport(server);
  transport.set_receive_timeout_ms(50);

  try {
    transport.RoundTrip("qValid:0,1");
    FAIL() << "RoundTrip against a hung server must not block forever";
  } catch (const DuelError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
  }
  // Unwedge the server so the transport destructor can join its thread.
  server.Release();
}

INSTANTIATE_TEST_SUITE_P(BothEngines, RemoteEndToEndTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

}  // namespace
}  // namespace duel::rsp
