// Shared fixtures for the DUEL test suite.

#ifndef DUEL_TESTS_DUEL_TEST_UTIL_H_
#define DUEL_TESTS_DUEL_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

namespace duel {

// A simulated debuggee plus a DUEL session attached to it.
class DuelFixture {
 public:
  explicit DuelFixture(SessionOptions opts = {}) {
    target::InstallStandardFunctions(image_);
    backend_ = std::make_unique<dbg::SimBackend>(image_);
    session_ = std::make_unique<Session>(*backend_, opts);
  }

  target::TargetImage& image() { return image_; }
  dbg::SimBackend& backend() { return *backend_; }
  Session& session() { return *session_; }

  // Runs a query and returns its printed lines; fails the test on error.
  std::vector<std::string> Lines(const std::string& expr) {
    QueryResult r = session_->Query(expr);
    EXPECT_TRUE(r.ok) << "query `" << expr << "` failed: " << r.error;
    return r.lines;
  }

  // Runs a query expected to fail; returns the rendered error.
  std::string Error(const std::string& expr) {
    QueryResult r = session_->Query(expr);
    EXPECT_FALSE(r.ok) << "query `" << expr << "` unexpectedly succeeded";
    return r.error;
  }

  // Convenience: single-line query.
  std::string One(const std::string& expr) {
    std::vector<std::string> lines = Lines(expr);
    EXPECT_EQ(lines.size(), 1u) << "query `" << expr << "`";
    return lines.empty() ? std::string() : lines[0];
  }

 private:
  target::TargetImage image_;
  std::unique_ptr<dbg::SimBackend> backend_;
  std::unique_ptr<Session> session_;
};

inline SessionOptions CoroOptions() {
  SessionOptions o;
  o.engine = EngineKind::kCoroutine;
  return o;
}

}  // namespace duel

#endif  // DUEL_TESTS_DUEL_TEST_UTIL_H_
