// The conventional-debugger baseline: evaluates C, rejects DUEL operators,
// and agrees with DUEL on the paper's motivating queries (experiment E6's
// correctness half).

#include "src/baseline/baseline.h"

#include <gtest/gtest.h>

#include "src/duel/parser.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : ctx_(fx_.backend(), EvalOptions()) {}

  std::string Run(const std::string& src) {
    return baseline::RunBaselineQuery(fx_.backend(), ctx_, src);
  }

  DuelFixture fx_;
  EvalContext ctx_;
};

TEST_F(BaselineTest, PrintsCExpressions) {
  EXPECT_EQ(Run("1 + (double)3/2"), "2.5");
  EXPECT_EQ(Run("(3+4)*2"), "14");
  EXPECT_EQ(Run("1 << 10"), "1024");
}

TEST_F(BaselineTest, ShortCircuitSemantics) {
  // C's && must not evaluate the right side when the left is false —
  // dereferencing a null pointer here would fault.
  target::ImageBuilder b(fx_.image());
  target::TypeRef t = b.Struct("T").Field("v", b.Int()).Build();
  target::Addr p = b.Global("p", b.Ptr(t));
  b.PokePtr(p, 0);
  EXPECT_EQ(Run("p != 0 && p->v > 0"), "0");
  EXPECT_EQ(Run("p == 0 || p->v > 0"), "1");
}

TEST_F(BaselineTest, StatementsAndLoops) {
  scenarios::BuildIntArray(fx_.image(), "x", {3, -1, 4, -5, 9});
  EXPECT_EQ(Run("int i, total; total = 0;"
                "for (i = 0; i < 5; i++) if (x[i] > 0) total = total + x[i]; total"),
            "16");
}

TEST_F(BaselineTest, PaperIntroListDuplicateProgram) {
  // The Introduction's C code (with its bug fixed: q starts at p->next).
  scenarios::BuildList(fx_.image(), "L", {11, 27, 33, 27, 8});
  Run("List *p, *q;"
      "for (p = L; p; p = p->next)"
      "  for (q = p->next; q; q = q->next)"
      "    if (p->value == q->value)"
      "      printf(\"dup %d\\n\", p->value);");
  EXPECT_EQ(fx_.image().TakeOutput(), "dup 27\n");
}

TEST_F(BaselineTest, HashScanProgramMatchesDuelOneLiner) {
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[42] = {{"deep", 7}};
  chains[529] = {{"deeper", 8}};
  chains[7] = {{"shallow", 2}};
  scenarios::BuildSymtab(fx_.image(), chains, 1024);

  Run("int i;"
      "for (i = 0; i < 1024; i++)"
      "  if (hash[i] != 0)"
      "    if (hash[i]->scope > 5)"
      "      printf(\"hash[%d]->scope = %d\\n\", i, hash[i]->scope);");
  std::string baseline_out = fx_.image().TakeOutput();
  EXPECT_EQ(baseline_out, "hash[42]->scope = 7\nhash[529]->scope = 8\n");

  // The DUEL one-liner finds the same elements.
  std::vector<std::string> duel_lines = fx_.Lines("(hash[..1024] !=? 0)->scope >? 5");
  ASSERT_EQ(duel_lines.size(), 2u);
  EXPECT_EQ(duel_lines[0] + "\n" + duel_lines[1] + "\n", baseline_out);
}

TEST_F(BaselineTest, RejectsDuelOperators) {
  scenarios::BuildIntArray(fx_.image(), "x", {1, 2, 3});
  EXPECT_THROW(Run("x[0..2]"), DuelError);
  EXPECT_THROW(Run("x[0] >? 0"), DuelError);
  EXPECT_THROW(Run("#/x"), DuelError);
  EXPECT_THROW(Run("x := 1"), DuelError);
}

TEST_F(BaselineTest, DeclarationsAndTypedefPredicate) {
  fx_.image().types().DefineTypedef("myint", fx_.image().types().Int());
  EXPECT_EQ(Run("myint v; v = 41; v + 1"), "42");
}

TEST_F(BaselineTest, MemberAccessBothForms) {
  scenarios::BuildList(fx_.image(), "L", {7});
  EXPECT_EQ(Run("L->value"), "7");
  EXPECT_EQ(Run("(*L).value"), "7");
}

TEST_F(BaselineTest, CommaIsSequencingNotAlternation) {
  EXPECT_EQ(Run("int i; (i = 3, i + 1)"), "4");
}

}  // namespace
}  // namespace duel
