// The execution substrate: stepping a target program, DUEL-conditioned
// breakpoints, watchpoints on DUEL expressions (the paper's Discussion
// facilities).

#include "src/exec/debugger.h"

#include <gtest/gtest.h>

#include "src/exec/program.h"
#include "tests/duel_test_util.h"

namespace duel::exec {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() {
    scenarios::BuildIntArray(fx_.image(), "x", std::vector<int32_t>(10, 0));
  }

  Debugger MakeDebugger(const std::vector<std::string>& lines) {
    programs_.push_back(
        std::make_unique<TargetProgram>(TargetProgram::Parse(lines, fx_.image())));
    return Debugger(fx_.image(), fx_.backend(), *programs_.back());
  }

  DuelFixture fx_;
  std::vector<std::unique_ptr<TargetProgram>> programs_;
};

TEST_F(ExecTest, StepsThroughAProgram) {
  Debugger dbg = MakeDebugger({
      "int i;",
      "i = 0;",
      "for (i = 0; i < 10; i++) x[i] = i * i;",
  });
  EXPECT_EQ(dbg.Step().reason, StopReason::kStep);
  EXPECT_EQ(dbg.Step().reason, StopReason::kStep);
  EXPECT_EQ(dbg.Step().reason, StopReason::kStep);
  EXPECT_EQ(dbg.Step().reason, StopReason::kFinished);
  EXPECT_EQ(dbg.duel().Query("+/x[..10]").lines[0], "285");
}

TEST_F(ExecTest, CommentAndBlankLinesAreNoOps) {
  Debugger dbg = MakeDebugger({
      "## set things up",
      "",
      "x[0] = 42;",
  });
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kFinished);
  EXPECT_EQ(dbg.duel().Query("{x[0]}").lines[0], "42");
}

TEST_F(ExecTest, UnconditionalBreakpoint) {
  Debugger dbg = MakeDebugger({
      "x[0] = 1;",
      "x[1] = 2;",
      "x[2] = 3;",
  });
  dbg.AddBreakpoint(1);
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kBreakpoint);
  EXPECT_EQ(s.line, 1u);
  // At the stop: line 1 not yet executed.
  EXPECT_EQ(dbg.duel().Query("{x[1]}").lines[0], "0");
  s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kFinished);
  EXPECT_EQ(dbg.duel().Query("{x[1]}").lines[0], "2");
  EXPECT_EQ(dbg.BreakpointHits(0), 1u);
}

TEST_F(ExecTest, ConditionalBreakpointWithGeneratorOneLiner) {
  // Stop in the loop only when some element of x became negative.
  Debugger dbg = MakeDebugger({
      "int i;",
      "for (i = 0; i < 5; i++) x[i] = 5 - i;",
      "x[7] = 0 - 3;",   // the bug
      "x[8] = 1;",
  });
  dbg.AddBreakpoint(2, "x[..10] <? 0");  // any negative element?
  dbg.AddBreakpoint(3, "x[..10] <? 0");
  StopInfo s = dbg.Continue();
  // Line 2's breakpoint doesn't fire (no negatives yet)...
  EXPECT_EQ(s.reason, StopReason::kBreakpoint);
  EXPECT_EQ(s.line, 3u);  // ...but line 3's does, after the bug ran.
  EXPECT_EQ(dbg.duel().Query("x[..10] <? 0").lines[0], "x[7] = -3");
  EXPECT_EQ(dbg.BreakpointHits(0), 0u);
  EXPECT_EQ(dbg.BreakpointHits(1), 1u);
}

TEST_F(ExecTest, WatchpointFiresOnScalarChange) {
  Debugger dbg = MakeDebugger({
      "x[3] = 0;",
      "x[4] = 9;",
      "x[3] = 7;",
      "x[5] = 1;",
  });
  dbg.AddWatchpoint("x[3]");
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kWatchpoint);
  EXPECT_EQ(s.line, 2u);  // the statement that changed x[3]
  EXPECT_NE(s.detail.find("x[3]"), std::string::npos) << s.detail;
  EXPECT_EQ(dbg.Continue().reason, StopReason::kFinished);
  EXPECT_EQ(dbg.WatchpointFires(0), 1u);
}

TEST_F(ExecTest, WatchpointOnASequence) {
  // Watch the *set of positive elements*: a DUEL query, not an address.
  Debugger dbg = MakeDebugger({
      "x[1] = 0;",   // no change in the watched sequence
      "x[2] = 5;",   // adds a positive element -> fires
      "x[2] = 6;",   // changes it -> fires
  });
  dbg.AddWatchpoint("x[..10] >? 0");
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kWatchpoint);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("0 -> 1 values"), std::string::npos) << s.detail;
  s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kWatchpoint);
  EXPECT_EQ(s.line, 2u);
  EXPECT_EQ(dbg.Continue().reason, StopReason::kFinished);
}

TEST_F(ExecTest, WatchpointOnListStructure) {
  scenarios::BuildList(fx_.image(), "L", {1, 2, 3});
  Debugger dbg = MakeDebugger({
      "x[0] = 1;",
      "L->next->value = 99;",
  });
  dbg.AddWatchpoint("L-->next->value");
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kWatchpoint);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("99"), std::string::npos) << s.detail;
}

TEST_F(ExecTest, ProgramFaultStopsWithReport) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef t = b.Struct("T").Field("v", b.Int()).Build();
  target::Addr p = b.Global("p", b.Ptr(t));
  b.PokePtr(p, 0);
  Debugger dbg = MakeDebugger({
      "x[0] = 1;",
      "p->v = 5;",  // null deref
  });
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kError);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("line 2"), std::string::npos) << s.detail;
}

TEST_F(ExecTest, RewindReRunsAgainstCurrentMemory) {
  Debugger dbg = MakeDebugger({"x[0] = x[0] + 1;"});
  EXPECT_EQ(dbg.Continue().reason, StopReason::kFinished);
  dbg.Rewind();
  EXPECT_EQ(dbg.Continue().reason, StopReason::kFinished);
  EXPECT_EQ(dbg.duel().Query("{x[0]}").lines[0], "2");
}

TEST_F(ExecTest, GuardEvalsAreCounted) {
  Debugger dbg = MakeDebugger({
      "x[0] = 1;",
      "x[1] = 2;",
  });
  dbg.AddWatchpoint("+/x[..10]");
  dbg.AddBreakpoint(1, "0");  // never fires, but evaluates
  while (dbg.Continue().reason != StopReason::kFinished) {
  }
  EXPECT_GE(dbg.guard_evals(), 3u);  // 2 watchpoint evals + 1 condition
}

TEST_F(ExecTest, AddressWatchFiresOnByteChange) {
  target::Addr x = fx_.image().symbols().FindVariable("x")->addr;
  Debugger dbg = MakeDebugger({
      "x[1] = 5;",
      "x[2] = 7;",   // watched
      "x[3] = 9;",
  });
  dbg.AddAddressWatch(x + 8, 4);  // &x[2]
  StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, StopReason::kWatchpoint);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("address watch"), std::string::npos) << s.detail;
  EXPECT_EQ(dbg.Continue().reason, StopReason::kFinished);
  EXPECT_EQ(dbg.AddressWatchFires(0), 1u);
}

TEST_F(ExecTest, DisplaysRenderAtStops) {
  Debugger dbg = MakeDebugger({
      "x[0] = 5;",
      "x[0] = 6;",
  });
  dbg.AddDisplay("x[0]");
  dbg.AddDisplay("+/x[..10]");
  dbg.AddDisplay("nosuchvar");
  dbg.Step();
  std::vector<std::string> lines = dbg.RenderDisplays();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "0: x[0] = x[0] = 5");
  EXPECT_EQ(lines[1], "1: +/x[..10] = 5");
  EXPECT_NE(lines[2].find("unknown name"), std::string::npos) << lines[2];
}

TEST_F(ExecTest, ParseErrorsNameTheLine) {
  try {
    TargetProgram::Parse({"x[0] = 1;", "x[1] = ;"}, fx_.image());
    FAIL() << "expected a parse error";
  } catch (const DuelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST_F(ExecTest, BreakpointLineOutOfRange) {
  Debugger dbg = MakeDebugger({"x[0] = 1;"});
  EXPECT_THROW(dbg.AddBreakpoint(5), DuelError);
}

}  // namespace
}  // namespace duel::exec
