// The symbolic-value representation: precedence-aware composition, ->member
// chain tracking, -->member[[n]] compression, select rewriting.

#include <gtest/gtest.h>

#include "src/duel/value.h"

namespace duel {
namespace {

TEST(SymTest, PlainAndEmpty) {
  Sym s = Sym::Plain("x");
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.Text(), "x");
  EXPECT_TRUE(Sym::None().empty());
  EXPECT_EQ(Sym::None().Text(), "");
}

TEST(SymTest, BinaryComposition) {
  Sym a = Sym::Plain("a");
  Sym b = Sym::Plain("b");
  Sym sum = ComposeBinary(a, "+", b, kPrecAdd);
  EXPECT_EQ(sum.Text(), "a+b");
  // A looser operand on the tight side gets parenthesized.
  Sym prod = ComposeBinary(sum, "*", b, kPrecMul);
  EXPECT_EQ(prod.Text(), "(a+b)*b");
  // Left-associativity: same precedence on the left needs no parens.
  Sym chain = ComposeBinary(sum, "+", b, kPrecAdd);
  EXPECT_EQ(chain.Text(), "a+b+b");
  // ...but on the right it does.
  Sym right = ComposeBinary(b, "-", sum, kPrecAdd);
  EXPECT_EQ(right.Text(), "b-(a+b)");
}

TEST(SymTest, UnaryAndIndexComposition) {
  Sym x = Sym::Plain("x");
  EXPECT_EQ(ComposeUnary("-", x).Text(), "-x");
  Sym sum = ComposeBinary(x, "+", x, kPrecAdd);
  EXPECT_EQ(ComposeUnary("*", sum).Text(), "*(x+x)");
  EXPECT_EQ(ComposeIndex(x, Sym::Plain("3")).Text(), "x[3]");
  EXPECT_EQ(ComposeIndex(sum, Sym::Plain("3")).Text(), "(x+x)[3]");
}

TEST(SymTest, ArrowChainsExpandThenCompress) {
  Sym s = Sym::Plain("L");
  for (int i = 1; i <= 3; ++i) {
    s = s.WithMember("next", /*arrow=*/true);
  }
  EXPECT_EQ(s.Text(), "L->next->next->next");
  s = s.WithMember("next", true);
  EXPECT_EQ(s.Text(), "L-->next[[4]]");  // threshold = 4
  s = s.WithMember("next", true);
  EXPECT_EQ(s.Text(), "L-->next[[5]]");
}

TEST(SymTest, ChainBreaksOnDifferentMember) {
  Sym s = Sym::Plain("root");
  s = s.WithMember("left", true);
  s = s.WithMember("left", true);
  s = s.WithMember("right", true);
  EXPECT_EQ(s.Text(), "root->left->left->right");
  // After the break, the suffix keeps growing without compressing.
  for (int i = 0; i < 5; ++i) {
    s = s.WithMember("right", true);
  }
  EXPECT_EQ(s.Text(), "root->left->left->right->right->right->right->right->right");
}

TEST(SymTest, SuffixAfterChainStillCompresses) {
  Sym s = Sym::Plain("hash[287]");
  for (int i = 0; i < 8; ++i) {
    s = s.WithMember("next", true);
  }
  s = s.WithMember("scope", true);
  EXPECT_EQ(s.Text(), "hash[287]-->next[[8]]->scope");
}

TEST(SymTest, DotDoesNotChain) {
  Sym s = Sym::Plain("a");
  s = s.WithMember("b", /*arrow=*/false);
  s = s.WithMember("b", false);
  EXPECT_EQ(s.Text(), "a.b.b");
}

TEST(SymTest, SelectedAtRewritesChains) {
  Sym s = Sym::Plain("head");
  for (int i = 0; i < 3; ++i) {
    s = s.WithMember("next", true);
  }
  s = s.WithMember("value", true);
  EXPECT_EQ(s.Text(), "head->next->next->next->value");
  EXPECT_EQ(s.SelectedAt(3).Text(), "head-->next[[3]]->value");
  // Non-chain syms pass through unchanged.
  Sym plain = Sym::Plain("6*8", kPrecMul);
  EXPECT_EQ(plain.SelectedAt(52).Text(), "6*8");
}

TEST(SymTest, LooseHeadIsParenthesizedWhenChained) {
  Sym cond = Sym::Plain("a?b:c", kPrecCond);
  Sym s = cond.WithMember("next", true);
  EXPECT_EQ(s.Text(), "(a?b:c)->next");
}

}  // namespace
}  // namespace duel
