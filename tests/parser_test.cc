// Parser tests: golden AST dumps in the paper's LISP-like notation, plus
// precedence and error behaviour.

#include "src/duel/parser.h"

#include <gtest/gtest.h>

namespace duel {
namespace {

std::string Dump(const std::string& expr,
                 Parser::TypeNamePredicate is_type = {}) {
  Parser p(expr, std::move(is_type));
  return DumpAst(*p.Parse().root);
}

TEST(ParserTest, PaperAstExample) {
  // The paper: a*5 + *b  =>  (plus (multiply (name "a") (constant 5))
  //                                (indirect (name "b")))
  EXPECT_EQ(Dump("a*5 + *b"),
            "(plus (multiply (name \"a\") (constant 5)) (indirect (name \"b\")))");
}

TEST(ParserTest, RangeBindsBelowAdditive) {
  // "..e is shorthand for 0..e-1" implies e-1 binds tighter than "..".
  EXPECT_EQ(Dump("1..100+i"),
            "(to (constant 1) (plus (constant 100) (name \"i\")))");
  EXPECT_EQ(Dump("..1024"), "(to-prefix (constant 1024))");
  EXPECT_EQ(Dump("5.."), "(to-open (constant 5))");
}

TEST(ParserTest, RangeBindsAboveRelational) {
  EXPECT_EQ(Dump("x[..4] >? 5"),
            "(ifgt (index (name \"x\") (to-prefix (constant 4))) (constant 5))");
}

TEST(ParserTest, AlternationInsideIndex) {
  EXPECT_EQ(Dump("x[1..4,8]"),
            "(index (name \"x\") (alternate (to (constant 1) (constant 4)) (constant 8)))");
}

TEST(ParserTest, FilterChainsLeftAssociative) {
  EXPECT_EQ(Dump("a >? 5 <? 10"),
            "(iflt (ifgt (name \"a\") (constant 5)) (constant 10))");
}

TEST(ParserTest, ImplyDefineSequenceLayering) {
  EXPECT_EQ(Dump("x := a => y := b => y = 0"),
            "(imply (imply (define \"x\" (name \"a\")) (define \"y\" (name \"b\"))) "
            "(assign (name \"y\") (constant 0)))");
  EXPECT_EQ(Dump("i := 1..3; i + 4"),
            "(sequence (define \"i\" (to (constant 1) (constant 3))) "
            "(plus (name \"i\") (constant 4)))");
}

TEST(ParserTest, TrailingSemicolonBecomesDiscard) {
  EXPECT_EQ(Dump("a = 0 ;"), "(discard (assign (name \"a\") (constant 0)))");
}

TEST(ParserTest, WithOperandForms) {
  EXPECT_EQ(Dump("p->name"), "(arrow-with (name \"p\") (name \"name\"))");
  EXPECT_EQ(Dump("s.f"), "(with (name \"s\") (name \"f\"))");
  EXPECT_EQ(Dump("p->(a,b)"),
            "(arrow-with (name \"p\") (alternate (name \"a\") (name \"b\")))");
  EXPECT_EQ(Dump("p->_"), "(arrow-with (name \"p\") (underscore))");
  // Unparenthesized if after -> (from the sortedness example).
  EXPECT_EQ(Dump("p->if (a) b"),
            "(arrow-with (name \"p\") (if (name \"a\") (name \"b\")))");
}

TEST(ParserTest, ExpansionOperators) {
  EXPECT_EQ(Dump("head-->next"), "(dfs (name \"head\") (name \"next\"))");
  EXPECT_EQ(Dump("root-->(left,right)->key"),
            "(arrow-with (dfs (name \"root\") (alternate (name \"left\") (name \"right\"))) "
            "(name \"key\"))");
  EXPECT_EQ(Dump("root-->>next"), "(bfs (name \"root\") (name \"next\"))");
}

TEST(ParserTest, SelectAndNestedBrackets) {
  EXPECT_EQ(Dump("e[[2]]"), "(select (name \"e\") (constant 2))");
  // "]]]" must close an inner select then an index, and vice versa.
  EXPECT_EQ(Dump("x[a[[b]]]"),
            "(index (name \"x\") (select (name \"a\") (name \"b\")))");
  EXPECT_EQ(Dump("x[[a[b]]]"),
            "(select (name \"x\") (index (name \"a\") (name \"b\")))");
}

TEST(ParserTest, UntilAndIndexAlias) {
  EXPECT_EQ(Dump("argv[0..]@0"),
            "(until (index (name \"argv\") (to-open (constant 0))) (constant 0))");
  EXPECT_EQ(Dump("L-->next#i"), "(index-alias \"i\" (dfs (name \"L\") (name \"next\")))");
}

TEST(ParserTest, Reductions) {
  EXPECT_EQ(Dump("#/e"), "(count (name \"e\"))");
  EXPECT_EQ(Dump("+/(1..3)"), "(sum (to (constant 1) (constant 3)))");
  EXPECT_EQ(Dump("&&/x"), "(all (name \"x\"))");
  EXPECT_EQ(Dump("||/x"), "(any (name \"x\"))");
  EXPECT_EQ(Dump("a === b"), "(equality (name \"a\") (name \"b\"))");
}

TEST(ParserTest, ControlExpressions) {
  EXPECT_EQ(Dump("if (a) b else c"), "(if (name \"a\") (name \"b\") (name \"c\"))");
  EXPECT_EQ(Dump("while (a) b"), "(while (name \"a\") (name \"b\"))");
  EXPECT_EQ(Dump("for (i = 0; i < 9; i++) x"),
            "(for (assign (name \"i\") (constant 0)) (lt (name \"i\") (constant 9)) "
            "(postinc (name \"i\")) (name \"x\"))");
}

TEST(ParserTest, IfBindsGreedilyAsOperand) {
  // 4 + if (c) i*5  ==  4 + (if (c) (i*5))
  EXPECT_EQ(Dump("4 + if (c) i*5"),
            "(plus (constant 4) (if (name \"c\") (multiply (name \"i\") (constant 5))))");
}

TEST(ParserTest, CastsAndSizeof) {
  EXPECT_EQ(Dump("(double)3/2"),
            "(divide (cast \"double\" (constant 3)) (constant 2))");
  EXPECT_EQ(Dump("(struct symbol *)p"), "(cast \"struct symbol *\" (name \"p\"))");
  EXPECT_EQ(Dump("sizeof(int)"), "(sizeof-type \"int\")");
  EXPECT_EQ(Dump("sizeof x"), "(sizeof (name \"x\"))");
  EXPECT_EQ(Dump("sizeof(x)"), "(sizeof (name \"x\"))");
}

TEST(ParserTest, TypedefNamesNeedThePredicate) {
  auto is_type = [](const std::string& s) { return s == "List"; };
  EXPECT_EQ(Dump("(List *)p", is_type), "(cast \"List *\" (name \"p\"))");
  // Without the predicate, (List *) p is a parse error (List*p is a product).
  EXPECT_EQ(Dump("List * p"), "(multiply (name \"List\") (name \"p\"))");
}

TEST(ParserTest, Declarations) {
  EXPECT_EQ(Dump("int i; i"),
            "(sequence (decl (int \"i\")) (name \"i\"))");
  EXPECT_EQ(Dump("int i, *p, a[10]; i"),
            "(sequence (decl (int \"i\") (int * \"p\") (int[10] \"a\")) (name \"i\"))");
  EXPECT_EQ(Dump("struct symbol *s; s"),
            "(sequence (decl (struct symbol * \"s\")) (name \"s\"))");
}

TEST(ParserTest, CallsSeparateArgumentsAtImplyLevel) {
  EXPECT_EQ(Dump("f((3,4), 5..7)"),
            "(call (name \"f\") (alternate (constant 3) (constant 4)) "
            "(to (constant 5) (constant 7)))");
}

TEST(ParserTest, BraceDisplayOverride) {
  EXPECT_EQ(Dump("{i}*5"), "(multiply (brace (name \"i\")) (constant 5))");
}

TEST(ParserTest, Ternary) {
  EXPECT_EQ(Dump("a ? b : c"), "(cond (name \"a\") (name \"b\") (name \"c\"))");
}

TEST(ParserTest, Errors) {
  EXPECT_THROW(Dump(""), DuelError);
  EXPECT_THROW(Dump("1 +"), DuelError);
  EXPECT_THROW(Dump("(1"), DuelError);
  EXPECT_THROW(Dump("x["), DuelError);
  EXPECT_THROW(Dump("5 := x"), DuelError);  // := needs a name
  EXPECT_THROW(Dump("x->5"), DuelError);    // bad with-operand
  EXPECT_THROW(Dump("a b"), DuelError);     // trailing junk
}

TEST(ParserTest, DeepNestingIsAnErrorNotACrash) {
  std::string deep(20000, '(');
  deep += "1";
  deep += std::string(20000, ')');
  try {
    Dump(deep);
    FAIL() << "expected a depth error";
  } catch (const DuelError& e) {
    EXPECT_NE(std::string(e.what()).find("nested too deeply"), std::string::npos);
  }
  // Moderate nesting still parses.
  std::string ok(100, '(');
  ok += "1";
  ok += std::string(100, ')');
  EXPECT_EQ(Dump(ok), "(constant 1)");
}

TEST(ParserTest, NodeIdsAreDense) {
  Parser p("1 + 2 * 3");
  ParseResult r = p.Parse();
  EXPECT_EQ(r.num_nodes, 5);
}

}  // namespace
}  // namespace duel
