// Cross-cutting integration coverage: large rvalues through the ByteStore,
// prebind/lazy-symbolic over the remote backend, scenario files driving the
// stepping debugger, deeply composed types.

#include <gtest/gtest.h>

#include "src/exec/debugger.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/transport.h"
#include "src/scenarios/scenario_file.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

TEST(ByteStoreTest, LargeRecordRvaluesSpillToHeap) {
  // A 40-byte struct rvalue exceeds the 16-byte inline buffer.
  DuelFixture fx;
  target::ImageBuilder b(fx.image());
  target::TypeRef wide = b.Struct("wide")
                             .Field("a", b.Arr(b.Int(), 8))
                             .Field("tail", b.Long())
                             .Build();
  ASSERT_EQ(wide->size(), 40u);
  target::Addr src = b.Global("src", wide);
  b.Global("dst", wide);
  for (int i = 0; i < 8; ++i) {
    b.PokeI32(src + i * 4, i + 1);
  }
  b.PokeI64(src + 32, 99);
  // Whole-struct assignment flows the 40-byte rvalue through Value.
  fx.Lines("dst = src ;");
  EXPECT_EQ(fx.One("{dst.tail}"), "99");
  EXPECT_EQ(fx.One("+/(dst.a[..8])"), "36");
  // Member extraction from a record *rvalue* slices the heap buffer.
  EXPECT_EQ(fx.One("{(*&src).tail}"), "99");
}

TEST(ByteStoreTest, ValueCopiesAreIndependent) {
  Sym none = Sym::None();
  std::vector<uint8_t> big(40, 7);
  target::TypeTable tt;
  Value a = Value::RV(tt.ArrayOf(tt.Char(), 40), big.data(), big.size(), none);
  Value b = a;  // copy
  Value c = std::move(a);
  EXPECT_EQ(b.bytes().size(), 40u);
  EXPECT_EQ(c.bytes().size(), 40u);
  EXPECT_EQ(b.bytes()[39], 7);
}

class RemoteFeatureTest : public ::testing::Test {
 protected:
  RemoteFeatureTest()
      : sim_(image_), server_(sim_), transport_(server_), remote_(transport_) {
    target::InstallStandardFunctions(image_);
    scenarios::BuildIntArray(image_, "x", {5, -2, 8, 0});
    scenarios::BuildList(image_, "L", {1, 2, 3});
  }

  target::TargetImage image_;
  dbg::SimBackend sim_;
  rsp::RspServer server_;
  rsp::FramedTransport transport_;
  rsp::RemoteBackend remote_;
};

TEST_F(RemoteFeatureTest, PrebindWorksOverTheWire) {
  SessionOptions opts;
  opts.eval.prebind = true;
  Session session(remote_, opts);
  EXPECT_EQ(session.Query("x[..4] >? 0").lines,
            (std::vector<std::string>{"x[0] = 5", "x[2] = 8"}));
  // The second run should make almost no qVar requests.
  uint64_t before = server_.requests_handled();
  session.Drive("#/(x[..4] >? 0)");
  uint64_t var_queries_possible = server_.requests_handled() - before;
  EXPECT_LT(var_queries_possible, 40u);  // reads dominate; lookup bound once
}

TEST_F(RemoteFeatureTest, LazySymbolicsOverTheWire) {
  SessionOptions opts;
  opts.eval.sym_mode = EvalOptions::SymMode::kLazy;
  Session session(remote_, opts);
  EXPECT_EQ(session.Query("L-->next->value").lines,
            (std::vector<std::string>{"L->value = 1", "L->next->value = 2",
                                      "L->next->next->value = 3"}));
}

TEST(ScenarioExecTest, ScenarioFileProgramsStepTogether) {
  // A scenario file defines the data; a program mutates it; DUEL guards it.
  DuelFixture fx;
  scenarios::LoadScenario(fx.image(), R"(
    struct List { int value; struct List *next; }
    struct List n0 = { 10, &n1 }
    struct List n1 = { 20, &n2 }
    struct List n2 = { 30, 0 }
    struct List *L = &n0
  )");
  exec::TargetProgram program = exec::TargetProgram::Parse(
      {
          "L->next->value = 21;",
          "L->next->next->value = 5;",   // breaks the increasing invariant
      },
      fx.image());
  exec::Debugger dbg(fx.image(), fx.backend(), program);
  dbg.AddAssertion("increasing", "L-->next->(if (next) value < next->value else 1)");
  exec::StopInfo s = dbg.Continue();
  EXPECT_EQ(s.reason, exec::StopReason::kAssertion);
  EXPECT_EQ(s.line, 1u);
  EXPECT_NE(s.detail.find("increasing"), std::string::npos) << s.detail;
}

TEST(DeepTypesTest, ArrayOfArrayOfStruct) {
  DuelFixture fx;
  target::ImageBuilder b(fx.image());
  target::TypeRef cell = b.Struct("cell").Field("v", b.Int()).Build();
  target::Addr grid = b.Global("grid", b.Arr(b.Arr(cell, 3), 2));
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      b.PokeI32(grid + (r * 3 + c) * 4, r * 10 + c);
    }
  }
  EXPECT_EQ(fx.One("{grid[1][2].v}"), "12");
  EXPECT_EQ(fx.One("+/(grid[..2][..3].v)"), "36");
  EXPECT_EQ(fx.One("{sizeof grid}"), "24");
}

TEST(LazyEngineEquivalenceTest, LazyModeIdenticalAcrossEngines) {
  for (EngineKind kind : {EngineKind::kStateMachine, EngineKind::kCoroutine}) {
    SessionOptions opts;
    opts.engine = kind;
    opts.eval.sym_mode = EvalOptions::SymMode::kLazy;
    DuelFixture fx(opts);
    scenarios::BuildList(fx.image(), "L", {11, 22, 33, 44, 27, 55, 66, 77, 88, 27});
    EXPECT_EQ(fx.Lines("L-->next->(value ==? next-->next->value)"),
              (std::vector<std::string>{"L-->next[[4]]->value = 27"}));
    EXPECT_EQ(fx.Lines("L-->next->value[[3,5]]"),
              (std::vector<std::string>{"L-->next[[3]]->value = 44",
                                        "L-->next[[5]]->value = 55"}));
  }
}

}  // namespace
}  // namespace duel
