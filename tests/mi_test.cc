// MI front end: command parsing, structured value records, error records,
// console form, option commands.

#include "src/mi/mi.h"

#include <gtest/gtest.h>

#include "src/scenarios/scenarios.h"

namespace duel::mi {
namespace {

class MiTest : public ::testing::Test {
 protected:
  MiTest() : backend_(image_), mi_(backend_) {
    target::InstallStandardFunctions(image_);
    scenarios::BuildIntArray(image_, "x", {5, -2, 8});
  }

  target::TargetImage image_;
  dbg::SimBackend backend_;
  MiSession mi_;
};

TEST_F(MiTest, EvaluateProducesValueRecords) {
  std::string r = mi_.Handle("-duel-evaluate \"x[..3] >? 0\"");
  EXPECT_EQ(r,
            "^done,values=[{sym=\"x[0]\",value=\"5\"},{sym=\"x[2]\",value=\"8\"}]\n(gdb)\n");
}

TEST_F(MiTest, TokenIsEchoed) {
  std::string r = mi_.Handle("42-duel-evaluate \"1+1\"");
  EXPECT_TRUE(r.rfind("42^done", 0) == 0) << r;
}

TEST_F(MiTest, ErrorRecord) {
  std::string r = mi_.Handle("-duel-evaluate \"nosuch\"");
  EXPECT_TRUE(r.rfind("^error,msg=\"unknown name", 0) == 0) << r;
}

TEST_F(MiTest, QuotingInRecords) {
  std::string r = mi_.Handle("-duel-evaluate \"\\\"a\\\\\\\"b\\\"\"");
  // The value is a char* string containing a quote; it must be MI-escaped.
  EXPECT_NE(r.find("\\\""), std::string::npos) << r;
  EXPECT_TRUE(r.rfind("^done", 0) == 0) << r;
}

TEST_F(MiTest, ConsoleForm) {
  std::string r = mi_.Handle("duel x[..3] >? 0");
  EXPECT_EQ(r, "~\"x[0] = 5\\n\"\n~\"x[2] = 8\\n\"\n^done\n(gdb)\n");
}

TEST_F(MiTest, EngineAndSymbolicOptions) {
  EXPECT_EQ(mi_.Handle("-duel-set-engine coro"), "^done\n(gdb)\n");
  EXPECT_EQ(mi_.Handle("-duel-set-symbolic off"), "^done\n(gdb)\n");
  std::string r = mi_.Handle("-duel-evaluate \"x[..3] >? 0\"");
  EXPECT_EQ(r, "^done,values=[{sym=\"\",value=\"5\"},{sym=\"\",value=\"8\"}]\n(gdb)\n");
  EXPECT_TRUE(mi_.Handle("-duel-set-engine warp").rfind("^error", 0) == 0);
}

TEST_F(MiTest, ClearAliases) {
  mi_.Handle("-duel-evaluate \"v := 5\"");
  std::string r1 = mi_.Handle("-duel-evaluate \"v\"");
  EXPECT_TRUE(r1.rfind("^done", 0) == 0) << r1;
  EXPECT_EQ(mi_.Handle("-duel-clear-aliases"), "^done\n(gdb)\n");
  std::string r2 = mi_.Handle("-duel-evaluate \"v\"");
  EXPECT_TRUE(r2.rfind("^error", 0) == 0) << r2;
}

TEST_F(MiTest, ListFeatures) {
  std::string r = mi_.Handle("-list-features");
  EXPECT_NE(r.find("duel-evaluate"), std::string::npos);
  EXPECT_NE(r.find("duel-plan"), std::string::npos);
  EXPECT_NE(r.find("duel-set-plan-cache"), std::string::npos);
  EXPECT_NE(r.find("duel-check"), std::string::npos);
  EXPECT_NE(r.find("duel-set-warn"), std::string::npos);
}

TEST_F(MiTest, CheckEmitsDiagRecordsWithSpans) {
  std::string r = mi_.Handle("-duel-check \"*x[0]\"");
  EXPECT_EQ(r,
            "^done,diags=[{severity=\"error\",rule=\"deref-non-pointer\","
            "begin=\"0\",end=\"5\",msg=\"'*' needs a pointer operand\"}]\n(gdb)\n");
  EXPECT_EQ(mi_.Handle("-duel-check \"x[..3]\""), "^done,diags=[]\n(gdb)\n");
  // Warnings carry fix-its.
  std::string w = mi_.Handle("-duel-check \"x[7]\"");
  EXPECT_NE(w.find("severity=\"warning\",rule=\"array-bound\""), std::string::npos) << w;
  EXPECT_NE(w.find("fixit=\"valid indices are 0..2\""), std::string::npos) << w;
}

TEST_F(MiTest, SetWarnGatesEvaluation) {
  // Pin enforcement on regardless of the DUEL_CHECK ablation env.
  mi_.session().options().check = true;
  EXPECT_EQ(mi_.Handle("-duel-set-warn error"), "^done\n(gdb)\n");
  std::string r = mi_.Handle("-duel-evaluate \"if (x[0] = 5) 1\"");
  EXPECT_TRUE(r.rfind("^error", 0) == 0) << r;
  EXPECT_EQ(mi_.Handle("-duel-set-warn off"), "^done\n(gdb)\n");
  std::string ok = mi_.Handle("-duel-evaluate \"if (x[0] = 5) 1\"");
  EXPECT_TRUE(ok.rfind("^done", 0) == 0) << ok;
}

TEST_F(MiTest, PlanIntrospection) {
  // Pin the cache on regardless of the DUEL_PLAN_CACHE ablation env.
  mi_.Handle("-duel-set-plan-cache on");
  mi_.Handle("-duel-evaluate \"x[..3] >? 0\"");
  mi_.Handle("-duel-evaluate \"x[..3] >? 0\"");
  std::string r = mi_.Handle("-duel-plan");
  EXPECT_TRUE(r.rfind("^done,plan-cache={", 0) == 0) << r;
  EXPECT_NE(r.find("hits=\"1\""), std::string::npos) << r;
  EXPECT_NE(r.find("misses=\"1\""), std::string::npos) << r;
  EXPECT_NE(r.find("{expr=\"x[..3] >? 0\",hits=\"1\""), std::string::npos) << r;

  EXPECT_EQ(mi_.Handle("-duel-set-plan-cache clear"), "^done\n(gdb)\n");
  std::string cleared = mi_.Handle("-duel-plan");
  EXPECT_NE(cleared.find("size=\"0\""), std::string::npos) << cleared;
  EXPECT_TRUE(mi_.Handle("-duel-set-plan-cache sideways").rfind("^error", 0) == 0);
}

TEST_F(MiTest, PlanCacheOffStopsCaching) {
  mi_.Handle("-duel-set-plan-cache off");
  mi_.Handle("-duel-evaluate \"1+1\"");
  mi_.Handle("-duel-evaluate \"1+1\"");
  std::string r = mi_.Handle("-duel-plan");
  EXPECT_NE(r.find("enabled=\"0\""), std::string::npos) << r;
  EXPECT_NE(r.find("lookups=\"0\""), std::string::npos) << r;
}

TEST_F(MiTest, UndefinedCommands) {
  EXPECT_TRUE(mi_.Handle("-frobnicate").rfind("^error", 0) == 0);
  EXPECT_TRUE(mi_.Handle("print 1").rfind("^error", 0) == 0);
}

TEST_F(MiTest, UnquotedExpressionTolerated) {
  std::string r = mi_.Handle("-duel-evaluate x[0]+1");
  EXPECT_TRUE(r.rfind("^done", 0) == 0) << r;
  EXPECT_NE(r.find("value=\"6\""), std::string::npos) << r;
}

TEST_F(MiTest, TruncationFlagSurfaces) {
  mi_.session().options().max_output_values = 2;
  std::string r = mi_.Handle("-duel-evaluate \"1..100\"");
  EXPECT_NE(r.find("truncated=\"1\""), std::string::npos) << r;
}

TEST_F(MiTest, LazySymbolicOption) {
  EXPECT_EQ(mi_.Handle("-duel-set-symbolic lazy"), "^done\n(gdb)\n");
  std::string r = mi_.Handle("-duel-evaluate \"x[..3] >? 0\"");
  EXPECT_NE(r.find("{sym=\"x[0]\",value=\"5\"}"), std::string::npos) << r;
}

TEST_F(MiTest, MiQuoteEscapes) {
  EXPECT_EQ(MiQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(MiQuote(""), "\"\"");
}

}  // namespace
}  // namespace duel::mi
