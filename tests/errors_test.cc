// Error paths: unknown names, memory faults with symbolic context, type
// errors, division by zero, evaluation fuel, parse diagnostics.

#include <gtest/gtest.h>

#include "tests/duel_test_util.h"

namespace duel {
namespace {

class ErrorsTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  ErrorsTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  DuelFixture fx_;
};

TEST_P(ErrorsTest, UnknownName) {
  std::string err = fx_.Error("nosuchvar + 1");
  EXPECT_NE(err.find("unknown name 'nosuchvar'"), std::string::npos) << err;
}

TEST_P(ErrorsTest, NullPointerMemberAccess) {
  scenarios::BuildSymtab(fx_.image(), {});  // hash full of NULLs
  std::string err = fx_.Error("hash[0]->scope");
  EXPECT_NE(err.find("Illegal memory reference"), std::string::npos) << err;
}

TEST_P(ErrorsTest, MemoryFaultNamesOffendingOperand) {
  target::ImageBuilder b(fx_.image());
  target::TypeRef t = b.Struct("T").Field("val", b.Int()).Build();
  target::Addr p = b.Global("p", b.Ptr(t));
  b.PokePtr(p, 0x16820);  // dangling
  std::string err = fx_.Error("p->val + 1");
  EXPECT_NE(err.find("Illegal memory reference"), std::string::npos) << err;
  EXPECT_NE(err.find("lvalue 0x16820"), std::string::npos) << err;
}

TEST_P(ErrorsTest, DivisionByZero) {
  std::string err = fx_.Error("1/0");
  EXPECT_NE(err.find("division by zero"), std::string::npos) << err;
  err = fx_.Error("5 % (0..2)");
  EXPECT_NE(err.find("modulo by zero"), std::string::npos) << err;
}

TEST_P(ErrorsTest, UnboundedGeneratorHitsFuel) {
  fx_.session().options().eval.max_steps = 10'000;
  std::string err = fx_.Error("#/(1..)");
  EXPECT_NE(err.find("exceeded"), std::string::npos) << err;
}

TEST_P(ErrorsTest, TypeErrors) {
  EXPECT_NE(fx_.Error("*5").find("pointer"), std::string::npos);
  EXPECT_NE(fx_.Error("&5").find("lvalue"), std::string::npos);
  EXPECT_NE(fx_.Error("1.5 % 2").find("invalid operands"), std::string::npos);
  EXPECT_NE(fx_.Error("5 = 1").find("lvalue"), std::string::npos);
}

TEST_P(ErrorsTest, UnderscoreOutsideWith) {
  EXPECT_NE(fx_.Error("_ + 1").find("'_'"), std::string::npos);
}

TEST_P(ErrorsTest, UnknownStructTag) {
  EXPECT_NE(fx_.Error("(struct nothere *)0").find("unknown struct tag"), std::string::npos);
}

TEST_P(ErrorsTest, UnknownFunction) {
  EXPECT_NE(fx_.Error("frobnicate(1)").find("unknown function"), std::string::npos);
}

TEST_P(ErrorsTest, ParseErrorsAreReported) {
  QueryResult r = fx_.session().Query("1 + ");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("syntax error"), std::string::npos) << r.error;
}

TEST_P(ErrorsTest, NoMemberInStruct) {
  scenarios::BuildSymtab(fx_.image(), {{0, {{"a", 1}}}});
  std::string err = fx_.Error("hash[0]->nosuchfield");
  EXPECT_NE(err.find("unknown name"), std::string::npos) << err;
}

TEST_P(ErrorsTest, SessionRecoversAfterError) {
  fx_.Error("nosuch + 1");
  EXPECT_EQ(fx_.One("2+2"), "2+2 = 4");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ErrorsTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                          : "Coroutine";
                         });

}  // namespace
}  // namespace duel
