// Property tests: Engine A (state machine) and Engine B (coroutines) must
// produce identical output for every query — on a hand-picked corpus, on
// seeded randomly-generated expressions, and under algebraic laws.

#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

void BuildRichImage(target::TargetImage& image) {
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  scenarios::BuildList(image, "L", {5, 3, 8, 3, 9});
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
  scenarios::BuildSymtab(image, {{0, {{"a", 4}, {"b", 3}}}, {2, {{"c", 9}}}});
  scenarios::BuildArgv(image, {"prog", "-x"});
}

// One cold run per engine, plus a warm re-run of the same expression in the
// same session — with the plan cache on (the default) the warm run replays
// the cached CompiledQuery, so this doubles as a cache-transparency check.
struct BothRuns {
  QueryResult sm, coro;            // cold
  QueryResult sm_warm, coro_warm;  // cached re-run
};

BothRuns RunBoth(const std::string& expr) {
  BothRuns out;
  {
    SessionOptions opts;
    opts.collect_stats = true;
    DuelFixture fx(opts);
    BuildRichImage(fx.image());
    out.sm = fx.session().Query(expr);
    out.sm_warm = fx.session().Query(expr);
  }
  {
    SessionOptions opts = CoroOptions();
    opts.collect_stats = true;
    DuelFixture fx(opts);
    BuildRichImage(fx.image());
    out.coro = fx.session().Query(expr);
    out.coro_warm = fx.session().Query(expr);
  }
  return out;
}

// Beyond identical output, the two engines must do identical observable work:
// the same counter deltas on the eval side and the same narrow-interface
// traffic on the backend side (stats are collected by RunBoth). The one
// exception is eval_steps — fuel is engine-specific accounting (the state
// machine burns a step per Eval() re-entry, the coroutine engine per pull),
// so traversal operators skew it by a small constant; we bound it loosely
// here and pin it exactly on the generator corpus below.
void ExpectSameCounters(const QueryResult& sm, const QueryResult& coro,
                        const std::string& expr) {
  ASSERT_EQ(sm.stats.has_value(), coro.stats.has_value()) << expr;
  if (!sm.stats.has_value()) {
    return;  // query failed before stats were assembled
  }
  const obs::QueryStats& a = *sm.stats;
  const obs::QueryStats& b = *coro.stats;
  EXPECT_GT(a.eval.eval_steps, 0u) << expr;
  EXPECT_GT(b.eval.eval_steps, 0u) << expr;
  EXPECT_LE(a.eval.eval_steps, 2 * b.eval.eval_steps) << expr;
  EXPECT_LE(b.eval.eval_steps, 2 * a.eval.eval_steps) << expr;
  EXPECT_EQ(a.eval.values_produced, b.eval.values_produced) << expr;
  EXPECT_EQ(a.eval.applies, b.eval.applies) << expr;
  EXPECT_EQ(a.eval.name_lookups, b.eval.name_lookups) << expr;
  EXPECT_EQ(a.eval.symbolic_builds, b.eval.symbolic_builds) << expr;
  EXPECT_EQ(a.backend.read_calls, b.backend.read_calls) << expr;
  EXPECT_EQ(a.backend.bytes_read, b.backend.bytes_read) << expr;
  EXPECT_EQ(a.backend.write_calls, b.backend.write_calls) << expr;
  EXPECT_EQ(a.backend.bytes_written, b.backend.bytes_written) << expr;
  EXPECT_EQ(a.backend.symbol_lookups, b.backend.symbol_lookups) << expr;
  EXPECT_EQ(a.backend.type_lookups, b.backend.type_lookups) << expr;
  EXPECT_EQ(a.backend.target_calls, b.backend.target_calls) << expr;
  for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
    EXPECT_EQ(a.call_counts[i], b.call_counts[i])
        << expr << " narrow call " << obs::NarrowCallName(static_cast<obs::NarrowCall>(i));
  }
}

void ExpectEnginesAgree(const std::string& expr) {
  BothRuns r = RunBoth(expr);
  const QueryResult& sm = r.sm;
  const QueryResult& coro = r.coro;
  EXPECT_EQ(sm.ok, coro.ok) << expr << "\nsm: " << sm.error << "\ncoro: " << coro.error;
  EXPECT_EQ(sm.lines, coro.lines) << expr;
  if (!sm.ok && !coro.ok) {
    // Errors must match down to the failing subexpression's span: both
    // engines attribute a fault through the same Apply* boundary.
    EXPECT_EQ(sm.error, coro.error) << expr;
    EXPECT_EQ(sm.error_span.begin, coro.error_span.begin) << expr;
    EXPECT_EQ(sm.error_span.end, coro.error_span.end) << expr;
  }
  ExpectSameCounters(sm, coro, expr);
  // The warm pass may differ from the cold one for stateful queries
  // (declarations, aliases), but the two engines must still agree line for
  // line — whether the plan was replayed from cache or rebuilt.
  EXPECT_EQ(r.sm_warm.ok, r.coro_warm.ok) << expr << " (warm)";
  EXPECT_EQ(r.sm_warm.lines, r.coro_warm.lines) << expr << " (warm)";
}

class CorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusTest, EnginesAgree) { ExpectEnginesAgree(GetParam()); }

const char* kCorpus[] = {
    "1+2*3",
    "(1..5)*(1..5)",
    "(1,5)..(5,10)",
    "x[..10] >? 0",
    "x[..10] >? 0 <? 5",
    "x[1..4,8] ==? (1..4)",
    "x[..10] == 3",
    "#/x[..10]",
    "+/x[..10]",
    "&&/(x[..10] != 0)",
    "||/(x[..10] ==? 9)",
    "(1..3) === (1..3)",
    "(1..3) === (1,2)",
    "x[..10]#i ==? 3 => {i}",
    "y := x[..10] => if (y < 0) y",
    "x[..10].if (_ < 0) _",
    "L-->next->value",
    "L-->next->value[[1,3]]",
    "L-->next->(value ==? next-->next->value)",
    "root-->(left,right)->key",
    "root-->>(left,right)->key",
    "#/(root-->(left,right)->key)",
    "hash[..3]->(if (_ && scope > 3) name)",
    "hash[0]-->next->scope",
    "argv[0..]@0",
    "i := 1..3 => {i} + 4",
    "i := 1..3; i + 4",
    "int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) {i}*5",
    "int i; i = 0; while (i < 4) (i = i + 1; {i})",
    "(0,2,0,3) && (7,8)",
    "(0,2) || (7,8)",
    "(1..4) ? 10 : 20",
    "((1..9)*(1..9))[[52,74]]",
    "x[0..9]@(-5)",
    "x[0..]@(_ == 9)",
    "sizeof(struct symbol)",
    "(long)x[0] + 1",
    "-x[..5]",
    "!x[..5]",
    "~x[..3]",
    "&x[2]",
    "*&x[2]",
    "x[..3] << 2",
    "x[..3] & 1",
    "x[..3] | 8",
    "x[..3] ^ 5",
    "printf(\"%d;\", 1..3) ;",
    "{x[..4]}",
    "x[(0,2)..(3,4)]",
    "1 ? (1..3) : 5",
    "0 ? (1..3) : (5,6)",
    "(x[..10] >? 0)[[0,2]]",
    "#/(x[..10] >? 0 => L-->next->value)",
};

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusTest, ::testing::ValuesIn(kCorpus));

// On pure generator/filter/reduction pipelines the fuel accounting of the
// two engines coincides exactly (one step per value pulled through each
// operator), so eval_steps must match to the step.
class StepParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StepParityTest, EvalStepsIdentical) {
  BothRuns r = RunBoth(GetParam());
  ASSERT_TRUE(r.sm.ok && r.coro.ok) << GetParam();
  ASSERT_TRUE(r.sm.stats.has_value() && r.coro.stats.has_value());
  EXPECT_EQ(r.sm.stats->eval.eval_steps, r.coro.stats->eval.eval_steps) << GetParam();
  // Step parity must survive a plan-cache replay too: the warm run pulls
  // values through the identical annotated AST.
  ASSERT_TRUE(r.sm_warm.stats.has_value() && r.coro_warm.stats.has_value());
  EXPECT_EQ(r.sm_warm.stats->eval.eval_steps, r.coro_warm.stats->eval.eval_steps) << GetParam();
  EXPECT_EQ(r.sm.stats->eval.eval_steps, r.sm_warm.stats->eval.eval_steps) << GetParam();
}

const char* kStepParityCorpus[] = {
    "1+2*3",
    "(1..5)*(1..5)",
    "x[..10] >? 0",
    "x[..10] >? 0 <? 5",
    "#/x[..10]",
    "+/x[..10]",
    "x[..10] == 3",
    "-x[..5]",
    "(long)x[0] + 1",
    "x[..3] << 2",
};

INSTANTIATE_TEST_SUITE_P(Generators, StepParityTest, ::testing::ValuesIn(kStepParityCorpus));

// --- seeded random expression generation -------------------------------------

class RandomExprGen {
 public:
  explicit RandomExprGen(uint32_t seed) : state_(seed == 0 ? 1 : seed) {}

  std::string Gen(int depth) {
    if (depth <= 0) {
      return Leaf();
    }
    switch (Next() % 15) {
      case 0:
        return "(" + Gen(depth - 1) + ")+(" + Gen(depth - 1) + ")";
      case 1:
        return "(" + Gen(depth - 1) + ")-(" + Gen(depth - 1) + ")";
      case 2:
        return "(" + Gen(depth - 1) + ")*(" + Gen(depth - 1) + ")";
      case 3:
        return "(" + Gen(depth - 1) + "),(" + Gen(depth - 1) + ")";
      case 4:
        return "(" + Gen(depth - 1) + ")..(" + SmallLeaf(16) + ")";
      case 5:
        return "(" + Gen(depth - 1) + ") >? (" + Gen(depth - 1) + ")";
      case 6:
        return "(" + Gen(depth - 1) + ") ==? (" + Gen(depth - 1) + ")";
      case 7:
        return "#/(" + Gen(depth - 1) + ")";
      case 8:
        return "+/(" + Gen(depth - 1) + ")";
      case 9:
        return "(" + Gen(depth - 1) + ")[[" + SmallLeaf(4) + "]]";
      case 10:
        return "if (" + Gen(depth - 1) + ") (" + Gen(depth - 1) + ") else (" +
               Gen(depth - 1) + ")";
      case 11:
        return "(" + Gen(depth - 1) + ") => (" + Gen(depth - 1) + ")";
      case 12:
        return "(" + Gen(depth - 1) + ")#z" + SmallLeaf(100) + " , z" + SmallLeaf(100);
      case 13:
        return "(" + Gen(depth - 1) + ") ; (" + Gen(depth - 1) + ")";
      default:
        return "(" + Gen(depth - 1) + ") @ (" + SmallLeaf(8) + ")";
    }
  }

 private:
  uint32_t Next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }

  std::string SmallLeaf(uint32_t cap) { return std::to_string(Next() % cap); }

  std::string Leaf() {
    switch (Next() % 5) {
      case 0:
        return std::to_string(Next() % 7);
      case 1:
        return "x[" + std::to_string(Next() % 10) + "]";
      case 2:
        return "x[.." + std::to_string(1 + Next() % 10) + "]";
      case 3:
        return std::to_string(Next() % 3) + ".." + std::to_string(Next() % 5);
      default:
        return "L-->next->value";
    }
  }

  uint32_t state_;
};

class RandomExprTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomExprTest, EnginesAgreeOnGeneratedExpressions) {
  RandomExprGen gen(GetParam());
  for (int i = 0; i < 20; ++i) {
    std::string expr = gen.Gen(3);
    BothRuns r = RunBoth(expr);
    ASSERT_EQ(r.sm.ok, r.coro.ok) << expr << "\nsm: " << r.sm.error << "\ncoro: " << r.coro.error;
    ASSERT_EQ(r.sm.lines, r.coro.lines) << expr;
    ASSERT_EQ(r.sm_warm.lines, r.coro_warm.lines) << expr << " (warm)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprTest, ::testing::Range(1u, 17u));

// --- algebraic laws ------------------------------------------------------------

class LawsTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  LawsTest() : fx_(Options()) { BuildRichImage(fx_.image()); }

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    return o;
  }

  std::string Scalar(const std::string& expr) {
    std::vector<std::string> lines = fx_.Lines(expr);
    EXPECT_EQ(lines.size(), 1u) << expr;
    return lines.empty() ? "" : lines.back().substr(lines.back().rfind(' ') + 1);
  }

  DuelFixture fx_;
};

TEST_P(LawsTest, CountOfAlternationIsAdditive) {
  for (const char* a : {"1..5", "x[..10] >? 0", "L-->next->value"}) {
    for (const char* b : {"2..3", "x[..4]"}) {
      std::string lhs = Scalar(StrPrintf("#/((%s),(%s))", a, b));
      std::string r1 = Scalar(StrPrintf("#/(%s)", a));
      std::string r2 = Scalar(StrPrintf("#/(%s)", b));
      EXPECT_EQ(std::stoll(lhs), std::stoll(r1) + std::stoll(r2)) << a << " , " << b;
    }
  }
}

TEST_P(LawsTest, SelectWithFullPrefixIsIdentity) {
  for (const char* e : {"1..6", "x[..10]", "L-->next->value"}) {
    std::string count = Scalar(StrPrintf("#/(%s)", e));
    EXPECT_EQ(Scalar(StrPrintf("(%s)[[..%s]] === (%s)", e, count.c_str(), e)), "1") << e;
  }
}

TEST_P(LawsTest, SumSplitsOverAlternation) {
  std::string whole = Scalar("+/(x[..10])");
  std::string left = Scalar("+/(x[..5])");
  std::string right = Scalar("+/(x[5..9])");
  EXPECT_EQ(std::stoll(whole), std::stoll(left) + std::stoll(right));
}

TEST_P(LawsTest, FilterThenCountEqualsCountOfMatches) {
  std::string filtered = Scalar("#/(x[..10] >? 2)");
  std::string summed = Scalar("+/(x[..10] > 2)");  // C comparison yields 1/0
  EXPECT_EQ(filtered, summed);
}

TEST_P(LawsTest, SequenceEqualityIsReflexive) {
  for (const char* e : {"1..9", "x[..10]", "root-->(left,right)->key"}) {
    EXPECT_EQ(Scalar(StrPrintf("(%s) === (%s)", e, e)), "1") << e;
  }
}

TEST_P(LawsTest, LazySymbolicOutputMatchesEager) {
  // The lazy-DAG mode must render exactly what the eager mode prints.
  const char* kQueries[] = {
      "x[..10] >? 0",
      "L-->next->value",
      "L-->next->(value ==? next-->next->value)",
      "root-->(left,right)->key",
      "hash[..3]->(if (_ && scope > 3) name)",
      "((1..9)*(1..9))[[52,74]]",
      "x[..10].if (_ < 0) _",
      "i := 1..3 => {i} + 4",
      "argv[0..]@0",
      "(1,2,5)*4+(10,200)",
  };
  for (const char* q : kQueries) {
    fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOn;
    QueryResult eager = fx_.session().Query(q);
    fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kLazy;
    QueryResult lazy = fx_.session().Query(q);
    EXPECT_EQ(eager.ok, lazy.ok) << q;
    EXPECT_EQ(eager.lines, lazy.lines) << q;
  }
  fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOn;
}

TEST_P(LawsTest, ValuesUnchangedBySymbolicMode) {
  std::vector<std::string> with_sym = fx_.Lines("x[..10] >? 0");
  fx_.session().options().eval.sym_mode = EvalOptions::SymMode::kOff;
  std::vector<std::string> without = fx_.Lines("x[..10] >? 0");
  ASSERT_EQ(with_sym.size(), without.size());
  for (size_t i = 0; i < without.size(); ++i) {
    // Without symbolics, each line is just the value.
    EXPECT_EQ(with_sym[i].substr(with_sym[i].rfind(' ') + 1), without[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, LawsTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                          : "Coroutine";
                         });

}  // namespace
}  // namespace duel
