// Differential testing: on the pure-C (single-valued) expression subset,
// DUEL's generator engines and the conventional-debugger baseline must
// produce the same values — they share the apply layer but take entirely
// different evaluation paths.

#include <gtest/gtest.h>

#include "src/baseline/baseline.h"
#include "src/duel/output.h"
#include "src/duel/parser.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

void BuildImage(target::TargetImage& image) {
  scenarios::BuildIntArray(image, "x", {3, -1, 4, 1, -5, 9, 2, 6});
  scenarios::BuildList(image, "L", {7, 8, 9});
  target::ImageBuilder b(image);
  target::Addr d = b.Global("d", b.Double());
  b.PokeDouble(d, 2.5);
  target::Addr u = b.Global("u", b.UInt());
  b.PokeI32(u, -1);
  target::Addr c = b.Global("c", b.Char());
  b.PokeI8(c, 'q');
}

// Deterministic generator of single-valued C expressions.
class CExprGen {
 public:
  explicit CExprGen(uint32_t seed) : state_(seed == 0 ? 1 : seed) {}

  std::string Gen(int depth) {
    if (depth <= 0) {
      return Leaf();
    }
    switch (Next() % 10) {
      case 0: return "(" + Gen(depth - 1) + " + " + Gen(depth - 1) + ")";
      case 1: return "(" + Gen(depth - 1) + " - " + Gen(depth - 1) + ")";
      case 2: return "(" + Gen(depth - 1) + " * " + Gen(depth - 1) + ")";
      case 3: return "(" + Gen(depth - 1) + " < " + Gen(depth - 1) + ")";
      case 4: return "(" + Gen(depth - 1) + " == " + Gen(depth - 1) + ")";
      case 5: return "(-" + Gen(depth - 1) + ")";
      case 6: return "(~x[" + std::to_string(Next() % 8) + "])";
      case 7: return "(" + Gen(depth - 1) + " & " + Gen(depth - 1) + ")";
      case 8: return "(" + Gen(depth - 1) + " << " + std::to_string(Next() % 4) + ")";
      default:
        return "(" + Gen(depth - 1) + " ? " + Gen(depth - 1) + " : " + Gen(depth - 1) + ")";
    }
  }

 private:
  uint32_t Next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_ >> 8;
  }

  std::string Leaf() {
    switch (Next() % 7) {
      case 0: return std::to_string(Next() % 100);
      case 1: return "x[" + std::to_string(Next() % 8) + "]";
      case 2: return "L->value";
      case 3: return "d";
      case 4: return "u";
      case 5: return "(int)c";
      default: return "L->next->value";
    }
  }

  uint32_t state_;
};

class DifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DifferentialTest, BaselineMatchesBothEngines) {
  DuelFixture sm_fx;
  BuildImage(sm_fx.image());
  DuelFixture coro_fx(CoroOptions());
  BuildImage(coro_fx.image());
  DuelFixture base_fx;
  BuildImage(base_fx.image());
  EvalContext base_ctx(base_fx.backend(), EvalOptions());

  CExprGen gen(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string expr = gen.Gen(3);
    std::string baseline_value;
    bool baseline_ok = true;
    try {
      baseline_value = baseline::RunBaselineQuery(base_fx.backend(), base_ctx, expr);
    } catch (const DuelError&) {
      baseline_ok = false;
    }
    QueryResult sm = sm_fx.session().Query(expr);
    QueryResult coro = coro_fx.session().Query(expr);
    ASSERT_EQ(sm.ok, baseline_ok) << expr << "\n" << sm.error;
    ASSERT_EQ(coro.ok, baseline_ok) << expr << "\n" << coro.error;
    if (!baseline_ok) {
      continue;
    }
    ASSERT_EQ(sm.entries.size(), 1u) << expr;
    EXPECT_EQ(sm.entries[0].value, baseline_value) << expr;
    EXPECT_EQ(coro.entries[0].value, baseline_value) << expr;
    // Cached re-run: replaying the CompiledQuery (plan cache is on by
    // default) must still match the baseline byte for byte.
    QueryResult sm_warm = sm_fx.session().Query(expr);
    QueryResult coro_warm = coro_fx.session().Query(expr);
    ASSERT_TRUE(sm_warm.ok && coro_warm.ok) << expr;
    ASSERT_EQ(sm_warm.entries.size(), 1u) << expr;
    EXPECT_EQ(sm_warm.entries[0].value, baseline_value) << expr << " (warm)";
    EXPECT_EQ(coro_warm.entries[0].value, baseline_value) << expr << " (warm)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(1u, 11u));

}  // namespace
}  // namespace duel
