// Systematic operator matrix: every sequence operator crossed with empty /
// single / multi-valued operands, on both engines, checked against the
// cardinality each operator's semantics dictate. Empty operands are where
// restart bookkeeping breaks, so each query is also driven twice.

#include <gtest/gtest.h>

#include "src/support/strings.h"
#include "tests/duel_test_util.h"

namespace duel {
namespace {

// Operand shapes and their cardinalities. "8..7" is the canonical empty
// generator; truthiness-sensitive ops get shapes with known zero patterns.
struct Shape {
  const char* expr;
  uint64_t count;
  uint64_t truthy;  // number of non-zero values
};

const Shape kShapes[] = {
    {"(8..7)", 0, 0},
    {"5", 1, 1},
    {"0", 1, 0},
    {"(1..3)", 3, 3},
    {"(0,2,0)", 3, 1},
};

class OperatorMatrixTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  OperatorMatrixTest() : fx_(Options()) {}

  SessionOptions Options() {
    SessionOptions o;
    o.engine = GetParam();
    o.eval.sym_mode = EvalOptions::SymMode::kOff;
    return o;
  }

  uint64_t Count(const std::string& expr) {
    uint64_t first = fx_.session().Drive(expr);
    uint64_t second = fx_.session().Drive(expr);  // restart must agree
    EXPECT_EQ(first, second) << expr << " (restart changed the cardinality)";
    return first;
  }

  DuelFixture fx_;
};

TEST_P(OperatorMatrixTest, ArithmeticOpsAreCartesian) {
  for (const char* op : {"+", "-", "*", "&", "|", "^", "<<", "==", "<"}) {
    for (const Shape& a : kShapes) {
      for (const Shape& b : kShapes) {
        std::string expr = StrPrintf("%s %s %s", a.expr, op, b.expr);
        EXPECT_EQ(Count(expr), a.count * b.count) << expr;
      }
    }
  }
}

TEST_P(OperatorMatrixTest, AlternationAdds) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("%s, %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.count + b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, ImplyMultiplies) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("%s => %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.count * b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, SequenceYieldsRightOnly) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("%s ; %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, AndAndYieldsRightPerTruthyLeft) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("%s && %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.truthy * b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, OrOrYieldsLeftTruthyPlusRightPerFalsyLeft) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("%s || %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.truthy + (a.count - a.truthy) * b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, IfWithoutElseFilters) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("if (%s) %s", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.truthy * b.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, IfElseSplitsByTruthiness) {
  for (const Shape& a : kShapes) {
    for (const Shape& b : kShapes) {
      std::string expr = StrPrintf("if (%s) %s else 7", a.expr, b.expr);
      EXPECT_EQ(Count(expr), a.truthy * b.count + (a.count - a.truthy)) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, ReductionsAlwaysYieldExactlyOne) {
  for (const char* red : {"#/", "+/", "&&/", "||/"}) {
    for (const Shape& a : kShapes) {
      std::string expr = std::string(red) + a.expr;
      EXPECT_EQ(Count(expr), 1u) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, SelectBoundsRespected) {
  for (const Shape& a : kShapes) {
    // In-range and out-of-range indices.
    EXPECT_EQ(Count(StrPrintf("%s[[0]]", a.expr)), a.count > 0 ? 1u : 0u) << a.expr;
    EXPECT_EQ(Count(StrPrintf("%s[[9]]", a.expr)), 0u) << a.expr;
    EXPECT_EQ(Count(StrPrintf("%s[[8..7]]", a.expr)), 0u) << a.expr;  // empty indices
  }
}

TEST_P(OperatorMatrixTest, UnaryOpsPreserveCardinality) {
  for (const char* op : {"-", "~", "!", "+"}) {
    for (const Shape& a : kShapes) {
      std::string expr = std::string(op) + a.expr;
      EXPECT_EQ(Count(expr), a.count) << expr;
    }
  }
}

TEST_P(OperatorMatrixTest, ToWithGeneratorBounds) {
  // |a..b| per combination = max(0, b-a+1); totals precomputed.
  EXPECT_EQ(Count("(8..7)..(1..3)"), 0u);
  EXPECT_EQ(Count("(1..3)..(8..7)"), 0u);
  EXPECT_EQ(Count("(1,3)..(2,4)"), 2u + 4u + 0u + 2u);
  EXPECT_EQ(Count("0..(0,1,2)"), 1u + 2u + 3u);
}

TEST_P(OperatorMatrixTest, FiltersNeverExceedCartesian) {
  for (const char* op : {">?", "<?", "==?", "!=?", ">=?", "<=?"}) {
    for (const Shape& a : kShapes) {
      for (const Shape& b : kShapes) {
        std::string expr = StrPrintf("%s %s %s", a.expr, op, b.expr);
        EXPECT_LE(Count(expr), a.count * b.count) << expr;
      }
    }
  }
  // Exact spot values.
  EXPECT_EQ(Count("(1..3) ==? (1..3)"), 3u);
  EXPECT_EQ(Count("(1..3) !=? (1..3)"), 6u);
  EXPECT_EQ(Count("(1..3) <? 3"), 2u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, OperatorMatrixTest,
                         ::testing::Values(EngineKind::kStateMachine, EngineKind::kCoroutine),
                         [](const ::testing::TestParamInfo<EngineKind>& pi) {
                           return pi.param == EngineKind::kStateMachine ? "StateMachine"
                                                                        : "Coroutine";
                         });

}  // namespace
}  // namespace duel
