// Evaluation engine interface.
//
// DUEL's evaluator produces one value per call ("Each call to eval produces
// one of the values"). This repo implements the scheme twice:
//
//  * eval_sm.cc — Engine A, the paper's explicit state machine: per-node
//    state/value slots, resumed by re-entering eval(). This is the faithful
//    reproduction of the Semantics section.
//  * eval_coro.cc — Engine B, C++20 coroutines (the "yield e" pseudo-code,
//    made real). The paper notes "more efficient implementations of
//    generators are possible [14]"; E5 benchmarks the two.
//
// Both run over the same EvalContext and are property-tested to produce
// identical value sequences.

#ifndef DUEL_DUEL_EVAL_H_
#define DUEL_DUEL_EVAL_H_

#include <memory>
#include <optional>

#include "src/duel/ast.h"
#include "src/duel/evalctx.h"
#include "src/duel/value.h"

namespace duel {

class EvalEngine {
 public:
  virtual ~EvalEngine() = default;

  // Prepares evaluation of `root` (which must outlive the run). `num_nodes`
  // is ParseResult::num_nodes, used to size per-node state tables.
  virtual void Start(const Node& root, int num_nodes) = 0;

  // Produces the next value of the root expression, or nullopt when the
  // sequence is exhausted. Throws DuelError on evaluation errors.
  virtual std::optional<Value> Next() = 0;

  virtual const char* name() const = 0;
};

enum class EngineKind {
  kStateMachine,  // Engine A (paper-faithful; the default)
  kCoroutine,     // Engine B
};

std::unique_ptr<EvalEngine> MakeEngine(EngineKind kind, EvalContext& ctx);

}  // namespace duel

#endif  // DUEL_DUEL_EVAL_H_
