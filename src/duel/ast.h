// Abstract syntax trees for DUEL expressions.
//
// Node kinds mirror the paper's abstract operators: generators (to,
// alternate, filters), sequence manipulators (select, until, index-alias,
// reductions), scope operators (with/dfs), control expressions (if/for/
// while), aliases, and all of C's operators. The paper specifies ASTs in a
// LISP-like notation — DumpAst() renders exactly that, and the parser tests
// golden-match it.

#ifndef DUEL_DUEL_AST_H_
#define DUEL_DUEL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/support/error.h"
#include "src/target/ctype.h"

namespace duel {

enum class Op {
  // Primaries.
  kIntConst,
  kFloatConst,
  kCharConst,
  kStringConst,
  kName,
  kUnderscore,  // `_`: the value of the innermost `with`
  kBrace,       // {e}: display override (symbolic becomes the value)

  // DUEL generators and sequence operators.
  kTo,          // e1..e2
  kToOpen,      // e1..      (unbounded)
  kToPrefix,    // ..e       (0..e-1)
  kAlternate,   // e1,e2
  kIfGt,        // e1 >? e2  (filter comparisons)
  kIfLt,
  kIfGe,
  kIfLe,
  kIfEq,
  kIfNe,
  kSeqEq,       // e1 === e2 (sequence equality; the paper's abstract `equality`)
  kImply,       // e1 => e2
  kSequence,    // e1 ; e2
  kDiscard,     // e ;       (evaluate for side effects only)
  kDefine,      // a := e    (text = alias name)
  kWith,        // e1 . e2
  kArrowWith,   // e1 -> e2
  kDfs,         // e1 --> e2
  kBfs,         // e1 -->> e2 (extension)
  kSelect,      // e1[[e2]]  (kids[0] = sequence, kids[1] = indices)
  kCount,       // #/e
  kSum,         // +/e
  kAll,         // &&/e
  kAny,         // ||/e
  kUntil,       // e @ p
  kIndexAlias,  // e # name  (text = alias name)
  kIf,          // if (e1) e2 [else e3]
  kWhile,       // while (e1) e2
  kFor,         // for (e1; e2; e3) e4
  kCall,        // kids[0] = callee, kids[1..] = args
  kCast,        // (type)e
  kSizeofType,  // sizeof(type)
  kSizeofExpr,  // sizeof e
  kDecl,        // int i, *p;  (declares debugger variables as aliases)
  kFrames,      // frames() builtin: generates the active frames (extension)

  // C unary operators.
  kIndex,    // e1[e2]
  kDeref,    // *e
  kAddrOf,   // &e
  kNeg,      // -e
  kPos,      // +e
  kBitNot,   // ~e
  kNot,      // !e
  kPreInc,
  kPreDec,
  kPostInc,
  kPostDec,

  // C binary operators.
  kMul,
  kDiv,
  kMod,
  kAdd,
  kSub,
  kShl,
  kShr,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNe,
  kBitAnd,
  kBitXor,
  kBitOr,
  kAndAnd,
  kOrOr,
  kCond,  // e1 ? e2 : e3

  // Assignments.
  kAssign,
  kMulEq,
  kDivEq,
  kModEq,
  kAddEq,
  kSubEq,
  kShlEq,
  kShrEq,
  kAndEq,
  kXorEq,
  kOrEq,
};

const char* OpName(Op op);

// A syntactic type name, resolved against the debugger's type tables at
// evaluation time (DUEL type-checks during evaluation, not compilation).
struct TypeSpec {
  enum class Base {
    kVoid,
    kBool,
    kChar,
    kSChar,
    kUChar,
    kShort,
    kUShort,
    kInt,
    kUInt,
    kLong,
    kULong,
    kLongLong,
    kULongLong,
    kFloat,
    kDouble,
    kStruct,
    kUnion,
    kEnum,
    kTypedef,
  };

  Base base = Base::kInt;
  std::string tag;               // struct/union/enum tag or typedef name
  int pointer_depth = 0;
  std::vector<size_t> array_dims;

  std::string ToString() const;
};

// One declarator of a DUEL declaration, e.g. the `*p` of `int i, *p;`.
struct DeclItem {
  TypeSpec type;
  std::string name;
};

struct Node {
  Op op;
  SourceRange range;
  int id = -1;  // dense index used by evaluator state tables

  std::vector<std::unique_ptr<Node>> kids;

  // Payloads (used per op; see parser).
  uint64_t int_value = 0;
  bool is_unsigned = false;
  bool is_long = false;
  double float_value = 0;
  std::string text;  // name / string body / alias name
  TypeSpec type_spec;
  std::vector<DeclItem> decls;

  // Compile-time facts (name bindings, folded constants, resolved types)
  // live in the Annotations side table (sema.h), not on the node: the tree
  // stays immutable after parsing so a CompiledQuery can cache it.

  Node(Op o, SourceRange r) : op(o), range(r) {}
};

using NodePtr = std::unique_ptr<Node>;

// Renders the AST in the paper's LISP-like notation, e.g.
//   (plus (multiply (name "a") (constant 5)) (indirect (name "b")))
std::string DumpAst(const Node& n);

}  // namespace duel

#endif  // DUEL_DUEL_AST_H_
