#include "src/duel/check.h"

#include <optional>
#include <set>

#include "src/duel/apply.h"
#include "src/duel/eval_util.h"
#include "src/support/strings.h"

namespace duel {

namespace {

using target::TypeKind;
using target::TypeRef;

bool IsPtrish(const TypeRef& t) {
  return t->kind() == TypeKind::kPointer || t->kind() == TypeKind::kArray;
}

// Pointee for pointers, element type for arrays (the decayed view).
const TypeRef& PointeeOf(const TypeRef& t) { return t->target(); }

// The record a with-scope over `t` exposes members of: a record directly,
// or through one pointer (LookupInScope accepts both for '.' and '->').
TypeRef RecordOf(const TypeRef& t) {
  if (t->IsRecord()) {
    return t;
  }
  if (t->kind() == TypeKind::kPointer && t->target()->IsRecord()) {
    return t->target();
  }
  return nullptr;
}

// Literal integer value of a node, through unary +/- (enough for the
// div-by-zero and array-bound rules; folding proper lives in sema).
std::optional<int64_t> ConstIntOf(const Node& n) {
  switch (n.op) {
    case Op::kIntConst:
    case Op::kCharConst:
      return static_cast<int64_t>(n.int_value);
    case Op::kNeg:
      if (std::optional<int64_t> v = ConstIntOf(*n.kids[0])) {
        return -*v;
      }
      return std::nullopt;
    case Op::kPos:
      return ConstIntOf(*n.kids[0]);
    default:
      return std::nullopt;
  }
}

Op CompoundBase(Op op) {
  switch (op) {
    case Op::kMulEq: return Op::kMul;
    case Op::kDivEq: return Op::kDiv;
    case Op::kModEq: return Op::kMod;
    case Op::kAddEq: return Op::kAdd;
    case Op::kSubEq: return Op::kSub;
    case Op::kShlEq: return Op::kShl;
    case Op::kShrEq: return Op::kShr;
    case Op::kAndEq: return Op::kBitAnd;
    case Op::kXorEq: return Op::kBitXor;
    case Op::kOrEq: return Op::kBitOr;
    default: return op;
  }
}

bool IsArithBinary(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAdd:
    case Op::kSub:
    case Op::kShl:
    case Op::kShr:
    case Op::kBitAnd:
    case Op::kBitXor:
    case Op::kBitOr:
      return true;
    default:
      return false;
  }
}

bool IsComparison(Op op) {
  switch (op) {
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

// What the inference walk knows about one subexpression. `type == nullptr`
// means unknown, and unknown silences every rule that consumes it.
struct Inf {
  TypeRef type;
  enum class Lv { kNo, kYes, kUnknown } lv = Lv::kUnknown;
  bool many = false;          // can yield more than one value
  bool side_effects = false;  // assignment / ++ / -- / target call inside
};

using Lv = Inf::Lv;

// A with-scope as the checker sees it: `known == false` makes the scope
// opaque (frames, aliases, anything dynamic) — every name below resolves to
// unknown, because the scope could bind it at run time.
struct ScopeInfo {
  TypeRef subject;  // null when !known
  bool known = false;
};

class Checker {
 public:
  Checker(EvalContext& ctx, const Annotations* notes, CheckResult& out)
      : ctx_(&ctx), notes_(notes), out_(&out) {}

  void Run(const Node& root) {
    CollectDefined(root);
    out_->has_side_effects = Walk(root).side_effects;
  }

 private:
  // In a conditionally-evaluated subtree (a `?:` arm, an `if` branch, the
  // right side of `&&`/`||`, a loop body, a filter predicate) the runtime may
  // never reach the offending operation, so a "definite" error is only
  // definite if that code runs. Demoting to a warning there keeps the
  // soundness contract: never reject a query the engines would evaluate
  // successfully.
  void Error(const Node& n, const char* rule, std::string message, std::string fixit = "") {
    out_->diags.push_back({conditional_ ? Severity::kWarning : Severity::kError,
                           rule, n.range, std::move(message), std::move(fixit)});
  }
  void Warn(const Node& n, const char* rule, std::string message, std::string fixit = "") {
    out_->diags.push_back(
        {Severity::kWarning, rule, n.range, std::move(message), std::move(fixit)});
  }

  // Mirrors sema's CollectDefinedNames: anything the query itself can
  // (re)define resolves dynamically, so the walk treats it as unknown.
  void CollectDefined(const Node& n) {
    if (n.op == Op::kDefine || n.op == Op::kIndexAlias) {
      defined_.insert(n.text);
    }
    if (n.op == Op::kDecl) {
      for (const DeclItem& d : n.decls) {
        defined_.insert(d.name);
      }
    }
    for (const NodePtr& k : n.kids) {
      CollectDefined(*k);
    }
  }

  void NoteName(const std::string& name, bool was_alias) {
    if (noted_.insert(name).second) {
      out_->names.emplace_back(name, was_alias);
    }
  }

  // Name resolution, statically mirroring EvalContext::LookupName: scopes
  // innermost first, then aliases, target variables, functions, enumerators.
  // An opaque scope ends the search with "unknown" — it could bind anything.
  Inf InferName(const Node& n) {
    for (size_t i = scopes_.size(); i-- > 0;) {
      const ScopeInfo& s = scopes_[i];
      if (!s.known) {
        return {};
      }
      if (TypeRef rec = RecordOf(s.subject)) {
        if (const target::Member* m = rec->FindMember(n.text)) {
          Inf r;
          r.type = m->type;
          r.lv = Lv::kYes;
          return r;
        }
      }
      // A known non-record subject exposes no members; resolution continues
      // outward exactly as LookupInScope's nullopt does.
    }
    if (defined_.count(n.text) != 0) {
      return {};  // bound by the query itself, per value
    }
    bool was_alias = ctx_->aliases().Has(n.text);
    NoteName(n.text, was_alias);
    if (was_alias) {
      const Value* a = ctx_->aliases().Find(n.text);
      Inf r;
      r.type = a->type();
      r.lv = a->is_lvalue() ? Lv::kYes : Lv::kNo;
      return r;
    }
    if (auto v = ctx_->backend().GetTargetVariable(n.text)) {
      Inf r;
      r.type = v->type;
      r.lv = Lv::kYes;
      return r;
    }
    if (auto f = ctx_->backend().GetTargetFunction(n.text)) {
      Inf r;
      r.type = f->type;
      r.lv = Lv::kYes;
      return r;
    }
    if (auto e = ctx_->backend().GetTargetEnumerator(n.text)) {
      Inf r;
      r.type = e->type;
      r.lv = Lv::kNo;
      return r;
    }
    Error(n, "unknown-name", "unknown name '" + n.text + "'");
    return {};
  }

  TypeRef ResolveSpec(const Node& n) {
    if (const NodeInfo* info = notes_ == nullptr ? nullptr : notes_->Get(n.id);
        info != nullptr && info->resolved_type != nullptr) {
      return info->resolved_type;
    }
    try {
      return ctx_->ResolveTypeSpec(n.type_spec, n.range);
    } catch (const DuelError& e) {
      Error(n, "unknown-type", e.what());
      return nullptr;
    }
  }

  void WarnAssignInCondition(const Node& cond) {
    if (cond.op == Op::kAssign) {
      Warn(cond, "assign-in-condition",
           "'=' in a condition assigns and tests the stored value",
           "did you mean '=='?");
    }
  }

  // Bound checks for e1[e2] when e1's declared type is an array: literal
  // indices, `[..n]` prefix ranges and `[lo..hi]` ranges past the end.
  void CheckArrayBounds(const Node& n, const TypeRef& array) {
    const size_t count = array->array_count();
    if (count == 0) {
      return;
    }
    const Node& idx = *n.kids[1];
    auto past_end = [&](int64_t i) { return i < 0 || static_cast<uint64_t>(i) >= count; };
    if (std::optional<int64_t> i = ConstIntOf(idx)) {
      if (past_end(*i)) {
        Warn(idx, "array-bound",
             StrPrintf("index %lld is past the end of %s (%zu elements)",
                       static_cast<long long>(*i), array->ToString().c_str(), count),
             StrPrintf("valid indices are 0..%zu", count - 1));
      }
      return;
    }
    if (idx.op == Op::kToPrefix) {
      if (std::optional<int64_t> hi = ConstIntOf(*idx.kids[0]);
          hi.has_value() && *hi > static_cast<int64_t>(count)) {
        Warn(idx, "array-bound",
             StrPrintf("[..%lld] reads %lld elements but %s has %zu",
                       static_cast<long long>(*hi), static_cast<long long>(*hi),
                       array->ToString().c_str(), count),
             StrPrintf("use [..%zu] to cover the whole array", count));
      }
      return;
    }
    if (idx.op == Op::kTo && idx.kids.size() == 2) {
      if (std::optional<int64_t> hi = ConstIntOf(*idx.kids[1]);
          hi.has_value() && past_end(*hi)) {
        Warn(idx, "array-bound",
             StrPrintf("range ends at %lld, past the end of %s (%zu elements)",
                       static_cast<long long>(*hi), array->ToString().c_str(), count),
             StrPrintf("valid indices are 0..%zu", count - 1));
      }
    }
  }

  // The right operand of a product-style operator restarts for every value
  // of the left; a side effect in it runs once per left value.
  void WarnSideEffectReEval(const Node& n, const Inf& left, const Inf& right) {
    if (left.many && right.side_effects) {
      Warn(*n.kids[1], "side-effect-reeval",
           StrPrintf("the right operand of '%s' is re-evaluated for every value of the "
                     "left operand and has side effects",
                     BinOpText(n.op)),
           "hoist the side effect into an alias (name := expr) before the operator");
    }
  }

  // Statically mirrors ApplyBinary's type dispatch for an arithmetic binary
  // op. Returns the result type (null = unknown).
  TypeRef CheckArith(const Node& n, Op op, const Inf& a, const Inf& b) {
    if (a.type == nullptr || b.type == nullptr) {
      return nullptr;
    }
    TypeRef ta = a.type->kind() == TypeKind::kArray
                     ? ctx_->types().PointerTo(PointeeOf(a.type))
                     : a.type;
    TypeRef tb = b.type->kind() == TypeKind::kArray
                     ? ctx_->types().PointerTo(PointeeOf(b.type))
                     : b.type;
    auto invalid = [&]() {
      Error(n, "invalid-operands",
            StrPrintf("invalid operands to '%s' (%s and %s)", BinOpText(op),
                      ta->ToString().c_str(), tb->ToString().c_str()));
      return TypeRef();
    };
    if (ta->kind() == TypeKind::kPointer || tb->kind() == TypeKind::kPointer) {
      if (op == Op::kAdd && ta->kind() == TypeKind::kPointer && tb->IsInteger()) {
        return ta;
      }
      if (op == Op::kAdd && tb->kind() == TypeKind::kPointer && ta->IsInteger()) {
        return tb;
      }
      if (op == Op::kSub && ta->kind() == TypeKind::kPointer && tb->IsInteger()) {
        return ta;
      }
      if (op == Op::kSub && ta->kind() == TypeKind::kPointer &&
          tb->kind() == TypeKind::kPointer) {
        if (ta->target()->size() == 0) {
          return invalid();
        }
        return ctx_->types().Long();
      }
      return invalid();
    }
    if (!ta->IsArithmetic() || !tb->IsArithmetic()) {
      return invalid();
    }
    bool floating = ta->IsFloating() || tb->IsFloating();
    switch (op) {
      case Op::kMod:
      case Op::kShl:
      case Op::kShr:
      case Op::kBitAnd:
      case Op::kBitXor:
      case Op::kBitOr:
        if (floating) {
          return invalid();
        }
        break;
      default:
        break;
    }
    if (op == Op::kDiv || op == Op::kMod) {
      if (std::optional<int64_t> z = ConstIntOf(*n.kids[1]);
          z.has_value() && *z == 0 && !floating) {
        Error(n, "div-by-zero",
              std::string(op == Op::kDiv ? "division" : "modulo") + " by zero");
        return nullptr;
      }
    }
    if (floating) {
      return ctx_->types().Double();
    }
    return ta->size() >= tb->size() ? ta : tb;  // rank approximation
  }

  void CheckComparison(const Node& n, Op op, const Inf& a, const Inf& b) {
    if (a.type == nullptr || b.type == nullptr) {
      return;
    }
    TypeRef ta = a.type->kind() == TypeKind::kArray
                     ? ctx_->types().PointerTo(PointeeOf(a.type))
                     : a.type;
    TypeRef tb = b.type->kind() == TypeKind::kArray
                     ? ctx_->types().PointerTo(PointeeOf(b.type))
                     : b.type;
    if (ta->kind() == TypeKind::kPointer && tb->kind() == TypeKind::kPointer) {
      if (ta->target()->kind() != TypeKind::kVoid &&
          tb->target()->kind() != TypeKind::kVoid && !target::TypeEquals(ta, tb)) {
        Error(n, "ptr-compare-incompatible",
              StrPrintf("incompatible pointer comparison (%s and %s)",
                        ta->ToString().c_str(), tb->ToString().c_str()),
              "cast one operand so both sides point at the same type");
      }
      return;
    }
    if (ta->kind() == TypeKind::kPointer || tb->kind() == TypeKind::kPointer) {
      return;  // pointer vs integer compares addresses at run time
    }
    if (!ta->IsArithmetic() || !tb->IsArithmetic()) {
      Error(n, "invalid-operands",
            StrPrintf("invalid operands to '%s' (%s and %s)", BinOpText(op),
                      ta->ToString().c_str(), tb->ToString().c_str()));
    }
  }

  // Walks a subtree the runtime only reaches conditionally; definite errors
  // found inside demote to warnings (see Error above).
  Inf WalkConditional(const Node& n) {
    bool saved = conditional_;
    conditional_ = true;
    Inf r = Walk(n);
    conditional_ = saved;
    return r;
  }

  Inf Walk(const Node& n) {  // NOLINT(readability-function-size)
    switch (n.op) {
      // --- leaves ----------------------------------------------------------
      case Op::kIntConst: {
        Inf r;
        r.type = n.is_unsigned ? ctx_->types().ULong()
                 : n.is_long   ? ctx_->types().Long()
                               : ctx_->types().Int();
        r.lv = Lv::kNo;
        return r;
      }
      case Op::kCharConst: {
        Inf r;
        r.type = ctx_->types().Char();
        r.lv = Lv::kNo;
        return r;
      }
      case Op::kFloatConst: {
        Inf r;
        r.type = ctx_->types().Double();
        r.lv = Lv::kNo;
        return r;
      }
      case Op::kStringConst: {
        Inf r;
        r.type = ctx_->types().PointerTo(ctx_->types().Char());
        r.lv = Lv::kNo;
        return r;
      }
      case Op::kName:
        return InferName(n);
      case Op::kUnderscore: {
        if (scopes_.empty()) {
          Error(n, "underscore-outside-with",
                "'_' used outside of a with scope ('.', '->', '-->')");
          return {};
        }
        const ScopeInfo& s = scopes_.back();
        Inf r;
        r.type = s.known ? s.subject : nullptr;
        return r;
      }
      case Op::kFrames: {
        Inf r;
        r.many = true;  // one value per active frame
        return r;
      }

      // --- generators ------------------------------------------------------
      case Op::kTo:
      case Op::kToOpen:
      case Op::kToPrefix: {
        Inf se;
        for (const NodePtr& k : n.kids) {
          Inf i = Walk(*k);
          se.side_effects |= i.side_effects;
        }
        Inf r;
        r.type = ctx_->types().Int();
        r.lv = Lv::kNo;
        r.many = true;
        r.side_effects = se.side_effects;
        return r;
      }
      case Op::kAlternate: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        Inf r;
        if (a.type != nullptr && b.type != nullptr && target::TypeEquals(a.type, b.type)) {
          r.type = a.type;
        }
        r.lv = a.lv == b.lv ? a.lv : Lv::kUnknown;
        r.many = true;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kSequence: {
        Inf a = Walk(*n.kids[0]);  // drained for its side effects
        Inf b = Walk(*n.kids[1]);
        Inf r = b;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kImply: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        Inf r = b;
        r.many = a.many || b.many;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kIfGt:
      case Op::kIfLt:
      case Op::kIfGe:
      case Op::kIfLe:
      case Op::kIfEq:
      case Op::kIfNe: {
        Inf a = Walk(*n.kids[0]);
        Inf b = WalkConditional(*n.kids[1]);  // runs only while the left yields
        CheckComparison(n, FilterToComparison(n.op), a, b);
        WarnSideEffectReEval(n, a, b);
        Inf r = a;  // the filter passes its left operand through
        r.many = a.many || b.many;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kSeqEq: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        CheckComparison(n, Op::kEq, a, b);
        Inf r;
        r.type = ctx_->types().Int();
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kDiscard: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.side_effects = a.side_effects;
        return r;
      }
      case Op::kDefine: {
        if (ctx_->backend().GetTargetVariable(n.text).has_value() ||
            ctx_->backend().GetTargetFunction(n.text).has_value()) {
          Warn(n, "alias-shadows-target",
               "alias '" + n.text + "' shadows the target symbol of the same name",
               "pick a different alias name; the target '" + n.text +
                   "' becomes unreachable while the alias exists");
        }
        return Walk(*n.kids[0]);
      }
      case Op::kIndexAlias:
        return Walk(*n.kids[0]);

      // --- scope operators -------------------------------------------------
      case Op::kWith:
      case Op::kArrowWith: {
        Inf a = Walk(*n.kids[0]);
        scopes_.push_back({a.type, a.type != nullptr});
        Inf b = Walk(*n.kids[1]);
        scopes_.pop_back();
        Inf r = b;
        r.many = a.many || b.many;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kDfs:
      case Op::kBfs: {
        Inf a = Walk(*n.kids[0]);
        if (!ctx_->opts().cycle_detect) {
          Warn(n, "unbounded-walk",
               std::string("'") + (n.op == Op::kDfs ? "-->" : "-->>") +
                   "' expansion with cycle detection off may not terminate on cyclic "
                   "structures",
               "turn cycle detection on, or bound the walk with '@' / '[[..n]]'");
        }
        scopes_.push_back({a.type, a.type != nullptr});
        Inf b = Walk(*n.kids[1]);
        scopes_.pop_back();
        Inf r = b;
        r.many = true;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }
      case Op::kUntil: {
        Inf a = Walk(*n.kids[0]);
        if (UntilMatchMode(*n.kids[1])) {
          return a;  // literal: compared against each value, no scope opens
        }
        WarnAssignInCondition(*n.kids[1]);
        scopes_.push_back({a.type, a.type != nullptr});
        Inf p = WalkConditional(*n.kids[1]);  // runs only while the left yields
        scopes_.pop_back();
        Inf r = a;
        r.side_effects = a.side_effects || p.side_effects;
        return r;
      }
      case Op::kSelect: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        Inf r = a;
        r.many = true;
        r.side_effects = a.side_effects || b.side_effects;
        return r;
      }

      // --- reductions ------------------------------------------------------
      case Op::kCount:
      case Op::kAll:
      case Op::kAny: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.type = ctx_->types().Int();
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        return r;
      }
      case Op::kSum: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        return r;
      }

      // --- control ---------------------------------------------------------
      case Op::kIf: {
        WarnAssignInCondition(*n.kids[0]);
        Inf c = Walk(*n.kids[0]);
        Inf t = WalkConditional(*n.kids[1]);
        Inf e = n.kids.size() > 2 ? WalkConditional(*n.kids[2]) : Inf{};
        Inf r;
        if (n.kids.size() > 2 && t.type != nullptr && e.type != nullptr &&
            target::TypeEquals(t.type, e.type)) {
          r.type = t.type;
        }
        r.many = c.many || t.many || e.many;
        r.side_effects = c.side_effects || t.side_effects || e.side_effects;
        return r;
      }
      case Op::kCond: {
        WarnAssignInCondition(*n.kids[0]);
        Inf c = Walk(*n.kids[0]);
        Inf t = WalkConditional(*n.kids[1]);
        Inf e = WalkConditional(*n.kids[2]);
        Inf r;
        if (t.type != nullptr && e.type != nullptr && target::TypeEquals(t.type, e.type)) {
          r.type = t.type;
        }
        r.many = c.many || t.many || e.many;
        r.side_effects = c.side_effects || t.side_effects || e.side_effects;
        return r;
      }
      case Op::kWhile: {
        WarnAssignInCondition(*n.kids[0]);
        Inf c = Walk(*n.kids[0]);
        Inf b = WalkConditional(*n.kids[1]);
        Inf r = b;
        r.many = true;
        r.side_effects = c.side_effects || b.side_effects;
        return r;
      }
      case Op::kFor: {
        Inf i = Walk(*n.kids[0]);
        WarnAssignInCondition(*n.kids[1]);
        Inf c = Walk(*n.kids[1]);
        Inf s = WalkConditional(*n.kids[2]);
        Inf b = WalkConditional(*n.kids[3]);
        Inf r = b;
        r.many = true;
        r.side_effects =
            i.side_effects || c.side_effects || s.side_effects || b.side_effects;
        return r;
      }

      // --- calls, casts, declarations -------------------------------------
      case Op::kCall: {
        const Node& callee = *n.kids[0];
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = true;  // a target call can mutate anything
        for (size_t i = 1; i < n.kids.size(); ++i) {
          Inf a = Walk(*n.kids[i]);
          r.many |= a.many;
        }
        if (callee.op != Op::kName) {
          Error(n, "call-non-function", "only direct calls of named functions are supported");
          return r;
        }
        NoteName(callee.text, ctx_->aliases().Has(callee.text));
        auto fn = ctx_->backend().GetTargetFunction(callee.text);
        if (!fn.has_value()) {
          // Both engines treat a zero-argument `frames()` with no target
          // function of that name as the stack-frame generator builtin.
          if (callee.text == "frames" && n.kids.size() == 1) {
            r.many = true;
            r.side_effects = false;  // reads frames, mutates nothing
            return r;
          }
          Error(callee, "unknown-function", "unknown function '" + callee.text + "'");
          return r;
        }
        if (fn->type != nullptr && fn->type->kind() == TypeKind::kFunction) {
          size_t argc = n.kids.size() - 1;
          size_t want = fn->type->params().size();
          if (!fn->type->variadic() && argc != want) {
            Error(n, "call-arity",
                  StrPrintf("wrong number of arguments to '%s' (expected %zu, got %zu)",
                            callee.text.c_str(), want, argc),
                  "signature: " + fn->type->Declare(callee.text));
          } else if (fn->type->variadic() && argc < want) {
            Error(n, "call-arity",
                  StrPrintf("too few arguments to '%s' (expected at least %zu, got %zu)",
                            callee.text.c_str(), want, argc),
                  "signature: " + fn->type->Declare(callee.text));
          }
          r.type = fn->type->return_type();
        }
        return r;
      }
      case Op::kCast: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.type = ResolveSpec(n);
        r.lv = Lv::kNo;
        r.many = a.many;
        r.side_effects = a.side_effects;
        return r;
      }
      case Op::kSizeofType: {
        ResolveSpec(n);
        Inf r;
        r.type = ctx_->types().ULong();
        r.lv = Lv::kNo;
        return r;
      }
      case Op::kSizeofExpr: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.type = ctx_->types().ULong();
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        return r;
      }
      case Op::kDecl: {
        for (const DeclItem& item : n.decls) {
          if (ctx_->backend().GetTargetVariable(item.name).has_value() ||
              ctx_->backend().GetTargetFunction(item.name).has_value()) {
            Warn(n, "alias-shadows-target",
                 "alias '" + item.name + "' shadows the target symbol of the same name",
                 "pick a different name; the target '" + item.name +
                     "' becomes unreachable while the alias exists");
          }
          try {
            TypeRef t = ctx_->ResolveTypeSpec(item.type, n.range);
            if (t->size() == 0 || !t->complete()) {
              Error(n, "incomplete-type", "cannot declare a variable of incomplete type");
            }
          } catch (const DuelError& e) {
            Error(n, "unknown-type", e.what());
          }
        }
        Inf r;
        r.side_effects = true;  // allocates and aliases
        return r;
      }

      // --- C unary operators ----------------------------------------------
      case Op::kBrace:
        return Walk(*n.kids[0]);
      case Op::kDeref: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kYes;
        r.side_effects = a.side_effects;
        r.many = a.many;
        if (a.type == nullptr) {
          return r;
        }
        if (!IsPtrish(a.type)) {
          Error(n, "deref-non-pointer", "'*' needs a pointer operand");
          return r;
        }
        if (PointeeOf(a.type)->kind() == TypeKind::kVoid) {
          Error(n, "deref-void-pointer", "cannot dereference void *",
                "cast to a concrete pointer type first, e.g. (char *)");
          return r;
        }
        r.type = PointeeOf(a.type);
        return r;
      }
      case Op::kAddrOf: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        r.many = a.many;
        if (a.lv == Lv::kNo) {
          Error(n, "addrof-rvalue", "'&' needs an lvalue");
          return r;
        }
        if (a.type != nullptr) {
          r.type = ctx_->types().PointerTo(a.type);
        }
        return r;
      }
      case Op::kNeg:
      case Op::kPos: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        r.many = a.many;
        if (a.type != nullptr && !a.type->IsArithmetic()) {
          Error(n, "unary-non-arithmetic",
                StrPrintf("unary '%s' needs an arithmetic operand",
                          n.op == Op::kNeg ? "-" : "+"));
          return r;
        }
        r.type = a.type;
        return r;
      }
      case Op::kBitNot: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        r.many = a.many;
        if (a.type != nullptr && !a.type->IsInteger() &&
            a.type->kind() != TypeKind::kEnum) {
          Error(n, "unary-non-integer", "'~' needs an integer operand");
          return r;
        }
        r.type = a.type;
        return r;
      }
      case Op::kNot: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.type = ctx_->types().Int();
        r.lv = Lv::kNo;
        r.side_effects = a.side_effects;
        r.many = a.many;
        return r;
      }
      case Op::kPreInc:
      case Op::kPreDec:
      case Op::kPostInc:
      case Op::kPostDec: {
        Inf a = Walk(*n.kids[0]);
        Inf r;
        r.lv = Lv::kNo;
        r.side_effects = true;
        r.many = a.many;
        r.type = a.type;
        if (a.lv == Lv::kNo) {
          Error(n, "incdec-rvalue", "'++'/'--' need an lvalue");
        }
        return r;
      }
      case Op::kIndex: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        Inf r;
        r.lv = Lv::kYes;
        r.many = a.many || b.many;
        r.side_effects = a.side_effects || b.side_effects;
        if (a.type != nullptr && a.type->kind() == TypeKind::kArray) {
          CheckArrayBounds(n, a.type);
        }
        // C's commutative subscripting: either side may be the pointer.
        const TypeRef& base = a.type != nullptr && IsPtrish(a.type)   ? a.type
                              : b.type != nullptr && IsPtrish(b.type) ? b.type
                                                                      : a.type;
        if (a.type != nullptr && b.type != nullptr && !IsPtrish(a.type) &&
            !IsPtrish(b.type)) {
          TypeRef shown = a.type;
          Error(n, "index-non-pointer",
                "subscript needs an array or pointer, got " + shown->ToString());
          return r;
        }
        if (base != nullptr && IsPtrish(base)) {
          r.type = PointeeOf(base);
        }
        return r;
      }

      // --- assignments -----------------------------------------------------
      case Op::kAssign:
      case Op::kMulEq:
      case Op::kDivEq:
      case Op::kModEq:
      case Op::kAddEq:
      case Op::kSubEq:
      case Op::kShlEq:
      case Op::kShrEq:
      case Op::kAndEq:
      case Op::kXorEq:
      case Op::kOrEq: {
        Inf a = Walk(*n.kids[0]);
        Inf b = Walk(*n.kids[1]);
        if (a.lv == Lv::kNo) {
          Error(n, "assign-to-rvalue", "assignment requires an lvalue");
        } else if (n.op != Op::kAssign) {
          CheckArith(n, CompoundBase(n.op), a, b);
        }
        Inf r;
        r.type = a.type;
        r.lv = Lv::kNo;
        r.many = a.many || b.many;
        r.side_effects = true;
        return r;
      }

      default:
        break;
    }

    if (IsComparison(n.op)) {
      Inf a = Walk(*n.kids[0]);
      Inf b = Walk(*n.kids[1]);
      CheckComparison(n, n.op, a, b);
      WarnSideEffectReEval(n, a, b);
      Inf r;
      r.type = ctx_->types().Int();
      r.lv = Lv::kNo;
      r.many = a.many || b.many;
      r.side_effects = a.side_effects || b.side_effects;
      return r;
    }
    if (IsArithBinary(n.op)) {
      Inf a = Walk(*n.kids[0]);
      Inf b = Walk(*n.kids[1]);
      WarnSideEffectReEval(n, a, b);
      Inf r;
      r.type = CheckArith(n, n.op, a, b);
      r.lv = Lv::kNo;
      r.many = a.many || b.many;
      r.side_effects = a.side_effects || b.side_effects;
      return r;
    }
    if (n.op == Op::kAndAnd || n.op == Op::kOrOr) {
      Inf a = Walk(*n.kids[0]);
      Inf b = WalkConditional(*n.kids[1]);  // short-circuit may skip the right side
      Inf r;
      r.type = ctx_->types().Int();
      r.lv = Lv::kNo;
      r.many = a.many || b.many;
      r.side_effects = a.side_effects || b.side_effects;
      return r;
    }

    // Unhandled shape: walk the kids for their diagnostics, claim nothing.
    Inf r;
    for (const NodePtr& k : n.kids) {
      Inf i = Walk(*k);
      r.side_effects |= i.side_effects;
      r.many |= i.many;
    }
    return r;
  }

  EvalContext* ctx_;
  const Annotations* notes_;
  CheckResult* out_;
  std::set<std::string> defined_;
  std::set<std::string> noted_;
  std::vector<ScopeInfo> scopes_;
  bool conditional_ = false;  // inside a conditionally-evaluated subtree
};

}  // namespace

size_t CheckResult::num_errors() const {
  size_t n = 0;
  for (const Diag& d : diags) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

size_t CheckResult::num_warnings() const { return diags.size() - num_errors(); }

DuelError CheckResult::FirstError() const {
  for (const Diag& d : diags) {
    if (d.severity == Severity::kError) {
      ErrorKind kind = ErrorKind::kType;
      if (d.rule == "unknown-name" || d.rule == "unknown-function" ||
          d.rule == "underscore-outside-with") {
        kind = ErrorKind::kName;
      }
      return DuelError(kind, d.message, d.span);
    }
  }
  return DuelError(ErrorKind::kInternal, "FirstError with no errors");
}

CheckResult CheckQuery(EvalContext& ctx, const Node& root, const Annotations* notes) {
  CheckResult out;
  Checker checker(ctx, notes, out);
  try {
    checker.Run(root);
  } catch (const DuelError&) {
    // The checker is advisory scaffolding around evaluation: an unexpected
    // throw must never take down a query that would have run. Partial
    // diagnostics collected so far are kept.
  }
  return out;
}

}  // namespace duel
