#include "src/duel/diag.h"

namespace duel {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
  }
  return "?";
}

std::string CaretBlock(const std::string& query, SourceRange span) {
  if (span.empty() || span.begin >= query.size()) {
    return "";
  }
  size_t end = span.end < query.size() ? span.end : query.size();
  // Queries are single-line; a span crossing a newline (scenario scripts)
  // is clipped to the line holding its start.
  size_t line_begin = query.rfind('\n', span.begin);
  line_begin = line_begin == std::string::npos ? 0 : line_begin + 1;
  size_t line_end = query.find('\n', span.begin);
  line_end = line_end == std::string::npos ? query.size() : line_end;
  if (end > line_end) {
    end = line_end;
  }
  std::string out = "  " + query.substr(line_begin, line_end - line_begin) + "\n  ";
  out += std::string(span.begin - line_begin, ' ');
  out += '^';
  if (end > span.begin + 1) {
    out += std::string(end - span.begin - 1, '~');
  }
  return out;
}

std::vector<std::string> RenderDiag(const std::string& query, const Diag& d) {
  std::vector<std::string> out;
  out.push_back(std::string(SeverityName(d.severity)) + ": " + d.message + " [" + d.rule + "]");
  std::string caret = CaretBlock(query, d.span);
  if (!caret.empty()) {
    size_t pos = 0;
    while (pos <= caret.size()) {
      size_t nl = caret.find('\n', pos);
      if (nl == std::string::npos) {
        out.push_back(caret.substr(pos));
        break;
      }
      out.push_back(caret.substr(pos, nl - pos));
      pos = nl + 1;
    }
  }
  if (!d.fixit.empty()) {
    out.push_back("  fix-it: " + d.fixit);
  }
  return out;
}

}  // namespace duel
