#include "src/duel/parser.h"

#include "src/duel/lexer.h"
#include "src/support/strings.h"

namespace duel {

namespace {

// Binary operator levels for the generic left-associative chain parser,
// loosest first. The range level (..) sits between relational and shift and
// is handled by ParseRange; unary and postfix levels are handled specially.
struct BinOp {
  Tok tok;
  Op op;
};

const std::vector<std::vector<BinOp>>& BinaryLevels() {
  static const std::vector<std::vector<BinOp>> kLevels = {
      {{Tok::kOrOr, Op::kOrOr}},
      {{Tok::kAndAnd, Op::kAndAnd}},
      {{Tok::kPipe, Op::kBitOr}},
      {{Tok::kCaret, Op::kBitXor}},
      {{Tok::kAmp, Op::kBitAnd}},
      {{Tok::kEq, Op::kEq},
       {Tok::kNe, Op::kNe},
       {Tok::kIfEq, Op::kIfEq},
       {Tok::kIfNe, Op::kIfNe},
       {Tok::kSeqEq, Op::kSeqEq}},
      {{Tok::kLt, Op::kLt},
       {Tok::kGt, Op::kGt},
       {Tok::kLe, Op::kLe},
       {Tok::kGe, Op::kGe},
       {Tok::kIfLt, Op::kIfLt},
       {Tok::kIfGt, Op::kIfGt},
       {Tok::kIfLe, Op::kIfLe},
       {Tok::kIfGe, Op::kIfGe}},
      {{Tok::kShl, Op::kShl}, {Tok::kShr, Op::kShr}},
      {{Tok::kPlus, Op::kAdd}, {Tok::kMinus, Op::kSub}},
      {{Tok::kStar, Op::kMul}, {Tok::kSlash, Op::kDiv}, {Tok::kPercent, Op::kMod}},
  };
  return kLevels;
}

constexpr int kRelationalLevel = 6;
constexpr int kShiftLevel = 7;

// Bottom-up pass growing every node's range over its kids, so an operator
// node spans its whole subexpression (NewNode gives it only the operator
// token). Diagnostics rely on this to underline operands, not just sigils.
void WidenRanges(Node& n) {
  for (const NodePtr& k : n.kids) {
    WidenRanges(*k);
    n.range = Cover(n.range, k->range);
  }
}

}  // namespace

Parser::Parser(std::string_view input, TypeNamePredicate is_type_name)
    : input_(input), is_type_name_(std::move(is_type_name)) {
  tokens_ = Lexer(input).LexAll();
}

Parser::Parser(std::vector<Token> tokens, TypeNamePredicate is_type_name)
    : is_type_name_(std::move(is_type_name)) {
  tokens_ = std::move(tokens);
}

const Token& Parser::Ahead(size_t n) const {
  size_t i = pos_ + n;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

void Parser::Advance() {
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
}

bool Parser::Accept(Tok t) {
  if (At(t)) {
    Advance();
    return true;
  }
  return false;
}

void Parser::Expect(Tok t) {
  if (!Accept(t)) {
    Fail(StrPrintf("expected '%s', got '%s'", TokName(t), TokName(Cur().kind)));
  }
}

void Parser::Fail(const std::string& message) const {
  throw DuelError(ErrorKind::kParse, message, Cur().range);
}

Parser::DepthGuard::DepthGuard(Parser* p) : parser(p) {
  if (++parser->depth_ > kMaxDepth) {
    --parser->depth_;
    parser->Fail("expression nested too deeply");
  }
}

NodePtr Parser::NewNode(Op op, SourceRange range) {
  auto n = std::make_unique<Node>(op, range);
  n->id = next_id_++;
  return n;
}

ParseResult Parser::Parse() {
  NodePtr root = ParseTop();
  if (!At(Tok::kEnd)) {
    Fail(StrPrintf("unexpected '%s'", TokName(Cur().kind)));
  }
  WidenRanges(*root);
  ParseResult r;
  r.root = std::move(root);
  r.num_nodes = next_id_;
  return r;
}

bool Parser::StartsExpr(Tok t) const {
  switch (t) {
    case Tok::kIdent:
    case Tok::kIntLit:
    case Tok::kFloatLit:
    case Tok::kCharLit:
    case Tok::kStringLit:
    case Tok::kUnderscore:
    case Tok::kLParen:
    case Tok::kLBrace:
    case Tok::kKwIf:
    case Tok::kKwWhile:
    case Tok::kKwFor:
    case Tok::kKwSizeof:
    case Tok::kBang:
    case Tok::kTilde:
    case Tok::kPlus:
    case Tok::kMinus:
    case Tok::kStar:
    case Tok::kAmp:
    case Tok::kInc:
    case Tok::kDec:
    case Tok::kCountOf:
    case Tok::kSumOf:
    case Tok::kAllOf:
    case Tok::kAnyOf:
    case Tok::kDotDot:
      return true;
    default:
      return false;
  }
}

bool Parser::AtTypeName() const {
  switch (Cur().kind) {
    case Tok::kKwStruct:
    case Tok::kKwUnion:
    case Tok::kKwEnum:
    case Tok::kKwInt:
    case Tok::kKwChar:
    case Tok::kKwLong:
    case Tok::kKwShort:
    case Tok::kKwUnsigned:
    case Tok::kKwSigned:
    case Tok::kKwFloat:
    case Tok::kKwDouble:
    case Tok::kKwVoid:
      return true;
    case Tok::kIdent:
      return is_type_name_ && is_type_name_(Cur().text);
    default:
      return false;
  }
}

bool Parser::AtDeclStart() const {
  if (!AtTypeName()) {
    return false;
  }
  // A typedef-name is a declaration start only when a declarator shape
  // follows (`foo x`, `foo *x`); bare `foo + 1` is an expression.
  if (Cur().kind == Tok::kIdent) {
    size_t i = 1;
    while (Ahead(i).kind == Tok::kStar) {
      ++i;
    }
    return Ahead(i).kind == Tok::kIdent;
  }
  return true;
}

NodePtr Parser::ParseTop() {
  if (At(Tok::kEnd)) {
    Fail("empty expression");
  }
  return ParseSequence();
}

NodePtr Parser::ParseSequence() {
  NodePtr left = AtDeclStart() ? ParseDecl() : ParseAlternate();
  while (At(Tok::kSemi)) {
    SourceRange r = Cur().range;
    Advance();
    if (AtDeclStart() || StartsExpr(Cur().kind)) {
      NodePtr right = AtDeclStart() ? ParseDecl() : ParseAlternate();
      NodePtr n = NewNode(Op::kSequence, r);
      n->kids.push_back(std::move(left));
      n->kids.push_back(std::move(right));
      left = std::move(n);
    } else {
      // Trailing ';': evaluate for side effects, print nothing.
      NodePtr n = NewNode(Op::kDiscard, r);
      n->kids.push_back(std::move(left));
      left = std::move(n);
      break;
    }
  }
  return left;
}

NodePtr Parser::ParseAlternate() {
  DepthGuard guard(this);
  NodePtr left = ParseImply();
  while (At(Tok::kComma)) {
    SourceRange r = Cur().range;
    Advance();
    NodePtr right = ParseImply();
    NodePtr n = NewNode(Op::kAlternate, r);
    n->kids.push_back(std::move(left));
    n->kids.push_back(std::move(right));
    left = std::move(n);
  }
  return left;
}

NodePtr Parser::ParseImply() {
  NodePtr left = ParseAssign();
  while (At(Tok::kImply)) {
    SourceRange r = Cur().range;
    Advance();
    NodePtr right = ParseAssign();
    NodePtr n = NewNode(Op::kImply, r);
    n->kids.push_back(std::move(left));
    n->kids.push_back(std::move(right));
    left = std::move(n);
  }
  return left;
}

NodePtr Parser::ParseAssign() {
  NodePtr left = ParseTernary();
  Op op;
  switch (Cur().kind) {
    case Tok::kAssign: op = Op::kAssign; break;
    case Tok::kDefine: op = Op::kDefine; break;
    case Tok::kStarEq: op = Op::kMulEq; break;
    case Tok::kSlashEq: op = Op::kDivEq; break;
    case Tok::kPercentEq: op = Op::kModEq; break;
    case Tok::kPlusEq: op = Op::kAddEq; break;
    case Tok::kMinusEq: op = Op::kSubEq; break;
    case Tok::kShlEq: op = Op::kShlEq; break;
    case Tok::kShrEq: op = Op::kShrEq; break;
    case Tok::kAmpEq: op = Op::kAndEq; break;
    case Tok::kCaretEq: op = Op::kXorEq; break;
    case Tok::kPipeEq: op = Op::kOrEq; break;
    default:
      return left;
  }
  SourceRange r = Cur().range;
  Advance();
  NodePtr right = ParseAssign();  // right-associative
  if (op == Op::kDefine) {
    if (left->op != Op::kName) {
      Fail("the left operand of ':=' must be a name");
    }
    NodePtr n = NewNode(Op::kDefine, r);
    n->text = left->text;
    n->range = Cover(left->range, r);  // the name node is dropped; keep its span
    n->kids.push_back(std::move(right));
    return n;
  }
  NodePtr n = NewNode(op, r);
  n->kids.push_back(std::move(left));
  n->kids.push_back(std::move(right));
  return n;
}

NodePtr Parser::ParseTernary() {
  NodePtr cond = ParseBinaryLevel(0);
  if (!At(Tok::kQuestion)) {
    return cond;
  }
  SourceRange r = Cur().range;
  Advance();
  NodePtr t = ParseAssign();
  Expect(Tok::kColon);
  NodePtr f = ParseTernary();
  NodePtr n = NewNode(Op::kCond, r);
  n->kids.push_back(std::move(cond));
  n->kids.push_back(std::move(t));
  n->kids.push_back(std::move(f));
  return n;
}

NodePtr Parser::ParseBinaryLevel(int level) {
  DepthGuard guard(this);
  const auto& levels = BinaryLevels();
  auto parse_operand = [&]() -> NodePtr {
    if (level == kRelationalLevel) {
      return ParseRange();  // the range level sits just below relational
    }
    if (level + 1 == static_cast<int>(levels.size())) {
      // The operand of the tightest binary level is a unary expression —
      // except one step above shift, where operands are ranges.
      return ParseUnary();
    }
    return ParseBinaryLevel(level + 1);
  };
  NodePtr left = parse_operand();
  for (;;) {
    const BinOp* hit = nullptr;
    for (const BinOp& b : levels[level]) {
      if (At(b.tok)) {
        hit = &b;
        break;
      }
    }
    if (hit == nullptr) {
      return left;
    }
    SourceRange r = Cur().range;
    Advance();
    NodePtr right = parse_operand();
    NodePtr n = NewNode(hit->op, r);
    n->kids.push_back(std::move(left));
    n->kids.push_back(std::move(right));
    left = std::move(n);
  }
}

NodePtr Parser::ParseRange() {
  if (At(Tok::kDotDot)) {  // ..e  ==  0 .. e-1
    SourceRange r = Cur().range;
    Advance();
    NodePtr operand = ParseBinaryLevel(kShiftLevel);
    NodePtr n = NewNode(Op::kToPrefix, r);
    n->kids.push_back(std::move(operand));
    return n;
  }
  NodePtr left = ParseBinaryLevel(kShiftLevel);
  if (!At(Tok::kDotDot)) {
    return left;
  }
  SourceRange r = Cur().range;
  Advance();
  if (StartsExpr(Cur().kind)) {
    NodePtr right = ParseBinaryLevel(kShiftLevel);
    NodePtr n = NewNode(Op::kTo, r);
    n->kids.push_back(std::move(left));
    n->kids.push_back(std::move(right));
    return n;
  }
  NodePtr n = NewNode(Op::kToOpen, r);  // e.. : unbounded
  n->kids.push_back(std::move(left));
  return n;
}

NodePtr Parser::ParseUnary() {
  DepthGuard guard(this);
  SourceRange r = Cur().range;
  switch (Cur().kind) {
    case Tok::kBang:
    case Tok::kTilde:
    case Tok::kMinus:
    case Tok::kPlus:
    case Tok::kStar:
    case Tok::kAmp:
    case Tok::kInc:
    case Tok::kDec:
    case Tok::kCountOf:
    case Tok::kSumOf:
    case Tok::kAllOf:
    case Tok::kAnyOf: {
      Op op;
      switch (Cur().kind) {
        case Tok::kBang: op = Op::kNot; break;
        case Tok::kTilde: op = Op::kBitNot; break;
        case Tok::kMinus: op = Op::kNeg; break;
        case Tok::kPlus: op = Op::kPos; break;
        case Tok::kStar: op = Op::kDeref; break;
        case Tok::kAmp: op = Op::kAddrOf; break;
        case Tok::kInc: op = Op::kPreInc; break;
        case Tok::kDec: op = Op::kPreDec; break;
        case Tok::kCountOf: op = Op::kCount; break;
        case Tok::kSumOf: op = Op::kSum; break;
        case Tok::kAllOf: op = Op::kAll; break;
        default: op = Op::kAny; break;
      }
      Advance();
      NodePtr operand = ParseUnary();
      NodePtr n = NewNode(op, r);
      n->kids.push_back(std::move(operand));
      return n;
    }
    case Tok::kKwSizeof: {
      Advance();
      if (At(Tok::kLParen)) {
        // Could be sizeof(type) or sizeof(expr): decide by lookahead.
        size_t save = pos_;
        Advance();
        if (AtTypeName()) {
          TypeSpec spec = ParseCastTypeName();
          Expect(Tok::kRParen);
          NodePtr n = NewNode(Op::kSizeofType, ExtendToPrev(r));
          n->type_spec = std::move(spec);
          return n;
        }
        pos_ = save;
      }
      NodePtr operand = ParseUnary();
      NodePtr n = NewNode(Op::kSizeofExpr, r);
      n->kids.push_back(std::move(operand));
      return n;
    }
    case Tok::kLParen: {
      // Cast if a type-name follows the '('.
      size_t save = pos_;
      Advance();
      if (AtTypeName()) {
        TypeSpec spec = ParseCastTypeName();
        if (At(Tok::kRParen)) {
          Advance();
          NodePtr operand = ParseUnary();
          NodePtr n = NewNode(Op::kCast, r);
          n->type_spec = std::move(spec);
          n->kids.push_back(std::move(operand));
          return n;
        }
      }
      pos_ = save;
      return ParsePostfix();
    }
    default:
      return ParsePostfix();
  }
}

NodePtr Parser::ParsePostfix() {
  NodePtr left = ParsePrimary();
  for (;;) {
    SourceRange r = Cur().range;
    switch (Cur().kind) {
      case Tok::kLBracket: {
        Advance();
        NodePtr idx = ParseAlternate();
        Expect(Tok::kRBracket);
        NodePtr n = NewNode(Op::kIndex, ExtendToPrev(r));
        n->kids.push_back(std::move(left));
        n->kids.push_back(std::move(idx));
        left = std::move(n);
        break;
      }
      case Tok::kLSelect: {
        Advance();
        NodePtr idx = ParseAlternate();
        Expect(Tok::kRBracket);  // ']]' is two ']' tokens (see lexer)
        Expect(Tok::kRBracket);
        NodePtr n = NewNode(Op::kSelect, ExtendToPrev(r));
        n->kids.push_back(std::move(left));
        n->kids.push_back(std::move(idx));
        left = std::move(n);
        break;
      }
      case Tok::kLParen: {
        Advance();
        NodePtr n = NewNode(Op::kCall, r);
        n->kids.push_back(std::move(left));
        if (!At(Tok::kRParen)) {
          do {
            n->kids.push_back(ParseImply());
          } while (Accept(Tok::kComma));
        }
        Expect(Tok::kRParen);
        n->range = ExtendToPrev(r);
        left = std::move(n);
        break;
      }
      case Tok::kDot:
      case Tok::kArrow:
      case Tok::kExpand:
      case Tok::kExpandBfs: {
        Op op = Cur().kind == Tok::kDot      ? Op::kWith
                : Cur().kind == Tok::kArrow  ? Op::kArrowWith
                : Cur().kind == Tok::kExpand ? Op::kDfs
                                             : Op::kBfs;
        Advance();
        NodePtr member = ParseWithOperand();
        NodePtr n = NewNode(op, r);
        n->kids.push_back(std::move(left));
        n->kids.push_back(std::move(member));
        left = std::move(n);
        break;
      }
      case Tok::kAt: {
        Advance();
        // The until-operand is a primary (optionally negated) so that a
        // postfix chain can continue after it: e@(pred)->field.
        NodePtr pred;
        if (At(Tok::kMinus)) {
          SourceRange nr = Cur().range;
          Advance();
          NodePtr operand = ParsePrimary();
          pred = NewNode(Op::kNeg, nr);
          pred->kids.push_back(std::move(operand));
        } else {
          pred = ParsePrimary();
        }
        NodePtr n = NewNode(Op::kUntil, r);
        n->kids.push_back(std::move(left));
        n->kids.push_back(std::move(pred));
        left = std::move(n);
        break;
      }
      case Tok::kHash: {
        Advance();
        if (!At(Tok::kIdent)) {
          Fail("expected an alias name after '#'");
        }
        NodePtr n = NewNode(Op::kIndexAlias, r);
        n->text = Cur().text;
        Advance();
        n->range = ExtendToPrev(r);  // cover the alias name
        n->kids.push_back(std::move(left));
        left = std::move(n);
        break;
      }
      case Tok::kInc:
      case Tok::kDec: {
        Op op = Cur().kind == Tok::kInc ? Op::kPostInc : Op::kPostDec;
        Advance();
        NodePtr n = NewNode(op, r);
        n->kids.push_back(std::move(left));
        left = std::move(n);
        break;
      }
      default:
        return left;
    }
  }
}

NodePtr Parser::ParseWithOperand() {
  SourceRange r = Cur().range;
  switch (Cur().kind) {
    case Tok::kIdent: {
      NodePtr n = NewNode(Op::kName, r);
      n->text = Cur().text;
      Advance();
      return n;
    }
    case Tok::kUnderscore: {
      Advance();
      return NewNode(Op::kUnderscore, r);
    }
    case Tok::kLParen: {
      Advance();
      NodePtr e = ParseSequence();
      Expect(Tok::kRParen);
      return e;
    }
    case Tok::kLBrace: {
      Advance();
      NodePtr e = ParseSequence();
      Expect(Tok::kRBrace);
      NodePtr n = NewNode(Op::kBrace, ExtendToPrev(r));
      n->kids.push_back(std::move(e));
      return n;
    }
    case Tok::kKwIf:
      return ParseIfExpr();
    default:
      Fail("expected a member name, '_', '(...)' or 'if' after '.', '->' or '-->'");
  }
}

NodePtr Parser::ParseIfExpr() {
  SourceRange r = Cur().range;
  Expect(Tok::kKwIf);
  Expect(Tok::kLParen);
  NodePtr cond = ParseSequence();
  Expect(Tok::kRParen);
  NodePtr then = ParseAssign();
  NodePtr n = NewNode(Op::kIf, r);
  n->kids.push_back(std::move(cond));
  n->kids.push_back(std::move(then));
  if (Accept(Tok::kKwElse)) {
    n->kids.push_back(ParseAssign());
  }
  return n;
}

NodePtr Parser::ParsePrimary() {
  DepthGuard guard(this);
  SourceRange r = Cur().range;
  switch (Cur().kind) {
    case Tok::kIntLit: {
      NodePtr n = NewNode(Op::kIntConst, r);
      n->int_value = Cur().int_value;
      n->is_unsigned = Cur().is_unsigned;
      n->is_long = Cur().is_long;
      Advance();
      return n;
    }
    case Tok::kFloatLit: {
      NodePtr n = NewNode(Op::kFloatConst, r);
      n->float_value = Cur().float_value;
      Advance();
      return n;
    }
    case Tok::kCharLit: {
      NodePtr n = NewNode(Op::kCharConst, r);
      n->int_value = Cur().int_value;
      Advance();
      return n;
    }
    case Tok::kStringLit: {
      NodePtr n = NewNode(Op::kStringConst, r);
      n->text = Cur().text;
      Advance();
      return n;
    }
    case Tok::kIdent: {
      NodePtr n = NewNode(Op::kName, r);
      n->text = Cur().text;
      Advance();
      return n;
    }
    case Tok::kUnderscore:
      Advance();
      return NewNode(Op::kUnderscore, r);
    case Tok::kLParen: {
      Advance();
      NodePtr e = ParseSequence();
      Expect(Tok::kRParen);
      return e;
    }
    case Tok::kLBrace: {
      Advance();
      NodePtr e = ParseSequence();
      Expect(Tok::kRBrace);
      NodePtr n = NewNode(Op::kBrace, ExtendToPrev(r));
      n->kids.push_back(std::move(e));
      return n;
    }
    case Tok::kKwIf:
      return ParseIfExpr();
    case Tok::kKwWhile: {
      Advance();
      Expect(Tok::kLParen);
      NodePtr cond = ParseSequence();
      Expect(Tok::kRParen);
      NodePtr body = ParseAssign();
      NodePtr n = NewNode(Op::kWhile, r);
      n->kids.push_back(std::move(cond));
      n->kids.push_back(std::move(body));
      return n;
    }
    case Tok::kKwFor: {
      Advance();
      Expect(Tok::kLParen);
      auto clause = [&](Tok terminator) -> NodePtr {
        if (At(terminator)) {
          // Empty clause: a constant that has no effect (cond: always true).
          NodePtr c = NewNode(Op::kIntConst, Cur().range);
          c->int_value = 1;
          return c;
        }
        return ParseAlternate();
      };
      NodePtr init = clause(Tok::kSemi);
      Expect(Tok::kSemi);
      NodePtr cond = clause(Tok::kSemi);
      Expect(Tok::kSemi);
      NodePtr step = clause(Tok::kRParen);
      Expect(Tok::kRParen);
      NodePtr body = ParseAssign();
      NodePtr n = NewNode(Op::kFor, r);
      n->kids.push_back(std::move(init));
      n->kids.push_back(std::move(cond));
      n->kids.push_back(std::move(step));
      n->kids.push_back(std::move(body));
      return n;
    }
    default:
      Fail(StrPrintf("unexpected '%s'", TokName(Cur().kind)));
  }
}

TypeSpec Parser::ParseTypeSpecBase() {
  TypeSpec spec;
  switch (Cur().kind) {
    case Tok::kKwStruct:
    case Tok::kKwUnion:
    case Tok::kKwEnum: {
      spec.base = Cur().kind == Tok::kKwStruct  ? TypeSpec::Base::kStruct
                  : Cur().kind == Tok::kKwUnion ? TypeSpec::Base::kUnion
                                                : TypeSpec::Base::kEnum;
      Advance();
      if (!At(Tok::kIdent)) {
        Fail("expected a tag name");
      }
      spec.tag = Cur().text;
      Advance();
      return spec;
    }
    case Tok::kIdent:
      spec.base = TypeSpec::Base::kTypedef;
      spec.tag = Cur().text;
      Advance();
      return spec;
    default:
      break;
  }
  // Combinations of: void, char, short, int, long (x2), float, double,
  // signed, unsigned.
  bool is_unsigned = false, is_signed = false, saw_char = false, saw_short = false;
  bool saw_int = false, saw_float = false, saw_double = false, saw_void = false;
  int longs = 0;
  bool any = false;
  for (;;) {
    switch (Cur().kind) {
      case Tok::kKwUnsigned: is_unsigned = true; break;
      case Tok::kKwSigned: is_signed = true; break;
      case Tok::kKwChar: saw_char = true; break;
      case Tok::kKwShort: saw_short = true; break;
      case Tok::kKwInt: saw_int = true; break;
      case Tok::kKwLong: longs++; break;
      case Tok::kKwFloat: saw_float = true; break;
      case Tok::kKwDouble: saw_double = true; break;
      case Tok::kKwVoid: saw_void = true; break;
      default:
        if (!any) {
          Fail("expected a type name");
        }
        goto done;
    }
    any = true;
    Advance();
  }
done:
  (void)is_signed;
  if (saw_void) {
    spec.base = TypeSpec::Base::kVoid;
  } else if (saw_float) {
    spec.base = TypeSpec::Base::kFloat;
  } else if (saw_double) {
    spec.base = TypeSpec::Base::kDouble;
  } else if (saw_char) {
    spec.base = is_unsigned  ? TypeSpec::Base::kUChar
                : is_signed  ? TypeSpec::Base::kSChar
                             : TypeSpec::Base::kChar;
  } else if (saw_short) {
    spec.base = is_unsigned ? TypeSpec::Base::kUShort : TypeSpec::Base::kShort;
  } else if (longs >= 2) {
    spec.base = is_unsigned ? TypeSpec::Base::kULongLong : TypeSpec::Base::kLongLong;
  } else if (longs == 1) {
    spec.base = is_unsigned ? TypeSpec::Base::kULong : TypeSpec::Base::kLong;
  } else {
    (void)saw_int;
    spec.base = is_unsigned ? TypeSpec::Base::kUInt : TypeSpec::Base::kInt;
  }
  return spec;
}

TypeSpec Parser::ParseCastTypeName() {
  TypeSpec spec = ParseTypeSpecBase();
  while (Accept(Tok::kStar)) {
    spec.pointer_depth++;
  }
  return spec;
}

NodePtr Parser::ParseDecl() {
  SourceRange r = Cur().range;
  TypeSpec base = ParseTypeSpecBase();
  NodePtr n = NewNode(Op::kDecl, r);
  do {
    DeclItem item;
    item.type = base;
    while (Accept(Tok::kStar)) {
      item.type.pointer_depth++;
    }
    if (!At(Tok::kIdent)) {
      Fail("expected a declarator name");
    }
    item.name = Cur().text;
    Advance();
    while (At(Tok::kLBracket)) {
      Advance();
      if (!At(Tok::kIntLit)) {
        Fail("expected an array dimension");
      }
      item.type.array_dims.push_back(static_cast<size_t>(Cur().int_value));
      Advance();
      Expect(Tok::kRBracket);
    }
    n->decls.push_back(std::move(item));
  } while (Accept(Tok::kComma));
  n->range = ExtendToPrev(r);
  return n;
}

}  // namespace duel
