// Aliases and the name-resolution stack.
//
// Aliases are created by `a := e` and by DUEL declarations (`int i;`). The
// name-resolution stack holds the scopes opened by `with` (the `.`, `->`,
// `-->` operators): inside `x->(...)`, the fields of *x are visible as
// ordinary identifiers and `_` denotes the with-subject itself.

#ifndef DUEL_DUEL_SCOPE_H_
#define DUEL_DUEL_SCOPE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/duel/value.h"

namespace duel {

class AliasTable {
 public:
  void Set(const std::string& name, Value v) {
    aliases_[name] = std::move(v);
    ++version_;
  }
  const Value* Find(const std::string& name) const {
    auto it = aliases_.find(name);
    return it == aliases_.end() ? nullptr : &it->second;
  }
  bool Has(const std::string& name) const { return aliases_.count(name) != 0; }
  void Remove(const std::string& name) {
    if (aliases_.erase(name) != 0) {
      ++version_;
    }
  }
  void Clear() {
    if (!aliases_.empty()) {
      ++version_;
    }
    aliases_.clear();
  }
  size_t size() const { return aliases_.size(); }
  std::vector<std::string> Names() const;

  // Bumped on every mutation. The plan cache uses this as a fast path: a
  // cached plan whose prebound names could be shadowed by a new alias only
  // needs re-checking when the version moved (see Session::PlanIsValid).
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, Value> aliases_;
  uint64_t version_ = 0;
};

// One scope opened by `with`: the subject value whose members become
// visible. `deref` records whether member access goes through a pointer
// (the `->`/`-->` forms) or directly into a record (the `.` form).
struct WithScope {
  Value subject;
  bool deref = false;
};

class ScopeStack {
 public:
  void Push(WithScope s) { scopes_.push_back(std::move(s)); }
  void Pop() { scopes_.pop_back(); }
  bool empty() const { return scopes_.empty(); }
  size_t size() const { return scopes_.size(); }

  // Innermost first.
  const WithScope& At(size_t i_from_top) const {
    return scopes_[scopes_.size() - 1 - i_from_top];
  }
  const WithScope* Top() const { return scopes_.empty() ? nullptr : &scopes_.back(); }

 private:
  std::vector<WithScope> scopes_;
};

// RAII guard: every suspension of a generator must leave the global
// name-resolution stack exactly as it was at entry, so scope pushes are
// always guarded.
class ScopedWith {
 public:
  ScopedWith(ScopeStack& stack, WithScope s) : stack_(&stack) { stack_->Push(std::move(s)); }
  ~ScopedWith() {
    if (stack_ != nullptr) {
      stack_->Pop();
    }
  }
  ScopedWith(const ScopedWith&) = delete;
  ScopedWith& operator=(const ScopedWith&) = delete;

 private:
  ScopeStack* stack_;
};

}  // namespace duel

#endif  // DUEL_DUEL_SCOPE_H_
