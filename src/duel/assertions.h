// DUEL-language assertions.
//
// Paper, Discussion: "Assertions, for example, make claims about the state
// at various points in a program. Complex assertions, e.g., 'x[0] through
// x[n] are positive,' often need non-trivial code to compute the assertion
// outcome. Annotating programs with assertions written in a Duel-like
// language might simplify making these kinds of assertions and encourage
// their use."
//
// An assertion is a named DUEL expression. It HOLDS when evaluation succeeds
// and every produced value is non-zero (the universal reading: an empty
// sequence holds vacuously — write `#/e != 0` to demand existence). The
// paper's example is simply:   x[..n+1] > 0

#ifndef DUEL_DUEL_ASSERTIONS_H_
#define DUEL_DUEL_ASSERTIONS_H_

#include <string>
#include <vector>

#include "src/duel/session.h"

namespace duel {

struct AssertionOutcome {
  std::string name;
  std::string expr;
  bool holds = false;
  // First few offending "sym = value" lines (falsy values), or the
  // evaluation error.
  std::vector<std::string> failures;
  uint64_t values_checked = 0;
};

// One-off check.
AssertionOutcome CheckAssertion(Session& session, const std::string& name,
                                const std::string& expr, size_t max_failures = 5);

// A named collection of assertions, evaluated together against a session —
// the "annotating programs with assertions" facility.
class AssertionSet {
 public:
  int Add(std::string name, std::string expr);
  size_t size() const { return assertions_.size(); }
  const std::string& name(size_t i) const { return assertions_[i].name; }
  const std::string& expr(size_t i) const { return assertions_[i].expr; }

  AssertionOutcome Check(Session& session, size_t index, size_t max_failures = 5) const;
  std::vector<AssertionOutcome> CheckAll(Session& session, size_t max_failures = 5) const;

  // Renders a human-readable report; `only_failures` drops passing lines.
  static std::string Report(const std::vector<AssertionOutcome>& outcomes,
                            bool only_failures = false);

 private:
  struct Entry {
    std::string name;
    std::string expr;
  };
  std::vector<Entry> assertions_;
};

}  // namespace duel

#endif  // DUEL_DUEL_ASSERTIONS_H_
