#include "src/duel/apply.h"

#include <cstring>
#include <limits>

#include "src/support/strings.h"

namespace duel {

using target::TypeKind;

namespace {

int IntRank(TypeKind k) {
  switch (k) {
    case TypeKind::kBool: return 0;
    case TypeKind::kChar:
    case TypeKind::kSChar:
    case TypeKind::kUChar: return 1;
    case TypeKind::kShort:
    case TypeKind::kUShort: return 2;
    case TypeKind::kInt:
    case TypeKind::kUInt: return 3;
    case TypeKind::kLong:
    case TypeKind::kULong: return 4;
    case TypeKind::kLongLong:
    case TypeKind::kULongLong: return 5;
    default: return -1;
  }
}

TypeRef Promote(EvalContext& ctx, const TypeRef& t) {
  if (t->kind() == TypeKind::kEnum) {
    return ctx.types().Int();
  }
  if (t->IsInteger() && IntRank(t->kind()) < IntRank(TypeKind::kInt)) {
    return ctx.types().Int();  // all sub-int types fit in int on LP64
  }
  return t;
}

TypeKind UnsignedOf(TypeKind k) {
  switch (k) {
    case TypeKind::kInt: return TypeKind::kUInt;
    case TypeKind::kLong: return TypeKind::kULong;
    case TypeKind::kLongLong: return TypeKind::kULongLong;
    default: return k;
  }
}

// Usual arithmetic conversions for two arithmetic types.
TypeRef CommonType(EvalContext& ctx, const TypeRef& ta, const TypeRef& tb) {
  if (ta->kind() == TypeKind::kDouble || tb->kind() == TypeKind::kDouble) {
    return ctx.types().Double();
  }
  if (ta->kind() == TypeKind::kFloat || tb->kind() == TypeKind::kFloat) {
    return ctx.types().Float();
  }
  TypeRef a = Promote(ctx, ta);
  TypeRef b = Promote(ctx, tb);
  if (a->kind() == b->kind()) {
    return a;
  }
  bool ua = a->IsUnsignedInteger();
  bool ub = b->IsUnsignedInteger();
  int ra = IntRank(a->kind());
  int rb = IntRank(b->kind());
  if (ua == ub) {
    return ra >= rb ? a : b;
  }
  const TypeRef& u = ua ? a : b;
  const TypeRef& s = ua ? b : a;
  int ru = IntRank(u->kind());
  int rs = IntRank(s->kind());
  if (ru >= rs) {
    return u;
  }
  if (s->size() > u->size()) {
    return s;  // the signed type can represent every value of the unsigned one
  }
  return ctx.types().Basic(UnsignedOf(s->kind()));
}

uint64_t MaskTo(uint64_t v, size_t size) {
  if (size >= 8) {
    return v;
  }
  return v & ((1ull << (size * 8)) - 1);
}

int64_t SignExtend(uint64_t v, size_t size) {
  if (size >= 8) {
    return static_cast<int64_t>(v);
  }
  uint64_t sign = 1ull << (size * 8 - 1);
  if (v & sign) {
    return static_cast<int64_t>(v | ~((sign << 1) - 1));
  }
  return static_cast<int64_t>(MaskTo(v, size));
}

bool IsArithOp(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAdd:
    case Op::kSub:
    case Op::kShl:
    case Op::kShr:
    case Op::kBitAnd:
    case Op::kBitXor:
    case Op::kBitOr:
      return true;
    default:
      return false;
  }
}

bool IsComparisonOp(Op op) {
  switch (op) {
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

Sym BinSym(EvalContext& ctx, Op op, const Value& a, const Value& b) {
  if (!ctx.sym_on()) {
    return Sym::None();
  }
  ctx.counters().symbolic_builds++;
  return ComposeBinary(a.sym(), BinOpText(op), b.sym(), BinOpPrec(op));
}

[[noreturn]] void TypeFail(const Value& a, const Value& b, Op op, SourceRange range) {
  throw DuelError(ErrorKind::kType,
                  StrPrintf("invalid operands to '%s' (%s and %s)", BinOpText(op),
                            a.type() ? a.type()->ToString().c_str() : "<frame>",
                            b.type() ? b.type()->ToString().c_str() : "<frame>"),
                  range);
}

}  // namespace

const char* BinOpText(Op op) {
  switch (op) {
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kMod: return "%";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kShl: return "<<";
    case Op::kShr: return ">>";
    case Op::kLt: return "<";
    case Op::kGt: return ">";
    case Op::kLe: return "<=";
    case Op::kGe: return ">=";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kBitAnd: return "&";
    case Op::kBitXor: return "^";
    case Op::kBitOr: return "|";
    case Op::kAndAnd: return "&&";
    case Op::kOrOr: return "||";
    case Op::kAssign: return "=";
    case Op::kMulEq: return "*=";
    case Op::kDivEq: return "/=";
    case Op::kModEq: return "%=";
    case Op::kAddEq: return "+=";
    case Op::kSubEq: return "-=";
    case Op::kShlEq: return "<<=";
    case Op::kShrEq: return ">>=";
    case Op::kAndEq: return "&=";
    case Op::kXorEq: return "^=";
    case Op::kOrEq: return "|=";
    case Op::kIfGt: return ">?";
    case Op::kIfLt: return "<?";
    case Op::kIfGe: return ">=?";
    case Op::kIfLe: return "<=?";
    case Op::kIfEq: return "==?";
    case Op::kIfNe: return "!=?";
    case Op::kSeqEq: return "===";
    default: return "?";
  }
}

int BinOpPrec(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod: return kPrecMul;
    case Op::kAdd:
    case Op::kSub: return kPrecAdd;
    case Op::kShl:
    case Op::kShr: return kPrecShift;
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kIfLt:
    case Op::kIfGt:
    case Op::kIfLe:
    case Op::kIfGe: return kPrecRel;
    case Op::kEq:
    case Op::kNe:
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kSeqEq: return kPrecEq;
    case Op::kBitAnd: return kPrecBitAnd;
    case Op::kBitXor: return kPrecBitXor;
    case Op::kBitOr: return kPrecBitOr;
    case Op::kAndAnd: return kPrecAndAnd;
    case Op::kOrOr: return kPrecOrOr;
    default: return kPrecAssign;
  }
}

Op FilterToComparison(Op op) {
  switch (op) {
    case Op::kIfGt: return Op::kGt;
    case Op::kIfLt: return Op::kLt;
    case Op::kIfGe: return Op::kGe;
    case Op::kIfLe: return Op::kLe;
    case Op::kIfEq: return Op::kEq;
    case Op::kIfNe: return Op::kNe;
    default:
      throw DuelError(ErrorKind::kInternal, "FilterToComparison on non-filter");
  }
}

bool ApplyComparisonImpl(EvalContext& ctx, Op op, const Value& va, const Value& vb,
                     SourceRange range) {
  ctx.counters().applies++;
  Value a = ctx.Rvalue(va);
  Value b = ctx.Rvalue(vb);
  const TypeRef& ta = a.type();
  const TypeRef& tb = b.type();
  if (ta == nullptr || tb == nullptr) {
    TypeFail(a, b, op, range);
  }

  // Pointer comparisons (pointer vs pointer or vs integer constant).
  if (ta->kind() == TypeKind::kPointer || tb->kind() == TypeKind::kPointer) {
    uint64_t ua = ta->kind() == TypeKind::kPointer ? ctx.ToPtr(a) : ctx.ToU64(a);
    uint64_t ub = tb->kind() == TypeKind::kPointer ? ctx.ToPtr(b) : ctx.ToU64(b);
    switch (op) {
      case Op::kLt: return ua < ub;
      case Op::kGt: return ua > ub;
      case Op::kLe: return ua <= ub;
      case Op::kGe: return ua >= ub;
      case Op::kEq: return ua == ub;
      case Op::kNe: return ua != ub;
      default: TypeFail(a, b, op, range);
    }
  }
  if (!ta->IsArithmetic() || !tb->IsArithmetic()) {
    TypeFail(a, b, op, range);
  }
  if (ta->IsFloating() || tb->IsFloating()) {
    double da = ctx.ToF64(a);
    double db = ctx.ToF64(b);
    switch (op) {
      case Op::kLt: return da < db;
      case Op::kGt: return da > db;
      case Op::kLe: return da <= db;
      case Op::kGe: return da >= db;
      case Op::kEq: return da == db;
      case Op::kNe: return da != db;
      default: TypeFail(a, b, op, range);
    }
  }
  TypeRef common = CommonType(ctx, ta, tb);
  if (common->IsUnsignedInteger()) {
    uint64_t xa = MaskTo(static_cast<uint64_t>(ctx.ToI64(a)), common->size());
    uint64_t xb = MaskTo(static_cast<uint64_t>(ctx.ToI64(b)), common->size());
    switch (op) {
      case Op::kLt: return xa < xb;
      case Op::kGt: return xa > xb;
      case Op::kLe: return xa <= xb;
      case Op::kGe: return xa >= xb;
      case Op::kEq: return xa == xb;
      case Op::kNe: return xa != xb;
      default: TypeFail(a, b, op, range);
    }
  }
  int64_t xa = ctx.ToI64(a);
  int64_t xb = ctx.ToI64(b);
  switch (op) {
    case Op::kLt: return xa < xb;
    case Op::kGt: return xa > xb;
    case Op::kLe: return xa <= xb;
    case Op::kGe: return xa >= xb;
    case Op::kEq: return xa == xb;
    case Op::kNe: return xa != xb;
    default: TypeFail(a, b, op, range);
  }
}

Value ApplyBinaryImpl(EvalContext& ctx, Op op, const Value& va, const Value& vb, SourceRange range) {
  ctx.counters().applies++;
  if (IsComparisonOp(op)) {
    bool r = ApplyComparison(ctx, op, va, vb, range);
    return Value::Int(ctx.types().Int(), r ? 1 : 0, BinSym(ctx, op, va, vb));
  }
  if (!IsArithOp(op)) {
    throw DuelError(ErrorKind::kInternal, "ApplyBinary: unexpected operator");
  }

  Value a = ctx.Rvalue(va);
  Value b = ctx.Rvalue(vb);
  const TypeRef& ta = a.type();
  const TypeRef& tb = b.type();
  if (ta == nullptr || tb == nullptr) {
    TypeFail(a, b, op, range);
  }
  Sym sym = BinSym(ctx, op, va, vb);

  // Pointer arithmetic.
  if (ta->kind() == TypeKind::kPointer || tb->kind() == TypeKind::kPointer) {
    if (op == Op::kAdd && ta->kind() == TypeKind::kPointer && tb->IsInteger()) {
      Addr p = ctx.ToPtr(a) + static_cast<uint64_t>(ctx.ToI64(b)) * ta->target()->size();
      return Value::Pointer(ta, p, std::move(sym));
    }
    if (op == Op::kAdd && tb->kind() == TypeKind::kPointer && ta->IsInteger()) {
      Addr p = ctx.ToPtr(b) + static_cast<uint64_t>(ctx.ToI64(a)) * tb->target()->size();
      return Value::Pointer(tb, p, std::move(sym));
    }
    if (op == Op::kSub && ta->kind() == TypeKind::kPointer && tb->IsInteger()) {
      Addr p = ctx.ToPtr(a) - static_cast<uint64_t>(ctx.ToI64(b)) * ta->target()->size();
      return Value::Pointer(ta, p, std::move(sym));
    }
    if (op == Op::kSub && ta->kind() == TypeKind::kPointer &&
        tb->kind() == TypeKind::kPointer) {
      if (ta->target()->size() == 0) {
        TypeFail(a, b, op, range);
      }
      int64_t diff = static_cast<int64_t>(ctx.ToPtr(a) - ctx.ToPtr(b)) /
                     static_cast<int64_t>(ta->target()->size());
      return Value::Int(ctx.types().Long(), diff, std::move(sym));
    }
    TypeFail(a, b, op, range);
  }

  if (!ta->IsArithmetic() || !tb->IsArithmetic()) {
    TypeFail(a, b, op, range);
  }

  // Floating arithmetic.
  if (ta->IsFloating() || tb->IsFloating()) {
    double da = ctx.ToF64(a);
    double db = ctx.ToF64(b);
    double r;
    switch (op) {
      case Op::kMul: r = da * db; break;
      case Op::kDiv:
        r = da / db;
        break;
      case Op::kAdd: r = da + db; break;
      case Op::kSub: r = da - db; break;
      default:
        TypeFail(a, b, op, range);  // %, shifts, bit ops on floats
    }
    TypeRef common = CommonType(ctx, ta, tb);
    return Value::Double(common, r, std::move(sym));
  }

  // Shifts keep the (promoted) left type.
  if (op == Op::kShl || op == Op::kShr) {
    TypeRef rt = Promote(ctx, ta);
    uint64_t count = static_cast<uint64_t>(ctx.ToI64(b)) & 63;
    uint64_t xa = MaskTo(static_cast<uint64_t>(ctx.ToI64(a)), rt->size());
    uint64_t r;
    if (op == Op::kShl) {
      r = xa << count;
    } else if (rt->IsSignedInteger()) {
      r = static_cast<uint64_t>(SignExtend(xa, rt->size()) >> count);
    } else {
      r = xa >> count;
    }
    return Value::Int(rt, static_cast<int64_t>(MaskTo(r, rt->size())), std::move(sym));
  }

  TypeRef common = CommonType(ctx, ta, tb);
  size_t size = common->size();
  uint64_t xa = MaskTo(static_cast<uint64_t>(ctx.ToI64(a)), size);
  uint64_t xb = MaskTo(static_cast<uint64_t>(ctx.ToI64(b)), size);
  bool uns = common->IsUnsignedInteger();
  uint64_t r = 0;
  switch (op) {
    case Op::kMul: r = xa * xb; break;
    case Op::kAdd: r = xa + xb; break;
    case Op::kSub: r = xa - xb; break;
    case Op::kBitAnd: r = xa & xb; break;
    case Op::kBitXor: r = xa ^ xb; break;
    case Op::kBitOr: r = xa | xb; break;
    case Op::kDiv:
    case Op::kMod: {
      if (xb == 0) {
        throw DuelError(ErrorKind::kType,
                        std::string(op == Op::kDiv ? "division" : "modulo") + " by zero" +
                            (sym.empty() ? "" : " in " + sym.Text()),
                        range);
      }
      if (uns) {
        r = op == Op::kDiv ? xa / xb : xa % xb;
      } else {
        int64_t sa = SignExtend(xa, size);
        int64_t sb = SignExtend(xb, size);
        if (sb == -1 && sa == std::numeric_limits<int64_t>::min()) {
          r = op == Op::kDiv ? static_cast<uint64_t>(sa) : 0;  // wrap, avoid UB
        } else {
          r = static_cast<uint64_t>(op == Op::kDiv ? sa / sb : sa % sb);
        }
      }
      break;
    }
    default:
      TypeFail(a, b, op, range);
  }
  return Value::Int(common, static_cast<int64_t>(MaskTo(r, size)), std::move(sym));
}

Value ApplyUnaryImpl(EvalContext& ctx, Op op, const Value& v, SourceRange range) {
  ctx.counters().applies++;
  auto usym = [&](const char* text) {
    if (!ctx.sym_on()) {
      return Sym::None();
    }
    ctx.counters().symbolic_builds++;
    return ComposeUnary(text, v.sym());
  };
  switch (op) {
    case Op::kNot: {
      bool t = ctx.Truthy(v);
      return Value::Int(ctx.types().Int(), t ? 0 : 1, usym("!"));
    }
    case Op::kPos: {
      Value r = ctx.Rvalue(v);
      if (r.type() == nullptr || !r.type()->IsArithmetic()) {
        throw DuelError(ErrorKind::kType, "unary '+' needs an arithmetic operand", range);
      }
      r.set_sym(usym("+"));
      return r;
    }
    case Op::kNeg: {
      Value r = ctx.Rvalue(v);
      const TypeRef& t = r.type();
      if (t == nullptr || !t->IsArithmetic()) {
        throw DuelError(ErrorKind::kType, "unary '-' needs an arithmetic operand", range);
      }
      if (t->IsFloating()) {
        return Value::Double(t, -ctx.ToF64(r), usym("-"));
      }
      TypeRef rt = Promote(ctx, t);
      uint64_t x = MaskTo(static_cast<uint64_t>(ctx.ToI64(r)), rt->size());
      return Value::Int(rt, static_cast<int64_t>(MaskTo(0 - x, rt->size())), usym("-"));
    }
    case Op::kBitNot: {
      Value r = ctx.Rvalue(v);
      const TypeRef& t = r.type();
      if (t == nullptr || !t->IsInteger()) {
        throw DuelError(ErrorKind::kType, "'~' needs an integer operand", range);
      }
      TypeRef rt = Promote(ctx, t);
      uint64_t x = static_cast<uint64_t>(ctx.ToI64(r));
      return Value::Int(rt, static_cast<int64_t>(MaskTo(~x, rt->size())), usym("~"));
    }
    case Op::kDeref: {
      Value r = ctx.Rvalue(v);
      if (r.type() == nullptr || r.type()->kind() != TypeKind::kPointer) {
        throw DuelError(ErrorKind::kType, "'*' needs a pointer operand", range);
      }
      const TypeRef& pointee = r.type()->target();
      if (pointee->kind() == TypeKind::kVoid) {
        throw DuelError(ErrorKind::kType, "cannot dereference void *", range);
      }
      return Value::LV(pointee, ctx.ToPtr(r), usym("*"));
    }
    case Op::kAddrOf: {
      if (!v.is_lvalue()) {
        throw DuelError(ErrorKind::kType, "'&' needs an lvalue", range);
      }
      if (v.is_bitfield()) {
        throw DuelError(ErrorKind::kType, "cannot take the address of a bit-field", range);
      }
      return Value::Pointer(ctx.types().PointerTo(v.type()), v.addr(), usym("&"));
    }
    default:
      throw DuelError(ErrorKind::kInternal, "ApplyUnary: unexpected operator");
  }
}

Value ApplyIndexImpl(EvalContext& ctx, const Value& base, const Value& index, SourceRange range) {
  ctx.counters().applies++;
  Value b = ctx.Rvalue(base);  // decays arrays
  Value idx = index;
  if (b.type() != nullptr && b.type()->IsInteger()) {
    // C's commutative subscripting: 2[x] == x[2].
    Value swapped = ctx.Rvalue(index);
    if (swapped.type() != nullptr && swapped.type()->kind() == TypeKind::kPointer) {
      idx = b;
      b = swapped;
    }
  }
  if (b.type() == nullptr || b.type()->kind() != TypeKind::kPointer) {
    throw DuelError(ErrorKind::kType,
                    "subscript needs an array or pointer, got " +
                        (b.type() ? b.type()->ToString() : "<frame>"),
                    range);
  }
  const TypeRef& elem = b.type()->target();
  int64_t i = ctx.ToI64(idx);
  Addr addr = ctx.ToPtr(b) + static_cast<uint64_t>(i) * elem->size();
  Sym sym = ctx.sym_on() ? ComposeIndex(base.sym(), index.sym()) : Sym::None();
  return Value::LV(elem, addr, std::move(sym));
}

Value ApplyCastImpl(EvalContext& ctx, const TypeRef& type, const Value& v, SourceRange range) {
  ctx.counters().applies++;
  Sym sym = ctx.sym_on()
                ? Sym::Plain("(" + type->ToString() + ")" + v.sym().TextAsOperand(kPrecUnary),
                             kPrecUnary)
                : Sym::None();
  if (type->kind() == TypeKind::kVoid) {
    return Value::RV(type, nullptr, 0, std::move(sym));
  }
  Value r = ctx.Rvalue(v);
  const TypeRef& st = r.type();
  if (st == nullptr) {
    throw DuelError(ErrorKind::kType, "cannot cast a frame handle", range);
  }
  if (type->IsRecord() || type->kind() == TypeKind::kArray) {
    if (!target::TypeEquals(type, st)) {
      throw DuelError(ErrorKind::kType,
                      "cannot cast " + st->ToString() + " to " + type->ToString(), range);
    }
    Value out = r;
    out.set_sym(std::move(sym));
    return out;
  }
  if (type->IsFloating()) {
    return Value::Double(type, ctx.ToF64(r), std::move(sym));
  }
  if (type->kind() == TypeKind::kPointer) {
    uint64_t p = st->kind() == TypeKind::kPointer ? ctx.ToPtr(r) : ctx.ToU64(r);
    return Value::Pointer(type, p, std::move(sym));
  }
  if (type->IsInteger() || type->kind() == TypeKind::kEnum) {
    int64_t x = st->kind() == TypeKind::kPointer ? static_cast<int64_t>(ctx.ToPtr(r))
                                                 : ctx.ToI64(r);
    return Value::Int(type, x, std::move(sym));
  }
  throw DuelError(ErrorKind::kType, "unsupported cast to " + type->ToString(), range);
}

Value ApplyAssignImpl(EvalContext& ctx, Op op, const Value& lhs, const Value& rhs,
                  SourceRange range) {
  ctx.counters().applies++;
  if (op == Op::kAssign) {
    ctx.Store(lhs, rhs);
  } else {
    Op base;
    switch (op) {
      case Op::kMulEq: base = Op::kMul; break;
      case Op::kDivEq: base = Op::kDiv; break;
      case Op::kModEq: base = Op::kMod; break;
      case Op::kAddEq: base = Op::kAdd; break;
      case Op::kSubEq: base = Op::kSub; break;
      case Op::kShlEq: base = Op::kShl; break;
      case Op::kShrEq: base = Op::kShr; break;
      case Op::kAndEq: base = Op::kBitAnd; break;
      case Op::kXorEq: base = Op::kBitXor; break;
      case Op::kOrEq: base = Op::kBitOr; break;
      default:
        throw DuelError(ErrorKind::kInternal, "ApplyAssign: unexpected operator");
    }
    Value combined = ApplyBinary(ctx, base, lhs, rhs, range);
    ctx.Store(lhs, combined);
  }
  // The value of an assignment is the new value of the lhs.
  Value result = ctx.Rvalue(lhs);
  result.set_sym(BinSym(ctx, op, lhs, rhs));
  return result;
}

Value ApplyIncDecImpl(EvalContext& ctx, Op op, const Value& v, SourceRange range) {
  ctx.counters().applies++;
  if (!v.is_lvalue()) {
    throw DuelError(ErrorKind::kType, "'++'/'--' need an lvalue", range);
  }
  Value old = ctx.Rvalue(v);
  const TypeRef& t = old.type();
  Value next;
  Sym none = Sym::None();
  if (t->kind() == TypeKind::kPointer) {
    uint64_t delta = t->target()->size();
    Addr p = ctx.ToPtr(old);
    next = Value::Pointer(t, (op == Op::kPreInc || op == Op::kPostInc) ? p + delta : p - delta,
                          none);
  } else if (t->IsFloating()) {
    double d = ctx.ToF64(old);
    next = Value::Double(t, (op == Op::kPreInc || op == Op::kPostInc) ? d + 1 : d - 1, none);
  } else if (t->IsInteger() || t->kind() == TypeKind::kEnum) {
    int64_t x = ctx.ToI64(old);
    next = Value::Int(t, (op == Op::kPreInc || op == Op::kPostInc) ? x + 1 : x - 1, none);
  } else {
    throw DuelError(ErrorKind::kType, "cannot increment " + t->ToString(), range);
  }
  ctx.Store(v, next);
  bool pre = op == Op::kPreInc || op == Op::kPreDec;
  const char* text = (op == Op::kPreInc || op == Op::kPostInc) ? "++" : "--";
  Sym sym = Sym::None();
  if (ctx.sym_on()) {
    sym = pre ? ComposeUnary(text, v.sym())
              : Sym::Plain(v.sym().TextAsOperand(kPrecPostfix) + text, kPrecPostfix);
  }
  Value result = pre ? next : old;
  result.set_sym(std::move(sym));
  return result;
}

// --- public entry points -----------------------------------------------------
//
// Thin wrappers that stamp the operator node's source range onto any error
// escaping the operator implementation (value conversion, loads, stores —
// helpers that throw without knowing where in the query they were called
// from). DuelError::set_range is first-writer-wins, so throw sites that
// already carry a precise inner range keep it. Both engines funnel through
// these same wrappers, which is what makes their error spans identical.

bool ApplyComparison(EvalContext& ctx, Op op, const Value& va, const Value& vb,
                     SourceRange range) {
  try {
    return ApplyComparisonImpl(ctx, op, va, vb, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyBinary(EvalContext& ctx, Op op, const Value& va, const Value& vb,
                  SourceRange range) {
  try {
    return ApplyBinaryImpl(ctx, op, va, vb, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyUnary(EvalContext& ctx, Op op, const Value& v, SourceRange range) {
  try {
    return ApplyUnaryImpl(ctx, op, v, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyIndex(EvalContext& ctx, const Value& base, const Value& index, SourceRange range) {
  try {
    return ApplyIndexImpl(ctx, base, index, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyCast(EvalContext& ctx, const TypeRef& type, const Value& v, SourceRange range) {
  try {
    return ApplyCastImpl(ctx, type, v, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyAssign(EvalContext& ctx, Op op, const Value& lhs, const Value& rhs,
                  SourceRange range) {
  try {
    return ApplyAssignImpl(ctx, op, lhs, rhs, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

Value ApplyIncDec(EvalContext& ctx, Op op, const Value& v, SourceRange range) {
  try {
    return ApplyIncDecImpl(ctx, op, v, range);
  } catch (DuelError& e) {
    e.set_range(range);
    throw;
  }
}

}  // namespace duel
