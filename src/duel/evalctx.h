// Shared evaluation context: backend access, aliases, the with-stack,
// rvalue/lvalue plumbing, name resolution, type-spec resolution, and fuel.
// Both evaluation engines (state machine and coroutine) run over the same
// context, which is what makes their results comparable.

#ifndef DUEL_DUEL_EVALCTX_H_
#define DUEL_DUEL_EVALCTX_H_

#include <optional>
#include <string>

#include "src/dbg/access.h"
#include "src/dbg/backend.h"
#include "src/duel/ast.h"
#include "src/duel/scope.h"
#include "src/duel/value.h"
#include "src/support/counters.h"
#include "src/support/governor.h"
#include "src/support/obs/profile.h"

namespace duel {

class Annotations;  // sema.h: per-node side table produced by the analyze stage

struct EvalOptions {
  enum class SymMode {
    kOff,   // no symbolic values computed (E3 ablation)
    kOn,    // eager symbolic values (the original's behaviour)
    kLazy,  // deferred derivation DAG, materialized only when printed (the
            // paper's proposed optimization; E3 measures all three)
  };
  SymMode sym_mode = SymMode::kOn;

  // Fuel: generator resumptions before the evaluation is aborted. Protects
  // against runaways like `1..` driven to completion.
  uint64_t max_steps = 50'000'000;

  // Extension: detect cycles during --> expansion (the original did not).
  bool cycle_detect = true;

  // Bound on values a single --> node will expand (safety net when cycle
  // detection is off).
  uint64_t max_expand_nodes = 10'000'000;

  // E4 ablation: cache target-variable lookups for the whole query.
  bool lookup_cache = false;

  // The paper's proposed optimization: bind eligible names to target
  // variables at "compile time" (the analyze stage, see sema.h).
  bool prebind = false;

  // Route target-memory traffic through the read-combining block cache
  // (dbg::MemoryAccess). Off = every read/write hits the backend directly,
  // byte-for-byte the original behaviour; the E4-style ablation flips this.
  bool data_cache = true;

  // Cap on chars read when displaying char* values.
  size_t max_string_display = 80;
};

class EvalContext {
 public:
  EvalContext(dbg::DebuggerBackend& backend, EvalOptions opts)
      : backend_(&backend), access_(backend), opts_(opts) {
    access_.set_enabled(opts_.data_cache);
  }

  dbg::DebuggerBackend& backend() { return *backend_; }

  // The cached data path. All target-byte traffic (loads, stores, validity
  // probes, allocs, calls) goes through here; symbol/type/frame lookups keep
  // using backend() directly.
  dbg::MemoryAccess& access() { return access_; }

  // Starts a fresh per-query epoch: re-syncs the cache toggle with opts(),
  // drops all cached blocks, and lets the backend reset its own client-side
  // caches. Call once at the top of every top-level evaluation.
  void BeginQuery() {
    access_.set_enabled(opts_.data_cache);
    access_.BeginQuery();
  }

  // The data half of BeginQuery: re-syncs the cache toggle and drops cached
  // data blocks, leaving the backend's client-side symbol caches intact.
  // The session uses this when the symbol view was already refreshed at the
  // top of the query (before the check stage), so the checker's lookups stay
  // memoized into evaluation.
  void BeginQueryData() {
    access_.set_enabled(opts_.data_cache);
    access_.BeginQueryData();
  }
  const EvalOptions& opts() const { return opts_; }
  EvalOptions& opts() { return opts_; }
  AliasTable& aliases() { return aliases_; }
  ScopeStack& scopes() { return scopes_; }
  EvalCounters& counters() { return counters_; }
  target::TypeTable& types() { return backend_->Types(); }

  bool sym_on() const { return opts_.sym_mode != EvalOptions::SymMode::kOff; }
  Sym MakeSym(std::string text, int prec = kPrecPrimary) {
    switch (opts_.sym_mode) {
      case EvalOptions::SymMode::kOff:
        return Sym::None();
      case EvalOptions::SymMode::kLazy:
        counters_.symbolic_builds++;
        return Sym::LazyText(std::move(text), prec);
      case EvalOptions::SymMode::kOn:
        break;
    }
    counters_.symbolic_builds++;
    return Sym::Plain(std::move(text), prec);
  }

  // Fuel accounting; throws DuelError(kLimit) when exhausted.
  // Burns one unit of evaluation fuel and, when a profiler is attached,
  // attributes the step to `node_id` (the dense Node::id; -1 = unattributed).
  void Step(int node_id = -1);

  // Per-node profiler hook (owned by the session; may be null).
  void set_profiler(obs::NodeProfiler* p) { profiler_ = p; }
  obs::NodeProfiler* profiler() const { return profiler_; }

  // Per-query execution governor (owned by the session / serve layer; may be
  // null). When attached and armed, every Step is a cooperative checkpoint:
  // a tripped deadline, step budget, or cancel request aborts the query with
  // DuelError(kCancel). Attach to access() separately for the byte budget.
  void set_governor(ExecGovernor* g) { governor_ = g; }
  ExecGovernor* governor() const { return governor_; }

  // The analyze stage's side table for the tree currently being executed
  // (owned by the session's CompiledQuery; set for the duration of one
  // execute stage). Null when an engine is driven without a plan — the
  // helpers in eval_util.cc then fall back to fully dynamic resolution.
  void set_annotations(const Annotations* a) { annotations_ = a; }
  const Annotations* annotations() const { return annotations_; }

  // --- value plumbing -------------------------------------------------------

  // Converts to an rvalue: loads lvalues from target memory (including
  // bit-fields), decays arrays to pointers and functions to themselves.
  Value Rvalue(const Value& v);

  // Assigns rv (converted to lv's type) into the storage of lvalue lv.
  void Store(const Value& lv, const Value& rv);

  // Scalar readouts (load lvalue first if needed).
  int64_t ToI64(const Value& v);
  uint64_t ToU64(const Value& v);
  double ToF64(const Value& v);
  Addr ToPtr(const Value& v);
  bool Truthy(const Value& v);

  // --- names ----------------------------------------------------------------

  // Full DUEL name resolution: with-scopes (innermost first), aliases, then
  // target variables via the debugger interface; functions last. Returns
  // nullopt when the name is unknown.
  std::optional<Value> LookupName(const std::string& name);

  // The innermost with-subject (`_`); throws if no with is active.
  Value Underscore(SourceRange range);

  // Member lookup within one with-scope; nullopt if the scope has no such
  // member. Used by LookupName and by -> member access.
  std::optional<Value> LookupInScope(const WithScope& scope, const std::string& name);

  // Member access for e1.name / e1->name when e1 is a record or pointer to
  // record. Throws DuelError(kType) on non-records, MemoryFault on bad
  // pointers. `deref` selects the -> form.
  Value MemberAccess(const Value& subject, const std::string& name, bool deref,
                     SourceRange range);

  // --- types ----------------------------------------------------------------

  // Resolves a syntactic type-name against the debugger's type tables.
  TypeRef ResolveTypeSpec(const TypeSpec& spec, SourceRange range);

  void ClearLookupCache() { lookup_cache_.clear(); }

  // Interns a string literal in target space, once per distinct body (the
  // paper's duel_alloc_target_space path). Keyed by content, not by AST
  // node: plans cache their trees across queries, and node addresses can be
  // recycled, so identity of bytes is the only stable key.
  Addr InternString(const std::string& body);

 private:
  std::map<std::string, Addr> interned_strings_;
  dbg::DebuggerBackend* backend_;
  dbg::MemoryAccess access_;
  EvalOptions opts_;
  AliasTable aliases_;
  ScopeStack scopes_;
  EvalCounters counters_;
  obs::NodeProfiler* profiler_ = nullptr;
  ExecGovernor* governor_ = nullptr;
  const Annotations* annotations_ = nullptr;
  std::map<std::string, std::optional<dbg::VariableInfo>> lookup_cache_;
};

}  // namespace duel

#endif  // DUEL_DUEL_EVALCTX_H_
