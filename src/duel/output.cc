#include "src/duel/output.h"

#include <vector>

#include "src/support/strings.h"

namespace duel {

using target::TypeKind;

namespace {

constexpr int kMaxDepth = 3;
constexpr size_t kMaxArrayElems = 10;

std::string FormatRecursive(EvalContext& ctx, const Value& v, int depth);

std::string FormatCharPointer(EvalContext& ctx, Addr p) {
  if (p == 0) {
    return "0x0";
  }
  std::string hexp = StrPrintf("0x%llx", static_cast<unsigned long long>(p));
  // One chunked valid-prefix read instead of a ValidTargetBytes+GetTargetBytes
  // pair per character. cap+1 bytes so a string of exactly cap chars can still
  // prove its terminating NUL.
  size_t cap = ctx.opts().max_string_display;
  std::vector<char> buf(cap + 1);
  size_t n = ctx.access().GetBytesPrefix(p, buf.data(), cap + 1);
  if (n == 0) {
    return hexp;  // unreadable: show the raw pointer
  }
  std::string out;
  out.reserve(cap + 16);
  bool truncated = true;  // no NUL within the readable window
  for (size_t i = 0; i < n && i <= cap; ++i) {
    if (buf[i] == '\0') {
      truncated = false;
      break;
    }
    if (i == cap) {
      break;
    }
    out += EscapeChar(buf[i]);
  }
  return "\"" + out + (truncated ? "\"..." : "\"");
}

std::string FormatRecord(EvalContext& ctx, const Value& v, int depth) {
  if (depth >= kMaxDepth) {
    return "{...}";
  }
  const TypeRef& t = v.type();
  std::vector<std::string> fields;
  for (const target::Member& m : t->members()) {
    Value mv;
    if (v.is_lvalue()) {
      mv = m.is_bitfield
               ? Value::BitfieldLV(m.type, v.addr() + m.offset, m.bit_offset, m.bit_width,
                                   Sym::None())
               : Value::LV(m.type, v.addr() + m.offset, Sym::None());
    } else {
      mv = Value::RV(m.type, v.bytes().data() + m.offset, m.type->size(), Sym::None());
    }
    fields.push_back(m.name + " = " + FormatRecursive(ctx, mv, depth + 1));
  }
  return "{" + Join(fields, ", ") + "}";
}

std::string FormatArray(EvalContext& ctx, const Value& v, int depth) {
  if (depth >= kMaxDepth) {
    return "{...}";
  }
  const TypeRef& t = v.type();
  const TypeRef& elem = t->target();
  size_t n = t->array_count();
  // char arrays display as strings (one chunked valid-prefix read).
  if (elem->kind() == TypeKind::kChar && v.is_lvalue()) {
    size_t cap = std::min(n, ctx.opts().max_string_display);
    std::vector<char> buf(cap);
    size_t m = ctx.access().GetBytesPrefix(v.addr(), buf.data(), cap);
    std::string out;
    for (size_t i = 0; i < m; ++i) {
      if (buf[i] == '\0') {
        return "\"" + out + "\"";
      }
      out += EscapeChar(buf[i]);
    }
    return "\"" + out + "\"...";
  }
  std::vector<std::string> elems;
  size_t show = std::min(n, kMaxArrayElems);
  for (size_t i = 0; i < show; ++i) {
    Value ev = v.is_lvalue()
                   ? Value::LV(elem, v.addr() + i * elem->size(), Sym::None())
                   : Value::RV(elem, v.bytes().data() + i * elem->size(), elem->size(),
                               Sym::None());
    elems.push_back(FormatRecursive(ctx, ev, depth + 1));
  }
  if (show < n) {
    elems.push_back("...");
  }
  return "{" + Join(elems, ", ") + "}";
}

std::string FormatRecursive(EvalContext& ctx, const Value& v, int depth) {
  if (v.is_frame()) {
    return StrPrintf("frame #%zu %s", v.frame_index(),
                     ctx.backend().FrameFunction(v.frame_index()).c_str());
  }
  const TypeRef& t = v.type();
  if (t == nullptr) {
    return "<no value>";
  }
  if (t->kind() == TypeKind::kArray) {
    return FormatArray(ctx, v, depth);
  }
  if (t->IsRecord()) {
    return FormatRecord(ctx, v, depth);
  }
  Value r = ctx.Rvalue(v);
  switch (t->kind()) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kBool:
      return ctx.ToI64(r) != 0 ? "true" : "false";
    case TypeKind::kChar:
    case TypeKind::kSChar:
    case TypeKind::kUChar: {
      int64_t c = ctx.ToI64(r);
      return StrPrintf("'%s'", EscapeChar(static_cast<char>(c)).c_str());
    }
    case TypeKind::kFloat:
    case TypeKind::kDouble:
      return FormatDouble(ctx.ToF64(r));
    case TypeKind::kEnum: {
      int64_t x = ctx.ToI64(r);
      for (const target::Enumerator& e : t->enumerators()) {
        if (e.value == x) {
          return e.name;
        }
      }
      return StrPrintf("%lld", static_cast<long long>(x));
    }
    case TypeKind::kPointer: {
      Addr p = ctx.ToPtr(r);
      if (t->target()->kind() == TypeKind::kChar) {
        return FormatCharPointer(ctx, p);
      }
      return StrPrintf("0x%llx", static_cast<unsigned long long>(p));
    }
    case TypeKind::kFunction:
      return "<function>";
    default: {
      if (t->IsUnsignedInteger()) {
        return StrPrintf("%llu", static_cast<unsigned long long>(ctx.ToU64(r)));
      }
      return StrPrintf("%lld", static_cast<long long>(ctx.ToI64(r)));
    }
  }
}

}  // namespace

std::string FormatValue(EvalContext& ctx, const Value& v) {
  return FormatRecursive(ctx, v, 0);
}

std::string FormatResultLine(EvalContext& ctx, const Value& v) {
  std::string val = FormatValue(ctx, v);
  if (v.sym().empty()) {
    return val;
  }
  std::string sym = v.sym().Text();
  if (sym == val) {
    return val;  // e.g. plain constants: don't print "5 = 5"
  }
  return sym + " = " + val;
}

std::string FormatError(const DuelError& e) {
  if (e.kind() == ErrorKind::kMemory) {
    const auto* mf = dynamic_cast<const MemoryFault*>(&e);
    std::string line = "Illegal memory reference";
    if (!e.symbolic_context().empty()) {
      line += " in " + e.symbolic_context();
    }
    line += ": ";
    if (mf != nullptr) {
      line += e.symbolic_context().empty()
                  ? std::string(e.what())
                  : StrPrintf("%s = lvalue 0x%llx", e.symbolic_context().c_str(),
                              static_cast<unsigned long long>(mf->addr()));
    } else {
      line += e.what();
    }
    return line + ".";
  }
  std::string out = std::string(ErrorKindName(e.kind())) + ": " + e.what();
  if (!e.symbolic_context().empty()) {
    out += " (in " + e.symbolic_context() + ")";
  }
  return out;
}

}  // namespace duel
