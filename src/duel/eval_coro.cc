// Engine B: evaluation with C++20 coroutine generators.
//
// This is the paper's pseudo-code ("yield e ... preserves enough information
// for the computation to resume after the yield statement") implemented with
// real coroutines. A hard invariant shared with Engine A: the global
// name-resolution stack is restored before every suspension, so scopes never
// leak across yields (see the with/expansion cases).

#include "src/duel/eval.h"
#include "src/duel/eval_util.h"
#include "src/duel/output.h"
#include "src/support/generator.h"
#include "src/support/strings.h"

namespace duel {

namespace {

using target::TypeKind;

// Charges one evaluation step attributed to `n`, stamping the node's source
// range onto any limit/cancel error so governor trips carry a span even
// though EvalContext::Step itself only sees the dense node id. set_range is
// first-writer-wins, so errors that already carry a more precise inner span
// pass through unchanged.
void Charge(EvalContext& ctx, const Node& n) {
  try {
    ctx.Step(n.id);
  } catch (DuelError& e) {
    e.set_range(n.range);
    throw;
  }
}

class CoroEngine final : public EvalEngine {
 public:
  explicit CoroEngine(EvalContext& ctx) : ctx_(&ctx) {}

  void Start(const Node& root, int /*num_nodes*/) override {
    root_ = &root;
    gen_ = Gen(root);
  }

  std::optional<Value> Next() override {
    if (root_ != nullptr) {
      Charge(*ctx_, *root_);
    } else {
      ctx_->Step(-1);
    }
    std::optional<Value> v = gen_.Next();
    if (!v.has_value() && root_ != nullptr) {
      // The paper's restart rule: "After NOVALUE is returned, the next call
      // to eval re-evaluates the node." Re-arm so another drive starts over.
      gen_ = Gen(*root_);
    }
    return v;
  }

  const char* name() const override { return "coroutine"; }

 private:
  Generator<Value> Gen(const Node& n);
  Generator<std::vector<Value>> ArgCombos(const Node& n, size_t idx);

  // Pulling one value from an operand burns a step attributed to the
  // consuming node `n` (the resumption happens on its behalf).
  std::optional<Value> Pull(Generator<Value>& g, const Node& n) {
    Charge(*ctx_, n);
    return g.Next();
  }

  EvalContext* ctx_;
  const Node* root_ = nullptr;
  Generator<Value> gen_;
};

Generator<Value> CoroEngine::Gen(const Node& n) {  // NOLINT(readability-function-size)
  EvalContext& ctx = *ctx_;

  // A constant-folded subtree behaves exactly like a literal leaf: one value,
  // then exhaustion (Next() re-arms the root per the restart rule).
  if (const NodeInfo* info = NodeInfoFor(ctx, n); info != nullptr && info->folded) {
    co_yield info->folded_value;
    co_return;
  }

  // Generic operator families share their child sequencing with the other
  // engine through ClassifyOp (eval_util.h); only structured operators reach
  // the op switch below.
  switch (ClassifyOp(n.op)) {
    case OpClass::kMapUnary: {
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        co_yield ApplyUnaryClass(ctx, n, *u);
      }
      co_return;
    }
    case OpClass::kBinaryProduct: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        auto g2 = Gen(*n.kids[1]);
        while (auto v = Pull(g2, n)) {
          co_yield ApplyBinaryClass(ctx, n, *u, *v);
        }
      }
      co_return;
    }
    case OpClass::kFilter: {
      Op cmp = FilterToComparison(n.op);
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        auto g2 = Gen(*n.kids[1]);
        while (auto v = Pull(g2, n)) {
          if (ApplyComparison(ctx, cmp, *u, *v, n.range)) {
            co_yield *u;  // the filter returns its left operand
          }
        }
      }
      co_return;
    }
    case OpClass::kStructured:
      break;
  }

  switch (n.op) {
    // --- leaves ---------------------------------------------------------
    case Op::kIntConst:
    case Op::kCharConst:
    case Op::kFloatConst:
      co_yield ConstValue(ctx, n);
      break;
    case Op::kStringConst:
      co_yield StringValue(ctx, n);
      break;
    case Op::kName:
      co_yield NameValue(ctx, n);
      break;
    case Op::kUnderscore:
      co_yield ctx.Underscore(n.range);
      break;
    case Op::kDecl:
      ExecDecl(ctx, n);
      break;
    case Op::kSizeofType:
      co_yield SizeofTypeValue(ctx, n);
      break;
    case Op::kFrames: {
      size_t frames = ctx.backend().NumFrames();
      for (size_t i = 0; i < frames; ++i) {
        co_yield Value::FrameHandle(i, ctx.MakeSym(StrPrintf("frame(%zu)", i), kPrecPostfix));
      }
      break;
    }

    // --- display override -------------------------------------------------
    case Op::kBrace: {
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        Value v = *u;
        if (ctx.sym_on()) {
          v.set_sym(Sym::Plain(FormatValue(ctx, v)));
        }
        co_yield v;
      }
      break;
    }

    // --- generators --------------------------------------------------------
    case Op::kTo: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        int64_t lo = ctx.ToI64(*u);
        auto g2 = Gen(*n.kids[1]);
        while (auto v = Pull(g2, n)) {
          int64_t hi = ctx.ToI64(*v);
          for (int64_t i = lo; i <= hi; ++i) {
            Charge(ctx, n);
            co_yield MakeIntValue(ctx, i);
          }
        }
      }
      break;
    }
    case Op::kToPrefix: {  // ..e == 0..e-1
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        int64_t hi = ctx.ToI64(*u);
        for (int64_t i = 0; i < hi; ++i) {
          Charge(ctx, n);
          co_yield MakeIntValue(ctx, i);
        }
      }
      break;
    }
    case Op::kToOpen: {  // e.. : unbounded (fuel-limited)
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        for (int64_t i = ctx.ToI64(*u);; ++i) {
          Charge(ctx, n);
          co_yield MakeIntValue(ctx, i);
        }
      }
      break;
    }
    case Op::kAlternate: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        co_yield *u;
      }
      auto g2 = Gen(*n.kids[1]);
      while (auto v = Pull(g2, n)) {
        co_yield *v;
      }
      break;
    }

    // --- sequence manipulators ----------------------------------------------
    case Op::kImply: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        auto g2 = Gen(*n.kids[1]);
        while (auto v = Pull(g2, n)) {
          co_yield *v;
        }
      }
      break;
    }
    case Op::kSequence: {
      auto g1 = Gen(*n.kids[0]);
      while (Pull(g1, n)) {
      }
      auto g2 = Gen(*n.kids[1]);
      while (auto v = Pull(g2, n)) {
        co_yield *v;
      }
      break;
    }
    case Op::kDiscard: {
      auto g = Gen(*n.kids[0]);
      while (Pull(g, n)) {
      }
      break;
    }
    case Op::kDefine: {
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        ctx.aliases().Set(n.text, *u);
        Value out = *u;
        out.set_sym(ctx.MakeSym(n.text));
        co_yield out;
      }
      break;
    }
    case Op::kIndexAlias: {
      auto g = Gen(*n.kids[0]);
      uint64_t i = 0;
      while (auto u = Pull(g, n)) {
        ctx.aliases().Set(n.text, MakeIntValue(ctx, static_cast<int64_t>(i)));
        co_yield *u;
        ++i;
      }
      break;
    }
    case Op::kSelect: {
      // kids[0] = sequence, kids[1] = indices. The cache avoids re-evaluating
      // the sequence ("the actual implementation of select avoids the
      // re-evaluation of e2 when possible"). Indices are 0-based.
      auto seq = Gen(*n.kids[0]);
      std::vector<Value> cache;
      bool exhausted = false;
      auto gi = Gen(*n.kids[1]);
      while (auto iv = Pull(gi, n)) {
        int64_t want = ctx.ToI64(*iv);
        if (want < 0) {
          continue;
        }
        while (!exhausted && cache.size() <= static_cast<uint64_t>(want)) {
          if (auto v = Pull(seq, n)) {
            cache.push_back(*v);
          } else {
            exhausted = true;
          }
        }
        if (static_cast<uint64_t>(want) < cache.size()) {
          Value out = cache[static_cast<size_t>(want)];
          if (ctx.sym_on()) {
            out.set_sym(out.sym().SelectedAt(static_cast<uint64_t>(want)));
          }
          co_yield out;
        }
      }
      break;
    }
    case Op::kUntil: {
      bool match = UntilMatchMode(*n.kids[1]);
      auto g = Gen(*n.kids[0]);
      while (auto u = Pull(g, n)) {
        if (match) {
          if (UntilEquals(ctx, *u, *n.kids[1])) {
            break;
          }
        } else {
          WithScope scope = ExpandScope(*u);
          ctx.scopes().Push(scope);
          bool hit = false;
          try {
            auto gp = Gen(*n.kids[1]);
            while (auto p = gp.Next()) {
              Charge(ctx, n);
              if (ctx.Truthy(*p)) {
                hit = true;
                break;
              }
            }
          } catch (...) {
            ctx.scopes().Pop();
            throw;
          }
          ctx.scopes().Pop();
          if (hit) {
            break;
          }
        }
        co_yield *u;
      }
      break;
    }

    // --- reductions -----------------------------------------------------------
    case Op::kCount: {
      auto g = Gen(*n.kids[0]);
      int64_t count = 0;
      while (Pull(g, n)) {
        ++count;
      }
      co_yield Value::Int(ctx.types().Int(), count, Sym::None());
      break;
    }
    case Op::kSum: {
      auto g = Gen(*n.kids[0]);
      std::optional<Value> acc;
      while (auto u = Pull(g, n)) {
        if (!acc.has_value()) {
          acc = ctx.Rvalue(*u);
        } else {
          acc = ApplyBinary(ctx, Op::kAdd, *acc, *u, n.range);
        }
      }
      if (acc.has_value()) {
        acc->set_sym(Sym::None());
        co_yield *acc;
      } else {
        co_yield Value::Int(ctx.types().Int(), 0, Sym::None());
      }
      break;
    }
    case Op::kAll: {
      auto g = Gen(*n.kids[0]);
      int64_t all = 1;
      while (auto u = Pull(g, n)) {
        if (!ctx.Truthy(*u)) {
          all = 0;
          break;
        }
      }
      co_yield Value::Int(ctx.types().Int(), all, Sym::None());
      break;
    }
    case Op::kAny: {
      auto g = Gen(*n.kids[0]);
      int64_t any = 0;
      while (auto u = Pull(g, n)) {
        if (ctx.Truthy(*u)) {
          any = 1;
          break;
        }
      }
      co_yield Value::Int(ctx.types().Int(), any, Sym::None());
      break;
    }
    case Op::kSeqEq: {
      auto g1 = Gen(*n.kids[0]);
      auto g2 = Gen(*n.kids[1]);
      int64_t equal = 1;
      for (;;) {
        auto u = Pull(g1, n);
        auto v = Pull(g2, n);
        if (!u.has_value() || !v.has_value()) {
          equal = (u.has_value() == v.has_value()) ? equal : 0;
          break;
        }
        if (!ApplyComparison(ctx, Op::kEq, *u, *v, n.range)) {
          equal = 0;
          break;
        }
      }
      co_yield Value::Int(ctx.types().Int(), equal, Sym::None());
      break;
    }

    // --- control expressions -----------------------------------------------
    case Op::kIf:
    case Op::kCond: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        if (ctx.Truthy(*u)) {
          auto g2 = Gen(*n.kids[1]);
          while (auto v = Pull(g2, n)) {
            co_yield *v;
          }
        } else if (n.kids.size() > 2) {
          auto g3 = Gen(*n.kids[2]);
          while (auto v = Pull(g3, n)) {
            co_yield *v;
          }
        }
      }
      break;
    }
    case Op::kWhile: {
      for (;;) {
        bool go = true;
        auto g1 = Gen(*n.kids[0]);
        while (auto u = Pull(g1, n)) {
          if (!ctx.Truthy(*u)) {
            go = false;
            break;
          }
        }
        if (!go) {
          break;
        }
        auto g2 = Gen(*n.kids[1]);
        while (auto v = Pull(g2, n)) {
          co_yield *v;
        }
      }
      break;
    }
    case Op::kFor: {
      {
        auto gi = Gen(*n.kids[0]);
        while (Pull(gi, n)) {
        }
      }
      for (;;) {
        bool go = true;
        auto gc = Gen(*n.kids[1]);
        while (auto u = Pull(gc, n)) {
          if (!ctx.Truthy(*u)) {
            go = false;
            break;
          }
        }
        if (!go) {
          break;
        }
        auto gb = Gen(*n.kids[3]);
        while (auto v = Pull(gb, n)) {
          co_yield *v;
        }
        auto gs = Gen(*n.kids[2]);
        while (Pull(gs, n)) {
        }
      }
      break;
    }
    case Op::kAndAnd: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        if (ctx.Truthy(*u)) {
          auto g2 = Gen(*n.kids[1]);
          while (auto v = Pull(g2, n)) {
            co_yield *v;
          }
        }
      }
      break;
    }
    case Op::kOrOr: {
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        if (ctx.Truthy(*u)) {
          co_yield *u;
        } else {
          auto g2 = Gen(*n.kids[1]);
          while (auto v = Pull(g2, n)) {
            co_yield *v;
          }
        }
      }
      break;
    }

    // --- with / expansion ----------------------------------------------------
    case Op::kWith:
    case Op::kArrowWith: {
      bool arrow = n.op == Op::kArrowWith;
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        WithScope scope{*u, arrow};
        ctx.scopes().Push(scope);
        auto g2 = Gen(*n.kids[1]);
        bool pushed = true;
        for (;;) {
          std::optional<Value> v;
          try {
            Charge(ctx, n);
            v = g2.Next();
          } catch (...) {
            ctx.scopes().Pop();
            throw;
          }
          if (!v.has_value()) {
            break;
          }
          Value out = ComposeWithResult(ctx, *u, arrow, *v);
          // Restore the stack before suspending so scopes never leak.
          ctx.scopes().Pop();
          pushed = false;
          co_yield out;
          ctx.scopes().Push(scope);
          pushed = true;
        }
        if (pushed) {
          ctx.scopes().Pop();
        }
      }
      break;
    }
    case Op::kDfs:
    case Op::kBfs: {
      bool bfs = n.op == Op::kBfs;
      auto g1 = Gen(*n.kids[0]);
      while (auto u = Pull(g1, n)) {
        ExpandState st;
        if (ExpandAdmit(ctx, st, *u)) {
          st.pending.push_back(*u);
        }
        while (!st.pending.empty()) {
          Charge(ctx, n);
          Value x;
          if (bfs) {
            x = st.pending.front();
            st.pending.pop_front();
          } else {
            x = st.pending.back();
            st.pending.pop_back();
          }
          if (!ExpandReadable(ctx, x)) {
            continue;  // invalid pointer terminates this path silently
          }
          std::vector<Value> children;
          WithScope scope = ExpandScope(x);
          ctx.scopes().Push(scope);
          try {
            auto g2 = Gen(*n.kids[1]);
            while (auto w = g2.Next()) {
              Charge(ctx, n);
              Value child = ComposeWithResult(ctx, x, true, *w);
              if (ExpandAdmit(ctx, st, child)) {
                children.push_back(std::move(child));
              }
            }
          } catch (const MemoryFault&) {
            // A fault while expanding ends this path (partial children kept).
          } catch (...) {
            ctx.scopes().Pop();
            throw;
          }
          ctx.scopes().Pop();
          if (bfs) {
            for (Value& c : children) {
              st.pending.push_back(std::move(c));
            }
          } else {
            for (auto it = children.rbegin(); it != children.rend(); ++it) {
              st.pending.push_back(std::move(*it));  // reverse: visit in order
            }
          }
          co_yield x;
        }
      }
      break;
    }

    // --- calls -----------------------------------------------------------------
    case Op::kCall: {
      const Node& callee = *n.kids[0];
      if (callee.op != Op::kName) {
        throw DuelError(ErrorKind::kType, "only direct calls of named functions are supported",
                        n.range);
      }
      if (callee.text == "frames" && n.kids.size() == 1 &&
          !ctx.backend().GetTargetFunction("frames").has_value()) {
        size_t frames = ctx.backend().NumFrames();
        for (size_t i = 0; i < frames; ++i) {
          co_yield Value::FrameHandle(i,
                                      ctx.MakeSym(StrPrintf("frame(%zu)", i), kPrecPostfix));
        }
        break;
      }
      auto combos = ArgCombos(n, 1);
      while (auto args = combos.Next()) {
        Charge(ctx, n);
        co_yield CallTarget(ctx, callee.text, *args, n.range);
      }
      break;
    }

    default:
      // Generic families were handled by the ClassifyOp dispatch above.
      throw DuelError(ErrorKind::kInternal,
                      StrPrintf("coroutine engine: unhandled op %s", OpName(n.op)));

    // --- C operators -----------------------------------------------------------
    case Op::kSizeofExpr: {
      auto g = Gen(*n.kids[0]);
      if (auto u = Pull(g, n)) {
        // No decay: sizeof of an array lvalue is the whole array size.
        co_yield Value::Int(ctx.types().ULong(),
                            static_cast<int64_t>(u->type() ? u->type()->size() : 0),
                            Sym::None());
      }
      break;
    }
  }
}

Generator<std::vector<Value>> CoroEngine::ArgCombos(const Node& n, size_t idx) {
  if (idx >= n.kids.size()) {
    co_yield std::vector<Value>{};
    co_return;
  }
  auto g = Gen(*n.kids[idx]);
  while (auto u = Pull(g, n)) {
    auto rest = ArgCombos(n, idx + 1);
    while (auto tail = rest.Next()) {
      std::vector<Value> combo;
      combo.reserve(1 + tail->size());
      combo.push_back(*u);
      for (Value& t : *tail) {
        combo.push_back(std::move(t));
      }
      co_yield std::move(combo);
    }
  }
}

}  // namespace

std::unique_ptr<EvalEngine> MakeCoroutineEngineImpl(EvalContext& ctx) {
  return std::make_unique<CoroEngine>(ctx);
}

}  // namespace duel
