// The operator-application layer: DUEL "contains ... its own implementation
// of the C operators" (paper, Implementation). These functions implement the
// single-value C semantics — usual arithmetic conversions, pointer
// arithmetic, array decay, assignment conversions — on Values. The
// evaluation engines drive them once per combination of operand values.

#ifndef DUEL_DUEL_APPLY_H_
#define DUEL_DUEL_APPLY_H_

#include "src/duel/ast.h"
#include "src/duel/evalctx.h"
#include "src/duel/value.h"

namespace duel {

// Arithmetic / bitwise / comparison binary operators (kMul..kNe and the
// bit ops). Logical &&/|| and the ?-filters are generator-level and live in
// the engines (filters use ApplyComparison).
Value ApplyBinary(EvalContext& ctx, Op op, const Value& a, const Value& b, SourceRange range);

// Evaluates the C comparison `op` (kLt..kNe) and returns its truth value —
// used both by the C comparisons and the ?-filter generators.
bool ApplyComparison(EvalContext& ctx, Op op, const Value& a, const Value& b, SourceRange range);

// kNeg kPos kBitNot kNot kDeref kAddrOf.
Value ApplyUnary(EvalContext& ctx, Op op, const Value& v, SourceRange range);

// e1[e2] with C pointer/array semantics; yields an lvalue.
Value ApplyIndex(EvalContext& ctx, const Value& base, const Value& index, SourceRange range);

// (type)e.
Value ApplyCast(EvalContext& ctx, const TypeRef& type, const Value& v, SourceRange range);

// = and op=; returns the value of the assignment (the new lhs value).
Value ApplyAssign(EvalContext& ctx, Op op, const Value& lhs, const Value& rhs,
                  SourceRange range);

// kPreInc kPreDec kPostInc kPostDec.
Value ApplyIncDec(EvalContext& ctx, Op op, const Value& v, SourceRange range);

// Concrete-syntax spelling of a binary operator ("+", "=="), for symbolic
// values; nullptr if the op has none.
const char* BinOpText(Op op);
int BinOpPrec(Op op);

// Maps a filter operator (kIfGt...) to its underlying comparison (kGt...).
Op FilterToComparison(Op op);

}  // namespace duel

#endif  // DUEL_DUEL_APPLY_H_
