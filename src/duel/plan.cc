#include "src/duel/plan.h"

namespace duel {

CompiledQuery* PlanCache::Find(const std::string& text, uint64_t fingerprint) {
  auto it = index_.find(Key(text, fingerprint));
  if (it == index_.end()) {
    return nullptr;
  }
  entries_.splice(entries_.begin(), entries_, it->second);  // touch: now MRU
  return &entries_.front();
}

CompiledQuery* PlanCache::Insert(std::unique_ptr<CompiledQuery> plan) {
  Key key(plan->text, plan->fingerprint);
  if (auto it = index_.find(key); it != index_.end()) {
    entries_.erase(it->second);
    index_.erase(it);
  }
  entries_.push_front(std::move(*plan));
  index_[key] = entries_.begin();
  while (entries_.size() > capacity_ && !entries_.empty()) {
    const CompiledQuery& lru = entries_.back();
    index_.erase(Key(lru.text, lru.fingerprint));
    entries_.pop_back();
    counters_.evictions++;
  }
  // When capacity is 0 the plan was evicted immediately; callers must not
  // hold the pointer in that configuration (Session disables the cache).
  return entries_.empty() ? nullptr : &entries_.front();
}

void PlanCache::Erase(const std::string& text, uint64_t fingerprint) {
  auto it = index_.find(Key(text, fingerprint));
  if (it == index_.end()) {
    return;
  }
  entries_.erase(it->second);
  index_.erase(it);
}

void PlanCache::Clear() {
  entries_.clear();
  index_.clear();
}

void PlanCache::set_capacity(size_t capacity) {
  capacity_ = capacity;
  while (entries_.size() > capacity_) {
    const CompiledQuery& lru = entries_.back();
    index_.erase(Key(lru.text, lru.fingerprint));
    entries_.pop_back();
    counters_.evictions++;
  }
}

std::vector<const CompiledQuery*> PlanCache::Entries() const {
  std::vector<const CompiledQuery*> out;
  out.reserve(entries_.size());
  for (const CompiledQuery& p : entries_) {
    out.push_back(&p);
  }
  return out;
}

}  // namespace duel
