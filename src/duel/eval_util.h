// Node-semantics helpers shared by both evaluation engines, so the engines
// differ only in how they suspend/resume — not in what each operator means.

#ifndef DUEL_DUEL_EVAL_UTIL_H_
#define DUEL_DUEL_EVAL_UTIL_H_

#include <deque>
#include <set>
#include <vector>

#include "src/duel/apply.h"
#include "src/duel/ast.h"
#include "src/duel/evalctx.h"
#include "src/duel/sema.h"
#include "src/duel/value.h"

namespace duel {

// Constants, string literals, names.
Value ConstValue(EvalContext& ctx, const Node& n);   // kIntConst/kFloatConst/kCharConst
Value StringValue(EvalContext& ctx, const Node& n);  // kStringConst (interned char*)
Value NameValue(EvalContext& ctx, const Node& n);    // kName; throws on unknown names

// An int-typed value whose symbolic is its own decimal text (the symbolic
// value of a..b "is the current iteration value").
Value MakeIntValue(EvalContext& ctx, int64_t v);

// Executes a declaration node: allocates zeroed target space per declarator
// and registers each name as an alias (declarations produce no values).
void ExecDecl(EvalContext& ctx, const Node& n);

// sizeof(type).
Value SizeofTypeValue(EvalContext& ctx, const Node& n);

// The syntactic type of a kCast / kSizeofType node: the analyze stage's
// pre-resolved type when a plan is attached, dynamic resolution otherwise.
TypeRef ResolvedTypeOf(EvalContext& ctx, const Node& n);

// --- shared operator dispatch ------------------------------------------------
//
// Every operator whose child sequencing is generic is classified here, and
// both engines pre-dispatch on the class with one generic block per family.
// The engines' own switches keep only the structured operators, so adding an
// operator to one of these families is a single edit in ClassifyOp plus its
// apply case — the engines cannot drift apart on it.

enum class OpClass {
  kMapUnary,       // one operand; one output per input (ApplyUnaryClass)
  kBinaryProduct,  // nested product over two operands (ApplyBinaryClass)
  kFilter,         // product; yields the LEFT operand when the comparison holds
  kStructured,     // engine-specific sequencing (generators, control, scopes)
};

OpClass ClassifyOp(Op op);

// The apply step for kMapUnary ops (unary operators, ++/--, casts).
Value ApplyUnaryClass(EvalContext& ctx, const Node& n, const Value& u);

// The apply step for kBinaryProduct ops (arithmetic/bitwise/comparison,
// assignments, indexing).
Value ApplyBinaryClass(EvalContext& ctx, const Node& n, const Value& u, const Value& v);

// Sym composition for values produced inside a with scope (the `.`, `->`
// and expansion operators): passes `_` through, extends ->member chains,
// parenthesizes complex inner expressions.
Value ComposeWithResult(EvalContext& ctx, const Value& subject, bool arrow, const Value& inner);

// Target function call with already-evaluated arguments.
Value CallTarget(EvalContext& ctx, const std::string& name, const std::vector<Value>& args,
                 SourceRange range);

// e@n: true if n is a literal (match mode) rather than a predicate.
bool UntilMatchMode(const Node& pred);
// Match-mode comparison of a produced value against the literal.
bool UntilEquals(EvalContext& ctx, const Value& u, const Node& pred);

// --- graph expansion (--> / -->>) -------------------------------------------

struct ExpandState {
  std::deque<Value> pending;     // stack (dfs) or queue (bfs)
  std::set<uint64_t> seen;       // cycle-detection keys
  uint64_t expanded = 0;
};

// Admission filter at push time: rejects null pointers, detected cycles, and
// enforces the expansion bound.
bool ExpandAdmit(EvalContext& ctx, ExpandState& st, const Value& v);

// Validity filter at pop time: an unreadable (invalid) pointer terminates
// its path silently, per the paper.
bool ExpandReadable(EvalContext& ctx, const Value& v);

// Builds the with-scope used to expand node `x` (pointers open *x).
WithScope ExpandScope(const Value& x);

}  // namespace duel

#endif  // DUEL_DUEL_EVAL_UTIL_H_
