// Result display: formats values per type (gdb-style) and renders the
// "symbolic = value" lines the duel command prints, plus error reports in
// the paper's "Illegal memory reference in ...: x = lvalue 0x..." shape.

#ifndef DUEL_DUEL_OUTPUT_H_
#define DUEL_DUEL_OUTPUT_H_

#include <string>

#include "src/duel/evalctx.h"
#include "src/duel/value.h"

namespace duel {

// Formats a value for display. Reads target memory for lvalues and for
// char* string display; never throws on bad pointers (falls back to hex).
std::string FormatValue(EvalContext& ctx, const Value& v);

// One output line for a produced value: "sym = value", or just "value" when
// the value has no symbolic (reductions, plain constants).
std::string FormatResultLine(EvalContext& ctx, const Value& v);

// Renders an evaluation error, using the paper's phrasing for memory faults.
std::string FormatError(const DuelError& e);

}  // namespace duel

#endif  // DUEL_DUEL_OUTPUT_H_
