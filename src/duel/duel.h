// Public umbrella header for the DUEL library.
//
// Typical use:
//
//   duel::target::TargetImage image;
//   duel::target::InstallStandardFunctions(image);
//   duel::target::ImageBuilder b(image);
//   ... declare types / globals / poke data (or use duel::scenarios) ...
//
//   duel::dbg::SimBackend backend(image);
//   duel::Session session(backend);
//   duel::QueryResult r = session.Query("x[..100] >? 0");
//   for (const std::string& line : r.lines) std::cout << line << "\n";

#ifndef DUEL_DUEL_DUEL_H_
#define DUEL_DUEL_DUEL_H_

#include "src/dbg/backend.h"
#include "src/duel/ast.h"
#include "src/duel/eval.h"
#include "src/duel/format.h"
#include "src/duel/output.h"
#include "src/duel/parser.h"
#include "src/duel/session.h"
#include "src/duel/value.h"
#include "src/target/builder.h"
#include "src/target/image.h"

#endif  // DUEL_DUEL_DUEL_H_
