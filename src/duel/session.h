// Session: the `duel expr` command.
//
// "Duel's top-level evaluation command 'drives' its expression argument and
// prints all of its values." A Session owns the evaluation context (so
// aliases persist across queries, like the original), parses each query,
// drives the chosen engine, and renders "sym = value" lines.

#ifndef DUEL_DUEL_SESSION_H_
#define DUEL_DUEL_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dbg/backend.h"
#include "src/duel/check.h"
#include "src/duel/diag.h"
#include "src/duel/eval.h"
#include "src/duel/evalctx.h"
#include "src/duel/plan.h"
#include "src/duel/value.h"
#include "src/support/error.h"
#include "src/support/obs/metrics.h"
#include "src/support/obs/profile.h"
#include "src/support/obs/trace.h"

namespace duel {

// What the session does with check-stage warnings. Errors always reject the
// query; warnings default to being reported alongside the results.
enum class WarnMode {
  kOff,    // discard warnings
  kOn,     // report warnings, evaluate anyway
  kError,  // treat warnings as errors: reject the query
};

struct SessionOptions {
  EngineKind engine = EngineKind::kStateMachine;
  EvalOptions eval;
  size_t max_output_values = 100'000;  // guard against unbounded output
  size_t max_history = 100;            // query history depth (0 = off)

  // Plan cache: reuse the compiled half of the pipeline (tokens + AST +
  // annotations) across queries with the same text. Invalidation is
  // epoch-based (see plan.h); `DUEL_PLAN_CACHE=off` in the environment
  // disables it at construction (the CI ablation configuration).
  bool plan_cache = true;
  size_t plan_cache_capacity = 64;

  // The check stage (check.h): static type inference + lint between analyze
  // and execute. A query with a hard error is rejected before BeginQuery —
  // no target data is ever touched for it. `DUEL_CHECK=off` disables the
  // stage at construction (ablation/escape hatch).
  bool check = true;
  WarnMode warn = WarnMode::kOn;

  // Per-query execution governor (support/governor.h): when `governor` is on
  // and any limit is set, each query runs under a wall-clock deadline, an
  // eval-step budget, and a target-bytes-read budget, and can be cancelled
  // from another thread mid-flight (the serve layer's runaway protection;
  // `govern` in the REPL). A trip aborts the query with a span-carrying
  // kCancel diagnostic, keeping the values produced so far as partial
  // results. `DUEL_GOVERNOR=off` disables arming at construction (the CI
  // ablation configuration).
  bool governor = true;
  GovernorLimits governor_limits;

  // Observability (see src/support/obs/): collect_stats assembles an
  // obs::QueryStats per query (phase timings, counter deltas, narrow-call
  // latency histograms); profile additionally attributes every eval step to
  // its AST node. Both are off by default — the hot path stays uninstrumented.
  bool collect_stats = false;
  bool profile = false;
};

// One produced value, in structured form (used by the MI front end).
struct ResultEntry {
  std::string sym;    // symbolic value ("" when none, e.g. reductions)
  std::string value;  // formatted actual value
};

struct QueryResult {
  bool ok = true;
  std::vector<std::string> lines;    // what the duel command printed
  std::vector<ResultEntry> entries;  // the same results, structured
  std::string error;                 // rendered error when !ok
  uint64_t value_count = 0;
  bool truncated = false;            // hit max_output_values

  // Check-stage diagnostics for this query (errors when rejected, plus any
  // warnings under WarnMode::kOn). Not part of Text() — the REPL and MI
  // render them explicitly, so golden value output stays stable.
  std::vector<Diag> diags;

  // The failing subexpression's span when !ok (empty when unattributed).
  SourceRange error_span;

  // The error's kind when !ok (kCancel distinguishes a governor trip from a
  // genuine evaluation failure; the serve layer counts them separately).
  std::optional<ErrorKind> error_kind;

  // Filled when SessionOptions::collect_stats (or ::profile) was on.
  std::optional<obs::QueryStats> stats;

  // Joined lines (+ error if any), each terminated by '\n'.
  std::string Text() const;
};

class Session {
 public:
  explicit Session(dbg::DebuggerBackend& backend, SessionOptions opts = {});

  // Evaluates one DUEL query, returning everything it printed.
  QueryResult Query(const std::string& expr);

  // Runs only the front half of the pipeline (lex → parse → analyze →
  // check) and returns the diagnostics without executing anything. The
  // compiled plan is cached exactly as Query would cache it, so a
  // subsequent Query of the same text is a warm hit. REPL `check <expr>`
  // and MI -duel-check.
  QueryResult Check(const std::string& expr);

  // Compiles `expr` (or reuses the cached plan) and returns the plan without
  // executing — the compile-time half only, touching no target data. The
  // serve layer classifies queries read-only vs mutating from the returned
  // AST + check verdict before choosing a lock. Returns nullptr when the
  // text fails to lex/parse (a following Query reproduces the error). The
  // pointer stays valid until the next Prepare/Query/Check on this session.
  const CompiledQuery* Prepare(const std::string& expr);

  // Drives a query and discards output lines; returns the number of values
  // (used by benchmarks to avoid measuring string formatting).
  uint64_t Drive(const std::string& expr);

  EvalContext& context() { return ctx_; }
  SessionOptions& options() { return opts_; }
  void ClearAliases() { ctx_.aliases().Clear(); }

  // Query history (paper Discussion: "especially if it maintained a history
  // so that common, program-specific queries could be made by simply
  // pointing"). Most recent last.
  const std::vector<std::string>& history() const { return history_; }
  void ClearHistory() { history_.clear(); }

  // Session-owned span tracer (lex/parse/sema/eval/backend.* spans while
  // enabled; `trace on` in the REPL, -duel-trace in MI).
  obs::Tracer& tracer() { return tracer_; }

  // Stats of the most recent instrumented query, if any.
  const std::optional<obs::QueryStats>& last_stats() const { return last_stats_; }

  // The session's compiled-query cache (`plan` in the REPL, -duel-plan in
  // MI). Entries survive until evicted, invalidated, or cleared.
  PlanCache& plan_cache() { return plan_cache_; }

  // The session's execution governor. Armed per query from
  // SessionOptions::governor_limits; `governor().Cancel(reason)` from any
  // thread aborts the in-flight query at its next step checkpoint.
  ExecGovernor& governor() { return governor_; }

 private:
  void Remember(const std::string& expr);

  // The staged pipeline: plan lookup/build (lex → parse → analyze), then
  // execute. With a non-null `result`, values are formatted into it (the
  // `duel expr` command); otherwise they are counted and discarded
  // (benchmarks). Collects stats/profile per opts_.
  uint64_t DriveCore(const std::string& expr, QueryResult* result);

  // Builds a CompiledQuery for `expr` (the text-dependent half of the work).
  std::unique_ptr<CompiledQuery> BuildPlan(const std::string& expr, uint64_t fingerprint);

  // Cache lookup (with validity check) or build+insert. When the cache is
  // off, `uncached` keeps the plan alive for the caller. Fills build timings
  // and the plan-hit flag into `stats` when non-null.
  CompiledQuery* AcquirePlan(const std::string& expr, std::unique_ptr<CompiledQuery>& uncached,
                             obs::QueryStats* stats);

  // Epoch checks for a cached plan (refreshes the alias fast path on pass).
  bool PlanIsValid(CompiledQuery& plan);

  dbg::DebuggerBackend* backend_;
  SessionOptions opts_;
  EvalContext ctx_;
  PlanCache plan_cache_;
  ExecGovernor governor_;
  std::unique_ptr<CompiledQuery> prepared_;  // keeps Prepare's plan alive, cache off
  std::vector<std::string> history_;
  obs::Tracer tracer_;
  obs::NodeProfiler profiler_;
  std::optional<obs::QueryStats> last_stats_;
};

}  // namespace duel

#endif  // DUEL_DUEL_SESSION_H_
