// The analyze stage of the staged query pipeline (lex → parse → analyze →
// execute). Grown out of the prebind pass (the paper's "for many Duel
// expressions, run-time type checking and symbol lookup could be done at
// compile time using type-inference techniques"): one walk over the parsed
// tree produces an annotation side table that the execute stage consumes
// instead of redoing the work per produced value.
//
// The pass computes, per node:
//   * compile-time name bindings (kName → target variable), under the same
//     conservative soundness rules the prebind pass used — a name binds only
//     when no alias, query-local definition, or enclosing with-scope can
//     rebind it dynamically (gated by EvalOptions::prebind);
//   * constant-folded pure subtrees: a composite of arithmetic/bitwise/
//     comparison operators over literals collapses to one precomputed Value
//     (evaluation then yields it like a literal leaf — exactly one value per
//     eval call, so generator semantics are untouched);
//   * resolved syntactic types for kCast / kSizeofType, so repeated casts do
//     not re-search the debugger's type tables per value.
//
// The AST itself is never mutated: annotations live in a side table indexed
// by the dense Node::id. That is what makes the artifact cacheable — a
// CompiledQuery (plan.h) owns {tokens, AST, Annotations} and replays them
// across queries, while anything dynamic (aliases, with-scopes, memory)
// keeps resolving at execute time.

#ifndef DUEL_DUEL_SEMA_H_
#define DUEL_DUEL_SEMA_H_

#include <string>
#include <vector>

#include "src/duel/ast.h"
#include "src/duel/evalctx.h"
#include "src/duel/value.h"

namespace duel {

struct NodeInfo {
  // kName resolved to a target variable at analysis time.
  bool prebound = false;
  target::TypeRef bound_type;
  uint64_t bound_addr = 0;

  // Root of a maximal constant-folded subtree. Engines treat the node as a
  // leaf: one eval call yields folded_value, the next exhausts it.
  bool folded = false;
  Value folded_value;

  // kCast / kSizeofType with the syntactic type resolved once.
  target::TypeRef resolved_type;
};

struct SemaStats {
  size_t names_total = 0;
  size_t names_bound = 0;
  size_t nodes_folded = 0;    // maximal folded subtree roots
  size_t types_resolved = 0;  // casts / sizeofs resolved at analysis time
};

// The annotation side table: one NodeInfo per dense Node::id.
class Annotations {
 public:
  Annotations() = default;
  explicit Annotations(int num_nodes) : infos_(static_cast<size_t>(num_nodes)) {}

  const NodeInfo* Get(int node_id) const {
    return node_id >= 0 && static_cast<size_t>(node_id) < infos_.size()
               ? &infos_[static_cast<size_t>(node_id)]
               : nullptr;
  }
  NodeInfo& At(int node_id) { return infos_.at(static_cast<size_t>(node_id)); }
  int num_nodes() const { return static_cast<int>(infos_.size()); }

  SemaStats stats;

  // Names bound at analysis time. A later `name := ...` alias would shadow
  // them, so the plan cache re-validates exactly this list when the alias
  // table changes (Session::PlanIsValid).
  std::vector<std::string> bound_names;

 private:
  std::vector<NodeInfo> infos_;
};

// Runs the semantic pass. Name binding consults the backend/aliases through
// `ctx`; folding runs the same ConstValue/Apply* helpers the engines use, so
// a folded node's value and symbolic text are byte-identical to unfolded
// evaluation. Throws nothing: a subtree that would fault or divide by zero
// is simply left unfolded, preserving lazy error semantics.
Annotations Analyze(EvalContext& ctx, const Node& root, int num_nodes);

// Annotation lookup for evaluation-time code. Null when the engine is driven
// without a plan (unit harnesses construct engines directly): callers must
// fall back to dynamic resolution.
inline const NodeInfo* NodeInfoFor(const EvalContext& ctx, const Node& n) {
  const Annotations* notes = ctx.annotations();
  return notes == nullptr ? nullptr : notes->Get(n.id);
}

}  // namespace duel

#endif  // DUEL_DUEL_SEMA_H_
