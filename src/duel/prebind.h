// Compile-time name binding (the paper's proposed optimization).
//
// Implementation section: "For many Duel expressions, run-time type checking
// and symbol lookup could be done at compile time using type-inference
// techniques." This pass walks the AST once after parsing and binds kName
// nodes to their target variables, so evaluation skips the per-value symbol
// search that E4 shows dominating lookup-heavy queries.
//
// Binding a name early is only sound when nothing can rebind it during
// evaluation. The pass is conservative — a name is prebound only if:
//   * it is not currently an alias, and no `:=`, declaration, or `#` index
//     alias anywhere in the query can define it, and
//   * it cannot be captured by a with-scope: no `.`, `->`, `-->`, `-->>`,
//     or `@(pred)` encloses it (member names resolve dynamically there), and
//   * it resolves to a target variable right now.
// Everything else falls back to normal dynamic resolution.

#ifndef DUEL_DUEL_PREBIND_H_
#define DUEL_DUEL_PREBIND_H_

#include "src/duel/ast.h"
#include "src/duel/evalctx.h"

namespace duel {

struct PrebindStats {
  size_t names_total = 0;
  size_t names_bound = 0;
};

// Annotates eligible kName nodes in-place (Node::prebound). Returns stats.
PrebindStats PrebindNames(EvalContext& ctx, Node& root);

}  // namespace duel

#endif  // DUEL_DUEL_PREBIND_H_
