#include "src/duel/sema.h"

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "src/duel/apply.h"
#include "src/duel/eval_util.h"

namespace duel {

namespace {

// Collects every name the query itself can (re)define: aliases via `:=`,
// index aliases via `#`, declarations. Such names must resolve dynamically.
void CollectDefinedNames(const Node& n, std::set<std::string>* out) {
  if (n.op == Op::kDefine || n.op == Op::kIndexAlias) {
    out->insert(n.text);
  }
  if (n.op == Op::kDecl) {
    for (const DeclItem& d : n.decls) {
      out->insert(d.name);
    }
  }
  for (const NodePtr& k : n.kids) {
    CollectDefinedNames(*k, out);
  }
}

// Pure subtrees: literals combined by C's arithmetic/bitwise/comparison
// operators. Generators, filters, short-circuit and control ops are excluded
// — they shape the value *sequence*, and folding must never change how many
// values a node produces or when its operands are (not) evaluated.
bool FoldableLeaf(Op op) {
  return op == Op::kIntConst || op == Op::kCharConst || op == Op::kFloatConst;
}

bool FoldableUnary(Op op) {
  switch (op) {
    case Op::kNeg:
    case Op::kPos:
    case Op::kBitNot:
    case Op::kNot:
      return true;
    default:
      return false;
  }
}

bool FoldableBinary(Op op) {
  switch (op) {
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAdd:
    case Op::kSub:
    case Op::kShl:
    case Op::kShr:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
    case Op::kBitAnd:
    case Op::kBitXor:
    case Op::kBitOr:
      return true;
    default:
      return false;
  }
}

class Sema {
 public:
  Sema(EvalContext& ctx, Annotations& notes) : ctx_(&ctx), notes_(&notes) {}

  void Run(const Node& root) {
    if (ctx_->opts().prebind) {
      CollectDefinedNames(root, &defined_);
    }
    Walk(root, /*in_with_scope=*/false);
  }

 private:
  void Walk(const Node& n, bool in_with_scope) {
    if (FoldableUnary(n.op) || FoldableBinary(n.op)) {
      if (std::optional<Value> v = Fold(n)) {
        NodeInfo& info = notes_->At(n.id);
        info.folded = true;
        info.folded_value = std::move(*v);
        notes_->stats.nodes_folded++;
        return;  // the kids are dead code now; leave them unannotated
      }
    }
    switch (n.op) {
      case Op::kName:
        notes_->stats.names_total++;
        TryBind(n, in_with_scope);
        return;
      case Op::kCast:
      case Op::kSizeofType:
        TryResolveType(n);
        break;
      case Op::kWith:
      case Op::kArrowWith:
      case Op::kDfs:
      case Op::kBfs:
      case Op::kUntil:
        // The right operand resolves names against the opened scope first
        // (for kUntil: the non-literal predicate runs in the value's scope).
        Walk(*n.kids[0], in_with_scope);
        Walk(*n.kids[1], /*in_with_scope=*/true);
        return;
      case Op::kCall:
        // The callee name is not an evaluated expression; skip it.
        for (size_t i = 1; i < n.kids.size(); ++i) {
          Walk(*n.kids[i], in_with_scope);
        }
        return;
      default:
        break;
    }
    for (const NodePtr& k : n.kids) {
      Walk(*k, in_with_scope);
    }
  }

  // Compile-time name binding (conservative; see header).
  void TryBind(const Node& n, bool in_with_scope) {
    if (!ctx_->opts().prebind || in_with_scope) {
      return;  // dynamic resolution (could be a member of the opened scope)
    }
    if (defined_.count(n.text) != 0 || ctx_->aliases().Has(n.text)) {
      return;  // the query (or the session) binds this name dynamically
    }
    auto info = ctx_->backend().GetTargetVariable(n.text);
    if (!info.has_value()) {
      return;  // functions/enumerators keep dynamic resolution
    }
    NodeInfo& ni = notes_->At(n.id);
    ni.prebound = true;
    ni.bound_type = info->type;
    ni.bound_addr = info->addr;
    notes_->bound_names.push_back(n.text);
    notes_->stats.names_bound++;
  }

  void TryResolveType(const Node& n) {
    try {
      notes_->At(n.id).resolved_type = ctx_->ResolveTypeSpec(n.type_spec, n.range);
      notes_->stats.types_resolved++;
    } catch (const DuelError&) {
      // Unknown type: leave unresolved so the error is raised at execute
      // time — if the node runs at all (it may sit under a false branch).
    }
  }

  // Evaluates a pure subtree to its one constant value, memoized per node so
  // a discarded attempt higher up never double-counts the work.
  std::optional<Value> Fold(const Node& n) {
    auto it = memo_.find(n.id);
    if (it != memo_.end()) {
      return it->second;
    }
    std::optional<Value> r = FoldUncached(n);
    memo_.emplace(n.id, r);
    return r;
  }

  std::optional<Value> FoldUncached(const Node& n) {
    try {
      if (FoldableLeaf(n.op)) {
        return ConstValue(*ctx_, n);
      }
      if (FoldableUnary(n.op) && n.kids.size() == 1) {
        if (std::optional<Value> u = Fold(*n.kids[0])) {
          return ApplyUnary(*ctx_, n.op, *u, n.range);
        }
      } else if (FoldableBinary(n.op) && n.kids.size() == 2) {
        std::optional<Value> u = Fold(*n.kids[0]);
        if (!u.has_value()) {
          return std::nullopt;
        }
        if (std::optional<Value> v = Fold(*n.kids[1])) {
          return ApplyBinary(*ctx_, n.op, *u, *v, n.range);
        }
      }
    } catch (const DuelError&) {
      // 1/0 and friends: leave unfolded. The error surfaces at execute time
      // with the paper's lazy semantics (not at all under a false branch).
    }
    return std::nullopt;
  }

  EvalContext* ctx_;
  Annotations* notes_;
  std::set<std::string> defined_;
  std::map<int, std::optional<Value>> memo_;
};

}  // namespace

Annotations Analyze(EvalContext& ctx, const Node& root, int num_nodes) {
  Annotations notes(num_nodes);
  Sema sema(ctx, notes);
  sema.Run(root);
  return notes;
}

}  // namespace duel
