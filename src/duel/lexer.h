// Hand-written lexer for DUEL expressions (the original also used a
// hand-written lexer in front of its yacc parser).

#ifndef DUEL_DUEL_LEXER_H_
#define DUEL_DUEL_LEXER_H_

#include <string>
#include <vector>

#include "src/duel/token.h"

namespace duel {

class Lexer {
 public:
  explicit Lexer(std::string_view input);

  // Lexes the whole input; throws DuelError(kLex) on malformed tokens.
  // The returned vector always ends with a kEnd token.
  std::vector<Token> LexAll();

 private:
  Token Next();
  char Peek(size_t ahead = 0) const;
  char Take();
  bool TakeIf(char c);
  Token Make(Tok kind, size_t start);
  Token LexNumber();
  Token LexIdent();
  Token LexCharLit();
  Token LexStringLit();
  char LexEscape();

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace duel

#endif  // DUEL_DUEL_LEXER_H_
