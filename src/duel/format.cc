#include "src/duel/format.h"

#include "src/duel/apply.h"
#include "src/support/strings.h"

namespace duel {

namespace {

// Precedence of the expression a node renders as (parser grammar levels).
int NodePrec(const Node& n) {
  switch (n.op) {
    case Op::kSequence:
    case Op::kDiscard:
      return kPrecSeq;
    case Op::kAlternate:
      return kPrecAlt;
    case Op::kImply:
      return kPrecImply;
    case Op::kDefine:
    case Op::kAssign:
    case Op::kMulEq:
    case Op::kDivEq:
    case Op::kModEq:
    case Op::kAddEq:
    case Op::kSubEq:
    case Op::kShlEq:
    case Op::kShrEq:
    case Op::kAndEq:
    case Op::kXorEq:
    case Op::kOrEq:
      return kPrecAssign;
    case Op::kCond:
      return kPrecCond;
    case Op::kOrOr:
      return kPrecOrOr;
    case Op::kAndAnd:
      return kPrecAndAnd;
    case Op::kBitOr:
      return kPrecBitOr;
    case Op::kBitXor:
      return kPrecBitXor;
    case Op::kBitAnd:
      return kPrecBitAnd;
    case Op::kEq:
    case Op::kNe:
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kSeqEq:
      return kPrecEq;
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kIfLt:
    case Op::kIfGt:
    case Op::kIfLe:
    case Op::kIfGe:
      return kPrecRel;
    case Op::kTo:
    case Op::kToOpen:
    case Op::kToPrefix:
      return kPrecRange;
    case Op::kShl:
    case Op::kShr:
      return kPrecShift;
    case Op::kAdd:
    case Op::kSub:
      return kPrecAdd;
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
      return kPrecMul;
    case Op::kNeg:
    case Op::kPos:
    case Op::kBitNot:
    case Op::kNot:
    case Op::kDeref:
    case Op::kAddrOf:
    case Op::kPreInc:
    case Op::kPreDec:
    case Op::kCast:
    case Op::kSizeofExpr:
    case Op::kCount:
    case Op::kSum:
    case Op::kAll:
    case Op::kAny:
      return kPrecUnary;
    case Op::kIndex:
    case Op::kSelect:
    case Op::kWith:
    case Op::kArrowWith:
    case Op::kDfs:
    case Op::kBfs:
    case Op::kUntil:
    case Op::kIndexAlias:
    case Op::kCall:
    case Op::kPostInc:
    case Op::kPostDec:
      return kPrecPostfix;
    // if/while/for/decl parse as primaries; their bodies bind greedily so
    // they must be parenthesized when used as operands (handled below).
    default:
      return kPrecPrimary;
  }
}

std::string Render(const Node& n);

// Renders a child, parenthesizing when its precedence is looser than the
// context requires.
std::string Operand(const Node& n, int min_prec) {
  std::string text = Render(n);
  if (NodePrec(n) < min_prec) {
    return "(" + text + ")";
  }
  // Control expressions swallow trailing operators greedily; parenthesize
  // them whenever they are not at statement level.
  if ((n.op == Op::kIf || n.op == Op::kWhile || n.op == Op::kFor) &&
      min_prec > kPrecSeq) {
    return "(" + text + ")";
  }
  return text;
}

std::string RenderBinary(const Node& n, const char* op, int prec) {
  // Left-associative: the left child may sit at the same level.
  return Operand(*n.kids[0], prec) + op + Operand(*n.kids[1], prec + 1);
}

std::string RenderWith(const Node& n, const char* sep) {
  std::string lhs = Operand(*n.kids[0], kPrecPostfix);
  const Node& member = *n.kids[1];
  if (member.op == Op::kName) {
    return lhs + sep + member.text;
  }
  if (member.op == Op::kUnderscore) {
    return lhs + sep + "_";
  }
  return lhs + sep + "(" + Render(member) + ")";
}

std::string RenderTypeSpec(const TypeSpec& spec) { return spec.ToString(); }

std::string Render(const Node& n) {
  switch (n.op) {
    case Op::kIntConst:
      return n.is_unsigned
                 ? StrPrintf("%lluu", static_cast<unsigned long long>(n.int_value)) +
                       (n.is_long ? "l" : "")
                 : StrPrintf("%lld", static_cast<long long>(n.int_value)) +
                       (n.is_long ? "l" : "");
    case Op::kFloatConst:
      {
        std::string s = FormatDouble(n.float_value);
        // Ensure it re-lexes as a float, not an int.
        if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
            s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
          s += ".0";
        }
        return s;
      }
    case Op::kCharConst:
      return "'" + EscapeChar(static_cast<char>(n.int_value)) + "'";
    case Op::kStringConst:
      return "\"" + EscapeString(n.text) + "\"";
    case Op::kName:
      return n.text;
    case Op::kUnderscore:
      return "_";
    case Op::kBrace:
      return "{" + Render(*n.kids[0]) + "}";
    case Op::kTo:
      return Operand(*n.kids[0], kPrecShift) + ".." + Operand(*n.kids[1], kPrecShift);
    case Op::kToOpen:
      return Operand(*n.kids[0], kPrecShift) + "..";
    case Op::kToPrefix:
      return ".." + Operand(*n.kids[0], kPrecShift);
    case Op::kAlternate:
      return RenderBinary(n, ",", kPrecAlt);
    case Op::kImply:
      return RenderBinary(n, " => ", kPrecImply);
    case Op::kSequence:
      return RenderBinary(n, "; ", kPrecSeq);
    case Op::kDiscard:
      return Operand(*n.kids[0], kPrecSeq) + " ;";
    case Op::kDefine:
      return n.text + " := " + Operand(*n.kids[0], kPrecAssign);
    case Op::kWith:
      return RenderWith(n, ".");
    case Op::kArrowWith:
      return RenderWith(n, "->");
    case Op::kDfs:
      return RenderWith(n, "-->");
    case Op::kBfs:
      return RenderWith(n, "-->>");
    case Op::kSelect:
      return Operand(*n.kids[0], kPrecPostfix) + "[[" + Render(*n.kids[1]) + "]]";
    case Op::kIndex:
      return Operand(*n.kids[0], kPrecPostfix) + "[" + Render(*n.kids[1]) + "]";
    case Op::kUntil:
      return Operand(*n.kids[0], kPrecPostfix) + "@" + Operand(*n.kids[1], kPrecUnary);
    case Op::kIndexAlias:
      return Operand(*n.kids[0], kPrecPostfix) + "#" + n.text;
    case Op::kCount:
      return "#/" + Operand(*n.kids[0], kPrecUnary);
    case Op::kSum:
      return "+/" + Operand(*n.kids[0], kPrecUnary);
    case Op::kAll:
      return "&&/" + Operand(*n.kids[0], kPrecUnary);
    case Op::kAny:
      return "||/" + Operand(*n.kids[0], kPrecUnary);
    case Op::kIf: {
      std::string out = "if (" + Render(*n.kids[0]) + ") " + Operand(*n.kids[1], kPrecAssign);
      if (n.kids.size() > 2) {
        out += " else " + Operand(*n.kids[2], kPrecAssign);
      }
      return out;
    }
    case Op::kWhile:
      return "while (" + Render(*n.kids[0]) + ") " + Operand(*n.kids[1], kPrecAssign);
    case Op::kFor:
      return "for (" + Render(*n.kids[0]) + "; " + Render(*n.kids[1]) + "; " +
             Render(*n.kids[2]) + ") " + Operand(*n.kids[3], kPrecAssign);
    case Op::kCond:
      return Operand(*n.kids[0], kPrecOrOr) + " ? " + Operand(*n.kids[1], kPrecAssign) +
             " : " + Operand(*n.kids[2], kPrecCond);
    case Op::kCall: {
      std::string out = Operand(*n.kids[0], kPrecPostfix) + "(";
      for (size_t i = 1; i < n.kids.size(); ++i) {
        if (i != 1) {
          out += ", ";
        }
        out += Operand(*n.kids[i], kPrecImply);
      }
      return out + ")";
    }
    case Op::kFrames:
      return "frames()";
    case Op::kCast:
      return "(" + RenderTypeSpec(n.type_spec) + ")" + Operand(*n.kids[0], kPrecUnary);
    case Op::kSizeofType:
      return "sizeof(" + RenderTypeSpec(n.type_spec) + ")";
    case Op::kSizeofExpr:
      return "sizeof " + Operand(*n.kids[0], kPrecUnary);
    case Op::kDecl: {
      std::vector<std::string> parts;
      for (const DeclItem& d : n.decls) {
        // Re-render as "type name" per declarator (splitting shared bases).
        std::string t = d.type.ToString();
        // "int *" + name / "int" + name + dims: ToString already folds dims.
        size_t bracket = t.find('[');
        if (bracket == std::string::npos) {
          parts.push_back(t + " " + d.name);
        } else {
          std::string base = t.substr(0, bracket);
          if (!base.empty() && base.back() != ' ' && base.back() != '*') {
            base += ' ';
          }
          parts.push_back(base + d.name + t.substr(bracket));
        }
      }
      return Join(parts, "; ");
    }
    case Op::kNeg:
      return "-" + Operand(*n.kids[0], kPrecUnary);
    case Op::kPos:
      return "+" + Operand(*n.kids[0], kPrecUnary);
    case Op::kBitNot:
      return "~" + Operand(*n.kids[0], kPrecUnary);
    case Op::kNot:
      return "!" + Operand(*n.kids[0], kPrecUnary);
    case Op::kDeref:
      return "*" + Operand(*n.kids[0], kPrecUnary);
    case Op::kAddrOf:
      return "&" + Operand(*n.kids[0], kPrecUnary);
    case Op::kPreInc:
      return "++" + Operand(*n.kids[0], kPrecUnary);
    case Op::kPreDec:
      return "--" + Operand(*n.kids[0], kPrecUnary);
    case Op::kPostInc:
      return Operand(*n.kids[0], kPrecPostfix) + "++";
    case Op::kPostDec:
      return Operand(*n.kids[0], kPrecPostfix) + "--";
    default: {
      // Remaining binary operators (arithmetic, comparisons, filters, ===).
      const char* text = BinOpText(n.op);
      int prec = BinOpPrec(n.op);
      std::string spaced = std::string(" ") + text + " ";
      return RenderBinary(n, spaced.c_str(), prec);
    }
  }
}

}  // namespace

std::string FormatAst(const Node& n) { return Render(n); }

}  // namespace duel
