#include "src/duel/session.h"

#include "src/duel/output.h"
#include "src/duel/parser.h"
#include "src/duel/prebind.h"

namespace duel {

std::string QueryResult::Text() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (!ok) {
    out += error;
    out += '\n';
  }
  return out;
}

Session::Session(dbg::DebuggerBackend& backend, SessionOptions opts)
    : backend_(&backend), opts_(opts), ctx_(backend, opts.eval) {}

void Session::Remember(const std::string& expr) {
  if (opts_.max_history == 0) {
    return;
  }
  if (!history_.empty() && history_.back() == expr) {
    return;  // collapse immediate repeats
  }
  history_.push_back(expr);
  if (history_.size() > opts_.max_history) {
    history_.erase(history_.begin());
  }
}

QueryResult Session::Query(const std::string& expr) {
  QueryResult result;
  Remember(expr);
  ctx_.opts() = opts_.eval;  // pick up option changes between queries
  try {
    Parser parser(expr, [this](const std::string& name) {
      return backend_->GetTargetTypedef(name) != nullptr;
    });
    ParseResult parsed = parser.Parse();
    if (opts_.eval.prebind) {
      PrebindNames(ctx_, *parsed.root);
    }
    std::unique_ptr<EvalEngine> engine = MakeEngine(opts_.engine, ctx_);
    engine->Start(*parsed.root, parsed.num_nodes);
    while (auto v = engine->Next()) {
      result.value_count++;
      ctx_.counters().values_produced++;
      ResultEntry entry;
      entry.value = FormatValue(ctx_, *v);
      if (!v->sym().empty()) {
        entry.sym = v->sym().Text();
      }
      result.entries.push_back(entry);
      result.lines.push_back(entry.sym.empty() || entry.sym == entry.value
                                 ? entry.value
                                 : entry.sym + " = " + entry.value);
      if (result.value_count >= opts_.max_output_values) {
        result.truncated = true;
        result.lines.push_back("...");
        break;
      }
    }
  } catch (const DuelError& e) {
    result.ok = false;
    result.error = FormatError(e);
  }
  return result;
}

uint64_t Session::Drive(const std::string& expr) {
  ctx_.opts() = opts_.eval;
  Parser parser(expr, [this](const std::string& name) {
    return backend_->GetTargetTypedef(name) != nullptr;
  });
  ParseResult parsed = parser.Parse();
  if (opts_.eval.prebind) {
    PrebindNames(ctx_, *parsed.root);
  }
  std::unique_ptr<EvalEngine> engine = MakeEngine(opts_.engine, ctx_);
  engine->Start(*parsed.root, parsed.num_nodes);
  uint64_t count = 0;
  while (engine->Next().has_value()) {
    ++count;
  }
  return count;
}

}  // namespace duel
