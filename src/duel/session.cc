#include "src/duel/session.h"

#include <array>

#include "src/duel/output.h"
#include "src/duel/parser.h"
#include "src/duel/prebind.h"

namespace duel {

namespace {

// Pairs profiler slots with the parsed tree, preorder, clipping each node's
// source excerpt for the heat view.
void FillProfile(const Node& n, int depth, const std::string& expr,
                 const std::vector<obs::NodeProfiler::Slot>& slots,
                 std::vector<obs::QueryStats::NodeProfile>* out) {
  obs::QueryStats::NodeProfile p;
  p.node_id = n.id;
  p.depth = depth;
  p.op = OpName(n.op);
  if (!n.range.empty() && n.range.end <= expr.size()) {
    p.excerpt = expr.substr(n.range.begin, n.range.end - n.range.begin);
    if (p.excerpt.size() > 32) {
      p.excerpt = p.excerpt.substr(0, 29) + "...";
    }
  }
  if (n.id >= 0 && static_cast<size_t>(n.id) < slots.size()) {
    p.steps = slots[static_cast<size_t>(n.id)].steps;
    p.time_ns = slots[static_cast<size_t>(n.id)].time_ns;
  }
  out->push_back(std::move(p));
  for (const NodePtr& k : n.kids) {
    FillProfile(*k, depth + 1, expr, slots, out);
  }
}

}  // namespace

std::string QueryResult::Text() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (!ok) {
    out += error;
    out += '\n';
  }
  return out;
}

Session::Session(dbg::DebuggerBackend& backend, SessionOptions opts)
    : backend_(&backend), opts_(opts), ctx_(backend, opts.eval) {}

void Session::Remember(const std::string& expr) {
  if (opts_.max_history == 0) {
    return;
  }
  if (!history_.empty() && history_.back() == expr) {
    return;  // collapse immediate repeats
  }
  history_.push_back(expr);
  if (history_.size() > opts_.max_history) {
    history_.erase(history_.begin());
  }
}

uint64_t Session::DriveCore(const std::string& expr, QueryResult* result) {
  const bool collect = opts_.collect_stats || opts_.profile;
  obs::BackendInstr& instr = backend_->instr();
  instr.set_tracer(&tracer_);
  instr.set_enabled(collect || tracer_.enabled());
  ctx_.set_profiler(nullptr);
  // Fresh data-cache epoch: the target may have changed since the last query.
  ctx_.BeginQuery();

  obs::QueryStats stats;
  std::array<uint64_t, obs::kNumNarrowCalls> calls_before{};
  EvalCounters eval_before;
  BackendCounters backend_before;
  CacheCounters cache_before;
  if (collect) {
    instr.ResetHistograms();
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      calls_before[i] = instr.calls(static_cast<obs::NarrowCall>(i));
    }
    eval_before = ctx_.counters();
    backend_before = backend_->counters();
    cache_before = ctx_.access().counters();
    stats.query = expr;
  }

  const uint64_t t_query = obs::NowNs();
  obs::Span query_span(&tracer_, "query", expr);

  ParseResult parsed;
  {
    obs::Span span(&tracer_, "parse");
    Parser parser(expr, [this](const std::string& name) {
      return backend_->GetTargetTypedef(name) != nullptr;
    });
    parsed = parser.Parse();
  }
  stats.parse_ns = obs::NowNs() - t_query;

  const uint64_t t_prebind = obs::NowNs();
  if (opts_.eval.prebind) {
    obs::Span span(&tracer_, "prebind");
    PrebindNames(ctx_, *parsed.root);
  }
  stats.prebind_ns = obs::NowNs() - t_prebind;

  std::unique_ptr<EvalEngine> engine = MakeEngine(opts_.engine, ctx_);
  stats.engine = engine->name();
  if (opts_.profile) {
    profiler_.Begin(parsed.num_nodes);
    ctx_.set_profiler(&profiler_);
  }

  const uint64_t t_eval = obs::NowNs();
  uint64_t count = 0;
  {
    obs::Span span(&tracer_, "eval");
    engine->Start(*parsed.root, parsed.num_nodes);
    while (auto v = engine->Next()) {
      ++count;
      if (result != nullptr) {
        ctx_.counters().values_produced++;
        result->value_count++;
        ResultEntry entry;
        entry.value = FormatValue(ctx_, *v);
        if (!v->sym().empty()) {
          entry.sym = v->sym().Text();
        }
        result->entries.push_back(entry);
        result->lines.push_back(entry.sym.empty() || entry.sym == entry.value
                                    ? entry.value
                                    : entry.sym + " = " + entry.value);
        if (result->value_count >= opts_.max_output_values) {
          result->truncated = true;
          result->lines.push_back("...");
          break;
        }
      }
    }
  }
  stats.eval_ns = obs::NowNs() - t_eval;
  stats.total_ns = obs::NowNs() - t_query;
  if (opts_.profile) {
    profiler_.End();
    ctx_.set_profiler(nullptr);
  }

  if (collect) {
    stats.values = count;
    stats.eval = obs::CountersDelta(eval_before, ctx_.counters());
    stats.backend = obs::CountersDelta(backend_before, backend_->counters());
    stats.cache = obs::CountersDelta(cache_before, ctx_.access().counters());
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      stats.call_counts[i] = instr.calls(static_cast<obs::NarrowCall>(i)) - calls_before[i];
      stats.call_ns[i] = instr.latency_ns(static_cast<obs::NarrowCall>(i));
    }
    stats.read_bytes = instr.read_bytes();
    stats.write_bytes = instr.write_bytes();
    if (opts_.profile) {
      stats.profiled_steps = profiler_.total_steps();
      FillProfile(*parsed.root, 0, expr, profiler_.slots(), &stats.nodes);
      const std::vector<obs::NodeProfiler::Slot>& slots = profiler_.slots();
      if (!slots.empty() && slots.back().steps > 0) {
        obs::QueryStats::NodeProfile p;
        p.node_id = -1;
        p.op = "(unattributed)";
        p.steps = slots.back().steps;
        p.time_ns = slots.back().time_ns;
        stats.nodes.push_back(std::move(p));
      }
    }
    last_stats_ = stats;
    if (result != nullptr) {
      result->stats = std::move(stats);
    }
  }
  return count;
}

QueryResult Session::Query(const std::string& expr) {
  QueryResult result;
  Remember(expr);
  ctx_.opts() = opts_.eval;  // pick up option changes between queries
  try {
    DriveCore(expr, &result);
  } catch (const DuelError& e) {
    result.ok = false;
    result.error = FormatError(e);
  }
  return result;
}

uint64_t Session::Drive(const std::string& expr) {
  ctx_.opts() = opts_.eval;
  return DriveCore(expr, nullptr);
}

}  // namespace duel
