#include "src/duel/session.h"

#include <array>
#include <cstdlib>

#include "src/duel/lexer.h"
#include "src/duel/output.h"
#include "src/duel/sema.h"

namespace duel {

namespace {

// Pairs profiler slots with the parsed tree, preorder, clipping each node's
// source excerpt for the heat view.
void FillProfile(const Node& n, int depth, const std::string& expr,
                 const std::vector<obs::NodeProfiler::Slot>& slots,
                 std::vector<obs::QueryStats::NodeProfile>* out) {
  obs::QueryStats::NodeProfile p;
  p.node_id = n.id;
  p.depth = depth;
  p.op = OpName(n.op);
  if (!n.range.empty() && n.range.end <= expr.size()) {
    p.excerpt = expr.substr(n.range.begin, n.range.end - n.range.begin);
    if (p.excerpt.size() > 32) {
      p.excerpt = p.excerpt.substr(0, 29) + "...";
    }
  }
  if (n.id >= 0 && static_cast<size_t>(n.id) < slots.size()) {
    p.steps = slots[static_cast<size_t>(n.id)].steps;
    p.time_ns = slots[static_cast<size_t>(n.id)].time_ns;
  }
  out->push_back(std::move(p));
  for (const NodePtr& k : n.kids) {
    FillProfile(*k, depth + 1, expr, slots, out);
  }
}

// The options that change what a compiled artifact contains: folded values
// capture their symbolic text (sym_mode), and the analyze stage binds names
// only under prebind. Everything else affects execution, not compilation.
uint64_t PlanFingerprint(const EvalOptions& o) {
  return (static_cast<uint64_t>(o.sym_mode) << 1) | (o.prebind ? 1u : 0u);
}

// RAII: the context's annotation pointer must never outlive the execute
// stage that attached it (the plan may be evicted between queries).
class ScopedAnnotations {
 public:
  ScopedAnnotations(EvalContext& ctx, const Annotations* notes) : ctx_(&ctx) {
    ctx_->set_annotations(notes);
  }
  ~ScopedAnnotations() { ctx_->set_annotations(nullptr); }
  ScopedAnnotations(const ScopedAnnotations&) = delete;
  ScopedAnnotations& operator=(const ScopedAnnotations&) = delete;

 private:
  EvalContext* ctx_;
};

}  // namespace

std::string QueryResult::Text() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (!ok) {
    out += error;
    out += '\n';
  }
  return out;
}

Session::Session(dbg::DebuggerBackend& backend, SessionOptions opts)
    : backend_(&backend),
      opts_(opts),
      ctx_(backend, opts.eval),
      plan_cache_(opts.plan_cache_capacity) {
  // The CI ablation switch: DUEL_PLAN_CACHE=off runs every suite with the
  // staged pipeline rebuilt per query (mirroring the data-cache ablation).
  if (const char* env = std::getenv("DUEL_PLAN_CACHE"); env != nullptr) {
    std::string v(env);
    if (v == "off" || v == "0" || v == "false") {
      opts_.plan_cache = false;
    } else if (v == "on" || v == "1") {
      opts_.plan_cache = true;
    }
  }
}

void Session::Remember(const std::string& expr) {
  if (opts_.max_history == 0) {
    return;
  }
  if (!history_.empty() && history_.back() == expr) {
    return;  // collapse immediate repeats
  }
  history_.push_back(expr);
  if (history_.size() > opts_.max_history) {
    history_.erase(history_.begin());
  }
}

std::unique_ptr<CompiledQuery> Session::BuildPlan(const std::string& expr, uint64_t fingerprint) {
  auto plan = std::make_unique<CompiledQuery>();
  plan->text = expr;
  plan->fingerprint = fingerprint;

  const uint64_t t_lex = obs::NowNs();
  {
    obs::Span span(&tracer_, "lex");
    plan->tokens = Lexer(plan->text).LexAll();
  }
  const uint64_t t_parse = obs::NowNs();
  plan->lex_ns = t_parse - t_lex;
  {
    obs::Span span(&tracer_, "parse");
    Parser parser(plan->tokens, [this](const std::string& name) {
      return backend_->GetTargetTypedef(name) != nullptr;
    });
    plan->parsed = parser.Parse();
  }
  const uint64_t t_sema = obs::NowNs();
  plan->parse_ns = t_sema - t_parse;
  {
    obs::Span span(&tracer_, "sema");
    plan->notes = Analyze(ctx_, *plan->parsed.root, plan->parsed.num_nodes);
  }
  plan->sema_ns = obs::NowNs() - t_sema;

  plan->symbol_epoch = backend_->SymbolEpoch();
  plan->mutation_epoch = ctx_.access().mutation_epoch();
  plan->alias_version = ctx_.aliases().version();
  return plan;
}

bool Session::PlanIsValid(CompiledQuery& plan) {
  if (plan.symbol_epoch != backend_->SymbolEpoch()) {
    return false;  // frame change / symbol-table mutation: bindings stale
  }
  if (plan.mutation_epoch != ctx_.access().mutation_epoch()) {
    return false;  // a target call/alloc happened since the plan last ran
  }
  if (plan.alias_version != ctx_.aliases().version()) {
    // Only the plan's own compile-time name bindings are alias-sensitive; a
    // plan with none (prebind off, or nothing bound) survives alias churn.
    for (const std::string& name : plan.notes.bound_names) {
      if (ctx_.aliases().Has(name)) {
        return false;  // a session alias now shadows a prebound name
      }
    }
    plan.alias_version = ctx_.aliases().version();  // fast path for next time
  }
  return true;
}

uint64_t Session::DriveCore(const std::string& expr, QueryResult* result) {
  const bool collect = opts_.collect_stats || opts_.profile;
  obs::BackendInstr& instr = backend_->instr();
  instr.set_tracer(&tracer_);
  instr.set_enabled(collect || tracer_.enabled());
  ctx_.set_profiler(nullptr);
  // Fresh data-cache epoch: the target may have changed since the last query.
  ctx_.BeginQuery();

  obs::QueryStats stats;
  std::array<uint64_t, obs::kNumNarrowCalls> calls_before{};
  EvalCounters eval_before;
  BackendCounters backend_before;
  CacheCounters cache_before;
  PlanCacheCounters plan_before;
  if (collect) {
    instr.ResetHistograms();
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      calls_before[i] = instr.calls(static_cast<obs::NarrowCall>(i));
    }
    eval_before = ctx_.counters();
    backend_before = backend_->counters();
    cache_before = ctx_.access().counters();
    plan_before = plan_cache_.counters();
    stats.query = expr;
  }

  const uint64_t t_query = obs::NowNs();
  obs::Span query_span(&tracer_, "query", expr);

  // --- plan: reuse a cached CompiledQuery, or build one --------------------
  const uint64_t fingerprint = PlanFingerprint(opts_.eval);
  const bool cache_on = opts_.plan_cache && plan_cache_.capacity() > 0;
  CompiledQuery* plan = nullptr;
  std::unique_ptr<CompiledQuery> uncached;  // owns the plan when cache is off
  if (cache_on) {
    PlanCacheCounters& pc = plan_cache_.counters();
    pc.lookups++;
    plan = plan_cache_.Find(expr, fingerprint);
    if (plan != nullptr && !PlanIsValid(*plan)) {
      plan_cache_.Erase(expr, fingerprint);
      pc.invalidations++;
      plan = nullptr;
    }
    if (plan != nullptr) {
      pc.hits++;
      plan->hits++;
      stats.plan_hit = true;
    } else {
      pc.misses++;
    }
  }
  if (plan == nullptr) {
    std::unique_ptr<CompiledQuery> built = BuildPlan(expr, fingerprint);
    stats.lex_ns = built->lex_ns;
    stats.parse_ns = built->parse_ns;
    stats.sema_ns = built->sema_ns;
    if (cache_on) {
      plan = plan_cache_.Insert(std::move(built));
    } else {
      uncached = std::move(built);
      plan = uncached.get();
    }
  }

  // --- execute: both engines consume the annotated AST ---------------------
  const Node& root = *plan->parsed.root;
  ScopedAnnotations scoped_notes(ctx_, &plan->notes);
  std::unique_ptr<EvalEngine> engine = MakeEngine(opts_.engine, ctx_);
  stats.engine = engine->name();
  if (opts_.profile) {
    profiler_.Begin(plan->parsed.num_nodes);
    ctx_.set_profiler(&profiler_);
  }

  const uint64_t t_eval = obs::NowNs();
  uint64_t count = 0;
  {
    obs::Span span(&tracer_, "eval");
    engine->Start(root, plan->parsed.num_nodes);
    while (auto v = engine->Next()) {
      ++count;
      if (result != nullptr) {
        ctx_.counters().values_produced++;
        result->value_count++;
        ResultEntry entry;
        entry.value = FormatValue(ctx_, *v);
        if (!v->sym().empty()) {
          entry.sym = v->sym().Text();
        }
        result->entries.push_back(entry);
        result->lines.push_back(entry.sym.empty() || entry.sym == entry.value
                                    ? entry.value
                                    : entry.sym + " = " + entry.value);
        if (result->value_count >= opts_.max_output_values) {
          result->truncated = true;
          result->lines.push_back("...");
          break;
        }
      }
    }
  }
  stats.eval_ns = obs::NowNs() - t_eval;
  stats.total_ns = obs::NowNs() - t_query;
  if (opts_.profile) {
    profiler_.End();
    ctx_.set_profiler(nullptr);
  }

  if (cache_on) {
    // The run completed: refresh the epochs this query moved itself. Sound
    // because nothing the plan stores reads target memory, and a query's
    // own alias definitions are never prebound — so a plan can only be
    // invalidated by events outside its own runs.
    plan->mutation_epoch = ctx_.access().mutation_epoch();
    plan->alias_version = ctx_.aliases().version();
  }

  if (collect) {
    stats.values = count;
    stats.eval = obs::CountersDelta(eval_before, ctx_.counters());
    stats.backend = obs::CountersDelta(backend_before, backend_->counters());
    stats.cache = obs::CountersDelta(cache_before, ctx_.access().counters());
    stats.plan = obs::CountersDelta(plan_before, plan_cache_.counters());
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      stats.call_counts[i] = instr.calls(static_cast<obs::NarrowCall>(i)) - calls_before[i];
      stats.call_ns[i] = instr.latency_ns(static_cast<obs::NarrowCall>(i));
    }
    stats.read_bytes = instr.read_bytes();
    stats.write_bytes = instr.write_bytes();
    if (opts_.profile) {
      stats.profiled_steps = profiler_.total_steps();
      FillProfile(root, 0, expr, profiler_.slots(), &stats.nodes);
      const std::vector<obs::NodeProfiler::Slot>& slots = profiler_.slots();
      if (!slots.empty() && slots.back().steps > 0) {
        obs::QueryStats::NodeProfile p;
        p.node_id = -1;
        p.op = "(unattributed)";
        p.steps = slots.back().steps;
        p.time_ns = slots.back().time_ns;
        stats.nodes.push_back(std::move(p));
      }
    }
    last_stats_ = stats;
    if (result != nullptr) {
      result->stats = std::move(stats);
    }
  }
  return count;
}

QueryResult Session::Query(const std::string& expr) {
  QueryResult result;
  Remember(expr);
  ctx_.opts() = opts_.eval;  // pick up option changes between queries
  try {
    DriveCore(expr, &result);
  } catch (const DuelError& e) {
    result.ok = false;
    result.error = FormatError(e);
  }
  return result;
}

uint64_t Session::Drive(const std::string& expr) {
  ctx_.opts() = opts_.eval;
  return DriveCore(expr, nullptr);
}

}  // namespace duel
