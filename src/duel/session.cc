#include "src/duel/session.h"

#include <array>
#include <cstdlib>

#include "src/duel/check.h"
#include "src/duel/lexer.h"
#include "src/duel/output.h"
#include "src/duel/sema.h"

namespace duel {

namespace {

// Pairs profiler slots with the parsed tree, preorder, clipping each node's
// source excerpt for the heat view.
void FillProfile(const Node& n, int depth, const std::string& expr,
                 const std::vector<obs::NodeProfiler::Slot>& slots,
                 std::vector<obs::QueryStats::NodeProfile>* out) {
  obs::QueryStats::NodeProfile p;
  p.node_id = n.id;
  p.depth = depth;
  p.op = OpName(n.op);
  if (!n.range.empty() && n.range.end <= expr.size()) {
    p.excerpt = expr.substr(n.range.begin, n.range.end - n.range.begin);
    if (p.excerpt.size() > 32) {
      p.excerpt = p.excerpt.substr(0, 29) + "...";
    }
  }
  if (n.id >= 0 && static_cast<size_t>(n.id) < slots.size()) {
    p.steps = slots[static_cast<size_t>(n.id)].steps;
    p.time_ns = slots[static_cast<size_t>(n.id)].time_ns;
  }
  out->push_back(std::move(p));
  for (const NodePtr& k : n.kids) {
    FillProfile(*k, depth + 1, expr, slots, out);
  }
}

// The options that change what a compiled artifact contains: folded values
// capture their symbolic text (sym_mode), the analyze stage binds names only
// under prebind, and the check stage's unbounded-walk warning depends on
// cycle_detect. Everything else affects execution, not compilation.
uint64_t PlanFingerprint(const EvalOptions& o) {
  return (static_cast<uint64_t>(o.sym_mode) << 2) | (o.prebind ? 2u : 0u) |
         (o.cycle_detect ? 1u : 0u);
}

// RAII: arms the session governor for one execute stage (when the session
// option is on and any limit is set) and disarms on every exit path, so a
// cancel that lands between queries cannot leak into the next one.
class ScopedGovernor {
 public:
  ScopedGovernor(ExecGovernor& g, const GovernorLimits& limits, bool enabled)
      : g_(enabled && limits.any() ? &g : nullptr) {
    if (g_ != nullptr) {
      g_->Arm(limits);
    }
  }
  ~ScopedGovernor() {
    if (g_ != nullptr) {
      g_->Disarm();
    }
  }
  ScopedGovernor(const ScopedGovernor&) = delete;
  ScopedGovernor& operator=(const ScopedGovernor&) = delete;

 private:
  ExecGovernor* g_;
};

// RAII: the context's annotation pointer must never outlive the execute
// stage that attached it (the plan may be evicted between queries).
class ScopedAnnotations {
 public:
  ScopedAnnotations(EvalContext& ctx, const Annotations* notes) : ctx_(&ctx) {
    ctx_->set_annotations(notes);
  }
  ~ScopedAnnotations() { ctx_->set_annotations(nullptr); }
  ScopedAnnotations(const ScopedAnnotations&) = delete;
  ScopedAnnotations& operator=(const ScopedAnnotations&) = delete;

 private:
  EvalContext* ctx_;
};

}  // namespace

std::string QueryResult::Text() const {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  if (!ok) {
    out += error;
    out += '\n';
  }
  return out;
}

Session::Session(dbg::DebuggerBackend& backend, SessionOptions opts)
    : backend_(&backend),
      opts_(opts),
      ctx_(backend, opts.eval),
      plan_cache_(opts.plan_cache_capacity) {
  // The governor stays attached for the session's lifetime; it only costs
  // anything while armed (DriveCore arms it per query when limits are set).
  ctx_.set_governor(&governor_);
  ctx_.access().set_governor(&governor_);
  // The CI ablation switch: DUEL_PLAN_CACHE=off runs every suite with the
  // staged pipeline rebuilt per query (mirroring the data-cache ablation).
  if (const char* env = std::getenv("DUEL_PLAN_CACHE"); env != nullptr) {
    std::string v(env);
    if (v == "off" || v == "0" || v == "false") {
      opts_.plan_cache = false;
    } else if (v == "on" || v == "1") {
      opts_.plan_cache = true;
    }
  }
  // Escape hatch / ablation: DUEL_CHECK=off evaluates every query without
  // the static gate (verdicts are still computed and cached with the plan).
  if (const char* env = std::getenv("DUEL_CHECK"); env != nullptr) {
    std::string v(env);
    if (v == "off" || v == "0" || v == "false") {
      opts_.check = false;
    } else if (v == "on" || v == "1") {
      opts_.check = true;
    }
  }
  // Ablation / escape hatch: DUEL_GOVERNOR=off never arms the per-query
  // governor, so queries run with deadlines/budgets/cancellation disabled
  // (the serve suite pins the option back on where it tests the governor).
  if (const char* env = std::getenv("DUEL_GOVERNOR"); env != nullptr) {
    std::string v(env);
    if (v == "off" || v == "0" || v == "false") {
      opts_.governor = false;
    } else if (v == "on" || v == "1") {
      opts_.governor = true;
    }
  }
}

void Session::Remember(const std::string& expr) {
  if (opts_.max_history == 0) {
    return;
  }
  if (!history_.empty() && history_.back() == expr) {
    return;  // collapse immediate repeats
  }
  history_.push_back(expr);
  if (history_.size() > opts_.max_history) {
    history_.erase(history_.begin());
  }
}

std::unique_ptr<CompiledQuery> Session::BuildPlan(const std::string& expr, uint64_t fingerprint) {
  auto plan = std::make_unique<CompiledQuery>();
  plan->text = expr;
  plan->fingerprint = fingerprint;

  const uint64_t t_lex = obs::NowNs();
  {
    obs::Span span(&tracer_, "lex");
    plan->tokens = Lexer(plan->text).LexAll();
  }
  const uint64_t t_parse = obs::NowNs();
  plan->lex_ns = t_parse - t_lex;
  {
    obs::Span span(&tracer_, "parse");
    Parser parser(plan->tokens, [this](const std::string& name) {
      return backend_->GetTargetTypedef(name) != nullptr;
    });
    plan->parsed = parser.Parse();
  }
  const uint64_t t_sema = obs::NowNs();
  plan->parse_ns = t_sema - t_parse;
  {
    obs::Span span(&tracer_, "sema");
    plan->notes = Analyze(ctx_, *plan->parsed.root, plan->parsed.num_nodes);
  }
  const uint64_t t_check = obs::NowNs();
  plan->sema_ns = t_check - t_sema;
  {
    // The check stage always runs at build time — the verdict is part of the
    // compiled artifact (warm hits replay it for free); SessionOptions::check
    // only decides whether DriveCore enforces it.
    obs::Span span(&tracer_, "check");
    plan->check = CheckQuery(ctx_, *plan->parsed.root, &plan->notes);
  }
  plan->check_ns = obs::NowNs() - t_check;

  plan->symbol_epoch = backend_->SymbolEpoch();
  plan->mutation_epoch = ctx_.access().mutation_epoch();
  plan->alias_version = ctx_.aliases().version();
  return plan;
}

bool Session::PlanIsValid(CompiledQuery& plan) {
  if (plan.symbol_epoch != backend_->SymbolEpoch()) {
    return false;  // frame change / symbol-table mutation: bindings stale
  }
  if (plan.mutation_epoch != ctx_.access().mutation_epoch()) {
    return false;  // a target call/alloc happened since the plan last ran
  }
  if (plan.alias_version != ctx_.aliases().version()) {
    // Only the plan's own compile-time name bindings are alias-sensitive; a
    // plan with none (prebind off, or nothing bound) survives alias churn.
    for (const std::string& name : plan.notes.bound_names) {
      if (ctx_.aliases().Has(name)) {
        return false;  // a session alias now shadows a prebound name
      }
    }
    // The check verdict resolved these names through the alias table or the
    // target symbols. An alias appearing over one changes resolution; one the
    // verdict read may have been rebound or removed since (the version moved,
    // and we cannot tell which alias did) — both void the verdict.
    for (const auto& [name, was_aliased] : plan.check.names) {
      if (was_aliased || ctx_.aliases().Has(name)) {
        return false;
      }
    }
    plan.alias_version = ctx_.aliases().version();  // fast path for next time
  }
  return true;
}

CompiledQuery* Session::AcquirePlan(const std::string& expr,
                                    std::unique_ptr<CompiledQuery>& uncached,
                                    obs::QueryStats* stats) {
  const uint64_t fingerprint = PlanFingerprint(opts_.eval);
  const bool cache_on = opts_.plan_cache && plan_cache_.capacity() > 0;
  CompiledQuery* plan = nullptr;
  if (cache_on) {
    PlanCacheCounters& pc = plan_cache_.counters();
    pc.lookups++;
    plan = plan_cache_.Find(expr, fingerprint);
    if (plan != nullptr && !PlanIsValid(*plan)) {
      plan_cache_.Erase(expr, fingerprint);
      pc.invalidations++;
      plan = nullptr;
    }
    if (plan != nullptr) {
      pc.hits++;
      plan->hits++;
      if (stats != nullptr) {
        stats->plan_hit = true;
      }
    } else {
      pc.misses++;
    }
  }
  if (plan == nullptr) {
    std::unique_ptr<CompiledQuery> built = BuildPlan(expr, fingerprint);
    if (stats != nullptr) {
      stats->lex_ns = built->lex_ns;
      stats->parse_ns = built->parse_ns;
      stats->sema_ns = built->sema_ns;
      stats->check_ns = built->check_ns;
    }
    if (cache_on) {
      plan = plan_cache_.Insert(std::move(built));
    } else {
      uncached = std::move(built);
      plan = uncached.get();
    }
  }
  return plan;
}

uint64_t Session::DriveCore(const std::string& expr, QueryResult* result) {
  const bool collect = opts_.collect_stats || opts_.profile;
  obs::BackendInstr& instr = backend_->instr();
  instr.set_tracer(&tracer_);
  instr.set_enabled(collect || tracer_.enabled());
  ctx_.set_profiler(nullptr);
  // Fresh symbol/type/frame view for the front half (parse probes typedefs,
  // the check stage resolves names). Purely a client-side cache drop — the
  // full data-path epoch (ctx_.BeginQuery) starts only after the check gate
  // passes, so rejected queries never touch target data.
  backend_->BeginQueryEpoch();

  obs::QueryStats stats;
  std::array<uint64_t, obs::kNumNarrowCalls> calls_before{};
  EvalCounters eval_before;
  BackendCounters backend_before;
  CacheCounters cache_before;
  PlanCacheCounters plan_before;
  if (collect) {
    instr.ResetHistograms();
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      calls_before[i] = instr.calls(static_cast<obs::NarrowCall>(i));
    }
    eval_before = ctx_.counters();
    backend_before = backend_->counters();
    cache_before = ctx_.access().counters();
    plan_before = plan_cache_.counters();
    stats.query = expr;
  }

  const uint64_t t_query = obs::NowNs();
  obs::Span query_span(&tracer_, "query", expr);

  // --- plan: reuse a cached CompiledQuery, or build one --------------------
  const bool cache_on = opts_.plan_cache && plan_cache_.capacity() > 0;
  std::unique_ptr<CompiledQuery> uncached;  // owns the plan when cache is off
  CompiledQuery* plan = AcquirePlan(expr, uncached, &stats);

  // --- check gate: reject doomed queries before touching the target --------
  stats.diags_errors = plan->check.num_errors();
  stats.diags_warnings = plan->check.num_warnings();
  if (result != nullptr) {
    for (const Diag& d : plan->check.diags) {
      if (d.severity == Severity::kError || opts_.warn != WarnMode::kOff) {
        result->diags.push_back(d);
      }
    }
  }
  if (opts_.check) {
    if (plan->check.HasErrors()) {
      throw plan->check.FirstError();
    }
    if (opts_.warn == WarnMode::kError && !plan->check.diags.empty()) {
      const Diag& d = plan->check.diags.front();
      throw DuelError(ErrorKind::kType, d.message + " [warnings are errors]", d.span);
    }
  }

  // Fresh data-cache epoch (data half only: the backend's client-side symbol
  // caches were already refreshed at the top of this query, and the checker's
  // lookups stay memoized into evaluation).
  ctx_.BeginQueryData();

  // --- execute: both engines consume the annotated AST ---------------------
  // The governor covers exactly the execute stage: compile-time work is
  // bounded by the text, and a budget trip mid-run must not leave the
  // governor armed for the next query.
  ScopedGovernor scoped_governor(governor_, opts_.governor_limits, opts_.governor);
  const Node& root = *plan->parsed.root;
  ScopedAnnotations scoped_notes(ctx_, &plan->notes);
  std::unique_ptr<EvalEngine> engine = MakeEngine(opts_.engine, ctx_);
  stats.engine = engine->name();
  if (opts_.profile) {
    profiler_.Begin(plan->parsed.num_nodes);
    ctx_.set_profiler(&profiler_);
  }

  const uint64_t t_eval = obs::NowNs();
  uint64_t count = 0;
  {
    obs::Span span(&tracer_, "eval");
    engine->Start(root, plan->parsed.num_nodes);
    while (auto v = engine->Next()) {
      ++count;
      if (result != nullptr) {
        ctx_.counters().values_produced++;
        result->value_count++;
        ResultEntry entry;
        entry.value = FormatValue(ctx_, *v);
        if (!v->sym().empty()) {
          entry.sym = v->sym().Text();
        }
        result->entries.push_back(entry);
        result->lines.push_back(entry.sym.empty() || entry.sym == entry.value
                                    ? entry.value
                                    : entry.sym + " = " + entry.value);
        if (result->value_count >= opts_.max_output_values) {
          result->truncated = true;
          result->lines.push_back("...");
          break;
        }
      }
    }
  }
  stats.eval_ns = obs::NowNs() - t_eval;
  stats.total_ns = obs::NowNs() - t_query;
  if (opts_.profile) {
    profiler_.End();
    ctx_.set_profiler(nullptr);
  }

  if (cache_on) {
    // The run completed: refresh the epochs this query moved itself. Sound
    // because nothing the plan stores reads target memory, and a query's
    // own alias definitions are never prebound — so a plan can only be
    // invalidated by events outside its own runs.
    plan->mutation_epoch = ctx_.access().mutation_epoch();
    plan->alias_version = ctx_.aliases().version();
  }

  if (collect) {
    stats.values = count;
    stats.eval = obs::CountersDelta(eval_before, ctx_.counters());
    stats.backend = obs::CountersDelta(backend_before, backend_->counters());
    stats.cache = obs::CountersDelta(cache_before, ctx_.access().counters());
    stats.plan = obs::CountersDelta(plan_before, plan_cache_.counters());
    for (size_t i = 0; i < obs::kNumNarrowCalls; ++i) {
      stats.call_counts[i] = instr.calls(static_cast<obs::NarrowCall>(i)) - calls_before[i];
      stats.call_ns[i] = instr.latency_ns(static_cast<obs::NarrowCall>(i));
    }
    stats.read_bytes = instr.read_bytes();
    stats.write_bytes = instr.write_bytes();
    if (opts_.profile) {
      stats.profiled_steps = profiler_.total_steps();
      FillProfile(root, 0, expr, profiler_.slots(), &stats.nodes);
      const std::vector<obs::NodeProfiler::Slot>& slots = profiler_.slots();
      if (!slots.empty() && slots.back().steps > 0) {
        obs::QueryStats::NodeProfile p;
        p.node_id = -1;
        p.op = "(unattributed)";
        p.steps = slots.back().steps;
        p.time_ns = slots.back().time_ns;
        stats.nodes.push_back(std::move(p));
      }
    }
    last_stats_ = stats;
    if (result != nullptr) {
      result->stats = std::move(stats);
    }
  }
  return count;
}

QueryResult Session::Query(const std::string& expr) {
  QueryResult result;
  Remember(expr);
  ctx_.opts() = opts_.eval;  // pick up option changes between queries
  try {
    DriveCore(expr, &result);
  } catch (const DuelError& e) {
    result.ok = false;
    result.error = FormatError(e);
    result.error_span = e.range();
    result.error_kind = e.kind();
    // Static and runtime errors alike point back into the query text: the
    // message line stays intact (and grep-stable), the caret lines follow.
    if (std::string caret = CaretBlock(expr, e.range()); !caret.empty()) {
      result.error += '\n' + caret;
    }
  }
  return result;
}

QueryResult Session::Check(const std::string& expr) {
  QueryResult result;
  ctx_.opts() = opts_.eval;
  backend_->BeginQueryEpoch();  // fresh symbol view, no data-path epoch
  try {
    std::unique_ptr<CompiledQuery> uncached;
    CompiledQuery* plan = AcquirePlan(expr, uncached, nullptr);
    result.diags = plan->check.diags;
    if (plan->check.HasErrors()) {
      result.ok = false;
      DuelError e = plan->check.FirstError();
      result.error = FormatError(e);
      result.error_span = e.range();
    }
  } catch (const DuelError& e) {  // lex / parse failures arrive as throws
    result.ok = false;
    result.error = FormatError(e);
    result.error_span = e.range();
    result.diags.push_back({Severity::kError,
                            e.kind() == ErrorKind::kLex ? "lex" : "syntax",
                            e.range(), e.what(), ""});
  }
  return result;
}

const CompiledQuery* Session::Prepare(const std::string& expr) {
  ctx_.opts() = opts_.eval;
  backend_->BeginQueryEpoch();  // fresh symbol view, no data-path epoch
  try {
    std::unique_ptr<CompiledQuery> uncached;
    CompiledQuery* plan = AcquirePlan(expr, uncached, nullptr);
    if (uncached != nullptr) {
      prepared_ = std::move(uncached);  // cache off: keep the plan alive
    }
    return plan;
  } catch (const DuelError&) {
    return nullptr;  // lex/parse failure; Query on the same text reproduces it
  }
}

uint64_t Session::Drive(const std::string& expr) {
  ctx_.opts() = opts_.eval;
  return DriveCore(expr, nullptr);
}

}  // namespace duel
