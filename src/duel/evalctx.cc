#include "src/duel/evalctx.h"

#include <cstring>

#include "src/support/strings.h"

namespace duel {

using target::TypeKind;

void EvalContext::Step(int node_id) {
  if (profiler_ != nullptr) {
    profiler_->OnStep(node_id);
  }
  if (governor_ != nullptr) {
    governor_->ChargeStep();
  }
  if (++counters_.eval_steps > opts_.max_steps) {
    throw DuelError(ErrorKind::kLimit,
                    StrPrintf("evaluation exceeded %llu steps (unbounded generator?)",
                              static_cast<unsigned long long>(opts_.max_steps)));
  }
}

Value EvalContext::Rvalue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kRValue:
    case Value::Kind::kFrame:
      return v;
    case Value::Kind::kLValue:
      break;
  }
  const TypeRef& t = v.type();
  if (t->kind() == TypeKind::kArray) {
    // Array-to-pointer decay.
    return Value::Pointer(types().PointerTo(t->target()), v.addr(), v.sym());
  }
  if (t->kind() == TypeKind::kFunction) {
    return Value::Pointer(types().PointerTo(t), v.addr(), v.sym());
  }
  if (v.is_bitfield()) {
    // Load the storage unit and extract the field.
    uint64_t unit = 0;
    size_t n = t->size();
    try {
      access_.GetBytes(v.addr(), &unit, n);
    } catch (MemoryFault& mf) {
      if (mf.symbolic_context().empty() && !v.sym().empty()) {
        mf.set_symbolic_context(v.sym().Text());
      }
      throw;
    }
    uint64_t raw = (unit >> v.bit_offset()) & ((v.bit_width() >= 64)
                                                   ? ~0ull
                                                   : ((1ull << v.bit_width()) - 1));
    int64_t val;
    if (t->IsSignedInteger() && v.bit_width() < 64 &&
        (raw & (1ull << (v.bit_width() - 1))) != 0) {
      val = static_cast<int64_t>(raw | ~((1ull << v.bit_width()) - 1));
    } else {
      val = static_cast<int64_t>(raw);
    }
    return Value::Int(t, val, v.sym());
  }
  std::vector<uint8_t> buf(t->size());
  try {
    access_.GetBytes(v.addr(), buf.data(), buf.size());
  } catch (MemoryFault& mf) {
    // Attach the offending operand's symbolic value, for the paper-style
    // "Illegal memory reference in x of x->y: x = lvalue 0x..." report.
    if (mf.symbolic_context().empty() && !v.sym().empty()) {
      mf.set_symbolic_context(v.sym().Text());
    }
    throw;
  }
  return Value::RV(t, buf.data(), buf.size(), v.sym());
}

namespace {

uint64_t RawBitsOf(std::span<const uint8_t> bytes) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data(), std::min<size_t>(bytes.size(), 8));
  return v;
}

}  // namespace

int64_t EvalContext::ToI64(const Value& value) {
  Value v = Rvalue(value);
  const TypeRef& t = v.type();
  if (t == nullptr) {
    throw DuelError(ErrorKind::kType, "value has no type");
  }
  if (t->IsFloating()) {
    return static_cast<int64_t>(ToF64(v));
  }
  if (!t->IsInteger() && t->kind() != TypeKind::kEnum && t->kind() != TypeKind::kPointer) {
    throw DuelError(ErrorKind::kType, "cannot convert " + t->ToString() + " to an integer");
  }
  uint64_t bits = RawBitsOf(v.bytes());
  size_t size = t->size();
  if ((t->IsSignedInteger() || t->kind() == TypeKind::kEnum) && size < 8) {
    uint64_t sign_bit = 1ull << (size * 8 - 1);
    if (bits & sign_bit) {
      bits |= ~((sign_bit << 1) - 1);
    }
  }
  return static_cast<int64_t>(bits);
}

uint64_t EvalContext::ToU64(const Value& value) {
  Value v = Rvalue(value);
  if (v.type()->IsFloating()) {
    return static_cast<uint64_t>(ToF64(v));
  }
  return static_cast<uint64_t>(ToI64(v));
}

double EvalContext::ToF64(const Value& value) {
  Value v = Rvalue(value);
  const TypeRef& t = v.type();
  if (t->kind() == TypeKind::kFloat) {
    float f;
    std::memcpy(&f, v.bytes().data(), sizeof(f));
    return f;
  }
  if (t->kind() == TypeKind::kDouble) {
    double d;
    std::memcpy(&d, v.bytes().data(), sizeof(d));
    return d;
  }
  if (t->IsUnsignedInteger()) {
    return static_cast<double>(static_cast<uint64_t>(ToI64(v)));
  }
  return static_cast<double>(ToI64(v));
}

Addr EvalContext::ToPtr(const Value& value) {
  Value v = Rvalue(value);
  if (v.type()->kind() != TypeKind::kPointer) {
    throw DuelError(ErrorKind::kType, "expected a pointer, got " + v.type()->ToString());
  }
  return RawBitsOf(v.bytes());
}

bool EvalContext::Truthy(const Value& value) {
  Value v = Rvalue(value);
  const TypeRef& t = v.type();
  if (t->IsFloating()) {
    return ToF64(v) != 0.0;
  }
  if (t->IsInteger() || t->kind() == TypeKind::kEnum || t->kind() == TypeKind::kPointer) {
    for (uint8_t b : v.bytes()) {
      if (b != 0) {
        return true;
      }
    }
    return false;
  }
  throw DuelError(ErrorKind::kType, "value of type " + t->ToString() + " is not a condition");
}

void EvalContext::Store(const Value& lv, const Value& rv) {
  if (!lv.is_lvalue()) {
    throw DuelError(ErrorKind::kType, "assignment requires an lvalue" +
                                          (lv.sym().empty() ? "" : ": " + lv.sym().Text()));
  }
  const TypeRef& t = lv.type();
  if (lv.is_bitfield()) {
    uint64_t unit = 0;
    size_t n = t->size();
    access_.GetBytes(lv.addr(), &unit, n);
    uint64_t mask = (lv.bit_width() >= 64 ? ~0ull : (1ull << lv.bit_width()) - 1)
                    << lv.bit_offset();
    uint64_t nv = (static_cast<uint64_t>(ToI64(rv)) << lv.bit_offset()) & mask;
    unit = (unit & ~mask) | nv;
    access_.PutBytes(lv.addr(), &unit, n);
    return;
  }
  // Scalar conversions; records require matching types.
  if (t->IsRecord() || t->kind() == TypeKind::kArray) {
    Value v = Rvalue(rv);
    if (!target::TypeEquals(t, v.type())) {
      throw DuelError(ErrorKind::kType, "cannot assign " + v.type()->ToString() + " to " +
                                            t->ToString());
    }
    access_.PutBytes(lv.addr(), v.bytes().data(), v.bytes().size());
    return;
  }
  uint8_t buf[8];
  size_t n = t->size();
  if (t->IsFloating()) {
    if (t->kind() == TypeKind::kFloat) {
      float f = static_cast<float>(ToF64(rv));
      std::memcpy(buf, &f, sizeof(f));
    } else {
      double d = ToF64(rv);
      std::memcpy(buf, &d, sizeof(d));
    }
  } else if (t->IsInteger() || t->kind() == TypeKind::kEnum || t->kind() == TypeKind::kPointer) {
    int64_t x = t->kind() == TypeKind::kPointer ? static_cast<int64_t>(ToU64(rv)) : ToI64(rv);
    std::memcpy(buf, &x, 8);
  } else {
    throw DuelError(ErrorKind::kType, "cannot assign to " + t->ToString());
  }
  access_.PutBytes(lv.addr(), buf, n);
}

std::optional<Value> EvalContext::LookupInScope(const WithScope& scope, const std::string& name) {
  const Value& s = scope.subject;
  if (s.is_frame()) {
    for (const dbg::FrameVariable& v : backend_->FrameLocals(s.frame_index())) {
      if (v.name == name) {
        return Value::LV(v.type, v.addr, MakeSym(name));
      }
    }
    return std::nullopt;
  }
  // Resolve the record base: a record lvalue/rvalue, or a pointer to record.
  TypeRef t = s.type();
  if (t == nullptr) {
    return std::nullopt;
  }
  if (t->kind() == TypeKind::kPointer && t->target()->IsRecord()) {
    const TypeRef& rec = t->target();
    const target::Member* m = rec->FindMember(name);
    if (m == nullptr) {
      return std::nullopt;
    }
    Addr base = ToPtr(s);  // loads the pointer; faults surface at *use* below
    if (base == 0) {
      throw MemoryFault(0, rec->size(), "null pointer dereference");
    }
    Addr maddr = base + m->offset;
    if (m->is_bitfield) {
      return Value::BitfieldLV(m->type, maddr, m->bit_offset, m->bit_width, MakeSym(name));
    }
    return Value::LV(m->type, maddr, MakeSym(name));
  }
  if (t->IsRecord()) {
    const target::Member* m = t->FindMember(name);
    if (m == nullptr) {
      return std::nullopt;
    }
    if (s.is_lvalue()) {
      Addr maddr = s.addr() + m->offset;
      if (m->is_bitfield) {
        return Value::BitfieldLV(m->type, maddr, m->bit_offset, m->bit_width, MakeSym(name));
      }
      return Value::LV(m->type, maddr, MakeSym(name));
    }
    // Record rvalue: slice the member out of the byte image.
    if (m->is_bitfield) {
      uint64_t unit = 0;
      std::memcpy(&unit, s.bytes().data() + m->offset,
                  std::min<size_t>(m->type->size(), 8));
      uint64_t raw = (unit >> m->bit_offset) &
                     ((m->bit_width >= 64) ? ~0ull : ((1ull << m->bit_width) - 1));
      return Value::Int(m->type, static_cast<int64_t>(raw), MakeSym(name));
    }
    return Value::RV(m->type, s.bytes().data() + m->offset, m->type->size(), MakeSym(name));
  }
  return std::nullopt;
}

std::optional<Value> EvalContext::LookupName(const std::string& name) {
  counters_.name_lookups++;
  // 1. with-scopes, innermost first.
  for (size_t i = 0; i < scopes_.size(); ++i) {
    if (auto v = LookupInScope(scopes_.At(i), name)) {
      return v;
    }
  }
  // 2. aliases.
  if (const Value* a = aliases_.Find(name)) {
    Value v = *a;
    v.set_sym(MakeSym(name));
    return v;
  }
  // 3. target variables (current frame, then globals — the backend applies
  //    debugger scope rules).
  std::optional<dbg::VariableInfo> info;
  if (opts_.lookup_cache) {
    auto it = lookup_cache_.find(name);
    if (it != lookup_cache_.end()) {
      info = it->second;
    } else {
      info = backend_->GetTargetVariable(name);
      lookup_cache_[name] = info;
    }
  } else {
    info = backend_->GetTargetVariable(name);
  }
  if (info.has_value()) {
    return Value::LV(info->type, info->addr, MakeSym(name));
  }
  // 4. target functions.
  if (auto fn = backend_->GetTargetFunction(name)) {
    return Value::LV(fn->type, fn->addr, MakeSym(name));
  }
  // 5. enumeration constants (BLUE resolves to its enum's value).
  if (auto e = backend_->GetTargetEnumerator(name)) {
    return Value::Int(e->type, e->value, MakeSym(name));
  }
  return std::nullopt;
}

Value EvalContext::Underscore(SourceRange range) {
  const WithScope* top = scopes_.Top();
  if (top == nullptr) {
    throw DuelError(ErrorKind::kName, "'_' used outside of a with scope ('.', '->', '-->')",
                    range);
  }
  return top->subject;
}

Value EvalContext::MemberAccess(const Value& subject, const std::string& name, bool deref,
                                SourceRange range) {
  WithScope scope{subject, deref};
  if (auto v = LookupInScope(scope, name)) {
    return *v;
  }
  TypeRef t = subject.type();
  throw DuelError(ErrorKind::kType,
                  "no member '" + name + "' in " + (t ? t->ToString() : "<frame>"), range);
}

TypeRef EvalContext::ResolveTypeSpec(const TypeSpec& spec, SourceRange range) {
  TypeRef base;
  switch (spec.base) {
    case TypeSpec::Base::kVoid: base = types().Void(); break;
    case TypeSpec::Base::kBool: base = types().Bool(); break;
    case TypeSpec::Base::kChar: base = types().Char(); break;
    case TypeSpec::Base::kSChar: base = types().SChar(); break;
    case TypeSpec::Base::kUChar: base = types().UChar(); break;
    case TypeSpec::Base::kShort: base = types().Short(); break;
    case TypeSpec::Base::kUShort: base = types().UShort(); break;
    case TypeSpec::Base::kInt: base = types().Int(); break;
    case TypeSpec::Base::kUInt: base = types().UInt(); break;
    case TypeSpec::Base::kLong: base = types().Long(); break;
    case TypeSpec::Base::kULong: base = types().ULong(); break;
    case TypeSpec::Base::kLongLong: base = types().LongLong(); break;
    case TypeSpec::Base::kULongLong: base = types().ULongLong(); break;
    case TypeSpec::Base::kFloat: base = types().Float(); break;
    case TypeSpec::Base::kDouble: base = types().Double(); break;
    case TypeSpec::Base::kStruct:
      base = backend_->GetTargetStruct(spec.tag);
      if (base == nullptr) {
        throw DuelError(ErrorKind::kType, "unknown struct tag '" + spec.tag + "'", range);
      }
      break;
    case TypeSpec::Base::kUnion:
      base = backend_->GetTargetUnion(spec.tag);
      if (base == nullptr) {
        throw DuelError(ErrorKind::kType, "unknown union tag '" + spec.tag + "'", range);
      }
      break;
    case TypeSpec::Base::kEnum:
      base = backend_->GetTargetEnum(spec.tag);
      if (base == nullptr) {
        throw DuelError(ErrorKind::kType, "unknown enum tag '" + spec.tag + "'", range);
      }
      break;
    case TypeSpec::Base::kTypedef:
      base = backend_->GetTargetTypedef(spec.tag);
      if (base == nullptr) {
        throw DuelError(ErrorKind::kType, "unknown type name '" + spec.tag + "'", range);
      }
      break;
  }
  for (int i = 0; i < spec.pointer_depth; ++i) {
    base = types().PointerTo(base);
  }
  for (auto it = spec.array_dims.rbegin(); it != spec.array_dims.rend(); ++it) {
    base = types().ArrayOf(base, *it);
  }
  return base;
}

Addr EvalContext::InternString(const std::string& body) {
  auto it = interned_strings_.find(body);
  if (it != interned_strings_.end()) {
    return it->second;
  }
  Addr addr = access_.Alloc(body.size() + 1, 1);
  access_.PutBytes(addr, body.data(), body.size());
  uint8_t nul = 0;
  access_.PutBytes(addr + body.size(), &nul, 1);
  interned_strings_[body] = addr;
  return addr;
}

std::vector<std::string> AliasTable::Names() const {
  std::vector<std::string> out;
  out.reserve(aliases_.size());
  for (const auto& [name, value] : aliases_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace duel
