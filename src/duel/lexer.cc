#include "src/duel/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "src/support/strings.h"

namespace duel {

const char* TokName(Tok t) {
  switch (t) {
    case Tok::kEnd: return "end of expression";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "floating literal";
    case Tok::kCharLit: return "character literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kLSelect: return "[[";
    case Tok::kRSelect: return "]]";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kDot: return ".";
    case Tok::kArrow: return "->";
    case Tok::kExpand: return "-->";
    case Tok::kExpandBfs: return "-->>";
    case Tok::kInc: return "++";
    case Tok::kDec: return "--";
    case Tok::kAmp: return "&";
    case Tok::kStar: return "*";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kCaret: return "^";
    case Tok::kPipe: return "|";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kQuestion: return "?";
    case Tok::kColon: return ":";
    case Tok::kSemi: return ";";
    case Tok::kComma: return ",";
    case Tok::kAssign: return "=";
    case Tok::kStarEq: return "*=";
    case Tok::kSlashEq: return "/=";
    case Tok::kPercentEq: return "%=";
    case Tok::kPlusEq: return "+=";
    case Tok::kMinusEq: return "-=";
    case Tok::kShlEq: return "<<=";
    case Tok::kShrEq: return ">>=";
    case Tok::kAmpEq: return "&=";
    case Tok::kCaretEq: return "^=";
    case Tok::kPipeEq: return "|=";
    case Tok::kDotDot: return "..";
    case Tok::kIfGt: return ">?";
    case Tok::kIfLt: return "<?";
    case Tok::kIfGe: return ">=?";
    case Tok::kIfLe: return "<=?";
    case Tok::kIfEq: return "==?";
    case Tok::kIfNe: return "!=?";
    case Tok::kSeqEq: return "===";
    case Tok::kImply: return "=>";
    case Tok::kDefine: return ":=";
    case Tok::kCountOf: return "#/";
    case Tok::kSumOf: return "+/";
    case Tok::kAllOf: return "&&/";
    case Tok::kAnyOf: return "||/";
    case Tok::kAt: return "@";
    case Tok::kHash: return "#";
    case Tok::kUnderscore: return "_";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwWhile: return "while";
    case Tok::kKwFor: return "for";
    case Tok::kKwSizeof: return "sizeof";
    case Tok::kKwStruct: return "struct";
    case Tok::kKwUnion: return "union";
    case Tok::kKwEnum: return "enum";
    case Tok::kKwInt: return "int";
    case Tok::kKwChar: return "char";
    case Tok::kKwLong: return "long";
    case Tok::kKwShort: return "short";
    case Tok::kKwUnsigned: return "unsigned";
    case Tok::kKwSigned: return "signed";
    case Tok::kKwFloat: return "float";
    case Tok::kKwDouble: return "double";
    case Tok::kKwVoid: return "void";
  }
  return "?";
}

namespace {
const std::map<std::string, Tok>& Keywords() {
  static const std::map<std::string, Tok> kMap = {
      {"if", Tok::kKwIf},         {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},   {"for", Tok::kKwFor},
      {"sizeof", Tok::kKwSizeof}, {"struct", Tok::kKwStruct},
      {"union", Tok::kKwUnion},   {"enum", Tok::kKwEnum},
      {"int", Tok::kKwInt},       {"char", Tok::kKwChar},
      {"long", Tok::kKwLong},     {"short", Tok::kKwShort},
      {"unsigned", Tok::kKwUnsigned}, {"signed", Tok::kKwSigned},
      {"float", Tok::kKwFloat},   {"double", Tok::kKwDouble},
      {"void", Tok::kKwVoid},
  };
  return kMap;
}
}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) {}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Take() { return pos_ < input_.size() ? input_[pos_++] : '\0'; }

bool Lexer::TakeIf(char c) {
  if (Peek() == c) {
    ++pos_;
    return true;
  }
  return false;
}

Token Lexer::Make(Tok kind, size_t start) {
  Token t;
  t.kind = kind;
  t.range = {start, pos_};
  return t;
}

std::vector<Token> Lexer::LexAll() {
  std::vector<Token> out;
  for (;;) {
    Token t = Next();
    bool end = t.kind == Tok::kEnd;
    out.push_back(std::move(t));
    if (end) {
      return out;
    }
  }
}

Token Lexer::Next() {
  // Skip whitespace and "##" comments (gdb's "#" comment is taken; the
  // original DUEL used "##"). Comments run to end of line so that multi-line
  // inputs — scenario files, pasted programs — can be annotated per line.
  for (;;) {
    if (isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
      continue;
    }
    if (Peek() == '#' && Peek(1) == '#') {
      while (Peek() != '\0' && Peek() != '\n') {
        ++pos_;
      }
      continue;
    }
    break;
  }
  size_t start = pos_;
  char c = Peek();
  if (c == '\0') {
    return Make(Tok::kEnd, start);
  }
  if (isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && isdigit(static_cast<unsigned char>(Peek(1))))) {
    return LexNumber();
  }
  if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return LexIdent();
  }
  if (c == '\'') {
    return LexCharLit();
  }
  if (c == '"') {
    return LexStringLit();
  }

  Take();
  switch (c) {
    case '(': return Make(Tok::kLParen, start);
    case ')': return Make(Tok::kRParen, start);
    case '[':
      if (TakeIf('[')) return Make(Tok::kLSelect, start);
      return Make(Tok::kLBracket, start);
    case ']':
      // Always a single ']': "x[a[[b]]]" needs "]] ]" while "x[[a[b]]]" needs
      // "] ]]", so the pairing is done by the parser (like C++'s ">>" fix).
      return Make(Tok::kRBracket, start);
    case '{': return Make(Tok::kLBrace, start);
    case '}': return Make(Tok::kRBrace, start);
    case '.':
      if (TakeIf('.')) return Make(Tok::kDotDot, start);
      return Make(Tok::kDot, start);
    case '-':
      if (Peek() == '-' && Peek(1) == '>') {
        Take();
        Take();
        if (TakeIf('>')) return Make(Tok::kExpandBfs, start);
        return Make(Tok::kExpand, start);
      }
      if (TakeIf('-')) return Make(Tok::kDec, start);
      if (TakeIf('>')) return Make(Tok::kArrow, start);
      if (TakeIf('=')) return Make(Tok::kMinusEq, start);
      return Make(Tok::kMinus, start);
    case '+':
      if (TakeIf('+')) return Make(Tok::kInc, start);
      if (TakeIf('=')) return Make(Tok::kPlusEq, start);
      if (TakeIf('/')) return Make(Tok::kSumOf, start);
      return Make(Tok::kPlus, start);
    case '&':
      if (Peek() == '&' && Peek(1) == '/') {
        Take();
        Take();
        return Make(Tok::kAllOf, start);
      }
      if (TakeIf('&')) return Make(Tok::kAndAnd, start);
      if (TakeIf('=')) return Make(Tok::kAmpEq, start);
      return Make(Tok::kAmp, start);
    case '|':
      if (Peek() == '|' && Peek(1) == '/') {
        Take();
        Take();
        return Make(Tok::kAnyOf, start);
      }
      if (TakeIf('|')) return Make(Tok::kOrOr, start);
      if (TakeIf('=')) return Make(Tok::kPipeEq, start);
      return Make(Tok::kPipe, start);
    case '*':
      if (TakeIf('=')) return Make(Tok::kStarEq, start);
      return Make(Tok::kStar, start);
    case '/':
      if (TakeIf('=')) return Make(Tok::kSlashEq, start);
      return Make(Tok::kSlash, start);
    case '%':
      if (TakeIf('=')) return Make(Tok::kPercentEq, start);
      return Make(Tok::kPercent, start);
    case '~': return Make(Tok::kTilde, start);
    case '!':
      if (Peek() == '=' && Peek(1) == '?') {
        Take();
        Take();
        return Make(Tok::kIfNe, start);
      }
      if (TakeIf('=')) return Make(Tok::kNe, start);
      return Make(Tok::kBang, start);
    case '<':
      if (Peek() == '<') {
        Take();
        if (TakeIf('=')) return Make(Tok::kShlEq, start);
        return Make(Tok::kShl, start);
      }
      if (Peek() == '=' && Peek(1) == '?') {
        Take();
        Take();
        return Make(Tok::kIfLe, start);
      }
      if (TakeIf('=')) return Make(Tok::kLe, start);
      if (TakeIf('?')) return Make(Tok::kIfLt, start);
      return Make(Tok::kLt, start);
    case '>':
      if (Peek() == '>') {
        Take();
        if (TakeIf('=')) return Make(Tok::kShrEq, start);
        return Make(Tok::kShr, start);
      }
      if (Peek() == '=' && Peek(1) == '?') {
        Take();
        Take();
        return Make(Tok::kIfGe, start);
      }
      if (TakeIf('=')) return Make(Tok::kGe, start);
      if (TakeIf('?')) return Make(Tok::kIfGt, start);
      return Make(Tok::kGt, start);
    case '=':
      if (Peek() == '=') {
        Take();
        if (TakeIf('=')) return Make(Tok::kSeqEq, start);
        if (TakeIf('?')) return Make(Tok::kIfEq, start);
        return Make(Tok::kEq, start);
      }
      if (TakeIf('>')) return Make(Tok::kImply, start);
      return Make(Tok::kAssign, start);
    case '?': return Make(Tok::kQuestion, start);
    case ':':
      if (TakeIf('=')) return Make(Tok::kDefine, start);
      return Make(Tok::kColon, start);
    case ';': return Make(Tok::kSemi, start);
    case ',': return Make(Tok::kComma, start);
    case '^':
      if (TakeIf('=')) return Make(Tok::kCaretEq, start);
      return Make(Tok::kCaret, start);
    case '@': return Make(Tok::kAt, start);
    case '#':
      if (TakeIf('/')) return Make(Tok::kCountOf, start);
      return Make(Tok::kHash, start);
    default:
      throw DuelError(ErrorKind::kLex, StrPrintf("unexpected character '%c'", c),
                      {start, pos_});
  }
}

Token Lexer::LexNumber() {
  size_t start = pos_;
  bool is_float = false;
  std::string text;

  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    text.push_back(Take());
    text.push_back(Take());
    while (isxdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Take());
    }
  } else {
    while (isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Take());
    }
    // A '.' starts a fraction only if NOT followed by another '.' (so that
    // "1..3" lexes as 1 .. 3) and followed by a digit or end-of-number.
    if (Peek() == '.' && Peek(1) != '.') {
      is_float = true;
      text.push_back(Take());
      while (isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Take());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      char sign = Peek(1);
      if (isdigit(static_cast<unsigned char>(sign)) ||
          ((sign == '+' || sign == '-') && isdigit(static_cast<unsigned char>(Peek(2))))) {
        is_float = true;
        text.push_back(Take());
        if (Peek() == '+' || Peek() == '-') {
          text.push_back(Take());
        }
        while (isdigit(static_cast<unsigned char>(Peek()))) {
          text.push_back(Take());
        }
      }
    }
  }

  Token t;
  t.text = text;
  if (is_float) {
    if (Peek() == 'f' || Peek() == 'F') {
      Take();
    }
    t.kind = Tok::kFloatLit;
    t.float_value = strtod(text.c_str(), nullptr);
  } else {
    t.kind = Tok::kIntLit;
    t.int_value = strtoull(text.c_str(), nullptr, 0);  // handles 0x and leading-0 octal
    for (;;) {
      if (Peek() == 'u' || Peek() == 'U') {
        Take();
        t.is_unsigned = true;
      } else if (Peek() == 'l' || Peek() == 'L') {
        Take();
        t.is_long = true;
      } else {
        break;
      }
    }
  }
  t.range = {start, pos_};
  return t;
}

Token Lexer::LexIdent() {
  size_t start = pos_;
  std::string text;
  while (isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
    text.push_back(Take());
  }
  Token t;
  t.range = {start, pos_};
  if (text == "_") {
    t.kind = Tok::kUnderscore;
    t.text = text;
    return t;
  }
  auto it = Keywords().find(text);
  if (it != Keywords().end()) {
    t.kind = it->second;
    t.text = text;
    return t;
  }
  t.kind = Tok::kIdent;
  t.text = std::move(text);
  return t;
}

char Lexer::LexEscape() {
  char c = Take();
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case 'a': return '\a';
    case 'b': return '\b';
    case 'f': return '\f';
    case 'v': return '\v';
    case '0': case '1': case '2': case '3':
    case '4': case '5': case '6': case '7': {
      int v = c - '0';
      for (int i = 0; i < 2 && Peek() >= '0' && Peek() <= '7'; ++i) {
        v = v * 8 + (Take() - '0');
      }
      return static_cast<char>(v);
    }
    case 'x': {
      int v = 0;
      while (isxdigit(static_cast<unsigned char>(Peek()))) {
        char h = Take();
        v = v * 16 + (isdigit(static_cast<unsigned char>(h)) ? h - '0'
                                                             : (tolower(h) - 'a' + 10));
      }
      return static_cast<char>(v);
    }
    case '\\': return '\\';
    case '\'': return '\'';
    case '"': return '"';
    case '\0':
      throw DuelError(ErrorKind::kLex, "unterminated escape", {pos_ - 1, pos_});
    default:
      return c;
  }
}

Token Lexer::LexCharLit() {
  size_t start = pos_;
  Take();  // '
  if (Peek() == '\0') {
    throw DuelError(ErrorKind::kLex, "unterminated character literal", {start, pos_});
  }
  char value;
  if (Peek() == '\\') {
    Take();
    value = LexEscape();
  } else {
    value = Take();
  }
  if (!TakeIf('\'')) {
    throw DuelError(ErrorKind::kLex, "unterminated character literal", {start, pos_});
  }
  Token t;
  t.kind = Tok::kCharLit;
  t.int_value = static_cast<uint64_t>(static_cast<unsigned char>(value));
  t.text = std::string(1, value);
  t.range = {start, pos_};
  return t;
}

Token Lexer::LexStringLit() {
  size_t start = pos_;
  Take();  // "
  std::string body;
  for (;;) {
    char c = Peek();
    if (c == '\0') {
      throw DuelError(ErrorKind::kLex, "unterminated string literal", {start, pos_});
    }
    if (c == '"') {
      Take();
      break;
    }
    if (c == '\\') {
      Take();
      body.push_back(LexEscape());
    } else {
      body.push_back(Take());
    }
  }
  Token t;
  t.kind = Tok::kStringLit;
  t.text = std::move(body);
  t.range = {start, pos_};
  return t;
}

}  // namespace duel
