#include "src/duel/assertions.h"

#include "src/support/strings.h"

namespace duel {

AssertionOutcome CheckAssertion(Session& session, const std::string& name,
                                const std::string& expr, size_t max_failures) {
  AssertionOutcome out;
  out.name = name;
  out.expr = expr;
  QueryResult r = session.Query(expr);
  if (!r.ok) {
    out.holds = false;
    out.failures.push_back(r.error);
    return out;
  }
  out.holds = true;
  out.values_checked = r.value_count;
  for (size_t i = 0; i < r.entries.size(); ++i) {
    const ResultEntry& e = r.entries[i];
    if (e.value == "0" || e.value == "false" || e.value == "0x0" || e.value == "'\\0'") {
      out.holds = false;
      if (out.failures.size() < max_failures) {
        out.failures.push_back(r.lines[i]);
      }
    }
  }
  return out;
}

int AssertionSet::Add(std::string name, std::string expr) {
  assertions_.push_back(Entry{std::move(name), std::move(expr)});
  return static_cast<int>(assertions_.size()) - 1;
}

AssertionOutcome AssertionSet::Check(Session& session, size_t index,
                                     size_t max_failures) const {
  const Entry& e = assertions_.at(index);
  return CheckAssertion(session, e.name, e.expr, max_failures);
}

std::vector<AssertionOutcome> AssertionSet::CheckAll(Session& session,
                                                     size_t max_failures) const {
  std::vector<AssertionOutcome> out;
  out.reserve(assertions_.size());
  for (size_t i = 0; i < assertions_.size(); ++i) {
    out.push_back(Check(session, i, max_failures));
  }
  return out;
}

std::string AssertionSet::Report(const std::vector<AssertionOutcome>& outcomes,
                                 bool only_failures) {
  std::string report;
  for (const AssertionOutcome& o : outcomes) {
    if (only_failures && o.holds) {
      continue;
    }
    report += StrPrintf("[%s] %s: %s", o.holds ? "PASS" : "FAIL", o.name.c_str(),
                        o.expr.c_str());
    if (o.holds) {
      report += StrPrintf(" (%llu values)", static_cast<unsigned long long>(o.values_checked));
    }
    report += "\n";
    for (const std::string& f : o.failures) {
      report += "    " + f + "\n";
    }
  }
  return report;
}

}  // namespace duel
