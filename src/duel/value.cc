#include "src/duel/value.h"

#include <cstring>

#include "src/support/strings.h"

namespace duel {

Sym Sym::Plain(std::string text, int prec) {
  Sym s;
  s.head_ = std::move(text);
  s.prec_ = prec;
  return s;
}

Sym Sym::LazyText(std::string text, int prec) {
  auto node = std::make_shared<SymDeferred>();
  node->k = SymDeferred::K::kText;
  node->text = std::move(text);
  node->prec = prec;
  return FromDeferred(std::move(node));
}

Sym Sym::FromDeferred(std::shared_ptr<const SymDeferred> node) {
  Sym s;
  s.lazy_ = std::move(node);
  return s;
}

int Sym::prec() const {
  if (lazy_ != nullptr) {
    // Conservative without materializing: postfix-ish nodes bind tight,
    // everything else reports its recorded precedence.
    return lazy_->prec;
  }
  return count_ > 0 ? kPrecPostfix : prec_;
}

Sym Sym::Materialize(const SymDeferred& node) {
  switch (node.k) {
    case SymDeferred::K::kText:
      return Plain(node.text, node.prec);
    case SymDeferred::K::kBinary:
      return ComposeBinary(Materialize(*node.a), node.text, Materialize(*node.b), node.prec);
    case SymDeferred::K::kUnary:
      return ComposeUnary(node.text, Materialize(*node.a));
    case SymDeferred::K::kIndex:
      return ComposeIndex(Materialize(*node.a), Materialize(*node.b));
    case SymDeferred::K::kMember:
      return Materialize(*node.a).WithMember(node.text, node.arrow);
    case SymDeferred::K::kWithExpr: {
      const char* sep = node.arrow ? "->" : ".";
      return Plain(Materialize(*node.a).TextAsOperand(kPrecPostfix) + sep + "(" +
                       Materialize(*node.b).Text() + ")",
                   kPrecPostfix);
    }
    case SymDeferred::K::kSelected:
      return Materialize(*node.a).SelectedAt(node.index);
  }
  return None();
}

std::string Sym::Text() const {
  if (lazy_ != nullptr) {
    return Materialize(*lazy_).Text();
  }
  if (count_ == 0) {
    return head_;
  }
  if (count_ >= kCompressAt) {
    return head_ + "-->" + member_ + StrPrintf("[[%d]]", count_) + suffix_;
  }
  std::string out = head_;
  for (int i = 0; i < count_; ++i) {
    out += "->" + member_;
  }
  return out + suffix_;
}

std::string Sym::TextAsOperand(int min_prec) const {
  if (lazy_ != nullptr) {
    return Materialize(*lazy_).TextAsOperand(min_prec);
  }
  if (prec() < min_prec) {
    return "(" + Text() + ")";
  }
  return Text();
}

Sym Sym::WithMember(const std::string& member, bool arrow) const {
  if (lazy_ != nullptr) {
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kMember;
    node->prec = kPrecPostfix;
    node->text = member;
    node->arrow = arrow;
    node->a = lazy_;
    return FromDeferred(std::move(node));
  }
  Sym s;
  s.prec_ = kPrecPostfix;
  const char* sep = arrow ? "->" : ".";
  if (arrow && count_ > 0 && member_ == member && suffix_.empty()) {
    s = *this;
    s.count_++;
    return s;
  }
  if (count_ > 0) {
    // Extend the suffix; the chain head stays compressible.
    s = *this;
    s.suffix_ += sep + member;
    return s;
  }
  if (arrow) {
    // Start a structural chain so repeats can compress.
    s.head_ = prec_ >= kPrecPostfix ? head_ : "(" + head_ + ")";
    s.member_ = member;
    s.count_ = 1;
    return s;
  }
  s.head_ = TextAsOperand(kPrecPostfix) + sep + member;
  return s;
}

Sym Sym::SelectedAt(uint64_t index) const {
  if (lazy_ != nullptr) {
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kSelected;
    node->prec = kPrecPostfix;
    node->index = index;
    node->a = lazy_;
    return FromDeferred(std::move(node));
  }
  if (count_ == 0) {
    return *this;
  }
  Sym s;
  s.prec_ = kPrecPostfix;
  s.head_ = head_ + "-->" + member_ +
            StrPrintf("[[%llu]]", static_cast<unsigned long long>(index)) + suffix_;
  return s;
}

namespace {

std::shared_ptr<const SymDeferred> DeferOperand(const Sym& s) {
  if (s.IsLazy()) {
    return s.deferred();
  }
  auto node = std::make_shared<SymDeferred>();
  node->k = SymDeferred::K::kText;
  node->text = s.Text();
  node->prec = s.prec();
  return node;
}

}  // namespace

Sym ComposeBinary(const Sym& lhs, const std::string& op, const Sym& rhs, int prec) {
  if (lhs.IsLazy() || rhs.IsLazy()) {
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kBinary;
    node->prec = prec;
    node->text = op;
    node->a = DeferOperand(lhs);
    node->b = DeferOperand(rhs);
    return Sym::FromDeferred(std::move(node));
  }
  return Sym::Plain(lhs.TextAsOperand(prec) + op + rhs.TextAsOperand(prec + 1), prec);
}

Sym ComposeUnary(const std::string& op, const Sym& operand) {
  if (operand.IsLazy()) {
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kUnary;
    node->prec = kPrecUnary;
    node->text = op;
    node->a = DeferOperand(operand);
    return Sym::FromDeferred(std::move(node));
  }
  return Sym::Plain(op + operand.TextAsOperand(kPrecUnary), kPrecUnary);
}

Sym ComposeIndex(const Sym& base, const Sym& index) {
  if (base.IsLazy() || index.IsLazy()) {
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kIndex;
    node->prec = kPrecPostfix;
    node->a = DeferOperand(base);
    node->b = DeferOperand(index);
    return Sym::FromDeferred(std::move(node));
  }
  return Sym::Plain(base.TextAsOperand(kPrecPostfix) + "[" + index.Text() + "]",
                    kPrecPostfix);
}

Value Value::RV(TypeRef type, const void* bytes, size_t n, Sym sym) {
  Value v;
  v.kind_ = Kind::kRValue;
  v.type_ = std::move(type);
  v.bytes_.Assign(bytes, n);
  v.sym_ = std::move(sym);
  return v;
}

Value Value::Int(TypeRef type, int64_t value, Sym sym) {
  uint8_t buf[8];
  size_t n = type->size();
  if (n > 8) {
    throw DuelError(ErrorKind::kInternal, "Value::Int with oversized type");
  }
  std::memcpy(buf, &value, n);  // little-endian truncation
  return RV(std::move(type), buf, n, std::move(sym));
}

Value Value::Double(TypeRef type, double value, Sym sym) {
  if (type->kind() == TypeKind::kFloat) {
    float f = static_cast<float>(value);
    return RV(std::move(type), &f, sizeof(f), std::move(sym));
  }
  return RV(std::move(type), &value, sizeof(value), std::move(sym));
}

Value Value::Pointer(TypeRef type, Addr a, Sym sym) {
  return RV(std::move(type), &a, sizeof(a), std::move(sym));
}

Value Value::LV(TypeRef type, Addr address, Sym sym) {
  Value v;
  v.kind_ = Kind::kLValue;
  v.type_ = std::move(type);
  v.addr_ = address;
  v.sym_ = std::move(sym);
  return v;
}

Value Value::BitfieldLV(TypeRef type, Addr address, unsigned bit_offset, unsigned bit_width,
                        Sym sym) {
  Value v = LV(std::move(type), address, std::move(sym));
  v.bit_offset_ = bit_offset;
  v.bit_width_ = bit_width;
  return v;
}

Value Value::FrameHandle(size_t frame_index, Sym sym) {
  Value v;
  v.kind_ = Kind::kFrame;
  v.frame_index_ = frame_index;
  v.sym_ = std::move(sym);
  return v;
}

Addr Value::addr() const {
  if (kind_ != Kind::kLValue) {
    throw DuelError(ErrorKind::kInternal, "addr() on non-lvalue");
  }
  return addr_;
}

std::span<const uint8_t> Value::bytes() const {
  if (kind_ != Kind::kRValue) {
    throw DuelError(ErrorKind::kInternal, "bytes() on non-rvalue");
  }
  return bytes_.span();
}

}  // namespace duel
