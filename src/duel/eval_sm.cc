// Engine A: the paper's explicit state-machine evaluator.
//
// "To implement this version of eval, state information is added to each
// node, and a distinguished value, NOVALUE, signals the end of a sequence of
// values. The state field of a node is a non-negative integer that indicates
// the progress of the evaluation of that node. ... After NOVALUE is
// returned, the next call to eval re-evaluates the node."
//
// Differences from the paper's C sketch: NOVALUE is std::nullopt; per-node
// state lives in a side table indexed by node id (the AST stays immutable);
// and goto-label resumption is written as phase switches. Invariants kept on
// every return path: (1) a node that returns nullopt has reset itself and
// its descendants, and (2) the global name-resolution stack is exactly as it
// was at entry (scopes are re-pushed on re-entry — see kWith).

#include <cassert>

#include "src/duel/eval.h"
#include "src/duel/eval_util.h"
#include "src/duel/output.h"
#include "src/support/strings.h"

namespace duel {

namespace {

using target::TypeKind;

// Charges one evaluation step attributed to `n`, stamping the node's source
// range onto any limit/cancel error so governor trips carry a span even
// though EvalContext::Step itself only sees the dense node id. set_range is
// first-writer-wins, so errors that already carry a more precise inner span
// pass through unchanged.
void Charge(EvalContext& ctx, const Node& n) {
  try {
    ctx.Step(n.id);
  } catch (DuelError& e) {
    e.set_range(n.range);
    throw;
  }
}

class SmEngine final : public EvalEngine {
 public:
  explicit SmEngine(EvalContext& ctx) : ctx_(&ctx) {}

  void Start(const Node& root, int num_nodes) override {
    root_ = &root;
    states_.clear();
    states_.resize(static_cast<size_t>(num_nodes));
  }

  std::optional<Value> Next() override {
    if (root_ == nullptr) {
      return std::nullopt;
    }
    return Eval(*root_);
  }

  const char* name() const override { return "state-machine"; }

 private:
  // Heavyweight per-node state, allocated only for the ops that need it.
  struct Extra {
    // select
    std::vector<Value> cache;
    bool exhausted = false;
    // dfs / bfs
    ExpandState expand;
    // call
    std::vector<Value> args;
  };

  struct NodeState {
    int phase = 0;
    Value value;       // the paper's n->value: saved left-operand value
    int64_t lo = 0;    // range iteration
    int64_t hi = 0;
    int64_t i = 0;
    uint64_t counter = 0;
    std::unique_ptr<Extra> extra;
  };

  std::optional<Value> Eval(const Node& n);

  NodeState& StateOf(const Node& n) { return states_[static_cast<size_t>(n.id)]; }

  void Reset(const Node& n) { StateOf(n) = NodeState(); }

  void ResetSubtree(const Node& n) {
    Reset(n);
    for (const NodePtr& k : n.kids) {
      ResetSubtree(*k);
    }
  }

  // Drives a child to exhaustion, discarding values.
  void Drain(const Node& n) {
    while (Eval(n).has_value()) {
    }
  }

  // Drives a condition child: returns false (and resets the child) as soon
  // as a zero value appears; true if all values were non-zero.
  bool CondHolds(const Node& n) {
    while (auto u = Eval(n)) {
      if (!ctx_->Truthy(*u)) {
        ResetSubtree(n);
        return false;
      }
    }
    return true;
  }

  EvalContext* ctx_;
  const Node* root_ = nullptr;
  std::vector<NodeState> states_;
};

std::optional<Value> SmEngine::Eval(const Node& n) {  // NOLINT(readability-function-size)
  EvalContext& ctx = *ctx_;
  Charge(ctx, n);
  NodeState& st = StateOf(n);

  // A constant-folded subtree behaves exactly like a literal leaf: one value,
  // then NOVALUE (and the restart rule re-arms it).
  if (const NodeInfo* info = NodeInfoFor(ctx, n); info != nullptr && info->folded) {
    if (st.phase == 0) {
      st.phase = 1;
      return info->folded_value;
    }
    st.phase = 0;
    return std::nullopt;
  }

  // Generic operator families share their child sequencing with the other
  // engine through ClassifyOp (eval_util.h); only structured operators reach
  // the op switch below.
  switch (ClassifyOp(n.op)) {
    case OpClass::kMapUnary: {
      if (auto u = Eval(*n.kids[0])) {
        return ApplyUnaryClass(ctx, n, *u);
      }
      return std::nullopt;
    }
    case OpClass::kBinaryProduct: {
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          st.value = std::move(*u);
          st.phase = 1;
        }
        if (auto v = Eval(*n.kids[1])) {
          return ApplyBinaryClass(ctx, n, st.value, *v);
        }
        st.phase = 0;
      }
    }
    case OpClass::kFilter: {
      Op cmp = FilterToComparison(n.op);
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          st.value = std::move(*u);
          st.phase = 1;
        }
        while (auto v = Eval(*n.kids[1])) {
          if (ApplyComparison(ctx, cmp, st.value, *v, n.range)) {
            return st.value;  // yields its left operand
          }
        }
        st.phase = 0;
      }
    }
    case OpClass::kStructured:
      break;
  }

  switch (n.op) {
    // --- leaves: produce one value, then NOVALUE --------------------------
    case Op::kIntConst:
    case Op::kCharConst:
    case Op::kFloatConst:
      if (st.phase == 0) {
        st.phase = 1;
        return ConstValue(ctx, n);
      }
      st.phase = 0;
      return std::nullopt;
    case Op::kStringConst:
      if (st.phase == 0) {
        st.phase = 1;
        return StringValue(ctx, n);
      }
      st.phase = 0;
      return std::nullopt;
    case Op::kName:
      if (st.phase == 0) {
        st.phase = 1;
        return NameValue(ctx, n);
      }
      st.phase = 0;
      return std::nullopt;
    case Op::kUnderscore:
      if (st.phase == 0) {
        st.phase = 1;
        return ctx.Underscore(n.range);
      }
      st.phase = 0;
      return std::nullopt;
    case Op::kSizeofType:
      if (st.phase == 0) {
        st.phase = 1;
        return SizeofTypeValue(ctx, n);
      }
      st.phase = 0;
      return std::nullopt;
    case Op::kDecl:
      ExecDecl(ctx, n);
      return std::nullopt;

    // --- one-operand passthroughs ------------------------------------------
    case Op::kBrace: {
      if (auto u = Eval(*n.kids[0])) {
        Value v = *u;
        if (ctx.sym_on()) {
          v.set_sym(Sym::Plain(FormatValue(ctx, v)));
        }
        return v;
      }
      return std::nullopt;
    }
    case Op::kDefine: {
      if (auto u = Eval(*n.kids[0])) {
        ctx.aliases().Set(n.text, *u);
        Value out = *u;
        out.set_sym(ctx.MakeSym(n.text));
        return out;
      }
      return std::nullopt;
    }
    case Op::kIndexAlias: {
      if (auto u = Eval(*n.kids[0])) {
        ctx.aliases().Set(n.text, MakeIntValue(ctx, static_cast<int64_t>(st.counter)));
        st.counter++;
        return u;
      }
      st.counter = 0;
      return std::nullopt;
    }
    case Op::kSizeofExpr: {
      if (st.phase == 0) {
        auto u = Eval(*n.kids[0]);
        if (!u.has_value()) {
          return std::nullopt;
        }
        ResetSubtree(*n.kids[0]);  // only the first value's type matters
        // No decay: sizeof of an array lvalue is the whole array size.
        st.phase = 1;
        return Value::Int(ctx.types().ULong(),
                          static_cast<int64_t>(u->type() ? u->type()->size() : 0),
                          Sym::None());
      }
      st.phase = 0;
      return std::nullopt;
    }

    // --- ranges ------------------------------------------------------------
    case Op::kTo: {
      for (;;) {
        switch (st.phase) {
          case 0: {
            auto u = Eval(*n.kids[0]);
            if (!u.has_value()) {
              st.phase = 0;
              return std::nullopt;
            }
            st.lo = ctx.ToI64(*u);
            st.phase = 1;
            break;
          }
          case 1: {
            auto v = Eval(*n.kids[1]);
            if (!v.has_value()) {
              st.phase = 0;
              break;
            }
            st.hi = ctx.ToI64(*v);
            st.i = st.lo;
            st.phase = 2;
            break;
          }
          default:
            if (st.i <= st.hi) {
              Charge(ctx, n);
              return MakeIntValue(ctx, st.i++);
            }
            st.phase = 1;
            break;
        }
      }
    }
    case Op::kToPrefix: {
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          st.hi = ctx.ToI64(*u) - 1;
          st.i = 0;
          st.phase = 1;
        }
        if (st.i <= st.hi) {
          Charge(ctx, n);
          return MakeIntValue(ctx, st.i++);
        }
        st.phase = 0;
      }
    }
    case Op::kToOpen: {
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          st.i = ctx.ToI64(*u);
          st.phase = 1;
        }
        Charge(ctx, n);
        return MakeIntValue(ctx, st.i++);
      }
    }

    // --- alternation / imply / sequence --------------------------------------
    case Op::kAlternate: {
      if (st.phase == 0) {
        if (auto u = Eval(*n.kids[0])) {
          return u;
        }
        st.phase = 1;
      }
      if (auto v = Eval(*n.kids[1])) {
        return v;
      }
      st.phase = 0;
      return std::nullopt;
    }
    case Op::kImply: {
      for (;;) {
        if (st.phase == 0) {
          if (!Eval(*n.kids[0]).has_value()) {
            return std::nullopt;
          }
          st.phase = 1;
        }
        if (auto v = Eval(*n.kids[1])) {
          return v;
        }
        st.phase = 0;
      }
    }
    case Op::kSequence: {
      if (st.phase == 0) {
        Drain(*n.kids[0]);
        st.phase = 1;
      }
      if (auto v = Eval(*n.kids[1])) {
        return v;
      }
      st.phase = 0;
      return std::nullopt;
    }
    case Op::kDiscard:
      Drain(*n.kids[0]);
      return std::nullopt;

    // --- binary operators (the paper's bin0/bin1 scheme) ----------------------
    // --- logical / conditional ---------------------------------------------------
    case Op::kAndAnd: {
      for (;;) {
        if (st.phase == 0) {
          for (;;) {
            auto u = Eval(*n.kids[0]);
            if (!u.has_value()) {
              return std::nullopt;
            }
            if (ctx.Truthy(*u)) {
              break;
            }
          }
          st.phase = 1;
        }
        if (auto v = Eval(*n.kids[1])) {
          return v;
        }
        st.phase = 0;
      }
    }
    case Op::kOrOr: {
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          if (ctx.Truthy(*u)) {
            return u;  // stay in phase 0: next call pulls the next u
          }
          st.phase = 1;
        }
        if (auto v = Eval(*n.kids[1])) {
          return v;
        }
        st.phase = 0;
      }
    }
    case Op::kIf:
    case Op::kCond: {
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          if (ctx.Truthy(*u)) {
            st.phase = 1;
          } else if (n.kids.size() > 2) {
            st.phase = 2;
          } else {
            continue;  // no else: this condition value produces nothing
          }
        }
        const Node& branch = st.phase == 1 ? *n.kids[1] : *n.kids[2];
        if (auto v = Eval(branch)) {
          return v;
        }
        st.phase = 0;
      }
    }
    case Op::kWhile: {
      for (;;) {
        if (st.phase == 0) {
          if (!CondHolds(*n.kids[0])) {
            st.phase = 0;
            return std::nullopt;
          }
          st.phase = 1;
        }
        if (auto v = Eval(*n.kids[1])) {
          return v;
        }
        st.phase = 0;
      }
    }
    case Op::kFor: {
      for (;;) {
        switch (st.phase) {
          case 0:
            Drain(*n.kids[0]);  // init
            st.phase = 1;
            break;
          case 1:
            if (!CondHolds(*n.kids[1])) {
              st.phase = 0;
              return std::nullopt;
            }
            st.phase = 2;
            break;
          case 2:
            if (auto v = Eval(*n.kids[3])) {
              return v;
            }
            st.phase = 3;
            break;
          default:
            Drain(*n.kids[2]);  // step
            st.phase = 1;
            break;
        }
      }
    }

    // --- with / expansion -----------------------------------------------------
    case Op::kWith:
    case Op::kArrowWith: {
      bool arrow = n.op == Op::kArrowWith;
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            return std::nullopt;
          }
          st.value = std::move(*u);
          st.phase = 1;
        }
        // Re-push the scope saved across calls; pop before every return.
        ctx.scopes().Push(WithScope{st.value, arrow});
        std::optional<Value> v;
        try {
          v = Eval(*n.kids[1]);
        } catch (...) {
          ctx.scopes().Pop();
          throw;
        }
        ctx.scopes().Pop();
        if (v.has_value()) {
          return ComposeWithResult(ctx, st.value, arrow, *v);
        }
        st.phase = 0;
      }
    }
    case Op::kDfs:
    case Op::kBfs: {
      bool bfs = n.op == Op::kBfs;
      for (;;) {
        if (st.phase == 0) {
          auto u = Eval(*n.kids[0]);
          if (!u.has_value()) {
            st.extra.reset();
            return std::nullopt;
          }
          st.extra = std::make_unique<Extra>();
          if (ExpandAdmit(ctx, st.extra->expand, *u)) {
            st.extra->expand.pending.push_back(*u);
          }
          st.phase = 1;
        }
        ExpandState& ex = st.extra->expand;
        while (!ex.pending.empty()) {
          Charge(ctx, n);
          Value x;
          if (bfs) {
            x = ex.pending.front();
            ex.pending.pop_front();
          } else {
            x = ex.pending.back();
            ex.pending.pop_back();
          }
          if (!ExpandReadable(ctx, x)) {
            continue;  // invalid pointer terminates this path silently
          }
          std::vector<Value> children;
          ctx.scopes().Push(ExpandScope(x));
          try {
            while (auto w = Eval(*n.kids[1])) {
              Value child = ComposeWithResult(ctx, x, true, *w);
              if (ExpandAdmit(ctx, ex, child)) {
                children.push_back(std::move(child));
              }
            }
          } catch (const MemoryFault&) {
            ResetSubtree(*n.kids[1]);  // abandoned mid-drive
          } catch (...) {
            ctx.scopes().Pop();
            throw;
          }
          ctx.scopes().Pop();
          if (bfs) {
            for (Value& c : children) {
              ex.pending.push_back(std::move(c));
            }
          } else {
            for (auto it = children.rbegin(); it != children.rend(); ++it) {
              ex.pending.push_back(std::move(*it));
            }
          }
          return x;
        }
        st.phase = 0;
      }
    }

    // --- sequence operators -----------------------------------------------------
    case Op::kSelect: {
      if (st.extra == nullptr) {
        st.extra = std::make_unique<Extra>();
      }
      Extra& ex = *st.extra;
      for (;;) {
        auto iv = Eval(*n.kids[1]);
        if (!iv.has_value()) {
          if (!ex.exhausted) {
            ResetSubtree(*n.kids[0]);  // sequence abandoned mid-drive
          }
          st.extra.reset();
          return std::nullopt;
        }
        int64_t want = ctx.ToI64(*iv);
        if (want < 0) {
          continue;
        }
        while (!ex.exhausted && ex.cache.size() <= static_cast<uint64_t>(want)) {
          if (auto v = Eval(*n.kids[0])) {
            ex.cache.push_back(*v);
          } else {
            ex.exhausted = true;
          }
        }
        if (static_cast<uint64_t>(want) < ex.cache.size()) {
          Value out = ex.cache[static_cast<size_t>(want)];
          if (ctx.sym_on()) {
            out.set_sym(out.sym().SelectedAt(static_cast<uint64_t>(want)));
          }
          return out;
        }
      }
    }
    case Op::kUntil: {
      bool match = UntilMatchMode(*n.kids[1]);
      auto u = Eval(*n.kids[0]);
      if (!u.has_value()) {
        return std::nullopt;
      }
      bool stop;
      if (match) {
        stop = UntilEquals(ctx, *u, *n.kids[1]);
      } else {
        stop = false;
        ctx.scopes().Push(ExpandScope(*u));
        try {
          while (auto p = Eval(*n.kids[1])) {
            if (ctx.Truthy(*p)) {
              stop = true;
              ResetSubtree(*n.kids[1]);
              break;
            }
          }
        } catch (...) {
          ctx.scopes().Pop();
          throw;
        }
        ctx.scopes().Pop();
      }
      if (stop) {
        ResetSubtree(*n.kids[0]);
        return std::nullopt;
      }
      return u;
    }

    // --- reductions ------------------------------------------------------------
    case Op::kCount: {
      if (st.phase == 0) {
        int64_t count = 0;
        while (Eval(*n.kids[0]).has_value()) {
          ++count;
        }
        st.phase = 1;
        return Value::Int(ctx.types().Int(), count, Sym::None());
      }
      st.phase = 0;
      return std::nullopt;
    }
    case Op::kSum: {
      if (st.phase == 0) {
        std::optional<Value> acc;
        while (auto u = Eval(*n.kids[0])) {
          if (!acc.has_value()) {
            acc = ctx.Rvalue(*u);
          } else {
            acc = ApplyBinary(ctx, Op::kAdd, *acc, *u, n.range);
          }
        }
        st.phase = 1;
        if (acc.has_value()) {
          acc->set_sym(Sym::None());
          return *acc;
        }
        return Value::Int(ctx.types().Int(), 0, Sym::None());
      }
      st.phase = 0;
      return std::nullopt;
    }
    case Op::kAll:
    case Op::kAny: {
      if (st.phase == 0) {
        bool is_all = n.op == Op::kAll;
        int64_t result = is_all ? 1 : 0;
        while (auto u = Eval(*n.kids[0])) {
          bool t = ctx.Truthy(*u);
          if (is_all && !t) {
            result = 0;
            ResetSubtree(*n.kids[0]);
            break;
          }
          if (!is_all && t) {
            result = 1;
            ResetSubtree(*n.kids[0]);
            break;
          }
        }
        st.phase = 1;
        return Value::Int(ctx.types().Int(), result, Sym::None());
      }
      st.phase = 0;
      return std::nullopt;
    }
    case Op::kSeqEq: {
      if (st.phase == 0) {
        int64_t equal = 1;
        for (;;) {
          auto u = Eval(*n.kids[0]);
          auto v = Eval(*n.kids[1]);
          if (!u.has_value() || !v.has_value()) {
            if (u.has_value() != v.has_value()) {
              equal = 0;
              ResetSubtree(u.has_value() ? *n.kids[0] : *n.kids[1]);
            }
            break;
          }
          if (!ApplyComparison(ctx, Op::kEq, *u, *v, n.range)) {
            equal = 0;
            ResetSubtree(*n.kids[0]);
            ResetSubtree(*n.kids[1]);
            break;
          }
        }
        st.phase = 1;
        return Value::Int(ctx.types().Int(), equal, Sym::None());
      }
      st.phase = 0;
      return std::nullopt;
    }

    // --- calls ---------------------------------------------------------------
    case Op::kCall: {
      const Node& callee = *n.kids[0];
      if (callee.op != Op::kName) {
        throw DuelError(ErrorKind::kType, "only direct calls of named functions are supported",
                        n.range);
      }
      if (callee.text == "frames" && n.kids.size() == 1 &&
          !ctx.backend().GetTargetFunction("frames").has_value()) {
        size_t frames = ctx.backend().NumFrames();
        if (st.counter < frames) {
          size_t i = st.counter++;
          return Value::FrameHandle(i, ctx.MakeSym(StrPrintf("frame(%zu)", i), kPrecPostfix));
        }
        st.counter = 0;
        return std::nullopt;
      }
      size_t nargs = n.kids.size() - 1;
      if (st.phase == 0) {
        st.extra = std::make_unique<Extra>();
        st.extra->args.resize(nargs);
        for (size_t i = 0; i < nargs; ++i) {
          auto u = Eval(*n.kids[i + 1]);
          if (!u.has_value()) {
            for (size_t j = 0; j < nargs; ++j) {
              ResetSubtree(*n.kids[j + 1]);
            }
            st.extra.reset();
            return std::nullopt;  // some argument has an empty sequence
          }
          st.extra->args[i] = *u;
        }
        st.phase = 1;
        return CallTarget(ctx, callee.text, st.extra->args, n.range);
      }
      // Advance the rightmost argument that still has values (odometer).
      for (size_t i = nargs; i-- > 0;) {
        if (auto u = Eval(*n.kids[i + 1])) {
          st.extra->args[i] = *u;
          bool ok = true;
          for (size_t j = i + 1; j < nargs; ++j) {
            auto v = Eval(*n.kids[j + 1]);
            if (!v.has_value()) {
              ok = false;  // a restarted generator came up empty
              break;
            }
            st.extra->args[j] = *v;
          }
          if (!ok) {
            break;
          }
          return CallTarget(ctx, callee.text, st.extra->args, n.range);
        }
      }
      st.phase = 0;
      st.extra.reset();
      return std::nullopt;
    }

    case Op::kFrames: {
      size_t frames = ctx.backend().NumFrames();
      if (st.counter < frames) {
        size_t i = st.counter++;
        return Value::FrameHandle(i, ctx.MakeSym(StrPrintf("frame(%zu)", i), kPrecPostfix));
      }
      st.counter = 0;
      return std::nullopt;
    }

    default:
      break;  // generic families were handled by the ClassifyOp dispatch
  }
  throw DuelError(ErrorKind::kInternal,
                  StrPrintf("state-machine engine: unhandled op %s", OpName(n.op)));
}

}  // namespace

std::unique_ptr<EvalEngine> MakeStateMachineEngineImpl(EvalContext& ctx) {
  return std::make_unique<SmEngine>(ctx);
}

std::unique_ptr<EvalEngine> MakeCoroutineEngineImpl(EvalContext& ctx);

std::unique_ptr<EvalEngine> MakeEngine(EngineKind kind, EvalContext& ctx) {
  switch (kind) {
    case EngineKind::kStateMachine:
      return MakeStateMachineEngineImpl(ctx);
    case EngineKind::kCoroutine:
      return MakeCoroutineEngineImpl(ctx);
  }
  throw DuelError(ErrorKind::kInternal, "unknown engine kind");
}

}  // namespace duel
