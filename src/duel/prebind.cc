#include "src/duel/prebind.h"

#include <set>

namespace duel {

namespace {

// Collects every name the query itself can (re)define: aliases via `:=`,
// index aliases via `#`, declarations.
void CollectDefinedNames(const Node& n, std::set<std::string>* out) {
  if (n.op == Op::kDefine || n.op == Op::kIndexAlias) {
    out->insert(n.text);
  }
  if (n.op == Op::kDecl) {
    for (const DeclItem& d : n.decls) {
      out->insert(d.name);
    }
  }
  for (const NodePtr& k : n.kids) {
    CollectDefinedNames(*k, out);
  }
}

class Binder {
 public:
  Binder(EvalContext& ctx, const std::set<std::string>& defined)
      : ctx_(&ctx), defined_(&defined) {}

  PrebindStats stats;

  void Walk(Node& n, bool in_with_scope) {
    switch (n.op) {
      case Op::kName:
        stats.names_total++;
        TryBind(n, in_with_scope);
        return;
      case Op::kWith:
      case Op::kArrowWith:
      case Op::kDfs:
      case Op::kBfs:
        // The right operand resolves names against the opened scope first.
        Walk(*n.kids[0], in_with_scope);
        Walk(*n.kids[1], /*in_with_scope=*/true);
        return;
      case Op::kUntil:
        Walk(*n.kids[0], in_with_scope);
        // The predicate (non-literal form) runs in the value's scope.
        Walk(*n.kids[1], /*in_with_scope=*/true);
        return;
      case Op::kCall:
        // The callee name is not an evaluated expression; skip it.
        for (size_t i = 1; i < n.kids.size(); ++i) {
          Walk(*n.kids[i], in_with_scope);
        }
        return;
      default:
        for (const NodePtr& k : n.kids) {
          Walk(*k, in_with_scope);
        }
        return;
    }
  }

 private:
  void TryBind(Node& n, bool in_with_scope) {
    if (in_with_scope) {
      return;  // could be a member of the opened scope
    }
    if (defined_->count(n.text) != 0 || ctx_->aliases().Has(n.text)) {
      return;  // the query (or the session) binds this name dynamically
    }
    auto info = ctx_->backend().GetTargetVariable(n.text);
    if (!info.has_value()) {
      return;  // functions/enumerators keep dynamic resolution
    }
    n.prebound = true;
    n.prebound_type = info->type;
    n.prebound_addr = info->addr;
    stats.names_bound++;
  }

  EvalContext* ctx_;
  const std::set<std::string>* defined_;
};

}  // namespace

PrebindStats PrebindNames(EvalContext& ctx, Node& root) {
  std::set<std::string> defined;
  CollectDefinedNames(root, &defined);
  Binder binder(ctx, defined);
  binder.Walk(root, /*in_with_scope=*/false);
  return binder.stats;
}

}  // namespace duel
