// Structured diagnostics for the static check stage (check.h) and for
// runtime error reporting: a severity, a stable rule name, a byte-offset
// span into the query text, a message, and an optional fix-it hint.
//
// Rendering is shared by every surface: the REPL prints the caret block,
// MI emits the fields as a machine-readable record, and `--check` batch
// mode prints one block per diagnostic.

#ifndef DUEL_DUEL_DIAG_H_
#define DUEL_DUEL_DIAG_H_

#include <string>
#include <vector>

#include "src/support/error.h"

namespace duel {

enum class Severity {
  kError,    // definite: the query cannot evaluate without this fault
  kWarning,  // legal but suspicious; carries a fix-it where possible
};

const char* SeverityName(Severity s);

struct Diag {
  Severity severity = Severity::kError;
  std::string rule;     // stable kebab-case rule name, e.g. "deref-non-pointer"
  SourceRange span;     // byte offsets into the query text
  std::string message;  // matches the runtime error text for definite errors
  std::string fixit;    // suggested rewrite ("" when none applies)
};

// "  <query>\n  <caret line>" with '^' under span.begin and '~' to span.end
// (clamped to the text). Empty result for an empty/out-of-range span.
std::string CaretBlock(const std::string& query, SourceRange span);

// Full block: "<severity>: <message> [<rule>]" + caret + optional
// "  fix-it: ..." line. One string per line, ready for the REPL.
std::vector<std::string> RenderDiag(const std::string& query, const Diag& d);

}  // namespace duel

#endif  // DUEL_DUEL_DIAG_H_
