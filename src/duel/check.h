// The check stage of the staged query pipeline (lex → parse → analyze →
// check → execute): a conservative type-inference walk over the parsed tree
// that reports definite errors — queries that cannot evaluate without
// faulting — before the execute stage touches target memory, plus warnings
// with fix-it hints for the classic DUEL pitfalls.
//
// The paper: "for many Duel expressions, run-time type checking and symbol
// lookup could be done at compile time using type-inference techniques."
// The analyze stage (sema.h) uses that observation to speed queries up;
// this stage uses it to reject doomed ones in microseconds instead of after
// seconds of backend round trips.
//
// Soundness contract: the checker must never reject a query the engines
// would evaluate successfully. Types propagate as "known or unknown" —
// every dynamic feature (aliases rebound per value, opened with-scopes over
// frames, query-local `:=` names) degrades to unknown, and unknown
// silences every rule downstream. The only backend traffic the walk is
// allowed is symbol/type *lookups*; it never reads target memory, which is
// what makes "zero data calls before rejection" testable.

#ifndef DUEL_DUEL_CHECK_H_
#define DUEL_DUEL_CHECK_H_

#include <string>
#include <utility>
#include <vector>

#include "src/duel/ast.h"
#include "src/duel/diag.h"
#include "src/duel/evalctx.h"
#include "src/duel/sema.h"

namespace duel {

struct CheckResult {
  std::vector<Diag> diags;  // errors and warnings, in source order

  // Names the walk resolved through the session alias table or the target
  // symbol tables (bool = was aliased at check time). The plan cache
  // re-validates exactly this list when the alias table changes: an alias
  // appearing, disappearing, or being rebound over any consulted name
  // invalidates the cached verdict (Session::PlanIsValid).
  std::vector<std::pair<std::string, bool>> names;

  // True when the inference walk saw anything that can mutate target or
  // session state (assignment, ++/--, a target call, alloc). The serve
  // layer's read/write classifier starts from this verdict; a query without
  // side effects may run under a shared (reader) target lock.
  bool has_side_effects = false;

  size_t num_errors() const;
  size_t num_warnings() const;
  bool HasErrors() const { return num_errors() > 0; }

  // The first error as a throwable DuelError (message + span match the
  // diagnostic, so rejected queries read like their runtime counterparts).
  DuelError FirstError() const;
};

// Runs the inference walk. `notes` is the analyze stage's side table (may be
// null when checking outside a plan); resolved cast types are reused from it
// instead of re-searching the type tables. Warning rules that depend on
// evaluation options (cycle detection) read ctx.opts(). Throws nothing.
CheckResult CheckQuery(EvalContext& ctx, const Node& root, const Annotations* notes);

}  // namespace duel

#endif  // DUEL_DUEL_CHECK_H_
