// Tokens of the DUEL concrete syntax: all of C's tokens plus the DUEL
// operators (.. >? ==? => := --> [[ ]] #/ @ # ...).

#ifndef DUEL_DUEL_TOKEN_H_
#define DUEL_DUEL_TOKEN_H_

#include <cstdint>
#include <string>

#include "src/support/error.h"

namespace duel {

enum class Tok {
  kEnd,
  kIdent,
  kIntLit,
  kFloatLit,
  kCharLit,
  kStringLit,

  // Punctuation and C operators.
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLSelect,   // [[
  kRSelect,   // ]]
  kLBrace,    // {
  kRBrace,    // }
  kDot,       // .
  kArrow,     // ->
  kExpand,    // -->   (dfs)
  kExpandBfs, // -->>  (bfs, extension)
  kInc,       // ++
  kDec,       // --
  kAmp,       // &
  kStar,      // *
  kPlus,      // +
  kMinus,     // -
  kTilde,     // ~
  kBang,      // !
  kSlash,     // /
  kPercent,   // %
  kShl,       // <<
  kShr,       // >>
  kLt,        // <
  kGt,        // >
  kLe,        // <=
  kGe,        // >=
  kEq,        // ==
  kNe,        // !=
  kCaret,     // ^
  kPipe,      // |
  kAndAnd,    // &&
  kOrOr,      // ||
  kQuestion,  // ?
  kColon,     // :
  kSemi,      // ;
  kComma,     // ,
  kAssign,    // =
  kStarEq,    // *=
  kSlashEq,   // /=
  kPercentEq, // %=
  kPlusEq,    // +=
  kMinusEq,   // -=
  kShlEq,     // <<=
  kShrEq,     // >>=
  kAmpEq,     // &=
  kCaretEq,   // ^=
  kPipeEq,    // |=

  // DUEL operators.
  kDotDot,    // ..
  kIfGt,      // >?
  kIfLt,      // <?
  kIfGe,      // >=?
  kIfLe,      // <=?
  kIfEq,      // ==?
  kIfNe,      // !=?
  kSeqEq,     // ===   (sequence equality; the paper's abstract `equality`)
  kImply,     // =>
  kDefine,    // :=
  kCountOf,   // #/
  kSumOf,     // +/
  kAllOf,     // &&/
  kAnyOf,     // ||/
  kAt,        // @
  kHash,      // #
  kUnderscore,// _

  // Keywords.
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwSizeof,
  kKwStruct,
  kKwUnion,
  kKwEnum,
  kKwInt,
  kKwChar,
  kKwLong,
  kKwShort,
  kKwUnsigned,
  kKwSigned,
  kKwFloat,
  kKwDouble,
  kKwVoid,
};

const char* TokName(Tok t);

struct Token {
  Tok kind = Tok::kEnd;
  SourceRange range;
  std::string text;       // identifier spelling / literal body
  uint64_t int_value = 0; // kIntLit, kCharLit
  bool is_unsigned = false;
  bool is_long = false;
  double float_value = 0; // kFloatLit
};

}  // namespace duel

#endif  // DUEL_DUEL_TOKEN_H_
