// Recursive-descent parser for the DUEL concrete syntax (the original used
// yacc; the grammar is the same superset of C described in the paper).
//
// Precedence, loosest to tightest:
//   ;   (sequence / trailing discard)
//   ,   (alternate)
//   =>  (imply)
//   = := op= ?:            (right-assoc)
//   || | && | '|' ^ &      (C levels)
//   == != ==? !=? ===
//   < > <= >= <? >? <=? >=?
//   ..  (x..y, x.., ..y)
//   << >>
//   + - | * / %
//   unary (! ~ - + * & ++ -- sizeof casts  #/ +/ &&/ ||/)
//   postfix ([] [[]] () . -> --> -->> @primary #name ++ --)
//
// Declarations (`int i; ...`) are allowed at the start of the input and
// after any ';'.

#ifndef DUEL_DUEL_PARSER_H_
#define DUEL_DUEL_PARSER_H_

#include <functional>
#include <string_view>

#include "src/duel/ast.h"
#include "src/duel/token.h"

namespace duel {

struct ParseResult {
  NodePtr root;
  int num_nodes = 0;  // node ids are 0..num_nodes-1
};

class Parser {
 public:
  // `is_type_name` tells the parser whether an identifier names a target
  // typedef (needed to recognize casts and declarations); may be empty.
  using TypeNamePredicate = std::function<bool(const std::string&)>;

  explicit Parser(std::string_view input, TypeNamePredicate is_type_name = {});

  // Parses a pre-lexed token stream (must end with the lexer's kEnd token).
  // The staged pipeline uses this to time lexing separately from parsing
  // (see Session::BuildPlan).
  explicit Parser(std::vector<Token> tokens, TypeNamePredicate is_type_name = {});

  // Parses the whole input. Throws DuelError(kParse / kLex).
  ParseResult Parse();

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const;
  void Advance();
  bool At(Tok t) const { return Cur().kind == t; }
  bool Accept(Tok t);
  void Expect(Tok t);
  [[noreturn]] void Fail(const std::string& message) const;

  NodePtr NewNode(Op op, SourceRange range);
  NodePtr NewNode(Op op) { return NewNode(op, Cur().range); }

  // Extends `r` to the end of the last consumed token. Nodes whose extent is
  // closed by punctuation that never becomes a kid (')', ']', a declarator,
  // an alias name) use this right after consuming it, so diagnostics can
  // underline the full construct; everything kid-shaped is handled by the
  // WidenRanges pass at the end of Parse().
  SourceRange ExtendToPrev(SourceRange r) const {
    return Cover(r, tokens_[pos_ > 0 ? pos_ - 1 : 0].range);
  }

  bool StartsExpr(Tok t) const;
  bool AtTypeName() const;       // current token begins a type-name
  bool AtDeclStart() const;      // current tokens begin a declaration

  NodePtr ParseTop();
  NodePtr ParseSequence();
  NodePtr ParseAlternate();
  NodePtr ParseImply();
  NodePtr ParseAssign();
  NodePtr ParseTernary();
  NodePtr ParseBinaryLevel(int level);
  NodePtr ParseRange();
  NodePtr ParseUnary();
  NodePtr ParsePostfix();
  NodePtr ParsePrimary();
  NodePtr ParseWithOperand();
  NodePtr ParseIfExpr();

  TypeSpec ParseTypeSpecBase();  // base type without declarator
  TypeSpec ParseCastTypeName();  // base + '*'s (abstract declarator)
  NodePtr ParseDecl();

  // Guards against stack overflow on pathologically nested input.
  struct DepthGuard {
    explicit DepthGuard(Parser* p);
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  std::string_view input_;
  TypeNamePredicate is_type_name_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_id_ = 0;
  int depth_ = 0;

  static constexpr int kMaxDepth = 10000;  // ~650 paren levels (each costs ~15 frames)
};

}  // namespace duel

#endif  // DUEL_DUEL_PARSER_H_
