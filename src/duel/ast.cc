#include "src/duel/ast.h"

#include "src/support/strings.h"

namespace duel {

const char* OpName(Op op) {
  switch (op) {
    case Op::kIntConst: return "constant";
    case Op::kFloatConst: return "fconstant";
    case Op::kCharConst: return "cconstant";
    case Op::kStringConst: return "string";
    case Op::kName: return "name";
    case Op::kUnderscore: return "underscore";
    case Op::kBrace: return "brace";
    case Op::kTo: return "to";
    case Op::kToOpen: return "to-open";
    case Op::kToPrefix: return "to-prefix";
    case Op::kAlternate: return "alternate";
    case Op::kIfGt: return "ifgt";
    case Op::kIfLt: return "iflt";
    case Op::kIfGe: return "ifge";
    case Op::kIfLe: return "ifle";
    case Op::kIfEq: return "ifeq";
    case Op::kIfNe: return "ifne";
    case Op::kSeqEq: return "equality";
    case Op::kImply: return "imply";
    case Op::kSequence: return "sequence";
    case Op::kDiscard: return "discard";
    case Op::kDefine: return "define";
    case Op::kWith: return "with";
    case Op::kArrowWith: return "arrow-with";
    case Op::kDfs: return "dfs";
    case Op::kBfs: return "bfs";
    case Op::kSelect: return "select";
    case Op::kCount: return "count";
    case Op::kSum: return "sum";
    case Op::kAll: return "all";
    case Op::kAny: return "any";
    case Op::kUntil: return "until";
    case Op::kIndexAlias: return "index-alias";
    case Op::kIf: return "if";
    case Op::kWhile: return "while";
    case Op::kFor: return "for";
    case Op::kCall: return "call";
    case Op::kCast: return "cast";
    case Op::kSizeofType: return "sizeof-type";
    case Op::kSizeofExpr: return "sizeof";
    case Op::kDecl: return "decl";
    case Op::kFrames: return "frames";
    case Op::kIndex: return "index";
    case Op::kDeref: return "indirect";
    case Op::kAddrOf: return "address";
    case Op::kNeg: return "negate";
    case Op::kPos: return "plus-unary";
    case Op::kBitNot: return "bitnot";
    case Op::kNot: return "not";
    case Op::kPreInc: return "preinc";
    case Op::kPreDec: return "predec";
    case Op::kPostInc: return "postinc";
    case Op::kPostDec: return "postdec";
    case Op::kMul: return "multiply";
    case Op::kDiv: return "divide";
    case Op::kMod: return "modulo";
    case Op::kAdd: return "plus";
    case Op::kSub: return "minus";
    case Op::kShl: return "lshift";
    case Op::kShr: return "rshift";
    case Op::kLt: return "lt";
    case Op::kGt: return "gt";
    case Op::kLe: return "le";
    case Op::kGe: return "ge";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kBitAnd: return "bitand";
    case Op::kBitXor: return "bitxor";
    case Op::kBitOr: return "bitor";
    case Op::kAndAnd: return "andand";
    case Op::kOrOr: return "oror";
    case Op::kCond: return "cond";
    case Op::kAssign: return "assign";
    case Op::kMulEq: return "mul-assign";
    case Op::kDivEq: return "div-assign";
    case Op::kModEq: return "mod-assign";
    case Op::kAddEq: return "add-assign";
    case Op::kSubEq: return "sub-assign";
    case Op::kShlEq: return "shl-assign";
    case Op::kShrEq: return "shr-assign";
    case Op::kAndEq: return "and-assign";
    case Op::kXorEq: return "xor-assign";
    case Op::kOrEq: return "or-assign";
  }
  return "?";
}

std::string TypeSpec::ToString() const {
  std::string s;
  switch (base) {
    case Base::kVoid: s = "void"; break;
    case Base::kBool: s = "_Bool"; break;
    case Base::kChar: s = "char"; break;
    case Base::kSChar: s = "signed char"; break;
    case Base::kUChar: s = "unsigned char"; break;
    case Base::kShort: s = "short"; break;
    case Base::kUShort: s = "unsigned short"; break;
    case Base::kInt: s = "int"; break;
    case Base::kUInt: s = "unsigned"; break;
    case Base::kLong: s = "long"; break;
    case Base::kULong: s = "unsigned long"; break;
    case Base::kLongLong: s = "long long"; break;
    case Base::kULongLong: s = "unsigned long long"; break;
    case Base::kFloat: s = "float"; break;
    case Base::kDouble: s = "double"; break;
    case Base::kStruct: s = "struct " + tag; break;
    case Base::kUnion: s = "union " + tag; break;
    case Base::kEnum: s = "enum " + tag; break;
    case Base::kTypedef: s = tag; break;
  }
  if (pointer_depth > 0) {
    s += " " + std::string(static_cast<size_t>(pointer_depth), '*');
  }
  for (size_t d : array_dims) {
    s += StrPrintf("[%zu]", d);
  }
  return s;
}

std::string DumpAst(const Node& n) {
  std::string s = "(" + std::string(OpName(n.op));
  switch (n.op) {
    case Op::kIntConst:
      s += StrPrintf(" %llu", static_cast<unsigned long long>(n.int_value));
      break;
    case Op::kCharConst:
      s += StrPrintf(" '%s'", EscapeChar(static_cast<char>(n.int_value)).c_str());
      break;
    case Op::kFloatConst:
      s += " " + FormatDouble(n.float_value);
      break;
    case Op::kStringConst:
      s += " \"" + EscapeString(n.text) + "\"";
      break;
    case Op::kName:
    case Op::kDefine:
    case Op::kIndexAlias:
      s += " \"" + n.text + "\"";
      break;
    case Op::kCast:
    case Op::kSizeofType:
      s += " \"" + n.type_spec.ToString() + "\"";
      break;
    case Op::kDecl:
      for (const DeclItem& d : n.decls) {
        s += " (" + d.type.ToString() + " \"" + d.name + "\")";
      }
      break;
    default:
      break;
  }
  for (const NodePtr& k : n.kids) {
    s += " " + DumpAst(*k);
  }
  s += ")";
  return s;
}

}  // namespace duel
