#include "src/duel/eval_util.h"

#include <cctype>
#include <limits>

#include "src/support/strings.h"
#include "src/target/datum.h"

namespace duel {

using target::TypeKind;

Value ConstValue(EvalContext& ctx, const Node& n) {
  switch (n.op) {
    case Op::kIntConst: {
      TypeRef t;
      if (n.is_unsigned) {
        t = n.is_long || n.int_value > std::numeric_limits<uint32_t>::max()
                ? ctx.types().ULong()
                : ctx.types().UInt();
      } else if (n.is_long || n.int_value > std::numeric_limits<int32_t>::max()) {
        t = ctx.types().Long();
      } else {
        t = ctx.types().Int();
      }
      Sym sym = ctx.MakeSym(
          n.is_unsigned ? StrPrintf("%llu", static_cast<unsigned long long>(n.int_value))
                        : StrPrintf("%lld", static_cast<long long>(n.int_value)));
      return Value::Int(std::move(t), static_cast<int64_t>(n.int_value), std::move(sym));
    }
    case Op::kCharConst: {
      Sym sym = ctx.MakeSym(
          StrPrintf("'%s'", EscapeChar(static_cast<char>(n.int_value)).c_str()));
      return Value::Int(ctx.types().Char(), static_cast<int64_t>(n.int_value), std::move(sym));
    }
    case Op::kFloatConst: {
      Sym sym = ctx.MakeSym(FormatDouble(n.float_value));
      return Value::Double(ctx.types().Double(), n.float_value, std::move(sym));
    }
    default:
      throw DuelError(ErrorKind::kInternal, "ConstValue on non-constant node");
  }
}

Value StringValue(EvalContext& ctx, const Node& n) {
  Addr addr = ctx.InternString(n.text);
  Sym sym = ctx.MakeSym("\"" + EscapeString(n.text) + "\"");
  return Value::Pointer(ctx.types().PointerTo(ctx.types().Char()), addr, std::move(sym));
}

Value NameValue(EvalContext& ctx, const Node& n) {
  if (const NodeInfo* info = NodeInfoFor(ctx, n); info != nullptr && info->prebound) {
    ctx.counters().name_lookups++;  // counted, but resolved without a search
    return Value::LV(info->bound_type, info->bound_addr, ctx.MakeSym(n.text));
  }
  if (auto v = ctx.LookupName(n.text)) {
    return *v;
  }
  throw DuelError(ErrorKind::kName, "unknown name '" + n.text + "'", n.range);
}

Value MakeIntValue(EvalContext& ctx, int64_t v) {
  TypeRef t = (v > std::numeric_limits<int32_t>::max() ||
               v < std::numeric_limits<int32_t>::min())
                  ? ctx.types().Long()
                  : ctx.types().Int();
  Sym sym = ctx.MakeSym(StrPrintf("%lld", static_cast<long long>(v)));
  return Value::Int(std::move(t), v, std::move(sym));
}

void ExecDecl(EvalContext& ctx, const Node& n) {
  for (const DeclItem& item : n.decls) {
    TypeRef type = ctx.ResolveTypeSpec(item.type, n.range);
    if (type->size() == 0 || !type->complete()) {
      throw DuelError(ErrorKind::kType, "cannot declare a variable of incomplete type",
                      n.range);
    }
    Addr addr = ctx.access().Alloc(type->size(), type->align());
    std::vector<uint8_t> zeros(type->size(), 0);
    ctx.access().PutBytes(addr, zeros.data(), zeros.size());
    ctx.aliases().Set(item.name, Value::LV(type, addr, ctx.MakeSym(item.name)));
  }
}

Value SizeofTypeValue(EvalContext& ctx, const Node& n) {
  TypeRef type = ResolvedTypeOf(ctx, n);
  return Value::Int(ctx.types().ULong(), static_cast<int64_t>(type->size()),
                    ctx.MakeSym("sizeof(" + n.type_spec.ToString() + ")"));
}

TypeRef ResolvedTypeOf(EvalContext& ctx, const Node& n) {
  if (const NodeInfo* info = NodeInfoFor(ctx, n); info != nullptr && info->resolved_type) {
    return info->resolved_type;
  }
  return ctx.ResolveTypeSpec(n.type_spec, n.range);
}

OpClass ClassifyOp(Op op) {
  switch (op) {
    case Op::kNeg:
    case Op::kPos:
    case Op::kBitNot:
    case Op::kNot:
    case Op::kDeref:
    case Op::kAddrOf:
    case Op::kPreInc:
    case Op::kPreDec:
    case Op::kPostInc:
    case Op::kPostDec:
    case Op::kCast:
      return OpClass::kMapUnary;
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAdd:
    case Op::kSub:
    case Op::kShl:
    case Op::kShr:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
    case Op::kBitAnd:
    case Op::kBitXor:
    case Op::kBitOr:
    case Op::kAssign:
    case Op::kMulEq:
    case Op::kDivEq:
    case Op::kModEq:
    case Op::kAddEq:
    case Op::kSubEq:
    case Op::kShlEq:
    case Op::kShrEq:
    case Op::kAndEq:
    case Op::kXorEq:
    case Op::kOrEq:
    case Op::kIndex:
      return OpClass::kBinaryProduct;
    case Op::kIfGt:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfLe:
    case Op::kIfEq:
    case Op::kIfNe:
      return OpClass::kFilter;
    default:
      return OpClass::kStructured;
  }
}

Value ApplyUnaryClass(EvalContext& ctx, const Node& n, const Value& u) {
  switch (n.op) {
    case Op::kPreInc:
    case Op::kPreDec:
    case Op::kPostInc:
    case Op::kPostDec:
      return ApplyIncDec(ctx, n.op, u, n.range);
    case Op::kCast:
      return ApplyCast(ctx, ResolvedTypeOf(ctx, n), u, n.range);
    default:
      return ApplyUnary(ctx, n.op, u, n.range);
  }
}

Value ApplyBinaryClass(EvalContext& ctx, const Node& n, const Value& u, const Value& v) {
  switch (n.op) {
    case Op::kAssign:
    case Op::kMulEq:
    case Op::kDivEq:
    case Op::kModEq:
    case Op::kAddEq:
    case Op::kSubEq:
    case Op::kShlEq:
    case Op::kShrEq:
    case Op::kAndEq:
    case Op::kXorEq:
    case Op::kOrEq:
      return ApplyAssign(ctx, n.op, u, v, n.range);
    case Op::kIndex:
      return ApplyIndex(ctx, u, v, n.range);
    default:
      return ApplyBinary(ctx, n.op, u, v, n.range);
  }
}

namespace {

bool IsSimpleIdentifier(const std::string& s) {
  if (s.empty() || (!isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_')) {
    return false;
  }
  for (char c : s) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

Value ComposeWithResult(EvalContext& ctx, const Value& subject, bool arrow, const Value& inner) {
  Value out = inner;
  if (!ctx.sym_on()) {
    return out;
  }
  ctx.counters().symbolic_builds++;
  if (inner.sym().IsLazy() || subject.sym().IsLazy()) {
    // `_` passthrough without materializing: the underscore returns the
    // subject value, so the deferred nodes are shared.
    if (inner.sym().deferred() != nullptr &&
        inner.sym().deferred() == subject.sym().deferred()) {
      return out;
    }
    const SymDeferred* d = inner.sym().deferred().get();
    if (d != nullptr && d->k == SymDeferred::K::kText && IsSimpleIdentifier(d->text)) {
      out.set_sym(subject.sym().WithMember(d->text, arrow));
      return out;
    }
    auto node = std::make_shared<SymDeferred>();
    node->k = SymDeferred::K::kWithExpr;
    node->prec = kPrecPostfix;
    node->arrow = arrow;
    node->a = subject.sym().IsLazy()
                  ? subject.sym().deferred()
                  : Sym::LazyText(subject.sym().Text(), subject.sym().prec()).deferred();
    node->b = inner.sym().IsLazy()
                  ? inner.sym().deferred()
                  : Sym::LazyText(inner.sym().Text(), inner.sym().prec()).deferred();
    out.set_sym(Sym::FromDeferred(std::move(node)));
    return out;
  }
  std::string inner_text = inner.sym().Text();
  // `_` passthrough: the inner value IS the subject; keep its original sym.
  if (inner_text == subject.sym().Text()) {
    return out;
  }
  if (IsSimpleIdentifier(inner_text)) {
    out.set_sym(subject.sym().WithMember(inner_text, arrow));
    return out;
  }
  const char* sep = arrow ? "->" : ".";
  out.set_sym(Sym::Plain(
      subject.sym().TextAsOperand(kPrecPostfix) + sep + "(" + inner_text + ")",
      kPrecPostfix));
  return out;
}

Value CallTarget(EvalContext& ctx, const std::string& name, const std::vector<Value>& args,
                 SourceRange range) {
  if (!ctx.backend().GetTargetFunction(name).has_value()) {
    throw DuelError(ErrorKind::kName, "unknown function '" + name + "'", range);
  }
  std::vector<target::RawDatum> data;
  std::vector<std::string> arg_syms;
  data.reserve(args.size());
  for (const Value& a : args) {
    Value r = ctx.Rvalue(a);
    target::RawDatum d;
    d.type = r.type();
    std::span<const uint8_t> bytes = r.bytes();
    d.bytes.assign(bytes.begin(), bytes.end());
    data.push_back(std::move(d));
    if (ctx.sym_on()) {
      arg_syms.push_back(a.sym().Text());
    }
  }
  target::RawDatum ret = ctx.access().CallFunc(name, data);
  Sym sym = ctx.sym_on() ? ctx.MakeSym(name + "(" + Join(arg_syms, ", ") + ")", kPrecPostfix)
                         : Sym::None();
  if (ret.type == nullptr || ret.type->kind() == TypeKind::kVoid) {
    return Value::RV(ctx.types().Void(), nullptr, 0, std::move(sym));
  }
  return Value::RV(ret.type, ret.bytes.data(), ret.bytes.size(), std::move(sym));
}

bool UntilMatchMode(const Node& pred) {
  switch (pred.op) {
    case Op::kIntConst:
    case Op::kCharConst:
    case Op::kFloatConst:
      return true;
    case Op::kNeg:
      return UntilMatchMode(*pred.kids[0]);
    default:
      return false;
  }
}

bool UntilEquals(EvalContext& ctx, const Value& u, const Node& pred) {
  const Node* p = &pred;
  bool neg = false;
  while (p->op == Op::kNeg) {
    neg = !neg;
    p = p->kids[0].get();
  }
  Value lit = ConstValue(ctx, *p);
  if (neg) {
    lit = ApplyUnary(ctx, Op::kNeg, lit, pred.range);
  }
  return ApplyComparison(ctx, Op::kEq, u, lit, pred.range);
}

bool ExpandAdmit(EvalContext& ctx, ExpandState& st, const Value& v) {
  if (++st.expanded > ctx.opts().max_expand_nodes) {
    throw DuelError(ErrorKind::kLimit, "graph expansion exceeded the node limit");
  }
  uint64_t key = 0;
  bool has_key = false;
  if (v.type() != nullptr && v.type()->kind() == TypeKind::kPointer) {
    Addr p = ctx.ToPtr(v);
    if (p == 0) {
      return false;  // "until a NULL pointer ... terminates the sequence"
    }
    key = p;
    has_key = true;
  } else if (v.is_lvalue()) {
    key = v.addr();
    has_key = true;
  }
  if (ctx.opts().cycle_detect && has_key) {
    if (!st.seen.insert(key).second) {
      return false;  // cycle (extension: the original did not handle cycles)
    }
  }
  return true;
}

bool ExpandReadable(EvalContext& ctx, const Value& v) {
  if (v.type() == nullptr || v.type()->kind() != TypeKind::kPointer) {
    return true;
  }
  const TypeRef& pointee = v.type()->target();
  size_t size = pointee->size() == 0 ? 1 : pointee->size();
  return ctx.access().ValidBytes(ctx.ToPtr(v), size);
}

WithScope ExpandScope(const Value& x) {
  WithScope s;
  s.subject = x;
  s.deref = x.type() != nullptr && x.type()->kind() == TypeKind::kPointer;
  return s;
}

}  // namespace duel
