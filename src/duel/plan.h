// The plan stage of the staged query pipeline (lex → parse → analyze →
// execute): a CompiledQuery is the cacheable artifact between the front
// half (text-dependent work) and the execute stage (state-dependent work).
//
// A CompiledQuery owns everything derived purely from the expression text
// and the compile-time world: the token stream, the parsed AST, and the
// analyze stage's annotation side table (sema.h). It deliberately owns NO
// target data — values are always produced against live memory — so reusing
// a plan is semantically invisible except for the work it skips.
//
// Session keeps plans in an LRU PlanCache keyed by (expression text,
// options fingerprint). Validity is epoch-based, reusing the invalidation
// machinery the access layer introduced:
//   * DebuggerBackend::SymbolEpoch() — frame changes and symbol-table
//     mutations move it; stale name bindings are rebuilt;
//   * MemoryAccess::mutation_epoch() — target calls and allocations move
//     it; plans built before may hold stale compile-time addresses;
//   * AliasTable::version() — a new alias can shadow a prebound name; the
//     plan re-checks its (usually empty) bound-name list, so alias churn
//     from `:=`-heavy queries does not evict unrelated plans.

#ifndef DUEL_DUEL_PLAN_H_
#define DUEL_DUEL_PLAN_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/duel/check.h"
#include "src/duel/parser.h"
#include "src/duel/sema.h"
#include "src/duel/token.h"
#include "src/support/counters.h"

namespace duel {

struct CompiledQuery {
  std::string text;          // the exact expression this plan compiles
  uint64_t fingerprint = 0;  // options that change compiled artifacts

  std::vector<Token> tokens;
  ParseResult parsed;  // owns the AST; parsed.num_nodes sizes the side table
  Annotations notes;

  // The check stage's verdict (check.h), cached with the plan: a warm hit
  // replays the diagnostics without re-running the inference walk. The
  // verdict depends on the same compile-time world as `notes` — its names
  // list is re-validated against the alias table by Session::PlanIsValid,
  // and the symbol/mutation epochs below cover the target side.
  CheckResult check;

  // Build-stage timings, replayed into QueryStats on cache hits as zero
  // (the stages did not run) but kept here for `plan` introspection.
  uint64_t lex_ns = 0;
  uint64_t parse_ns = 0;
  uint64_t sema_ns = 0;
  uint64_t check_ns = 0;

  // Validity epochs (see header comment). alias_version and mutation_epoch
  // are refreshed after each successful run: a query's own aliases/allocs
  // cannot invalidate its own plan (nothing the plan stores reads memory,
  // and a query's own definitions are never prebound).
  uint64_t symbol_epoch = 0;
  uint64_t mutation_epoch = 0;
  uint64_t alias_version = 0;

  uint64_t hits = 0;  // times this plan was reused
};

// Session-level LRU cache of CompiledQuery, keyed by (text, fingerprint).
// Pointers returned by Find/Insert stay valid until the entry is evicted or
// the cache is cleared (std::list nodes are stable under splicing).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  // Looks up and touches (moves to MRU). Does not check validity — the
  // session owns that policy (it needs the backend/context epochs).
  CompiledQuery* Find(const std::string& text, uint64_t fingerprint);

  // Inserts (replacing any entry with the same key) and returns the cached
  // plan; evicts the LRU entry when over capacity.
  CompiledQuery* Insert(std::unique_ptr<CompiledQuery> plan);

  // Drops one entry (a plan detected stale) or everything.
  void Erase(const std::string& text, uint64_t fingerprint);
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);

  // MRU first; for `plan` / -duel-plan introspection.
  std::vector<const CompiledQuery*> Entries() const;

  PlanCacheCounters& counters() { return counters_; }

 private:
  using Key = std::pair<std::string, uint64_t>;

  size_t capacity_;
  std::list<CompiledQuery> entries_;  // MRU first
  std::map<Key, std::list<CompiledQuery>::iterator> index_;
  PlanCacheCounters counters_;
};

}  // namespace duel

#endif  // DUEL_DUEL_PLAN_H_
