// AST-to-source formatting: renders a parsed DUEL expression back into
// concrete syntax. Round-trip property: parsing the rendered text yields an
// identical AST (modulo node ids). Used for query history editing and for
// presenting normalized queries in tools; property-tested in
// tests/format_test.cc.

#ifndef DUEL_DUEL_FORMAT_H_
#define DUEL_DUEL_FORMAT_H_

#include <string>

#include "src/duel/ast.h"

namespace duel {

std::string FormatAst(const Node& n);

}  // namespace duel

#endif  // DUEL_DUEL_FORMAT_H_
