// DUEL values.
//
// Per the paper (Implementation): "The 'values' produced during evaluation
// have a type, an actual value, and a symbolic value. The actual value is a
// value of a primitive C type or an lvalue, which is a pointer to target
// data. The symbolic value is a symbolic expression (i.e., a legal Duel
// expression) that indicates how the value was computed."
//
// Sym tracks `->member` chains structurally so the display algorithm can
// compress occurrences of ->a->a... into -->a[[n]], and so select can print
// head-->member[[i]] for elements picked out of an expansion.

#ifndef DUEL_DUEL_VALUE_H_
#define DUEL_DUEL_VALUE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/target/ctype.h"
#include "src/target/memory.h"

namespace duel {

using target::Addr;
using target::TypeKind;
using target::TypeRef;

// Operator precedences used when composing symbolic expressions (higher
// binds tighter). Mirrors the parser's grammar.
enum SymPrec {
  kPrecSeq = 0,
  kPrecAlt = 1,
  kPrecImply = 2,
  kPrecAssign = 3,
  kPrecCond = 4,
  kPrecOrOr = 5,
  kPrecAndAnd = 6,
  kPrecBitOr = 7,
  kPrecBitXor = 8,
  kPrecBitAnd = 9,
  kPrecEq = 10,
  kPrecRel = 11,
  kPrecRange = 12,
  kPrecShift = 13,
  kPrecAdd = 14,
  kPrecMul = 15,
  kPrecUnary = 16,
  kPrecPostfix = 17,
  kPrecPrimary = 18,
};

class Sym;

// A deferred symbolic derivation: an immutable DAG recording how a value was
// computed, materialized into text only if it is actually printed. This is
// the paper's proposed fix for "many of the symbolic computations are
// unnecessary, because they are never printed" (EvalOptions::SymMode::kLazy;
// experiment E3 measures eager vs lazy vs off).
struct SymDeferred {
  enum class K { kText, kBinary, kUnary, kIndex, kMember, kWithExpr, kSelected };
  K k = K::kText;
  int prec = kPrecPrimary;
  std::string text;  // literal text / operator spelling / member name
  std::shared_ptr<const SymDeferred> a;
  std::shared_ptr<const SymDeferred> b;
  bool arrow = false;     // kMember
  uint64_t index = 0;     // kSelected
};

class Sym {
 public:
  Sym() = default;

  static Sym Plain(std::string text, int prec = kPrecPrimary);
  static Sym None() { return Sym(); }

  // Deferred (lazy-mode) constructors.
  static Sym LazyText(std::string text, int prec = kPrecPrimary);
  static Sym FromDeferred(std::shared_ptr<const SymDeferred> node);

  bool IsLazy() const { return lazy_ != nullptr; }
  const std::shared_ptr<const SymDeferred>& deferred() const { return lazy_; }

  bool empty() const { return lazy_ == nullptr && head_.empty() && count_ == 0; }
  int prec() const;

  // Rendered text; chains of `->member` longer than kCompressAt render as
  // head-->member[[n]]suffix.
  std::string Text() const;
  // Text wrapped in parentheses if this sym binds looser than `min_prec`.
  std::string TextAsOperand(int min_prec) const;

  // Composition used by `.` and `->`: appends a member access. Extends the
  // structural chain when the same member repeats via `->`.
  Sym WithMember(const std::string& member, bool arrow) const;

  // Composition used by [[i]] on expansion chains: head-->member[[i]]suffix.
  // Falls back to the value's own sym (returns *this) for non-chains.
  Sym SelectedAt(uint64_t index) const;

  // Number of repeated ->member steps at which the display algorithm switches
  // to the compressed -->member[[n]] form. The paper prints 3 steps expanded
  // and 8 compressed; the threshold is unspecified, we use 4.
  static constexpr int kCompressAt = 4;

  // Renders a deferred sym by folding the DAG through the eager operations.
  static Sym Materialize(const SymDeferred& node);

 private:
  // Invariant: either count_ == 0 and head_ holds the whole text, or
  // count_ > 0 and the sym is head_ (-> member_)*count_ suffix_.
  std::string head_;
  std::string member_;
  int count_ = 0;
  std::string suffix_;
  int prec_ = kPrecPrimary;
  std::shared_ptr<const SymDeferred> lazy_;  // non-null => deferred
};

// Composes "a op b" with parenthesization by precedence; the result binds at
// `prec` (left operand allowed at same level: left-assoc).
Sym ComposeBinary(const Sym& lhs, const std::string& op, const Sym& rhs, int prec);
Sym ComposeUnary(const std::string& op, const Sym& operand);
Sym ComposeIndex(const Sym& base, const Sym& index);

// Byte storage for rvalues with a small-buffer optimization: scalar values
// (the overwhelming majority) stay inline; whole-struct rvalues spill to the
// heap. This keeps generator loops allocation-free per value.
class ByteStore {
 public:
  ByteStore() = default;

  void Assign(const void* p, size_t n) {
    size_ = n;
    if (n <= kInline) {
      heap_.clear();
      if (n != 0) {
        std::memcpy(inline_, p, n);
      }
    } else {
      heap_.assign(static_cast<const uint8_t*>(p), static_cast<const uint8_t*>(p) + n);
    }
  }

  const uint8_t* data() const { return size_ <= kInline ? inline_ : heap_.data(); }
  size_t size() const { return size_; }
  std::span<const uint8_t> span() const { return {data(), size_}; }

 private:
  static constexpr size_t kInline = 16;
  size_t size_ = 0;
  uint8_t inline_[kInline] = {};
  std::vector<uint8_t> heap_;
};

class Value {
 public:
  enum class Kind {
    kRValue,
    kLValue,
    kFrame,  // extension: a stack-frame handle produced by frames()
  };

  Value() = default;

  static Value RV(TypeRef type, const void* bytes, size_t n, Sym sym);
  static Value Int(TypeRef type, int64_t v, Sym sym);  // writes type->size() bytes
  static Value Double(TypeRef type, double v, Sym sym);
  static Value Pointer(TypeRef type, Addr a, Sym sym);
  static Value LV(TypeRef type, Addr addr, Sym sym);
  static Value BitfieldLV(TypeRef type, Addr addr, unsigned bit_offset, unsigned bit_width,
                          Sym sym);
  static Value FrameHandle(size_t frame_index, Sym sym);

  Kind kind() const { return kind_; }
  bool is_lvalue() const { return kind_ == Kind::kLValue; }
  bool is_frame() const { return kind_ == Kind::kFrame; }
  const TypeRef& type() const { return type_; }

  Addr addr() const;                          // lvalue only
  bool is_bitfield() const { return bit_width_ != 0; }
  unsigned bit_offset() const { return bit_offset_; }
  unsigned bit_width() const { return bit_width_; }
  size_t frame_index() const { return frame_index_; }

  std::span<const uint8_t> bytes() const;  // rvalue only

  const Sym& sym() const { return sym_; }
  Sym& sym() { return sym_; }
  void set_sym(Sym s) { sym_ = std::move(s); }

 private:
  Kind kind_ = Kind::kRValue;
  TypeRef type_;
  ByteStore bytes_;             // rvalue payload
  Addr addr_ = 0;               // lvalue payload
  unsigned bit_offset_ = 0;
  unsigned bit_width_ = 0;      // nonzero => bit-field lvalue
  size_t frame_index_ = 0;
  Sym sym_;
};

}  // namespace duel

#endif  // DUEL_DUEL_VALUE_H_
