// Compact type serialization for the RSP wire protocol.
//
// SerializeType renders a type as a self-contained string; a record or
// enum definition is emitted in full on its first occurrence within the
// string and by tag reference afterwards, so recursive types (struct
// symbol { ... struct symbol *next; }) round-trip. ParseSerializedType
// reconstructs the type inside the client's own TypeTable and throws
// DuelError(kProtocol) on malformed input, including trailing junk.
//
// Grammar (no whitespace):
//   basic:   v b c a h s t i j l m x y f d
//   pointer: P<type>
//   array:   A<count>:<type>
//   struct:  S<taglen>:<tag>{<member>*}   definition (first occurrence)
//            S<taglen>:<tag>;             reference / incomplete
//   union:   U... (same shapes as struct)
//   enum:    E<taglen>:<tag>{(<len>:<name>=<value>;)*}  or  E<taglen>:<tag>;
//   member:  <len>:<name>[b<width>:]<type>
//   func:    F<ret>((<len>:<name><type>)*[V])

#ifndef DUEL_TARGET_CTYPE_IO_H_
#define DUEL_TARGET_CTYPE_IO_H_

#include <string>

#include "src/target/ctype.h"

namespace duel::target {

std::string SerializeType(const TypeRef& t);

TypeRef ParseSerializedType(const std::string& wire, TypeTable& table);

}  // namespace duel::target

#endif  // DUEL_TARGET_CTYPE_IO_H_
