#include "src/target/image.h"

#include <cstdlib>

#include "src/support/strings.h"

namespace duel::target {

void SymbolTable::PushFrame(const std::string& function) {
  Frame f;
  f.function = function;
  frames_.insert(frames_.begin(), std::move(f));  // innermost first
  ++version_;
}

void SymbolTable::AddFrameLocal(Variable v) {
  if (frames_.empty()) {
    throw DuelError(ErrorKind::kInternal, "frame local added with no active frame");
  }
  frames_.front().locals.push_back(std::move(v));
  ++version_;
}

const Variable* SymbolTable::FindVariable(const std::string& name) const {
  if (!frames_.empty()) {
    for (const Variable& v : frames_.front().locals) {
      if (v.name == name) {
        return &v;
      }
    }
  }
  for (const Variable& v : globals_) {
    if (v.name == name) {
      return &v;
    }
  }
  return nullptr;
}

const FunctionSym* SymbolTable::FindFunction(const std::string& name) const {
  for (const FunctionSym& f : functions_) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

Addr TargetImage::NewCString(const std::string& s) {
  Addr a = memory_.Allocate(s.size() + 1, 1);
  memory_.Write(a, s.data(), s.size());
  uint8_t nul = 0;
  memory_.Write(a + s.size(), &nul, 1);
  return a;
}

void TargetImage::RegisterFunction(const std::string& name, TypeRef fn_type, NativeFn fn) {
  natives_[name] = std::move(fn);
  FunctionSym sym;
  sym.name = name;
  sym.type = std::move(fn_type);
  sym.addr = 0xf0000000 + natives_.size() * 0x10;  // fake code address
  symbols_.AddFunction(std::move(sym));
}

RawDatum TargetImage::Call(const std::string& name, std::span<const RawDatum> args) {
  auto it = natives_.find(name);
  if (it == natives_.end()) {
    throw DuelError(ErrorKind::kTarget, "call to unknown target function '" + name + "'");
  }
  return it->second(*this, args);
}

namespace {

constexpr size_t kMaxStringRead = 1 << 20;

std::string ReadString(const TargetImage& image, Addr addr) {
  std::string s;
  bool trunc = false;
  if (!image.memory().ReadCString(addr, kMaxStringRead, &s, &trunc)) {
    throw MemoryFault(addr, 1, StrPrintf("bad string pointer 0x%llx passed to target function",
                                         static_cast<unsigned long long>(addr)));
  }
  return s;
}

// A restricted printf interpreter: reads the format string from target
// memory and consumes one datum per conversion. Flags/width/precision are
// forwarded to the host printf with a normalized length modifier.
std::string FormatPrintf(TargetImage& image, std::span<const RawDatum> args) {
  if (args.empty()) {
    throw DuelError(ErrorKind::kTarget, "printf requires a format string");
  }
  std::string fmt = ReadString(image, static_cast<Addr>(DatumToU64(args[0])));
  std::string out;
  size_t next_arg = 1;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    size_t start = i++;
    // flags, width, precision
    while (i < fmt.size() && (std::strchr("-+ #0", fmt[i]) != nullptr)) i++;
    while (i < fmt.size() && isdigit(static_cast<unsigned char>(fmt[i]))) i++;
    if (i < fmt.size() && fmt[i] == '.') {
      i++;
      while (i < fmt.size() && isdigit(static_cast<unsigned char>(fmt[i]))) i++;
    }
    // length modifiers are parsed and dropped; we renormalize below
    while (i < fmt.size() && (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z')) i++;
    if (i >= fmt.size()) {
      throw DuelError(ErrorKind::kTarget, "printf: dangling conversion in format");
    }
    char conv = fmt[i];
    if (conv == '%') {
      out.push_back('%');
      continue;
    }
    // Spec without the length modifier, e.g. "%-8.2".
    std::string spec = fmt.substr(start, i - start);
    spec.erase(std::remove_if(spec.begin(), spec.end(),
                              [](char c) { return c == 'l' || c == 'h' || c == 'z'; }),
               spec.end());
    if (next_arg >= args.size()) {
      throw DuelError(ErrorKind::kTarget, "printf: not enough arguments for format");
    }
    const RawDatum& d = args[next_arg++];
    switch (conv) {
      case 'd':
      case 'i':
        out += StrPrintf((spec + "lld").c_str(), static_cast<long long>(DatumToI64(d)));
        break;
      case 'u':
      case 'o':
      case 'x':
      case 'X':
        out += StrPrintf((spec + "ll" + conv).c_str(),
                         static_cast<unsigned long long>(DatumToU64(d)));
        break;
      case 'c':
        out += StrPrintf((spec + "c").c_str(), static_cast<int>(DatumToI64(d)));
        break;
      case 'p':
        out += StrPrintf((spec + "llx").c_str(),
                         static_cast<unsigned long long>(DatumToU64(d)));
        break;
      case 'f':
      case 'e':
      case 'g':
      case 'F':
      case 'E':
      case 'G':
        out += StrPrintf((spec + conv).c_str(), DatumToF64(d));
        break;
      case 's':
        out += StrPrintf((spec + "s").c_str(),
                         ReadString(image, static_cast<Addr>(DatumToU64(d))).c_str());
        break;
      default:
        throw DuelError(ErrorKind::kTarget,
                        StrPrintf("printf: unsupported conversion '%%%c'", conv));
    }
  }
  return out;
}

}  // namespace

void InstallStandardFunctions(TargetImage& image) {
  TypeTable& tt = image.types();
  TypeRef charp = tt.PointerTo(tt.Char());

  image.RegisterFunction(
      "printf", tt.Function(tt.Int(), {{"fmt", charp}}, true),
      [](TargetImage& img, std::span<const RawDatum> args) {
        std::string s = FormatPrintf(img, args);
        img.AppendOutput(s);
        return MakeScalarDatum<int32_t>(img.types().Int(),
                                        static_cast<int32_t>(s.size()));
      });

  image.RegisterFunction(
      "strlen", tt.Function(tt.ULong(), {{"s", charp}}, false),
      [](TargetImage& img, std::span<const RawDatum> args) {
        if (args.empty()) {
          throw DuelError(ErrorKind::kTarget, "strlen requires an argument");
        }
        std::string s = ReadString(img, static_cast<Addr>(DatumToU64(args[0])));
        return MakeScalarDatum<uint64_t>(img.types().ULong(), s.size());
      });

  image.RegisterFunction(
      "abs", tt.Function(tt.Int(), {{"x", tt.Int()}}, false),
      [](TargetImage& img, std::span<const RawDatum> args) {
        if (args.empty()) {
          throw DuelError(ErrorKind::kTarget, "abs requires an argument");
        }
        int64_t v = DatumToI64(args[0]);
        return MakeScalarDatum<int32_t>(img.types().Int(),
                                        static_cast<int32_t>(v < 0 ? -v : v));
      });
}

}  // namespace duel::target
