#include "src/target/builder.h"

namespace duel::target {

RecordBuilder& RecordBuilder::Field(const std::string& name, const TypeRef& type) {
  Member m;
  m.name = name;
  m.type = type;
  members_.push_back(std::move(m));
  return *this;
}

RecordBuilder& RecordBuilder::Bitfield(const std::string& name, const TypeRef& type,
                                       unsigned width) {
  Member m;
  m.name = name;
  m.type = type;
  m.is_bitfield = true;
  m.bit_width = width;
  members_.push_back(std::move(m));
  return *this;
}

TypeRef RecordBuilder::Build() {
  types_->CompleteRecord(rec_, std::move(members_));
  return rec_;
}

Addr ImageBuilder::Global(const std::string& name, const TypeRef& type) {
  Addr a = Alloc(type);
  image_->symbols().AddGlobal({name, type, a});
  return a;
}

Addr ImageBuilder::Alloc(const TypeRef& type) {
  size_t size = type->size() > 0 ? type->size() : 1;
  return memory().Allocate(size, type->align());
}

Addr ImageBuilder::FrameLocal(const std::string& name, const TypeRef& type) {
  Addr a = Alloc(type);
  image_->symbols().AddFrameLocal({name, type, a});
  return a;
}

Addr ImageBuilder::FieldAddr(Addr base, const TypeRef& rec, const std::string& name) {
  const Member* m = rec->FindMember(name);
  if (m == nullptr) {
    throw DuelError(ErrorKind::kName,
                    "no member '" + name + "' in " + rec->ToString());
  }
  return base + m->offset;
}

void ImageBuilder::PokeScalar(Addr a, const TypeRef& type, int64_t v) {
  size_t size = type->size();
  if (size == 0 || size > 8) {
    throw DuelError(ErrorKind::kInternal,
                    "PokeScalar on non-scalar type " + type->ToString());
  }
  memory().Write(a, &v, size);  // little-endian truncation
}

}  // namespace duel::target
