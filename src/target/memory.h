// Segmented byte-addressable memory for the simulated target.
//
// A Memory is a small set of non-overlapping segments (text/data/stack...)
// plus a growable heap segment used by Allocate(). Accesses outside a
// mapped segment — or writes to a read-only one — raise MemoryFault, which
// the evaluator turns into the paper's "Illegal memory reference" report.

#ifndef DUEL_TARGET_MEMORY_H_
#define DUEL_TARGET_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/support/error.h"

namespace duel::target {

using Addr = uint64_t;

enum class Perm {
  kRead,
  kReadWrite,
};

class Memory {
 public:
  // Maps `size` zero-filled bytes at [base, base+size). Throws DuelError if
  // the range overlaps an existing segment.
  void AddSegment(const std::string& name, Addr base, size_t size, Perm perm);

  // Bump-allocates from the built-in heap segment (created on first use),
  // returning an address aligned to `align`. Only bytes actually allocated
  // are valid; the unallocated tail faults.
  Addr Allocate(size_t size, size_t align);

  bool Valid(Addr addr, size_t size) const;

  void Read(Addr addr, void* out, size_t size) const;        // throws MemoryFault
  bool TryRead(Addr addr, void* out, size_t size) const;
  void Write(Addr addr, const void* data, size_t size);      // throws MemoryFault

  template <typename T>
  T ReadScalar(Addr addr) const {
    T v;
    Read(addr, &v, sizeof v);
    return v;
  }

  template <typename T>
  void WriteScalar(Addr addr, T v) {
    Write(addr, &v, sizeof v);
  }

  // Reads a NUL-terminated string of at most `max` characters. Returns false
  // if `addr` itself is unmapped; sets *truncated when `max` (or the end of
  // mapped memory) is reached before the terminator.
  bool ReadCString(Addr addr, size_t max, std::string* out, bool* truncated) const;

 private:
  struct Segment {
    std::string name;
    Addr base = 0;
    size_t size = 0;
    Perm perm = Perm::kReadWrite;
    std::vector<uint8_t> bytes;
  };

  const Segment* Find(Addr addr, size_t size) const;
  Segment* FindMutable(Addr addr, size_t size);

  std::vector<Segment> segments_;
  size_t heap_index_ = SIZE_MAX;  // index into segments_ once created
  size_t heap_used_ = 0;          // bytes allocated from the heap so far
};

}  // namespace duel::target

#endif  // DUEL_TARGET_MEMORY_H_
