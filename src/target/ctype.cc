#include "src/target/ctype.h"

#include <algorithm>

namespace duel::target {

namespace {

size_t AlignUp(size_t n, size_t a) { return (n + a - 1) / a * a; }

struct BasicLayout {
  size_t size;
  size_t align;
};

BasicLayout LayoutOf(TypeKind k) {
  switch (k) {
    case TypeKind::kVoid: return {0, 1};
    case TypeKind::kBool: return {1, 1};
    case TypeKind::kChar:
    case TypeKind::kSChar:
    case TypeKind::kUChar: return {1, 1};
    case TypeKind::kShort:
    case TypeKind::kUShort: return {2, 2};
    case TypeKind::kInt:
    case TypeKind::kUInt: return {4, 4};
    case TypeKind::kLong:
    case TypeKind::kULong:
    case TypeKind::kLongLong:
    case TypeKind::kULongLong: return {8, 8};
    case TypeKind::kFloat: return {4, 4};
    case TypeKind::kDouble: return {8, 8};
    default: return {0, 1};
  }
}

}  // namespace

const Member* Type::FindMember(const std::string& name) const {
  for (const Member& m : members_) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

bool Type::IsInteger() const {
  switch (kind_) {
    case TypeKind::kBool:
    case TypeKind::kChar:
    case TypeKind::kSChar:
    case TypeKind::kUChar:
    case TypeKind::kShort:
    case TypeKind::kUShort:
    case TypeKind::kInt:
    case TypeKind::kUInt:
    case TypeKind::kLong:
    case TypeKind::kULong:
    case TypeKind::kLongLong:
    case TypeKind::kULongLong:
      return true;
    default:
      return false;
  }
}

bool Type::IsSignedInteger() const {
  switch (kind_) {
    case TypeKind::kChar:  // plain char is signed on this target
    case TypeKind::kSChar:
    case TypeKind::kShort:
    case TypeKind::kInt:
    case TypeKind::kLong:
    case TypeKind::kLongLong:
      return true;
    default:
      return false;
  }
}

bool Type::IsUnsignedInteger() const {
  return IsInteger() && !IsSignedInteger();
}

bool Type::IsFloating() const {
  return kind_ == TypeKind::kFloat || kind_ == TypeKind::kDouble;
}

bool Type::IsArithmetic() const {
  return IsInteger() || IsFloating() || kind_ == TypeKind::kEnum;
}

bool Type::IsScalar() const {
  return IsArithmetic() || kind_ == TypeKind::kPointer;
}

std::string Type::BaseName() const {
  switch (kind_) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBool: return "bool";
    case TypeKind::kChar: return "char";
    case TypeKind::kSChar: return "signed char";
    case TypeKind::kUChar: return "unsigned char";
    case TypeKind::kShort: return "short";
    case TypeKind::kUShort: return "unsigned short";
    case TypeKind::kInt: return "int";
    case TypeKind::kUInt: return "unsigned int";
    case TypeKind::kLong: return "long";
    case TypeKind::kULong: return "unsigned long";
    case TypeKind::kLongLong: return "long long";
    case TypeKind::kULongLong: return "unsigned long long";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kEnum: return "enum " + tag_;
    case TypeKind::kStruct: return "struct " + tag_;
    case TypeKind::kUnion: return "union " + tag_;
    default: return "?";
  }
}

std::string Type::Declare(const std::string& name) const {
  // The classic inside-out declarator walk: accumulate the declarator string
  // while descending through pointers/arrays/functions, parenthesizing a
  // pointer declarator whenever it binds against an array or function.
  std::string decl = name;
  const Type* t = this;
  for (;;) {
    switch (t->kind_) {
      case TypeKind::kPointer:
        decl = "*" + decl;
        t = t->target_.get();
        break;
      case TypeKind::kArray: {
        if (!decl.empty() && decl[0] == '*') {
          decl = "(" + decl + ")";
        }
        decl += "[" + std::to_string(t->array_count_) + "]";
        t = t->target_.get();
        break;
      }
      case TypeKind::kFunction: {
        if (!decl.empty() && decl[0] == '*') {
          decl = "(" + decl + ")";
        }
        std::string params;
        for (const Param& p : t->params_) {
          if (!params.empty()) {
            params += ", ";
          }
          params += p.type->Declare(p.name);
        }
        if (t->variadic_) {
          params += params.empty() ? "..." : ", ...";
        }
        decl += "(" + params + ")";
        t = t->return_type_.get();
        break;
      }
      default: {
        std::string base = t->BaseName();
        if (decl.empty()) {
          return base;
        }
        return base + " " + decl;
      }
    }
  }
}

bool TypeEquals(const TypeRef& a, const TypeRef& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a == nullptr || b == nullptr || a->kind() != b->kind()) {
    return false;
  }
  switch (a->kind()) {
    case TypeKind::kPointer:
      return TypeEquals(a->target(), b->target());
    case TypeKind::kArray:
      return a->array_count() == b->array_count() && TypeEquals(a->target(), b->target());
    case TypeKind::kStruct:
    case TypeKind::kUnion:
    case TypeKind::kEnum:
      return a->tag() == b->tag();
    case TypeKind::kFunction: {
      if (a->variadic() != b->variadic() || a->params().size() != b->params().size() ||
          !TypeEquals(a->return_type(), b->return_type())) {
        return false;
      }
      for (size_t i = 0; i < a->params().size(); ++i) {
        if (!TypeEquals(a->params()[i].type, b->params()[i].type)) {
          return false;
        }
      }
      return true;
    }
    default:
      return true;  // basic kinds match by kind alone
  }
}

TypeTable::TypeTable() {
  for (int k = 0; k <= static_cast<int>(TypeKind::kDouble); ++k) {
    auto* t = new Type(static_cast<TypeKind>(k));
    BasicLayout l = LayoutOf(t->kind_);
    t->size_ = l.size;
    t->align_ = l.align;
    basics_[k] = TypeRef(t);
  }
}

const TypeRef& TypeTable::Basic(TypeKind k) const {
  if (k > TypeKind::kDouble) {
    throw DuelError(ErrorKind::kInternal,
                    "Basic() called with a derived type kind");
  }
  return basics_[static_cast<int>(k)];
}

TypeRef TypeTable::PointerTo(const TypeRef& t) {
  std::lock_guard<std::mutex> lock(derived_mu_);
  auto it = pointers_.find(t.get());
  if (it != pointers_.end()) {
    return it->second;
  }
  auto* p = new Type(TypeKind::kPointer);
  p->size_ = 8;
  p->align_ = 8;
  p->target_ = t;
  TypeRef ref(p);
  pointers_.emplace(t.get(), ref);
  return ref;
}

TypeRef TypeTable::ArrayOf(const TypeRef& elem, size_t count) {
  std::lock_guard<std::mutex> lock(derived_mu_);
  auto key = std::make_pair(elem.get(), count);
  auto it = arrays_.find(key);
  if (it != arrays_.end()) {
    return it->second;
  }
  auto* a = new Type(TypeKind::kArray);
  a->size_ = elem->size() * count;
  a->align_ = elem->align();
  a->target_ = elem;
  a->array_count_ = count;
  TypeRef ref(a);
  arrays_.emplace(key, ref);
  return ref;
}

TypeRef TypeTable::Function(const TypeRef& ret, std::vector<Param> params, bool variadic) {
  auto* f = new Type(TypeKind::kFunction);
  f->size_ = 0;
  f->align_ = 1;
  f->return_type_ = ret;
  f->params_ = std::move(params);
  f->variadic_ = variadic;
  return TypeRef(f);
}

TypeRef TypeTable::DeclareStruct(const std::string& tag) {
  auto it = structs_.find(tag);
  if (it != structs_.end()) {
    return it->second;
  }
  auto* s = new Type(TypeKind::kStruct);
  s->complete_ = false;
  s->tag_ = tag;
  TypeRef ref(s);
  structs_.emplace(tag, ref);
  return ref;
}

TypeRef TypeTable::DeclareUnion(const std::string& tag) {
  auto it = unions_.find(tag);
  if (it != unions_.end()) {
    return it->second;
  }
  auto* u = new Type(TypeKind::kUnion);
  u->complete_ = false;
  u->tag_ = tag;
  TypeRef ref(u);
  unions_.emplace(tag, ref);
  return ref;
}

void TypeTable::CompleteRecord(const TypeRef& rec, std::vector<Member> members) {
  if (rec == nullptr || !rec->IsRecord()) {
    throw DuelError(ErrorKind::kInternal, "CompleteRecord on a non-record type");
  }
  if (rec->complete()) {
    throw DuelError(ErrorKind::kType,
                    "record '" + rec->tag() + "' is already complete");
  }
  auto* t = const_cast<Type*>(rec.get());
  bool is_union = rec->kind() == TypeKind::kUnion;
  size_t end = 0;       // bytes used so far (struct layout cursor)
  size_t align = 1;
  // Current bit-field allocation unit (struct only).
  bool in_unit = false;
  size_t unit_off = 0;
  size_t unit_size = 0;
  unsigned bit_pos = 0;
  for (Member& m : members) {
    size_t msize = m.type->size();
    size_t malign = m.type->align();
    align = std::max(align, malign);
    if (is_union) {
      m.offset = 0;
      m.bit_offset = m.is_bitfield ? 0 : m.bit_offset;
      end = std::max(end, msize);
      continue;
    }
    if (m.is_bitfield) {
      if (!in_unit || msize != unit_size || bit_pos + m.bit_width > unit_size * 8) {
        unit_off = AlignUp(end, malign);
        unit_size = msize;
        bit_pos = 0;
        in_unit = true;
        end = unit_off + unit_size;
      }
      m.offset = unit_off;
      m.bit_offset = bit_pos;
      bit_pos += m.bit_width;
    } else {
      in_unit = false;
      m.offset = AlignUp(end, malign);
      end = m.offset + msize;
    }
  }
  t->members_ = std::move(members);
  t->size_ = AlignUp(end, align);
  t->align_ = align;
  t->complete_ = true;
}

TypeRef TypeTable::DefineEnum(const std::string& tag, std::vector<Enumerator> enumerators) {
  auto it = enums_.find(tag);
  if (it != enums_.end()) {
    return it->second;
  }
  auto* e = new Type(TypeKind::kEnum);
  e->size_ = 4;
  e->align_ = 4;
  e->tag_ = tag;
  e->enumerators_ = std::move(enumerators);
  TypeRef ref(e);
  enums_.emplace(tag, ref);
  return ref;
}

void TypeTable::DefineTypedef(const std::string& name, const TypeRef& t) {
  typedefs_[name] = t;
}

TypeRef TypeTable::LookupStruct(const std::string& tag) const {
  auto it = structs_.find(tag);
  return it == structs_.end() ? nullptr : it->second;
}

TypeRef TypeTable::LookupUnion(const std::string& tag) const {
  auto it = unions_.find(tag);
  return it == unions_.end() ? nullptr : it->second;
}

TypeRef TypeTable::LookupEnum(const std::string& tag) const {
  auto it = enums_.find(tag);
  return it == enums_.end() ? nullptr : it->second;
}

TypeRef TypeTable::LookupTypedef(const std::string& name) const {
  auto it = typedefs_.find(name);
  return it == typedefs_.end() ? nullptr : it->second;
}

}  // namespace duel::target
