// The simulated target process: memory + type table + symbol table +
// native functions callable through the narrow interface.
//
// A TargetImage stands in for a live debuggee. Scenario builders populate
// it with globals, frames, and data structures; SimBackend exposes it
// through the 7-function DUEL↔debugger interface.

#ifndef DUEL_TARGET_IMAGE_H_
#define DUEL_TARGET_IMAGE_H_

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/target/ctype.h"
#include "src/target/datum.h"
#include "src/target/memory.h"

namespace duel::target {

struct Variable {
  std::string name;
  TypeRef type;
  Addr addr = 0;
};

struct FunctionSym {
  std::string name;
  TypeRef type;  // kFunction
  Addr addr = 0;
};

// One active stack frame; frames are stored innermost-first.
struct Frame {
  std::string function;
  std::vector<Variable> locals;
};

class SymbolTable {
 public:
  void AddGlobal(Variable v) {
    globals_.push_back(std::move(v));
    ++version_;
  }
  void AddFunction(FunctionSym f) {
    functions_.push_back(std::move(f));
    ++version_;
  }

  // Pushes a new innermost frame.
  void PushFrame(const std::string& function);
  void AddFrameLocal(Variable v);  // into the innermost frame

  // Scope resolution: innermost frame locals first, then globals.
  const Variable* FindVariable(const std::string& name) const;
  const FunctionSym* FindFunction(const std::string& name) const;

  size_t NumFrames() const { return frames_.size(); }
  const Frame& GetFrame(size_t i) const { return frames_.at(i); }

  const std::vector<Variable>& globals() const { return globals_; }
  const std::vector<FunctionSym>& functions() const { return functions_; }

  // Bumped on every symbol/frame mutation; DebuggerBackend::SymbolEpoch()
  // surfaces it so cached query plans can notice stale name bindings.
  uint64_t version() const { return version_; }

 private:
  std::vector<Variable> globals_;
  std::vector<FunctionSym> functions_;
  std::vector<Frame> frames_;  // innermost first
  uint64_t version_ = 0;
};

class TargetImage {
 public:
  using NativeFn = std::function<RawDatum(TargetImage&, std::span<const RawDatum>)>;

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  TypeTable& types() { return types_; }
  const TypeTable& types() const { return types_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Allocates and NUL-terminates `s` in target memory.
  Addr NewCString(const std::string& s);

  // Registers a native function and its function symbol.
  void RegisterFunction(const std::string& name, TypeRef fn_type, NativeFn fn);

  // Calls a registered native function; throws DuelError(kTarget) when
  // `name` is unknown.
  RawDatum Call(const std::string& name, std::span<const RawDatum> args);

  // Output accumulated by printf-style natives.
  std::string& output() { return output_; }
  const std::string& output() const { return output_; }
  std::string TakeOutput() {
    std::string out = std::move(output_);
    output_.clear();
    return out;
  }
  void AppendOutput(const std::string& s) { output_ += s; }

 private:
  Memory memory_;
  TypeTable types_;
  SymbolTable symbols_;
  std::map<std::string, NativeFn> natives_;
  std::string output_;
};

// Installs the standard native functions (printf, strlen, abs).
void InstallStandardFunctions(TargetImage& image);

}  // namespace duel::target

#endif  // DUEL_TARGET_IMAGE_H_
