// C type system for the simulated target: LP64 layout, struct/union/enum
// declaration and completion, bit-field packing, pointer/array interning,
// and classic C declarator printing.
//
// Types are immutable once complete and are handed out as shared
// `TypeRef`s; a `TypeTable` owns every type it creates, interns derived
// types (so `PointerTo(Int())` is pointer-identical across calls), and is
// the unit of "one debugger side" — the RSP client keeps its own table and
// reconstructs server types through ctype_io.h.

#ifndef DUEL_TARGET_CTYPE_H_
#define DUEL_TARGET_CTYPE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/error.h"

namespace duel::target {

class Type;
using TypeRef = std::shared_ptr<const Type>;

enum class TypeKind {
  kVoid,
  kBool,
  kChar,
  kSChar,
  kUChar,
  kShort,
  kUShort,
  kInt,
  kUInt,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
  kEnum,
  kPointer,
  kArray,
  kStruct,
  kUnion,
  kFunction,
};

// One member of a struct or union. `offset`/`bit_offset` are computed by
// TypeTable::CompleteRecord from declaration order; callers building member
// lists leave them zero.
struct Member {
  std::string name;
  TypeRef type;
  size_t offset = 0;
  bool is_bitfield = false;
  unsigned bit_offset = 0;  // within the allocation unit at `offset`
  unsigned bit_width = 0;
};

struct Enumerator {
  std::string name;
  int64_t value = 0;
};

// One parameter of a function type.
struct Param {
  std::string name;
  TypeRef type;
};

class Type {
 public:
  TypeKind kind() const { return kind_; }
  size_t size() const { return size_; }
  size_t align() const { return align_; }
  bool complete() const { return complete_; }

  // Record / enum tag ("symbol" of `struct symbol`).
  const std::string& tag() const { return tag_; }

  // Pointee for pointers, element type for arrays.
  const TypeRef& target() const { return target_; }
  size_t array_count() const { return array_count_; }

  const std::vector<Member>& members() const { return members_; }
  const Member* FindMember(const std::string& name) const;

  const std::vector<Enumerator>& enumerators() const { return enumerators_; }

  // Function types.
  const TypeRef& return_type() const { return return_type_; }
  const std::vector<Param>& params() const { return params_; }
  bool variadic() const { return variadic_; }

  bool IsInteger() const;
  bool IsSignedInteger() const;
  bool IsUnsignedInteger() const;
  bool IsFloating() const;
  bool IsArithmetic() const;  // integer, floating, or enum
  bool IsScalar() const;      // arithmetic or pointer
  bool IsRecord() const { return kind_ == TypeKind::kStruct || kind_ == TypeKind::kUnion; }

  // Classic C declarator rendering: Declare("x") on `int(*)[10]` gives
  // "int (*x)[10]". ToString() is Declare("").
  std::string Declare(const std::string& name) const;
  std::string ToString() const { return Declare(""); }

 private:
  friend class TypeTable;
  explicit Type(TypeKind k) : kind_(k) {}

  std::string BaseName() const;

  TypeKind kind_;
  size_t size_ = 0;
  size_t align_ = 1;
  bool complete_ = true;
  std::string tag_;
  TypeRef target_;
  size_t array_count_ = 0;
  std::vector<Member> members_;
  std::vector<Enumerator> enumerators_;
  TypeRef return_type_;
  std::vector<Param> params_;
  bool variadic_ = false;
};

// Structural equality across tables: basics by kind, pointers/arrays/
// functions recursively, records and enums by kind + tag identity.
bool TypeEquals(const TypeRef& a, const TypeRef& b);

class TypeTable {
 public:
  TypeTable();

  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  // Basic types (LP64).
  const TypeRef& Void() const { return basics_[static_cast<int>(TypeKind::kVoid)]; }
  const TypeRef& Bool() const { return basics_[static_cast<int>(TypeKind::kBool)]; }
  const TypeRef& Char() const { return basics_[static_cast<int>(TypeKind::kChar)]; }
  const TypeRef& SChar() const { return basics_[static_cast<int>(TypeKind::kSChar)]; }
  const TypeRef& UChar() const { return basics_[static_cast<int>(TypeKind::kUChar)]; }
  const TypeRef& Short() const { return basics_[static_cast<int>(TypeKind::kShort)]; }
  const TypeRef& UShort() const { return basics_[static_cast<int>(TypeKind::kUShort)]; }
  const TypeRef& Int() const { return basics_[static_cast<int>(TypeKind::kInt)]; }
  const TypeRef& UInt() const { return basics_[static_cast<int>(TypeKind::kUInt)]; }
  const TypeRef& Long() const { return basics_[static_cast<int>(TypeKind::kLong)]; }
  const TypeRef& ULong() const { return basics_[static_cast<int>(TypeKind::kULong)]; }
  const TypeRef& LongLong() const { return basics_[static_cast<int>(TypeKind::kLongLong)]; }
  const TypeRef& ULongLong() const { return basics_[static_cast<int>(TypeKind::kULongLong)]; }
  const TypeRef& Float() const { return basics_[static_cast<int>(TypeKind::kFloat)]; }
  const TypeRef& Double() const { return basics_[static_cast<int>(TypeKind::kDouble)]; }

  // The basic type for `k`; throws DuelError(kInternal) for derived kinds.
  const TypeRef& Basic(TypeKind k) const;

  // Derived types (interned: repeated calls return the identical object).
  // These two are the only TypeTable mutations evaluation itself performs,
  // so they are the only ones that are thread-safe: concurrent read-only
  // queries of the serve layer intern pointer/array types while sharing one
  // image under a reader lock. Everything else (Declare/Define/Complete)
  // still requires external exclusion.
  TypeRef PointerTo(const TypeRef& t);
  TypeRef ArrayOf(const TypeRef& elem, size_t count);
  TypeRef Function(const TypeRef& ret, std::vector<Param> params, bool variadic);

  // Records: declare (or fetch) an incomplete tagged record, then complete
  // it with a member list. Completion computes offsets, bit-field packing,
  // size, and alignment; completing twice throws.
  TypeRef DeclareStruct(const std::string& tag);
  TypeRef DeclareUnion(const std::string& tag);
  void CompleteRecord(const TypeRef& rec, std::vector<Member> members);

  TypeRef DefineEnum(const std::string& tag, std::vector<Enumerator> enumerators);

  void DefineTypedef(const std::string& name, const TypeRef& t);

  // All lookups return nullptr when the tag/name is unknown.
  TypeRef LookupStruct(const std::string& tag) const;
  TypeRef LookupUnion(const std::string& tag) const;
  TypeRef LookupEnum(const std::string& tag) const;
  TypeRef LookupTypedef(const std::string& name) const;

  const std::map<std::string, TypeRef>& structs() const { return structs_; }
  const std::map<std::string, TypeRef>& unions() const { return unions_; }
  const std::map<std::string, TypeRef>& enums() const { return enums_; }
  const std::map<std::string, TypeRef>& typedefs() const { return typedefs_; }

 private:
  TypeRef basics_[15];
  mutable std::mutex derived_mu_;  // guards the two runtime-interning maps
  std::map<const Type*, TypeRef> pointers_;
  std::map<std::pair<const Type*, size_t>, TypeRef> arrays_;
  std::map<std::string, TypeRef> structs_;
  std::map<std::string, TypeRef> unions_;
  std::map<std::string, TypeRef> enums_;
  std::map<std::string, TypeRef> typedefs_;
};

}  // namespace duel::target

#endif  // DUEL_TARGET_CTYPE_H_
