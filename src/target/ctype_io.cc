#include "src/target/ctype_io.h"

#include <set>
#include <string>

#include "src/support/strings.h"

namespace duel::target {

namespace {

char BasicCode(TypeKind k) {
  switch (k) {
    case TypeKind::kVoid: return 'v';
    case TypeKind::kBool: return 'b';
    case TypeKind::kChar: return 'c';
    case TypeKind::kSChar: return 'a';
    case TypeKind::kUChar: return 'h';
    case TypeKind::kShort: return 's';
    case TypeKind::kUShort: return 't';
    case TypeKind::kInt: return 'i';
    case TypeKind::kUInt: return 'j';
    case TypeKind::kLong: return 'l';
    case TypeKind::kULong: return 'm';
    case TypeKind::kLongLong: return 'x';
    case TypeKind::kULongLong: return 'y';
    case TypeKind::kFloat: return 'f';
    case TypeKind::kDouble: return 'd';
    default: return 0;
  }
}

class Serializer {
 public:
  std::string Run(const TypeRef& t) {
    Emit(t);
    return out_;
  }

 private:
  void EmitTag(const std::string& tag) {
    out_ += std::to_string(tag.size()) + ":" + tag;
  }

  void Emit(const TypeRef& t) {
    if (char c = BasicCode(t->kind()); c != 0) {
      out_.push_back(c);
      return;
    }
    switch (t->kind()) {
      case TypeKind::kPointer:
        out_.push_back('P');
        Emit(t->target());
        break;
      case TypeKind::kArray:
        out_ += "A" + std::to_string(t->array_count()) + ":";
        Emit(t->target());
        break;
      case TypeKind::kStruct:
      case TypeKind::kUnion: {
        out_.push_back(t->kind() == TypeKind::kStruct ? 'S' : 'U');
        EmitTag(t->tag());
        std::string key = (t->kind() == TypeKind::kStruct ? "s:" : "u:") + t->tag();
        if (!t->complete() || !emitted_.insert(key).second) {
          out_.push_back(';');
          break;
        }
        out_.push_back('{');
        for (const Member& m : t->members()) {
          EmitTag(m.name);
          if (m.is_bitfield) {
            out_ += "b" + std::to_string(m.bit_width) + ":";
          }
          Emit(m.type);
        }
        out_.push_back('}');
        break;
      }
      case TypeKind::kEnum: {
        out_.push_back('E');
        EmitTag(t->tag());
        if (!emitted_.insert("e:" + t->tag()).second) {
          out_.push_back(';');
          break;
        }
        out_.push_back('{');
        for (const Enumerator& e : t->enumerators()) {
          EmitTag(e.name);
          out_ += "=" + std::to_string(e.value) + ";";
        }
        out_.push_back('}');
        break;
      }
      case TypeKind::kFunction: {
        out_.push_back('F');
        Emit(t->return_type());
        out_.push_back('(');
        for (const Param& p : t->params()) {
          EmitTag(p.name);
          Emit(p.type);
        }
        if (t->variadic()) {
          out_.push_back('V');
        }
        out_.push_back(')');
        break;
      }
      default:
        throw DuelError(ErrorKind::kInternal, "unserializable type " + t->ToString());
    }
  }

  std::string out_;
  std::set<std::string> emitted_;
};

class Parser {
 public:
  Parser(const std::string& wire, TypeTable& table) : wire_(wire), table_(table) {}

  TypeRef Run() {
    TypeRef t = ParseType();
    if (pos_ != wire_.size()) {
      throw Malformed("trailing junk after type");
    }
    return t;
  }

 private:
  DuelError Malformed(const std::string& what) const {
    return DuelError(ErrorKind::kProtocol,
                     StrPrintf("malformed serialized type at offset %zu: %s", pos_,
                               what.c_str()));
  }

  char Next() {
    if (pos_ >= wire_.size()) {
      throw Malformed("unexpected end of input");
    }
    return wire_[pos_++];
  }

  char Peek() const { return pos_ < wire_.size() ? wire_[pos_] : '\0'; }

  void Expect(char c) {
    if (Next() != c) {
      --pos_;
      throw Malformed(StrPrintf("expected '%c'", c));
    }
  }

  uint64_t ParseNumber() {
    bool neg = false;
    if (Peek() == '-') {
      neg = true;
      ++pos_;
    }
    if (!isdigit(static_cast<unsigned char>(Peek()))) {
      throw Malformed("expected a number");
    }
    uint64_t v = 0;
    while (isdigit(static_cast<unsigned char>(Peek()))) {
      v = v * 10 + static_cast<uint64_t>(Next() - '0');
    }
    return neg ? static_cast<uint64_t>(-static_cast<int64_t>(v)) : v;
  }

  std::string ParseTag() {
    size_t len = ParseNumber();
    Expect(':');
    if (pos_ + len > wire_.size()) {
      throw Malformed("name runs past end of input");
    }
    std::string s = wire_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  TypeRef ParseRecord(bool is_struct) {
    std::string tag = ParseTag();
    TypeRef rec = is_struct ? table_.DeclareStruct(tag) : table_.DeclareUnion(tag);
    char c = Next();
    if (c == ';') {
      return rec;
    }
    if (c != '{') {
      throw Malformed("expected '{' or ';' after record tag");
    }
    std::vector<Member> members;
    while (Peek() != '}') {
      Member m;
      m.name = ParseTag();
      if (Peek() == 'b') {
        ++pos_;
        m.is_bitfield = true;
        m.bit_width = static_cast<unsigned>(ParseNumber());
        Expect(':');
      }
      m.type = ParseType();
      members.push_back(std::move(m));
    }
    Expect('}');
    // A re-sent definition for a tag the client already completed is parsed
    // (to consume the input) but otherwise ignored.
    if (!rec->complete()) {
      table_.CompleteRecord(rec, std::move(members));
    }
    return rec;
  }

  TypeRef ParseEnum() {
    std::string tag = ParseTag();
    char c = Next();
    if (c == ';') {
      if (TypeRef e = table_.LookupEnum(tag)) {
        return e;
      }
      return table_.DefineEnum(tag, {});
    }
    if (c != '{') {
      throw Malformed("expected '{' or ';' after enum tag");
    }
    std::vector<Enumerator> enumerators;
    while (Peek() != '}') {
      Enumerator e;
      e.name = ParseTag();
      Expect('=');
      e.value = static_cast<int64_t>(ParseNumber());
      Expect(';');
      enumerators.push_back(std::move(e));
    }
    Expect('}');
    return table_.DefineEnum(tag, std::move(enumerators));
  }

  TypeRef ParseType() {
    char c = Next();
    switch (c) {
      case 'v': return table_.Void();
      case 'b': return table_.Bool();
      case 'c': return table_.Char();
      case 'a': return table_.SChar();
      case 'h': return table_.UChar();
      case 's': return table_.Short();
      case 't': return table_.UShort();
      case 'i': return table_.Int();
      case 'j': return table_.UInt();
      case 'l': return table_.Long();
      case 'm': return table_.ULong();
      case 'x': return table_.LongLong();
      case 'y': return table_.ULongLong();
      case 'f': return table_.Float();
      case 'd': return table_.Double();
      case 'P': return table_.PointerTo(ParseType());
      case 'A': {
        size_t count = ParseNumber();
        Expect(':');
        return table_.ArrayOf(ParseType(), count);
      }
      case 'S': return ParseRecord(/*is_struct=*/true);
      case 'U': return ParseRecord(/*is_struct=*/false);
      case 'E': return ParseEnum();
      case 'F': {
        TypeRef ret = ParseType();
        Expect('(');
        std::vector<Param> params;
        bool variadic = false;
        while (Peek() != ')') {
          if (Peek() == 'V') {
            ++pos_;
            variadic = true;
            break;
          }
          Param p;
          p.name = ParseTag();
          p.type = ParseType();
          params.push_back(std::move(p));
        }
        Expect(')');
        return table_.Function(ret, std::move(params), variadic);
      }
      default:
        --pos_;
        throw Malformed(StrPrintf("unknown type code '%c'", c));
    }
  }

  const std::string& wire_;
  TypeTable& table_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeType(const TypeRef& t) { return Serializer().Run(t); }

TypeRef ParseSerializedType(const std::string& wire, TypeTable& table) {
  return Parser(wire, table).Run();
}

}  // namespace duel::target
