// Fluent builder for populating a TargetImage: globals, frames, records,
// strings, and raw pokes. Scenario constructors use this to lay out the
// debuggee data structures the paper's examples query.

#ifndef DUEL_TARGET_BUILDER_H_
#define DUEL_TARGET_BUILDER_H_

#include <string>
#include <vector>

#include "src/target/image.h"

namespace duel::target {

class ImageBuilder;

// Collects members for a tagged struct/union, then completes it.
class RecordBuilder {
 public:
  RecordBuilder& Field(const std::string& name, const TypeRef& type);
  RecordBuilder& Bitfield(const std::string& name, const TypeRef& type, unsigned width);
  TypeRef Build();

 private:
  friend class ImageBuilder;
  RecordBuilder(TypeTable& types, TypeRef rec) : types_(&types), rec_(std::move(rec)) {}

  TypeTable* types_;
  TypeRef rec_;
  std::vector<Member> members_;
};

class ImageBuilder {
 public:
  explicit ImageBuilder(TargetImage& image) : image_(&image) {}

  TargetImage& image() { return *image_; }
  TypeTable& types() { return image_->types(); }
  Memory& memory() { return image_->memory(); }

  // Type shorthands.
  TypeRef Int() { return types().Int(); }
  TypeRef UInt() { return types().UInt(); }
  TypeRef Char() { return types().Char(); }
  TypeRef Long() { return types().Long(); }
  TypeRef Float() { return types().Float(); }
  TypeRef Double() { return types().Double(); }
  TypeRef Ptr(const TypeRef& t) { return types().PointerTo(t); }
  TypeRef Arr(const TypeRef& t, size_t n) { return types().ArrayOf(t, n); }

  // Declares (or fetches) a possibly-incomplete tagged struct.
  TypeRef StructRef(const std::string& tag) { return types().DeclareStruct(tag); }

  RecordBuilder Struct(const std::string& tag) {
    return RecordBuilder(types(), types().DeclareStruct(tag));
  }
  RecordBuilder Union(const std::string& tag) {
    return RecordBuilder(types(), types().DeclareUnion(tag));
  }

  // Storage: allocates target memory (and registers a symbol for Global /
  // FrameLocal).
  Addr Global(const std::string& name, const TypeRef& type);
  Addr Alloc(const TypeRef& type);
  Addr String(const std::string& s) { return image_->NewCString(s); }

  // Frames (innermost last pushed).
  void PushFrame(const std::string& function) { image_->symbols().PushFrame(function); }
  Addr FrameLocal(const std::string& name, const TypeRef& type);

  // Address of member `name` of the record at `base`. Throws DuelError for
  // unknown members.
  Addr FieldAddr(Addr base, const TypeRef& rec, const std::string& name);

  // Raw pokes.
  void PokeI8(Addr a, int8_t v) { memory().WriteScalar(a, v); }
  void PokeI32(Addr a, int32_t v) { memory().WriteScalar(a, v); }
  void PokeI64(Addr a, int64_t v) { memory().WriteScalar(a, v); }
  void PokeU64(Addr a, uint64_t v) { memory().WriteScalar(a, v); }
  void PokeFloat(Addr a, float v) { memory().WriteScalar(a, v); }
  void PokeDouble(Addr a, double v) { memory().WriteScalar(a, v); }
  void PokePtr(Addr a, Addr v) { memory().WriteScalar(a, v); }

  // Writes `v` using the size of `type` (integers, enums, pointers).
  void PokeScalar(Addr a, const TypeRef& type, int64_t v);

 private:
  TargetImage* image_;
};

}  // namespace duel::target

#endif  // DUEL_TARGET_BUILDER_H_
