#include "src/target/memory.h"

#include "src/support/strings.h"

namespace duel::target {

namespace {

constexpr Addr kHeapBase = 0x10000000;

bool Overlaps(Addr a_base, size_t a_size, Addr b_base, size_t b_size) {
  return a_base < b_base + b_size && b_base < a_base + a_size;
}

}  // namespace

void Memory::AddSegment(const std::string& name, Addr base, size_t size, Perm perm) {
  for (const Segment& s : segments_) {
    if (Overlaps(base, size, s.base, s.size)) {
      throw DuelError(ErrorKind::kMemory,
                      StrPrintf("segment '%s' at 0x%llx overlaps segment '%s'",
                                name.c_str(), static_cast<unsigned long long>(base),
                                s.name.c_str()));
    }
  }
  Segment seg;
  seg.name = name;
  seg.base = base;
  seg.size = size;
  seg.perm = perm;
  seg.bytes.resize(size);
  segments_.push_back(std::move(seg));
}

Addr Memory::Allocate(size_t size, size_t align) {
  if (align == 0) {
    align = 1;
  }
  if (heap_index_ == SIZE_MAX) {
    heap_index_ = segments_.size();
    Segment heap;
    heap.name = "heap";
    heap.base = kHeapBase;
    heap.size = 0;
    heap.perm = Perm::kReadWrite;
    segments_.push_back(std::move(heap));
  }
  Segment& heap = segments_[heap_index_];
  size_t off = (heap_used_ + align - 1) / align * align;
  heap_used_ = off + size;
  heap.size = heap_used_;
  heap.bytes.resize(heap_used_);
  return heap.base + off;
}

const Memory::Segment* Memory::Find(Addr addr, size_t size) const {
  for (const Segment& s : segments_) {
    if (addr >= s.base && size <= s.size && addr - s.base <= s.size - size) {
      return &s;
    }
  }
  return nullptr;
}

Memory::Segment* Memory::FindMutable(Addr addr, size_t size) {
  return const_cast<Segment*>(Find(addr, size));
}

bool Memory::Valid(Addr addr, size_t size) const {
  return Find(addr, size) != nullptr;
}

void Memory::Read(Addr addr, void* out, size_t size) const {
  const Segment* s = Find(addr, size);
  if (s == nullptr) {
    throw MemoryFault(addr, size,
                      StrPrintf("illegal memory reference: read of %zu bytes at 0x%llx",
                                size, static_cast<unsigned long long>(addr)));
  }
  std::memcpy(out, s->bytes.data() + (addr - s->base), size);
}

bool Memory::TryRead(Addr addr, void* out, size_t size) const {
  const Segment* s = Find(addr, size);
  if (s == nullptr) {
    return false;
  }
  std::memcpy(out, s->bytes.data() + (addr - s->base), size);
  return true;
}

void Memory::Write(Addr addr, const void* data, size_t size) {
  Segment* s = FindMutable(addr, size);
  if (s == nullptr) {
    throw MemoryFault(addr, size,
                      StrPrintf("illegal memory reference: write of %zu bytes at 0x%llx",
                                size, static_cast<unsigned long long>(addr)));
  }
  if (s->perm != Perm::kReadWrite) {
    throw MemoryFault(addr, size,
                      StrPrintf("write to read-only segment '%s' at 0x%llx",
                                s->name.c_str(), static_cast<unsigned long long>(addr)));
  }
  std::memcpy(s->bytes.data() + (addr - s->base), data, size);
}

bool Memory::ReadCString(Addr addr, size_t max, std::string* out, bool* truncated) const {
  out->clear();
  *truncated = false;
  if (!Valid(addr, 1)) {
    return false;
  }
  for (size_t i = 0; i < max; ++i) {
    char c;
    if (!TryRead(addr + i, &c, 1)) {
      *truncated = true;  // string runs off the end of mapped memory
      return true;
    }
    if (c == '\0') {
      return true;
    }
    out->push_back(c);
  }
  *truncated = true;
  return true;
}

}  // namespace duel::target
