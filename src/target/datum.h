// Raw datum codec: a typed bag of bytes crossing the narrow DUEL↔debugger
// interface (function-call arguments and return values).

#ifndef DUEL_TARGET_DATUM_H_
#define DUEL_TARGET_DATUM_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/target/ctype.h"

namespace duel::target {

struct RawDatum {
  TypeRef type;
  std::vector<uint8_t> bytes;
};

// Encodes a host scalar into a datum of `type` (little-endian, truncating or
// zero-extending to the type's size).
template <typename T>
RawDatum MakeScalarDatum(const TypeRef& type, T value) {
  RawDatum d;
  d.type = type;
  size_t n = type != nullptr && type->size() > 0 ? type->size() : sizeof(T);
  d.bytes.resize(n);
  std::memcpy(d.bytes.data(), &value, n < sizeof(T) ? n : sizeof(T));
  return d;
}

// Decodes a datum as an unsigned 64-bit value (zero-extended).
inline uint64_t DatumToU64(const RawDatum& d) {
  uint64_t v = 0;
  size_t n = d.bytes.size() < 8 ? d.bytes.size() : 8;
  std::memcpy(&v, d.bytes.data(), n);
  return v;
}

// Decodes a datum as a signed 64-bit value, sign-extending from the datum's
// width when its type is a signed integer.
inline int64_t DatumToI64(const RawDatum& d) {
  uint64_t v = DatumToU64(d);
  size_t n = d.bytes.size();
  if (n > 0 && n < 8) {
    bool sign_extend = d.type == nullptr || d.type->IsSignedInteger() ||
                       (d.type != nullptr && d.type->kind() == TypeKind::kEnum);
    uint64_t sign = 1ull << (n * 8 - 1);
    if (sign_extend && (v & sign)) {
      v |= ~((sign << 1) - 1);
    }
  }
  return static_cast<int64_t>(v);
}

// Decodes a datum as a double (float or double payloads).
inline double DatumToF64(const RawDatum& d) {
  if (d.bytes.size() == 4) {
    float f;
    std::memcpy(&f, d.bytes.data(), 4);
    return f;
  }
  double v = 0;
  size_t n = d.bytes.size() < 8 ? d.bytes.size() : 8;
  std::memcpy(&v, d.bytes.data(), n);
  return v;
}

}  // namespace duel::target

#endif  // DUEL_TARGET_DATUM_H_
