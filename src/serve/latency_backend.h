// A latency-injecting decorator over any DebuggerBackend.
//
// The serve benchmark's concurrency story is I/O overlap: against a remote
// nub every narrow call is a wire round trip, and N sessions make progress
// while one blocks. An in-process SimBackend answers in nanoseconds, which
// would make worker-pool scaling unmeasurable on a small machine — so the
// closed-loop load generator wraps each per-session backend in this
// decorator, charging a fixed per-call delay that models the round trip.
// Vectored reads charge one delay per *request* (that is the point of
// qDuelReadV: many ranges, one round trip).
//
// Purely a test/bench utility; the service itself never injects latency.

#ifndef DUEL_SERVE_LATENCY_BACKEND_H_
#define DUEL_SERVE_LATENCY_BACKEND_H_

#include <chrono>
#include <thread>
#include <utility>

#include "src/dbg/backend.h"

namespace duel::serve {

class LatencyBackend : public dbg::DebuggerBackend {
 public:
  // `inner` must outlive this decorator. `per_call_us` is the simulated
  // round-trip time charged to every narrow call.
  LatencyBackend(dbg::DebuggerBackend& inner, uint64_t per_call_us)
      : inner_(&inner), per_call_us_(per_call_us) {}

  void GetTargetBytes(target::Addr addr, void* out, size_t size) override {
    Charge();
    inner_->GetTargetBytes(addr, out, size);
  }
  void PutTargetBytes(target::Addr addr, const void* in, size_t size) override {
    Charge();
    inner_->PutTargetBytes(addr, in, size);
  }
  bool ValidTargetBytes(target::Addr addr, size_t size) override {
    Charge();
    return inner_->ValidTargetBytes(addr, size);
  }
  target::Addr AllocTargetSpace(size_t size, size_t align) override {
    Charge();
    return inner_->AllocTargetSpace(size, align);
  }
  size_t ReadTargetPrefix(target::Addr addr, void* out, size_t size) override {
    Charge();
    return inner_->ReadTargetPrefix(addr, out, size);
  }
  std::vector<std::vector<uint8_t>> ReadTargetRanges(
      std::span<const dbg::ReadRange> ranges) override {
    Charge();  // one round trip regardless of range count
    return inner_->ReadTargetRanges(ranges);
  }
  void BeginQueryEpoch() override { inner_->BeginQueryEpoch(); }
  uint64_t SymbolEpoch() override { return inner_->SymbolEpoch(); }
  target::RawDatum CallTargetFunc(const std::string& name,
                                  std::span<const target::RawDatum> args) override {
    Charge();
    return inner_->CallTargetFunc(name, args);
  }
  std::optional<dbg::VariableInfo> GetTargetVariable(const std::string& name) override {
    Charge();
    return inner_->GetTargetVariable(name);
  }
  std::optional<dbg::FunctionInfo> GetTargetFunction(const std::string& name) override {
    Charge();
    return inner_->GetTargetFunction(name);
  }
  target::TypeRef GetTargetTypedef(const std::string& name) override {
    Charge();
    return inner_->GetTargetTypedef(name);
  }
  target::TypeRef GetTargetStruct(const std::string& tag) override {
    Charge();
    return inner_->GetTargetStruct(tag);
  }
  target::TypeRef GetTargetUnion(const std::string& tag) override {
    Charge();
    return inner_->GetTargetUnion(tag);
  }
  target::TypeRef GetTargetEnum(const std::string& tag) override {
    Charge();
    return inner_->GetTargetEnum(tag);
  }
  std::optional<dbg::EnumeratorInfo> GetTargetEnumerator(const std::string& name) override {
    Charge();
    return inner_->GetTargetEnumerator(name);
  }
  size_t NumFrames() override {
    Charge();
    return inner_->NumFrames();
  }
  std::string FrameFunction(size_t frame) override {
    Charge();
    return inner_->FrameFunction(frame);
  }
  std::vector<dbg::FrameVariable> FrameLocals(size_t frame) override {
    Charge();
    return inner_->FrameLocals(frame);
  }
  target::TypeTable& Types() override { return inner_->Types(); }

 private:
  void Charge() {
    if (per_call_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(per_call_us_));
    }
  }

  dbg::DebuggerBackend* inner_;
  uint64_t per_call_us_;
};

}  // namespace duel::serve

#endif  // DUEL_SERVE_LATENCY_BACKEND_H_
