// The wire face of the concurrent query service.
//
// SocketEndpoint puts a QueryService behind real kernel byte streams: each
// Connect() yields one socketpair connection served by its own thread (the
// in-process analog of a thread-per-connection accept loop, matching
// rsp::SocketTransport's discipline), speaking RSP-framed packets with a
// qDuel* vocabulary:
//
//   qDuelOpen                        open a session      -> S<id>
//   qDuelEval:<id>:<expr-hex>        evaluate            -> R<text-hex>   (ok)
//                                                        |  Q<text-hex>   (query error)
//                                                        |  B             (queue full: busy)
//                                                        |  E00           (no such session)
//                                                        |  E01           (shutting down)
//   qDuelCancel:<id>:<reason-hex>    cancel in-flight    -> OK | E00
//   qDuelClose:<id>                  close session       -> OK | E00
//   qDuelStats                       service stats       -> T<json-hex>
//
// (numbers hex; unknown requests get the empty RSP response). The typed `B`
// keeps admission control end-to-end: a full queue is distinguishable from
// a failed query at the far end of the wire.
//
// The connection thread blocks inside QueryService::Eval while the worker
// pool runs the query — N connections drive N concurrent requests. The
// serve vocabulary is deliberately disjoint from the rsp debugger verbs:
// this endpoint fronts whole queries, not narrow-interface calls, so the
// service's locking never wraps raw backend access.

#ifndef DUEL_SERVE_ENDPOINT_H_
#define DUEL_SERVE_ENDPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/duel/session.h"
#include "src/rsp/packet.h"
#include "src/serve/service.h"

namespace duel::serve {

class SocketEndpoint {
 public:
  explicit SocketEndpoint(QueryService& service) : service_(&service) {}
  ~SocketEndpoint();  // closes every connection and joins its thread

  SocketEndpoint(const SocketEndpoint&) = delete;
  SocketEndpoint& operator=(const SocketEndpoint&) = delete;

  // Opens one connection; returns the client-side fd (caller owns it; speak
  // RSP-framed qDuel* packets, or hand it to EndpointClient).
  int Connect();

  // Handles one request payload (exposed for direct tests of the verb
  // parsing, without a socket in between).
  std::string Handle(const std::string& request);

 private:
  void ConnectionLoop(int fd);

  QueryService* service_;
  std::mutex mu_;  // guards threads_ (Connect vs destructor)
  std::vector<std::thread> threads_;
  std::vector<int> server_fds_;
};

// A typed client over one endpoint connection fd (takes ownership).
class EndpointClient {
 public:
  explicit EndpointClient(int fd) : fd_(fd) {}
  ~EndpointClient();

  EndpointClient(const EndpointClient&) = delete;
  EndpointClient& operator=(const EndpointClient&) = delete;

  // Opens a service session; returns its id (0 on protocol failure).
  uint64_t Open();

  struct EvalReply {
    SubmitStatus status = SubmitStatus::kAccepted;
    bool ok = false;      // meaningful when status == kAccepted
    std::string text;     // the query's rendered output (or error text)
  };
  // Throws DuelError(kProtocol) if the server answers with an empty reply or
  // E03 — both mean this side sent something the server could not parse, not
  // that the session is missing.
  EvalReply Eval(uint64_t session, const std::string& expr);

  bool Cancel(uint64_t session, const std::string& reason);
  bool Close(uint64_t session);
  std::string StatsJson();

 private:
  std::string RoundTrip(const std::string& request);

  int fd_;
  rsp::PacketDecoder rx_;
};

}  // namespace duel::serve

#endif  // DUEL_SERVE_ENDPOINT_H_
