#include "src/serve/classify.h"

namespace duel::serve {

const char* QueryClassName(QueryClass c) {
  return c == QueryClass::kReadOnly ? "read-only" : "mutating";
}

namespace {

bool OpMutatesTarget(Op op) {
  switch (op) {
    // Assignments write through an lvalue, which may be target memory.
    case Op::kAssign:
    case Op::kMulEq:
    case Op::kDivEq:
    case Op::kModEq:
    case Op::kAddEq:
    case Op::kSubEq:
    case Op::kShlEq:
    case Op::kShrEq:
    case Op::kAndEq:
    case Op::kXorEq:
    case Op::kOrEq:
    case Op::kPreInc:
    case Op::kPreDec:
    case Op::kPostInc:
    case Op::kPostDec:
      return true;
    // A target call can write anywhere.
    case Op::kCall:
      return true;
    // Declarations allocate target space (and write through it later).
    case Op::kDecl:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool AstMutatesTarget(const Node& n) {
  if (OpMutatesTarget(n.op)) {
    return true;
  }
  for (const NodePtr& k : n.kids) {
    if (k != nullptr && AstMutatesTarget(*k)) {
      return true;
    }
  }
  return false;
}

QueryClass Classify(const CompiledQuery& plan) {
  if (plan.check.has_side_effects) {
    return QueryClass::kMutating;
  }
  if (plan.parsed.root != nullptr && AstMutatesTarget(*plan.parsed.root)) {
    return QueryClass::kMutating;
  }
  return QueryClass::kReadOnly;
}

}  // namespace duel::serve
