#include "src/serve/endpoint.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/support/strings.h"

namespace duel::serve {

namespace {

// MSG_NOSIGNAL: a client that disconnected with a response still in flight
// must surface as EPIPE on this thread, not a process-killing SIGPIPE.
void WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw DuelError(ErrorKind::kProtocol,
                      StrPrintf("socket write failed: %s", strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
}

std::string HexText(std::string_view s) { return HexEncode(s.data(), s.size()); }

bool DecodeText(std::string_view hex, std::string* out) {
  std::vector<uint8_t> bytes;
  if (!HexDecode(hex, &bytes)) {
    return false;
  }
  out->assign(bytes.begin(), bytes.end());
  return true;
}

}  // namespace

// --- SocketEndpoint ----------------------------------------------------------

SocketEndpoint::~SocketEndpoint() {
  std::vector<std::thread> threads;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    fds.swap(server_fds_);
  }
  for (int fd : fds) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks the connection thread's read
  }
  for (std::thread& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
  for (int fd : fds) {
    ::close(fd);
  }
}

int SocketEndpoint::Connect() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw DuelError(ErrorKind::kProtocol,
                    StrPrintf("socketpair failed: %s", strerror(errno)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  server_fds_.push_back(fds[1]);
  threads_.emplace_back([this, fd = fds[1]] { ConnectionLoop(fd); });
  return fds[0];
}

void SocketEndpoint::ConnectionLoop(int fd) {
  rsp::PacketDecoder rx;
  char buf[512];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      return;  // peer closed (or endpoint shutting down)
    }
    rx.Feed(buf, static_cast<size_t>(n));
    try {
      while (auto request = rx.NextPacket()) {
        const char ack = '+';
        WriteAll(fd, &ack, 1);
        std::string response = rsp::EncodePacket(Handle(*request));
        WriteAll(fd, response.data(), response.size());
      }
    } catch (const DuelError&) {
      return;  // peer disconnected mid-response
    }
  }
}

std::string SocketEndpoint::Handle(const std::string& request) {
  if (request == "qDuelOpen") {
    return StrPrintf("S%llx", static_cast<unsigned long long>(service_->OpenSession()));
  }
  if (StartsWith(request, "qDuelEval:")) {
    std::string_view rest = std::string_view(request).substr(10);
    size_t colon = rest.find(':');
    uint64_t id = 0;
    std::string expr;
    if (colon == std::string_view::npos || !ParseHexU64(rest.substr(0, colon), &id) ||
        !DecodeText(rest.substr(colon + 1), &expr)) {
      return "E03";
    }
    QueryService::Outcome out = service_->Eval(id, expr);
    switch (out.status) {
      case SubmitStatus::kBusy:
        return "B";
      case SubmitStatus::kNoSuchClient:
        return "E00";
      case SubmitStatus::kShutdown:
        return "E01";
      case SubmitStatus::kAccepted:
        break;
    }
    return (out.result.ok ? "R" : "Q") + HexText(out.result.Text());
  }
  if (StartsWith(request, "qDuelCancel:")) {
    std::string_view rest = std::string_view(request).substr(12);
    size_t colon = rest.find(':');
    uint64_t id = 0;
    std::string reason;
    if (colon == std::string_view::npos || !ParseHexU64(rest.substr(0, colon), &id) ||
        !DecodeText(rest.substr(colon + 1), &reason)) {
      return "E03";
    }
    return service_->Cancel(id, reason) ? "OK" : "E00";
  }
  if (StartsWith(request, "qDuelClose:")) {
    uint64_t id = 0;
    if (!ParseHexU64(std::string_view(request).substr(11), &id)) {
      return "E03";
    }
    return service_->CloseSession(id) ? "OK" : "E00";
  }
  if (request == "qDuelStats") {
    return "T" + HexText(service_->stats().ToJson());
  }
  return "";  // unknown verb: the RSP convention
}

// --- EndpointClient ----------------------------------------------------------

EndpointClient::~EndpointClient() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }
}

std::string EndpointClient::RoundTrip(const std::string& request) {
  std::string wire = rsp::EncodePacket(request);
  WriteAll(fd_, wire.data(), wire.size());
  char buf[512];
  for (;;) {
    if (auto response = rx_.NextPacket()) {
      return *response;
    }
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) {
      throw DuelError(ErrorKind::kProtocol, "query service closed the connection");
    }
    rx_.Feed(buf, static_cast<size_t>(n));
    rx_.TakeAcks();
  }
}

uint64_t EndpointClient::Open() {
  std::string r = RoundTrip("qDuelOpen");
  uint64_t id = 0;
  if (r.empty() || r[0] != 'S' || !ParseHexU64(std::string_view(r).substr(1), &id)) {
    return 0;
  }
  return id;
}

EndpointClient::EvalReply EndpointClient::Eval(uint64_t session, const std::string& expr) {
  std::string r = RoundTrip(StrPrintf("qDuelEval:%llx:", static_cast<unsigned long long>(session)) +
                            HexText(expr));
  EvalReply reply;
  if (r == "B") {
    reply.status = SubmitStatus::kBusy;
    return reply;
  }
  if (r == "E01") {
    reply.status = SubmitStatus::kShutdown;
    return reply;
  }
  if (r.empty() || r == "E03") {
    // Unknown verb / malformed request: an encoding bug on this side, not a
    // verdict about the session. Surface it as the protocol error it is
    // rather than letting callers retry against a "missing" session.
    throw DuelError(ErrorKind::kProtocol,
                    r.empty() ? "query service did not recognize qDuelEval"
                              : "query service rejected a malformed qDuelEval");
  }
  if (r == "E00") {
    reply.status = SubmitStatus::kNoSuchClient;
    return reply;
  }
  reply.status = SubmitStatus::kAccepted;
  reply.ok = r[0] == 'R';
  DecodeText(std::string_view(r).substr(1), &reply.text);
  return reply;
}

bool EndpointClient::Cancel(uint64_t session, const std::string& reason) {
  return RoundTrip(StrPrintf("qDuelCancel:%llx:", static_cast<unsigned long long>(session)) +
                   HexText(reason)) == "OK";
}

bool EndpointClient::Close(uint64_t session) {
  return RoundTrip(StrPrintf("qDuelClose:%llx", static_cast<unsigned long long>(session))) == "OK";
}

std::string EndpointClient::StatsJson() {
  std::string r = RoundTrip("qDuelStats");
  std::string json;
  if (!r.empty() && r[0] == 'T') {
    DecodeText(std::string_view(r).substr(1), &json);
  }
  return json;
}

}  // namespace duel::serve
