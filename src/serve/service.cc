#include "src/serve/service.h"

#include <future>
#include <utility>

#include "src/serve/classify.h"
#include "src/support/strings.h"

namespace duel::serve {

const char* SubmitStatusName(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kBusy:
      return "busy";
    case SubmitStatus::kNoSuchClient:
      return "no-such-client";
    case SubmitStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::string ServeStats::Summary() const {
  return StrPrintf(
      "clients=%zu workers=%zu queued=%zu in_flight=%zu submitted=%llu "
      "completed=%llu ok=%llu errors=%llu cancelled=%llu busy=%llu "
      "read_only=%llu mutating=%llu epoch=%llu",
      clients, workers, queue_depth, in_flight,
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(query_errors),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(rejected_busy),
      static_cast<unsigned long long>(read_only),
      static_cast<unsigned long long>(mutating),
      static_cast<unsigned long long>(mutation_epoch));
}

std::string ServeStats::ToJson() const {
  std::string out = "{";
  out += StrPrintf(
      "\"clients\":%zu,\"workers\":%zu,\"queue_depth\":%zu,\"in_flight\":%zu,"
      "\"submitted\":%llu,\"completed\":%llu,\"ok\":%llu,\"query_errors\":%llu,"
      "\"cancelled\":%llu,\"rejected_busy\":%llu,\"read_only\":%llu,"
      "\"mutating\":%llu,\"mutation_epoch\":%llu",
      clients, workers, queue_depth, in_flight,
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(query_errors),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(rejected_busy),
      static_cast<unsigned long long>(read_only),
      static_cast<unsigned long long>(mutating),
      static_cast<unsigned long long>(mutation_epoch));
  out += ",\"latency_ns\":" + latency_ns.ToJson();
  out += ",\"queue_ns\":" + queue_ns.ToJson();
  out += "}";
  return out;
}

QueryService::QueryService(BackendFactory factory, ServeOptions opts)
    : factory_(std::move(factory)), opts_(opts) {
  if (opts_.workers == 0) {
    opts_.workers = 1;
  }
  workers_.reserve(opts_.workers);
  for (size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

uint64_t QueryService::OpenSession() {
  auto c = std::make_unique<Client>();
  c->backend = factory_();
  SessionOptions so = opts_.session;
  if (!so.governor_limits.any()) {
    so.governor_limits = opts_.governor_limits;
  }
  c->session = std::make_unique<Session>(*c->backend, so);
  c->seen_epoch = mutation_epoch_.load(std::memory_order_acquire);

  std::lock_guard<std::mutex> lock(mu_);
  c->id = next_client_id_++;
  uint64_t id = c->id;
  clients_.emplace(id, std::move(c));
  return id;
}

bool QueryService::CloseSession(uint64_t client) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return false;
  }
  it->second->closing = true;  // rejects new submissions; queued work still drains
  // Re-look the client up by id on every wake: a concurrent CloseSession for
  // the same id may erase it while we wait, and a captured Client* would then
  // dangle. Not-found counts as drained.
  idle_cv_.wait(lock, [this, client] {
    auto i = clients_.find(client);
    return i == clients_.end() ||
           (i->second->queue.empty() && !i->second->running);
  });
  return clients_.erase(client) != 0;  // false: a duplicate close beat us to it
}

SubmitStatus QueryService::Submit(uint64_t client, std::string expr,
                                  std::function<void(QueryResult)> done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    return SubmitStatus::kShutdown;
  }
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second->closing) {
    return SubmitStatus::kNoSuchClient;
  }
  if (queued_total_ >= opts_.queue_limit) {
    rejected_busy_++;
    return SubmitStatus::kBusy;  // typed rejection: never silently dropped
  }
  Request req;
  req.expr = std::move(expr);
  req.done = std::move(done);
  req.enqueue_ns = obs::NowNs();
  it->second->queue.push_back(std::move(req));
  queued_total_++;
  submitted_++;
  work_cv_.notify_one();
  return SubmitStatus::kAccepted;
}

QueryService::Outcome QueryService::Eval(uint64_t client, const std::string& expr) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  Outcome out;
  out.status = Submit(client, expr,
                      [promise](QueryResult r) { promise->set_value(std::move(r)); });
  if (out.status != SubmitStatus::kAccepted) {
    return out;
  }
  out.result = future.get();
  return out;
}

bool QueryService::Cancel(uint64_t client, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return false;
  }
  // Safe cross-thread: Cancel only flips the governor's atomic flag (the
  // session thread observes it at its next step checkpoint). A no-op when
  // the client has nothing in flight or its governor is not armed.
  it->second->session->governor().Cancel(reason);
  return true;
}

Session* QueryService::session(uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  return it == clients_.end() ? nullptr : it->second->session.get();
}

ServeStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.ok = ok_;
  s.query_errors = query_errors_;
  s.cancelled = cancelled_;
  s.rejected_busy = rejected_busy_;
  s.read_only = read_only_;
  s.mutating = mutating_;
  s.queue_depth = queued_total_;
  s.in_flight = in_flight_;
  s.clients = clients_.size();
  s.workers = workers_.size();
  s.mutation_epoch = mutation_epoch_.load(std::memory_order_acquire);
  s.latency_ns = latency_ns_;
  s.queue_ns = queue_ns_;
  return s;
}

void QueryService::Shutdown() {
  std::vector<Request> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    for (auto& [id, c] : clients_) {
      for (Request& r : c->queue) {
        orphaned.push_back(std::move(r));
      }
      c->queue.clear();
      if (c->running) {
        c->session->governor().Cancel("service shutting down");
      }
    }
    queued_total_ = 0;
    // The orphans below complete with kCancel without passing through a
    // worker; account for them here so submitted == completed + queue_depth +
    // in_flight still holds after shutdown.
    completed_ += orphaned.size();
    cancelled_ += orphaned.size();
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
  // Queued-but-never-run requests complete with a typed error — a promise
  // blocked in Eval must not hang forever.
  for (Request& r : orphaned) {
    QueryResult dead;
    dead.ok = false;
    dead.error = "query cancelled: service shutting down";
    dead.error_kind = ErrorKind::kCancel;
    if (r.done) {
      r.done(std::move(dead));
    }
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  workers_.clear();
}

QueryService::Client* QueryService::PickWork() {
  if (clients_.empty()) {
    return nullptr;
  }
  // Fairness: resume the scan just past the last dispatched client id, so a
  // client with a deep queue cannot starve the others.
  auto start = clients_.upper_bound(rr_last_);
  for (size_t i = 0, n = clients_.size(); i < n; ++i) {
    if (start == clients_.end()) {
      start = clients_.begin();
    }
    Client* c = start->second.get();
    if (!c->running && !c->queue.empty()) {
      rr_last_ = c->id;
      return c;
    }
    ++start;
  }
  return nullptr;
}

void QueryService::SyncEpoch(Client& c) {
  uint64_t now = mutation_epoch_.load(std::memory_order_acquire);
  if (c.seen_epoch != now) {
    // Another session mutated the shared target since this one last ran:
    // drop its block cache and invalidate its cached plans, exactly as a
    // local target call/alloc would. Runs on the thread that owns the
    // session (this worker), never cross-thread.
    c.session->context().access().NoteExternalMutation();
    c.seen_epoch = now;
  }
}

QueryResult QueryService::RunOne(Client& c, const std::string& expr, bool* was_mutating) {
  std::shared_lock<std::shared_mutex> read_lock(target_mu_);
  // Sync under the shared lock: a writer bumps mutation_epoch_ while still
  // holding the exclusive lock, so once we hold the reader lock the epoch we
  // load covers every write that could have preceded us. Syncing before
  // acquisition would let a write that we blocked behind slip past the check
  // and leave stale pre-mutation bytes in this session's caches.
  SyncEpoch(c);
  // Compile (or warm-hit) under the reader lock: the front half resolves
  // names and types against shared tables. A plan that fails to lex/parse is
  // read-only — Query reproduces the error without touching target data.
  const CompiledQuery* plan = c.session->Prepare(expr);
  bool mutating = plan != nullptr && Classify(*plan) == QueryClass::kMutating;
  *was_mutating = mutating;
  if (!mutating) {
    return c.session->Query(expr);
  }
  read_lock.unlock();
  std::unique_lock<std::shared_mutex> write_lock(target_mu_);
  // Another writer may have run between the two locks; re-sync so this
  // session's caches don't carry pre-write bytes into its own query.
  SyncEpoch(c);
  QueryResult result = c.session->Query(expr);
  // Publish the mutation; this session has trivially seen its own write.
  c.seen_epoch = mutation_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return result;
}

void QueryService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      if (stopping_) {
        return true;
      }
      for (const auto& [id, c] : clients_) {
        if (!c->running && !c->queue.empty()) {
          return true;
        }
      }
      return false;
    });
    if (stopping_) {
      return;
    }
    Client* c = PickWork();
    if (c == nullptr) {
      continue;  // another worker claimed it first
    }
    Request req = std::move(c->queue.front());
    c->queue.pop_front();
    queued_total_--;
    c->running = true;
    in_flight_++;
    const uint64_t dispatch_ns = obs::NowNs();
    queue_ns_.Record(dispatch_ns - req.enqueue_ns);
    lock.unlock();

    bool mutated = false;
    QueryResult result = RunOne(*c, req.expr, &mutated);

    lock.lock();
    c->running = false;
    in_flight_--;
    completed_++;
    (mutated ? mutating_ : read_only_)++;
    if (result.ok) {
      ok_++;
    } else if (result.error_kind == ErrorKind::kCancel) {
      cancelled_++;
    } else {
      query_errors_++;
    }
    latency_ns_.Record(obs::NowNs() - req.enqueue_ns);
    // This client may have more queued work (now runnable again), and
    // CloseSession may be waiting for it to drain.
    work_cv_.notify_one();
    idle_cv_.notify_all();
    lock.unlock();
    if (req.done) {
      req.done(std::move(result));
    }
    lock.lock();
  }
}

}  // namespace duel::serve
