// Read/write classification of compiled queries.
//
// The concurrent query service runs read-only queries from different
// sessions in parallel under a shared (reader) target lock; anything that
// can mutate shared target state takes the writer lock and bumps the
// service's mutation epoch. Classification must therefore be *sound in one
// direction only*: a mutating query must never classify read-only (it would
// race every concurrent reader), while classifying a read-only query as
// mutating merely serialises it.
//
// Two independent sources feed the verdict, OR-ed together:
//
//   - the check stage's side-effect inference (CheckResult::has_side_effects,
//     computed once per compiled plan and cached with it);
//   - a conservative AST scan for the syntactic mutators: assignment in all
//     its spellings, ++/--, target calls, and declarations (which allocate
//     target space).
//
// The scan backstops the checker: CheckQuery swallows internal errors and
// returns partial results, so its flag alone is not a safety guarantee.

#ifndef DUEL_SERVE_CLASSIFY_H_
#define DUEL_SERVE_CLASSIFY_H_

#include "src/duel/ast.h"
#include "src/duel/plan.h"

namespace duel::serve {

enum class QueryClass {
  kReadOnly,  // touches no shared target state: runs under the reader lock
  kMutating,  // may write/alloc/call into the target: takes the writer lock
};

const char* QueryClassName(QueryClass c);

// The syntactic half: true when any node in the tree can mutate target
// state. Session-local effects (alias definition via `:=`, `#`) do not
// count — each session is single-threaded, so its alias table is private.
bool AstMutatesTarget(const Node& n);

// The full verdict for a compiled plan: checker inference OR AST scan.
QueryClass Classify(const CompiledQuery& plan);

}  // namespace duel::serve

#endif  // DUEL_SERVE_CLASSIFY_H_
