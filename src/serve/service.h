// The concurrent query service: one shared target, N client sessions.
//
// The paper's duel is a single-user command inside one debugger. This
// subsystem is the "debugger as a service" shape: one QueryService owns a
// shared target (through a backend factory producing per-session views of
// it) and serves many concurrent clients, each with its own Session —
// private aliases, private plan cache, private governor.
//
// Request flow:
//
//   Submit ── admission ──> per-client FIFO ── round-robin ──> worker pool
//                │                                                 │
//                └ queue full -> SubmitStatus::kBusy       classify (read/write)
//                                                                  │
//                                      read-only: shared target lock, parallel
//                                      mutating:  writer lock + epoch bump
//
// Scheduling is fair per client, not per request: workers pick the next
// client after the previously dispatched one (round-robin over client ids)
// that has queued work and no query in flight — a client hammering the
// service cannot starve the others, and one session never runs two queries
// at once (Sessions are single-threaded by design).
//
// Consistency: read-only queries from different sessions run truly in
// parallel against the shared image (reads are const; the type table's
// runtime interning is internally locked). Any query that can mutate the
// target classifies as mutating (see classify.h), runs exclusively, and
// bumps the service's mutation epoch; before a session runs, the scheduler
// compares the epoch it last saw and calls NoteExternalMutation() so its
// block cache and cached plans are invalidated exactly when another session
// mutated the world — idle sessions are never touched cross-thread.
//
// Runaway protection: every session's governor is armed per query from the
// service's default limits (deadline / step budget / read-byte budget), so
// an `L-->next` over a cyclic list dies with a span-carrying kCancel
// diagnostic and partial results while every other session keeps running.
// Cancel(client, reason) trips the same mechanism from outside.

#ifndef DUEL_SERVE_SERVICE_H_
#define DUEL_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/dbg/backend.h"
#include "src/duel/session.h"
#include "src/support/obs/metrics.h"

namespace duel::serve {

struct ServeOptions {
  size_t workers = 4;       // worker threads executing queries
  size_t queue_limit = 64;  // max queued requests across all clients

  // Default governor limits armed for every query (a session template may
  // override by carrying its own limits). Zeroing all three runs ungoverned.
  GovernorLimits governor_limits{/*deadline_ms=*/5000,
                                 /*max_steps=*/25'000'000,
                                 /*max_read_bytes=*/256ull << 20};

  // Template for per-client sessions (engine, eval options, check mode...).
  SessionOptions session;
};

// Typed admission verdict: the wire layer maps these onto distinct
// responses, so a full queue is never confused with a failed query.
enum class SubmitStatus {
  kAccepted,
  kBusy,          // queue_limit reached: retry later
  kNoSuchClient,  // unknown or closing client id
  kShutdown,      // service is stopping
};

const char* SubmitStatusName(SubmitStatus s);

// A point-in-time snapshot of the service counters (see stats()).
struct ServeStats {
  uint64_t submitted = 0;      // accepted requests
  uint64_t completed = 0;      // requests whose callback has run or is running
  uint64_t ok = 0;             // completed with result.ok
  uint64_t query_errors = 0;   // completed with !result.ok (excluding cancels)
  uint64_t cancelled = 0;      // completed with a kCancel diagnostic
  uint64_t rejected_busy = 0;  // admission rejections (kBusy)
  uint64_t read_only = 0;      // ran under the shared lock
  uint64_t mutating = 0;       // ran under the writer lock
  size_t queue_depth = 0;      // requests queued right now (gauge)
  size_t in_flight = 0;        // queries executing right now (gauge)
  size_t clients = 0;          // open sessions
  size_t workers = 0;
  uint64_t mutation_epoch = 0;  // bumps per mutating query

  obs::Histogram latency_ns;  // submit -> completion, end to end
  obs::Histogram queue_ns;    // submit -> dispatch (time spent queued)

  std::string Summary() const;  // one line, grep-stable
  std::string ToJson() const;
};

class QueryService {
 public:
  // Each client session gets its own backend instance (its own counters,
  // instrumentation and client-side caches) over the shared target — the
  // factory is called once per OpenSession. It must produce backends that
  // tolerate concurrent *reads* of the shared target; the service
  // serialises everything that mutates it.
  using BackendFactory = std::function<std::unique_ptr<dbg::DebuggerBackend>()>;

  explicit QueryService(BackendFactory factory, ServeOptions opts = {});
  ~QueryService();  // Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Opens a new client session; returns its id (never 0).
  uint64_t OpenSession();

  // Waits for the client's queued/in-flight work to drain, then discards
  // the session. False when the id is unknown.
  bool CloseSession(uint64_t client);

  // Asynchronous submission. On kAccepted, `done` runs exactly once on a
  // worker thread with the query's result; on any other status it never
  // runs. `done` must not call back into the service.
  SubmitStatus Submit(uint64_t client, std::string expr,
                      std::function<void(QueryResult)> done);

  // Blocking convenience: Submit + wait. `result` is meaningful only when
  // status == kAccepted.
  struct Outcome {
    SubmitStatus status = SubmitStatus::kAccepted;
    QueryResult result;
  };
  Outcome Eval(uint64_t client, const std::string& expr);

  // Trips the client's governor from outside: its in-flight query (if any)
  // aborts at the next step checkpoint with `reason`. Queued requests still
  // run. False when the id is unknown.
  bool Cancel(uint64_t client, const std::string& reason);

  // Tells the service the target mutated behind its back (e.g. a direct
  // write through some out-of-band channel): every session revalidates
  // before its next query.
  void NoteDirectMutation() { mutation_epoch_.fetch_add(1, std::memory_order_acq_rel); }

  ServeStats stats() const;

  // The client's session, for configuration between queries (options,
  // governor limits). Must not be called while the client has queued or
  // in-flight work — sessions are single-threaded. Null when unknown.
  Session* session(uint64_t client);

  // Stops accepting work, fails queued requests (their callbacks run with a
  // shutdown error), cancels in-flight queries and joins the workers.
  void Shutdown();

 private:
  struct Request {
    std::string expr;
    std::function<void(QueryResult)> done;
    uint64_t enqueue_ns = 0;
  };

  struct Client {
    uint64_t id = 0;
    std::unique_ptr<dbg::DebuggerBackend> backend;
    std::unique_ptr<Session> session;
    std::deque<Request> queue;
    bool running = false;  // a worker is inside this client's session
    bool closing = false;
    uint64_t seen_epoch = 0;  // last service mutation epoch this session saw
  };

  void WorkerLoop();

  // Round-robin pick: the next client after `rr_last_` with queued work and
  // no query in flight. Null when nothing is runnable.
  Client* PickWork();

  // Runs one query on the client's session under the right target lock.
  // Called without mu_; fills `was_mutating`.
  QueryResult RunOne(Client& c, const std::string& expr, bool* was_mutating);

  // Re-syncs the session with mutations other sessions performed since it
  // last ran. Caller must be about to run on c's session (c.running).
  void SyncEpoch(Client& c);

  BackendFactory factory_;
  ServeOptions opts_;

  mutable std::mutex mu_;               // guards everything below
  std::condition_variable work_cv_;     // workers: work available / stopping
  std::condition_variable idle_cv_;     // CloseSession: client drained
  std::map<uint64_t, std::unique_ptr<Client>> clients_;
  uint64_t next_client_id_ = 1;
  uint64_t rr_last_ = 0;  // id of the last client dispatched
  size_t queued_total_ = 0;
  size_t in_flight_ = 0;
  bool stopping_ = false;

  // Stats (guarded by mu_; gauges derived from the fields above).
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t ok_ = 0;
  uint64_t query_errors_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t rejected_busy_ = 0;
  uint64_t read_only_ = 0;
  uint64_t mutating_ = 0;
  obs::Histogram latency_ns_;
  obs::Histogram queue_ns_;

  // The shared-target lock: read-only queries hold it shared, mutating
  // queries exclusively. Taken *outside* mu_ (never both at once in a way
  // that inverts: workers release mu_ before touching target_mu_).
  std::shared_mutex target_mu_;

  // Bumped after every mutating query (and by NoteDirectMutation).
  std::atomic<uint64_t> mutation_epoch_{0};

  std::vector<std::thread> workers_;
};

}  // namespace duel::serve

#endif  // DUEL_SERVE_SERVICE_H_
