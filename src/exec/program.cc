#include "src/exec/program.h"

#include "src/support/strings.h"

namespace duel::exec {

namespace {

bool IsNoOpLine(const std::string& line) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' && i + 1 < line.size() && line[i + 1] == '#') {
      return true;  // comment-only line
    }
    if (!isspace(static_cast<unsigned char>(line[i]))) {
      return false;
    }
  }
  return true;  // blank
}

}  // namespace

TargetProgram TargetProgram::Parse(const std::vector<std::string>& lines,
                                   const target::TargetImage& image) {
  TargetProgram p;
  for (size_t i = 0; i < lines.size(); ++i) {
    p.lines_.push_back(lines[i]);
    Stmt stmt;
    if (!IsNoOpLine(lines[i])) {
      try {
        Parser parser(lines[i], [&image](const std::string& name) {
          return image.types().LookupTypedef(name) != nullptr;
        });
        ParseResult r = parser.Parse();
        stmt.root = std::move(r.root);
        stmt.num_nodes = r.num_nodes;
      } catch (const DuelError& e) {
        throw DuelError(ErrorKind::kParse,
                        StrPrintf("line %zu: %s", i + 1, e.what()), e.range());
      }
    }
    p.statements_.push_back(std::move(stmt));
  }
  return p;
}

}  // namespace duel::exec
