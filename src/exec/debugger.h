// A stepping debugger over the simulated debuggee, with DUEL expressions as
// breakpoint conditions and watchpoints — the facilities the paper's
// Discussion proposes. Experiment E10 (bench_watchpoints) measures the cost
// the paper worried about.

#ifndef DUEL_EXEC_DEBUGGER_H_
#define DUEL_EXEC_DEBUGGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/baseline.h"
#include "src/duel/assertions.h"
#include "src/duel/session.h"
#include "src/exec/program.h"

namespace duel::exec {

enum class StopReason {
  kStep,        // one statement executed, nothing fired
  kBreakpoint,
  kWatchpoint,
  kAssertion,   // a DUEL assertion stopped holding
  kFinished,    // ran off the end of the program
  kError,       // the program faulted (detail holds the report)
};

struct StopInfo {
  StopReason reason = StopReason::kStep;
  size_t line = 0;     // line about to execute (breakpoint) / just executed
  int index = -1;      // breakpoint or watchpoint index
  std::string detail;  // watchpoint change report / error text
};

class Debugger {
 public:
  // The session's backend must be attached to `image`. The program is
  // borrowed and must outlive the debugger.
  Debugger(target::TargetImage& image, dbg::DebuggerBackend& backend,
           const TargetProgram& program, SessionOptions opts = {});

  // --- breakpoints ---------------------------------------------------------
  // Stops before executing `line` (0-based). `condition` is a DUEL
  // expression; the breakpoint fires when the condition produces at least
  // one non-zero value (so generator one-liners like `x[..100] <? 0` work).
  // Empty condition = unconditional. Returns the breakpoint index.
  int AddBreakpoint(size_t line, std::string condition = "");
  void ClearBreakpoints() { breakpoints_.clear(); }
  // Index-taking accessors are total: an out-of-range (or negative) index
  // reads as "never fired" instead of undefined behaviour — callers hold
  // indices across Clear* calls.
  uint64_t BreakpointHits(int index) const {
    return InRange(index, breakpoints_.size()) ? breakpoints_[index].hits : 0;
  }

  // --- watchpoints -----------------------------------------------------------
  // A DUEL expression re-evaluated after every statement; fires when its
  // value *sequence* changes. The expression can watch a scalar (`x`), a
  // slice (`x[..100] >? 0`) or a whole structure (`L-->next->value`).
  int AddWatchpoint(std::string expr);
  void ClearWatchpoints() { watchpoints_.clear(); }
  uint64_t WatchpointFires(int index) const {
    return InRange(index, watchpoints_.size()) ? watchpoints_[index].fires : 0;
  }

  // Address watchpoints: raw byte ranges, checked by comparing target memory
  // after each statement — the "hardware watchpoint" baseline E10 compares
  // DUEL expression watchpoints against.
  int AddAddressWatch(target::Addr addr, size_t size);
  uint64_t AddressWatchFires(int index) const {
    return InRange(index, addr_watches_.size()) ? addr_watches_[index].fires : 0;
  }

  // --- displays ---------------------------------------------------------------
  // Expressions re-evaluated and rendered at every stop (gdb's `display`).
  int AddDisplay(std::string expr);
  // Renders all display expressions against the current state.
  std::vector<std::string> RenderDisplays();

  // --- assertions (paper Discussion) -----------------------------------------
  // A DUEL assertion checked after every statement; execution stops when it
  // transitions from holding to violated (and can continue past it).
  int AddAssertion(std::string name, std::string expr);
  uint64_t AssertionViolations(int index) const {
    return InRange(index, asserts_.size()) ? asserts_[index].violations : 0;
  }

  // --- execution --------------------------------------------------------------
  // Executes one statement (after honouring breakpoints at the current pc).
  StopInfo Step();
  // Runs until a breakpoint/watchpoint fires, an error occurs, or the
  // program finishes.
  StopInfo Continue();
  // Rewinds the pc to the start (target memory keeps its current contents,
  // as it would in a real process that is re-entered).
  void Rewind() { pc_ = 0; }

  size_t pc() const { return pc_; }
  bool finished() const { return pc_ >= program_->size(); }
  const TargetProgram& program() const { return *program_; }

  // Interactive DUEL queries at the stop (shares alias state with
  // conditions/watchpoints).
  Session& duel() { return session_; }

  // Number of DUEL condition/watchpoint evaluations performed (E10).
  uint64_t guard_evals() const { return guard_evals_; }

 private:
  struct Breakpoint {
    size_t line;
    std::string condition;
    uint64_t hits = 0;
  };
  struct Watchpoint {
    std::string expr;
    std::vector<std::string> last;
    bool primed = false;
    uint64_t fires = 0;
  };
  struct TrackedAssertion {
    std::string name;
    std::string expr;
    bool was_violated = false;
    uint64_t violations = 0;
  };
  struct AddressWatch {
    target::Addr addr;
    size_t size;
    std::vector<uint8_t> last;
    bool primed = false;
    uint64_t fires = 0;
  };

  bool ConditionHolds(const std::string& condition);
  // Returns a change report, or "" if unchanged.
  std::string EvalWatchpoint(Watchpoint& wp);
  StopInfo ExecuteCurrent();

  target::TargetImage* image_;
  const TargetProgram* program_;
  Session session_;
  EvalContext exec_ctx_;  // the program's own variables (decl aliases) live here
  size_t pc_ = 0;
  static bool InRange(int index, size_t size) {
    return index >= 0 && static_cast<size_t>(index) < size;
  }

  std::vector<Breakpoint> breakpoints_;
  std::vector<Watchpoint> watchpoints_;
  std::vector<TrackedAssertion> asserts_;
  std::vector<std::string> displays_;
  std::vector<AddressWatch> addr_watches_;
  bool skip_bp_once_ = false;
  uint64_t guard_evals_ = 0;
};

}  // namespace duel::exec

#endif  // DUEL_EXEC_DEBUGGER_H_
