#include "src/exec/debugger.h"

#include "src/duel/output.h"
#include "src/support/strings.h"

namespace duel::exec {

Debugger::Debugger(target::TargetImage& image, dbg::DebuggerBackend& backend,
                   const TargetProgram& program, SessionOptions opts)
    : image_(&image),
      program_(&program),
      session_(backend, opts),
      exec_ctx_(backend, EvalOptions()) {}

int Debugger::AddBreakpoint(size_t line, std::string condition) {
  if (line >= program_->size()) {
    throw DuelError(ErrorKind::kTarget,
                    StrPrintf("breakpoint line %zu out of range", line + 1));
  }
  breakpoints_.push_back(Breakpoint{line, std::move(condition)});
  return static_cast<int>(breakpoints_.size()) - 1;
}

int Debugger::AddWatchpoint(std::string expr) {
  watchpoints_.push_back(Watchpoint{std::move(expr), {}, false, 0});
  return static_cast<int>(watchpoints_.size()) - 1;
}

int Debugger::AddAddressWatch(target::Addr addr, size_t size) {
  addr_watches_.push_back(AddressWatch{addr, size, {}, false, 0});
  return static_cast<int>(addr_watches_.size()) - 1;
}

int Debugger::AddDisplay(std::string expr) {
  displays_.push_back(std::move(expr));
  return static_cast<int>(displays_.size()) - 1;
}

std::vector<std::string> Debugger::RenderDisplays() {
  std::vector<std::string> out;
  for (size_t i = 0; i < displays_.size(); ++i) {
    QueryResult r = session_.Query(displays_[i]);
    std::string line = StrPrintf("%zu: %s = ", i, displays_[i].c_str());
    if (!r.ok) {
      line += "<" + r.error + ">";
    } else if (r.lines.empty()) {
      line += "(no values)";
    } else if (r.lines.size() == 1) {
      line += r.lines[0];
    } else {
      line += StrPrintf("(%zu values) %s ... %s", r.lines.size(), r.lines.front().c_str(),
                        r.lines.back().c_str());
    }
    out.push_back(std::move(line));
  }
  return out;
}

int Debugger::AddAssertion(std::string name, std::string expr) {
  asserts_.push_back(TrackedAssertion{std::move(name), std::move(expr), false, 0});
  return static_cast<int>(asserts_.size()) - 1;
}

bool Debugger::ConditionHolds(const std::string& condition) {
  if (condition.empty()) {
    return true;
  }
  guard_evals_++;
  QueryResult r = session_.Query(condition);
  if (!r.ok) {
    throw DuelError(ErrorKind::kTarget, "breakpoint condition failed: " + r.error);
  }
  for (const ResultEntry& e : r.entries) {
    if (e.value != "0" && e.value != "false") {
      return true;
    }
  }
  return false;
}

std::string Debugger::EvalWatchpoint(Watchpoint& wp) {
  guard_evals_++;
  QueryResult r = session_.Query(wp.expr);
  std::vector<std::string> now;
  if (r.ok) {
    now = r.lines;
  } else {
    now.push_back("<error: " + r.error + ">");
  }
  if (!wp.primed) {
    wp.primed = true;
    wp.last = std::move(now);
    return "";
  }
  if (now == wp.last) {
    return "";
  }
  // Build a compact change report: first differing entry, plus counts.
  std::string report;
  size_t common = 0;
  while (common < now.size() && common < wp.last.size() && now[common] == wp.last[common]) {
    ++common;
  }
  std::string before = common < wp.last.size() ? wp.last[common] : "(end)";
  std::string after = common < now.size() ? now[common] : "(end)";
  report = StrPrintf("watch %s: %s -> %s (%zu -> %zu values)", wp.expr.c_str(),
                     before.c_str(), after.c_str(), wp.last.size(), now.size());
  wp.last = std::move(now);
  wp.fires++;
  return report;
}

StopInfo Debugger::ExecuteCurrent() {
  StopInfo info;
  info.line = pc_;
  const Node* stmt = program_->statement(pc_);
  pc_++;
  if (stmt == nullptr) {
    info.reason = StopReason::kStep;
    return info;
  }
  try {
    exec_ctx_.BeginQuery();  // each statement is its own data-cache epoch
    baseline::CEvaluator eval(exec_ctx_);
    eval.Eval(*stmt);
  } catch (const DuelError& e) {
    info.reason = StopReason::kError;
    info.detail = StrPrintf("line %zu: %s", info.line + 1, FormatError(e).c_str());
    return info;
  }
  // Address watchpoints: cheap byte comparison, like hardware watchpoints.
  for (size_t w = 0; w < addr_watches_.size(); ++w) {
    AddressWatch& aw = addr_watches_[w];
    std::vector<uint8_t> now(aw.size);
    try {
      image_->memory().Read(aw.addr, now.data(), now.size());
    } catch (const MemoryFault&) {
      continue;
    }
    if (!aw.primed) {
      aw.primed = true;
      aw.last = std::move(now);
      continue;
    }
    if (now != aw.last) {
      aw.last = std::move(now);
      aw.fires++;
      info.reason = StopReason::kWatchpoint;
      info.index = static_cast<int>(w);
      info.detail = StrPrintf("address watch 0x%llx,%zu changed",
                              static_cast<unsigned long long>(aw.addr), aw.size);
      return info;
    }
  }
  // Watchpoints observe the state after every statement.
  for (size_t w = 0; w < watchpoints_.size(); ++w) {
    std::string report = EvalWatchpoint(watchpoints_[w]);
    if (!report.empty()) {
      info.reason = StopReason::kWatchpoint;
      info.index = static_cast<int>(w);
      info.detail = std::move(report);
      return info;
    }
  }
  // Assertions stop execution when they transition to violated.
  for (size_t a = 0; a < asserts_.size(); ++a) {
    TrackedAssertion& ta = asserts_[a];
    guard_evals_++;
    AssertionOutcome outcome = CheckAssertion(session_, ta.name, ta.expr);
    if (!outcome.holds && !ta.was_violated) {
      ta.was_violated = true;
      ta.violations++;
      info.reason = StopReason::kAssertion;
      info.index = static_cast<int>(a);
      info.detail = "assertion '" + ta.name + "' violated: " + ta.expr;
      for (const std::string& f : outcome.failures) {
        info.detail += "\n    " + f;
      }
      return info;
    }
    ta.was_violated = !outcome.holds;
  }
  info.reason = StopReason::kStep;
  return info;
}

StopInfo Debugger::Step() {
  if (finished()) {
    return StopInfo{StopReason::kFinished, pc_, -1, ""};
  }
  skip_bp_once_ = false;  // stepping off a reported breakpoint consumes it
  return ExecuteCurrent();
}

StopInfo Debugger::Continue() {
  while (!finished()) {
    // Honour breakpoints at the current pc — except immediately after
    // reporting one here (so Continue resumes instead of re-firing).
    if (!skip_bp_once_) {
      for (size_t i = 0; i < breakpoints_.size(); ++i) {
        if (breakpoints_[i].line == pc_ && ConditionHolds(breakpoints_[i].condition)) {
          breakpoints_[i].hits++;
          skip_bp_once_ = true;
          return StopInfo{StopReason::kBreakpoint, pc_, static_cast<int>(i), ""};
        }
      }
    }
    skip_bp_once_ = false;
    StopInfo info = ExecuteCurrent();
    if (info.reason != StopReason::kStep) {
      return info;
    }
  }
  return StopInfo{StopReason::kFinished, pc_, -1, ""};
}

}  // namespace duel::exec
