// Steppable target programs.
//
// The paper's Discussion proposes using DUEL "in other traditional debugging
// facilities, e.g., watchpoints and conditional breakpoints", and its
// Implementation section worries that "a faster implementation would be
// required if Duel expressions were used in watchpoints and conditional
// breakpoints". To exercise that code path the simulated debuggee must
// *run*: a TargetProgram is a sequence of C statements (one per line,
// executed atomically by the conventional-C interpreter) that mutates the
// image, and exec::Debugger steps it under breakpoints and watchpoints.

#ifndef DUEL_EXEC_PROGRAM_H_
#define DUEL_EXEC_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/duel/ast.h"
#include "src/duel/parser.h"
#include "src/target/image.h"

namespace duel::exec {

class TargetProgram {
 public:
  // Parses one statement per input line (blank lines and `##` comment lines
  // stay in the listing but execute as no-ops). Statements are the C subset
  // the baseline interpreter accepts: declarations, expression statements,
  // and for/if/while lines (which run atomically). Throws DuelError(kParse)
  // with the offending line number on bad input.
  static TargetProgram Parse(const std::vector<std::string>& lines,
                             const target::TargetImage& image);

  size_t size() const { return lines_.size(); }
  const std::string& line(size_t i) const { return lines_[i]; }

  // Null for no-op lines.
  const Node* statement(size_t i) const { return statements_[i].root.get(); }
  int num_nodes(size_t i) const { return statements_[i].num_nodes; }

 private:
  struct Stmt {
    NodePtr root;  // null for blank/comment lines
    int num_nodes = 0;
  };

  std::vector<std::string> lines_;
  std::vector<Stmt> statements_;
};

}  // namespace duel::exec

#endif  // DUEL_EXEC_PROGRAM_H_
