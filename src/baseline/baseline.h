// The conventional-debugger baseline.
//
// The paper motivates DUEL by contrasting its one-liners with the C code a
// programmer would type into a conventional debugger (gdb's `print`, or a
// debugger that "accepts source-language statements"). This module is that
// comparator: a single-value recursive evaluator over the same ASTs — C
// expressions, statements-as-expressions (for/if/while, ';', ','),
// declarations, assignment, and calls — with NO generators. Evaluating any
// DUEL-specific operator (.., ?-filters, -->, [[]], #/, =>, :=, @, #) is an
// error, exactly as it would be in a stock debugger.
//
// Experiment E6 runs the paper's Introduction queries both ways and compares
// query length and runtime.

#ifndef DUEL_BASELINE_BASELINE_H_
#define DUEL_BASELINE_BASELINE_H_

#include <optional>
#include <string>

#include "src/duel/evalctx.h"
#include "src/duel/value.h"

namespace duel::baseline {

class CEvaluator {
 public:
  explicit CEvaluator(EvalContext& ctx) : ctx_(&ctx) {}

  // Evaluates a single-valued C expression/statement tree. Statements
  // (for/if/while, declarations, void calls) return nullopt.
  std::optional<Value> Eval(const Node& n);

 private:
  std::optional<Value> EvalMember(const Node& n, bool arrow);
  Value Require(const Node& n);  // Eval, but a value must be produced

  EvalContext* ctx_;
};

// Convenience: parse + evaluate a C query the way a conventional debugger
// would, returning what `print expr` would print ("" for statements).
// Throws DuelError (including on DUEL-only syntax).
std::string RunBaselineQuery(dbg::DebuggerBackend& backend, EvalContext& ctx,
                             const std::string& source);

}  // namespace duel::baseline

#endif  // DUEL_BASELINE_BASELINE_H_
