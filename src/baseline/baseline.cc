#include "src/baseline/baseline.h"

#include "src/duel/apply.h"
#include "src/duel/eval_util.h"
#include "src/duel/output.h"
#include "src/duel/parser.h"
#include "src/support/strings.h"

namespace duel::baseline {

using target::TypeKind;

Value CEvaluator::Require(const Node& n) {
  std::optional<Value> v = Eval(n);
  if (!v.has_value()) {
    throw DuelError(ErrorKind::kType, "expression has no value", n.range);
  }
  return *v;
}

std::optional<Value> CEvaluator::EvalMember(const Node& n, bool arrow) {
  Value subject = Require(*n.kids[0]);
  const Node& member = *n.kids[1];
  if (member.op != Op::kName) {
    throw DuelError(ErrorKind::kParse,
                    "a conventional debugger only accepts a member name after '.'/'->'",
                    member.range);
  }
  Value v = ctx_->MemberAccess(subject, member.text, arrow, n.range);
  return ComposeWithResult(*ctx_, subject, arrow, v);
}

std::optional<Value> CEvaluator::Eval(const Node& n) {
  ctx_->Step();
  switch (n.op) {
    case Op::kIntConst:
    case Op::kCharConst:
    case Op::kFloatConst:
      return ConstValue(*ctx_, n);
    case Op::kStringConst:
      return StringValue(*ctx_, n);
    case Op::kName:
      return NameValue(*ctx_, n);
    case Op::kDecl:
      ExecDecl(*ctx_, n);
      return std::nullopt;
    case Op::kSizeofType:
      return SizeofTypeValue(*ctx_, n);
    case Op::kSizeofExpr: {
      Value v = Require(*n.kids[0]);  // no decay: arrays keep their full size
      return Value::Int(ctx_->types().ULong(),
                        static_cast<int64_t>(v.type() ? v.type()->size() : 0), Sym::None());
    }
    case Op::kCast: {
      TypeRef type = ctx_->ResolveTypeSpec(n.type_spec, n.range);
      return ApplyCast(*ctx_, type, Require(*n.kids[0]), n.range);
    }
    case Op::kWith:
      return EvalMember(n, /*arrow=*/false);
    case Op::kArrowWith:
      return EvalMember(n, /*arrow=*/true);
    case Op::kIndex:
      return ApplyIndex(*ctx_, Require(*n.kids[0]), Require(*n.kids[1]), n.range);
    case Op::kNeg:
    case Op::kPos:
    case Op::kBitNot:
    case Op::kNot:
    case Op::kDeref:
    case Op::kAddrOf:
      return ApplyUnary(*ctx_, n.op, Require(*n.kids[0]), n.range);
    case Op::kPreInc:
    case Op::kPreDec:
    case Op::kPostInc:
    case Op::kPostDec:
      return ApplyIncDec(*ctx_, n.op, Require(*n.kids[0]), n.range);
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kAdd:
    case Op::kSub:
    case Op::kShl:
    case Op::kShr:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kEq:
    case Op::kNe:
    case Op::kBitAnd:
    case Op::kBitXor:
    case Op::kBitOr:
      return ApplyBinary(*ctx_, n.op, Require(*n.kids[0]), Require(*n.kids[1]), n.range);
    case Op::kAndAnd: {  // C short-circuit
      if (!ctx_->Truthy(Require(*n.kids[0]))) {
        return Value::Int(ctx_->types().Int(), 0, Sym::None());
      }
      return Value::Int(ctx_->types().Int(), ctx_->Truthy(Require(*n.kids[1])) ? 1 : 0,
                        Sym::None());
    }
    case Op::kOrOr: {
      if (ctx_->Truthy(Require(*n.kids[0]))) {
        return Value::Int(ctx_->types().Int(), 1, Sym::None());
      }
      return Value::Int(ctx_->types().Int(), ctx_->Truthy(Require(*n.kids[1])) ? 1 : 0,
                        Sym::None());
    }
    case Op::kCond:
      return ctx_->Truthy(Require(*n.kids[0])) ? Eval(*n.kids[1]) : Eval(*n.kids[2]);
    case Op::kAssign:
    case Op::kMulEq:
    case Op::kDivEq:
    case Op::kModEq:
    case Op::kAddEq:
    case Op::kSubEq:
    case Op::kShlEq:
    case Op::kShrEq:
    case Op::kAndEq:
    case Op::kXorEq:
    case Op::kOrEq:
      return ApplyAssign(*ctx_, n.op, Require(*n.kids[0]), Require(*n.kids[1]), n.range);
    case Op::kAlternate:  // C comma operator in the baseline
    case Op::kSequence: {
      Eval(*n.kids[0]);
      return Eval(*n.kids[1]);
    }
    case Op::kDiscard:
      Eval(*n.kids[0]);
      return std::nullopt;
    case Op::kIf: {
      if (ctx_->Truthy(Require(*n.kids[0]))) {
        return Eval(*n.kids[1]);
      }
      if (n.kids.size() > 2) {
        return Eval(*n.kids[2]);
      }
      return std::nullopt;
    }
    case Op::kWhile: {
      while (ctx_->Truthy(Require(*n.kids[0]))) {
        ctx_->Step();
        Eval(*n.kids[1]);
      }
      return std::nullopt;
    }
    case Op::kFor: {
      Eval(*n.kids[0]);
      while (ctx_->Truthy(Require(*n.kids[1]))) {
        ctx_->Step();
        Eval(*n.kids[3]);
        Eval(*n.kids[2]);
      }
      return std::nullopt;
    }
    case Op::kCall: {
      const Node& callee = *n.kids[0];
      if (callee.op != Op::kName) {
        throw DuelError(ErrorKind::kType, "only direct calls are supported", n.range);
      }
      std::vector<Value> args;
      for (size_t i = 1; i < n.kids.size(); ++i) {
        args.push_back(Require(*n.kids[i]));
      }
      return CallTarget(*ctx_, callee.text, args, n.range);
    }
    case Op::kBrace:
      return Eval(*n.kids[0]);
    default:
      throw DuelError(
          ErrorKind::kParse,
          StrPrintf("'%s' is a DUEL operator; a conventional debugger cannot evaluate it",
                    OpName(n.op)),
          n.range);
  }
}

std::string RunBaselineQuery(dbg::DebuggerBackend& backend, EvalContext& ctx,
                             const std::string& source) {
  ctx.BeginQuery();
  Parser parser(source, [&backend](const std::string& name) {
    return backend.GetTargetTypedef(name) != nullptr;
  });
  ParseResult parsed = parser.Parse();
  CEvaluator eval(ctx);
  std::optional<Value> v = eval.Eval(*parsed.root);
  if (!v.has_value()) {
    return "";
  }
  return FormatValue(ctx, *v);
}

}  // namespace duel::baseline
