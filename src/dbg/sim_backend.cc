#include "src/dbg/backend.h"

namespace duel::dbg {

void SimBackend::GetTargetBytes(Addr addr, void* out, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kGetBytes);
  if (instr_.enabled()) {
    instr_.RecordReadBytes(size);
  }
  counters_.read_calls++;
  counters_.bytes_read += size;
  image_->memory().Read(addr, out, size);
}

void SimBackend::PutTargetBytes(Addr addr, const void* in, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kPutBytes);
  if (instr_.enabled()) {
    instr_.RecordWriteBytes(size);
  }
  counters_.write_calls++;
  counters_.bytes_written += size;
  image_->memory().Write(addr, in, size);
}

bool SimBackend::ValidTargetBytes(Addr addr, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kValidBytes);
  return image_->memory().Valid(addr, size);
}

Addr SimBackend::AllocTargetSpace(size_t size, size_t align) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kAllocSpace);
  counters_.allocations++;
  return image_->memory().Allocate(size, align);
}

RawDatum SimBackend::CallTargetFunc(const std::string& name, std::span<const RawDatum> args) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kCallFunc);
  counters_.target_calls++;
  return image_->Call(name, args);
}

std::optional<VariableInfo> SimBackend::GetTargetVariable(const std::string& name) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  const target::Variable* v = image_->symbols().FindVariable(name);
  if (v == nullptr) {
    return std::nullopt;
  }
  return VariableInfo{v->name, v->type, v->addr};
}

std::optional<FunctionInfo> SimBackend::GetTargetFunction(const std::string& name) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  const target::FunctionSym* f = image_->symbols().FindFunction(name);
  if (f == nullptr) {
    return std::nullopt;
  }
  return FunctionInfo{f->name, f->type, f->addr};
}

TypeRef SimBackend::GetTargetTypedef(const std::string& name) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kTypeLookup);
  counters_.type_lookups++;
  return image_->types().LookupTypedef(name);
}

TypeRef SimBackend::GetTargetStruct(const std::string& tag) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kTypeLookup);
  counters_.type_lookups++;
  return image_->types().LookupStruct(tag);
}

TypeRef SimBackend::GetTargetUnion(const std::string& tag) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kTypeLookup);
  counters_.type_lookups++;
  return image_->types().LookupUnion(tag);
}

TypeRef SimBackend::GetTargetEnum(const std::string& tag) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kTypeLookup);
  counters_.type_lookups++;
  return image_->types().LookupEnum(tag);
}

std::optional<EnumeratorInfo> SimBackend::GetTargetEnumerator(const std::string& name) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  for (const auto& [tag, type] : image_->types().enums()) {
    for (const target::Enumerator& e : type->enumerators()) {
      if (e.name == name) {
        return EnumeratorInfo{type, e.value};
      }
    }
  }
  return std::nullopt;
}

size_t SimBackend::NumFrames() {
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  return image_->symbols().NumFrames();
}

std::string SimBackend::FrameFunction(size_t frame) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  return image_->symbols().GetFrame(frame).function;
}

std::vector<FrameVariable> SimBackend::FrameLocals(size_t frame) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  std::vector<FrameVariable> out;
  for (const target::Variable& v : image_->symbols().GetFrame(frame).locals) {
    out.push_back(FrameVariable{v.name, v.type, v.addr});
  }
  return out;
}

}  // namespace duel::dbg
