#include "src/dbg/access.h"

#include <algorithm>
#include <cstring>

namespace duel::dbg {

using target::Addr;

// --- DebuggerBackend bulk-read defaults -------------------------------------

size_t DebuggerBackend::ReadTargetPrefix(Addr addr, void* out, size_t size) {
  if (size == 0) {
    return 0;
  }
  size_t n = size;
  if (!ValidTargetBytes(addr, n)) {
    // Bisect for the longest valid prefix: Valid(addr, lo) holds, hi fails.
    size_t lo = 0, hi = n;
    while (hi - lo > 1) {
      size_t mid = lo + (hi - lo) / 2;
      if (ValidTargetBytes(addr, mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    n = lo;
  }
  if (n == 0) {
    return 0;
  }
  try {
    GetTargetBytes(addr, out, n);
  } catch (const MemoryFault&) {
    return 0;  // raced with the validity probe; treat as unreadable
  }
  return n;
}

std::vector<std::vector<uint8_t>> DebuggerBackend::ReadTargetRanges(
    std::span<const ReadRange> ranges) {
  std::vector<std::vector<uint8_t>> out;
  out.reserve(ranges.size());
  for (const ReadRange& r : ranges) {
    std::vector<uint8_t> bytes(r.size);
    bytes.resize(ReadTargetPrefix(r.addr, bytes.data(), r.size));
    out.push_back(std::move(bytes));
  }
  return out;
}

// --- MemoryAccess ------------------------------------------------------------

void MemoryAccess::BeginQuery() {
  DropBlocks();
  backend_->BeginQueryEpoch();
}

void MemoryAccess::BeginQueryData() { DropBlocks(); }

void MemoryAccess::Invalidate() {
  counters_.invalidations++;
  DropBlocks();
}

void MemoryAccess::DropBlocks() {
  blocks_.clear();
  next_seq_block_ = UINT64_MAX;
  seq_run_ = 0;
}

void MemoryAccess::EnsureBlocks(uint64_t first, uint64_t last) {
  const size_t bs = config_.block_size;
  std::vector<uint64_t> missing;
  for (uint64_t b = first; b <= last; ++b) {
    if (blocks_.find(b) == blocks_.end()) {
      missing.push_back(b);
    }
  }
  if (missing.empty()) {
    return;
  }
  counters_.misses++;
  // Sequential scans double the fetch window each miss (capped), so a long
  // forward read costs O(log + blocks/max_readahead) round trips.
  if (first == next_seq_block_) {
    seq_run_ = std::min<unsigned>(seq_run_ + 1, 31);
  } else {
    seq_run_ = 0;
  }
  size_t ahead = std::min<size_t>(config_.max_readahead,
                                  seq_run_ == 0 ? 0 : (size_t{1} << std::min(seq_run_, 6u)));
  for (uint64_t b = last + 1; ahead > 0 && b > last; ++b, --ahead) {
    if (blocks_.find(b) == blocks_.end()) {
      missing.push_back(b);
    }
  }
  if (blocks_.size() + missing.size() > config_.max_blocks) {
    Invalidate();  // simple overflow policy: start over
  }
  std::vector<ReadRange> ranges;
  ranges.reserve(missing.size());
  for (uint64_t b : missing) {
    ranges.push_back(ReadRange{b * bs, bs});
  }
  std::vector<std::vector<uint8_t>> results = backend_->ReadTargetRanges(ranges);
  for (size_t i = 0; i < missing.size(); ++i) {
    Block blk;
    blk.valid_len = i < results.size() ? results[i].size() : 0;
    blk.bytes = i < results.size() ? std::move(results[i]) : std::vector<uint8_t>();
    blk.bytes.resize(bs);
    counters_.bytes_fetched += blk.valid_len;
    counters_.block_fetches++;
    blocks_[missing[i]] = std::move(blk);
  }
  // The streak continues at the first block past everything just fetched
  // (including readahead), so a long scan keeps doubling its window.
  next_seq_block_ = std::max(last, missing.back()) + 1;
}

bool MemoryAccess::TryServe(Addr addr, void* out, size_t size) {
  const size_t bs = config_.block_size;
  uint8_t* dst = static_cast<uint8_t*>(out);
  Addr pos = addr;
  size_t remaining = size;
  while (remaining > 0) {
    auto it = blocks_.find(pos / bs);
    if (it == blocks_.end()) {
      return false;
    }
    size_t off = static_cast<size_t>(pos % bs);
    size_t chunk = std::min(remaining, bs - off);
    if (off + chunk > it->second.valid_len) {
      return false;  // touches bytes the block fetch found unreadable
    }
    if (dst != nullptr) {
      std::memcpy(dst, it->second.bytes.data() + off, chunk);
      dst += chunk;
    }
    pos += chunk;
    remaining -= chunk;
  }
  return true;
}

void MemoryAccess::GetBytes(Addr addr, void* out, size_t size) {
  if (governor_ != nullptr) {
    governor_->ChargeReadBytes(size);
  }
  if (!enabled_ || size == 0) {
    backend_->GetTargetBytes(addr, out, size);
    return;
  }
  const size_t bs = config_.block_size;
  EnsureBlocks(addr / bs, (addr + size - 1) / bs);
  if (TryServe(addr, out, size)) {
    counters_.hits++;
    counters_.bytes_from_cache += size;
    return;
  }
  // Outside the known-valid bytes: forward the exact request so the backend
  // raises (or doesn't) precisely the fault uncached evaluation would see.
  counters_.passthroughs++;
  backend_->GetTargetBytes(addr, out, size);
}

size_t MemoryAccess::GetBytesPrefix(Addr addr, void* out, size_t size) {
  if (governor_ != nullptr) {
    governor_->ChargeReadBytes(size);
  }
  if (!enabled_) {
    return backend_->ReadTargetPrefix(addr, out, size);
  }
  if (size == 0) {
    return 0;
  }
  const size_t bs = config_.block_size;
  EnsureBlocks(addr / bs, (addr + size - 1) / bs);
  uint8_t* dst = static_cast<uint8_t*>(out);
  Addr pos = addr;
  size_t total = 0;
  while (total < size) {
    const Block& blk = blocks_[pos / bs];
    size_t off = static_cast<size_t>(pos % bs);
    if (off >= blk.valid_len) {
      break;
    }
    size_t chunk = std::min(size - total, blk.valid_len - off);
    std::memcpy(dst + total, blk.bytes.data() + off, chunk);
    total += chunk;
    pos += chunk;
    if (off + chunk < bs) {
      break;  // stopped inside the block: the next byte is unreadable
    }
  }
  counters_.hits++;
  counters_.bytes_from_cache += total;
  return total;
}

void MemoryAccess::PutBytes(Addr addr, const void* in, size_t size) {
  backend_->PutTargetBytes(addr, in, size);
  if (!enabled_ || size == 0 || blocks_.empty()) {
    return;
  }
  const size_t bs = config_.block_size;
  const uint8_t* src = static_cast<const uint8_t*>(in);
  for (uint64_t b = addr / bs; b <= (addr + size - 1) / bs; ++b) {
    auto it = blocks_.find(b);
    if (it == blocks_.end()) {
      continue;
    }
    Addr block_base = b * bs;
    Addr lo = std::max(addr, block_base);
    Addr hi = std::min(addr + size, block_base + bs);
    size_t off = static_cast<size_t>(lo - block_base);
    if (off + (hi - lo) <= it->second.valid_len) {
      std::memcpy(it->second.bytes.data() + off, src + (lo - addr),
                  static_cast<size_t>(hi - lo));
    } else {
      // The write landed on bytes the fetch saw as unreadable (the memory
      // map moved under us); the cached prefix is no longer trustworthy.
      blocks_.erase(it);
    }
  }
}

bool MemoryAccess::ValidBytes(Addr addr, size_t size) {
  if (enabled_ && size > 0 && TryServe(addr, nullptr, size)) {
    counters_.hits++;
    return true;
  }
  return backend_->ValidTargetBytes(addr, size);
}

target::RawDatum MemoryAccess::CallFunc(const std::string& name,
                                        std::span<const target::RawDatum> args) {
  target::RawDatum ret = backend_->CallTargetFunc(name, args);
  ++mutation_epoch_;
  Invalidate();  // the call may have written anywhere in the target
  return ret;
}

Addr MemoryAccess::Alloc(size_t size, size_t align) {
  Addr addr = backend_->AllocTargetSpace(size, align);
  ++mutation_epoch_;
  Invalidate();  // the memory map changed: previously-invalid bytes may be valid
  return addr;
}

}  // namespace duel::dbg
