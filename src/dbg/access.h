// The pluggable target-data access layer.
//
// The paper routes every byte an expression touches through
// duel_get_target_bytes, one small read at a time; over a remote debugger
// each read is a full round trip. MemoryAccess sits between the evaluators
// (EvalContext, output formatting) and any DebuggerBackend and turns that
// stream of tiny reads into a handful of block fetches:
//
//   - reads are served from aligned cached blocks (read combining); missing
//     blocks are fetched through DebuggerBackend::ReadTargetRanges, which
//     rsp::RemoteBackend maps onto one vectored qDuelReadV wire packet;
//   - sequential miss patterns trigger exponential readahead, so a scan like
//     x[..10000] costs O(blocks / readahead) round trips, not O(values);
//   - writes go through to the backend immediately and patch the cached
//     copy (write-through), so a query always reads its own writes;
//   - CallTargetFunc and AllocTargetSpace invalidate the whole cache (the
//     target may have mutated arbitrary memory / changed the memory map);
//   - BeginQuery() starts a fresh epoch: all cached data is dropped, so a
//     query can never observe bytes from before its own start. Cached
//     evaluation is therefore semantically identical to uncached.
//
// Fault semantics are preserved exactly: block fetches use valid-prefix
// reads (never faulting), and any request that cannot be served entirely
// from known-valid cached bytes falls through to the backend verbatim, so
// the MemoryFault an uncached evaluation would raise is raised here too.

#ifndef DUEL_DBG_ACCESS_H_
#define DUEL_DBG_ACCESS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/dbg/backend.h"
#include "src/support/counters.h"
#include "src/support/governor.h"

namespace duel::dbg {

class MemoryAccess {
 public:
  struct Config {
    size_t block_size = 256;        // aligned fetch unit (power of two)
    size_t max_blocks = 4096;       // cache capacity before a full drop (1 MiB)
    size_t max_readahead = 32;      // blocks fetched ahead on sequential misses
  };

  explicit MemoryAccess(DebuggerBackend& backend) : backend_(&backend) {}
  MemoryAccess(DebuggerBackend& backend, Config config)
      : backend_(&backend), config_(config) {}

  DebuggerBackend& backend() { return *backend_; }

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
    enabled_ = on;
    if (!on) {
      DropBlocks();
    }
  }

  // Starts a per-query epoch: drops every cached block here and lets the
  // backend drop its own client-side caches (symbols, types, frames).
  void BeginQuery();

  // The data half of BeginQuery: drops cached blocks without touching the
  // backend's client-side caches. For callers that already refreshed the
  // symbol view this epoch (the check stage runs before any data is read;
  // its symbol lookups stay memoized into evaluation).
  void BeginQueryData();

  // Drops cached data blocks (write-through keeps them fresh inside a query;
  // this is for events that can mutate memory behind the cache's back).
  void Invalidate();

  // --- the data path --------------------------------------------------------

  // Cached read; throws MemoryFault exactly when the backend would.
  void GetBytes(target::Addr addr, void* out, size_t size);

  // Cached valid-prefix read: copies the longest contiguously-valid prefix
  // of [addr, addr+size) and returns its length. Never throws. Used for
  // chunked string display.
  size_t GetBytesPrefix(target::Addr addr, void* out, size_t size);

  // Write-through: backend first (faults propagate), then the cache is
  // patched or evicted so subsequent reads see the new bytes.
  void PutBytes(target::Addr addr, const void* in, size_t size);

  // Answered from cache when the range lies inside known-valid bytes.
  bool ValidBytes(target::Addr addr, size_t size);

  // Pass-throughs that invalidate: a target call may write anywhere; an
  // allocation changes the memory map.
  target::RawDatum CallFunc(const std::string& name,
                            std::span<const target::RawDatum> args);
  target::Addr Alloc(size_t size, size_t align);

  CacheCounters& counters() { return counters_; }
  const Config& config() const { return config_; }

  // Monotonic count of target-mutating events routed through this layer
  // (CallFunc, Alloc). The plan cache uses it the same way Invalidate()
  // uses those events for data blocks: a cached plan built before a target
  // call/alloc may hold stale addresses and must be rebuilt.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  // Records a mutation that happened *outside* this access layer — another
  // session of the concurrent query service wrote target memory, called a
  // target function, or allocated. Bumps the mutation epoch (invalidating
  // cached plans the same way a local call/alloc would) and drops cached
  // blocks. Must be called on the thread that owns this layer (the serve
  // scheduler calls it before handing the session to a worker).
  void NoteExternalMutation() {
    ++mutation_epoch_;
    Invalidate();
  }

  // Per-query execution governor (may be null). When attached and armed,
  // every cached read charges its requested size against the target-read
  // budget — cache hits included, so a governed query's byte accounting is
  // identical whether the block cache is on or off.
  void set_governor(ExecGovernor* g) { governor_ = g; }
  ExecGovernor* governor() const { return governor_; }

 private:
  struct Block {
    std::vector<uint8_t> bytes;  // block_size long
    size_t valid_len = 0;        // contiguously-valid prefix actually fetched
  };

  // Makes sure blocks [first, last] are present, fetching the missing ones
  // (plus readahead) in one vectored backend request.
  void EnsureBlocks(uint64_t first, uint64_t last);

  // True when [addr, addr+size) lies entirely inside the valid prefixes of
  // cached blocks; copies the bytes into `out` (unless null).
  bool TryServe(target::Addr addr, void* out, size_t size);

  void DropBlocks();

  DebuggerBackend* backend_;
  Config config_;
  ExecGovernor* governor_ = nullptr;
  bool enabled_ = true;
  std::map<uint64_t, Block> blocks_;  // block index -> contents
  uint64_t next_seq_block_ = UINT64_MAX;  // readahead: next block if sequential
  unsigned seq_run_ = 0;                  // consecutive sequential misses
  uint64_t mutation_epoch_ = 0;
  CacheCounters counters_;
};

}  // namespace duel::dbg

#endif  // DUEL_DBG_ACCESS_H_
