// The narrow two-way DUEL <-> debugger interface.
//
// This is the exact surface the paper defines (Implementation section):
//
//   duel_get_target_bytes / duel_put_target_bytes — copy n bytes to/from a
//     target address
//   duel_alloc_target_space — allocate n bytes in the target
//   duel_call_target_func — call a function in the target
//   duel_get_target_variable — value/type information for a symbol
//   duel_get_target_typedef/struct/union/enum — type information
//   plus miscellaneous functions: number of active frames, frame locals.
//
// DUEL calls nothing else. Any debugger that can implement this interface
// can host DUEL; this repo provides SimBackend (over a simulated debuggee)
// and rsp::RemoteBackend (over a gdbserver-style wire protocol).

#ifndef DUEL_DBG_BACKEND_H_
#define DUEL_DBG_BACKEND_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/support/counters.h"
#include "src/support/obs/metrics.h"
#include "src/target/ctype.h"
#include "src/target/image.h"

namespace duel::dbg {

using target::Addr;
using target::RawDatum;
using target::TypeRef;

// One contiguous span of target memory, for vectored (multi-range) reads.
struct ReadRange {
  Addr addr = 0;
  size_t size = 0;
};

struct VariableInfo {
  std::string name;
  TypeRef type;
  Addr addr = 0;
};

struct FunctionInfo {
  std::string name;
  TypeRef type;
  Addr addr = 0;
};

struct FrameVariable {
  std::string name;
  TypeRef type;
  Addr addr = 0;
};

// An enumeration constant (e.g. BLUE) resolved by name.
struct EnumeratorInfo {
  TypeRef type;  // the enum type
  int64_t value = 0;
};

class DebuggerBackend {
 public:
  virtual ~DebuggerBackend() = default;

  // --- target data space ---
  // Both throw MemoryFault on invalid access.
  virtual void GetTargetBytes(Addr addr, void* out, size_t size) = 0;
  virtual void PutTargetBytes(Addr addr, const void* in, size_t size) = 0;
  virtual bool ValidTargetBytes(Addr addr, size_t size) = 0;
  virtual Addr AllocTargetSpace(size_t size, size_t align) = 0;

  // Bulk extensions used by dbg::MemoryAccess (the read-combining cache).
  // Both are expressed in terms of the three primitives above, so every
  // backend keeps working unmodified; rsp::RemoteBackend overrides
  // ReadTargetRanges with a single vectored wire request (qDuelReadV).
  //
  // ReadTargetPrefix copies the longest contiguously-valid prefix of
  // [addr, addr+size) into `out` and returns its length (0 when addr itself
  // is unreadable). It never throws.
  virtual size_t ReadTargetPrefix(Addr addr, void* out, size_t size);
  // ReadTargetRanges reads many ranges at once with prefix semantics:
  // result[i] holds the valid-prefix bytes of ranges[i] (possibly empty).
  virtual std::vector<std::vector<uint8_t>> ReadTargetRanges(
      std::span<const ReadRange> ranges);

  // Called by the access layer at the start of every query. Backends that
  // keep client-side caches (rsp::RemoteBackend caches symbol lookups, type
  // records and frame info) drop them here, so a query never observes state
  // from before its own epoch.
  virtual void BeginQueryEpoch() {}

  // Monotonic counter that moves whenever the symbol world may have changed:
  // new globals/functions, a frame push, new frame locals. Cached query
  // plans compare it to notice that their compile-time name bindings are
  // stale. Backends that cannot observe symbol mutations return a constant
  // (plans then rely on the per-query BeginQueryEpoch re-resolution that
  // dynamic lookups already get).
  virtual uint64_t SymbolEpoch() { return 0; }

  // --- target execution ---
  virtual RawDatum CallTargetFunc(const std::string& name, std::span<const RawDatum> args) = 0;

  // --- symbols & types ---
  // Searches the current frame's locals, then globals (debugger scope rules).
  virtual std::optional<VariableInfo> GetTargetVariable(const std::string& name) = 0;
  virtual std::optional<FunctionInfo> GetTargetFunction(const std::string& name) = 0;
  virtual TypeRef GetTargetTypedef(const std::string& name) = 0;  // null if absent
  virtual TypeRef GetTargetStruct(const std::string& tag) = 0;
  virtual TypeRef GetTargetUnion(const std::string& tag) = 0;
  virtual TypeRef GetTargetEnum(const std::string& tag) = 0;
  // Searches every enum's enumerators (debuggers resolve BLUE to its enum).
  virtual std::optional<EnumeratorInfo> GetTargetEnumerator(const std::string& name) = 0;

  // --- miscellaneous (frames) ---
  virtual size_t NumFrames() = 0;
  virtual std::string FrameFunction(size_t frame) = 0;
  virtual std::vector<FrameVariable> FrameLocals(size_t frame) = 0;

  // The type table DUEL should build its own types in (pointer-to, array-of,
  // the int type of literals, ...). For SimBackend this is the image's table;
  // for RemoteBackend it is a client-side table fed by the wire protocol.
  virtual target::TypeTable& Types() = 0;

  // Instrumentation for the experiments.
  BackendCounters& counters() { return counters_; }

  // Observability: per-narrow-call counts always, latency/bytes histograms
  // and trace spans while enabled (see src/support/obs/metrics.h).
  obs::BackendInstr& instr() { return instr_; }

 protected:
  BackendCounters counters_;
  obs::BackendInstr instr_;
};

// Direct, in-process backend over a simulated debuggee image.
class SimBackend : public DebuggerBackend {
 public:
  explicit SimBackend(target::TargetImage& image) : image_(&image) {}

  void GetTargetBytes(Addr addr, void* out, size_t size) override;
  void PutTargetBytes(Addr addr, const void* in, size_t size) override;
  bool ValidTargetBytes(Addr addr, size_t size) override;
  Addr AllocTargetSpace(size_t size, size_t align) override;
  RawDatum CallTargetFunc(const std::string& name, std::span<const RawDatum> args) override;
  std::optional<VariableInfo> GetTargetVariable(const std::string& name) override;
  std::optional<FunctionInfo> GetTargetFunction(const std::string& name) override;
  TypeRef GetTargetTypedef(const std::string& name) override;
  TypeRef GetTargetStruct(const std::string& tag) override;
  TypeRef GetTargetUnion(const std::string& tag) override;
  TypeRef GetTargetEnum(const std::string& tag) override;
  std::optional<EnumeratorInfo> GetTargetEnumerator(const std::string& name) override;
  size_t NumFrames() override;
  std::string FrameFunction(size_t frame) override;
  std::vector<FrameVariable> FrameLocals(size_t frame) override;
  target::TypeTable& Types() override { return image_->types(); }
  uint64_t SymbolEpoch() override { return image_->symbols().version(); }

  target::TargetImage& image() { return *image_; }

 private:
  target::TargetImage* image_;
};

}  // namespace duel::dbg

#endif  // DUEL_DBG_BACKEND_H_
