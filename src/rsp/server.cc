#include "src/rsp/server.h"

#include "src/support/strings.h"
#include "src/target/ctype_io.h"

namespace duel::rsp {

namespace {

std::string HexName(std::string_view name) { return HexEncode(name.data(), name.size()); }

bool DecodeName(std::string_view hex, std::string* out) {
  std::vector<uint8_t> bytes;
  if (!HexDecode(hex, &bytes)) {
    return false;
  }
  out->assign(bytes.begin(), bytes.end());
  return true;
}

std::string ErrorResponse(const char* code, const std::string& message) {
  return std::string(code) + ":" + HexName(message);
}

// Parses "<hex>,<hex>" into two numbers.
bool ParsePair(std::string_view s, uint64_t* a, uint64_t* b) {
  size_t comma = s.find(',');
  if (comma == std::string_view::npos) {
    return false;
  }
  return ParseHexU64(s.substr(0, comma), a) && ParseHexU64(s.substr(comma + 1), b);
}

}  // namespace

std::string RspServer::Handle(const std::string& request) {
  requests_++;
  if (log_packets_) {
    LogPacket(/*is_request=*/true, request);
  }
  std::string response = HandleImpl(request);
  if (log_packets_) {
    LogPacket(/*is_request=*/false, response);
  }
  return response;
}

void RspServer::LogPacket(bool is_request, const std::string& payload) {
  if (packet_log_.size() >= kMaxLoggedPackets) {
    packet_log_.pop_front();
  }
  packet_log_.push_back(WirePacket{is_request, payload, obs::NowNs()});
}

std::string RspServer::HandleImpl(const std::string& request) {
  try {
    if (StartsWith(request, "m")) {
      uint64_t addr, len;
      if (!ParsePair(std::string_view(request).substr(1), &addr, &len)) {
        return "E03";
      }
      std::vector<uint8_t> buf(len);
      try {
        backend_->GetTargetBytes(addr, buf.data(), len);
      } catch (const MemoryFault&) {
        return "E01";
      }
      return HexEncode(buf.data(), buf.size());
    }
    if (StartsWith(request, "M")) {
      size_t colon = request.find(':');
      if (colon == std::string::npos) {
        return "E03";
      }
      uint64_t addr, len;
      if (!ParsePair(std::string_view(request).substr(1, colon - 1), &addr, &len)) {
        return "E03";
      }
      std::vector<uint8_t> bytes;
      if (!HexDecode(std::string_view(request).substr(colon + 1), &bytes) ||
          bytes.size() != len) {
        return "E03";
      }
      try {
        backend_->PutTargetBytes(addr, bytes.data(), bytes.size());
      } catch (const MemoryFault&) {
        return "E01";
      }
      return "OK";
    }
    if (StartsWith(request, "qValid:")) {
      uint64_t addr, len;
      if (!ParsePair(std::string_view(request).substr(7), &addr, &len)) {
        return "E03";
      }
      return backend_->ValidTargetBytes(addr, len) ? "OK" : "E01";
    }
    if (StartsWith(request, "qAlloc:")) {
      uint64_t size, align;
      if (!ParsePair(std::string_view(request).substr(7), &size, &align)) {
        return "E03";
      }
      return "A" + HexU64(backend_->AllocTargetSpace(size, align));
    }
    if (StartsWith(request, "qVar:")) {
      std::string name;
      if (!DecodeName(std::string_view(request).substr(5), &name)) {
        return "E03";
      }
      auto info = backend_->GetTargetVariable(name);
      if (!info.has_value()) {
        return "E00";
      }
      return "V" + HexU64(info->addr) + ";" + target::SerializeType(info->type);
    }
    if (StartsWith(request, "qFunc:")) {
      std::string name;
      if (!DecodeName(std::string_view(request).substr(6), &name)) {
        return "E03";
      }
      auto info = backend_->GetTargetFunction(name);
      if (!info.has_value()) {
        return "E00";
      }
      return "F" + HexU64(info->addr) + ";" + target::SerializeType(info->type);
    }
    if (StartsWith(request, "qTypedef:") || StartsWith(request, "qStruct:") ||
        StartsWith(request, "qUnion:") || StartsWith(request, "qEnum:")) {
      size_t colon = request.find(':');
      std::string kind = request.substr(0, colon);
      std::string name;
      if (!DecodeName(std::string_view(request).substr(colon + 1), &name)) {
        return "E03";
      }
      target::TypeRef t;
      if (kind == "qTypedef") {
        t = backend_->GetTargetTypedef(name);
      } else if (kind == "qStruct") {
        t = backend_->GetTargetStruct(name);
      } else if (kind == "qUnion") {
        t = backend_->GetTargetUnion(name);
      } else {
        t = backend_->GetTargetEnum(name);
      }
      if (t == nullptr) {
        return "E00";
      }
      return "T" + target::SerializeType(t);
    }
    if (StartsWith(request, "qEnumConst:")) {
      std::string name;
      if (!DecodeName(std::string_view(request).substr(11), &name)) {
        return "E03";
      }
      auto e = backend_->GetTargetEnumerator(name);
      if (!e.has_value()) {
        return "E00";
      }
      return "C" + HexU64(static_cast<uint64_t>(e->value)) + ";" +
             target::SerializeType(e->type);
    }
    if (request == "qFrames") {
      return "N" + HexU64(backend_->NumFrames());
    }
    if (StartsWith(request, "qFrameFn:")) {
      uint64_t n;
      if (!ParseHexU64(std::string_view(request).substr(9), &n)) {
        return "E03";
      }
      return "F" + HexName(backend_->FrameFunction(n));
    }
    if (StartsWith(request, "qFrameLocals:")) {
      uint64_t n;
      if (!ParseHexU64(std::string_view(request).substr(13), &n)) {
        return "E03";
      }
      std::string out = "L";
      for (const dbg::FrameVariable& v : backend_->FrameLocals(n)) {
        out += HexName(v.name) + "," + HexU64(v.addr) + "," + target::SerializeType(v.type) +
               ";";
      }
      return out;
    }
    if (StartsWith(request, "qDuelReadV:")) {
      // Vectored valid-prefix read: qDuelReadV:<addr>,<len>;<addr>,<len>;...
      // Reply is "V" + the per-range hex payloads joined with ';' — entry i is
      // the longest contiguously-readable prefix of range i (possibly empty).
      constexpr size_t kMaxRanges = 512;
      constexpr uint64_t kMaxRangeBytes = 1 << 20;
      std::vector<std::string_view> parts =
          Split(std::string_view(request).substr(11), ';');
      if (parts.size() > kMaxRanges) {
        return "E03";
      }
      std::string out = "V";
      bool first = true;
      for (std::string_view part : parts) {
        uint64_t addr, len;
        if (!ParsePair(part, &addr, &len) || len > kMaxRangeBytes) {
          return "E03";
        }
        if (!first) {
          out += ";";
        }
        first = false;
        std::vector<uint8_t> buf(len);
        size_t n = backend_->ReadTargetPrefix(addr, buf.data(), len);
        out += HexEncode(buf.data(), n);
      }
      return out;
    }
    if (StartsWith(request, "vCall:")) {
      // vCall:<name-hex>:<type>,<hexbytes>;<type>,<hexbytes>;...
      std::string_view rest = std::string_view(request).substr(6);
      size_t colon = rest.find(':');
      std::string name;
      if (!DecodeName(rest.substr(0, colon == std::string_view::npos ? rest.size() : colon),
                      &name)) {
        return "E03";
      }
      std::vector<target::RawDatum> args;
      if (colon != std::string_view::npos) {
        for (std::string_view part : Split(rest.substr(colon + 1), ';')) {
          if (part.empty()) {
            continue;
          }
          size_t comma = part.rfind(',');
          if (comma == std::string_view::npos) {
            return "E03";
          }
          target::RawDatum d;
          d.type = target::ParseSerializedType(std::string(part.substr(0, comma)),
                                               backend_->Types());
          if (!HexDecode(part.substr(comma + 1), &d.bytes)) {
            return "E03";
          }
          args.push_back(std::move(d));
        }
      }
      try {
        target::RawDatum ret = backend_->CallTargetFunc(name, args);
        if (ret.type == nullptr) {
          return "Rv,";
        }
        return "R" + target::SerializeType(ret.type) + "," +
               HexEncode(ret.bytes.data(), ret.bytes.size());
      } catch (const DuelError& e) {
        return ErrorResponse("E02", e.what());
      }
    }
  } catch (const DuelError& e) {
    return ErrorResponse("E04", e.what());
  }
  return "";  // unknown request: RSP convention is an empty response
}

}  // namespace duel::rsp
