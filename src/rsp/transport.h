// Transports carrying RSP packets between the DUEL client and the debugger.

#ifndef DUEL_RSP_TRANSPORT_H_
#define DUEL_RSP_TRANSPORT_H_

#include <string>

#include "src/rsp/packet.h"
#include "src/rsp/server.h"
#include "src/support/error.h"

namespace duel::rsp {

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one request payload and returns the response payload.
  virtual std::string RoundTrip(const std::string& request) = 0;

  uint64_t round_trips() const { return round_trips_; }
  uint64_t bytes_on_wire() const { return bytes_on_wire_; }

 protected:
  uint64_t round_trips_ = 0;
  uint64_t bytes_on_wire_ = 0;
};

// Calls the server directly, skipping framing: the lower bound on interface
// cost (still string-encodes every request, like a same-process pipe).
class DirectTransport final : public Transport {
 public:
  explicit DirectTransport(RspServer& server) : server_(&server) {}

  std::string RoundTrip(const std::string& request) override {
    round_trips_++;
    bytes_on_wire_ += request.size();
    std::string response = server_->Handle(request);
    bytes_on_wire_ += response.size();
    return response;
  }

 private:
  RspServer* server_;
};

// Runs every request and response through the real $...#cs packet codec —
// byte-identical to what would cross a socket to a remote gdb.
class FramedTransport final : public Transport {
 public:
  explicit FramedTransport(RspServer& server) : server_(&server) {}

  std::string RoundTrip(const std::string& request) override {
    round_trips_++;
    // Client -> server.
    std::string wire = EncodePacket(request);
    bytes_on_wire_ += wire.size() + 1;  // +1 for the ack
    server_rx_.Feed(wire.data(), wire.size());
    auto req = server_rx_.NextPacket();
    if (!req.has_value()) {
      throw DuelError(ErrorKind::kProtocol, "request packet did not survive framing");
    }
    // Server -> client.
    std::string response_wire = EncodePacket(server_->Handle(*req));
    bytes_on_wire_ += response_wire.size() + 1;
    client_rx_.Feed(response_wire.data(), response_wire.size());
    auto resp = client_rx_.NextPacket();
    if (!resp.has_value()) {
      throw DuelError(ErrorKind::kProtocol, "response packet did not survive framing");
    }
    return *resp;
  }

 private:
  RspServer* server_;
  PacketDecoder server_rx_;
  PacketDecoder client_rx_;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_TRANSPORT_H_
