// The debugger side of the DUEL remote protocol.
//
// RspServer answers requests against a local DebuggerBackend — this is what
// a gdb hosting DUEL remotely would run. Request vocabulary (payloads; all
// numbers hex, names hex-encoded, types in the ctype_io wire format):
//
//   m<addr>,<len>                read memory        -> <hexbytes> | E01
//   M<addr>,<len>:<hexbytes>     write memory       -> OK | E01
//   qValid:<addr>,<len>          validity check     -> OK | E01
//   qAlloc:<size>,<align>        alloc target space -> A<addr>
//   qVar:<name-hex>              variable lookup    -> V<addr>;<type> | E00
//   qFunc:<name-hex>             function lookup    -> F<addr>;<type> | E00
//   qTypedef:<name-hex>          typedef lookup     -> T<type> | E00
//   qStruct:<tag-hex> / qUnion: / qEnum:            -> T<type> | E00
//   qFrames                      frame count        -> N<count>
//   qFrameFn:<n>                 frame function     -> F<name-hex>
//   qFrameLocals:<n>             frame locals       -> L<name-hex>,<addr>,<type>;...
//   vCall:<name-hex>:<type>,<hexbytes>;...          -> R<type>,<hexbytes> | E02:<msg-hex>
//
// Unknown requests get an empty response (the RSP convention).

#ifndef DUEL_RSP_SERVER_H_
#define DUEL_RSP_SERVER_H_

#include <deque>
#include <string>

#include "src/dbg/backend.h"
#include "src/support/obs/trace.h"

namespace duel::rsp {

// One logged wire packet (request or response payload).
struct WirePacket {
  bool is_request = false;
  std::string payload;
  uint64_t ns = 0;  // steady-clock timestamp (obs::NowNs)
};

class RspServer {
 public:
  explicit RspServer(dbg::DebuggerBackend& backend) : backend_(&backend) {}
  virtual ~RspServer() = default;

  // Handles one request payload, returning the response payload. Virtual so
  // tests can model a misbehaving remote side (e.g. one that hangs and
  // never answers, to exercise the transport's receive timeout).
  virtual std::string Handle(const std::string& request);

  uint64_t requests_handled() const { return requests_; }

  // Wire-level packet log: while enabled, every request/response payload is
  // appended to a bounded deque (oldest packets dropped past the cap).
  void set_packet_logging(bool on) { log_packets_ = on; }
  bool packet_logging() const { return log_packets_; }
  const std::deque<WirePacket>& packet_log() const { return packet_log_; }
  void ClearPacketLog() { packet_log_.clear(); }
  static constexpr size_t kMaxLoggedPackets = 512;

 private:
  std::string HandleImpl(const std::string& request);
  void LogPacket(bool is_request, const std::string& payload);

  dbg::DebuggerBackend* backend_;
  uint64_t requests_ = 0;
  bool log_packets_ = false;
  std::deque<WirePacket> packet_log_;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_SERVER_H_
