#include "src/rsp/packet.h"

#include <cctype>

namespace duel::rsp {

namespace {

bool NeedsEscape(char c) { return c == '$' || c == '#' || c == '}' || c == '*'; }

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EncodePacket(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 8);
  out.push_back('$');
  uint8_t sum = 0;
  for (char c : payload) {
    if (NeedsEscape(c)) {
      out.push_back('}');
      sum += static_cast<uint8_t>('}');
      char esc = static_cast<char>(c ^ 0x20);
      out.push_back(esc);
      sum += static_cast<uint8_t>(esc);
    } else {
      out.push_back(c);
      sum += static_cast<uint8_t>(c);
    }
  }
  out.push_back('#');
  static const char kHex[] = "0123456789abcdef";
  out.push_back(kHex[sum >> 4]);
  out.push_back(kHex[sum & 0xf]);
  return out;
}

void PacketDecoder::Feed(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  for (size_t i = 0; i < n; ++i) {
    char c = p[i];
    switch (state_) {
      case State::kIdle:
        if (c == '$') {
          state_ = State::kPayload;
          payload_.clear();
          running_sum_ = 0;
        } else if (c == '+') {
          acks_++;
        } else if (c == '-') {
          naks_++;
        }
        break;
      case State::kPayload:
        if (c == '#') {
          state_ = State::kChecksum1;
        } else if (c == '}') {
          running_sum_ += static_cast<uint8_t>(c);
          state_ = State::kEscape;
        } else {
          payload_.push_back(c);
          running_sum_ += static_cast<uint8_t>(c);
        }
        break;
      case State::kEscape:
        payload_.push_back(static_cast<char>(c ^ 0x20));
        running_sum_ += static_cast<uint8_t>(c);
        state_ = State::kPayload;
        break;
      case State::kChecksum1:
        checksum_hi_ = static_cast<uint8_t>(c);
        state_ = State::kChecksum2;
        break;
      case State::kChecksum2: {
        int hi = HexDigit(static_cast<char>(checksum_hi_));
        int lo = HexDigit(c);
        if (hi >= 0 && lo >= 0 &&
            static_cast<uint8_t>((hi << 4) | lo) == running_sum_) {
          ready_.push_back(std::move(payload_));
        } else {
          bad_checksums_++;
          naks_++;  // a real stack would NAK; surface it the same way
        }
        payload_.clear();
        state_ = State::kIdle;
        break;
      }
    }
  }
}

std::optional<std::string> PacketDecoder::NextPacket() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  std::string p = std::move(ready_.front());
  ready_.pop_front();
  return p;
}

int PacketDecoder::TakeNaks() {
  int n = naks_;
  naks_ = 0;
  return n;
}

int PacketDecoder::TakeAcks() {
  int n = acks_;
  acks_ = 0;
  return n;
}

}  // namespace duel::rsp
