// A real byte-stream transport: RSP packets over a socketpair, with the
// server running in its own thread — the closest in-process analog of DUEL
// attached to a remote debugger over TCP. Exercises partial reads, framing
// resynchronization and acks on an actual kernel byte stream.

#ifndef DUEL_RSP_SOCKET_TRANSPORT_H_
#define DUEL_RSP_SOCKET_TRANSPORT_H_

#include <thread>

#include "src/rsp/transport.h"

namespace duel::rsp {

class SocketTransport final : public Transport {
 public:
  // Spawns a server thread answering requests from `server` over a
  // socketpair. The backend behind `server` is only ever touched from the
  // server thread while the client blocks in RoundTrip, so no extra locking
  // is needed for the request/response discipline.
  explicit SocketTransport(RspServer& server);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::string RoundTrip(const std::string& request) override;

  // How long RoundTrip waits for response bytes before giving up with a
  // kProtocol error (0 = wait forever). A dead or wedged server thread must
  // not block the client indefinitely mid-round-trip; after a timeout the
  // stream may hold a late half-response, so the transport should be
  // discarded rather than reused.
  void set_receive_timeout_ms(uint64_t ms) { receive_timeout_ms_ = ms; }
  uint64_t receive_timeout_ms() const { return receive_timeout_ms_; }
  static constexpr uint64_t kDefaultReceiveTimeoutMs = 30'000;

 private:
  void ServeLoop();

  int client_fd_ = -1;
  int server_fd_ = -1;
  uint64_t receive_timeout_ms_ = kDefaultReceiveTimeoutMs;
  std::thread server_thread_;
  PacketDecoder client_rx_;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_SOCKET_TRANSPORT_H_
