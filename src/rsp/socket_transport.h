// A real byte-stream transport: RSP packets over a socketpair, with the
// server running in its own thread — the closest in-process analog of DUEL
// attached to a remote debugger over TCP. Exercises partial reads, framing
// resynchronization and acks on an actual kernel byte stream.

#ifndef DUEL_RSP_SOCKET_TRANSPORT_H_
#define DUEL_RSP_SOCKET_TRANSPORT_H_

#include <thread>

#include "src/rsp/transport.h"

namespace duel::rsp {

class SocketTransport final : public Transport {
 public:
  // Spawns a server thread answering requests from `server` over a
  // socketpair. The backend behind `server` is only ever touched from the
  // server thread while the client blocks in RoundTrip, so no extra locking
  // is needed for the request/response discipline.
  explicit SocketTransport(RspServer& server);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::string RoundTrip(const std::string& request) override;

 private:
  void ServeLoop();

  int client_fd_ = -1;
  int server_fd_ = -1;
  std::thread server_thread_;
  PacketDecoder client_rx_;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_SOCKET_TRANSPORT_H_
