#include "src/rsp/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/support/strings.h"

namespace duel::rsp {

namespace {

// MSG_NOSIGNAL: a peer that closed early (e.g. a client that timed out and
// tore down the transport) must surface as EPIPE, not a process-killing
// SIGPIPE from the server thread.
void WriteAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw DuelError(ErrorKind::kProtocol,
                      StrPrintf("socket write failed: %s", strerror(errno)));
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
}

}  // namespace

SocketTransport::SocketTransport(RspServer& server) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw DuelError(ErrorKind::kProtocol,
                    StrPrintf("socketpair failed: %s", strerror(errno)));
  }
  client_fd_ = fds[0];
  server_fd_ = fds[1];
  server_thread_ = std::thread([this, &server] {
    PacketDecoder rx;
    char buf[512];
    for (;;) {
      ssize_t n = ::read(server_fd_, buf, sizeof(buf));
      if (n <= 0) {
        return;  // peer closed: shut down
      }
      rx.Feed(buf, static_cast<size_t>(n));
      try {
        while (auto request = rx.NextPacket()) {
          const char ack = '+';
          WriteAll(server_fd_, &ack, 1);
          std::string response = EncodePacket(server.Handle(*request));
          WriteAll(server_fd_, response.data(), response.size());
        }
      } catch (const DuelError&) {
        return;  // peer gone mid-response: nothing left to serve
      }
    }
  });
}

SocketTransport::~SocketTransport() {
  if (client_fd_ >= 0) {
    ::shutdown(client_fd_, SHUT_RDWR);
    ::close(client_fd_);
  }
  if (server_thread_.joinable()) {
    server_thread_.join();
  }
  if (server_fd_ >= 0) {
    ::close(server_fd_);
  }
}

std::string SocketTransport::RoundTrip(const std::string& request) {
  round_trips_++;
  std::string wire = EncodePacket(request);
  bytes_on_wire_ += wire.size() + 1;  // +1 for the server's ack
  WriteAll(client_fd_, wire.data(), wire.size());
  char buf[512];
  for (;;) {
    if (auto response = client_rx_.NextPacket()) {
      bytes_on_wire_ += response->size();
      return *response;
    }
    if (receive_timeout_ms_ > 0) {
      // A wedged or dead server must not block the client forever: wait for
      // readable bytes with a deadline and fail the round trip cleanly.
      struct pollfd pfd;
      pfd.fd = client_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int ready;
      do {
        ready = ::poll(&pfd, 1, static_cast<int>(receive_timeout_ms_));
      } while (ready < 0 && errno == EINTR);
      if (ready < 0) {
        throw DuelError(ErrorKind::kProtocol,
                        StrPrintf("socket poll failed: %s", strerror(errno)));
      }
      if (ready == 0) {
        throw DuelError(
            ErrorKind::kProtocol,
            StrPrintf("timed out after %llu ms waiting for the remote debugger",
                      static_cast<unsigned long long>(receive_timeout_ms_)));
      }
    }
    ssize_t n = ::read(client_fd_, buf, sizeof(buf));
    if (n <= 0) {
      throw DuelError(ErrorKind::kProtocol, "remote debugger closed the connection");
    }
    client_rx_.Feed(buf, static_cast<size_t>(n));
    client_rx_.TakeAcks();
  }
}

}  // namespace duel::rsp
