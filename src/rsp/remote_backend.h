// RemoteBackend: the DUEL side of the remote protocol.
//
// Implements the narrow DebuggerBackend interface over an RSP transport, the
// way DUEL would attach to a remote debugger. Types arrive serialized and
// are rebuilt in a client-side TypeTable; memory and calls round-trip per
// request (experiment E8 measures this against the in-process SimBackend).

#ifndef DUEL_RSP_REMOTE_BACKEND_H_
#define DUEL_RSP_REMOTE_BACKEND_H_

#include <string>

#include "src/dbg/backend.h"
#include "src/rsp/transport.h"

namespace duel::rsp {

class RemoteBackend final : public dbg::DebuggerBackend {
 public:
  explicit RemoteBackend(Transport& transport) : transport_(&transport) {}

  void GetTargetBytes(target::Addr addr, void* out, size_t size) override;
  void PutTargetBytes(target::Addr addr, const void* in, size_t size) override;
  bool ValidTargetBytes(target::Addr addr, size_t size) override;
  target::Addr AllocTargetSpace(size_t size, size_t align) override;
  target::RawDatum CallTargetFunc(const std::string& name,
                                  std::span<const target::RawDatum> args) override;
  std::optional<dbg::VariableInfo> GetTargetVariable(const std::string& name) override;
  std::optional<dbg::FunctionInfo> GetTargetFunction(const std::string& name) override;
  target::TypeRef GetTargetTypedef(const std::string& name) override;
  target::TypeRef GetTargetStruct(const std::string& tag) override;
  target::TypeRef GetTargetUnion(const std::string& tag) override;
  target::TypeRef GetTargetEnum(const std::string& tag) override;
  std::optional<dbg::EnumeratorInfo> GetTargetEnumerator(const std::string& name) override;
  size_t NumFrames() override;
  std::string FrameFunction(size_t frame) override;
  std::vector<dbg::FrameVariable> FrameLocals(size_t frame) override;
  target::TypeTable& Types() override { return types_; }

 private:
  std::string Request(const std::string& payload);
  target::TypeRef QueryType(const std::string& command, const std::string& name);

  Transport* transport_;
  target::TypeTable types_;  // client-side type universe
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_REMOTE_BACKEND_H_
