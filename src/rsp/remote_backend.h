// RemoteBackend: the DUEL side of the remote protocol.
//
// Implements the narrow DebuggerBackend interface over an RSP transport, the
// way DUEL would attach to a remote debugger. Types arrive serialized and
// are rebuilt in a client-side TypeTable; memory and calls round-trip per
// request (experiment E8 measures this against the in-process SimBackend).
//
// Two client-side optimizations keep the wire traffic at O(blocks) instead
// of O(values):
//   - ReadTargetRanges maps a whole batch of valid-prefix reads (the access
//     layer's block fetches) onto one qDuelReadV packet; servers that don't
//     speak it answer with an empty/error reply, which latches a per-backend
//     fallback to the base-class per-range path.
//   - Symbol, type, and frame lookups are memoized (negative results too)
//     for the duration of one query epoch; BeginQueryEpoch() drops the memo
//     so a new query re-observes the target.

#ifndef DUEL_RSP_REMOTE_BACKEND_H_
#define DUEL_RSP_REMOTE_BACKEND_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/dbg/backend.h"
#include "src/rsp/transport.h"

namespace duel::rsp {

class RemoteBackend final : public dbg::DebuggerBackend {
 public:
  explicit RemoteBackend(Transport& transport) : transport_(&transport) {}

  void GetTargetBytes(target::Addr addr, void* out, size_t size) override;
  void PutTargetBytes(target::Addr addr, const void* in, size_t size) override;
  bool ValidTargetBytes(target::Addr addr, size_t size) override;
  target::Addr AllocTargetSpace(size_t size, size_t align) override;
  target::RawDatum CallTargetFunc(const std::string& name,
                                  std::span<const target::RawDatum> args) override;
  std::optional<dbg::VariableInfo> GetTargetVariable(const std::string& name) override;
  std::optional<dbg::FunctionInfo> GetTargetFunction(const std::string& name) override;
  target::TypeRef GetTargetTypedef(const std::string& name) override;
  target::TypeRef GetTargetStruct(const std::string& tag) override;
  target::TypeRef GetTargetUnion(const std::string& tag) override;
  target::TypeRef GetTargetEnum(const std::string& tag) override;
  std::optional<dbg::EnumeratorInfo> GetTargetEnumerator(const std::string& name) override;
  size_t NumFrames() override;
  std::string FrameFunction(size_t frame) override;
  std::vector<dbg::FrameVariable> FrameLocals(size_t frame) override;
  target::TypeTable& Types() override { return types_; }

  // One qDuelReadV wire packet for the whole batch (with automatic fallback
  // to the base class's per-range loop when the server doesn't support it).
  std::vector<std::vector<uint8_t>> ReadTargetRanges(
      std::span<const dbg::ReadRange> ranges) override;
  size_t ReadTargetPrefix(target::Addr addr, void* out, size_t size) override;

  // Drops the per-query memo caches (not the TypeTable: types are immutable
  // records and stay valid across queries).
  void BeginQueryEpoch() override;

  bool vectored_supported() const { return vectored_supported_; }

 private:
  std::string Request(const std::string& payload);
  target::TypeRef QueryType(const std::string& command, const std::string& name);

  Transport* transport_;
  target::TypeTable types_;  // client-side type universe

  bool vectored_supported_ = true;  // latched off on first failed qDuelReadV

  // Per-epoch memo caches. Values are whatever the wire returned, including
  // "not found" — a repeated miss costs no round trip either.
  std::map<std::string, std::optional<dbg::VariableInfo>> var_cache_;
  std::map<std::string, std::optional<dbg::FunctionInfo>> func_cache_;
  std::map<std::string, std::optional<dbg::EnumeratorInfo>> enum_cache_;
  std::map<std::string, target::TypeRef> type_cache_;  // key: "<cmd>:<name>"
  std::optional<size_t> num_frames_cache_;
  std::map<size_t, std::string> frame_fn_cache_;
  std::map<size_t, std::vector<dbg::FrameVariable>> frame_locals_cache_;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_REMOTE_BACKEND_H_
