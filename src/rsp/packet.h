// gdbserver-style Remote Serial Protocol framing.
//
// Packets travel as  $<escaped payload>#<2-hex checksum>  with '+'/'-' acks.
// The escape character '}' XORs the following byte with 0x20; '$', '#', '}'
// are escaped. The checksum is the modulo-256 sum of the escaped payload.
// This is the classic RSP wire format; the DUEL-specific request vocabulary
// lives in server.h.

#ifndef DUEL_RSP_PACKET_H_
#define DUEL_RSP_PACKET_H_

#include <deque>
#include <optional>
#include <string>

namespace duel::rsp {

// Encodes a payload into a framed packet (with '$', escapes, '#', checksum).
std::string EncodePacket(const std::string& payload);

// Incremental decoder: feed raw bytes, poll for completed packets. Acks
// ('+'/'-') are recorded and can be drained by the transport layer.
class PacketDecoder {
 public:
  // Feeds raw bytes from the wire.
  void Feed(const void* data, size_t n);

  // Returns the next completed, checksum-verified payload, if any.
  std::optional<std::string> NextPacket();

  // Number of NAKs ('-') seen since the last call (for retransmit logic).
  int TakeNaks();
  int TakeAcks();

  // Count of packets dropped due to checksum mismatch.
  uint64_t bad_checksums() const { return bad_checksums_; }

 private:
  enum class State { kIdle, kPayload, kChecksum1, kChecksum2, kEscape };

  State state_ = State::kIdle;
  std::string payload_;
  uint8_t running_sum_ = 0;
  uint8_t checksum_hi_ = 0;
  std::deque<std::string> ready_;
  int naks_ = 0;
  int acks_ = 0;
  uint64_t bad_checksums_ = 0;
};

}  // namespace duel::rsp

#endif  // DUEL_RSP_PACKET_H_
