#include "src/rsp/remote_backend.h"

#include <algorithm>
#include <cstring>

#include "src/support/strings.h"
#include "src/target/ctype_io.h"

namespace duel::rsp {

using target::Addr;
using target::RawDatum;
using target::TypeRef;

namespace {

std::string HexName(const std::string& name) { return HexEncode(name.data(), name.size()); }

[[noreturn]] void ProtocolFail(const std::string& what) {
  throw DuelError(ErrorKind::kProtocol, "remote protocol error: " + what);
}

std::string DecodeErrorMessage(std::string_view response) {
  size_t colon = response.find(':');
  if (colon == std::string_view::npos) {
    return std::string(response);
  }
  std::vector<uint8_t> bytes;
  if (!HexDecode(response.substr(colon + 1), &bytes)) {
    return std::string(response);
  }
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

std::string RemoteBackend::Request(const std::string& payload) {
  return transport_->RoundTrip(payload);
}

void RemoteBackend::GetTargetBytes(Addr addr, void* out, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kGetBytes);
  if (instr_.enabled()) {
    instr_.RecordReadBytes(size);
  }
  counters_.read_calls++;
  counters_.bytes_read += size;
  std::string r = Request("m" + HexU64(addr) + "," + HexU64(size));
  if (StartsWith(r, "E")) {
    throw MemoryFault(addr, size, StrPrintf("cannot read %zu bytes at 0x%llx (remote)", size,
                                            static_cast<unsigned long long>(addr)));
  }
  std::vector<uint8_t> bytes;
  if (!HexDecode(r, &bytes) || bytes.size() != size) {
    ProtocolFail("bad memory-read response");
  }
  std::memcpy(out, bytes.data(), size);
}

void RemoteBackend::PutTargetBytes(Addr addr, const void* in, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kPutBytes);
  if (instr_.enabled()) {
    instr_.RecordWriteBytes(size);
  }
  counters_.write_calls++;
  counters_.bytes_written += size;
  std::string r = Request("M" + HexU64(addr) + "," + HexU64(size) + ":" + HexEncode(in, size));
  if (r != "OK") {
    throw MemoryFault(addr, size, StrPrintf("cannot write %zu bytes at 0x%llx (remote)", size,
                                            static_cast<unsigned long long>(addr)));
  }
}

std::vector<std::vector<uint8_t>> RemoteBackend::ReadTargetRanges(
    std::span<const dbg::ReadRange> ranges) {
  if (ranges.empty()) {
    return {};
  }
  if (!vectored_supported_) {
    return DebuggerBackend::ReadTargetRanges(ranges);
  }
  // Stay under the server's range-count cap; a block-cache fill rarely needs
  // more than one packet anyway.
  constexpr size_t kMaxRangesPerPacket = 256;
  std::vector<std::vector<uint8_t>> out;
  out.reserve(ranges.size());
  for (size_t base = 0; base < ranges.size(); base += kMaxRangesPerPacket) {
    std::span<const dbg::ReadRange> batch =
        ranges.subspan(base, std::min(kMaxRangesPerPacket, ranges.size() - base));
    obs::CallTimer timer(instr_, obs::NarrowCall::kReadVector);
    counters_.vectored_reads++;
    std::string req = "qDuelReadV:";
    uint64_t requested = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i != 0) {
        req += ";";
      }
      req += HexU64(batch[i].addr) + "," + HexU64(batch[i].size);
      requested += batch[i].size;
    }
    if (instr_.enabled()) {
      instr_.RecordReadBytes(requested);
    }
    std::string r = Request(req);
    bool ok = StartsWith(r, "V");
    std::vector<std::vector<uint8_t>> decoded;
    if (ok) {
      std::vector<std::string_view> parts = Split(std::string_view(r).substr(1), ';');
      ok = parts.size() == batch.size();
      if (ok) {
        decoded.reserve(parts.size());
        for (size_t i = 0; i < parts.size(); ++i) {
          std::vector<uint8_t> bytes;
          if (!HexDecode(parts[i], &bytes) || bytes.size() > batch[i].size) {
            ok = false;  // short replies are fine; over-long or non-hex is not
            break;
          }
          decoded.push_back(std::move(bytes));
        }
      }
    }
    if (!ok) {
      // The server doesn't speak qDuelReadV (empty reply) or answered
      // malformed: latch the fallback for this connection and finish the
      // request with per-range prefix reads.
      vectored_supported_ = false;
      std::vector<std::vector<uint8_t>> rest =
          DebuggerBackend::ReadTargetRanges(ranges.subspan(base));
      for (std::vector<uint8_t>& v : rest) {
        out.push_back(std::move(v));
      }
      return out;
    }
    for (std::vector<uint8_t>& v : decoded) {
      out.push_back(std::move(v));
    }
  }
  return out;
}

size_t RemoteBackend::ReadTargetPrefix(Addr addr, void* out, size_t size) {
  if (!vectored_supported_ || size == 0) {
    // Base class bisects with qValid probes, then one m-read.
    return DebuggerBackend::ReadTargetPrefix(addr, out, size);
  }
  dbg::ReadRange range{addr, size};
  std::vector<std::vector<uint8_t>> r =
      ReadTargetRanges(std::span<const dbg::ReadRange>(&range, 1));
  if (r.size() != 1) {
    return DebuggerBackend::ReadTargetPrefix(addr, out, size);
  }
  std::memcpy(out, r[0].data(), r[0].size());
  return r[0].size();
}

void RemoteBackend::BeginQueryEpoch() {
  var_cache_.clear();
  func_cache_.clear();
  enum_cache_.clear();
  type_cache_.clear();
  num_frames_cache_.reset();
  frame_fn_cache_.clear();
  frame_locals_cache_.clear();
}

bool RemoteBackend::ValidTargetBytes(Addr addr, size_t size) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kValidBytes);
  return Request("qValid:" + HexU64(addr) + "," + HexU64(size)) == "OK";
}

Addr RemoteBackend::AllocTargetSpace(size_t size, size_t align) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kAllocSpace);
  counters_.allocations++;
  std::string r = Request("qAlloc:" + HexU64(size) + "," + HexU64(align));
  uint64_t addr;
  if (!StartsWith(r, "A") || !ParseHexU64(std::string_view(r).substr(1), &addr)) {
    ProtocolFail("bad alloc response");
  }
  return addr;
}

RawDatum RemoteBackend::CallTargetFunc(const std::string& name,
                                       std::span<const RawDatum> args) {
  obs::CallTimer timer(instr_, obs::NarrowCall::kCallFunc);
  counters_.target_calls++;
  std::string req = "vCall:" + HexName(name) + ":";
  for (const RawDatum& a : args) {
    req += target::SerializeType(a.type) + "," + HexEncode(a.bytes.data(), a.bytes.size()) +
           ";";
  }
  std::string r = Request(req);
  if (StartsWith(r, "E02") || StartsWith(r, "E04")) {
    throw DuelError(ErrorKind::kTarget, DecodeErrorMessage(r));
  }
  if (!StartsWith(r, "R")) {
    ProtocolFail("bad call response");
  }
  size_t comma = r.rfind(',');
  if (comma == std::string::npos) {
    ProtocolFail("bad call response");
  }
  RawDatum out;
  std::string type_part = r.substr(1, comma - 1);
  if (type_part != "v") {
    out.type = target::ParseSerializedType(type_part, types_);
  } else {
    out.type = types_.Void();
  }
  if (!HexDecode(std::string_view(r).substr(comma + 1), &out.bytes)) {
    ProtocolFail("bad call response bytes");
  }
  return out;
}

std::optional<dbg::VariableInfo> RemoteBackend::GetTargetVariable(const std::string& name) {
  if (auto it = var_cache_.find(name); it != var_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  std::string r = Request("qVar:" + HexName(name));
  if (StartsWith(r, "E")) {
    var_cache_[name] = std::nullopt;
    return std::nullopt;
  }
  size_t semi = r.find(';');
  uint64_t addr;
  if (!StartsWith(r, "V") || semi == std::string::npos ||
      !ParseHexU64(std::string_view(r).substr(1, semi - 1), &addr)) {
    ProtocolFail("bad variable response");
  }
  dbg::VariableInfo info;
  info.name = name;
  info.addr = addr;
  info.type = target::ParseSerializedType(r.substr(semi + 1), types_);
  var_cache_[name] = info;
  return info;
}

std::optional<dbg::FunctionInfo> RemoteBackend::GetTargetFunction(const std::string& name) {
  if (auto it = func_cache_.find(name); it != func_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  std::string r = Request("qFunc:" + HexName(name));
  if (StartsWith(r, "E")) {
    func_cache_[name] = std::nullopt;
    return std::nullopt;
  }
  size_t semi = r.find(';');
  uint64_t addr;
  if (!StartsWith(r, "F") || semi == std::string::npos ||
      !ParseHexU64(std::string_view(r).substr(1, semi - 1), &addr)) {
    ProtocolFail("bad function response");
  }
  dbg::FunctionInfo info;
  info.name = name;
  info.addr = addr;
  info.type = target::ParseSerializedType(r.substr(semi + 1), types_);
  func_cache_[name] = info;
  return info;
}

TypeRef RemoteBackend::QueryType(const std::string& command, const std::string& name) {
  std::string key = command + ":" + name;
  if (auto it = type_cache_.find(key); it != type_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kTypeLookup);
  counters_.type_lookups++;
  std::string r = Request(command + ":" + HexName(name));
  TypeRef t = nullptr;
  if (!StartsWith(r, "E") && StartsWith(r, "T")) {
    t = target::ParseSerializedType(r.substr(1), types_);
  }
  type_cache_[key] = t;
  return t;
}

TypeRef RemoteBackend::GetTargetTypedef(const std::string& name) {
  return QueryType("qTypedef", name);
}

TypeRef RemoteBackend::GetTargetStruct(const std::string& tag) {
  return QueryType("qStruct", tag);
}

TypeRef RemoteBackend::GetTargetUnion(const std::string& tag) {
  return QueryType("qUnion", tag);
}

TypeRef RemoteBackend::GetTargetEnum(const std::string& tag) {
  return QueryType("qEnum", tag);
}

std::optional<dbg::EnumeratorInfo> RemoteBackend::GetTargetEnumerator(
    const std::string& name) {
  if (auto it = enum_cache_.find(name); it != enum_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kSymbolLookup);
  counters_.symbol_lookups++;
  std::string r = Request("qEnumConst:" + HexName(name));
  if (!StartsWith(r, "C")) {
    enum_cache_[name] = std::nullopt;
    return std::nullopt;  // E00 (not found) or protocol-unsupported
  }
  size_t semi = r.find(';');
  uint64_t v;
  if (semi == std::string::npos || !ParseHexU64(std::string_view(r).substr(1, semi - 1), &v)) {
    ProtocolFail("bad enumerator response");
  }
  dbg::EnumeratorInfo info;
  info.value = static_cast<int64_t>(v);
  info.type = target::ParseSerializedType(r.substr(semi + 1), types_);
  enum_cache_[name] = info;
  return info;
}

size_t RemoteBackend::NumFrames() {
  if (num_frames_cache_.has_value()) {
    return *num_frames_cache_;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  std::string r = Request("qFrames");
  uint64_t n;
  if (!StartsWith(r, "N") || !ParseHexU64(std::string_view(r).substr(1), &n)) {
    ProtocolFail("bad frames response");
  }
  num_frames_cache_ = n;
  return n;
}

std::string RemoteBackend::FrameFunction(size_t frame) {
  if (auto it = frame_fn_cache_.find(frame); it != frame_fn_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  std::string r = Request("qFrameFn:" + HexU64(frame));
  if (!StartsWith(r, "F")) {
    ProtocolFail("bad frame-function response");
  }
  std::vector<uint8_t> bytes;
  if (!HexDecode(std::string_view(r).substr(1), &bytes)) {
    ProtocolFail("bad frame-function name");
  }
  std::string fn(bytes.begin(), bytes.end());
  frame_fn_cache_[frame] = fn;
  return fn;
}

std::vector<dbg::FrameVariable> RemoteBackend::FrameLocals(size_t frame) {
  if (auto it = frame_locals_cache_.find(frame); it != frame_locals_cache_.end()) {
    return it->second;
  }
  obs::CallTimer timer(instr_, obs::NarrowCall::kFrames);
  std::string r = Request("qFrameLocals:" + HexU64(frame));
  if (!StartsWith(r, "L")) {
    ProtocolFail("bad frame-locals response");
  }
  std::vector<dbg::FrameVariable> out;
  for (std::string_view part : Split(std::string_view(r).substr(1), ';')) {
    if (part.empty()) {
      continue;
    }
    std::vector<std::string_view> fields = Split(part, ',');
    if (fields.size() != 3) {
      ProtocolFail("bad frame-local entry");
    }
    std::vector<uint8_t> name_bytes;
    uint64_t addr;
    if (!HexDecode(fields[0], &name_bytes) || !ParseHexU64(fields[1], &addr)) {
      ProtocolFail("bad frame-local fields");
    }
    dbg::FrameVariable v;
    v.name.assign(name_bytes.begin(), name_bytes.end());
    v.addr = addr;
    v.type = target::ParseSerializedType(std::string(fields[2]), types_);
    out.push_back(std::move(v));
  }
  frame_locals_cache_[frame] = out;
  return out;
}

}  // namespace duel::rsp
