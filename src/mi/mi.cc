#include "src/mi/mi.h"

#include <cctype>

#include "src/serve/service.h"
#include "src/support/strings.h"

namespace duel::mi {

std::string MiQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\%03o", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
  return out;
}

namespace {

// Parses an MI c-string starting at s[i] == '"'. Returns false on bad syntax.
bool ParseCString(const std::string& s, size_t* i, std::string* out) {
  if (*i >= s.size() || s[*i] != '"') {
    return false;
  }
  ++*i;
  out->clear();
  while (*i < s.size()) {
    char c = s[(*i)++];
    if (c == '"') {
      return true;
    }
    if (c == '\\' && *i < s.size()) {
      char e = s[(*i)++];
      switch (e) {
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        default: out->push_back(e); break;
      }
    } else {
      out->push_back(c);
    }
  }
  return false;
}

}  // namespace

std::string MiSession::Handle(const std::string& line) {
  // Token prefix.
  size_t i = 0;
  std::string token;
  while (i < line.size() && isdigit(static_cast<unsigned char>(line[i]))) {
    token.push_back(line[i++]);
  }
  // Console form: "duel EXPR".
  if (line.compare(i, 5, "duel ") == 0) {
    QueryResult r = session_.Query(line.substr(i + 5));
    std::string out;
    for (const std::string& l : r.lines) {
      out += "~" + MiQuote(l + "\n") + "\n";
    }
    if (r.ok) {
      out += token + "^done\n";
    } else {
      out += token + "^error,msg=" + MiQuote(r.error) + "\n";
    }
    return out + "(gdb)\n";
  }
  if (i >= line.size() || line[i] != '-') {
    return token + "^error,msg=" + MiQuote("undefined command: " + line) + "\n(gdb)\n";
  }
  size_t cmd_start = i;
  while (i < line.size() && !isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  std::string command = line.substr(cmd_start, i - cmd_start);
  while (i < line.size() && isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  return HandleCommand(token, command, line.substr(i));
}

std::string MiSession::HandleCommand(const std::string& token, const std::string& command,
                                     const std::string& rest) {
  auto done = [&](const std::string& extra = "") {
    return token + "^done" + extra + "\n(gdb)\n";
  };
  auto error = [&](const std::string& msg) {
    return token + "^error,msg=" + MiQuote(msg) + "\n(gdb)\n";
  };

  if (command == "-duel-evaluate") {
    std::string expr;
    size_t i = 0;
    if (!ParseCString(rest, &i, &expr)) {
      expr = rest;  // tolerate an unquoted expression
    }
    if (expr.empty()) {
      return error("-duel-evaluate requires an expression");
    }
    QueryResult r = session_.Query(expr);
    if (!r.ok) {
      return error(r.error);
    }
    std::string values = ",values=[";
    for (size_t k = 0; k < r.entries.size(); ++k) {
      if (k != 0) {
        values += ",";
      }
      values += "{sym=" + MiQuote(r.entries[k].sym) + ",value=" +
                MiQuote(r.entries[k].value) + "}";
    }
    values += "]";
    if (r.truncated) {
      values += ",truncated=\"1\"";
    }
    return done(values);
  }
  if (command == "-duel-set-engine") {
    if (rest == "sm" || rest == "state-machine") {
      session_.options().engine = EngineKind::kStateMachine;
      return done();
    }
    if (rest == "coro" || rest == "coroutine") {
      session_.options().engine = EngineKind::kCoroutine;
      return done();
    }
    return error("unknown engine: " + rest);
  }
  if (command == "-duel-set-symbolic") {
    if (rest == "on") {
      session_.options().eval.sym_mode = EvalOptions::SymMode::kOn;
      return done();
    }
    if (rest == "lazy") {
      session_.options().eval.sym_mode = EvalOptions::SymMode::kLazy;
      return done();
    }
    if (rest == "off") {
      session_.options().eval.sym_mode = EvalOptions::SymMode::kOff;
      return done();
    }
    return error("expected on|lazy|off");
  }
  if (command == "-duel-set-cache") {
    if (rest == "on") {
      session_.options().eval.data_cache = true;
      return done();
    }
    if (rest == "off") {
      session_.options().eval.data_cache = false;
      return done();
    }
    return error("expected on|off");
  }
  if (command == "-duel-clear-aliases") {
    session_.ClearAliases();
    return done();
  }
  if (command == "-duel-stats") {
    if (rest == "on") {
      session_.options().collect_stats = true;
      return done();
    }
    if (rest == "off") {
      session_.options().collect_stats = false;
      session_.options().profile = false;
      return done();
    }
    if (rest == "profile") {
      session_.options().collect_stats = true;
      session_.options().profile = true;
      return done();
    }
    if (!rest.empty()) {
      return error("expected on|off|profile or no argument");
    }
    // Bare form: report the stats of the most recent instrumented query.
    const std::optional<obs::QueryStats>& stats = session_.last_stats();
    if (!stats.has_value()) {
      return error("no stats collected yet; run -duel-stats on first");
    }
    std::string extra = ",stats=" + MiQuote(stats->ToJson());
    return done(extra);
  }
  if (command == "-duel-trace") {
    obs::Tracer& tracer = session_.tracer();
    if (rest == "on") {
      tracer.set_enabled(true);
      return done();
    }
    if (rest == "off") {
      tracer.set_enabled(false);
      return done();
    }
    if (rest == "clear") {
      tracer.Clear();
      return done();
    }
    if (rest == "dump" || rest.empty()) {
      std::string out;
      for (const obs::TraceEvent& e : tracer.Events()) {
        out += "~" + MiQuote(std::string(static_cast<size_t>(e.depth) * 2, ' ') + e.name +
                             (e.detail.empty() ? "" : " " + e.detail) + " " +
                             StrPrintf("%lluns", static_cast<unsigned long long>(e.dur_ns)) +
                             "\n") +
               "\n";
      }
      std::string extra = StrPrintf(",spans=\"%zu\",dropped=\"%llu\"", tracer.size(),
                                    static_cast<unsigned long long>(tracer.dropped()));
      return out + done(extra);
    }
    return error("expected on|off|dump|clear");
  }
  if (command == "-duel-set-plan-cache") {
    if (rest == "on") {
      session_.options().plan_cache = true;
      return done();
    }
    if (rest == "off") {
      session_.options().plan_cache = false;
      return done();
    }
    if (rest == "clear") {
      session_.plan_cache().Clear();
      return done();
    }
    return error("expected on|off|clear");
  }
  if (command == "-duel-plan") {
    if (!rest.empty()) {
      return error("-duel-plan takes no argument");
    }
    PlanCache& cache = session_.plan_cache();
    const PlanCacheCounters& pc = cache.counters();
    std::string extra = StrPrintf(
        ",plan-cache={enabled=\"%s\",size=\"%zu\",capacity=\"%zu\","
        "lookups=\"%llu\",hits=\"%llu\",misses=\"%llu\",invalidations=\"%llu\","
        "evictions=\"%llu\"}",
        session_.options().plan_cache ? "1" : "0", cache.size(), cache.capacity(),
        static_cast<unsigned long long>(pc.lookups), static_cast<unsigned long long>(pc.hits),
        static_cast<unsigned long long>(pc.misses),
        static_cast<unsigned long long>(pc.invalidations),
        static_cast<unsigned long long>(pc.evictions));
    extra += ",plans=[";
    bool first = true;
    for (const CompiledQuery* p : cache.Entries()) {
      if (!first) {
        extra += ",";
      }
      first = false;
      extra += StrPrintf(
          "{expr=%s,hits=\"%llu\",nodes=\"%d\",bound-names=\"%zu\",folded-nodes=\"%llu\"}",
          MiQuote(p->text).c_str(), static_cast<unsigned long long>(p->hits),
          p->parsed.num_nodes, p->notes.bound_names.size(),
          static_cast<unsigned long long>(p->notes.stats.nodes_folded));
    }
    extra += "]";
    return done(extra);
  }
  if (command == "-duel-check") {
    std::string expr;
    size_t i = 0;
    if (!ParseCString(rest, &i, &expr)) {
      expr = rest;  // tolerate an unquoted expression
    }
    if (expr.empty()) {
      return error("-duel-check requires an expression");
    }
    QueryResult r = session_.Check(expr);
    std::string extra = ",diags=[";
    for (size_t k = 0; k < r.diags.size(); ++k) {
      const Diag& d = r.diags[k];
      if (k != 0) {
        extra += ",";
      }
      extra += StrPrintf("{severity=\"%s\",rule=%s,begin=\"%zu\",end=\"%zu\",msg=%s",
                         SeverityName(d.severity), MiQuote(d.rule).c_str(), d.span.begin,
                         d.span.end, MiQuote(d.message).c_str());
      if (!d.fixit.empty()) {
        extra += ",fixit=" + MiQuote(d.fixit);
      }
      extra += "}";
    }
    extra += "]";
    return done(extra);
  }
  if (command == "-duel-set-warn") {
    if (rest == "on") {
      session_.options().warn = WarnMode::kOn;
      return done();
    }
    if (rest == "off") {
      session_.options().warn = WarnMode::kOff;
      return done();
    }
    if (rest == "error") {
      session_.options().warn = WarnMode::kError;
      return done();
    }
    return error("expected on|off|error");
  }
  if (command == "-duel-serve-stats") {
    if (service_ == nullptr) {
      return error("no query service attached");
    }
    serve::ServeStats s = service_->stats();
    std::string extra = StrPrintf(
        ",serve={clients=\"%zu\",workers=\"%zu\",queue_depth=\"%zu\","
        "in_flight=\"%zu\",submitted=\"%llu\",completed=\"%llu\",ok=\"%llu\","
        "query_errors=\"%llu\",cancelled=\"%llu\",rejected_busy=\"%llu\","
        "read_only=\"%llu\",mutating=\"%llu\",mutation_epoch=\"%llu\","
        "latency_p50_ns=\"%llu\",latency_p99_ns=\"%llu\",queue_p50_ns=\"%llu\","
        "queue_p99_ns=\"%llu\"}",
        s.clients, s.workers, s.queue_depth, s.in_flight,
        static_cast<unsigned long long>(s.submitted),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.ok),
        static_cast<unsigned long long>(s.query_errors),
        static_cast<unsigned long long>(s.cancelled),
        static_cast<unsigned long long>(s.rejected_busy),
        static_cast<unsigned long long>(s.read_only),
        static_cast<unsigned long long>(s.mutating),
        static_cast<unsigned long long>(s.mutation_epoch),
        static_cast<unsigned long long>(s.latency_ns.Percentile(0.50)),
        static_cast<unsigned long long>(s.latency_ns.Percentile(0.99)),
        static_cast<unsigned long long>(s.queue_ns.Percentile(0.50)),
        static_cast<unsigned long long>(s.queue_ns.Percentile(0.99)));
    return done(extra);
  }
  if (command == "-list-features") {
    return done(
        ",features=[\"duel-evaluate\",\"duel-set-engine\",\"duel-set-symbolic\","
        "\"duel-set-cache\",\"duel-clear-aliases\",\"duel-stats\",\"duel-trace\","
        "\"duel-plan\",\"duel-set-plan-cache\",\"duel-check\",\"duel-set-warn\","
        "\"duel-serve-stats\"]");
  }
  return error("undefined MI command: " + command);
}

}  // namespace duel::mi
