// A gdb/MI-flavoured machine interface for DUEL.
//
// The original added one command to gdb ("duel expr"). Modern front ends
// drive gdb through MI, so this module exposes the same single entry point
// as MI commands, making DUEL scriptable by tools:
//
//   [token]-duel-evaluate "expr"     -> [token]^done,values=[{sym="..",value=".."},...]
//                                       [token]^error,msg="..."
//   [token]-duel-set-engine sm|coro  -> ^done
//   [token]-duel-set-symbolic on|off -> ^done
//   [token]-duel-clear-aliases       -> ^done
//   [token]-list-features            -> ^done,features=[...]
//   duel EXPR        (console form)  -> ~"line\n"... then ^done
//
// Every response line is followed by the MI turn terminator "(gdb)".

#ifndef DUEL_MI_MI_H_
#define DUEL_MI_MI_H_

#include <string>
#include <vector>

#include "src/duel/session.h"

namespace duel::serve {
class QueryService;
}

namespace duel::mi {

// Escapes a string as an MI c-string (quotes included).
std::string MiQuote(const std::string& s);

class MiSession {
 public:
  explicit MiSession(dbg::DebuggerBackend& backend, SessionOptions opts = {})
      : session_(backend, opts) {}

  // Handles one input line, returning the full response (one or more lines,
  // each '\n'-terminated, ending with "(gdb)\n").
  std::string Handle(const std::string& line);

  Session& session() { return session_; }

  // Attaches a concurrent query service for -duel-serve-stats (the front
  // end owns it; null detaches).
  void set_service(serve::QueryService* service) { service_ = service; }

 private:
  std::string HandleCommand(const std::string& token, const std::string& command,
                            const std::string& rest);

  Session session_;
  serve::QueryService* service_ = nullptr;
};

}  // namespace duel::mi

#endif  // DUEL_MI_MI_H_
