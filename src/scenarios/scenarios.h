// Canned debuggee programs: the data structures the paper's examples query.
//
// Each builder reconstructs, in simulated target memory, the program state
// the paper assumes at its breakpoints: the compiler symbol table
// `struct symbol *hash[1024]`, linked lists threaded through `next`, binary
// trees with `key/left/right`, argv vectors, and plain arrays. Contents are
// deterministic so the golden paper-example tests reproduce the paper's
// printed outputs.

#ifndef DUEL_SCENARIOS_SCENARIOS_H_
#define DUEL_SCENARIOS_SCENARIOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/target/builder.h"
#include "src/target/image.h"

namespace duel::scenarios {

using target::Addr;
using target::TargetImage;

// --- arrays -------------------------------------------------------------

// Defines `int name[values.size()]` with the given contents.
Addr BuildIntArray(TargetImage& image, const std::string& name,
                   const std::vector<int32_t>& values);

// Defines `int name[n]`, filled with a deterministic pseudo-random pattern
// (LCG with `seed`), values in [lo, hi].
Addr BuildRandomIntArray(TargetImage& image, const std::string& name, size_t n, int32_t lo,
                         int32_t hi, uint32_t seed);

// --- linked lists ----------------------------------------------------------
//
//   struct List { int value; struct List *next; };

// Defines `struct List *name` heading a list with the given values.
// Returns the address of the first node (0 for an empty list).
Addr BuildList(TargetImage& image, const std::string& name,
               const std::vector<int32_t>& values);

// Like BuildList but links the last node back to the node at `cycle_to`
// (index into values), producing a cyclic list for the cycle-detection
// extension tests.
Addr BuildCyclicList(TargetImage& image, const std::string& name,
                     const std::vector<int32_t>& values, size_t cycle_to);

// Like BuildList but makes the final `next` a dangling (invalid, non-null)
// pointer, for the "invalid pointer terminates the sequence" rule.
Addr BuildDanglingList(TargetImage& image, const std::string& name,
                       const std::vector<int32_t>& values, Addr dangling);

// --- binary trees ------------------------------------------------------------
//
//   struct node { int key; struct node *left, *right; };
//
// The tree is given in the paper's preorder notation, e.g.
//   "(9 (3 (4) (5)) (12))"
// Empty subtrees may be omitted or written "()".

Addr BuildTree(TargetImage& image, const std::string& name, const std::string& preorder);

// --- the compiler symbol table ----------------------------------------------
//
//   struct symbol { char *name; int scope; struct symbol *next; } *hash[1024];

struct SymEntry {
  std::string name;
  int32_t scope = 0;
};

// Defines `hash` with `buckets` buckets; `chains[b]` gives the symbols of
// bucket b front-to-back. Unlisted buckets are NULL.
void BuildSymtab(TargetImage& image, const std::map<size_t, std::vector<SymEntry>>& chains,
                 size_t buckets = 1024);

// Fills every bucket of a `buckets`-sized table with a short deterministic
// chain (scopes strictly decreasing within each chain), for whole-table
// sweeps like `hash[0..1023]->scope = 0 ;`.
void BuildDenseSymtab(TargetImage& image, size_t buckets = 1024, uint32_t seed = 1);

// --- argv ----------------------------------------------------------------------

// Defines `char *argv[args.size()+1]` (NULL-terminated) and `int argc`.
void BuildArgv(TargetImage& image, const std::vector<std::string>& args);

// --- a malloc-style heap arena --------------------------------------------------
//
//   struct chunk { unsigned long size; int used; int bin; struct chunk *fd; };
//
// Chunks are laid head-to-tail in a contiguous `arena` region: the chunk
// after `c` starts at (char *)c + c->size. Free chunks are threaded per-bin
// through `fd` from `bins[bin]`. Globals: char arena[bytes]; struct chunk
// *bins[4]; char *arena_end.

struct HeapSpec {
  size_t chunk_count = 16;
  uint32_t seed = 1;
  // Index of a chunk whose size field gets corrupted (SIZE_MAX = none).
  size_t corrupt_index = static_cast<size_t>(-1);
  int64_t corrupt_size = 0;
};

// Builds the arena; returns the number of bytes used. Deterministic.
size_t BuildHeap(TargetImage& image, const HeapSpec& spec);

// --- frames (extension) ----------------------------------------------------------

// Pushes `depth` stack frames, each for function `fn<i>` with a local
// `int x = 10*i`, innermost first — the Discussion section's "local x in all
// of the currently active stack frames".
void BuildFrames(TargetImage& image, size_t depth);

}  // namespace duel::scenarios

#endif  // DUEL_SCENARIOS_SCENARIOS_H_
