#include "src/scenarios/scenarios.h"

#include <cctype>

#include "src/support/strings.h"

namespace duel::scenarios {

using target::ImageBuilder;
using target::TypeRef;

Addr BuildIntArray(TargetImage& image, const std::string& name,
                   const std::vector<int32_t>& values) {
  ImageBuilder b(image);
  Addr base = b.Global(name, b.Arr(b.Int(), values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    b.PokeI32(base + i * 4, values[i]);
  }
  return base;
}

Addr BuildRandomIntArray(TargetImage& image, const std::string& name, size_t n, int32_t lo,
                         int32_t hi, uint32_t seed) {
  std::vector<int32_t> values(n);
  uint32_t state = seed == 0 ? 1 : seed;
  for (size_t i = 0; i < n; ++i) {
    state = state * 1664525u + 1013904223u;  // Numerical Recipes LCG
    uint32_t span = static_cast<uint32_t>(hi - lo + 1);
    values[i] = lo + static_cast<int32_t>((state >> 8) % span);
  }
  return BuildIntArray(image, name, values);
}

namespace {

// Declares (once) `struct List { int value; struct List *next; }` plus the
// matching `typedef struct List List;` the paper's C code assumes.
TypeRef ListType(ImageBuilder& b) {
  TypeRef existing = b.types().LookupStruct("List");
  if (existing != nullptr && existing->complete()) {
    return existing;
  }
  TypeRef t = b.Struct("List")
                  .Field("value", b.Int())
                  .Field("next", b.Ptr(b.StructRef("List")))
                  .Build();
  b.types().DefineTypedef("List", t);
  return t;
}

Addr BuildListNodes(ImageBuilder& b, const std::vector<int32_t>& values,
                    std::vector<Addr>* nodes) {
  TypeRef list = ListType(b);
  nodes->clear();
  for (int32_t v : values) {
    Addr node = b.Alloc(list);
    b.PokeI32(b.FieldAddr(node, list, "value"), v);
    b.PokePtr(b.FieldAddr(node, list, "next"), 0);
    if (!nodes->empty()) {
      b.PokePtr(b.FieldAddr(nodes->back(), list, "next"), node);
    }
    nodes->push_back(node);
  }
  return nodes->empty() ? 0 : nodes->front();
}

}  // namespace

Addr BuildList(TargetImage& image, const std::string& name,
               const std::vector<int32_t>& values) {
  ImageBuilder b(image);
  TypeRef list = ListType(b);
  std::vector<Addr> nodes;
  Addr head = BuildListNodes(b, values, &nodes);
  Addr global = b.Global(name, b.Ptr(list));
  b.PokePtr(global, head);
  return head;
}

Addr BuildCyclicList(TargetImage& image, const std::string& name,
                     const std::vector<int32_t>& values, size_t cycle_to) {
  ImageBuilder b(image);
  TypeRef list = ListType(b);
  std::vector<Addr> nodes;
  Addr head = BuildListNodes(b, values, &nodes);
  if (!nodes.empty() && cycle_to < nodes.size()) {
    b.PokePtr(b.FieldAddr(nodes.back(), list, "next"), nodes[cycle_to]);
  }
  Addr global = b.Global(name, b.Ptr(list));
  b.PokePtr(global, head);
  return head;
}

Addr BuildDanglingList(TargetImage& image, const std::string& name,
                       const std::vector<int32_t>& values, Addr dangling) {
  ImageBuilder b(image);
  TypeRef list = ListType(b);
  std::vector<Addr> nodes;
  Addr head = BuildListNodes(b, values, &nodes);
  if (!nodes.empty()) {
    b.PokePtr(b.FieldAddr(nodes.back(), list, "next"), dangling);
  }
  Addr global = b.Global(name, b.Ptr(list));
  b.PokePtr(global, head);
  return head;
}

namespace {

TypeRef NodeType(ImageBuilder& b) {
  TypeRef existing = b.types().LookupStruct("node");
  if (existing != nullptr && existing->complete()) {
    return existing;
  }
  return b.Struct("node")
      .Field("key", b.Int())
      .Field("left", b.Ptr(b.StructRef("node")))
      .Field("right", b.Ptr(b.StructRef("node")))
      .Build();
}

// Recursive-descent parser for "(key left right)" preorder tree specs.
class TreeParser {
 public:
  TreeParser(ImageBuilder& b, const std::string& spec) : b_(&b), spec_(spec) {}

  Addr Parse() {
    Addr root = ParseNode();
    SkipWs();
    if (pos_ != spec_.size()) {
      throw DuelError(ErrorKind::kInternal, "trailing characters in tree spec: " + spec_);
    }
    return root;
  }

 private:
  void SkipWs() {
    while (pos_ < spec_.size() &&
           (isspace(static_cast<unsigned char>(spec_[pos_])) || spec_[pos_] == ',')) {
      ++pos_;
    }
  }

  Addr ParseNode() {
    SkipWs();
    if (pos_ >= spec_.size() || spec_[pos_] != '(') {
      throw DuelError(ErrorKind::kInternal, "expected '(' in tree spec: " + spec_);
    }
    ++pos_;
    SkipWs();
    if (pos_ < spec_.size() && spec_[pos_] == ')') {  // "()": empty subtree
      ++pos_;
      return 0;
    }
    bool neg = pos_ < spec_.size() && spec_[pos_] == '-';
    if (neg) {
      ++pos_;
    }
    int32_t key = 0;
    bool any = false;
    while (pos_ < spec_.size() && isdigit(static_cast<unsigned char>(spec_[pos_]))) {
      key = key * 10 + (spec_[pos_++] - '0');
      any = true;
    }
    if (!any) {
      throw DuelError(ErrorKind::kInternal, "expected a key in tree spec: " + spec_);
    }
    if (neg) {
      key = -key;
    }
    Addr left = 0, right = 0;
    SkipWs();
    if (pos_ < spec_.size() && spec_[pos_] == '(') {
      left = ParseNode();
      SkipWs();
      if (pos_ < spec_.size() && spec_[pos_] == '(') {
        right = ParseNode();
      }
    }
    SkipWs();
    if (pos_ >= spec_.size() || spec_[pos_] != ')') {
      throw DuelError(ErrorKind::kInternal, "expected ')' in tree spec: " + spec_);
    }
    ++pos_;

    TypeRef node = NodeType(*b_);
    Addr addr = b_->Alloc(node);
    b_->PokeI32(b_->FieldAddr(addr, node, "key"), key);
    b_->PokePtr(b_->FieldAddr(addr, node, "left"), left);
    b_->PokePtr(b_->FieldAddr(addr, node, "right"), right);
    return addr;
  }

  ImageBuilder* b_;
  const std::string& spec_;
  size_t pos_ = 0;
};

}  // namespace

Addr BuildTree(TargetImage& image, const std::string& name, const std::string& preorder) {
  ImageBuilder b(image);
  TypeRef node = NodeType(b);
  Addr root = TreeParser(b, preorder).Parse();
  Addr global = b.Global(name, b.Ptr(node));
  b.PokePtr(global, root);
  return root;
}

namespace {

TypeRef SymbolType(ImageBuilder& b) {
  TypeRef existing = b.types().LookupStruct("symbol");
  if (existing != nullptr && existing->complete()) {
    return existing;
  }
  return b.Struct("symbol")
      .Field("name", b.Ptr(b.Char()))
      .Field("scope", b.Int())
      .Field("next", b.Ptr(b.StructRef("symbol")))
      .Build();
}

}  // namespace

void BuildSymtab(TargetImage& image, const std::map<size_t, std::vector<SymEntry>>& chains,
                 size_t buckets) {
  ImageBuilder b(image);
  TypeRef sym = SymbolType(b);
  Addr hash = b.Global("hash", b.Arr(b.Ptr(sym), buckets));
  for (const auto& [bucket, entries] : chains) {
    if (bucket >= buckets) {
      throw DuelError(ErrorKind::kInternal, "symtab bucket out of range");
    }
    Addr prev = 0;
    Addr first = 0;
    for (const SymEntry& e : entries) {
      Addr node = b.Alloc(sym);
      b.PokePtr(b.FieldAddr(node, sym, "name"), b.String(e.name));
      b.PokeI32(b.FieldAddr(node, sym, "scope"), e.scope);
      b.PokePtr(b.FieldAddr(node, sym, "next"), 0);
      if (prev != 0) {
        b.PokePtr(b.FieldAddr(prev, sym, "next"), node);
      } else {
        first = node;
      }
      prev = node;
    }
    b.PokePtr(hash + bucket * 8, first);
  }
}

void BuildDenseSymtab(TargetImage& image, size_t buckets, uint32_t seed) {
  std::map<size_t, std::vector<SymEntry>> chains;
  uint32_t state = seed == 0 ? 1 : seed;
  for (size_t bkt = 0; bkt < buckets; ++bkt) {
    state = state * 1664525u + 1013904223u;
    size_t len = 1 + (state >> 16) % 4;
    std::vector<SymEntry> chain;
    int32_t scope = static_cast<int32_t>(len);
    for (size_t i = 0; i < len; ++i) {
      chain.push_back(SymEntry{StrPrintf("sym_%zu_%zu", bkt, i), scope--});
    }
    chains[bkt] = std::move(chain);
  }
  BuildSymtab(image, chains, buckets);
}

size_t BuildHeap(TargetImage& image, const HeapSpec& spec) {
  ImageBuilder b(image);
  TypeRef chunk = b.Struct("chunk")
                      .Field("size", b.types().ULong())
                      .Field("used", b.Int())
                      .Field("bin", b.Int())
                      .Field("fd", b.Ptr(b.StructRef("chunk")))
                      .Build();
  // Sizes: header (24 bytes) + payload in one of four bins.
  static const size_t kBinPayload[4] = {8, 24, 56, 120};
  uint32_t state = spec.seed == 0 ? 1 : spec.seed;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };

  std::vector<size_t> sizes;
  std::vector<int> bins;
  std::vector<bool> used;
  size_t total = 0;
  for (size_t i = 0; i < spec.chunk_count; ++i) {
    int bin = static_cast<int>(next() % 4);
    bins.push_back(bin);
    sizes.push_back(chunk->size() + kBinPayload[bin]);
    used.push_back(next() % 3 != 0);  // ~2/3 in use
    total += sizes.back();
  }

  Addr arena = b.Global("arena", b.Arr(b.Char(), total));
  Addr bins_var = b.Global("bins", b.Arr(b.Ptr(chunk), 4));
  Addr end_var = b.Global("arena_end", b.Ptr(b.Char()));
  b.PokePtr(end_var, arena + total);

  Addr bin_tail[4] = {0, 0, 0, 0};
  Addr at = arena;
  for (size_t i = 0; i < spec.chunk_count; ++i) {
    uint64_t size = sizes[i];
    if (i == spec.corrupt_index) {
      size = static_cast<uint64_t>(spec.corrupt_size);
    }
    b.PokeU64(b.FieldAddr(at, chunk, "size"), size);
    b.PokeI32(b.FieldAddr(at, chunk, "used"), used[i] ? 1 : 0);
    b.PokeI32(b.FieldAddr(at, chunk, "bin"), bins[i]);
    b.PokePtr(b.FieldAddr(at, chunk, "fd"), 0);
    if (!used[i]) {
      // Append to the bin's free list.
      if (bin_tail[bins[i]] == 0) {
        b.PokePtr(bins_var + static_cast<size_t>(bins[i]) * 8, at);
      } else {
        b.PokePtr(b.FieldAddr(bin_tail[bins[i]], chunk, "fd"), at);
      }
      bin_tail[bins[i]] = at;
    }
    at += sizes[i];  // layout always advances by the TRUE size
  }
  return total;
}

void BuildArgv(TargetImage& image, const std::vector<std::string>& args) {
  ImageBuilder b(image);
  TypeRef char_ptr = b.Ptr(b.Char());
  Addr argv = b.Global("argv", b.Arr(char_ptr, args.size() + 1));
  for (size_t i = 0; i < args.size(); ++i) {
    b.PokePtr(argv + i * 8, b.String(args[i]));
  }
  b.PokePtr(argv + args.size() * 8, 0);
  Addr argc = b.Global("argc", b.Int());
  b.PokeI32(argc, static_cast<int32_t>(args.size()));
}

void BuildFrames(TargetImage& image, size_t depth) {
  ImageBuilder b(image);
  // Outermost first so that frame 0 ends up innermost.
  for (size_t i = depth; i-- > 0;) {
    b.PushFrame(StrPrintf("fn%zu", i));
    Addr x = b.FrameLocal("x", b.Int());
    b.PokeI32(x, static_cast<int32_t>(10 * i));
  }
}

}  // namespace duel::scenarios
