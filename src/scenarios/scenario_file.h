// Scenario description files: debuggee images defined in text.
//
// The paper's examples assume a program stopped at a breakpoint with
// interesting data in memory. This module lets that program state be
// described in a small declaration language (reusing DUEL's lexer), so
// sessions can be reproduced and shared without writing C++:
//
//   ## a compiler's symbol table
//   struct symbol { char *name; int scope; struct symbol *next; }
//
//   struct symbol s0 = { "main", 4, &s1 }
//   struct symbol s1 = { "argc", 3, 0 }
//   struct symbol *hash[4] = { &s0, 0, 0, &s1 }
//   int x[6] = { 3, -1, 4, 1, -5, 9 }
//   double pi = 3.14159
//   char *greeting = "hello"
//
//   frame main { int depth = 0 }      ## innermost frame last
//
// Rules: `struct`/`union` definitions first use wins; initializers are
// scalars, strings (for char*), `&name` references (resolved after all
// variables are allocated, so forward references work), or brace lists for
// arrays/records (missing trailing elements are zero). `##` comments.

#ifndef DUEL_SCENARIOS_SCENARIO_FILE_H_
#define DUEL_SCENARIOS_SCENARIO_FILE_H_

#include <string>

#include "src/target/image.h"

namespace duel::scenarios {

// Loads a scenario description into `image`. Throws DuelError(kParse) with
// a line-contextual message on malformed input.
void LoadScenario(target::TargetImage& image, const std::string& source);

// Convenience: reads `path` and loads it. Throws DuelError(kTarget) if the
// file cannot be read.
void LoadScenarioFile(target::TargetImage& image, const std::string& path);

// The inverse: serializes an image's types, globals (with current memory
// contents as initializers) and frames back into scenario text — a snapshot
// of the debuggee state. Pointers to *named* variables round-trip as &name;
// char* into anonymous storage round-trips as its string; other pointers
// degrade to raw addresses (loadable, but tied to this image's layout).
std::string DumpScenario(const target::TargetImage& image);

}  // namespace duel::scenarios

#endif  // DUEL_SCENARIOS_SCENARIO_FILE_H_
