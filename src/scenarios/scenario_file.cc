#include "src/scenarios/scenario_file.h"

#include <fstream>
#include <set>
#include <map>
#include <sstream>

#include "src/duel/lexer.h"
#include "src/support/strings.h"
#include "src/target/builder.h"

namespace duel::scenarios {

namespace {

using target::Addr;
using target::ImageBuilder;
using target::TypeKind;
using target::TypeRef;

// A parsed initializer, applied in a second pass so `&name` can reference
// variables declared later in the file.
struct Init {
  enum class Kind { kInt, kFloat, kString, kAddrOf, kList };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double f = 0;
  std::string s;  // string body or referenced name
  std::vector<Init> list;
  size_t offset = 0;  // source offset, for diagnostics
};

struct PendingInit {
  Addr addr;
  TypeRef type;
  Init init;
};

class ScenarioParser {
 public:
  ScenarioParser(target::TargetImage& image, const std::string& source)
      : image_(&image), builder_(image), source_(&source) {
    tokens_ = Lexer(source).LexAll();
  }

  void Run() {
    while (!At(Tok::kEnd)) {
      ParseItem();
    }
    ApplyInits();
  }

 private:
  // --- token plumbing -------------------------------------------------------
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(Tok t) const { return Cur().kind == t; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }
  bool Accept(Tok t) {
    if (At(t)) {
      Advance();
      return true;
    }
    return false;
  }
  void Expect(Tok t) {
    if (!Accept(t)) {
      Fail(StrPrintf("expected '%s', got '%s'", TokName(t), TokName(Cur().kind)));
    }
  }
  [[noreturn]] void Fail(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < Cur().range.begin && i < source_->size(); ++i) {
      if ((*source_)[i] == '\n') {
        ++line;
      }
    }
    throw DuelError(ErrorKind::kParse,
                    StrPrintf("scenario line %zu: %s", line, message.c_str()), Cur().range);
  }

  std::string ExpectIdent() {
    if (!At(Tok::kIdent)) {
      Fail("expected an identifier");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // --- grammar ---------------------------------------------------------------

  void ParseItem() {
    if (At(Tok::kKwStruct) || At(Tok::kKwUnion)) {
      // `struct tag {` is a definition; `struct tag name` declares a variable.
      size_t save = pos_;
      bool is_union = At(Tok::kKwUnion);
      Advance();
      std::string tag = ExpectIdent();
      if (At(Tok::kLBrace)) {
        ParseRecordDef(tag, is_union);
        return;
      }
      pos_ = save;
      ParseVarDef(/*in_frame=*/false);
      return;
    }
    if (At(Tok::kKwEnum)) {
      size_t save = pos_;
      Advance();
      std::string tag = ExpectIdent();
      if (At(Tok::kLBrace)) {
        ParseEnumDef(tag);
        return;
      }
      pos_ = save;
      ParseVarDef(false);
      return;
    }
    if (At(Tok::kIdent) && Cur().text == "frame") {
      ParseFrameDef();
      return;
    }
    ParseVarDef(false);
  }

  void ParseRecordDef(const std::string& tag, bool is_union) {
    Expect(Tok::kLBrace);
    std::vector<target::Member> members;
    while (!Accept(Tok::kRBrace)) {
      TypeRef base = ParseTypeBase();
      do {
        TypeRef t = base;
        while (Accept(Tok::kStar)) {
          t = builder_.Ptr(t);
        }
        target::Member m;
        m.name = ExpectIdent();
        while (Accept(Tok::kLBracket)) {
          if (!At(Tok::kIntLit)) {
            Fail("expected an array dimension");
          }
          t = builder_.Arr(t, static_cast<size_t>(Cur().int_value));
          Advance();
          Expect(Tok::kRBracket);
        }
        if (Accept(Tok::kColon)) {
          if (!At(Tok::kIntLit)) {
            Fail("expected a bit-field width");
          }
          m.is_bitfield = true;
          m.bit_width = static_cast<unsigned>(Cur().int_value);
          Advance();
        }
        m.type = t;
        members.push_back(std::move(m));
      } while (Accept(Tok::kComma));
      Expect(Tok::kSemi);
    }
    TypeRef rec = is_union ? image_->types().DeclareUnion(tag)
                           : image_->types().DeclareStruct(tag);
    if (rec->complete()) {
      Fail("record '" + tag + "' defined twice");
    }
    image_->types().CompleteRecord(rec, std::move(members));
  }

  void ParseEnumDef(const std::string& tag) {
    Expect(Tok::kLBrace);
    std::vector<target::Enumerator> enums;
    int64_t next = 0;
    while (!Accept(Tok::kRBrace)) {
      target::Enumerator e;
      e.name = ExpectIdent();
      if (Accept(Tok::kAssign)) {
        bool neg = Accept(Tok::kMinus);
        if (!At(Tok::kIntLit)) {
          Fail("expected an enumerator value");
        }
        e.value = static_cast<int64_t>(Cur().int_value);
        if (neg) {
          e.value = -e.value;
        }
        Advance();
      } else {
        e.value = next;
      }
      next = e.value + 1;
      enums.push_back(std::move(e));
      if (!Accept(Tok::kComma) && !At(Tok::kRBrace)) {
        Fail("expected ',' or '}' in enum");
      }
    }
    image_->types().DefineEnum(tag, std::move(enums));
  }

  TypeRef ParseTypeBase() {
    if (Accept(Tok::kKwStruct)) {
      return image_->types().DeclareStruct(ExpectIdent());
    }
    if (Accept(Tok::kKwUnion)) {
      return image_->types().DeclareUnion(ExpectIdent());
    }
    if (Accept(Tok::kKwEnum)) {
      std::string tag = ExpectIdent();
      TypeRef e = image_->types().LookupEnum(tag);
      if (e == nullptr) {
        Fail("unknown enum '" + tag + "'");
      }
      return e;
    }
    bool is_unsigned = false;
    bool any = false;
    int longs = 0;
    bool saw_char = false, saw_short = false, saw_float = false, saw_double = false;
    for (;;) {
      if (Accept(Tok::kKwUnsigned)) {
        is_unsigned = any = true;
      } else if (Accept(Tok::kKwSigned)) {
        any = true;
      } else if (Accept(Tok::kKwChar)) {
        saw_char = any = true;
      } else if (Accept(Tok::kKwShort)) {
        saw_short = any = true;
      } else if (Accept(Tok::kKwInt)) {
        any = true;
      } else if (Accept(Tok::kKwLong)) {
        longs++;
        any = true;
      } else if (Accept(Tok::kKwFloat)) {
        saw_float = any = true;
      } else if (Accept(Tok::kKwDouble)) {
        saw_double = any = true;
      } else {
        break;
      }
    }
    if (!any) {
      Fail("expected a type");
    }
    target::TypeTable& tt = image_->types();
    if (saw_float) return tt.Float();
    if (saw_double) return tt.Double();
    if (saw_char) return is_unsigned ? tt.UChar() : tt.Char();
    if (saw_short) return is_unsigned ? tt.UShort() : tt.Short();
    if (longs >= 2) return is_unsigned ? tt.ULongLong() : tt.LongLong();
    if (longs == 1) return is_unsigned ? tt.ULong() : tt.Long();
    return is_unsigned ? tt.UInt() : tt.Int();
  }

  void ParseVarDef(bool in_frame) {
    TypeRef base = ParseTypeBase();
    do {
      TypeRef t = base;
      while (Accept(Tok::kStar)) {
        t = builder_.Ptr(t);
      }
      std::string name = ExpectIdent();
      while (Accept(Tok::kLBracket)) {
        if (!At(Tok::kIntLit)) {
          Fail("expected an array dimension");
        }
        t = builder_.Arr(t, static_cast<size_t>(Cur().int_value));
        Advance();
        Expect(Tok::kRBracket);
      }
      if (!t->complete()) {
        Fail("variable '" + name + "' has incomplete type " + t->ToString());
      }
      // Frame locals may shadow globals and each other across frames; only
      // same-scope duplicates are errors. `&name` references resolve to
      // globals (the unqualified namespace).
      std::string scoped = in_frame ? current_frame_ + "::" + name : name;
      if (declared_.count(scoped) != 0) {
        Fail("duplicate variable '" + name + "'");
      }
      declared_.insert(scoped);
      Addr addr = in_frame ? builder_.FrameLocal(name, t) : builder_.Global(name, t);
      if (!in_frame) {
        addresses_[name] = addr;
      }
      if (Accept(Tok::kAssign)) {
        PendingInit p;
        p.addr = addr;
        p.type = t;
        p.init = ParseInit();
        pending_.push_back(std::move(p));
      }
    } while (Accept(Tok::kComma));
    Accept(Tok::kSemi);  // optional terminator
  }

  void ParseFrameDef() {
    Advance();  // 'frame'
    std::string fn = ExpectIdent();
    builder_.PushFrame(fn);
    current_frame_ = fn;
    Expect(Tok::kLBrace);
    while (!Accept(Tok::kRBrace)) {
      ParseVarDef(/*in_frame=*/true);
    }
    current_frame_.clear();
  }

  Init ParseInit() {
    Init init;
    init.offset = Cur().range.begin;
    if (Accept(Tok::kLBrace)) {
      init.kind = Init::Kind::kList;
      if (!Accept(Tok::kRBrace)) {
        do {
          init.list.push_back(ParseInit());
        } while (Accept(Tok::kComma));
        Expect(Tok::kRBrace);
      }
      return init;
    }
    if (Accept(Tok::kAmp)) {
      init.kind = Init::Kind::kAddrOf;
      init.s = ExpectIdent();
      return init;
    }
    bool neg = Accept(Tok::kMinus);
    if (At(Tok::kIntLit) || At(Tok::kCharLit)) {
      init.kind = Init::Kind::kInt;
      init.i = static_cast<int64_t>(Cur().int_value);
      if (neg) {
        init.i = -init.i;
      }
      Advance();
      return init;
    }
    if (At(Tok::kFloatLit)) {
      init.kind = Init::Kind::kFloat;
      init.f = neg ? -Cur().float_value : Cur().float_value;
      Advance();
      return init;
    }
    if (At(Tok::kStringLit)) {
      if (neg) {
        Fail("cannot negate a string");
      }
      init.kind = Init::Kind::kString;
      init.s = Cur().text;
      Advance();
      return init;
    }
    Fail("expected an initializer (number, 'c', \"string\", &name, or {...})");
  }

  // --- second pass: apply initializers ----------------------------------------

  [[noreturn]] void FailInit(const Init& init, const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < init.offset && i < source_->size(); ++i) {
      if ((*source_)[i] == '\n') {
        ++line;
      }
    }
    throw DuelError(ErrorKind::kParse,
                    StrPrintf("scenario line %zu: %s", line, message.c_str()));
  }

  void ApplyInits() {
    for (const PendingInit& p : pending_) {
      Apply(p.addr, p.type, p.init);
    }
  }

  void Apply(Addr addr, const TypeRef& type, const Init& init) {
    switch (type->kind()) {
      case TypeKind::kPointer:
        ApplyPointer(addr, type, init);
        return;
      case TypeKind::kArray:
        ApplyArray(addr, type, init);
        return;
      case TypeKind::kStruct:
      case TypeKind::kUnion:
        ApplyRecord(addr, type, init);
        return;
      default:
        ApplyScalar(addr, type, init);
        return;
    }
  }

  void ApplyScalar(Addr addr, const TypeRef& type, const Init& init) {
    if (init.kind == Init::Kind::kFloat || type->IsFloating()) {
      double v = init.kind == Init::Kind::kFloat ? init.f
                 : init.kind == Init::Kind::kInt ? static_cast<double>(init.i)
                                                 : 0;
      if (init.kind == Init::Kind::kString || init.kind == Init::Kind::kAddrOf ||
          init.kind == Init::Kind::kList) {
        FailInit(init, "bad initializer for " + type->ToString());
      }
      if (type->kind() == TypeKind::kFloat) {
        builder_.PokeFloat(addr, static_cast<float>(v));
      } else if (type->kind() == TypeKind::kDouble) {
        builder_.PokeDouble(addr, v);
      } else {
        builder_.PokeScalar(addr, type, static_cast<int64_t>(v));
      }
      return;
    }
    if (init.kind != Init::Kind::kInt) {
      FailInit(init, "bad initializer for " + type->ToString());
    }
    builder_.PokeScalar(addr, type, init.i);
  }

  void ApplyPointer(Addr addr, const TypeRef& type, const Init& init) {
    switch (init.kind) {
      case Init::Kind::kInt:
        builder_.PokePtr(addr, static_cast<Addr>(init.i));
        return;
      case Init::Kind::kString:
        if (type->target()->kind() != TypeKind::kChar) {
          FailInit(init, "string initializer needs a char *");
        }
        builder_.PokePtr(addr, builder_.String(init.s));
        return;
      case Init::Kind::kAddrOf: {
        auto it = addresses_.find(init.s);
        if (it == addresses_.end()) {
          FailInit(init, "unknown variable '&" + init.s + "'");
        }
        builder_.PokePtr(addr, it->second);
        return;
      }
      default:
        FailInit(init, "bad pointer initializer");
    }
  }

  void ApplyArray(Addr addr, const TypeRef& type, const Init& init) {
    const TypeRef& elem = type->target();
    if (init.kind == Init::Kind::kString && elem->kind() == TypeKind::kChar) {
      if (init.s.size() + 1 > type->array_count()) {
        FailInit(init, "string does not fit the char array");
      }
      for (size_t i = 0; i < init.s.size(); ++i) {
        builder_.PokeI8(addr + i, static_cast<int8_t>(init.s[i]));
      }
      builder_.PokeI8(addr + init.s.size(), 0);
      return;
    }
    if (init.kind != Init::Kind::kList) {
      FailInit(init, "array initializer needs {...}");
    }
    if (init.list.size() > type->array_count()) {
      FailInit(init, StrPrintf("too many initializers (%zu) for %s", init.list.size(),
                               type->ToString().c_str()));
    }
    for (size_t i = 0; i < init.list.size(); ++i) {
      Apply(addr + i * elem->size(), elem, init.list[i]);
    }
  }

  void ApplyRecord(Addr addr, const TypeRef& type, const Init& init) {
    if (init.kind != Init::Kind::kList) {
      FailInit(init, "record initializer needs {...}");
    }
    // Unions initialize their first member only.
    size_t max_members = type->kind() == TypeKind::kUnion ? 1 : type->members().size();
    if (init.list.size() > max_members) {
      FailInit(init, "too many initializers for " + type->ToString());
    }
    for (size_t i = 0; i < init.list.size(); ++i) {
      const target::Member& m = type->members()[i];
      if (m.is_bitfield) {
        FailInit(init, "bit-field members cannot be brace-initialized");
      }
      Apply(addr + m.offset, m.type, init.list[i]);
    }
  }

  target::TargetImage* image_;
  ImageBuilder builder_;
  const std::string* source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, Addr> addresses_;
  std::set<std::string> declared_;
  std::string current_frame_;
  std::vector<PendingInit> pending_;
};

}  // namespace

void LoadScenario(target::TargetImage& image, const std::string& source) {
  ScenarioParser(image, source).Run();
}

namespace {

// --- DumpScenario ------------------------------------------------------------

class ScenarioDumper {
 public:
  explicit ScenarioDumper(const target::TargetImage& image) : image_(&image) {
    // Map [addr, addr+size) of every named variable for &name round-trips.
    for (const target::Variable& v : image.symbols().globals()) {
      spans_.push_back({v.addr, v.addr + v.type->size(), v.name});
    }
    for (size_t f = 0; f < image.symbols().NumFrames(); ++f) {
      for (const target::Variable& v : image.symbols().GetFrame(f).locals) {
        spans_.push_back({v.addr, v.addr + v.type->size(), v.name});
      }
    }
  }

  std::string Run() {
    out_ += "## scenario snapshot (generated by DumpScenario)\n";
    EmitTypeDefs();
    for (const target::Variable& v : image_->symbols().globals()) {
      EmitVariable(v, /*indent=*/"");
    }
    // Frames were pushed innermost-first; emit outermost first so reloading
    // reproduces the same order (the last `frame` becomes innermost).
    for (size_t f = image_->symbols().NumFrames(); f-- > 0;) {
      const target::Frame& frame = image_->symbols().GetFrame(f);
      out_ += "frame " + frame.function + " {\n";
      for (const target::Variable& v : frame.locals) {
        EmitVariable(v, "  ");
      }
      out_ += "}\n";
    }
    return out_;
  }

 private:
  struct Span {
    Addr begin;
    Addr end;
    std::string name;
  };

  void EmitTypeDefs() {
    // Emit records in dependency order (by-value members first); pointers
    // may forward-reference.
    std::set<std::string> emitted;
    std::vector<std::pair<std::string, TypeRef>> records;
    for (const auto& [tag, t] : image_->types().enums()) {
      out_ += "enum " + tag + " { ";
      bool first = true;
      for (const target::Enumerator& e : t->enumerators()) {
        if (!first) {
          out_ += ", ";
        }
        first = false;
        out_ += e.name + " = " + StrPrintf("%lld", static_cast<long long>(e.value));
      }
      out_ += " }\n";
    }
    for (const auto& [tag, t] : image_->types().structs()) {
      if (t->complete()) {
        records.emplace_back(tag, t);
      }
    }
    for (const auto& [tag, t] : image_->types().unions()) {
      if (t->complete()) {
        records.emplace_back(tag, t);
      }
    }
    bool progress = true;
    while (!records.empty() && progress) {
      progress = false;
      for (auto it = records.begin(); it != records.end();) {
        bool ready = true;
        for (const target::Member& m : it->second->members()) {
          const target::Type* mt = m.type.get();
          if (mt->IsRecord() && emitted.count(mt->tag()) == 0) {
            ready = false;  // by-value member of a not-yet-emitted record
            break;
          }
        }
        if (ready) {
          EmitRecordDef(it->first, it->second);
          emitted.insert(it->first);
          it = records.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
  }

  void EmitRecordDef(const std::string& tag, const TypeRef& t) {
    out_ += (t->kind() == TypeKind::kUnion ? "union " : "struct ") + tag + " { ";
    for (const target::Member& m : t->members()) {
      out_ += m.type->Declare(m.name);
      if (m.is_bitfield) {
        out_ += StrPrintf(" : %u", m.bit_width);
      }
      out_ += "; ";
    }
    out_ += "}\n";
  }

  void EmitVariable(const target::Variable& v, const std::string& indent) {
    out_ += indent + v.type->Declare(v.name) + " = " + InitFor(v.type, v.addr) + "\n";
  }

  const Span* FindSpan(Addr p) const {
    for (const Span& s : spans_) {
      if (p == s.begin) {
        return &s;
      }
    }
    return nullptr;
  }

  std::string InitFor(const TypeRef& t, Addr addr) {
    const target::Memory& mem = image_->memory();
    switch (t->kind()) {
      case TypeKind::kPointer: {
        Addr p = mem.ReadScalar<Addr>(addr);
        if (p == 0) {
          return "0";
        }
        if (const Span* s = FindSpan(p)) {
          return "&" + s->name;
        }
        if (t->target()->kind() == TypeKind::kChar) {
          std::string str;
          bool trunc = false;
          if (mem.ReadCString(p, 256, &str, &trunc) && !trunc) {
            return "\"" + EscapeString(str) + "\"";
          }
        }
        return StrPrintf("%llu", static_cast<unsigned long long>(p));
      }
      case TypeKind::kArray: {
        const TypeRef& elem = t->target();
        if (elem->kind() == TypeKind::kChar) {
          std::string str;
          bool trunc = false;
          if (mem.ReadCString(addr, t->array_count(), &str, &trunc) && !trunc &&
              str.size() + 1 <= t->array_count()) {
            return "\"" + EscapeString(str) + "\"";
          }
        }
        std::string out = "{ ";
        for (size_t i = 0; i < t->array_count(); ++i) {
          if (i != 0) {
            out += ", ";
          }
          out += InitFor(elem, addr + i * elem->size());
        }
        return out + " }";
      }
      case TypeKind::kStruct: {
        std::string out = "{ ";
        bool first = true;
        for (const target::Member& m : t->members()) {
          if (m.is_bitfield) {
            return "{ }";  // bit-fields cannot be brace-initialized; skip all
          }
          if (!first) {
            out += ", ";
          }
          first = false;
          out += InitFor(m.type, addr + m.offset);
        }
        return out + " }";
      }
      case TypeKind::kUnion: {
        if (t->members().empty() || t->members()[0].is_bitfield) {
          return "{ }";
        }
        return "{ " + InitFor(t->members()[0].type, addr) + " }";
      }
      case TypeKind::kFloat: {
        float f = mem.ReadScalar<float>(addr);
        std::string text = FormatDouble(f);
        return text.find('.') == std::string::npos && text.find('e') == std::string::npos
                   ? text + ".0"
                   : text;
      }
      case TypeKind::kDouble: {
        double d = mem.ReadScalar<double>(addr);
        std::string text = FormatDouble(d);
        return text.find('.') == std::string::npos && text.find('e') == std::string::npos
                   ? text + ".0"
                   : text;
      }
      default: {
        // Integers (and enums) by width, sign-extended.
        uint64_t bits = 0;
        mem.Read(addr, &bits, t->size());
        if (t->IsSignedInteger() || t->kind() == TypeKind::kEnum) {
          int64_t v = static_cast<int64_t>(bits << (64 - 8 * t->size())) >>
                      (64 - 8 * t->size());
          return StrPrintf("%lld", static_cast<long long>(v));
        }
        return StrPrintf("%llu", static_cast<unsigned long long>(bits));
      }
    }
  }

  const target::TargetImage* image_;
  std::vector<Span> spans_;
  std::string out_;
};

}  // namespace

std::string DumpScenario(const target::TargetImage& image) {
  return ScenarioDumper(image).Run();
}

void LoadScenarioFile(target::TargetImage& image, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw DuelError(ErrorKind::kTarget, "cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LoadScenario(image, buffer.str());
}

}  // namespace duel::scenarios
