// Per-query execution governor: the cooperative resource-limit primitive
// behind the concurrent query service (src/serve/).
//
// A multi-tenant debugger cannot let one runaway query (`L-->next` over a
// cyclic list with cycle detection off, a `while(1)` expression, a scan of
// gigabytes of target memory) starve every other session. The governor is
// armed per query with a wall-clock deadline, an eval-step budget, and a
// target-bytes-read budget; the evaluation hot paths check in cooperatively
// (EvalContext::Step charges steps, dbg::MemoryAccess charges bytes) and
// the query dies with a DuelError(ErrorKind::kCancel) — a span-carrying
// diagnostic like any runtime error, with the values produced so far kept
// as partial results — without disturbing any other session.
//
// Thread model: Arm/Disarm and the Charge* checkpoints run on the thread
// executing the query; Cancel may be called from any thread (the service's
// cancel path, an admission-control reaper). Only the cancel flag crosses
// threads, so it is the only atomic.

#ifndef DUEL_SUPPORT_GOVERNOR_H_
#define DUEL_SUPPORT_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/support/error.h"

namespace duel {

// Per-query resource limits. Zero means "no limit" for each field; any()
// says whether arming the governor would do anything at all.
struct GovernorLimits {
  uint64_t deadline_ms = 0;      // wall-clock budget for one query
  uint64_t max_steps = 0;        // eval-step budget (generator resumptions)
  uint64_t max_read_bytes = 0;   // target bytes read through the access layer

  bool any() const { return deadline_ms != 0 || max_steps != 0 || max_read_bytes != 0; }
};

class ExecGovernor {
 public:
  // Arms the governor for one query: captures the limits, resets the usage
  // counters and the cancel flag, and stamps the deadline from the steady
  // clock. Runs on the executing thread before evaluation starts.
  void Arm(const GovernorLimits& limits);

  // Disarms after the query (armed() gates the checkpoints; a disarmed
  // governor charges nothing).
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // Requests cancellation of the in-flight query. Safe from any thread; the
  // executing thread observes it at its next step checkpoint. The first
  // caller's reason wins and is quoted in the diagnostic.
  void Cancel(const std::string& reason = "cancelled");

  bool cancel_requested() const { return cancelled_.load(std::memory_order_relaxed); }

  // --- cooperative checkpoints (executing thread only) ----------------------

  // One unit of evaluation fuel. Checks the cancel flag every call and the
  // wall clock every kClockCheckInterval steps; throws DuelError(kCancel)
  // when the step budget, the deadline, or a cancel request trips.
  void ChargeStep() {
    if (!armed_) {
      return;
    }
    steps_++;
    if (cancelled_.load(std::memory_order_relaxed)) {
      ThrowCancelled();
    }
    if (max_steps_ != 0 && steps_ > max_steps_) {
      ThrowStepBudget();
    }
    if (deadline_ns_ != 0 && steps_ % kClockCheckInterval == 0) {
      CheckDeadline();
    }
  }

  // Charges `n` bytes of target-read traffic; throws DuelError(kCancel) when
  // the byte budget trips. (Cancel/deadline are left to the step checkpoint —
  // every read is followed by more steps, and reads are the expensive path
  // already.)
  void ChargeReadBytes(uint64_t n) {
    if (!armed_) {
      return;
    }
    read_bytes_ += n;
    if (max_read_bytes_ != 0 && read_bytes_ > max_read_bytes_) {
      ThrowByteBudget();
    }
  }

  // Usage so far this arming (executing thread only; for stats surfaces).
  uint64_t steps_used() const { return steps_; }
  uint64_t read_bytes_used() const { return read_bytes_; }
  const GovernorLimits& limits() const { return limits_; }

  // How often ChargeStep consults the wall clock (a steady-clock read per
  // step would dominate cheap steps; 1024 steps of slack is microseconds).
  static constexpr uint64_t kClockCheckInterval = 1024;

 private:
  void CheckDeadline();
  // Each trip has a deterministic message (budgets quote the configured
  // limit, never elapsed usage) so a governed failure is byte-identical
  // across runs — the serve suite asserts this.
  [[noreturn]] void ThrowCancelled();
  [[noreturn]] void ThrowStepBudget();
  [[noreturn]] void ThrowByteBudget();
  [[noreturn]] void ThrowDeadline();

  bool armed_ = false;
  GovernorLimits limits_;
  uint64_t deadline_ns_ = 0;  // absolute steady-clock deadline (0 = none)
  uint64_t max_steps_ = 0;
  uint64_t max_read_bytes_ = 0;
  uint64_t steps_ = 0;
  uint64_t read_bytes_ = 0;
  std::atomic<bool> cancelled_{false};
  std::string cancel_reason_;
};

}  // namespace duel

#endif  // DUEL_SUPPORT_GOVERNOR_H_
