// Metrics layer: histograms, per-narrow-call backend instrumentation, and
// the per-query stats snapshot that grows BackendCounters/EvalCounters into
// a full observability record.
//
// The paper's narrow DUEL↔debugger interface is the natural metering
// boundary — every target byte, symbol lookup, and target call crosses it.
// BackendInstr sits inside DebuggerBackend and, when enabled, records a
// latency histogram per narrow-call kind plus read/write size histograms.
// Session::Query assembles a QueryStats from the counter deltas, the phase
// timings, and (optionally) the per-AST-node profile.

#ifndef DUEL_SUPPORT_OBS_METRICS_H_
#define DUEL_SUPPORT_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/support/counters.h"
#include "src/support/obs/trace.h"

namespace duel::obs {

// Power-of-two bucketed histogram (bucket i counts values in [2^i, 2^(i+1)),
// bucket 0 counts zeros and ones). Good enough for latency/bytes shapes at
// a fixed tiny footprint.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t v);
  void Reset() { *this = Histogram(); }
  void MergeFrom(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Approximate percentile (upper bound of the bucket holding rank p).
  uint64_t Percentile(double p) const;

  // "count=12 sum=4096 min=16 mean=341 p50<=512 p99<=1024 max=900"
  std::string Summary() const;

  // {"count":12,"sum":4096,"min":16,"mean":341,"p50":512,"p99":1024,"max":900}
  std::string ToJson() const;

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

// The narrow-interface call kinds (the paper's 7 functions; the symbol/type
// lookups and the frame miscellany are each metered as one kind).
enum class NarrowCall {
  kGetBytes = 0,
  kPutBytes,
  kValidBytes,
  kAllocSpace,
  kCallFunc,
  kSymbolLookup,  // GetTargetVariable / GetTargetFunction / GetTargetEnumerator
  kTypeLookup,    // GetTargetTypedef / Struct / Union / Enum
  kFrames,        // NumFrames / FrameFunction / FrameLocals
  kReadVector,    // ReadTargetRanges (remote: one qDuelReadV wire packet)
  kNumKinds,
};

constexpr size_t kNumNarrowCalls = static_cast<size_t>(NarrowCall::kNumKinds);

const char* NarrowCallName(NarrowCall c);

// Per-backend instrumentation: call counts always; latency and byte-size
// histograms (and trace spans) only while enabled. Lives in DebuggerBackend
// next to BackendCounters.
class BackendInstr {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Tracer to emit one span per narrow call into (may be null / disabled).
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  void ResetHistograms();

  void RecordCall(NarrowCall c, uint64_t dur_ns) {
    calls_[static_cast<size_t>(c)]++;
    latency_ns_[static_cast<size_t>(c)].Record(dur_ns);
  }
  void CountCall(NarrowCall c) { calls_[static_cast<size_t>(c)]++; }
  void RecordReadBytes(uint64_t n) { read_bytes_.Record(n); }
  void RecordWriteBytes(uint64_t n) { write_bytes_.Record(n); }

  uint64_t calls(NarrowCall c) const { return calls_[static_cast<size_t>(c)]; }
  const Histogram& latency_ns(NarrowCall c) const {
    return latency_ns_[static_cast<size_t>(c)];
  }
  const Histogram& read_bytes() const { return read_bytes_; }
  const Histogram& write_bytes() const { return write_bytes_; }

 private:
  bool enabled_ = false;
  Tracer* tracer_ = nullptr;
  std::array<uint64_t, kNumNarrowCalls> calls_{};
  std::array<Histogram, kNumNarrowCalls> latency_ns_{};
  Histogram read_bytes_;
  Histogram write_bytes_;
};

// RAII meter for one narrow-interface call: bumps the call count, and — only
// while the owning BackendInstr is enabled — times the call and emits a
// trace span. Construction on the disabled path is a branch and an add.
class CallTimer {
 public:
  CallTimer(BackendInstr& instr, NarrowCall call)
      : instr_(&instr), call_(call), start_ns_(instr.enabled() ? NowNs() : 0) {
    if (start_ns_ == 0) {
      instr_->CountCall(call_);
      instr_ = nullptr;
    }
  }
  ~CallTimer() {
    if (instr_ != nullptr) {
      uint64_t dur = NowNs() - start_ns_;
      instr_->RecordCall(call_, dur);
      if (Tracer* t = instr_->tracer(); t != nullptr && t->enabled()) {
        uint64_t token = t->BeginSpan(std::string("backend.") + NarrowCallName(call_));
        t->EndSpan(token);
      }
    }
  }
  CallTimer(const CallTimer&) = delete;
  CallTimer& operator=(const CallTimer&) = delete;

 private:
  BackendInstr* instr_;
  NarrowCall call_;
  uint64_t start_ns_;
};

// Everything observed about one query: phase timings, counter deltas,
// narrow-call metering, and (optionally) the per-node profile.
struct QueryStats {
  std::string query;
  std::string engine;

  // Per-stage timings of the staged pipeline (lex → parse → analyze →
  // execute). On a plan-cache hit the three build stages report 0 — they
  // did not run; the plan was replayed.
  uint64_t lex_ns = 0;
  uint64_t parse_ns = 0;
  uint64_t sema_ns = 0;
  uint64_t check_ns = 0;
  uint64_t eval_ns = 0;
  uint64_t total_ns = 0;

  // Check-stage diagnostics for this query (counts come from the plan's
  // cached verdict, so they are reported on warm hits too).
  uint64_t diags_errors = 0;
  uint64_t diags_warnings = 0;

  // Plan-cache outcome for this query: whether a cached CompiledQuery was
  // reused, plus the session cache's counter delta.
  bool plan_hit = false;
  PlanCacheCounters plan;

  uint64_t values = 0;

  EvalCounters eval;        // delta for this query
  BackendCounters backend;  // delta for this query
  CacheCounters cache;      // access-layer delta for this query

  std::array<uint64_t, kNumNarrowCalls> call_counts{};
  std::array<Histogram, kNumNarrowCalls> call_ns{};  // filled when instr enabled
  Histogram read_bytes;
  Histogram write_bytes;

  // Per-AST-node profile (filled when profiling was on). `excerpt` is the
  // node's slice of the query text.
  struct NodeProfile {
    int node_id = -1;
    int depth = 0;
    std::string op;
    std::string excerpt;
    uint64_t steps = 0;
    uint64_t time_ns = 0;
  };
  std::vector<NodeProfile> nodes;
  uint64_t profiled_steps = 0;  // sum over nodes (+ engine overhead bucket)

  // Human-readable stats block (the REPL's `stats` output).
  std::vector<std::string> Render() const;

  // Annotated-expression heat view (the REPL's `profile` output).
  std::vector<std::string> RenderProfile() const;

  // Single-line JSON object (machine-readable; benches emit this).
  std::string ToJson() const;
};

// Captures the counter deltas `after - before` field by field.
BackendCounters CountersDelta(const BackendCounters& before, const BackendCounters& after);
EvalCounters CountersDelta(const EvalCounters& before, const EvalCounters& after);
CacheCounters CountersDelta(const CacheCounters& before, const CacheCounters& after);
PlanCacheCounters CountersDelta(const PlanCacheCounters& before, const PlanCacheCounters& after);

}  // namespace duel::obs

#endif  // DUEL_SUPPORT_OBS_METRICS_H_
