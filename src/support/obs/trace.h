// RAII span tracing into a bounded ring buffer.
//
// A Tracer records completed spans (name, detail, start, duration, nesting)
// into a fixed-capacity ring; when the ring is full the oldest spans are
// dropped and counted. Spans nest via an explicit stack, so the trace of a
// query reads as parse → prebind → eval → backend.* leaves. The buffer can
// be exported as JSONL (one object per line) for offline tooling.
//
// Tracing is off by default and every hot-path check is a single branch on
// `enabled()`; a disabled tracer performs no clock reads and no allocation.

#ifndef DUEL_SUPPORT_OBS_TRACE_H_
#define DUEL_SUPPORT_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace duel::obs {

// Monotonic nanoseconds (steady clock).
uint64_t NowNs();

struct TraceEvent {
  uint64_t id = 0;      // 1-based span id, unique within a Tracer
  uint64_t parent = 0;  // 0 = root
  int depth = 0;
  std::string name;
  std::string detail;
  uint64_t start_ns = 0;  // since tracer construction / Clear()
  uint64_t dur_ns = 0;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Drops all recorded spans and re-bases the epoch.
  void Clear();

  // Manual span API; prefer the RAII Span below. BeginSpan returns a token
  // (0 when disabled) to pass to EndSpan.
  uint64_t BeginSpan(std::string name, std::string detail = std::string());
  void EndSpan(uint64_t token);

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  // Completed spans, oldest first.
  std::vector<TraceEvent> Events() const;

  // One JSON object per line:
  //   {"id":3,"parent":1,"depth":1,"name":"eval","detail":"","start_ns":10,"dur_ns":42}
  void ExportJsonl(std::ostream& os) const;

 private:
  struct Active {
    uint64_t id;
    std::string name;
    std::string detail;
    uint64_t start_ns;
  };

  bool enabled_ = false;
  size_t capacity_;
  uint64_t epoch_ns_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  size_t head_ = 0;  // insertion point once the ring has wrapped
  std::vector<TraceEvent> events_;
  std::vector<Active> stack_;
};

// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

// RAII span: records on destruction. A null tracer (or a disabled one) makes
// construction and destruction near-free.
class Span {
 public:
  Span(Tracer* tracer, const char* name, std::string detail = std::string())
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        token_(tracer_ != nullptr ? tracer_->BeginSpan(name, std::move(detail)) : 0) {}
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(token_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  uint64_t token_;
};

}  // namespace duel::obs

#endif  // DUEL_SUPPORT_OBS_TRACE_H_
