#include "src/support/obs/metrics.h"

#include <algorithm>

#include "src/support/strings.h"

namespace duel::obs {

namespace {

size_t BucketOf(uint64_t v) {
  size_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

std::string Ns(uint64_t ns) {
  if (ns >= 1'000'000'000) {
    return StrPrintf("%.2fs", static_cast<double>(ns) / 1e9);
  }
  if (ns >= 1'000'000) {
    return StrPrintf("%.2fms", static_cast<double>(ns) / 1e6);
  }
  if (ns >= 1'000) {
    return StrPrintf("%.1fus", static_cast<double>(ns) / 1e3);
  }
  return StrPrintf("%lluns", static_cast<unsigned long long>(ns));
}

}  // namespace

void Histogram::Record(uint64_t v) {
  count_++;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  buckets_[BucketOf(v)]++;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint64_t upper = i == 0 ? 1 : i >= 63 ? UINT64_MAX : (1ull << (i + 1));
      return std::min(upper, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  if (count_ == 0) {
    return "count=0";
  }
  return StrPrintf("count=%llu sum=%llu min=%llu mean=%llu p50<=%llu p99<=%llu max=%llu",
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(sum_),
                   static_cast<unsigned long long>(min()),
                   static_cast<unsigned long long>(mean()),
                   static_cast<unsigned long long>(Percentile(0.50)),
                   static_cast<unsigned long long>(Percentile(0.99)),
                   static_cast<unsigned long long>(max_));
}

std::string Histogram::ToJson() const {
  return StrPrintf(
      "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"mean\":%llu,\"p50\":%llu,"
      "\"p99\":%llu,\"max\":%llu}",
      static_cast<unsigned long long>(count_), static_cast<unsigned long long>(sum_),
      static_cast<unsigned long long>(min()), static_cast<unsigned long long>(mean()),
      static_cast<unsigned long long>(Percentile(0.50)),
      static_cast<unsigned long long>(Percentile(0.99)),
      static_cast<unsigned long long>(max_));
}

const char* NarrowCallName(NarrowCall c) {
  switch (c) {
    case NarrowCall::kGetBytes: return "get_target_bytes";
    case NarrowCall::kPutBytes: return "put_target_bytes";
    case NarrowCall::kValidBytes: return "valid_target_bytes";
    case NarrowCall::kAllocSpace: return "alloc_target_space";
    case NarrowCall::kCallFunc: return "call_target_func";
    case NarrowCall::kSymbolLookup: return "get_target_symbol";
    case NarrowCall::kTypeLookup: return "get_target_type";
    case NarrowCall::kFrames: return "frames";
    case NarrowCall::kReadVector: return "read_target_ranges";
    case NarrowCall::kNumKinds: break;
  }
  return "?";
}

void BackendInstr::ResetHistograms() {
  for (Histogram& h : latency_ns_) {
    h.Reset();
  }
  read_bytes_.Reset();
  write_bytes_.Reset();
}

BackendCounters CountersDelta(const BackendCounters& before, const BackendCounters& after) {
  BackendCounters d;
  d.bytes_read = after.bytes_read - before.bytes_read;
  d.bytes_written = after.bytes_written - before.bytes_written;
  d.read_calls = after.read_calls - before.read_calls;
  d.write_calls = after.write_calls - before.write_calls;
  d.vectored_reads = after.vectored_reads - before.vectored_reads;
  d.symbol_lookups = after.symbol_lookups - before.symbol_lookups;
  d.type_lookups = after.type_lookups - before.type_lookups;
  d.target_calls = after.target_calls - before.target_calls;
  d.allocations = after.allocations - before.allocations;
  return d;
}

EvalCounters CountersDelta(const EvalCounters& before, const EvalCounters& after) {
  EvalCounters d;
  d.eval_steps = after.eval_steps - before.eval_steps;
  d.values_produced = after.values_produced - before.values_produced;
  d.applies = after.applies - before.applies;
  d.name_lookups = after.name_lookups - before.name_lookups;
  d.symbolic_builds = after.symbolic_builds - before.symbolic_builds;
  return d;
}

CacheCounters CountersDelta(const CacheCounters& before, const CacheCounters& after) {
  CacheCounters d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.passthroughs = after.passthroughs - before.passthroughs;
  d.bytes_from_cache = after.bytes_from_cache - before.bytes_from_cache;
  d.bytes_fetched = after.bytes_fetched - before.bytes_fetched;
  d.block_fetches = after.block_fetches - before.block_fetches;
  d.invalidations = after.invalidations - before.invalidations;
  return d;
}

PlanCacheCounters CountersDelta(const PlanCacheCounters& before, const PlanCacheCounters& after) {
  PlanCacheCounters d;
  d.lookups = after.lookups - before.lookups;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.invalidations = after.invalidations - before.invalidations;
  d.evictions = after.evictions - before.evictions;
  return d;
}

std::vector<std::string> QueryStats::Render() const {
  std::vector<std::string> out;
  out.push_back(StrPrintf("query: %s  [engine=%s]", query.c_str(), engine.c_str()));
  out.push_back(StrPrintf("phases: lex=%s parse=%s sema=%s check=%s eval=%s total=%s  [plan %s]",
                          Ns(lex_ns).c_str(), Ns(parse_ns).c_str(), Ns(sema_ns).c_str(),
                          Ns(check_ns).c_str(), Ns(eval_ns).c_str(), Ns(total_ns).c_str(),
                          plan_hit ? "cached" : "built"));
  if (diags_errors + diags_warnings > 0) {
    out.push_back(StrPrintf("diag: errors=%llu warnings=%llu",
                            static_cast<unsigned long long>(diags_errors),
                            static_cast<unsigned long long>(diags_warnings)));
  }
  if (plan.lookups > 0) {
    out.push_back(StrPrintf(
        "plan cache: lookups=%llu hits=%llu misses=%llu invalidations=%llu evictions=%llu",
        static_cast<unsigned long long>(plan.lookups),
        static_cast<unsigned long long>(plan.hits),
        static_cast<unsigned long long>(plan.misses),
        static_cast<unsigned long long>(plan.invalidations),
        static_cast<unsigned long long>(plan.evictions)));
  }
  out.push_back(StrPrintf(
      "eval: steps=%llu values=%llu applies=%llu name_lookups=%llu sym_builds=%llu",
      static_cast<unsigned long long>(eval.eval_steps),
      static_cast<unsigned long long>(eval.values_produced),
      static_cast<unsigned long long>(eval.applies),
      static_cast<unsigned long long>(eval.name_lookups),
      static_cast<unsigned long long>(eval.symbolic_builds)));
  out.push_back(StrPrintf(
      "backend: reads=%llu (%llu bytes) vectored=%llu writes=%llu (%llu bytes) "
      "lookups=%llu type_lookups=%llu calls=%llu allocs=%llu",
      static_cast<unsigned long long>(backend.read_calls),
      static_cast<unsigned long long>(backend.bytes_read),
      static_cast<unsigned long long>(backend.vectored_reads),
      static_cast<unsigned long long>(backend.write_calls),
      static_cast<unsigned long long>(backend.bytes_written),
      static_cast<unsigned long long>(backend.symbol_lookups),
      static_cast<unsigned long long>(backend.type_lookups),
      static_cast<unsigned long long>(backend.target_calls),
      static_cast<unsigned long long>(backend.allocations)));
  if (cache.hits + cache.misses + cache.passthroughs > 0) {
    uint64_t served = cache.bytes_from_cache;
    out.push_back(StrPrintf(
        "cache: hits=%llu misses=%llu passthrough=%llu blocks=%llu "
        "bytes_from_cache=%llu bytes_fetched=%llu saved=%lld",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.passthroughs),
        static_cast<unsigned long long>(cache.block_fetches),
        static_cast<unsigned long long>(served),
        static_cast<unsigned long long>(cache.bytes_fetched),
        static_cast<long long>(served) - static_cast<long long>(cache.bytes_fetched)));
  }
  for (size_t i = 0; i < kNumNarrowCalls; ++i) {
    if (call_counts[i] == 0) {
      continue;
    }
    std::string line = StrPrintf("  %-20s calls=%llu", NarrowCallName(static_cast<NarrowCall>(i)),
                                 static_cast<unsigned long long>(call_counts[i]));
    if (call_ns[i].count() > 0) {
      line += StrPrintf("  lat(ns): mean=%llu p99<=%llu max=%llu",
                        static_cast<unsigned long long>(call_ns[i].mean()),
                        static_cast<unsigned long long>(call_ns[i].Percentile(0.99)),
                        static_cast<unsigned long long>(call_ns[i].max()));
    }
    out.push_back(line);
  }
  if (read_bytes.count() > 0) {
    out.push_back("  read sizes:  " + read_bytes.Summary());
  }
  if (write_bytes.count() > 0) {
    out.push_back("  write sizes: " + write_bytes.Summary());
  }
  return out;
}

std::vector<std::string> QueryStats::RenderProfile() const {
  std::vector<std::string> out;
  if (nodes.empty()) {
    out.push_back("(no profile collected; run with profiling enabled)");
    return out;
  }
  out.push_back(StrPrintf("per-node profile for: %s  (steps=%llu)", query.c_str(),
                          static_cast<unsigned long long>(profiled_steps)));
  out.push_back("   steps     time   time%  node");
  uint64_t total_time = 0;
  for (const NodeProfile& n : nodes) {
    total_time += n.time_ns;
  }
  for (const NodeProfile& n : nodes) {
    double pct = total_time == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(n.time_ns) / static_cast<double>(total_time);
    std::string label(static_cast<size_t>(n.depth) * 2, ' ');
    label += n.op;
    if (!n.excerpt.empty()) {
      label += "  `" + n.excerpt + "`";
    }
    out.push_back(StrPrintf("%8llu %8s  %5.1f%%  %s",
                            static_cast<unsigned long long>(n.steps), Ns(n.time_ns).c_str(),
                            pct, label.c_str()));
  }
  return out;
}

std::string QueryStats::ToJson() const {
  std::string out = "{";
  out += "\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"engine\":\"" + JsonEscape(engine) + "\"";
  out += StrPrintf(
      ",\"lex_ns\":%llu,\"parse_ns\":%llu,\"sema_ns\":%llu,\"check_ns\":%llu,\"eval_ns\":%llu,"
      "\"total_ns\":%llu",
      static_cast<unsigned long long>(lex_ns), static_cast<unsigned long long>(parse_ns),
      static_cast<unsigned long long>(sema_ns), static_cast<unsigned long long>(check_ns),
      static_cast<unsigned long long>(eval_ns), static_cast<unsigned long long>(total_ns));
  out += StrPrintf(",\"plan_hit\":%s", plan_hit ? "true" : "false");
  out += StrPrintf(",\"diag\":{\"errors\":%llu,\"warnings\":%llu}",
                   static_cast<unsigned long long>(diags_errors),
                   static_cast<unsigned long long>(diags_warnings));
  out += StrPrintf(
      ",\"plan\":{\"lookups\":%llu,\"hits\":%llu,\"misses\":%llu,\"invalidations\":%llu,"
      "\"evictions\":%llu}",
      static_cast<unsigned long long>(plan.lookups), static_cast<unsigned long long>(plan.hits),
      static_cast<unsigned long long>(plan.misses),
      static_cast<unsigned long long>(plan.invalidations),
      static_cast<unsigned long long>(plan.evictions));
  out += StrPrintf(",\"values\":%llu", static_cast<unsigned long long>(values));
  out += StrPrintf(
      ",\"eval\":{\"steps\":%llu,\"values\":%llu,\"applies\":%llu,\"name_lookups\":%llu,"
      "\"symbolic_builds\":%llu}",
      static_cast<unsigned long long>(eval.eval_steps),
      static_cast<unsigned long long>(eval.values_produced),
      static_cast<unsigned long long>(eval.applies),
      static_cast<unsigned long long>(eval.name_lookups),
      static_cast<unsigned long long>(eval.symbolic_builds));
  out += StrPrintf(
      ",\"backend\":{\"read_calls\":%llu,\"bytes_read\":%llu,\"write_calls\":%llu,"
      "\"bytes_written\":%llu,\"symbol_lookups\":%llu,\"type_lookups\":%llu,"
      "\"target_calls\":%llu,\"allocations\":%llu,\"vectored_reads\":%llu}",
      static_cast<unsigned long long>(backend.read_calls),
      static_cast<unsigned long long>(backend.bytes_read),
      static_cast<unsigned long long>(backend.write_calls),
      static_cast<unsigned long long>(backend.bytes_written),
      static_cast<unsigned long long>(backend.symbol_lookups),
      static_cast<unsigned long long>(backend.type_lookups),
      static_cast<unsigned long long>(backend.target_calls),
      static_cast<unsigned long long>(backend.allocations),
      static_cast<unsigned long long>(backend.vectored_reads));
  out += StrPrintf(
      ",\"cache\":{\"hits\":%llu,\"misses\":%llu,\"passthroughs\":%llu,"
      "\"bytes_from_cache\":%llu,\"bytes_fetched\":%llu,\"block_fetches\":%llu,"
      "\"invalidations\":%llu}",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.passthroughs),
      static_cast<unsigned long long>(cache.bytes_from_cache),
      static_cast<unsigned long long>(cache.bytes_fetched),
      static_cast<unsigned long long>(cache.block_fetches),
      static_cast<unsigned long long>(cache.invalidations));
  out += ",\"narrow_calls\":{";
  bool first = true;
  for (size_t i = 0; i < kNumNarrowCalls; ++i) {
    if (call_counts[i] == 0) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    out += StrPrintf("\"%s\":{\"calls\":%llu,\"latency_ns\":%s}",
                     NarrowCallName(static_cast<NarrowCall>(i)),
                     static_cast<unsigned long long>(call_counts[i]),
                     call_ns[i].ToJson().c_str());
  }
  out += "}";
  if (read_bytes.count() > 0) {
    out += ",\"read_bytes\":" + read_bytes.ToJson();
  }
  if (write_bytes.count() > 0) {
    out += ",\"write_bytes\":" + write_bytes.ToJson();
  }
  if (!nodes.empty()) {
    out += StrPrintf(",\"profiled_steps\":%llu,\"profile\":[",
                     static_cast<unsigned long long>(profiled_steps));
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += StrPrintf(
          "{\"node\":%d,\"op\":\"%s\",\"excerpt\":\"%s\",\"steps\":%llu,\"time_ns\":%llu}",
          nodes[i].node_id, JsonEscape(nodes[i].op).c_str(),
          JsonEscape(nodes[i].excerpt).c_str(),
          static_cast<unsigned long long>(nodes[i].steps),
          static_cast<unsigned long long>(nodes[i].time_ns));
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace duel::obs
