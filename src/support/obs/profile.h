// Per-AST-node profiler.
//
// Both eval engines call EvalContext::Step(node_id) once per generator
// resumption; when a profiler is attached, each step is attributed to the
// operator node being resumed, and the wall-clock time between consecutive
// steps is attributed to the node of the step that initiated the interval.
// The sum of per-node steps therefore equals the EvalCounters::eval_steps
// delta for the query exactly; times are an approximation of self time.
//
// The profiler is engine-agnostic: it indexes by the dense `Node::id` and
// knows nothing about the AST. The session renders the heat view by pairing
// these slots with the parsed tree.

#ifndef DUEL_SUPPORT_OBS_PROFILE_H_
#define DUEL_SUPPORT_OBS_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/support/obs/trace.h"

namespace duel::obs {

class NodeProfiler {
 public:
  struct Slot {
    uint64_t steps = 0;
    uint64_t time_ns = 0;
  };

  // Arms the profiler for a tree of `num_nodes` nodes (ids 0..num_nodes-1).
  // One extra slot absorbs steps with no node attribution (id < 0).
  void Begin(int num_nodes) {
    slots_.assign(static_cast<size_t>(num_nodes) + 1, Slot{});
    active_ = true;
    last_slot_ = -1;
    last_ns_ = NowNs();
  }

  // Flushes the trailing time interval; the profile is then stable.
  void End() {
    Flush(NowNs());
    active_ = false;
    last_slot_ = -1;
  }

  bool active() const { return active_; }

  void OnStep(int node_id) {
    if (!active_ || slots_.empty()) {
      return;
    }
    size_t slot = node_id >= 0 && node_id + 1 < static_cast<int>(slots_.size())
                      ? static_cast<size_t>(node_id)
                      : slots_.size() - 1;
    uint64_t now = NowNs();
    Flush(now);
    slots_[slot].steps++;
    last_slot_ = static_cast<int>(slot);
    last_ns_ = now;
  }

  const std::vector<Slot>& slots() const { return slots_; }

  uint64_t total_steps() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.steps;
    }
    return total;
  }

 private:
  void Flush(uint64_t now) {
    if (last_slot_ >= 0 && static_cast<size_t>(last_slot_) < slots_.size()) {
      slots_[static_cast<size_t>(last_slot_)].time_ns += now - last_ns_;
    }
  }

  std::vector<Slot> slots_;
  bool active_ = false;
  int last_slot_ = -1;
  uint64_t last_ns_ = 0;
};

}  // namespace duel::obs

#endif  // DUEL_SUPPORT_OBS_PROFILE_H_
