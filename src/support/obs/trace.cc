#include "src/support/obs/trace.h"

#include <chrono>

#include "src/support/strings.h"

namespace duel::obs {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(NowNs()) {}

void Tracer::Clear() {
  events_.clear();
  stack_.clear();
  head_ = 0;
  dropped_ = 0;
  next_id_ = 1;
  epoch_ns_ = NowNs();
}

uint64_t Tracer::BeginSpan(std::string name, std::string detail) {
  if (!enabled_) {
    return 0;
  }
  Active a;
  a.id = next_id_++;
  a.name = std::move(name);
  a.detail = std::move(detail);
  a.start_ns = NowNs() - epoch_ns_;
  stack_.push_back(std::move(a));
  return stack_.back().id;
}

void Tracer::EndSpan(uint64_t token) {
  if (token == 0 || stack_.empty()) {
    return;
  }
  // Unwind to the span with this token; exceptions may have skipped EndSpan
  // for deeper spans, which are closed (with the same end time) on the way.
  while (!stack_.empty()) {
    Active a = std::move(stack_.back());
    stack_.pop_back();
    uint64_t closed_id = a.id;
    TraceEvent ev;
    ev.id = a.id;
    ev.parent = stack_.empty() ? 0 : stack_.back().id;
    ev.depth = static_cast<int>(stack_.size());
    ev.name = std::move(a.name);
    ev.detail = std::move(a.detail);
    ev.start_ns = a.start_ns;
    ev.dur_ns = NowNs() - epoch_ns_ - a.start_ns;
    if (events_.size() < capacity_) {
      events_.push_back(std::move(ev));
    } else {
      dropped_++;
      events_[head_] = std::move(ev);
      head_ = (head_ + 1) % capacity_;
    }
    if (closed_id == token) {
      break;
    }
  }
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void Tracer::ExportJsonl(std::ostream& os) const {
  for (const TraceEvent& ev : Events()) {
    os << "{\"id\":" << ev.id << ",\"parent\":" << ev.parent << ",\"depth\":" << ev.depth
       << ",\"name\":\"" << JsonEscape(ev.name) << "\",\"detail\":\"" << JsonEscape(ev.detail)
       << "\",\"start_ns\":" << ev.start_ns << ",\"dur_ns\":" << ev.dur_ns << "}\n";
  }
}

}  // namespace duel::obs
