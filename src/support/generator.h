// A minimal C++20 coroutine generator, used by the coroutine evaluation
// engine (Engine B). GCC 12 has no std::generator, so we provide our own.
//
// Exceptions thrown inside the coroutine are re-thrown from Next()/iteration,
// which the DUEL session layer relies on for error reporting.

#ifndef DUEL_SUPPORT_GENERATOR_H_
#define DUEL_SUPPORT_GENERATOR_H_

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace duel {

template <typename T>
class Generator {
 public:
  struct promise_type {
    std::optional<T> current;
    std::exception_ptr exception;

    Generator get_return_object() {
      return Generator(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(T value) {
      current = std::move(value);
      return {};
    }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Generator() = default;
  explicit Generator(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Generator(Generator&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Generator& operator=(Generator&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;
  ~Generator() { Destroy(); }

  // Produces the next value, or nullopt when the sequence is exhausted.
  std::optional<T> Next() {
    if (!handle_ || handle_.done()) {
      return std::nullopt;
    }
    handle_.promise().current.reset();
    handle_.resume();
    if (handle_.promise().exception) {
      std::exception_ptr ex = handle_.promise().exception;
      handle_.promise().exception = nullptr;
      std::rethrow_exception(ex);
    }
    if (handle_.done()) {
      return std::nullopt;
    }
    return std::move(handle_.promise().current);
  }

  bool valid() const { return static_cast<bool>(handle_); }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace duel

#endif  // DUEL_SUPPORT_GENERATOR_H_
