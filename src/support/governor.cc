#include "src/support/governor.h"

#include <mutex>

#include "src/support/obs/trace.h"
#include "src/support/strings.h"

namespace duel {

namespace {
// Guards cancel_reason_ between Cancel (any thread) and the throw on the
// executing thread. One global mutex is fine: both sides are cold paths
// (each governor trips at most once per arming).
std::mutex g_cancel_reason_mu;
}  // namespace

void ExecGovernor::Arm(const GovernorLimits& limits) {
  limits_ = limits;
  max_steps_ = limits.max_steps;
  max_read_bytes_ = limits.max_read_bytes;
  deadline_ns_ = limits.deadline_ms == 0 ? 0 : obs::NowNs() + limits.deadline_ms * 1'000'000;
  steps_ = 0;
  read_bytes_ = 0;
  {
    // Flag and reason must change together: if a racing Cancel lands between
    // them, the flag could be cleared while its reason survives (or vice
    // versa), and the stale reason would be reported by a later, unrelated
    // trip via Cancel's first-writer-wins gate.
    std::lock_guard<std::mutex> lock(g_cancel_reason_mu);
    cancel_reason_.clear();
    cancelled_.store(false, std::memory_order_relaxed);
  }
  armed_ = true;
}

void ExecGovernor::Cancel(const std::string& reason) {
  std::lock_guard<std::mutex> lock(g_cancel_reason_mu);
  if (cancel_reason_.empty()) {
    cancel_reason_ = reason;
  }
  cancelled_.store(true, std::memory_order_release);
}

void ExecGovernor::CheckDeadline() {
  if (obs::NowNs() > deadline_ns_) {
    ThrowDeadline();
  }
}

void ExecGovernor::ThrowCancelled() {
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(g_cancel_reason_mu);
    reason = cancel_reason_.empty() ? "cancelled" : cancel_reason_;
  }
  // FormatError renders "query cancelled: <what>", so messages here carry
  // only the trip cause.
  throw DuelError(ErrorKind::kCancel, reason);
}

void ExecGovernor::ThrowStepBudget() {
  throw DuelError(ErrorKind::kCancel,
                  StrPrintf("exceeded the step budget (%llu steps)",
                            static_cast<unsigned long long>(max_steps_)));
}

void ExecGovernor::ThrowByteBudget() {
  throw DuelError(ErrorKind::kCancel,
                  StrPrintf("exceeded the target-read budget (%llu bytes)",
                            static_cast<unsigned long long>(max_read_bytes_)));
}

void ExecGovernor::ThrowDeadline() {
  throw DuelError(ErrorKind::kCancel,
                  StrPrintf("exceeded the deadline (%llu ms)",
                            static_cast<unsigned long long>(limits_.deadline_ms)));
}

}  // namespace duel
