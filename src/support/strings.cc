#include "src/support/strings.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace duel {

std::string StrVPrintf(const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);
  if (n <= 0) {
    return std::string();
  }
  std::string out(static_cast<size_t>(n), '\0');
  vsnprintf(out.data(), out.size() + 1, fmt, ap);
  return out;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = StrVPrintf(fmt, ap);
  va_end(ap);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string EscapeChar(char c) {
  switch (c) {
    case '\n':
      return "\\n";
    case '\t':
      return "\\t";
    case '\r':
      return "\\r";
    case '\0':
      return "\\0";
    case '\a':
      return "\\a";
    case '\b':
      return "\\b";
    case '\f':
      return "\\f";
    case '\v':
      return "\\v";
    case '\\':
      return "\\\\";
    case '\'':
      return "\\'";
    case '"':
      return "\\\"";
    default:
      break;
  }
  unsigned char uc = static_cast<unsigned char>(c);
  if (uc < 0x20 || uc >= 0x7f) {
    return StrPrintf("\\%03o", uc);
  }
  return std::string(1, c);
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\'') {
      out.push_back('\'');  // ' needs no escape inside a string literal
    } else {
      out += EscapeChar(c);
    }
  }
  return out;
}

std::string FormatDouble(double d) {
  if (std::isnan(d)) {
    return "nan";
  }
  if (std::isinf(d)) {
    return d < 0 ? "-inf" : "inf";
  }
  // Try increasing precision until the value round-trips.
  for (int prec = 6; prec <= 17; ++prec) {
    std::string s = StrPrintf("%.*g", prec, d);
    double back = strtod(s.c_str(), nullptr);
    if (back == d) {
      return s;
    }
  }
  return StrPrintf("%.17g", d);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

namespace {
int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    int d = HexDigit(c);
    if (d < 0) {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

std::string HexU64(uint64_t v) { return StrPrintf("%llx", static_cast<unsigned long long>(v)); }

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) {
      return false;
    }
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

std::string HexEncode(const void* data, size_t n) {
  static const char kDigits[] = "0123456789abcdef";
  const uint8_t* p = static_cast<const uint8_t*>(data);
  std::string out;
  out.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[p[i] >> 4]);
    out.push_back(kDigits[p[i] & 0xf]);
  }
  return out;
}

bool HexDecode(std::string_view s, std::vector<uint8_t>* out) {
  if (s.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    int hi = HexDigit(s[i]);
    int lo = HexDigit(s[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace duel
