// Lightweight instrumentation counters.
//
// The experiments in EXPERIMENTS.md report operation counts (target bytes
// moved, symbol lookups, eval steps) alongside wall-clock times, since
// absolute 1992-era timings are not reproducible.

#ifndef DUEL_SUPPORT_COUNTERS_H_
#define DUEL_SUPPORT_COUNTERS_H_

#include <cstdint>

namespace duel {

struct BackendCounters {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_calls = 0;
  uint64_t write_calls = 0;
  uint64_t vectored_reads = 0;  // ReadTargetRanges round trips (remote: qDuelReadV)
  uint64_t symbol_lookups = 0;
  uint64_t type_lookups = 0;
  uint64_t target_calls = 0;
  uint64_t allocations = 0;

  void Reset() { *this = BackendCounters(); }
};

// dbg::MemoryAccess (the read-combining cache between the evaluators and the
// backend) meters itself here. hits/misses count requests; bytes_from_cache
// vs bytes_fetched is the "bytes saved" story the E4-style ablation reports.
struct CacheCounters {
  uint64_t hits = 0;            // requests served entirely from cached blocks
  uint64_t misses = 0;          // requests that needed at least one block fetch
  uint64_t passthroughs = 0;    // requests forwarded verbatim (cache off / unserveable)
  uint64_t bytes_from_cache = 0;
  uint64_t bytes_fetched = 0;   // bytes pulled from the backend into blocks
  uint64_t block_fetches = 0;   // blocks fetched (over vectored or scalar reads)
  uint64_t invalidations = 0;   // whole-cache drops (epoch, call, alloc, overflow)

  void Reset() { *this = CacheCounters(); }
};

// Session plan cache (duel::PlanCache): compiled-query reuse across queries.
// lookups = hits + misses; invalidations count plans found but stale
// (epoch/alias mismatch — a subset of misses), evictions count LRU drops.
struct PlanCacheCounters {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t evictions = 0;

  void Reset() { *this = PlanCacheCounters(); }
};

struct EvalCounters {
  uint64_t eval_steps = 0;       // calls into eval() / generator resumptions
  uint64_t values_produced = 0;  // values yielded by the root expression
  uint64_t applies = 0;          // primitive operator applications
  uint64_t name_lookups = 0;     // identifier resolutions (aliases + target)
  uint64_t symbolic_builds = 0;  // symbolic-value string compositions

  void Reset() { *this = EvalCounters(); }
};

}  // namespace duel

#endif  // DUEL_SUPPORT_COUNTERS_H_
