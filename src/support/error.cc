#include "src/support/error.h"

namespace duel {

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kLex:
      return "lexical error";
    case ErrorKind::kParse:
      return "syntax error";
    case ErrorKind::kType:
      return "type error";
    case ErrorKind::kName:
      return "unknown name";
    case ErrorKind::kMemory:
      return "illegal memory reference";
    case ErrorKind::kTarget:
      return "target error";
    case ErrorKind::kLimit:
      return "evaluation limit exceeded";
    case ErrorKind::kCancel:
      return "query cancelled";
    case ErrorKind::kProtocol:
      return "protocol error";
    case ErrorKind::kInternal:
      return "internal error";
  }
  return "error";
}

}  // namespace duel
