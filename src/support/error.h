// Error types shared by every layer of the DUEL reproduction.
//
// The original DUEL reports errors by printing the symbolic value of the
// offending operand, e.g.
//     Illegal memory reference in x of x->y: ptr[48] = lvalue 0x16820.
// Errors here carry the same ingredients: a category, a human message, and an
// optional symbolic context filled in by the evaluator.

#ifndef DUEL_SUPPORT_ERROR_H_
#define DUEL_SUPPORT_ERROR_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

namespace duel {

// A half-open byte range into the query text, used for diagnostics.
struct SourceRange {
  size_t begin = 0;
  size_t end = 0;

  bool empty() const { return begin >= end; }
};

// The smallest range covering both operands (empty ranges are ignored, so a
// synthesized node cannot drag a real span down to offset 0).
inline SourceRange Cover(SourceRange a, SourceRange b) {
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  return {a.begin < b.begin ? a.begin : b.begin, a.end > b.end ? a.end : b.end};
}

enum class ErrorKind {
  kLex,      // malformed token
  kParse,    // syntax error
  kType,     // evaluation-time type error (DUEL type-checks during evaluation)
  kName,     // unknown identifier
  kMemory,   // illegal target memory reference
  kTarget,   // debugger/backend failure (call failed, bad frame, ...)
  kLimit,    // evaluation fuel / recursion limit exceeded
  kCancel,   // governed query cancelled (deadline / budget / explicit cancel)
  kProtocol, // RSP / MI framing or protocol error
  kInternal, // invariant violation in this library
};

const char* ErrorKindName(ErrorKind kind);

class DuelError : public std::runtime_error {
 public:
  DuelError(ErrorKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind_(kind) {}
  DuelError(ErrorKind kind, std::string message, SourceRange range)
      : std::runtime_error(std::move(message)), kind_(kind), range_(range) {}

  ErrorKind kind() const { return kind_; }
  const SourceRange& range() const { return range_; }

  // Late span attribution: the shared operator layer fills in the operator
  // node's range when a helper below it (value conversion, store, memory
  // access) threw without one. First writer wins — the innermost frame that
  // knows a range is the most precise.
  void set_range(SourceRange range) {
    if (range_.empty()) {
      range_ = range;
    }
  }

  // The symbolic value of the offending operand, e.g. "ptr[48]". Set by the
  // evaluator when it can attribute the fault to a subexpression.
  const std::string& symbolic_context() const { return symbolic_context_; }
  void set_symbolic_context(std::string sym) { symbolic_context_ = std::move(sym); }

 private:
  ErrorKind kind_;
  SourceRange range_;
  std::string symbolic_context_;
};

// Thrown by the target memory subsystem on an invalid access; the evaluator
// converts this into the paper's "Illegal memory reference" report (or treats
// it as end-of-walk inside graph expansion).
class MemoryFault : public DuelError {
 public:
  MemoryFault(uint64_t addr, size_t size, std::string message)
      : DuelError(ErrorKind::kMemory, std::move(message)), addr_(addr), size_(size) {}

  uint64_t addr() const { return addr_; }
  size_t size() const { return size_; }

 private:
  uint64_t addr_;
  size_t size_;
};

}  // namespace duel

#endif  // DUEL_SUPPORT_ERROR_H_
