// Small string helpers used across the project.

#ifndef DUEL_SUPPORT_STRINGS_H_
#define DUEL_SUPPORT_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace duel {

// printf into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string StrVPrintf(const char* fmt, va_list ap);

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// C-style escaping for a character / string literal body (no surrounding quotes).
std::string EscapeChar(char c);
std::string EscapeString(std::string_view s);

// Formats a double the way the result printer does: shortest form that still
// round-trips for typical debugger use ("2.5", "1e+20", "3").
std::string FormatDouble(double d);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses an unsigned hex string (no 0x prefix). Returns false on bad input.
bool ParseHexU64(std::string_view s, uint64_t* out);
std::string HexU64(uint64_t v);  // lowercase, no 0x prefix

// Parses an unsigned decimal string. Returns false on bad input or overflow.
bool ParseU64(std::string_view s, uint64_t* out);

// Hex-encodes / decodes a byte buffer (lowercase). Decode returns false on
// odd length or non-hex characters.
std::string HexEncode(const void* data, size_t n);
bool HexDecode(std::string_view s, std::vector<uint8_t>* out);

// Splits on a separator character; keeps empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

}  // namespace duel

#endif  // DUEL_SUPPORT_STRINGS_H_
