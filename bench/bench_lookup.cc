// E4 — name-lookup cost. The paper: "type checking must be done during
// evaluation ... For example, most of the time in evaluating 1..100+i goes
// to the 100 lookups of i" (run-time symbol lookup per produced value), and
// suggests lookups "could be done at compile time using type-inference
// techniques".
//
// We compare a lookup-per-value query against a constant-only control, sweep
// the number of symbols the debugger must search, and measure the
// lookup-cache ablation (a stand-in for the compile-time binding the paper
// proposes).

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

void AddSymbols(BenchFixture& fx, size_t count) {
  target::ImageBuilder b(fx.image());
  for (size_t i = 0; i < count; ++i) {
    b.Global("g" + std::to_string(i), b.Int());
  }
  // The looked-up variable lands at the END of the globals list: worst case
  // for the linear symbol search a simple debugger performs.
  target::Addr i = b.Global("i", b.Int());
  b.PokeI32(i, 0);
}

void BM_LookupPerValue(benchmark::State& state) {
  size_t symbols = static_cast<size_t>(state.range(0));
  bool cache = state.range(1) != 0;
  SessionOptions opts;
  opts.eval.lookup_cache = cache;
  BenchFixture fx(opts);
  AddSymbols(fx, symbols);
  for (auto _ : state) {
    fx.Drive("(1..100)+i");  // one lookup of i per produced value
  }
  fx.session().context().counters().Reset();
  fx.Drive("(1..100)+i");
  state.counters["name_lookups"] =
      static_cast<double>(fx.session().context().counters().name_lookups);
  state.SetLabel(cache ? "cache=on" : "cache=off");
}
BENCHMARK(BM_LookupPerValue)
    ->ArgsProduct({{10, 100, 1000}, {0, 1}});

void BM_PrebindOptimization(benchmark::State& state) {
  // The paper's proposed fix ("symbol lookup could be done at compile time
  // using type-inference techniques"), implemented as the prebind pass.
  SessionOptions opts;
  opts.eval.prebind = true;
  BenchFixture fx(opts);
  AddSymbols(fx, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fx.Drive("(1..100)+i");
  }
  state.SetLabel("prebind");
}
BENCHMARK(BM_PrebindOptimization)->Arg(10)->Arg(1000);

void BM_ConstantControl(benchmark::State& state) {
  BenchFixture fx;
  AddSymbols(fx, 100);
  for (auto _ : state) {
    fx.Drive("(1..100)+5");  // no lookups at all
  }
}
BENCHMARK(BM_ConstantControl);

void BM_BoundOnceControl(benchmark::State& state) {
  // 1..(100+i): i is looked up once per drive, not once per value.
  BenchFixture fx;
  AddSymbols(fx, 100);
  for (auto _ : state) {
    fx.Drive("1..100+i");
  }
}
BENCHMARK(BM_BoundOnceControl);

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
