// E7 — graph-expansion cost and the cycle-detection extension. The original
// "does not handle cycles"; ours does (a per-expansion visited set). We
// measure --> over lists and trees across sizes, dfs vs the -->> bfs
// extension, and the cost of the cycle guard.

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

void BM_ListWalk(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool cycle_detect = state.range(1) != 0;
  SessionOptions opts;
  opts.eval.cycle_detect = cycle_detect;
  opts.eval.sym_mode = EvalOptions::SymMode::kOff;
  BenchFixture fx(opts);
  std::vector<int32_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<int32_t>(i);
  }
  scenarios::BuildList(fx.image(), "L", values);
  for (auto _ : state) {
    fx.Drive("#/(L-->next)");
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.SetLabel(cycle_detect ? "cycle-guard=on" : "cycle-guard=off");
}
BENCHMARK(BM_ListWalk)->ArgsProduct({{100, 1000, 10000, 100000}, {0, 1}});

void BM_TreeWalk(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  bool bfs = state.range(1) != 0;
  SessionOptions opts;
  opts.eval.sym_mode = EvalOptions::SymMode::kOff;
  BenchFixture fx(opts);
  std::string tree = "(1)";
  for (int d = 0; d < depth; ++d) {
    tree = "(1 " + tree + " " + tree + ")";
  }
  scenarios::BuildTree(fx.image(), "root", tree);
  std::string query =
      bfs ? "#/(root-->>(left,right))" : "#/(root-->(left,right))";
  uint64_t nodes = (1ull << (depth + 1)) - 1;
  for (auto _ : state) {
    fx.Drive(query);
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes) * state.iterations());
  state.SetLabel(bfs ? "bfs" : "dfs");
}
BENCHMARK(BM_TreeWalk)->ArgsProduct({{8, 12, 16}, {0, 1}});

void BM_WalkWithFieldAccess(benchmark::State& state) {
  // The common real query shape: walk + read a field of every node.
  size_t n = static_cast<size_t>(state.range(0));
  SessionOptions opts;
  opts.eval.sym_mode = EvalOptions::SymMode::kOff;
  BenchFixture fx(opts);
  std::vector<int32_t> values(n, 1);
  scenarios::BuildList(fx.image(), "L", values);
  for (auto _ : state) {
    fx.Drive("+/(L-->next->value)");
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_WalkWithFieldAccess)->Arg(1000)->Arg(10000);

void BM_SymbolicChainCost(benchmark::State& state) {
  // Long chains stress the symbolic chain representation; compression keeps
  // the strings O(1) instead of O(depth).
  size_t n = static_cast<size_t>(state.range(0));
  bool symbolic = state.range(1) != 0;
  SessionOptions opts;
  opts.eval.sym_mode = symbolic ? EvalOptions::SymMode::kOn : EvalOptions::SymMode::kOff;
  BenchFixture fx(opts);
  std::vector<int32_t> values(n, 1);
  scenarios::BuildList(fx.image(), "L", values);
  for (auto _ : state) {
    QueryResult r = fx.session().Query("L-->next->value ==? 99");
    benchmark::DoNotOptimize(r.value_count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.SetLabel(symbolic ? "sym=on" : "sym=off");
}
BENCHMARK(BM_SymbolicChainCost)->ArgsProduct({{1000, 10000}, {0, 1}});

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
