// E10 (extension) — DUEL expressions in watchpoints and conditional
// breakpoints. The paper: "The evaluation time for most Duel expressions is
// negligible ... A faster implementation would be required if Duel
// expressions were used in watchpoints and conditional breakpoints."
//
// We measure statement-execution throughput of the stepping debugger with
// 0..4 watchpoints of increasing complexity, quantifying exactly the
// overhead the paper predicted.

#include "bench/bench_util.h"
#include "src/exec/debugger.h"

namespace duel::bench {
namespace {

std::vector<std::string> MakeProgram(size_t statements) {
  std::vector<std::string> lines;
  lines.push_back("int i;");
  for (size_t s = 0; s < statements; ++s) {
    lines.push_back("x[" + std::to_string(s % 64) + "] = " + std::to_string(s) + ";");
  }
  return lines;
}

const char* kWatchExprs[] = {
    "x[0]",                 // scalar watch
    "+/x[..64]",            // aggregate watch
    "x[..64] >? 40",        // filter watch (sequence-valued)
    "#/(L-->next->value)",  // structure watch
};

void BM_SteppingWithWatchpoints(benchmark::State& state) {
  size_t watchpoints = static_cast<size_t>(state.range(0));
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", std::vector<int32_t>(64, 0));
  scenarios::BuildList(image, "L", {1, 2, 3, 4, 5, 6, 7, 8});
  dbg::SimBackend backend(image);

  const size_t kStatements = 200;
  exec::TargetProgram program =
      exec::TargetProgram::Parse(MakeProgram(kStatements), image);
  SessionOptions opts;
  opts.eval.sym_mode = EvalOptions::SymMode::kOff;

  uint64_t stops = 0;
  for (auto _ : state) {
    exec::Debugger dbg(image, backend, program, opts);
    for (size_t w = 0; w < watchpoints; ++w) {
      dbg.AddWatchpoint(kWatchExprs[w]);
    }
    while (true) {
      exec::StopInfo s = dbg.Continue();
      if (s.reason == exec::StopReason::kFinished ||
          s.reason == exec::StopReason::kError) {
        break;
      }
      stops++;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(kStatements) * state.iterations());
  state.counters["stops"] =
      static_cast<double>(stops) / static_cast<double>(state.iterations());
  state.SetLabel(std::to_string(watchpoints) + " watchpoints");
}
BENCHMARK(BM_SteppingWithWatchpoints)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_SteppingWithAddressWatch(benchmark::State& state) {
  // The hardware-watchpoint analog: raw byte comparison per statement.
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", std::vector<int32_t>(64, 0));
  dbg::SimBackend backend(image);
  const size_t kStatements = 200;
  exec::TargetProgram program =
      exec::TargetProgram::Parse(MakeProgram(kStatements), image);
  target::Addr x = image.symbols().FindVariable("x")->addr;
  for (auto _ : state) {
    exec::Debugger dbg(image, backend, program);
    dbg.AddAddressWatch(x + 63 * 4, 4);  // a slot the program never writes
    while (dbg.Continue().reason != exec::StopReason::kFinished) {
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(kStatements) * state.iterations());
  state.SetLabel("1 address watch");
}
BENCHMARK(BM_SteppingWithAddressWatch);

void BM_ConditionalBreakpointEvalRate(benchmark::State& state) {
  // How many DUEL condition evaluations per second can a breakpoint sustain?
  bool complex_cond = state.range(0) != 0;
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "x", std::vector<int32_t>(64, 1));
  dbg::SimBackend backend(image);
  exec::TargetProgram program = exec::TargetProgram::Parse(MakeProgram(100), image);
  SessionOptions opts;
  opts.eval.sym_mode = EvalOptions::SymMode::kOff;

  const char* cond = complex_cond ? "#/(x[..64] >? 1000) != 0" : "x[0] < 0";
  uint64_t evals = 0;
  for (auto _ : state) {
    exec::Debugger dbg(image, backend, program, opts);
    for (size_t line = 0; line < program.size(); ++line) {
      dbg.AddBreakpoint(line, cond);  // never fires: measures pure guard cost
    }
    while (dbg.Continue().reason != exec::StopReason::kFinished) {
    }
    evals += dbg.guard_evals();
  }
  state.SetItemsProcessed(static_cast<int64_t>(evals));
  state.SetLabel(complex_cond ? "generator condition" : "scalar condition");
}
BENCHMARK(BM_ConditionalBreakpointEvalRate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
