// Shared fixtures for the benchmark harness (experiments E1–E8).

#ifndef DUEL_BENCH_BENCH_UTIL_H_
#define DUEL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

namespace duel::bench {

// A simulated debuggee plus session, built once per benchmark.
class BenchFixture {
 public:
  explicit BenchFixture(SessionOptions opts = {}) {
    target::InstallStandardFunctions(image_);
    backend_ = std::make_unique<dbg::SimBackend>(image_);
    session_ = std::make_unique<Session>(*backend_, opts);
  }

  target::TargetImage& image() { return image_; }
  dbg::SimBackend& backend() { return *backend_; }
  Session& session() { return *session_; }

  // Drives a query (no output formatting); aborts on error.
  uint64_t Drive(const std::string& expr) {
    uint64_t n = session_->Drive(expr);
    benchmark::DoNotOptimize(n);
    return n;
  }

 private:
  target::TargetImage image_;
  std::unique_ptr<dbg::SimBackend> backend_;
  std::unique_ptr<Session> session_;
};

inline SessionOptions EngineOptions(EngineKind kind) {
  SessionOptions o;
  o.engine = kind;
  return o;
}

}  // namespace duel::bench

#endif  // DUEL_BENCH_BENCH_UTIL_H_
