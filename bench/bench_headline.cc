// E2 — the paper's headline timing: "For example, x[..10000] >? 0 compiles
// and executes in about 5 seconds on a DECStation 5000."
//
// We sweep the array size and time (a) parse+evaluate together, exactly the
// paper's "compiles and executes", and (b) evaluation alone. Expected shape:
// linear scaling in N; a modern CPU runs the 10k query ~4-5 orders of
// magnitude faster than the 1992 workstation.

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

void BM_HeadlineParseAndEval(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BenchFixture fx;
  scenarios::BuildRandomIntArray(fx.image(), "x", n, -100, 100, 42);
  std::string query = "x[.." + std::to_string(n) + "] >? 0";
  uint64_t values = 0;
  for (auto _ : state) {
    values += fx.Drive(query);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.counters["positives"] =
      static_cast<double>(values) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_HeadlineParseAndEval)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HeadlineParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    Parser parser("x[..10000] >? 0");
    ParseResult r = parser.Parse();
    benchmark::DoNotOptimize(r.num_nodes);
  }
}
BENCHMARK(BM_HeadlineParseOnly);

void BM_HeadlineEvalWithOutput(benchmark::State& state) {
  // Includes result formatting (the paper's command prints all values).
  size_t n = 10000;
  BenchFixture fx;
  scenarios::BuildRandomIntArray(fx.image(), "x", n, -100, 100, 42);
  for (auto _ : state) {
    QueryResult r = fx.session().Query("x[..10000] >? 0");
    benchmark::DoNotOptimize(r.lines.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HeadlineEvalWithOutput);

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
