// E2 — the paper's headline timing: "For example, x[..10000] >? 0 compiles
// and executes in about 5 seconds on a DECStation 5000."
//
// We sweep the array size and time (a) parse+evaluate together, exactly the
// paper's "compiles and executes", and (b) evaluation alone. Expected shape:
// linear scaling in N; a modern CPU runs the 10k query ~4-5 orders of
// magnitude faster than the 1992 workstation.

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

void BM_HeadlineParseAndEval(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BenchFixture fx;
  scenarios::BuildRandomIntArray(fx.image(), "x", n, -100, 100, 42);
  std::string query = "x[.." + std::to_string(n) + "] >? 0";
  uint64_t values = 0;
  for (auto _ : state) {
    values += fx.Drive(query);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
  state.counters["positives"] =
      static_cast<double>(values) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_HeadlineParseAndEval)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_HeadlineParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    Parser parser("x[..10000] >? 0");
    ParseResult r = parser.Parse();
    benchmark::DoNotOptimize(r.num_nodes);
  }
}
BENCHMARK(BM_HeadlineParseOnly);

void BM_HeadlineEvalWithOutput(benchmark::State& state) {
  // Includes result formatting (the paper's command prints all values).
  size_t n = 10000;
  BenchFixture fx;
  scenarios::BuildRandomIntArray(fx.image(), "x", n, -100, 100, 42);
  for (auto _ : state) {
    QueryResult r = fx.session().Query("x[..10000] >? 0");
    benchmark::DoNotOptimize(r.lines.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_HeadlineEvalWithOutput);

// Machine-readable metrics: after the timed runs, replay the headline query
// sweep once per engine with full stats + per-node profiling and write one
// JSON document ({"bench":"headline","queries":[<obs::QueryStats>...]}).
// DUEL_BENCH_METRICS overrides the output path; an empty value disables it.
void WriteMetricsJson() {
  const char* env = std::getenv("DUEL_BENCH_METRICS");
  std::string path = env != nullptr ? env : "bench_headline_metrics.json";
  if (path.empty()) {
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return;
  }
  out << "{\"bench\":\"headline\",\"queries\":[";
  bool first = true;
  for (EngineKind kind : {EngineKind::kStateMachine, EngineKind::kCoroutine}) {
    for (size_t n : {size_t{1000}, size_t{10000}, size_t{100000}}) {
      SessionOptions opts = EngineOptions(kind);
      opts.collect_stats = true;
      opts.profile = true;
      BenchFixture fx(opts);
      scenarios::BuildRandomIntArray(fx.image(), "x", n, -100, 100, 42);
      fx.Drive("x[.." + std::to_string(n) + "] >? 0");
      if (fx.session().last_stats().has_value()) {
        out << (first ? "\n" : ",\n") << fx.session().last_stats()->ToJson();
        first = false;
      }
    }
  }
  out << "\n]}\n";
  std::cerr << "wrote headline metrics to " << path << "\n";
}

}  // namespace
}  // namespace duel::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  duel::bench::WriteMetricsJson();
  return 0;
}
