// E8 — the narrow debugger interface, local vs remote. The paper keeps the
// DUEL<->debugger interface "intentionally narrow to simplify connecting it
// to a debugger"; the same core here runs unmodified over (a) the in-process
// SimBackend, (b) an RSP transport without framing, (c) the full $..#cs
// packet codec, and (d) a real socketpair with the server in another thread.
// Expected shape: identical results, with a per-target-access constant
// overhead growing from (a) to (d).

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/bench_util.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/socket_transport.h"
#include "src/rsp/transport.h"

namespace duel::bench {
namespace {

struct Rig {
  target::TargetImage image;
  std::unique_ptr<dbg::SimBackend> sim;
  std::unique_ptr<rsp::RspServer> server;
  std::unique_ptr<rsp::Transport> transport;
  std::unique_ptr<rsp::RemoteBackend> remote;
  std::unique_ptr<Session> session;

  explicit Rig(int mode) {
    target::InstallStandardFunctions(image);
    scenarios::BuildRandomIntArray(image, "x", 10000, -50, 50, 11);
    std::vector<int32_t> values(500);
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<int32_t>(i % 97);
    }
    scenarios::BuildList(image, "L", values);
    scenarios::BuildDenseSymtab(image, 256);

    sim = std::make_unique<dbg::SimBackend>(image);
    SessionOptions opts;
    opts.eval.sym_mode = EvalOptions::SymMode::kOff;
    if (mode == 0) {
      session = std::make_unique<Session>(*sim, opts);
      return;
    }
    server = std::make_unique<rsp::RspServer>(*sim);
    if (mode == 1) {
      transport = std::make_unique<rsp::DirectTransport>(*server);
    } else if (mode == 2) {
      transport = std::make_unique<rsp::FramedTransport>(*server);
    } else {
      transport = std::make_unique<rsp::SocketTransport>(*server);
    }
    remote = std::make_unique<rsp::RemoteBackend>(*transport);
    session = std::make_unique<Session>(*remote, opts);
  }
};

const char* ModeName(int mode) {
  switch (mode) {
    case 0: return "sim-direct";
    case 1: return "rsp-unframed";
    case 2: return "rsp-framed";
    default: return "rsp-socket";
  }
}

void BM_BackendArrayScan(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t n = rig.session->Drive("#/(x[..10000] >? 0)");
    benchmark::DoNotOptimize(n);
  }
  if (rig.transport != nullptr) {
    state.counters["round_trips_total"] = static_cast<double>(rig.transport->round_trips());
    state.counters["wire_bytes_total"] = static_cast<double>(rig.transport->bytes_on_wire());
  }
  state.SetLabel(std::string("array_scan/") + ModeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BackendArrayScan)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_BackendListWalk(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t n = rig.session->Drive("+/(L-->next->value)");
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(std::string("list_walk/") + ModeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BackendListWalk)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_BackendSymbolLookups(benchmark::State& state) {
  // Lookup-heavy: every value resolves `i` through the backend.
  Rig rig(static_cast<int>(state.range(0)));
  rig.session->Query("i := 1 ;");
  for (auto _ : state) {
    uint64_t n = rig.session->Drive("#/((1..1000)+i)");
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(std::string("lookups/") + ModeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BackendSymbolLookups)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Machine-readable remote-path metrics: the E4-style cached-vs-uncached
// ablation over each remote transport. For every mode the 10k headline scan
// runs once with the data cache on and once off; the JSON records the wire
// packets/bytes it cost plus the full obs::QueryStats (backend counters,
// cache hit/miss/bytes-saved). DUEL_BENCH_REMOTE_METRICS overrides the
// output path; an empty value disables it.
void WriteRemoteMetricsJson() {
  const char* env = std::getenv("DUEL_BENCH_REMOTE_METRICS");
  std::string path = env != nullptr ? env : "bench_remote_metrics.json";
  if (path.empty()) {
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write remote metrics to " << path << "\n";
    return;
  }
  out << "{\"bench\":\"remote\",\"query\":\"x[..10000] >? 0\",\"runs\":[";
  bool first = true;
  for (int mode = 1; mode <= 3; ++mode) {
    for (bool cache_on : {false, true}) {
      Rig rig(mode);
      rig.session->options().collect_stats = true;
      rig.session->options().eval.data_cache = cache_on;
      rig.session->Drive("x[..10000] >? 0");
      if (!rig.session->last_stats().has_value()) {
        continue;
      }
      out << (first ? "\n" : ",\n")
          << "{\"mode\":\"" << ModeName(mode) << "\",\"data_cache\":"
          << (cache_on ? "true" : "false")
          << ",\"round_trips\":" << rig.transport->round_trips()
          << ",\"wire_bytes\":" << rig.transport->bytes_on_wire()
          << ",\"stats\":" << rig.session->last_stats()->ToJson() << "}";
      first = false;
    }
  }
  out << "\n]}\n";
  std::cerr << "wrote remote metrics to " << path << "\n";
}

}  // namespace
}  // namespace duel::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  duel::bench::WriteRemoteMetricsJson();
  return 0;
}
