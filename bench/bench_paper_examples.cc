// E1 — regenerates every inline example of the paper: for each `gdb> duel`
// line, the query is run against the reconstructed program state and the
// measured output is printed next to the output the paper shows, with
// timing. This is the harness behind the E1 rows in EXPERIMENTS.md (the
// same examples are golden-tested in tests/paper_examples_test.cc).
//
// Deliberately a plain program, not a google-benchmark binary: the "figure"
// being reproduced is the printed outputs themselves.

#include <chrono>
#include <functional>
#include <iostream>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

namespace {

struct Example {
  const char* section;
  const char* query;
  const char* paper_output;  // as printed in the paper ("" if not shown)
  std::function<void(target::TargetImage&)> setup;
  const char* note = "";
};

void SetupArrays(target::TargetImage& image) {
  std::vector<int32_t> x(51, 0);
  x[3] = 7;
  x[18] = 9;
  x[47] = 6;
  x[2] = 12;
  scenarios::BuildIntArray(image, "x", x);
}

void SetupWideArray(target::TargetImage& image) {
  std::vector<int32_t> x(10, 1);
  x[3] = -9;
  x[8] = 120;
  scenarios::BuildIntArray(image, "x", x);
}

void SetupHash(target::TargetImage& image) {
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[42] = {{"deep", 7}};
  chains[529] = {{"deeper", 8}};
  chains[7] = {{"shallow", 2}};
  scenarios::BuildSymtab(image, chains, 1024);
}

void SetupHashChain(target::TargetImage& image) {
  scenarios::BuildSymtab(image, {{0, {{"a", 4}, {"b", 3}, {"c", 2}, {"d", 1}}},
                                 {1, {{"x", 3}}},
                                 {9, {{"abc", 2}}}});
}

void SetupSortedness(target::TargetImage& image) {
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[3] = {{"s0", 9}, {"s1", 5}};
  std::vector<scenarios::SymEntry> bad;
  int32_t scopes[] = {13, 12, 11, 10, 9, 8, 7, 6, 5, 6};
  for (size_t i = 0; i < 10; ++i) {
    bad.push_back({"u" + std::to_string(i), scopes[i]});
  }
  chains[287] = bad;
  scenarios::BuildSymtab(image, chains, 1024);
}

void SetupLists(target::TargetImage& image) {
  scenarios::BuildList(image, "L", {11, 22, 33, 44, 27, 55, 66, 77, 88, 27});
  scenarios::BuildList(image, "head", {1, 2, 3, 33, 4, 29});
}

void SetupTree(target::TargetImage& image) {
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
}

void SetupArgv(target::TargetImage& image) {
  scenarios::BuildArgv(image, {"prog", "-v", "input.c"});
}

void SetupNone(target::TargetImage&) {}

const Example kExamples[] = {
    {"Syntax", "1 + (double)3/2", "2.500", SetupNone, "we print 2.5 (%g vs %.3f)"},
    {"Syntax", "(1,2,5)*4+(10,200)", "14 204 18 208 30 220", SetupNone,
     "paper omits the symbolic column here"},
    {"Syntax", "(3,11)+(5..7)", "8 9 10 16 17 18", SetupNone, ""},
    {"Syntax", "x[1..4,8,12..50] >? 5 <? 10", "x[3] = 7\nx[18] = 9\nx[47] = 6", SetupArrays,
     ""},
    {"Syntax", "x[1..4,8,12..50] ==? (6..9)", "(same as above)", SetupArrays, ""},
    {"Syntax", "x[1..3] == 7", "x[1]==7 = 0\nx[2]==7 = 0\nx[3]==7 = 1",
     [](target::TargetImage& im) {
       std::vector<int32_t> x(4, 0);
       x[3] = 7;
       scenarios::BuildIntArray(im, "x", x);
     },
     ""},
    {"Syntax", "(hash[..1024] !=? 0)->scope >? 5",
     "hash[42]->scope = 7\nhash[529]->scope = 8", SetupHash, ""},
    {"Syntax", "int i; for (i = 0; i < 9; i++) 4 + if (i%3==0) i*5",
     "4+i*5 = 4\n4+i*5 = 19\n4+i*5 = 34", SetupNone, ""},
    {"Syntax", "int i; for (i = 0; i < 9; i++) 4 + if (i%3 == 0) {i}*5",
     "4+0*5 = 4\n4+3*5 = 19\n4+6*5 = 34", SetupNone, ""},
    {"Syntax", "i := 1..3; i + 4", "i+4 = 7", SetupNone, ""},
    {"Syntax", "i := 1..3 => {i} + 4", "1+4 = 5\n2+4 = 6\n3+4 = 7", SetupNone, ""},
    {"Syntax", "hash[1,9]->(scope,name)",
     "hash[1]->scope = 3\nhash[1]->name = \"x\"\nhash[9]->scope = 2\nhash[9]->name = "
     "\"abc\"",
     SetupHashChain, ""},
    {"Syntax", "hash[..1024]->(if (_ && scope > 5) name)", "(names with scope > 5)",
     SetupHash, ""},
    {"Syntax", "y:= x[..10] => if (y < 0 || y > 100) y", "y = -9\ny = 120", SetupWideArray,
     ""},
    {"Syntax", "x[..10].if (_ < 0 || _ > 100) _", "x[3] = -9\nx[8] = 120", SetupWideArray,
     ""},
    {"Syntax", "hash[0]-->next->scope",
     "hash[0]->scope = 4\nhash[0]->next->scope = 3\nhash[0]->next->next->scope = "
     "2\nhash[0]->next->next->next->scope = 1",
     SetupHashChain, ""},
    {"Syntax", "L-->next->(value ==? next-->next->value)", "(duplicate values)", SetupLists,
     ""},
    {"Syntax", "root-->(left,right)->key",
     "root->key = 9\nroot->left->key = 3\nroot->left->right->key = 5\nroot->left->left->key "
     "= 4\nroot->right->key = 12",
     SetupTree, "paper's own output order contradicts its reverse-stacking remark"},
    {"Syntax", "root-->(if (key > 5) left else if (key < 5) right)->key",
     "root->key = 9\nroot->left->key = 3\nroot->left->right->key = 5", SetupTree,
     "comparisons swapped vs. paper text (typo there; see EXPERIMENTS.md)"},
    {"Syntax", "hash[..1024]-->next-> if (next) scope <? next->scope",
     "hash[287]-->next[[8]]->scope = 5", SetupSortedness, ""},
    {"Syntax", "((1..9)*(1..9))[[52,74]]", "6*8 = 48\n9*3 = 27", SetupNone, ""},
    {"Syntax", "head-->next->value[[3,5]]",
     "head-->next[[3]]->value = 33\nhead-->next[[5]]->value = 29", SetupLists, ""},
    {"Syntax", "#/(root-->(left,right)->key)", "5", SetupTree, ""},
    {"Syntax",
     "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value",
     "L-->next[[4]]->value = 27\nL-->next[[9]]->value = 27", SetupLists, ""},
    {"Syntax", "argv[0..]@0", "(the strings in argv)", SetupArgv, ""},
    {"Semantics", "printf(\"%d %d, \", (3,4), 5..7) ;", "3 5, 3 6, 3 7, 4 5, 4 6, 4 7, ",
     SetupNone, "output appears on the target's stdout"},
};

}  // namespace

int main() {
  std::cout << "E1: paper inline examples, regenerated\n";
  std::cout << "======================================\n\n";
  size_t failures = 0;
  for (const Example& ex : kExamples) {
    target::TargetImage image;
    target::InstallStandardFunctions(image);
    ex.setup(image);
    dbg::SimBackend backend(image);
    Session session(backend);

    auto start = std::chrono::steady_clock::now();
    QueryResult r = session.Query(ex.query);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    std::cout << "[" << ex.section << "] gdb> duel " << ex.query << "\n";
    std::cout << "  paper:    ";
    for (char c : std::string(ex.paper_output)) {
      std::cout << c;
      if (c == '\n') {
        std::cout << "            ";
      }
    }
    std::cout << "\n  measured: ";
    if (!r.ok) {
      std::cout << r.error;
      failures++;
    } else if (r.lines.empty()) {
      std::cout << (image.output().empty() ? "(no output)" : image.TakeOutput());
    } else {
      for (size_t i = 0; i < r.lines.size(); ++i) {
        if (i != 0) {
          std::cout << "\n            ";
        }
        std::cout << r.lines[i];
      }
    }
    std::cout << "\n  time: " << micros << " us";
    if (ex.note[0] != '\0') {
      std::cout << "   note: " << ex.note;
    }
    std::cout << "\n\n";
  }
  std::cout << (failures == 0 ? "all examples evaluated without error\n"
                              : "SOME EXAMPLES FAILED\n");
  return failures == 0 ? 0 : 1;
}
