// E3 — symbolic-value overhead. The paper: "In most cases, the computation
// of the symbolic value is more expensive than computing the result.
// Furthermore, many of the symbolic computations are unnecessary ... in
// x[..1000] !=? 0, the symbolic expression x[i] is computed 1000 times, even
// though it might be printed only once."
//
// Expected shape: symbolic-on markedly slower than symbolic-off on queries
// that filter heavily (compute many, print few); the gap narrows for queries
// whose values are all printed anyway.

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

struct QuerySpec {
  const char* name;
  const char* query;
};

const QuerySpec kQueries[] = {
    {"filter_prints_one", "x[..1000] !=? 0"},           // the paper's example
    {"filter_prints_none", "x[..1000] >? 1000000"},
    {"arith_sweep", "+/(x[..1000] * 2 + 1)"},
    {"deep_expr", "#/((x[..1000] + 1) * (2,3) - 4)"},
};

void SetupImage(BenchFixture& fx) {
  // One non-zero element so the paper's query prints exactly once.
  std::vector<int32_t> x(1000, 0);
  x[500] = 7;
  scenarios::BuildIntArray(fx.image(), "x", x);
}

void BM_Symbolic(benchmark::State& state) {
  const QuerySpec& spec = kQueries[state.range(0)];
  int mode = static_cast<int>(state.range(1));
  SessionOptions opts;
  opts.eval.sym_mode = mode == 0   ? EvalOptions::SymMode::kOff
                       : mode == 1 ? EvalOptions::SymMode::kOn
                                   : EvalOptions::SymMode::kLazy;
  BenchFixture fx(opts);
  SetupImage(fx);
  for (auto _ : state) {
    // Query (not Drive): symbolic cost includes rendering what gets printed.
    QueryResult r = fx.session().Query(spec.query);
    benchmark::DoNotOptimize(r.value_count);
  }
  fx.session().context().counters().Reset();
  fx.session().Query(spec.query);
  state.counters["sym_builds"] =
      static_cast<double>(fx.session().context().counters().symbolic_builds);
  const char* mode_name = mode == 0 ? "/sym=off" : mode == 1 ? "/sym=eager" : "/sym=lazy";
  state.SetLabel(std::string(spec.name) + mode_name);
}
BENCHMARK(BM_Symbolic)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}});

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
