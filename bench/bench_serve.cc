// E9 — concurrent query service scaling. A closed-loop load generator runs
// 1/2/4/8 clients against one QueryService sharing a single TargetImage.
// Each per-session backend is wrapped in LatencyBackend (a fixed per-call
// delay modelling the wire round trip to a remote nub), so scaling comes
// from I/O overlap — the effect the worker pool exists to exploit — rather
// than from core count. Emits BENCH-style JSON: throughput plus end-to-end
// latency percentiles per client count (DUEL_BENCH_METRICS overrides the
// output path; empty disables).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/scenarios/scenarios.h"
#include "src/serve/latency_backend.h"
#include "src/serve/service.h"
#include "src/support/obs/metrics.h"
#include "src/support/strings.h"

namespace duel::serve {
namespace {

// LatencyBackend stores only the address of `inner` in its constructor, so
// passing the not-yet-constructed member is safe; this just bundles the two
// into one factory-returnable object.
class OwnedLatencySim final : public LatencyBackend {
 public:
  OwnedLatencySim(target::TargetImage& image, uint64_t per_call_us)
      : LatencyBackend(sim_, per_call_us), sim_(image) {}

 private:
  dbg::SimBackend sim_;
};

constexpr uint64_t kPerCallUs = 20;        // simulated round-trip per narrow call
constexpr int kRoundsPerClient = 200;      // queries each client issues back to back
constexpr const char* kQuery = "#/(L-->next->value >? 0)";

struct RunResult {
  int clients = 0;
  uint64_t wall_ns = 0;
  uint64_t queries = 0;
  obs::Histogram latency_ns;  // per-query, submit to completion
};

RunResult RunClosedLoop(target::TargetImage& image, int clients) {
  ServeOptions opts;
  opts.workers = 8;
  QueryService service([&image] { return std::make_unique<OwnedLatencySim>(image, kPerCallUs); },
                       opts);

  std::vector<uint64_t> ids;
  for (int i = 0; i < clients; ++i) {
    ids.push_back(service.OpenSession());
  }

  RunResult out;
  out.clients = clients;
  std::vector<obs::Histogram> per_client(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  uint64_t t0 = obs::NowNs();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&service, &per_client, id = ids[static_cast<size_t>(i)],
                          i] {
      for (int q = 0; q < kRoundsPerClient; ++q) {
        uint64_t s = obs::NowNs();
        QueryService::Outcome o = service.Eval(id, kQuery);
        if (o.status != SubmitStatus::kAccepted || !o.result.ok) {
          std::cerr << "bench query failed: " << o.result.error << "\n";
          std::abort();
        }
        per_client[static_cast<size_t>(i)].Record(obs::NowNs() - s);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  out.wall_ns = obs::NowNs() - t0;
  out.queries = static_cast<uint64_t>(clients) * kRoundsPerClient;
  for (const obs::Histogram& h : per_client) {
    out.latency_ns.MergeFrom(h);
  }
  service.Shutdown();
  return out;
}

void Main() {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "arr", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  scenarios::BuildList(image, "L", {11, 27, 33, 27, 8});

  const char* env = std::getenv("DUEL_BENCH_METRICS");
  std::string path = env != nullptr ? env : "bench_serve_metrics.json";

  std::vector<RunResult> runs;
  double base_qps = 0;
  for (int clients : {1, 2, 4, 8}) {
    RunResult r = RunClosedLoop(image, clients);
    double qps = static_cast<double>(r.queries) * 1e9 / static_cast<double>(r.wall_ns);
    if (clients == 1) {
      base_qps = qps;
    }
    std::cout << StrPrintf("clients=%d queries=%llu wall_ms=%llu qps=%.0f speedup=%.2fx %s\n",
                           clients, static_cast<unsigned long long>(r.queries),
                           static_cast<unsigned long long>(r.wall_ns / 1'000'000), qps,
                           base_qps > 0 ? qps / base_qps : 0.0, r.latency_ns.Summary().c_str());
    runs.push_back(std::move(r));
  }

  if (path.empty()) {
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return;
  }
  out << "{\"bench\":\"serve\",\"per_call_us\":" << kPerCallUs
      << ",\"rounds_per_client\":" << kRoundsPerClient << ",\"query\":\"" << kQuery
      << "\",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    double qps = static_cast<double>(r.queries) * 1e9 / static_cast<double>(r.wall_ns);
    out << (i == 0 ? "\n" : ",\n")
        << StrPrintf("{\"clients\":%d,\"queries\":%llu,\"wall_ns\":%llu,"
                     "\"throughput_qps\":%.1f,\"latency_ns\":%s}",
                     r.clients, static_cast<unsigned long long>(r.queries),
                     static_cast<unsigned long long>(r.wall_ns), qps,
                     r.latency_ns.ToJson().c_str());
  }
  out << "\n]}\n";
  std::cerr << "wrote serve metrics to " << path << "\n";
}

}  // namespace
}  // namespace duel::serve

int main() {
  duel::serve::Main();
  return 0;
}
