// Repeated-query benchmark: the plan cache's target workload. A debugging
// session re-issues the same handful of queries over and over (watch
// expressions, re-checks after a step), so we time the same expression N
// times cold (plan cache off — the full lex → parse → analyze → execute
// pipeline every iteration) vs warm (plan cache on — the compiled half is
// replayed after the first miss).
//
// The interesting regime is short queries over small data, where build cost
// is comparable to execute cost; for x[..100000]-style sweeps execution
// dominates and both modes converge.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

// The repeated-query mix: cheap scalar reads, a build-dominated expression
// (long text, mostly constant subtrees the analyze stage folds away), a
// small filter sweep, and a short traversal — the kind of expressions a
// user re-runs at every stop.
const char* kRepeatedQueries[] = {
    "x[0] + x[1]",
    "(1 + 2*3 - 4) * (10 - 6) + x[0] * (7 % 5) - (8 | 1) + (2 << 4)",
    "x[..64] >? 0",
    "#/(x[..64] > 10)",
    "L-->next->value",
};

// Index of the build-dominated query above; the cold-vs-warm speedup
// measurement uses it because there the plan cache has the most to skip.
constexpr size_t kBuildHeavyQuery = 1;

void Build(BenchFixture& fx) {
  scenarios::BuildRandomIntArray(fx.image(), "x", 64, -100, 100, 42);
  scenarios::BuildList(fx.image(), "L", {5, 3, 8, 3, 9});
}

SessionOptions CacheOptions(EngineKind kind, bool plan_cache) {
  SessionOptions o;
  o.engine = kind;
  o.plan_cache = plan_cache;
  return o;
}

void BM_RepeatedCold(benchmark::State& state) {
  BenchFixture fx(CacheOptions(static_cast<EngineKind>(state.range(0)), false));
  Build(fx);
  const char* query = kRepeatedQueries[static_cast<size_t>(state.range(1))];
  for (auto _ : state) {
    fx.Drive(query);
  }
  state.SetLabel(query);
}

void BM_RepeatedWarm(benchmark::State& state) {
  BenchFixture fx(CacheOptions(static_cast<EngineKind>(state.range(0)), true));
  // The benchmark must measure the cached path even under the CI ablation
  // environment (DUEL_PLAN_CACHE=off flips the constructor default).
  fx.session().options().plan_cache = true;
  Build(fx);
  const char* query = kRepeatedQueries[static_cast<size_t>(state.range(1))];
  fx.Drive(query);  // populate the cache; every timed iteration is a hit
  for (auto _ : state) {
    fx.Drive(query);
  }
  state.SetLabel(query);
  state.counters["plan_hits"] =
      static_cast<double>(fx.session().plan_cache().counters().hits);
}

void RegisterSweep(const char* name, void (*fn)(benchmark::State&)) {
  for (int engine : {0, 1}) {
    for (size_t q = 0; q < std::size(kRepeatedQueries); ++q) {
      benchmark::RegisterBenchmark(name, fn)->Args({engine, static_cast<int64_t>(q)});
    }
  }
}

// Machine-readable metrics: for each engine and query, one cold run and one
// warm (cached) re-run with full stats, plus the session's plan-cache
// counters — CI reads this to assert the warm speedup and export the hit
// rate. DUEL_BENCH_METRICS overrides the path; an empty value disables it.
void WriteMetricsJson() {
  const char* env = std::getenv("DUEL_BENCH_METRICS");
  std::string path = env != nullptr ? env : "bench_repeated_metrics.json";
  if (path.empty()) {
    return;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return;
  }
  out << "{\"bench\":\"repeated\",\"queries\":[";
  bool first = true;
  uint64_t lookups = 0, hits = 0;
  for (EngineKind kind : {EngineKind::kStateMachine, EngineKind::kCoroutine}) {
    SessionOptions opts = CacheOptions(kind, true);
    opts.collect_stats = true;
    BenchFixture fx(opts);
    fx.session().options().plan_cache = true;
    Build(fx);
    for (const char* query : kRepeatedQueries) {
      for (const char* run : {"cold", "warm"}) {
        // First pass misses and builds the plan; second pass hits it, so
        // its stats record zero build-stage time and plan_hit=true.
        fx.Drive(query);
        if (fx.session().last_stats().has_value()) {
          out << (first ? "\n" : ",\n") << "{\"engine\":\""
              << (kind == EngineKind::kStateMachine ? "sm" : "coro")
              << "\",\"run\":\"" << run
              << "\",\"stats\":" << fx.session().last_stats()->ToJson() << "}";
          first = false;
        }
      }
    }
    lookups += fx.session().plan_cache().counters().lookups;
    hits += fx.session().plan_cache().counters().hits;
  }
  out << "\n],\"plan_cache\":{\"lookups\":" << lookups << ",\"hits\":" << hits
      << ",\"hit_rate\":" << (lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups)
      << "}";

  // Cold-vs-warm wall time on the build-dominated query. CI asserts the
  // warm (cached) re-evaluation is at least 2x faster than the cold path.
  {
    const char* query = kRepeatedQueries[kBuildHeavyQuery];
    constexpr int kIters = 3000;
    auto time_iters = [&](BenchFixture& fx) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        fx.Drive(query);
      }
      return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count()) /
             kIters;
    };
    BenchFixture cold(CacheOptions(EngineKind::kStateMachine, false));
    cold.session().options().plan_cache = false;
    Build(cold);
    BenchFixture warm(CacheOptions(EngineKind::kStateMachine, true));
    warm.session().options().plan_cache = true;
    Build(warm);
    warm.Drive(query);  // populate the cache
    time_iters(cold);   // first pass warms CPU caches / allocator on both
    time_iters(warm);
    double cold_ns = time_iters(cold);
    double warm_ns = time_iters(warm);
    out << ",\"repeat\":{\"query\":\"" << query << "\",\"iters\":" << kIters
        << ",\"cold_ns_per_query\":" << cold_ns << ",\"warm_ns_per_query\":" << warm_ns
        << ",\"speedup\":" << (warm_ns > 0 ? cold_ns / warm_ns : 0.0) << "}";
  }
  out << "}\n";
  std::cerr << "wrote repeated-query metrics to " << path << "\n";
}

}  // namespace
}  // namespace duel::bench

int main(int argc, char** argv) {
  duel::bench::RegisterSweep("BM_RepeatedCold", duel::bench::BM_RepeatedCold);
  duel::bench::RegisterSweep("BM_RepeatedWarm", duel::bench::BM_RepeatedWarm);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  duel::bench::WriteMetricsJson();
  return 0;
}
