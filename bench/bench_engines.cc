// E5 — generator-engine ablation. The paper implements generators with an
// explicit per-node state machine and notes that "more efficient
// implementations of generators are possible [14]". We compare Engine A
// (the paper's scheme) against Engine B (C++20 coroutines) across expression
// shapes that stress different parts of the machinery.

#include "bench/bench_util.h"

namespace duel::bench {
namespace {

struct Shape {
  const char* name;
  const char* query;
};

const Shape kShapes[] = {
    {"flat_range", "#/(1..100000)"},
    {"nested_product", "#/((1..300)*(1..300))"},
    {"deep_alternation", "#/(((1,2),(3,4)),((5,6),(7,8)))"},
    {"filter_scan", "#/(x[..10000] >? 0)"},
    {"list_walk", "#/(L-->next->value)"},
    {"tree_walk", "#/(root-->(left,right)->key)"},
    {"imply_chain", "#/(1..100 => 1..100)"},
    {"with_fields", "#/(hash[..64]->(if (_ && scope > 0) name))"},
};

void SetupImage(BenchFixture& fx) {
  scenarios::BuildRandomIntArray(fx.image(), "x", 10000, -50, 50, 7);
  std::vector<int32_t> list_values(2000);
  for (size_t i = 0; i < list_values.size(); ++i) {
    list_values[i] = static_cast<int32_t>(i * 37 % 101);
  }
  scenarios::BuildList(fx.image(), "L", list_values);
  // A complete binary tree of depth 12 in the paper's preorder syntax.
  std::string tree = "(1)";
  for (int d = 0; d < 12; ++d) {
    tree = "(1 " + tree + " " + tree + ")";
  }
  scenarios::BuildTree(fx.image(), "root", tree);
  scenarios::BuildDenseSymtab(fx.image(), 64);
}

void BM_Engine(benchmark::State& state) {
  const Shape& shape = kShapes[state.range(0)];
  EngineKind kind = state.range(1) == 0 ? EngineKind::kStateMachine : EngineKind::kCoroutine;
  BenchFixture fx(EngineOptions(kind));
  fx.session().options().eval.sym_mode = EvalOptions::SymMode::kOff;  // isolate engines
  SetupImage(fx);
  for (auto _ : state) {
    fx.Drive(shape.query);
  }
  fx.session().context().counters().Reset();
  fx.Drive(shape.query);
  state.counters["eval_steps"] =
      static_cast<double>(fx.session().context().counters().eval_steps);
  state.SetLabel(std::string(shape.name) +
                 (kind == EngineKind::kStateMachine ? "/state-machine" : "/coroutine"));
}
BENCHMARK(BM_Engine)->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}});

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
