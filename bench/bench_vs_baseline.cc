// E6 — DUEL one-liners vs the conventional-debugger C code the paper's
// Introduction contrasts them with. Both run on the same substrate: the
// baseline is a single-value C interpreter (what a debugger that "accepts
// source-language statements" would do). We report runtime and query length
// (the paper's argument is concision at comparable cost).

#include <cstring>

#include "bench/bench_util.h"
#include "src/baseline/baseline.h"

namespace duel::bench {
namespace {

struct Pair {
  const char* name;
  const char* duel;
  const char* c_code;
};

const Pair kPairs[] = {
    {"positive_elements",
     "x[..1000] >? 0",
     "int i; for (i = 0; i < 1000; i++)"
     " if (x[i] > 0) printf(\"x[%d] = %d\\n\", i, x[i]);"},
    {"hash_scope_scan",
     "(hash[..1024] !=? 0)->scope >? 5",
     "int i; for (i = 0; i < 1024; i++)"
     " if (hash[i] != 0)"
     "  if (hash[i]->scope > 5)"
     "   printf(\"hash[%d]->scope = %d\\n\", i, hash[i]->scope);"},
    {"list_duplicates",
     "L-->next->(value ==? next-->next->value)",
     "List *p, *q;"
     " for (p = L; p; p = p->next)"
     "  for (q = p->next; q; q = q->next)"
     "   if (p->value == q->value) printf(\"%x %x contain %d\\n\", 1, 2, p->value);"},
};

void SetupImage(target::TargetImage& image) {
  scenarios::BuildRandomIntArray(image, "x", 1000, -100, 100, 3);
  scenarios::BuildDenseSymtab(image, 1024, 9);
  std::vector<int32_t> values(300);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(i);
  }
  values[250] = 17;
  values[17] = 17;  // one duplicate pair
  scenarios::BuildList(image, "L", values);
}

void BM_Duel(benchmark::State& state) {
  const Pair& pair = kPairs[state.range(0)];
  BenchFixture fx;
  SetupImage(fx.image());
  for (auto _ : state) {
    QueryResult r = fx.session().Query(pair.duel);
    benchmark::DoNotOptimize(r.value_count);
    fx.image().output().clear();
  }
  state.counters["query_chars"] = static_cast<double>(strlen(pair.duel));
  state.SetLabel(std::string(pair.name) + "/duel");
}
BENCHMARK(BM_Duel)->Arg(0)->Arg(1)->Arg(2);

void BM_BaselineC(benchmark::State& state) {
  const Pair& pair = kPairs[state.range(0)];
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  SetupImage(image);
  dbg::SimBackend backend(image);
  EvalContext ctx(backend, EvalOptions());
  for (auto _ : state) {
    std::string out = baseline::RunBaselineQuery(backend, ctx, pair.c_code);
    benchmark::DoNotOptimize(out.size());
    image.output().clear();
  }
  state.counters["query_chars"] = static_cast<double>(strlen(pair.c_code));
  state.SetLabel(std::string(pair.name) + "/C-loop");
}
BENCHMARK(BM_BaselineC)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace duel::bench

BENCHMARK_MAIN();
