// Querying linked lists and binary trees with DUEL: duplicate detection,
// search paths, breadth- vs depth-first expansion, and what happens on
// corrupted (cyclic / dangling) structures.
//
//   $ ./data_structures

#include <iostream>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

namespace {

void Run(Session& session, const std::string& query) {
  std::cout << "duel> " << query << "\n";
  QueryResult r = session.Query(query);
  std::cout << r.Text() << "\n";
}

}  // namespace

int main() {
  target::TargetImage image;
  target::InstallStandardFunctions(image);

  // A list with a duplicated value (the Introduction's query), a BST, a
  // cyclic list (bug!) and a list with a dangling tail pointer (bug!).
  scenarios::BuildList(image, "L", {11, 22, 33, 44, 27, 55, 66, 77, 88, 27});
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
  scenarios::BuildCyclicList(image, "loopy", {1, 2, 3, 4, 5}, 2);
  scenarios::BuildDanglingList(image, "trashed", {6, 7, 8}, 0xdead0000);

  dbg::SimBackend backend(image);
  Session session(backend);

  std::cout << "== does list L contain two identical elements in its value fields?\n";
  Run(session, "L-->next->(value ==? next-->next->value)");

  std::cout << "== ...and at which positions?\n";
  Run(session,
      "L-->next#i->value ==? L-->next#j->value => if (i < j) L-->next[[i,j]]->value");

  std::cout << "== compare with the C code from the paper's Introduction\n"
            << "   (two nested loops, a helper variable pair, and a printf)\n";
  Run(session,
      "List *p, *q;"
      " for (p = L; p; p = p->next)"
      "  for (q = p->next; q; q = q->next)"
      "   if (p->value == q->value)"
      "    printf(\"%d duplicated\\n\", p->value) ;");
  std::cout << "(target stdout) " << image.TakeOutput() << "\n";

  std::cout << "== all keys of the tree, preorder and breadth-first\n";
  Run(session, "root-->(left,right)->key");
  Run(session, "root-->>(left,right)->key");

  std::cout << "== the BST search path to key 5\n";
  Run(session, "root-->(if (key > 5) left else if (key < 5) right)->key");

  std::cout << "== tree statistics as one-liners\n";
  Run(session, "#/(root-->(left,right))");
  Run(session, "+/(root-->(left,right)->key)");

  std::cout << "== a corrupted, cyclic list: cycle detection stops the walk\n";
  Run(session, "loopy-->next->value");

  std::cout << "== a list whose tail pointer is garbage: the walk ends silently\n";
  Run(session, "trashed-->next->value");

  std::cout << "== but dereferencing the garbage pointer directly is reported\n";
  Run(session, "trashed-->next[[2]]->next->value");
  return 0;
}
