// An interactive mini-debugger hosting DUEL — the "one new command"
// integration the paper describes, as a standalone tool.
//
// The debuggee is a simulated program with a symbol table, lists, trees and
// arrays. Commands:
//
//   duel EXPR      evaluate a DUEL expression (the paper's new command)
//   print EXPR     conventional single-value evaluation (the baseline)
//   mi LINE        drive the gdb/MI-style machine interface directly
//   engine NAME    switch evaluation engine: sm | coro
//   symbolic on|off
//   remote on|off  route DUEL through the RSP wire protocol
//   info           image statistics and backend counters
//   help, quit
//
//   $ ./debugger_repl            (interactive)
//   $ echo 'duel arr[..10] >? 0' | ./debugger_repl

#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/baseline/baseline.h"
#include "src/support/strings.h"
#include "src/duel/duel.h"
#include "src/exec/debugger.h"
#include "src/mi/mi.h"
#include "src/rsp/remote_backend.h"
#include "src/rsp/server.h"
#include "src/rsp/transport.h"
#include "src/serve/service.h"
#include "src/scenarios/scenario_file.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

namespace {

void BuildDebuggee(target::TargetImage& image) {
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "arr", {3, -1, 4, 1, -5, 9, 2, 6, -5, 3});
  scenarios::BuildList(image, "L", {11, 27, 33, 27, 8});
  scenarios::BuildTree(image, "root", "(9 (3 (4) (5)) (12))");
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[0] = {{"main", 4}, {"argc", 3}};
  chains[42] = {{"deep", 7}};
  scenarios::BuildSymtab(image, chains, 1024);
  scenarios::BuildArgv(image, {"debuggee", "--verbose", "in.c"});
  scenarios::BuildFrames(image, 3);
}

// `--check FILE` batch lint mode: loads the scenario, then statically checks
// every `##query:` line in the file against its symbols. Prints one block per
// diagnostic; exit status 1 when any query has a hard error (CI-friendly).
int RunBatchCheck(const char* path) {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  try {
    scenarios::LoadScenarioFile(image, path);
  } catch (const DuelError& e) {
    std::cerr << "error loading " << path << ": " << e.what() << "\n";
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  dbg::SimBackend sim(image);
  Session session(sim);
  size_t queries = 0, errors = 0, warnings = 0;
  std::string line;
  while (std::getline(in, line)) {
    size_t at = line.find_first_not_of(" \t");
    if (at == std::string::npos || line.compare(at, 8, "##query:") != 0) {
      continue;
    }
    std::string expr = line.substr(at + 8);
    while (!expr.empty() && (expr.front() == ' ' || expr.front() == '\t')) {
      expr.erase(expr.begin());
    }
    queries++;
    QueryResult r = session.Check(expr);
    for (const Diag& d : r.diags) {
      (d.severity == Severity::kError ? errors : warnings)++;
      std::cout << path << ": in `" << expr << "`:\n";
      for (const std::string& l : RenderDiag(expr, d)) {
        std::cout << "  " << l << "\n";
      }
    }
  }
  std::cout << path << ": " << queries << " queries checked, " << errors
            << " errors, " << warnings << " warnings\n";
  return errors > 0 ? 1 : 0;
}

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  duel EXPR       evaluate a DUEL expression\n"
      "  check EXPR      statically check a DUEL expression (no evaluation)\n"
      "  warn on|off|error  warning mode: report, discard, or reject the query\n"
      "  print EXPR      conventional debugger evaluation (no generators)\n"
      "  mi LINE         raw machine-interface command (-duel-evaluate \"...\")\n"
      "  engine sm|coro  choose the evaluation engine\n"
      "  symbolic on|off toggle symbolic values\n"
      "  cache on|off    toggle the read-combining target-memory cache (default on)\n"
      "  plan            list cached compiled queries (MRU first) + cache counters;\n"
      "                  'plan on|off' toggles the plan cache, 'plan clear' empties it\n"
      "  remote on|off   route queries through the RSP wire protocol\n"
      "  stats [on|off]  per-query stats (phases, counters, narrow-call latency);\n"
      "                  bare 'stats' re-prints the last collected stats\n"
      "  profile EXPR    evaluate EXPR with the per-AST-node profiler (heat view)\n"
      "  trace on|off    span tracing; 'trace dump [FILE]' prints spans or writes JSONL\n"
      "  packets on|off  RSP wire packet log; 'packets dump' prints it (remote mode)\n"
      "  govern          show per-query governor limits; 'govern deadline MS',\n"
      "                  'govern steps N', 'govern bytes N' set budgets (0 clears\n"
      "                  one), 'govern off' clears all — a governed query that\n"
      "                  trips a limit dies with a span-carrying diagnostic\n"
      "  serve start [N] start the concurrent query service with N workers (default 4);\n"
      "                  'serve open' opens a session, 'serve eval ID EXPR' evaluates,\n"
      "                  'serve cancel ID [WHY]' trips a session's governor,\n"
      "                  'serve close ID' closes, 'serve stats' prints counters,\n"
      "                  'serve stop' shuts the service down\n"
      "  info            image and backend statistics\n"
      "  history         list past duel queries; !N or !! re-runs one\n"
      "  load FILE       load a scenario description file into the debuggee\n"
      "  dump [FILE]     snapshot the debuggee as scenario text (to FILE or stdout)\n"
      "  x ADDR N        examine N bytes of target memory at ADDR (hex dump)\n"
      "  program FILE    load a steppable program (one C statement per line)\n"
      "  list            show the loaded program with the current pc\n"
      "  break N [COND]  breakpoint before line N (1-based), optional DUEL condition\n"
      "  watch EXPR      DUEL watchpoint (fires when the value sequence changes)\n"
      "  assert EXPR     stop when the DUEL assertion stops holding\n"
      "  display EXPR    auto-print a DUEL expression at every program stop\n"
      "  step | continue drive the loaded program\n"
      "  help            this text\n"
      "  quit            exit\n"
      "the debuggee has: int arr[10]; List *L; struct node *root;\n"
      "                  struct symbol *hash[1024]; char *argv[4]; 3 frames with int x\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--check") {
    if (argc < 3) {
      std::cerr << "usage: debugger_repl --check SCENARIO\n";
      return 2;
    }
    return RunBatchCheck(argv[2]);
  }
  target::TargetImage image;
  if (argc > 1) {
    // Load the debuggee from a scenario description file instead.
    target::InstallStandardFunctions(image);
    try {
      scenarios::LoadScenarioFile(image, argv[1]);
    } catch (const DuelError& e) {
      std::cerr << "error loading " << argv[1] << ": " << e.what() << "\n";
      return 1;
    }
  } else {
    BuildDebuggee(image);
  }

  dbg::SimBackend sim(image);
  rsp::RspServer server(sim);
  rsp::FramedTransport transport(server);
  rsp::RemoteBackend remote(transport);

  Session local_session(sim);
  Session remote_session(remote);
  mi::MiSession mi_session(sim);
  EvalContext baseline_ctx(sim, EvalOptions());

  // Optional steppable program (the `program` command).
  std::unique_ptr<exec::TargetProgram> program;
  std::unique_ptr<exec::Debugger> prog_dbg;
  auto report_stop = [&](const exec::StopInfo& stop) {
    switch (stop.reason) {
      case exec::StopReason::kBreakpoint:
        std::cout << "breakpoint " << stop.index << " before line " << stop.line + 1 << ": "
                  << prog_dbg->program().line(stop.line) << "\n";
        break;
      case exec::StopReason::kWatchpoint:
        std::cout << "stopped after line " << stop.line + 1 << ": " << stop.detail << "\n";
        break;
      case exec::StopReason::kAssertion:
        std::cout << "stopped after line " << stop.line + 1 << ": " << stop.detail << "\n";
        break;
      case exec::StopReason::kError:
        std::cout << "program error: " << stop.detail << "\n";
        break;
      case exec::StopReason::kFinished:
        std::cout << "program finished\n";
        break;
      case exec::StopReason::kStep:
        std::cout << "stepped; next line " << prog_dbg->pc() + 1 << "\n";
        break;
    }
  };

  // The concurrent query service (`serve` commands): one shared image, many
  // sessions, started on demand.
  std::unique_ptr<serve::QueryService> service;

  bool use_remote = false;
  bool interactive = isatty(0);
  if (interactive) {
    std::cout << "duel mini-debugger (type 'help' for commands)\n";
  }

  std::string line;
  while (true) {
    Session& session = use_remote ? remote_session : local_session;
    if (interactive) {
      std::cout << (use_remote ? "(remote-gdb) " : "(gdb) ") << std::flush;
    }
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    std::string rest;
    std::getline(iss, rest);
    while (!rest.empty() && rest.front() == ' ') {
      rest.erase(rest.begin());
    }

    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "q") {
      break;
    }
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "duel") {
      QueryResult r = session.Query(rest);
      // Warnings come from the check stage, before any value; print them
      // first. The rejected-query error is already part of Text().
      for (const Diag& d : r.diags) {
        if (d.severity == Severity::kWarning) {
          for (const std::string& l : RenderDiag(rest, d)) {
            std::cout << l << "\n";
          }
        }
      }
      std::cout << r.Text();
      std::cout << image.TakeOutput();  // anything the target's printf wrote
      if (r.stats.has_value() && session.options().collect_stats) {
        for (const std::string& l : r.stats->Render()) {
          std::cout << "  | " << l << "\n";
        }
      }
    } else if (cmd == "check") {
      if (rest.empty()) {
        std::cout << "usage: check EXPR\n";
        continue;
      }
      QueryResult r = session.Check(rest);
      if (r.diags.empty()) {
        std::cout << "ok\n";
      }
      for (const Diag& d : r.diags) {
        for (const std::string& l : RenderDiag(rest, d)) {
          std::cout << l << "\n";
        }
      }
    } else if (cmd == "warn") {
      if (rest != "on" && rest != "off" && rest != "error") {
        std::cout << "usage: warn on|off|error\n";
        continue;
      }
      WarnMode mode = rest == "off"     ? WarnMode::kOff
                      : rest == "error" ? WarnMode::kError
                                        : WarnMode::kOn;
      local_session.options().warn = mode;
      remote_session.options().warn = mode;
      std::cout << "warn: " << rest << "\n";
    } else if (cmd == "stats") {
      if (rest == "on" || rest == "off") {
        bool on = rest == "on";
        local_session.options().collect_stats = on;
        remote_session.options().collect_stats = on;
        std::cout << "stats: " << rest << "\n";
      } else if (rest.empty()) {
        if (!session.last_stats().has_value()) {
          std::cout << "no stats collected yet (try: stats on)\n";
        } else {
          for (const std::string& l : session.last_stats()->Render()) {
            std::cout << l << "\n";
          }
        }
      } else {
        std::cout << "usage: stats [on|off]\n";
      }
    } else if (cmd == "profile") {
      if (rest.empty()) {
        std::cout << "usage: profile EXPR\n";
        continue;
      }
      bool saved = session.options().profile;
      session.options().profile = true;
      QueryResult r = session.Query(rest);
      session.options().profile = saved;
      std::cout << r.Text();
      std::cout << image.TakeOutput();
      if (r.stats.has_value()) {
        for (const std::string& l : r.stats->RenderProfile()) {
          std::cout << l << "\n";
        }
      }
    } else if (cmd == "trace") {
      obs::Tracer& tracer = session.tracer();
      std::istringstream ts(rest);
      std::string sub, file;
      ts >> sub >> file;
      if (sub == "on" || sub == "off") {
        tracer.set_enabled(sub == "on");
        std::cout << "trace: " << sub << "\n";
      } else if (sub == "clear") {
        tracer.Clear();
        std::cout << "trace cleared\n";
      } else if (sub == "dump" || sub.empty()) {
        if (!file.empty()) {
          std::ofstream outf(file);
          if (!outf) {
            std::cout << "cannot write " << file << "\n";
          } else {
            tracer.ExportJsonl(outf);
            std::cout << "wrote " << tracer.size() << " spans to " << file << "\n";
          }
        } else {
          for (const obs::TraceEvent& e : tracer.Events()) {
            std::cout << std::string(static_cast<size_t>(e.depth) * 2, ' ') << e.name;
            if (!e.detail.empty()) {
              std::cout << " `" << e.detail << "`";
            }
            std::cout << "  " << e.dur_ns << "ns\n";
          }
          std::cout << "(" << tracer.size() << " spans";
          if (tracer.dropped() > 0) {
            std::cout << ", " << tracer.dropped() << " dropped";
          }
          std::cout << ")\n";
        }
      } else {
        std::cout << "usage: trace on|off|clear|dump [FILE]\n";
      }
    } else if (cmd == "packets") {
      if (rest == "on" || rest == "off") {
        server.set_packet_logging(rest == "on");
        std::cout << "packet log: " << rest << "\n";
      } else if (rest == "clear") {
        server.ClearPacketLog();
        std::cout << "packet log cleared\n";
      } else if (rest == "dump" || rest.empty()) {
        for (const rsp::WirePacket& p : server.packet_log()) {
          std::cout << (p.is_request ? "-> " : "<- ") << p.payload << "\n";
        }
        std::cout << "(" << server.packet_log().size() << " packets"
                  << (server.packet_logging() ? "" : "; logging off — try 'packets on'")
                  << ")\n";
      } else {
        std::cout << "usage: packets on|off|clear|dump\n";
      }
    } else if (cmd == "print" || cmd == "p") {
      try {
        std::cout << baseline::RunBaselineQuery(sim, baseline_ctx, rest) << "\n";
        std::cout << image.TakeOutput();
      } catch (const DuelError& e) {
        std::cout << FormatError(e) << "\n";
      }
    } else if (cmd == "mi") {
      std::cout << mi_session.Handle(rest);
    } else if (cmd == "engine") {
      EngineKind kind =
          rest == "coro" ? EngineKind::kCoroutine : EngineKind::kStateMachine;
      local_session.options().engine = kind;
      remote_session.options().engine = kind;
      std::cout << "engine: " << (rest == "coro" ? "coroutine" : "state-machine") << "\n";
    } else if (cmd == "symbolic") {
      auto mode = rest == "off"    ? EvalOptions::SymMode::kOff
                  : rest == "lazy" ? EvalOptions::SymMode::kLazy
                                   : EvalOptions::SymMode::kOn;
      local_session.options().eval.sym_mode = mode;
      remote_session.options().eval.sym_mode = mode;
      std::cout << "symbolic: " << rest << "\n";
    } else if (cmd == "cache" || (cmd == "set" && StartsWith(rest, "cache"))) {
      std::string arg = cmd == "cache" ? rest : rest.substr(5);
      while (!arg.empty() && arg.front() == ' ') {
        arg.erase(arg.begin());
      }
      if (arg != "on" && arg != "off") {
        std::cout << "usage: cache on|off\n";
        continue;
      }
      bool on = arg == "on";
      local_session.options().eval.data_cache = on;
      remote_session.options().eval.data_cache = on;
      baseline_ctx.opts().data_cache = on;
      std::cout << "cache: " << arg << "\n";
    } else if (cmd == "plan") {
      if (rest == "on" || rest == "off") {
        bool on = rest == "on";
        local_session.options().plan_cache = on;
        remote_session.options().plan_cache = on;
        std::cout << "plan cache: " << rest << "\n";
      } else if (rest == "clear") {
        local_session.plan_cache().Clear();
        remote_session.plan_cache().Clear();
        std::cout << "plan cache cleared\n";
      } else if (rest.empty()) {
        const PlanCacheCounters& pc = session.plan_cache().counters();
        std::cout << "plan cache: " << session.plan_cache().size() << "/"
                  << session.plan_cache().capacity() << " entries"
                  << (session.options().plan_cache ? "" : " (disabled)")
                  << "  lookups=" << pc.lookups << " hits=" << pc.hits
                  << " misses=" << pc.misses
                  << " invalidations=" << pc.invalidations
                  << " evictions=" << pc.evictions << "\n";
        for (const CompiledQuery* p : session.plan_cache().Entries()) {
          std::cout << "  [hits=" << p->hits << " nodes=" << p->parsed.num_nodes
                    << " bound=" << p->notes.bound_names.size()
                    << " folded=" << p->notes.stats.nodes_folded << "] "
                    << p->text << "\n";
        }
      } else {
        std::cout << "usage: plan [on|off|clear]\n";
      }
    } else if (cmd == "remote") {
      use_remote = rest == "on";
      std::cout << "remote: " << (use_remote ? "on" : "off") << "\n";
    } else if (cmd == "load") {
      try {
        scenarios::LoadScenarioFile(image, rest);
        std::cout << "loaded " << rest << "\n";
      } catch (const DuelError& e) {
        std::cout << "load failed: " << e.what() << "\n";
      }
    } else if (cmd == "dump") {
      std::string text = scenarios::DumpScenario(image);
      if (rest.empty()) {
        std::cout << text;
      } else {
        std::ofstream outf(rest);
        if (!outf) {
          std::cout << "cannot write " << rest << "\n";
        } else {
          outf << text;
          std::cout << "wrote " << rest << "\n";
        }
      }
    } else if (cmd == "x") {
      std::istringstream xs(rest);
      std::string addr_text;
      size_t count = 16;
      xs >> addr_text >> count;
      uint64_t addr = strtoull(addr_text.c_str(), nullptr, 0);
      for (size_t off = 0; off < count; off += 16) {
        std::cout << StrPrintf("0x%llx: ", static_cast<unsigned long long>(addr + off));
        std::string ascii;
        for (size_t i = 0; i < 16 && off + i < count; ++i) {
          uint8_t byte;
          if (!image.memory().TryRead(addr + off + i, &byte, 1)) {
            std::cout << "?? ";
            ascii += '?';
          } else {
            std::cout << StrPrintf("%02x ", byte);
            ascii += (byte >= 0x20 && byte < 0x7f) ? static_cast<char>(byte) : '.';
          }
        }
        std::cout << " |" << ascii << "|\n";
      }
    } else if (cmd == "program") {
      try {
        std::ifstream in(rest);
        if (!in) {
          std::cout << "cannot open " << rest << "\n";
          continue;
        }
        std::vector<std::string> prog_lines;
        std::string pl;
        while (std::getline(in, pl)) {
          prog_lines.push_back(pl);
        }
        program = std::make_unique<exec::TargetProgram>(
            exec::TargetProgram::Parse(prog_lines, image));
        prog_dbg = std::make_unique<exec::Debugger>(image, sim, *program);
        std::cout << "loaded " << program->size() << " lines from " << rest << "\n";
      } catch (const DuelError& e) {
        std::cout << "program load failed: " << e.what() << "\n";
      }
    } else if (cmd == "list") {
      if (prog_dbg == nullptr) {
        std::cout << "no program loaded (use: program FILE)\n";
        continue;
      }
      for (size_t i = 0; i < program->size(); ++i) {
        std::cout << (i == prog_dbg->pc() ? "=> " : "   ") << i + 1 << "  "
                  << program->line(i) << "\n";
      }
    } else if (cmd == "break" || cmd == "watch" || cmd == "assert" || cmd == "display" ||
               cmd == "step" || cmd == "continue" || cmd == "c") {
      if (prog_dbg == nullptr) {
        std::cout << "no program loaded (use: program FILE)\n";
        continue;
      }
      try {
        if (cmd == "break") {
          std::istringstream bp(rest);
          size_t line_no = 0;
          bp >> line_no;
          std::string cond;
          std::getline(bp, cond);
          while (!cond.empty() && cond.front() == ' ') {
            cond.erase(cond.begin());
          }
          int idx = prog_dbg->AddBreakpoint(line_no == 0 ? 0 : line_no - 1, cond);
          std::cout << "breakpoint " << idx << " at line " << line_no << "\n";
        } else if (cmd == "watch") {
          int idx = prog_dbg->AddWatchpoint(rest);
          std::cout << "watchpoint " << idx << ": " << rest << "\n";
        } else if (cmd == "assert") {
          int idx = prog_dbg->AddAssertion("a" + std::to_string(rest.size()), rest);
          std::cout << "assertion " << idx << ": " << rest << "\n";
        } else if (cmd == "display") {
          int idx = prog_dbg->AddDisplay(rest);
          std::cout << "display " << idx << ": " << rest << "\n";
        } else if (cmd == "step") {
          report_stop(prog_dbg->Step());
          for (const std::string& d : prog_dbg->RenderDisplays()) {
            std::cout << "  " << d << "\n";
          }
        } else {
          report_stop(prog_dbg->Continue());
          for (const std::string& d : prog_dbg->RenderDisplays()) {
            std::cout << "  " << d << "\n";
          }
        }
      } catch (const DuelError& e) {
        std::cout << "error: " << e.what() << "\n";
      }
    } else if (cmd == "history") {
      const std::vector<std::string>& h = session.history();
      for (size_t i = 0; i < h.size(); ++i) {
        std::cout << "  " << i << "  " << h[i] << "\n";
      }
    } else if (cmd[0] == '!') {
      const std::vector<std::string>& h = session.history();
      std::string query;
      if (cmd == "!!" && !h.empty()) {
        query = h.back();
      } else if (cmd.size() > 1) {
        size_t idx = static_cast<size_t>(atoi(cmd.c_str() + 1));
        if (idx < h.size()) {
          query = h[idx];
        }
      }
      if (query.empty()) {
        std::cout << "no such history entry\n";
      } else {
        std::cout << "duel " << query << "\n" << session.Query(query).Text();
        std::cout << image.TakeOutput();
      }
    } else if (cmd == "info" && rest == "globals") {
      for (const target::Variable& v : image.symbols().globals()) {
        std::cout << "  " << v.type->Declare(v.name) << "\n";
      }
    } else if (cmd == "info" && rest == "locals") {
      if (image.symbols().NumFrames() == 0) {
        std::cout << "no frames\n";
      } else {
        for (size_t f = 0; f < image.symbols().NumFrames(); ++f) {
          const target::Frame& frame = image.symbols().GetFrame(f);
          std::cout << "frame " << f << " (" << frame.function << "):\n";
          for (const target::Variable& v : frame.locals) {
            std::cout << "  " << v.type->Declare(v.name) << "\n";
          }
        }
      }
    } else if (cmd == "govern") {
      GovernorLimits& lim = session.options().governor_limits;
      std::istringstream gss(rest);
      std::string what, value;
      gss >> what >> value;
      if (what.empty()) {
        if (!lim.any()) {
          std::cout << "governor: no limits set (queries run unbounded)\n";
        } else {
          std::cout << "governor: deadline=" << lim.deadline_ms << "ms steps=" << lim.max_steps
                    << " bytes=" << lim.max_read_bytes
                    << (session.options().governor ? "" : " (disabled: DUEL_GOVERNOR=off)")
                    << "\n";
        }
      } else if (what == "off") {
        lim = GovernorLimits{};
        std::cout << "governor limits cleared\n";
      } else if (what == "deadline" || what == "steps" || what == "bytes") {
        uint64_t n = 0;
        if (!ParseU64(value, &n)) {
          std::cout << "usage: govern " << what << " N\n";
        } else {
          (what == "deadline" ? lim.deadline_ms
                              : what == "steps" ? lim.max_steps : lim.max_read_bytes) = n;
          std::cout << "governor " << what << " set to " << n << "\n";
        }
      } else {
        std::cout << "usage: govern [deadline MS | steps N | bytes N | off]\n";
      }
    } else if (cmd == "serve") {
      std::istringstream sss(rest);
      std::string sub;
      sss >> sub;
      if (sub == "start") {
        if (service != nullptr) {
          std::cout << "service already running\n";
        } else {
          serve::ServeOptions sopts;
          uint64_t n = 0;
          std::string workers;
          if (sss >> workers && ParseU64(workers, &n) && n > 0) {
            sopts.workers = static_cast<size_t>(n);
          }
          service = std::make_unique<serve::QueryService>(
              [&image] { return std::make_unique<dbg::SimBackend>(image); }, sopts);
          mi_session.set_service(service.get());
          std::cout << "query service started: " << sopts.workers << " workers, queue limit "
                    << sopts.queue_limit << "\n";
        }
      } else if (service == nullptr) {
        std::cout << "no service running (try 'serve start')\n";
      } else if (sub == "open") {
        std::cout << "session " << service->OpenSession() << " open\n";
      } else if (sub == "eval") {
        uint64_t id = 0;
        std::string id_text;
        if (!(sss >> id_text) || !ParseU64(id_text, &id)) {
          std::cout << "usage: serve eval ID EXPR\n";
        } else {
          std::string expr;
          std::getline(sss, expr);
          while (!expr.empty() && expr.front() == ' ') {
            expr.erase(expr.begin());
          }
          serve::QueryService::Outcome out = service->Eval(id, expr);
          if (out.status != serve::SubmitStatus::kAccepted) {
            std::cout << "serve: " << serve::SubmitStatusName(out.status) << "\n";
          } else {
            std::cout << out.result.Text();
          }
        }
      } else if (sub == "cancel") {
        uint64_t id = 0;
        std::string id_text, reason;
        sss >> id_text;
        std::getline(sss, reason);
        while (!reason.empty() && reason.front() == ' ') {
          reason.erase(reason.begin());
        }
        if (!ParseU64(id_text, &id)) {
          std::cout << "usage: serve cancel ID [REASON]\n";
        } else {
          std::cout << (service->Cancel(id, reason.empty() ? "cancelled by user" : reason)
                            ? "cancel requested\n"
                            : "no such session\n");
        }
      } else if (sub == "close") {
        uint64_t id = 0;
        std::string id_text;
        sss >> id_text;
        if (!ParseU64(id_text, &id)) {
          std::cout << "usage: serve close ID\n";
        } else {
          std::cout << (service->CloseSession(id) ? "session closed\n" : "no such session\n");
        }
      } else if (sub == "stats" || sub.empty()) {
        serve::ServeStats s = service->stats();
        std::cout << s.Summary() << "\n"
                  << "latency: " << s.latency_ns.Summary() << "\n"
                  << "queued:  " << s.queue_ns.Summary() << "\n";
      } else if (sub == "stop") {
        mi_session.set_service(nullptr);
        service.reset();  // Shutdown() in the destructor
        std::cout << "query service stopped\n";
      } else {
        std::cout << "usage: serve start [N] | open | eval ID EXPR | cancel ID [WHY] |"
                     " close ID | stats | stop\n";
      }
    } else if (cmd == "info") {
      std::cout << "globals: " << image.symbols().globals().size()
                << ", functions: " << image.symbols().functions().size()
                << ", frames: " << image.symbols().NumFrames() << "\n"
                << "sim backend: " << sim.counters().read_calls << " reads, "
                << sim.counters().symbol_lookups << " symbol lookups\n"
                << "rsp transport: " << transport.round_trips() << " round trips, "
                << transport.bytes_on_wire() << " bytes on wire\n";
    } else {
      std::cout << "unknown command '" << cmd << "' (try 'help')\n";
    }
  }
  return 0;
}
