// DUEL probing itself. The paper: "Once the initial implementation was
// working, it was used to probe both itself and gdb."
//
// We parse a DUEL query with DUEL's own parser, mirror the resulting AST
// into the simulated debuggee as plain C structs, and then use DUEL to
// explore DUEL's data structure:
//
//   struct ast { char *opname; char *text; int nkids; struct ast *kids[4]; };
//
//   $ ./duel_on_duel

#include <iostream>

#include "src/duel/duel.h"

using namespace duel;

namespace {

// Mirrors a parsed AST into target memory; returns the root node's address.
target::Addr MirrorAst(target::ImageBuilder& b, const target::TypeRef& ast_type,
                       const Node& n) {
  target::Addr kids[4] = {0, 0, 0, 0};
  size_t nkids = std::min<size_t>(n.kids.size(), 4);
  for (size_t i = 0; i < nkids; ++i) {
    kids[i] = MirrorAst(b, ast_type, *n.kids[i]);
  }
  target::Addr node = b.Alloc(ast_type);
  b.PokePtr(b.FieldAddr(node, ast_type, "opname"), b.String(OpName(n.op)));
  b.PokePtr(b.FieldAddr(node, ast_type, "text"),
            n.text.empty() ? b.String("") : b.String(n.text));
  b.PokeI32(b.FieldAddr(node, ast_type, "nkids"), static_cast<int32_t>(nkids));
  target::Addr kids_base = b.FieldAddr(node, ast_type, "kids");
  for (size_t i = 0; i < 4; ++i) {
    b.PokePtr(kids_base + i * 8, kids[i]);
  }
  return node;
}

void Run(Session& session, const std::string& query) {
  std::cout << "duel> " << query << "\n";
  std::cout << session.Query(query).Text() << "\n";
}

}  // namespace

int main() {
  // The query under the microscope: the paper's symbol-table scan.
  const std::string kSubject = "(hash[..1024] !=? 0)->scope >? 5";
  std::cout << "parsing with DUEL's own parser:  " << kSubject << "\n\n";
  Parser parser(kSubject);
  ParseResult parsed = parser.Parse();
  std::cout << "AST (the paper's LISP notation):\n  " << DumpAst(*parsed.root) << "\n\n";

  // Mirror the interpreter's own data structure into a debuggee image.
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  target::ImageBuilder b(image);
  target::TypeRef ast = b.Struct("ast")
                            .Field("opname", b.Ptr(b.Char()))
                            .Field("text", b.Ptr(b.Char()))
                            .Field("nkids", b.Int())
                            .Field("kids", b.Arr(b.Ptr(b.StructRef("ast")), 4))
                            .Build();
  target::Addr root_addr = MirrorAst(b, ast, *parsed.root);
  target::Addr root_var = b.Global("root", b.Ptr(ast));
  b.PokePtr(root_var, root_addr);

  dbg::SimBackend backend(image);
  Session session(backend);

  std::cout << "== how many nodes does the AST have?\n";
  Run(session, "#/(root-->(kids[..4]))");

  std::cout << "== preorder walk of the operators\n";
  Run(session, "root-->(kids[..4])->opname");

  std::cout << "== which variable names does the query mention?\n"
               "   (string equality, spelled with a sequence comparison)\n";
  Run(session, "root-->(kids[..4])->(if (opname[0..]@0 === (\"name\")[0..]@0) text)");

  std::cout << "== nodes with exactly two children\n";
  Run(session, "#/(root-->(kids[..4])->nkids ==? 2)");

  std::cout << "== the filter nodes (the ?-comparisons) in the tree\n";
  Run(session, "root-->(kids[..4])->(if (opname[0] == 'i' && opname[1] == 'f') opname)");
  return 0;
}
