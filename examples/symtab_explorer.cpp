// Exploring a compiler's symbol table with DUEL — the paper's running
// example. Reconstructs `struct symbol { char *name; int scope;
// struct symbol *next; } *hash[1024];` in a simulated debuggee, then runs
// every hash-table query from the paper and a few deeper ones.
//
//   $ ./symtab_explorer

#include <iostream>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

namespace {

void Run(Session& session, const std::string& query) {
  std::cout << "duel> " << query << "\n";
  QueryResult r = session.Query(query);
  std::cout << r.Text() << "\n";
}

}  // namespace

int main() {
  target::TargetImage image;
  target::InstallStandardFunctions(image);

  // A symbol table the compiler might have at a breakpoint: mostly sorted
  // chains, a couple of deep-scope symbols, and one sortedness bug.
  std::map<size_t, std::vector<scenarios::SymEntry>> chains;
  chains[0] = {{"main", 4}, {"argc", 3}, {"argv", 2}, {"usage", 1}};
  chains[1] = {{"x", 3}};
  chains[9] = {{"abc", 2}};
  chains[42] = {{"tmp_deep", 7}};
  chains[529] = {{"inner_most", 8}};
  std::vector<scenarios::SymEntry> bug_chain;
  int32_t scopes[] = {13, 12, 11, 10, 9, 8, 7, 6, 5, 6};  // out of order at depth 8
  for (size_t i = 0; i < 10; ++i) {
    bug_chain.push_back({"gen" + std::to_string(i), scopes[i]});
  }
  chains[287] = bug_chain;
  scenarios::BuildSymtab(image, chains, 1024);

  dbg::SimBackend backend(image);
  Session session(backend);

  std::cout << "== which buckets hold symbols with scope > 5?\n";
  Run(session, "(hash[..1024] !=? 0)->scope >? 5");

  std::cout << "== ...and what are their names?\n";
  Run(session, "hash[..1024]->(if (_ && scope > 5) name)");

  std::cout << "== several fields at once\n";
  Run(session, "hash[1,9]->(scope,name)");

  std::cout << "== walk one chain\n";
  Run(session, "hash[0]-->next->(name,scope)");

  std::cout << "== how many symbols are in the whole table?\n";
  Run(session, "#/(hash[..1024]-->next)");

  std::cout << "== verify every chain is sorted by decreasing scope\n";
  Run(session, "hash[..1024]-->next-> if (next) scope <? next->scope");

  std::cout << "== the C loop one would type instead checks only the FIRST link of\n"
               "== each chain — and silently misses the bug at depth 8 (exactly the\n"
               "== kind of under-exploration the paper argues against):\n";
  Run(session,
      "int i; for (i = 0; i < 1024; i++)\n"
      "  if (hash[i])\n"
      "    if (hash[i]->next)\n"
      "      if (hash[i]->scope < hash[i]->next->scope)\n"
      "        printf(\"unsorted at %d\\n\", i) ;");
  std::cout << "(target stdout, empty = bug missed) \"" << image.TakeOutput() << "\"\n\n";

  std::cout << "== clear the scope of the first symbol on each non-empty list, then check\n";
  Run(session, "(hash[0..1023] !=? 0)->scope = 0 ;");
  Run(session, "#/((hash[..1024] !=? 0)->scope ==? 0)");
  return 0;
}
