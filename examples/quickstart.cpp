// Quickstart: build a tiny simulated debuggee, attach a DUEL session, and
// run the queries from the paper's abstract.
//
//   $ ./quickstart

#include <cstdio>
#include <iostream>

#include "src/duel/duel.h"

using namespace duel;

int main() {
  // 1. A simulated debuggee: the program state a debugger would show at a
  //    breakpoint. Here: int x[100] with a few positive entries, and two
  //    structs with an `a` field.
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  target::ImageBuilder b(image);

  target::Addr x = b.Global("x", b.Arr(b.Int(), 100));
  b.PokeI32(x + 4 * 12, 3);
  b.PokeI32(x + 4 * 57, 41);
  b.PokeI32(x + 4 * 99, 7);

  target::TypeRef pair = b.Struct("pair").Field("a", b.Int()).Field("z", b.Int()).Build();
  target::Addr p = b.Global("p", pair);
  target::Addr q = b.Global("q", pair);
  b.PokeI32(b.FieldAddr(p, pair, "a"), 10);
  b.PokeI32(b.FieldAddr(q, pair, "a"), 20);

  // 2. Attach DUEL through the narrow debugger interface.
  dbg::SimBackend backend(image);
  Session session(backend);

  // 3. Ask very-high-level questions.
  const char* queries[] = {
      "x[..100] >? 0",       // which elements of x are positive, and where?
      "(p,q).a",             // the a field of p and of q
      "#/(x[..100] ==? 0)",  // how many elements are zero?
      "+/x[..100]",          // their sum
      "(1..3)+(5,9)",        // generators compose like in the paper
  };
  for (const char* query : queries) {
    std::cout << "duel> " << query << "\n";
    QueryResult r = session.Query(query);
    std::cout << r.Text() << "\n";
  }
  return 0;
}
