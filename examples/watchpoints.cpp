// DUEL expressions as watchpoints and conditional breakpoints — the
// facilities the paper's Discussion proposes. A buggy insertion routine
// runs under the stepping debugger; a DUEL one-liner invariant catches the
// exact statement that breaks sortedness.
//
//   $ ./watchpoints

#include <iostream>

#include "src/exec/debugger.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

int main() {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::BuildIntArray(image, "a", std::vector<int32_t>(8, 0));
  dbg::SimBackend backend(image);

  // The "program": fills a[] in sorted order, but one write is wrong.
  std::vector<std::string> source = {
      "## fill a[8] with an increasing sequence",
      "int i;",
      "for (i = 0; i < 8; i++) a[i] = 10 * i;",
      "## a few updates that preserve sortedness",
      "a[3] = 31;",
      "a[6] = 61;",
      "## ...and the bug: this one breaks it",
      "a[5] = 7;",
      "a[7] = 99;",
  };
  exec::TargetProgram program = exec::TargetProgram::Parse(source, image);
  exec::Debugger dbg(image, backend, program);

  // The invariant, as a DUEL one-liner: adjacent out-of-order pairs.
  // (a[k] >? a[k+1] yields the offending left element.)
  const std::string kInvariant = "a[..7]#k >? a[k+1]";
  int wp = dbg.AddWatchpoint(kInvariant);
  std::cout << "watch " << kInvariant << "\n\n";

  for (;;) {
    exec::StopInfo s = dbg.Continue();
    if (s.reason == exec::StopReason::kWatchpoint) {
      std::cout << "watchpoint fired after line " << s.line + 1 << ": "
                << dbg.program().line(s.line) << "\n"
                << "  " << s.detail << "\n"
                << "  offending pairs now:\n";
      for (const std::string& line : dbg.duel().Query(kInvariant).lines) {
        std::cout << "    " << line << "\n";
      }
      std::cout << "\n";
    } else if (s.reason == exec::StopReason::kFinished) {
      std::cout << "program finished; " << dbg.guard_evals()
                << " DUEL guard evaluations, watchpoint fired " << dbg.WatchpointFires(wp)
                << " time(s)\n";
      break;
    } else if (s.reason == exec::StopReason::kError) {
      std::cout << "program error: " << s.detail << "\n";
      break;
    }
  }

  // Conditional breakpoints: re-run the updates, stopping only when the
  // array's sum exceeds a bound.
  std::cout << "\nsecond run with a conditional breakpoint (+/a[..8] > 250):\n";
  exec::Debugger dbg2(image, backend, program);
  for (size_t line = 0; line < source.size(); ++line) {
    dbg2.AddBreakpoint(line, "(+/a[..8]) > 250");
  }
  exec::StopInfo s = dbg2.Continue();
  if (s.reason == exec::StopReason::kBreakpoint) {
    std::cout << "stopped before line " << s.line + 1 << ": " << dbg2.program().line(s.line)
              << "\n  +/a[..8] = " << dbg2.duel().Query("+/a[..8]").lines[0] << "\n";
  } else {
    std::cout << "never fired (reason " << static_cast<int>(s.reason) << ")\n";
  }
  return 0;
}
