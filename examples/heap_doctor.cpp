// Hunting heap corruption with DUEL one-liners.
//
// The debuggee has a malloc-style arena: chunks laid head-to-tail
// (next chunk = (struct chunk *)((char *)c + c->size)), free chunks threaded
// per-bin through `fd`. One chunk's size field has been smashed. The session
// shows the state-exploration workflow the paper advocates: summarize,
// validate an invariant with a one-liner, localize the corruption.
//
//   $ ./heap_doctor

#include <iostream>

#include "src/duel/duel.h"
#include "src/scenarios/scenarios.h"

using namespace duel;

namespace {

void Run(Session& session, const std::string& query) {
  std::cout << "duel> " << query << "\n";
  std::cout << session.Query(query).Text() << "\n";
}

}  // namespace

int main() {
  target::TargetImage image;
  target::InstallStandardFunctions(image);
  scenarios::HeapSpec spec;
  spec.chunk_count = 12;
  spec.corrupt_index = 7;
  spec.corrupt_size = 13;  // bogus: too small and misaligned
  scenarios::BuildHeap(image, spec);

  dbg::SimBackend backend(image);
  Session session(backend);

  std::cout << "== the free lists, per bin (walks the fd chains)\n";
  Run(session, "bins[..4]-->fd->size");

  std::cout << "== how many free chunks per bin?\n";
  Run(session, "b := ..4 => {#/(bins[{b}]-->fd)}");

  std::cout << "== walk the arena by computed chunk addresses: a declared\n"
               "== debugger variable + a while loop, straight from the paper's\n"
               "== 'DUEL accepts most of C' toolbox\n";
  Run(session,
      "struct chunk *p; unsigned long sz; p = (struct chunk *)arena;"
      " while ((char *)p < arena_end && p->size >= 24)"
      "  (sz = p->size; p = (struct chunk *)((char *)p + p->size); {sz})");

  std::cout << "== the walk stopped early: some chunk's size is bogus.\n"
               "== which one? validate the size invariant chunk by chunk\n";
  Run(session,
      "struct chunk *q; int k; q = (struct chunk *)arena; k = 0;"
      " while ((char *)q < arena_end)"
      "  (if (q->size < 24 || q->size % 8 != 0)"
      "     printf(\"chunk %d at %p: bad size %d\\n\", k, q, (int)q->size);"
      "   if (q->size < 24) q = (struct chunk *)arena_end"
      "   else (q = (struct chunk *)((char *)q + q->size); k = k + 1)) ;");
  std::cout << "(target stdout) " << image.TakeOutput() << "\n";

  std::cout << "== free-list sanity: every free chunk's bin field must match\n"
               "== the bin list it is on\n";
  Run(session, "b2 := ..4 => bins[b2]-->fd->(bin !=? b2)");

  std::cout << "== and no free chunk may be marked used\n";
  Run(session, "#/(bins[..4]-->fd->used ==? 1)");
  return 0;
}
